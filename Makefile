# Developer entry points mirroring the CI jobs (.github/workflows/ci.yml).

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race lint lint-report fuzz-smoke serve serve-smoke chaos-smoke wal-smoke shard-smoke replica-smoke bench-mixed bench-shard bench-oracle

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs go vet, the project's own analyzers (cmd/dsks-lint) and their
# self-tests; staticcheck runs too when it is on PATH (CI installs it, the
# offline dev container may not have it).
lint:
	$(GO) vet ./...
	$(GO) build -o $(CURDIR)/bin/dsks-lint ./cmd/dsks-lint
	$(CURDIR)/bin/dsks-lint ./...
	$(GO) test ./internal/analysis/...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# lint-report mirrors the CI lint-report job: the full analyzer run with
# the machine-readable SARIF output CI uploads as an artifact
# (docs/LINTING.md). The file is written even when findings make the
# run fail, so it can be inspected afterwards.
lint-report:
	$(GO) build -o $(CURDIR)/bin/dsks-lint ./cmd/dsks-lint
	$(CURDIR)/bin/dsks-lint -format=sarif -o dsks-lint.sarif -debug ./...

fuzz-smoke:
	$(GO) test -run FuzzZOrder -fuzz FuzzZOrder -fuzztime $(FUZZTIME) ./internal/geo/
	$(GO) test -run FuzzLoadGraph -fuzz FuzzLoadGraph -fuzztime $(FUZZTIME) ./internal/graph/
	$(GO) test -run FuzzPageRoundTrip -fuzz FuzzPageRoundTrip -fuzztime $(FUZZTIME) ./internal/storage/

# serve boots the HTTP query server on a generated dataset (docs/SERVING.md).
serve:
	$(GO) run ./cmd/dsks-serve -addr :8080 -preset SYN -scale 200 -index SIF

# serve-smoke mirrors the CI job: boot a deliberately under-provisioned
# server, hammer it asserting zero 5xx + warm cache + load shedding, then
# SIGTERM it and require a clean drain (exit 0).
serve-smoke:
	$(GO) build -o $(CURDIR)/bin/dsks-serve ./cmd/dsks-serve
	./scripts/serve-smoke.sh $(CURDIR)/bin/dsks-serve

# chaos-smoke mirrors the CI job: boot a checksummed, chaos-enabled server,
# inject read faults over /v1/chaos, and assert the breaker sheds (503 +
# Retry-After), never serves corrupt bytes, and recovers after the faults
# clear (docs/ROBUSTNESS.md).
chaos-smoke:
	$(GO) build -o $(CURDIR)/bin/dsks-serve ./cmd/dsks-serve
	./scripts/chaos-smoke.sh $(CURDIR)/bin/dsks-serve

# bench-mixed mirrors the CI job: boot a cache-disabled server and run
# the two-phase read-under-write benchmark — read-only baseline, then the
# same reads under an insert storm — writing the throughput/latency
# trajectory to BENCH_mixed.json and asserting the mixed read p99 stays
# within 2x of the baseline (docs/CONCURRENCY.md).
bench-mixed:
	$(GO) build -o $(CURDIR)/bin/dsks-serve ./cmd/dsks-serve
	./scripts/bench-mixed.sh $(CURDIR)/bin/dsks-serve BENCH_mixed.json

# shard-smoke mirrors the CI job: boot dsks-serve with the road network
# sharded 4 ways behind the scatter-gather router (partial-result policy,
# per-shard WALs), hammer the mixed read/write mix -strict, take one
# shard down via shard-targeted chaos and assert coherent degradation
# (206 partials naming the failed shard, healthy-shard inserts still
# acked, never a half-merged body), then heal and require full recovery
# (docs/SHARDING.md).
shard-smoke:
	$(GO) build -o $(CURDIR)/bin/dsks-serve ./cmd/dsks-serve
	./scripts/shard-smoke.sh $(CURDIR)/bin/dsks-serve

# replica-smoke mirrors the CI job: boot 4 shards with one WAL-shipped
# read replica each, verify the replicas converge after an insert storm,
# kill one shard's primary storage mid-read-hammer and require ZERO 5xx
# and ZERO 206 (failover, not degradation), then heal and assert the
# primary is reclaimed and fresh writes replicate (docs/SHARDING.md,
# docs/ROBUSTNESS.md).
replica-smoke:
	$(GO) build -o $(CURDIR)/bin/dsks-serve ./cmd/dsks-serve
	./scripts/replica-smoke.sh $(CURDIR)/bin/dsks-serve

# bench-shard mirrors the CI job: run the same read-only mix against
# 1-, 2- and 4-shard servers over the same dataset, accumulate the data
# points in BENCH_shard.json, and assert the 4-shard router sustains
# >= 2.5x the single-shard read QPS at equal-or-better p99
# (docs/SHARDING.md).
bench-shard:
	$(GO) build -o $(CURDIR)/bin/dsks-serve ./cmd/dsks-serve
	./scripts/bench-shard.sh $(CURDIR)/bin/dsks-serve BENCH_shard.json

# bench-oracle mirrors the CI job: replay the same diversified-heavy mix
# against a server without and with the ALT landmark oracle, accumulate
# both data points in BENCH_oracle.json, and assert the oracle cuts
# Dijkstra settled-node work >= 3x at equal-or-better p99
# (docs/DISTANCE.md).
bench-oracle:
	$(GO) build -o $(CURDIR)/bin/dsks-serve ./cmd/dsks-serve
	./scripts/bench-oracle.sh $(CURDIR)/bin/dsks-serve BENCH_oracle.json

# wal-smoke mirrors the CI job: boot a WAL-backed server, kill -9 it
# mid-insert-storm, reboot on the same log, and assert every acknowledged
# write survived and the group commit batches >1 record per fsync
# (docs/DURABILITY.md).
wal-smoke:
	$(GO) build -o $(CURDIR)/bin/dsks-serve ./cmd/dsks-serve
	./scripts/wal-smoke.sh $(CURDIR)/bin/dsks-serve
