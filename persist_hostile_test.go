package dsks_test

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dsks"
)

// Hostile-input coverage for OpenPath: every torn, truncated, corrupted
// or mismatched snapshot must fail with an error matching ErrBadSnapshot
// — never a panic, never a silently wrong database.

// saveTiny saves a small database into a fresh directory and returns it.
func saveTiny(t *testing.T) string {
	t.Helper()
	db, _, _, _ := buildTinyCity(t)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func wantBadSnapshot(t *testing.T, dir, scenario string) {
	t.Helper()
	_, err := dsks.OpenPath(dir, dsks.Options{})
	if err == nil {
		t.Fatalf("%s: accepted", scenario)
	}
	if !errors.Is(err, dsks.ErrBadSnapshot) {
		t.Fatalf("%s: err = %v, want ErrBadSnapshot", scenario, err)
	}
}

func TestOpenPathTruncatedGraph(t *testing.T) {
	dir := saveTiny(t)
	path := filepath.Join(dir, "graph")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	wantBadSnapshot(t, dir, "truncated graph")
}

func TestOpenPathBitFlippedObjects(t *testing.T) {
	dir := saveTiny(t)
	path := filepath.Join(dir, "objects")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	wantBadSnapshot(t, dir, "bit-flipped objects")
}

func TestOpenPathMissingManifest(t *testing.T) {
	dir := saveTiny(t)
	if err := os.Remove(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	wantBadSnapshot(t, dir, "format-2 snapshot without manifest")
}

func TestOpenPathMissingFiles(t *testing.T) {
	for _, name := range []string{"graph", "objects"} {
		dir := saveTiny(t)
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
		wantBadSnapshot(t, dir, "missing "+name)
	}
}

func TestOpenPathEmptyDir(t *testing.T) {
	wantBadSnapshot(t, t.TempDir(), "empty directory")
}

func TestOpenPathUnknownFormat(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte(`{"format": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	wantBadSnapshot(t, dir, "unknown format version")
}

func TestOpenPathUndecodableMeta(t *testing.T) {
	dir := saveTiny(t)
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantBadSnapshot(t, dir, "undecodable meta.json")
}

// downgradeToV1 rewrites a saved snapshot as the legacy format-1 layout
// (no manifest), applying edit to the decoded meta first.
func downgradeToV1(t *testing.T, dir string, edit func(map[string]any)) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	var meta map[string]any
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	meta["format"] = 1
	if edit != nil {
		edit(meta)
	}
	out, err := json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), out, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
}

func TestOpenPathReadsLegacyV1(t *testing.T) {
	dir := saveTiny(t)
	downgradeToV1(t, dir, nil)
	if _, err := dsks.OpenPath(dir, dsks.Options{}); err != nil {
		t.Fatalf("legacy v1 snapshot rejected: %v", err)
	}
}

func TestOpenPathVocabMismatch(t *testing.T) {
	dir := saveTiny(t)
	downgradeToV1(t, dir, func(meta map[string]any) {
		meta["vocabSize"] = 99999
	})
	wantBadSnapshot(t, dir, "vocabulary size mismatch")
}

func TestOpenPathUnknownIndexKind(t *testing.T) {
	dir := saveTiny(t)
	downgradeToV1(t, dir, func(meta map[string]any) {
		meta["index"] = "B-TREE-OF-DOOM"
	})
	wantBadSnapshot(t, dir, "unknown index kind")
}
