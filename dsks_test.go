package dsks_test

import (
	"math"
	"testing"

	"dsks"
)

// buildTinyCity builds the quickstart-style fixture used by the public
// API tests: a 2×2 grid with restaurants.
func buildTinyCity(t testing.TB) (*dsks.DB, *dsks.Vocabulary, dsks.Position, []dsks.EdgeID) {
	t.Helper()
	g := dsks.NewGraph()
	n00 := g.AddNode(dsks.Point{X: 0, Y: 0})
	n10 := g.AddNode(dsks.Point{X: 100, Y: 0})
	n01 := g.AddNode(dsks.Point{X: 0, Y: 100})
	n11 := g.AddNode(dsks.Point{X: 100, Y: 100})
	var edges []dsks.EdgeID
	for _, pair := range [][2]dsks.NodeID{{n00, n10}, {n00, n01}, {n10, n11}, {n01, n11}} {
		e, err := g.AddEdge(pair[0], pair[1], 100)
		if err != nil {
			t.Fatal(err)
		}
		edges = append(edges, e)
	}
	g.Freeze()

	vocab := dsks.NewVocabulary()
	objects := dsks.NewCollection()
	objects.Add(dsks.Position{Edge: edges[0], Offset: 20}, vocab.InternAll([]string{"pizza", "pasta"}))
	objects.Add(dsks.Position{Edge: edges[0], Offset: 60}, vocab.InternAll([]string{"pizza", "sushi"}))
	objects.Add(dsks.Position{Edge: edges[3], Offset: 50}, vocab.InternAll([]string{"pizza", "pasta"}))
	objects.Add(dsks.Position{Edge: edges[2], Offset: 10}, vocab.InternAll([]string{"coffee"}))

	db, err := dsks.Open(g, objects, vocab.Size(), dsks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db, vocab, dsks.Position{Edge: edges[0], Offset: 0}, edges
}

func TestPublicSearch(t *testing.T) {
	db, vocab, origin, _ := buildTinyCity(t)
	terms, err := vocab.LookupAll([]string{"pizza", "pasta"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Search(dsks.SKQuery{Pos: origin, Terms: terms, DeltaMax: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("got %d candidates, want 2 (pizza+pasta places)", len(res.Candidates))
	}
	if res.Candidates[0].Dist > res.Candidates[1].Dist {
		t.Error("candidates not distance-ordered")
	}
	// The closest match is 20m along the first street.
	if math.Abs(res.Candidates[0].Dist-20) > 1e-9 {
		t.Errorf("first candidate at %v, want 20", res.Candidates[0].Dist)
	}
}

func TestPublicSearchRangeLimit(t *testing.T) {
	db, vocab, origin, _ := buildTinyCity(t)
	terms, err := vocab.LookupAll([]string{"pizza"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Search(dsks.SKQuery{Pos: origin, Terms: terms, DeltaMax: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 {
		t.Fatalf("range 30 found %d candidates, want 1", len(res.Candidates))
	}
}

func TestPublicDiversified(t *testing.T) {
	db, vocab, origin, _ := buildTinyCity(t)
	terms, err := vocab.LookupAll([]string{"pizza"})
	if err != nil {
		t.Fatal(err)
	}
	q := dsks.DivQuery{
		SKQuery: dsks.SKQuery{Pos: origin, Terms: terms, DeltaMax: 500},
		K:       2,
		Lambda:  0.3, // diversity-leaning: expect the far place in the pair
	}
	com, err := db.SearchDiversified(q)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := db.SearchDiversifiedWith(dsks.AlgoSEQ, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(com.Candidates) != 2 || len(seq.Candidates) != 2 {
		t.Fatalf("k=2 returned %d / %d objects", len(com.Candidates), len(seq.Candidates))
	}
	if math.Abs(com.F-seq.F) > 1e-9 {
		t.Errorf("COM f=%v differs from SEQ f=%v", com.F, seq.F)
	}
	// The diversity-leaning pick must span different edges.
	if com.Candidates[0].Ref.Edge == com.Candidates[1].Ref.Edge {
		t.Errorf("diversity-leaning picks share an edge: %+v", com.Candidates)
	}
}

func TestPublicAllIndexKinds(t *testing.T) {
	for _, kind := range []dsks.IndexKind{dsks.IndexIR, dsks.IndexIF, dsks.IndexSIF, dsks.IndexSIFP} {
		g := dsks.NewGraph()
		a := g.AddNode(dsks.Point{X: 0, Y: 0})
		b := g.AddNode(dsks.Point{X: 50, Y: 0})
		e, err := g.AddEdge(a, b, 50)
		if err != nil {
			t.Fatal(err)
		}
		g.Freeze()
		vocab := dsks.NewVocabulary()
		objects := dsks.NewCollection()
		objects.Add(dsks.Position{Edge: e, Offset: 25}, vocab.InternAll([]string{"x"}))
		db, err := dsks.Open(g, objects, vocab.Size(), dsks.Options{Index: kind})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		terms, err := vocab.LookupAll([]string{"x"})
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Search(dsks.SKQuery{Pos: dsks.Position{Edge: e}, Terms: terms, DeltaMax: 100})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(res.Candidates) != 1 {
			t.Fatalf("%s: found %d candidates", kind, len(res.Candidates))
		}
		if db.IndexSizeBytes() <= 0 {
			t.Errorf("%s: no index size reported", kind)
		}
	}
}

func TestPublicOpenValidation(t *testing.T) {
	if _, err := dsks.Open(nil, nil, 0, dsks.Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestPublicGenerateAndQuery(t *testing.T) {
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dsks.OpenDataset(ds, dsks.Options{Index: dsks.IndexSIF})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: 5, Keywords: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ws {
		if _, err := db.Search(dsks.SKQuery{Pos: q.Pos, Terms: q.Terms, DeltaMax: q.DeltaMax}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.ResetIO(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicNetworkDistance(t *testing.T) {
	db, _, _, edges := buildTinyCity(t)
	a := dsks.Position{Edge: edges[0], Offset: 0}
	b := dsks.Position{Edge: edges[0], Offset: 100}
	if d := db.NetworkDistance(a, b); math.Abs(d-100) > 1e-9 {
		t.Errorf("NetworkDistance = %v, want 100", d)
	}
}

func TestPublicOnDisk(t *testing.T) {
	// The whole stack on real files: results must match the in-memory run.
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 2000, 91)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := dsks.OpenDataset(ds, dsks.Options{Index: dsks.IndexSIF})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := dsks.OpenDataset(ds, dsks.Options{Index: dsks.IndexSIF, DiskDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: 8, Keywords: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ws {
		skq := dsks.SKQuery{Pos: q.Pos, Terms: q.Terms, DeltaMax: q.DeltaMax}
		a, err := mem.Search(skq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := disk.Search(skq)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Candidates) != len(b.Candidates) {
			t.Fatalf("on-disk run found %d candidates, in-memory %d",
				len(b.Candidates), len(a.Candidates))
		}
		for i := range a.Candidates {
			if a.Candidates[i].Ref != b.Candidates[i].Ref {
				t.Fatalf("candidate %d differs between disk and memory", i)
			}
		}
	}
}

func TestPublicShortestRoute(t *testing.T) {
	db, _, _, edges := buildTinyCity(t)
	a := dsks.Position{Edge: edges[0], Offset: 0}
	b := dsks.Position{Edge: edges[3], Offset: 50}
	r, err := db.ShortestRoute(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Cost-db.NetworkDistance(a, b)) > 1e-9 {
		t.Fatalf("route cost %v vs distance %v", r.Cost, db.NetworkDistance(a, b))
	}
	if len(r.Edges) < 2 {
		t.Fatalf("route = %+v", r)
	}
}
