module dsks

go 1.22
