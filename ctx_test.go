package dsks_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dsks"
)

// poolLogicalReads sums the logical page reads across every buffer pool.
func poolLogicalReads(db *dsks.DB) int64 {
	var n int64
	for _, p := range db.Snapshot().Pools {
		n += p.LogicalReads
	}
	return n
}

// TestPreCanceledQueries: a context canceled before the query starts must
// fail with ErrCanceled before touching any buffer pool.
func TestPreCanceledQueries(t *testing.T) {
	db, vocab, origin, _ := buildTinyCity(t)
	terms, err := vocab.LookupAll([]string{"pizza"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	skq := dsks.SKQuery{Pos: origin, Terms: terms, DeltaMax: 500}
	queries := map[string]func() error{
		"search": func() error { _, err := db.SearchCtx(ctx, skq); return err },
		"diversified": func() error {
			_, err := db.SearchDiversifiedCtx(ctx, dsks.DivQuery{SKQuery: skq, K: 2, Lambda: 0.5})
			return err
		},
		"knn": func() error {
			_, err := db.SearchKNNCtx(ctx, dsks.KNNQuery{Pos: origin, Terms: terms, K: 2})
			return err
		},
		"ranked": func() error {
			_, err := db.SearchRankedCtx(ctx, dsks.RankedQuery{
				Pos: origin, Terms: terms, K: 2, Alpha: 0.5, DeltaMax: 500,
			})
			return err
		},
		"collective": func() error {
			_, err := db.SearchCollectiveCtx(ctx, dsks.CollectiveQuery{
				Pos: origin, Terms: terms, DeltaMax: 500,
			})
			return err
		},
	}
	for name, run := range queries {
		before := poolLogicalReads(db)
		err := run()
		if !errors.Is(err, dsks.ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v does not unwrap to context.Canceled", name, err)
		}
		if after := poolLogicalReads(db); after != before {
			t.Errorf("%s: pre-canceled query read %d pages", name, after-before)
		}
	}

	// The cancellations are visible in the metrics.
	snap := db.Snapshot()
	var canceled int64
	for _, q := range snap.Queries {
		canceled += q.Canceled
	}
	if canceled != int64(len(queries)) {
		t.Errorf("metrics counted %d canceled queries, want %d", canceled, len(queries))
	}
}

// TestDeadlineExceededMidExpansion: with a synthetic per-miss I/O latency,
// a deadline far below the query's I/O budget must abort the expansion
// with ErrDeadlineExceeded.
func TestDeadlineExceededMidExpansion(t *testing.T) {
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dsks.OpenDataset(ds, dsks.Options{
		Index:     dsks.IndexSIF,
		IOLatency: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ResetIO(); err != nil {
		t.Fatal(err)
	}
	anchor := ds.Objects.Get(0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	// An unbounded range forces the expansion over the whole network:
	// hundreds of cold page misses at 1ms each, far past the 5ms deadline.
	_, err = db.SearchCtx(ctx, dsks.SKQuery{
		Pos: anchor.Pos, Terms: anchor.Terms[:1], DeltaMax: 1e9,
	})
	if !errors.Is(err, dsks.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v does not unwrap to context.DeadlineExceeded", err)
	}
	// The query must have started before being cut off.
	if reads := poolLogicalReads(db); reads == 0 {
		t.Error("deadline fired before any page read; expected a mid-expansion abort")
	}
}

// TestStreamStopThenNext: after Stop, Next must keep reporting a clean end
// of stream.
func TestStreamStopThenNext(t *testing.T) {
	db, vocab, origin, _ := buildTinyCity(t)
	terms, err := vocab.LookupAll([]string{"pizza"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.Stream(dsks.SKQuery{Pos: origin, Terms: terms, DeltaMax: 500})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Next(); err != nil || !ok {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	s.Stop()
	for i := 0; i < 3; i++ {
		c, ok, err := s.Next()
		if ok || err != nil {
			t.Fatalf("Next after Stop: (%+v, %v, %v), want clean end", c, ok, err)
		}
	}
	// The stream recorded exactly one metrics sample.
	if n := db.Snapshot().Queries[dsks.KindStream].Count; n != 1 {
		t.Errorf("stream samples = %d, want 1", n)
	}
}

// TestStreamCtxCanceled: canceling the stream's context makes the next
// pull fail with ErrCanceled.
func TestStreamCtxCanceled(t *testing.T) {
	db, vocab, origin, _ := buildTinyCity(t)
	terms, err := vocab.LookupAll([]string{"pizza"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s, err := db.StreamCtx(ctx, dsks.SKQuery{Pos: origin, Terms: terms, DeltaMax: 500})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, _, err := s.Next(); !errors.Is(err, dsks.ErrCanceled) {
		t.Fatalf("Next after cancel: err = %v, want ErrCanceled", err)
	}
	snap := db.Snapshot().Queries[dsks.KindStream]
	if snap.Count != 1 || snap.Canceled != 1 {
		t.Errorf("stream metrics = %+v, want one canceled sample", snap)
	}
}

// TestMetricsMatchGroundTruth: the registry's per-kind aggregates must
// equal the sums of the per-query stats the public API returns.
func TestMetricsMatchGroundTruth(t *testing.T) {
	db, vocab, origin, _ := buildTinyCity(t)
	terms, err := vocab.LookupAll([]string{"pizza"})
	if err != nil {
		t.Fatal(err)
	}
	skq := dsks.SKQuery{Pos: origin, Terms: terms, DeltaMax: 500}

	type truth struct {
		count, nodes, edges, cands, reads int64
	}
	want := map[dsks.QueryKind]*truth{}
	add := func(kind dsks.QueryKind, res dsks.Result) {
		tr := want[kind]
		if tr == nil {
			tr = &truth{}
			want[kind] = tr
		}
		tr.count++
		tr.nodes += res.Stats.NodesPopped
		tr.edges += res.Stats.EdgesVisited
		tr.cands += res.Stats.Candidates
		tr.reads += res.DiskReads
	}

	for i := 0; i < 3; i++ {
		res, err := db.Search(skq)
		if err != nil {
			t.Fatal(err)
		}
		add(dsks.KindSearch, res)
	}
	div, err := db.SearchDiversified(dsks.DivQuery{SKQuery: skq, K: 2, Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	add(dsks.KindDiversified, div)
	knn, err := db.SearchKNN(dsks.KNNQuery{Pos: origin, Terms: terms, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	add(dsks.KindKNN, knn)
	rk, err := db.SearchRanked(dsks.RankedQuery{Pos: origin, Terms: terms, K: 2, Alpha: 0.5, DeltaMax: 500})
	if err != nil {
		t.Fatal(err)
	}
	add(dsks.KindRanked, rk)
	cl, err := db.SearchCollective(dsks.CollectiveQuery{Pos: origin, Terms: terms, DeltaMax: 500})
	if err != nil {
		t.Fatal(err)
	}
	add(dsks.KindCollective, cl)

	snap := db.Snapshot()
	for kind, tr := range want {
		q := snap.Queries[kind]
		if q.Count != tr.count {
			t.Errorf("%s: count %d, want %d", kind, q.Count, tr.count)
		}
		if q.NodesPopped != tr.nodes || q.EdgesVisited != tr.edges || q.Candidates != tr.cands {
			t.Errorf("%s: counters (%d,%d,%d), want (%d,%d,%d)", kind,
				q.NodesPopped, q.EdgesVisited, q.Candidates, tr.nodes, tr.edges, tr.cands)
		}
		if q.DiskReads != tr.reads {
			t.Errorf("%s: disk reads %d, want %d", kind, q.DiskReads, tr.reads)
		}
		if q.Errors != 0 || q.Canceled != 0 {
			t.Errorf("%s: unexpected errors in %+v", kind, q)
		}
	}

	// Reset clears the aggregates.
	db.Metrics().Reset()
	if n := db.Snapshot().TotalQueries(); n != 0 {
		t.Errorf("after Reset, TotalQueries = %d", n)
	}
}

// TestMetricsConcurrent hammers one DB from several goroutines; with
// -race this validates the lock-free recording path end to end.
func TestMetricsConcurrent(t *testing.T) {
	db, vocab, origin, _ := buildTinyCity(t)
	terms, err := vocab.LookupAll([]string{"pizza"})
	if err != nil {
		t.Fatal(err)
	}
	skq := dsks.SKQuery{Pos: origin, Terms: terms, DeltaMax: 500}
	const workers = 4
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := db.Search(skq); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	q := db.Snapshot().Queries[dsks.KindSearch]
	if q.Count != workers*perWorker {
		t.Errorf("count = %d, want %d", q.Count, workers*perWorker)
	}
	if q.Latency.Count != q.Count {
		t.Errorf("latency samples %d != count %d", q.Latency.Count, q.Count)
	}
}

// TestTraceHook: the installed hook sees every query's stage timings.
func TestTraceHook(t *testing.T) {
	db, vocab, origin, _ := buildTinyCity(t)
	terms, err := vocab.LookupAll([]string{"pizza"})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[dsks.QueryKind]dsks.Trace{}
	db.SetTraceHook(func(kind dsks.QueryKind, trace dsks.Trace) {
		mu.Lock()
		seen[kind] = trace
		mu.Unlock()
	})
	skq := dsks.SKQuery{Pos: origin, Terms: terms, DeltaMax: 500}
	if _, err := db.Search(skq); err != nil {
		t.Fatal(err)
	}
	div, err := db.SearchDiversified(dsks.DivQuery{SKQuery: skq, K: 2, Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if tr, ok := seen[dsks.KindSearch]; !ok || tr.Total <= 0 {
		t.Errorf("search trace = %+v, ok=%v", seen[dsks.KindSearch], ok)
	}
	tr, ok := seen[dsks.KindDiversified]
	if !ok || tr.Total <= 0 {
		t.Fatalf("diversified trace missing (%+v)", seen)
	}
	if tr != div.Trace {
		t.Errorf("hook trace %+v != result trace %+v", tr, div.Trace)
	}

	// Uninstall: no further calls.
	db.SetTraceHook(nil)
	before := len(seen)
	if _, err := db.Search(skq); err != nil {
		t.Fatal(err)
	}
	if len(seen) != before {
		t.Error("hook called after uninstall")
	}
}

// TestOpenBadOptions: invalid options are rejected with ErrBadOptions.
func TestOpenBadOptions(t *testing.T) {
	g := dsks.NewGraph()
	a := g.AddNode(dsks.Point{X: 0, Y: 0})
	b := g.AddNode(dsks.Point{X: 50, Y: 0})
	e, err := g.AddEdge(a, b, 50)
	if err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	vocab := dsks.NewVocabulary()
	objects := dsks.NewCollection()
	objects.Add(dsks.Position{Edge: e, Offset: 25}, vocab.InternAll([]string{"x"}))

	bad := []dsks.Options{
		{BufferFraction: -0.5},
		{IOLatency: -time.Millisecond},
		{PartitionCuts: -1},
		{Index: "btree-of-doom"},
	}
	for _, opts := range bad {
		if _, err := dsks.Open(g, objects, vocab.Size(), opts); !errors.Is(err, dsks.ErrBadOptions) {
			t.Errorf("Open(%+v) err = %v, want ErrBadOptions", opts, err)
		}
	}
	if _, err := dsks.Open(nil, objects, vocab.Size(), dsks.Options{}); !errors.Is(err, dsks.ErrBadOptions) {
		t.Errorf("Open(nil graph) err = %v, want ErrBadOptions", err)
	}
}

// TestTypedErrors: the mutation paths report sentinel errors usable with
// errors.Is.
func TestTypedErrors(t *testing.T) {
	db, vocab, _, edges := buildTinyCity(t)
	terms, err := vocab.LookupAll([]string{"pizza"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert(dsks.Position{Edge: 999, Offset: 0}, terms); !errors.Is(err, dsks.ErrUnknownEdge) {
		t.Errorf("insert on bad edge: err = %v, want ErrUnknownEdge", err)
	}
	if _, err := db.Insert(dsks.Position{Edge: edges[0], Offset: 10}, []dsks.TermID{9999}); !errors.Is(err, dsks.ErrTermOutOfRange) {
		t.Errorf("insert with bad term: err = %v, want ErrTermOutOfRange", err)
	}
	if err := db.Remove(dsks.ObjectID(12345)); !errors.Is(err, dsks.ErrUnknownObject) {
		t.Errorf("remove unknown object: err = %v, want ErrUnknownObject", err)
	}

	// The query paths classify the same violations instead of letting the
	// index structures hit them unguarded (a term beyond the vocabulary
	// used to panic inside the SIF signature test).
	badEdge := dsks.SKQuery{Pos: dsks.Position{Edge: 999, Offset: 0}, Terms: terms, DeltaMax: 100}
	if _, err := db.Search(badEdge); !errors.Is(err, dsks.ErrUnknownEdge) {
		t.Errorf("search on bad edge: err = %v, want ErrUnknownEdge", err)
	}
	badTerm := dsks.SKQuery{Pos: dsks.Position{Edge: edges[0], Offset: 0}, Terms: []dsks.TermID{9999}, DeltaMax: 100}
	if _, err := db.Search(badTerm); !errors.Is(err, dsks.ErrTermOutOfRange) {
		t.Errorf("search with bad term: err = %v, want ErrTermOutOfRange", err)
	}
	if _, err := db.SearchDiversified(dsks.DivQuery{SKQuery: badTerm, K: 2, Lambda: 0.5}); !errors.Is(err, dsks.ErrTermOutOfRange) {
		t.Errorf("diversified search with bad term: err = %v, want ErrTermOutOfRange", err)
	}
	if _, err := db.SearchKNN(dsks.KNNQuery{Pos: badTerm.Pos, Terms: badTerm.Terms, K: 2}); !errors.Is(err, dsks.ErrTermOutOfRange) {
		t.Errorf("kNN search with bad term: err = %v, want ErrTermOutOfRange", err)
	}
	if _, err := db.SearchRanked(dsks.RankedQuery{Pos: badTerm.Pos, Terms: badTerm.Terms, K: 2, Alpha: 0.5, DeltaMax: 100}); !errors.Is(err, dsks.ErrTermOutOfRange) {
		t.Errorf("ranked search with bad term: err = %v, want ErrTermOutOfRange", err)
	}
	if _, err := db.SearchCollective(dsks.CollectiveQuery{Pos: badTerm.Pos, Terms: badTerm.Terms, DeltaMax: 100}); !errors.Is(err, dsks.ErrTermOutOfRange) {
		t.Errorf("collective search with bad term: err = %v, want ErrTermOutOfRange", err)
	}
	if _, err := db.Stream(badTerm); !errors.Is(err, dsks.ErrTermOutOfRange) {
		t.Errorf("stream with bad term: err = %v, want ErrTermOutOfRange", err)
	}
}

// TestInsertClampRegression: inserting with an out-of-range offset must
// clamp consistently — the query result's distance has to agree with the
// exact network distance to the object's stored position.
func TestInsertClampRegression(t *testing.T) {
	g := dsks.NewGraph()
	a := g.AddNode(dsks.Point{X: 0, Y: 0})
	b := g.AddNode(dsks.Point{X: 100, Y: 0})
	e, err := g.AddEdge(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	vocab := dsks.NewVocabulary()
	objects := dsks.NewCollection()
	objects.Add(dsks.Position{Edge: e, Offset: 10}, vocab.InternAll([]string{"seed"}))
	clampTerms := vocab.InternAll([]string{"clamped"})
	db, err := dsks.Open(g, objects, vocab.Size(), dsks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	origin := dsks.Position{Edge: e, Offset: 0}

	// Offset 250 on a 100-long edge: clamped to the far end.
	id, err := db.Insert(dsks.Position{Edge: e, Offset: 250}, clampTerms)
	if err != nil {
		t.Fatal(err)
	}
	terms, err := vocab.LookupAll([]string{"clamped"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Search(dsks.SKQuery{Pos: origin, Terms: terms, DeltaMax: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 {
		t.Fatalf("got %d candidates, want the inserted object", len(res.Candidates))
	}
	c := res.Candidates[0]
	if c.Ref.ID != id {
		t.Fatalf("found object %d, want %d", c.Ref.ID, id)
	}
	if got := c.Ref.Pos().Offset; got < 0 || got > 100 {
		t.Errorf("stored offset %v not clamped to the edge", got)
	}
	exact := db.NetworkDistance(origin, c.Ref.Pos())
	if diff := c.Dist - exact; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("query distance %v != exact network distance %v", c.Dist, exact)
	}
}
