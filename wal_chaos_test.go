package dsks

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"dsks/internal/fault"
	"dsks/internal/wal"
)

// wal_chaos_test crashes the write-ahead log at every fault point a
// mutation crosses — the record append, the group-commit fsync, and the
// checkpoint's rotation and compaction steps — and proves the invariant
// the log exists for: a reopen recovers exactly the acknowledged
// mutations. No acked write is lost, no unacked write survives as a
// half-applied ghost.

// walBase deterministically rebuilds the same initial state on every
// call, standing in for "the same process restarting after a crash".
func walBase(t *testing.T) (*Graph, *Collection, *Vocabulary, Position, []EdgeID) {
	t.Helper()
	g := NewGraph()
	var nodes []NodeID
	for i := 0; i < 4; i++ {
		nodes = append(nodes, g.AddNode(Point{X: float64(i) * 100, Y: 0}))
	}
	var edges []EdgeID
	for i := 0; i+1 < len(nodes); i++ {
		e, err := g.AddEdge(nodes[i], nodes[i+1], 100)
		if err != nil {
			t.Fatal(err)
		}
		edges = append(edges, e)
	}
	g.Freeze()
	vocab := NewVocabulary()
	objects := NewCollection()
	words := [][]string{
		{"pizza", "wine"}, {"pizza"}, {"sushi", "wine"}, {"pizza", "sushi"},
	}
	for i, w := range words {
		objects.Add(Position{Edge: edges[i%len(edges)], Offset: 25}, vocab.InternAll(w))
	}
	return g, objects, vocab, Position{Edge: edges[0], Offset: 0}, edges
}

// searchIDs runs a boolean search and returns the candidate IDs.
func searchIDs(t *testing.T, db *DB, vocab *Vocabulary, origin Position, word string) map[ObjectID]bool {
	t.Helper()
	terms, err := vocab.LookupAll([]string{word})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Search(SKQuery{Pos: origin, Terms: terms, DeltaMax: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[ObjectID]bool, len(res.Candidates))
	for _, c := range res.Candidates {
		ids[c.Ref.ID] = true
	}
	return ids
}

func TestWALRecoversMutationsWithoutSnapshot(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	g, objects, vocab, origin, edges := walBase(t)
	opts := Options{Index: IndexSIF, WALDir: walDir}
	db, err := Open(g, objects, vocab.Size(), opts)
	if err != nil {
		t.Fatal(err)
	}
	wine, err := vocab.LookupAll([]string{"wine"})
	if err != nil {
		t.Fatal(err)
	}
	id, err := db.Insert(Position{Edge: edges[1], Offset: 10}, wine)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Remove(0); err != nil {
		t.Fatal(err)
	}
	liveBefore := db.LiveObjects()
	wantWine := searchIDs(t, db, vocab, origin, "wine")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": rebuild the identical initial state, replay the log.
	g2, objects2, vocab2, origin2, _ := walBase(t)
	db2, err := Open(g2, objects2, vocab2.Size(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.LiveObjects(); got != liveBefore {
		t.Fatalf("LiveObjects after replay = %d, want %d", got, liveBefore)
	}
	gotWine := searchIDs(t, db2, vocab2, origin2, "wine")
	if len(gotWine) != len(wantWine) {
		t.Fatalf("wine candidates after replay = %v, want %v", gotWine, wantWine)
	}
	for w := range wantWine {
		if !gotWine[w] {
			t.Fatalf("wine candidates after replay = %v, want %v", gotWine, wantWine)
		}
	}
	if !gotWine[id] {
		t.Fatalf("replayed insert %d missing from candidates %v", id, gotWine)
	}
	if !db2.sys.DS.Objects.Removed(0) {
		t.Fatal("replayed remove of object 0 not applied")
	}
}

func TestWALMismatchedBaseRejected(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	g, objects, vocab, _, edges := walBase(t)
	opts := Options{Index: IndexSIF, WALDir: walDir}
	db, err := Open(g, objects, vocab.Size(), opts)
	if err != nil {
		t.Fatal(err)
	}
	wine, err := vocab.LookupAll([]string{"wine"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert(Position{Edge: edges[1], Offset: 10}, wine); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Reopening over a base with one extra object shifts every ID the
	// log recorded: replay must refuse rather than misnumber.
	g2, objects2, vocab2, _, edges2 := walBase(t)
	objects2.Add(Position{Edge: edges2[0], Offset: 50}, vocab2.InternAll([]string{"pizza"}))
	if _, err := Open(g2, objects2, vocab2.Size(), opts); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("Open over a mismatched base = %v, want ErrBadWAL", err)
	}
}

// TestWALCrashAtEveryMutationFaultPoint injects a fault at each I/O
// step of the mutation path — the append write (failed outright or
// torn) and the group-commit fsync — then reopens and verifies the
// exactly-acked invariant.
func TestWALCrashAtEveryMutationFaultPoint(t *testing.T) {
	cases := []struct {
		name string
		cfg  fault.Config
	}{
		{"append-fail", fault.Config{Op: fault.OpWrite, EveryN: 1, Mode: fault.ModeFail}},
		{"append-torn", fault.Config{Op: fault.OpWrite, EveryN: 1, Mode: fault.ModeTornWrite, TornBytes: 5}},
		{"fsync-fail", fault.Config{Op: fault.OpSync, EveryN: 1, Mode: fault.ModeFail}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			walDir := filepath.Join(t.TempDir(), "wal")
			g, objects, vocab, origin, edges := walBase(t)
			baseLen := objects.Len()
			opts := Options{Index: IndexSIF, WALDir: walDir, WALStrictSync: true}
			db, err := Open(g, objects, vocab.Size(), opts)
			if err != nil {
				t.Fatal(err)
			}
			wine, err := vocab.LookupAll([]string{"wine"})
			if err != nil {
				t.Fatal(err)
			}

			// Phase 1: acknowledged mutations, before any fault.
			var acked []ObjectID
			for i := 0; i < 3; i++ {
				id, err := db.Insert(Position{Edge: edges[i%len(edges)], Offset: 10}, wine)
				if err != nil {
					t.Fatal(err)
				}
				acked = append(acked, id)
			}
			if err := db.Remove(acked[0]); err != nil {
				t.Fatal(err)
			}

			// Phase 2: the fault campaign. Injected directly into the log
			// so the page stores stay healthy — this is a WAL crash, not a
			// disk-wide outage.
			inj, err := fault.New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			db.wal.SetInjector(inj)
			if _, err := db.Insert(Position{Edge: edges[0], Offset: 60}, wine); err == nil {
				t.Fatal("insert under the fault campaign was acknowledged")
			} else if tc.cfg.Mode == fault.ModeFail && !errors.Is(err, fault.ErrInjected) {
				// (A torn write surfaces as io.ErrShortWrite instead.)
				t.Fatalf("faulted insert error %v does not wrap fault.ErrInjected", err)
			}
			if err := db.Remove(acked[1]); err == nil {
				t.Fatal("remove under the fault campaign was acknowledged")
			}
			if tc.cfg.Op == fault.OpSync {
				// A failed fsync poisons the log: the medium accepted bytes
				// it cannot flush, so no later write can be trusted either.
				if _, err := db.Insert(Position{Edge: edges[0], Offset: 70}, wine); !errors.Is(err, ErrWALClosed) {
					t.Fatalf("insert on poisoned log = %v, want ErrWALClosed", err)
				}
			}
			_ = db.Close() // a poisoned log reports its sticky error; the crash discards it

			// Phase 3: restart. Exactly the acked mutations come back.
			g2, objects2, vocab2, origin2, _ := walBase(t)
			db2, err := Open(g2, objects2, vocab2.Size(), Options{Index: IndexSIF, WALDir: walDir})
			if err != nil {
				t.Fatalf("reopen after %s: %v", tc.name, err)
			}
			defer db2.Close()
			col := db2.sys.DS.Objects
			if col.Len() != baseLen+len(acked) {
				t.Fatalf("recovered %d allocated IDs, want %d (base %d + %d acked inserts)",
					col.Len(), baseLen+len(acked), baseLen, len(acked))
			}
			if col.Removed(acked[1]) {
				t.Fatalf("unacked remove of %d survived the crash", acked[1])
			}
			if !col.Removed(acked[0]) {
				t.Fatalf("acked remove of %d was lost", acked[0])
			}
			wantLive := baseLen + len(acked) - 1
			if got := db2.LiveObjects(); got != wantLive {
				t.Fatalf("LiveObjects after recovery = %d, want %d", got, wantLive)
			}
			ids := searchIDs(t, db2, vocab2, origin2, "wine")
			for _, id := range acked[1:] {
				if !ids[id] {
					t.Fatalf("acked insert %d missing from recovered candidates %v", id, ids)
				}
			}
			_ = origin
		})
	}
}

// TestWALCheckpointCrashAtEveryPoint crashes SaveTo's log checkpoint at
// each of its commit points (drain, rotation, compaction) and verifies
// that snapshot-plus-log still recovers every acknowledged mutation.
func TestWALCheckpointCrashAtEveryPoint(t *testing.T) {
	defer func() { wal.CrashHook = nil }()
	for _, point := range wal.CrashPoints {
		t.Run(point, func(t *testing.T) {
			tmp := t.TempDir()
			walDir := filepath.Join(tmp, "wal")
			snapDir := filepath.Join(tmp, "snap")
			g, objects, vocab, origin, edges := walBase(t)
			db, err := Open(g, objects, vocab.Size(), Options{Index: IndexSIF, WALDir: walDir})
			if err != nil {
				t.Fatal(err)
			}
			wine, err := vocab.LookupAll([]string{"wine"})
			if err != nil {
				t.Fatal(err)
			}
			var acked []ObjectID
			for i := 0; i < 3; i++ {
				id, err := db.Insert(Position{Edge: edges[i%len(edges)], Offset: 10}, wine)
				if err != nil {
					t.Fatal(err)
				}
				acked = append(acked, id)
			}

			wal.CrashHook = func(p string) error {
				if p == point {
					return fmt.Errorf("chaos: power loss at %s", p)
				}
				return nil
			}
			if err := db.SaveTo(snapDir); err == nil {
				t.Fatalf("SaveTo with a checkpoint crash at %s returned nil", point)
			}
			wal.CrashHook = nil
			db.Close()

			// The snapshot committed before the checkpoint began, so the
			// crash only left the log longer than strictly needed. Replay
			// over the snapshot is idempotent: everything acked survives,
			// nothing is applied twice.
			db2, err := OpenPath(snapDir, Options{WALDir: walDir})
			if err != nil {
				t.Fatalf("OpenPath after checkpoint crash at %s: %v", point, err)
			}
			defer db2.Close()
			if got := db2.LiveObjects(); got != 4+len(acked) {
				t.Fatalf("LiveObjects after crash at %s = %d, want %d", point, got, 4+len(acked))
			}
			ids := searchIDs(t, db2, vocab, origin, "wine")
			for _, id := range acked {
				if !ids[id] {
					t.Fatalf("acked insert %d missing after checkpoint crash at %s (got %v)", id, point, ids)
				}
			}
			// And the recovered database keeps working: mutate and save again.
			if _, err := db2.Insert(Position{Edge: edges[0], Offset: 80}, wine); err != nil {
				t.Fatalf("insert after recovery from crash at %s: %v", point, err)
			}
			if err := db2.SaveTo(snapDir); err != nil {
				t.Fatalf("clean SaveTo after recovery from crash at %s: %v", point, err)
			}
		})
	}
}

// TestWALGroupCommitUnderConcurrentMutators verifies the group-commit
// economics: concurrent committers share fsyncs, so the log issues
// strictly fewer fsyncs than it acknowledges records.
func TestWALGroupCommitUnderConcurrentMutators(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	g, objects, vocab, _, edges := walBase(t)
	db, err := Open(g, objects, vocab.Size(), Options{Index: IndexSIF, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	wine, err := vocab.LookupAll([]string{"wine"})
	if err != nil {
		t.Fatal(err)
	}

	const writers, per = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := db.Insert(Position{Edge: edges[w%len(edges)], Offset: 10}, wine); err != nil {
					t.Errorf("concurrent insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	counters := db.Snapshot().Counters
	synced := counters["wal_synced_records_total"]
	fsyncs := counters["wal_fsyncs_total"]
	if synced != writers*per {
		t.Fatalf("wal_synced_records_total = %d, want %d", synced, writers*per)
	}
	if fsyncs == 0 || fsyncs >= synced {
		t.Fatalf("group commit degenerated: %d fsyncs for %d acked records", fsyncs, synced)
	}
	t.Logf("group commit: %d records over %d fsyncs (%.1f per batch)",
		synced, fsyncs, float64(synced)/float64(fsyncs))
}
