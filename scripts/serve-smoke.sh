#!/usr/bin/env bash
# Serve smoke test (run by `make serve-smoke` and the CI serve-smoke job):
# boot dsks-serve deliberately under-provisioned so the hammer provokes
# load shedding, then assert
#   - zero 5xx / transport errors and a warm result cache (-strict),
#   - 429s observed, every one carrying Retry-After (-expect-429),
#   - SIGTERM drains cleanly with exit code 0.
set -u

BIN="${1:?usage: serve-smoke.sh <path-to-dsks-serve>}"
ADDR="127.0.0.1:18080"

"$BIN" -addr "$ADDR" -preset SYN -scale 2000 -index SIF \
    -max-inflight 2 -queue-depth 4 -iolat 200us -cache-size 1024 &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null' EXIT

if ! "$BIN" -hammer -target "http://$ADDR" -preset SYN -scale 2000 \
    -n 600 -c 24 -distinct 24 -strict -expect-429; then
    echo "serve-smoke: hammer assertions failed" >&2
    exit 1
fi

kill -TERM "$SERVER"
wait "$SERVER"
CODE=$?
trap - EXIT
if [ "$CODE" -ne 0 ]; then
    echo "serve-smoke: server exited $CODE after SIGTERM, want 0" >&2
    exit 1
fi
echo "serve-smoke: ok (shed under load, warm cache, clean drain)"
