#!/usr/bin/env bash
# WAL smoke test (run by `make wal-smoke` and the CI wal-smoke job):
# boot dsks-serve with a write-ahead log, drive a concurrent insert storm
# over HTTP while recording every acknowledged response, kill -9 the
# server mid-storm, then reboot it on the same log and assert
#   - the reopen replays the log (the server refuses to boot on a log
#     that contradicts its base, so booting is itself a consistency check),
#   - every acknowledged insert survived: liveObjects grew by at least
#     the acked count, and by at most acked + one in-flight per worker
#     (the indeterminate writes the durability contract allows),
#   - the replayed-record count and durable LSN agree with that delta,
# then run the hammer's mutation mix against the revived server in
# -strict mode, assert the group commit batched >1 record per fsync,
# and finally SIGTERM it and require a clean drain (exit 0).
set -u

BIN="${1:?usage: wal-smoke.sh <path-to-dsks-serve>}"
ADDR="127.0.0.1:18085"
WORK="$(mktemp -d)"
WORKERS=4
STORM_ACKS=120

SERVER=""
cleanup() {
    [ -n "$SERVER" ] && kill "$SERVER" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

boot() {
    "$BIN" -addr "$ADDR" -preset SYN -scale 400 -index SIF -wal "$WORK/wal" &
    SERVER=$!
    for _ in $(seq 1 50); do
        curl -sf -m 2 "http://$ADDR/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "wal-smoke: server at $ADDR never became healthy" >&2
    return 1
}

varz() { # varz <python-expression over the parsed /varz dict v>
    curl -sf -m 5 "http://$ADDR/varz" | python3 -c "
import json, sys
v = json.load(sys.stdin)
print($1)"
}

boot || exit 1
BASE=$(varz "v['liveObjects']") || exit 1
echo "wal-smoke: serving $BASE objects, storming with $WORKERS workers"

# One acked insert per line; a worker stops at the first failed or
# unacknowledged request (the kill -9 below). Responses are pretty-printed
# JSON spanning several lines, so acks are counted as lines carrying the
# assigned "id", never with a bare wc -l.
storm() {
    while :; do
        resp=$(curl -s -m 2 -X POST -H 'Content-Type: application/json' \
            -d "{\"edge\":$1,\"offset\":0.5,\"terms\":[1,2]}" \
            "http://$ADDR/v1/insert") || return 0
        case "$resp" in
        *'"id"'*) echo "$resp" >>"$WORK/acks.$1" ;;
        *) return 0 ;;
        esac
    done
}
PIDS=""
for w in $(seq 1 "$WORKERS"); do
    storm "$w" &
    PIDS="$PIDS $!"
done
for _ in $(seq 1 300); do
    [ "$(cat "$WORK"/acks.* 2>/dev/null | grep -c '"id"')" -ge "$STORM_ACKS" ] && break
    sleep 0.1
done

kill -9 "$SERVER"
wait "$SERVER" 2>/dev/null
for p in $PIDS; do wait "$p" 2>/dev/null; done
ACKED=$(cat "$WORK"/acks.* 2>/dev/null | grep -c '"id"')
if [ "$ACKED" -lt "$STORM_ACKS" ]; then
    echo "wal-smoke: only $ACKED inserts acked before the kill, want >= $STORM_ACKS" >&2
    exit 1
fi
echo "wal-smoke: kill -9 after $ACKED acked inserts; rebooting on the log"

boot || {
    echo "wal-smoke: server failed to reopen snapshotless base + log" >&2
    exit 1
}
LIVE=$(varz "v['liveObjects']") || exit 1
REPLAYED=$(varz "v['metrics']['Counters']['wal_replayed_records_total']") || exit 1
DURABLE=$(varz "v['durableLSN']") || exit 1
GREW=$((LIVE - BASE))
echo "wal-smoke: reopened with $LIVE objects (acked $ACKED, replayed $REPLAYED, durable LSN $DURABLE)"
if [ "$GREW" -lt "$ACKED" ]; then
    echo "wal-smoke: LOST ACKED WRITES: $GREW survived of $ACKED acknowledged" >&2
    exit 1
fi
if [ "$GREW" -gt $((ACKED + WORKERS)) ]; then
    echo "wal-smoke: $GREW inserts survived but only $ACKED acked + $WORKERS in flight" >&2
    exit 1
fi
if [ "$REPLAYED" -ne "$GREW" ] || [ "$DURABLE" -ne "$GREW" ]; then
    echo "wal-smoke: replayed=$REPLAYED durableLSN=$DURABLE disagree with object growth $GREW" >&2
    exit 1
fi

# Phase 2: the load driver's mutation mix against the revived server.
# -strict asserts zero 5xx and per-worker version monotonicity.
if ! "$BIN" -hammer -target "http://$ADDR" -preset SYN -scale 400 \
    -n 600 -c 8 -mix 'search:1,insert:3,remove:2' -strict; then
    echo "wal-smoke: mutation hammer failed against the revived server" >&2
    exit 1
fi
FSYNCS=$(varz "v['metrics']['Counters']['wal_fsyncs_total']") || exit 1
SYNCED=$(varz "v['metrics']['Counters']['wal_synced_records_total']") || exit 1
if [ "$FSYNCS" -le 0 ] || [ "$SYNCED" -le "$FSYNCS" ]; then
    echo "wal-smoke: no group commit: $SYNCED records over $FSYNCS fsyncs" >&2
    exit 1
fi
echo "wal-smoke: group commit batched $SYNCED records into $FSYNCS fsyncs"

kill -TERM "$SERVER"
wait "$SERVER"
CODE=$?
SERVER=""
if [ "$CODE" -ne 0 ]; then
    echo "wal-smoke: server exited $CODE after SIGTERM, want 0" >&2
    exit 1
fi
echo "wal-smoke: ok (acked writes survived kill -9, group commit batching, clean drain)"
