#!/usr/bin/env bash
# Replica-failover smoke test (run by `make replica-smoke` and the CI
# replica-smoke job): boot dsks-serve sharded 4 ways with one WAL-shipped
# read replica per shard and the result cache disabled (every read hits
# storage, so failover is actually exercised), then
#   - drive an insert-heavy mixed hammer and assert every replica
#     converges to its primary's commit LSN (appliedLSN == lsn, lag 0),
#   - kill shard 0's primary storage mid-read-hammer through the
#     shard-targeted chaos endpoint and require ZERO 5xx and ZERO 206:
#     with replicas the router must fail over, not degrade — plus
#     failovers_total > 0 and shard 0 reporting health "replica",
#   - heal, and assert a probe leg reclaims the primary (health back to
#     "primary") and fresh writes converge to the replicas again,
#   - finish with a full mixed strict hammer and a clean drain (exit 0).
set -u

BIN="${1:?usage: replica-smoke.sh <path-to-dsks-serve>}"
ADDR="127.0.0.1:18087"
WALDIR="$(mktemp -d)"
trap 'rm -rf "$WALDIR"' EXIT

"$BIN" -addr "$ADDR" -preset SYN -scale 500 -index SIF \
    -shards 4 -replicas 1 -partial-results -enable-chaos \
    -wal "$WALDIR" -cache-size -1 \
    -hedge-after 25ms -max-staleness 100000 -leg-retries 2 \
    -breaker-cooldown 500ms &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null; rm -rf "$WALDIR"' EXIT

# wait_converged polls /varz until every replica's appliedLSN matches its
# shard's commit LSN (quiesced writes), failing after ~30s.
wait_converged() {
    for i in $(seq 1 60); do
        if curl -s "http://$ADDR/varz" | python3 -c '
import json, sys
v = json.load(sys.stdin)
shards = v.get("shards") or []
assert shards, "no shards section"
for s in shards:
    for r in s.get("replicas") or [{"appliedLSN": -1, "lag": -1}]:
        assert not r.get("error"), "replica error: %s" % r["error"]
        assert r["appliedLSN"] == s["lsn"] and r["lag"] == 0, "lagging"
' 2>/dev/null; then
            return 0
        fi
        sleep 0.5
    done
    echo "replica-smoke: replicas did not converge within 30s" >&2
    curl -s "http://$ADDR/varz" | head -c 2000 >&2
    return 1
}

# Phase 1: insert-heavy mixed load (strict), then full convergence. The
# cache is disabled server-side, so strict runs carry -allow-cold-cache.
if ! "$BIN" -hammer -target "http://$ADDR" -preset SYN -scale 500 \
    -n 500 -c 6 -distinct 32 \
    -mix "search:2,insert:4,remove:1" -strict -allow-cold-cache; then
    echo "replica-smoke: insert-storm strict hammer failed" >&2
    exit 1
fi
if ! wait_converged; then
    exit 1
fi
echo "replica-smoke: replicas converged after the insert storm"

# Phase 2: shard 0's primary storage dies; a read-only strict hammer must
# see full 200 service — zero 5xx AND zero 206 — because every leg that
# lands on shard 0 fails over to its converged replica.
if ! curl -sf -o /dev/null -X POST "http://$ADDR/v1/chaos" \
    -d '{"spec": "read:every=1", "shard": 0}'; then
    echo "replica-smoke: arming shard-0 read faults failed" >&2
    exit 1
fi
if ! "$BIN" -hammer -target "http://$ADDR" -preset SYN -scale 500 \
    -n 600 -c 6 -distinct 32 \
    -mix "search:4,diversified:2,knn:2,ranked:1" -strict -allow-cold-cache; then
    echo "replica-smoke: strict read hammer failed with shard 0 down (5xx or 206 leaked)" >&2
    exit 1
fi
if ! curl -s "http://$ADDR/varz" | python3 -c '
import json, sys
v = json.load(sys.stdin)
c = v["metrics"]["Counters"]
assert c.get("failovers_total", 0) > 0, "no failovers counted"
assert v["shards"][0]["health"] == "replica", "shard 0 health %r" % v["shards"][0]["health"]
'; then
    echo "replica-smoke: failover not reflected in /varz (failovers_total, shard-0 health)" >&2
    exit 1
fi
if ! curl -s "http://$ADDR/healthz" | python3 -c '
import json, sys
v = json.load(sys.stdin)
assert v["shards"] == ["replica", "primary", "primary", "primary"], v["shards"]
'; then
    echo "replica-smoke: /healthz shard vector wrong with shard 0 on replica" >&2
    exit 1
fi
echo "replica-smoke: zero-downtime failover held (no 5xx, no 206, shard 0 on replica)"

# Phase 3: heal. After the down-cooldown a probe leg must reclaim the
# primary; keep sending wide queries to feed the probe.
if ! curl -sf -o /dev/null -X POST "http://$ADDR/v1/chaos" -d '{"spec": ""}'; then
    echo "replica-smoke: clearing faults failed" >&2
    exit 1
fi
QUERY="/v1/search?edge=3&offset=0.4&terms=1&deltaMax=20000"
reclaimed=0
for i in $(seq 1 60); do
    code="$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR$QUERY")"
    if [ "$code" != 200 ]; then
        echo "replica-smoke: query during heal returned $code" >&2
        exit 1
    fi
    if curl -s "http://$ADDR/healthz" | python3 -c '
import json, sys
assert json.load(sys.stdin)["shards"][0] == "primary"
' 2>/dev/null; then
        reclaimed=1
        break
    fi
    sleep 0.5
done
if [ "$reclaimed" -ne 1 ]; then
    echo "replica-smoke: shard 0 never reclaimed its primary after healing" >&2
    exit 1
fi
echo "replica-smoke: primary reclaimed after heal"

# Phase 4: fresh writes replicate again, and the full mixed strict hammer
# passes end to end.
if ! "$BIN" -hammer -target "http://$ADDR" -preset SYN -scale 500 \
    -n 400 -c 6 -distinct 32 \
    -mix "search:4,diversified:2,knn:2,ranked:1,insert:2,remove:1" -strict -allow-cold-cache; then
    echo "replica-smoke: post-heal mixed strict hammer failed" >&2
    exit 1
fi
if ! wait_converged; then
    exit 1
fi

kill -TERM "$SERVER"
wait "$SERVER"
CODE=$?
trap 'rm -rf "$WALDIR"' EXIT
if [ "$CODE" -ne 0 ]; then
    echo "replica-smoke: server exited $CODE after SIGTERM, want 0" >&2
    exit 1
fi
echo "replica-smoke: ok (replicas converged, zero-downtime failover, primary reclaimed, clean drain)"
