#!/usr/bin/env bash
# Shard-scaling benchmark (run by `make bench-shard` and the CI
# bench-shard job): boot dsks-serve at 1, 2 and 4 shards over the same
# dataset — result cache disabled so every read walks storage, synthetic
# per-miss I/O latency so modeled work dominates — and replay the same
# read-only mix against each. The hammer upserts one labeled entry per
# shard count into BENCH_shard.json; the gate at the end asserts the
# 4-shard router sustains >= 2.5x the single-shard read QPS at
# equal-or-better p99.
#
# The dataset is the NA analogue (sparse road network, dense objects):
# sharding divides the object/posting I/O — each shard indexes only its
# owned objects, the router prunes shards whose region lies outside the
# δmax ball, and the surviving legs run in parallel — while the
# replicated network is small enough to stay buffered. The kNN entries
# carry the workload's δmax as maxDist: unbounded kNN is the known
# anti-pattern for edge-disjoint sharding (every shard must expand far
# past its sparse objects to find k matches), which docs/SHARDING.md
# discusses.
set -u

BIN="${1:?usage: bench-shard.sh <path-to-dsks-serve> [out.json]}"
OUT="${2:-BENCH_shard.json}"

rm -f "$OUT"
for N in 1 2 4; do
    ADDR="127.0.0.1:$((18090 + N))"
    "$BIN" -addr "$ADDR" -preset NA -scale 500 -index SIF -shards "$N" \
        -max-inflight 32 -queue-depth 256 -iolat 1ms -cache-size -1 &
    SERVER=$!
    trap 'kill "$SERVER" 2>/dev/null' EXIT
    if ! "$BIN" -hammer -target "http://$ADDR" -preset NA -scale 500 \
        -n 1500 -c 8 -distinct 64 \
        -mix "search:4,diversified:2,knn:2,ranked:1" \
        -report "$OUT" -report-label "shards=$N"; then
        echo "bench-shard: hammer failed at $N shards" >&2
        exit 1
    fi
    kill -TERM "$SERVER"
    wait "$SERVER"
    CODE=$?
    trap - EXIT
    if [ "$CODE" -ne 0 ]; then
        echo "bench-shard: $N-shard server exited $CODE after SIGTERM, want 0" >&2
        exit 1
    fi
done

python3 - "$OUT" <<'EOF'
import json, sys

rep = json.load(open(sys.argv[1]))
one, four = rep["shards=1"], rep["shards=4"]
speedup = four["qps"] / one["qps"]
print(f"bench-shard: 1-shard {one['qps']:.0f} qps (p99 {one['p99Micros']}us), "
      f"4-shard {four['qps']:.0f} qps (p99 {four['p99Micros']}us) — {speedup:.2f}x")
if one["errors"] or four["errors"]:
    sys.exit(f"bench-shard: read errors ({one['errors']} at 1 shard, {four['errors']} at 4)")
if speedup < 2.5:
    sys.exit(f"bench-shard: 4-shard speedup {speedup:.2f}x below the 2.5x gate")
if four["p99Micros"] > one["p99Micros"]:
    sys.exit(f"bench-shard: 4-shard p99 {four['p99Micros']}us worse than "
             f"1-shard {one['p99Micros']}us — the speedup is not at equal p99")
EOF
if [ $? -ne 0 ]; then
    exit 1
fi
echo "bench-shard: ok (report in $OUT)"
