#!/usr/bin/env bash
# Sharded-serving smoke test (run by `make shard-smoke` and the CI
# shard-smoke job): boot dsks-serve with the road network sharded 4 ways
# behind the scatter-gather router (partial-result policy, per-shard
# write-ahead logs, chaos endpoint enabled), then
#   - hammer the full mixed read/write mix with -strict: no 5xx, LSN
#     monotone across acked mutations, coherent merged answers,
#   - take ONE shard down mid-run through the shard-targeted chaos
#     endpoint — first read faults on shard 1 (every query answer must be
#     200, a 206 partial naming the failed shard, or a clean 5xx — always
#     intact JSON, never a half-merged body), then WAL-sync faults on the
#     same shard (inserts routed there fail cleanly while inserts on the
#     healthy shards still ack id+lsn),
#   - heal the faults and assert read service returns in full (the
#     poisoned WAL stays closed by design: a log that failed a sync must
#     never acknowledge again, so shard 1 stays write-degraded),
#   - restart the server on the same per-shard WAL directories (replaying
#     every acknowledged mutation) and require a second -strict mixed
#     hammer to pass and a final clean drain (exit 0).
set -u

BIN="${1:?usage: shard-smoke.sh <path-to-dsks-serve>}"
ADDR="127.0.0.1:18086"
WALDIR="$(mktemp -d)"
trap 'rm -rf "$WALDIR"' EXIT

"$BIN" -addr "$ADDR" -preset SYN -scale 500 -index SIF \
    -shards 4 -partial-results -enable-chaos \
    -wal "$WALDIR" -breaker-cooldown 500ms &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null; rm -rf "$WALDIR"' EXIT

# Phase 1: healthy mixed load, strict assertions.
if ! "$BIN" -hammer -target "http://$ADDR" -preset SYN -scale 500 \
    -n 600 -c 6 -distinct 32 \
    -mix "search:4,diversified:2,knn:2,ranked:1,insert:2,remove:1" -strict; then
    echo "shard-smoke: healthy strict hammer failed" >&2
    exit 1
fi

# A query URL that spans shards (wide delta), for the degraded probes.
QUERY="/v1/search?edge=3&offset=0.4&terms=1&deltaMax=20000"

# Phase 2a: shard 1's reads fault — wide queries degrade to 206 partials.
if ! curl -sf -o /dev/null -X POST "http://$ADDR/v1/chaos" \
    -d '{"spec": "read:every=1", "shard": 1}'; then
    echo "shard-smoke: arming shard-1 read faults failed" >&2
    exit 1
fi

partials=0 insert_ok=0 bad=0
for i in $(seq 1 40); do
    body="$(curl -s -w '\n%{http_code}' "http://$ADDR$QUERY")"
    code="${body##*$'\n'}"
    json="${body%$'\n'*}"
    case "$code" in
    200 | 206 | 500 | 503) ;;
    *)
        echo "shard-smoke: degraded query returned status $code" >&2
        bad=1
        ;;
    esac
    if ! printf '%s' "$json" | python3 -c 'import json,sys; json.load(sys.stdin)' 2>/dev/null; then
        echo "shard-smoke: degraded query returned invalid JSON (status $code): $json" >&2
        bad=1
    fi
    if [ "$code" = 206 ]; then
        partials=$((partials + 1))
        if ! printf '%s' "$json" | python3 -c '
import json, sys
v = json.load(sys.stdin)
assert v.get("partial") is True, "206 without partial flag"
assert any(e.get("shard") == 1 for e in v.get("shardErrors", [])), "206 without shard-1 error detail"
'; then
            echo "shard-smoke: 206 body missing partial metadata: $json" >&2
            bad=1
        fi
    fi
done
# Phase 2b: kill shard 1's WAL instead (sync faults replace the read
# faults). Inserts route by edge owner: legs landing on healthy shards
# must still ack (id + lsn), legs on shard 1 must fail cleanly, never
# corrupt.
if ! curl -sf -o /dev/null -X POST "http://$ADDR/v1/chaos" \
    -d '{"spec": "sync:every=1", "shard": 1}'; then
    echo "shard-smoke: arming shard-1 WAL-sync faults failed" >&2
    exit 1
fi
for edge in 0 50 100 150 200 250 300 350; do
    body="$(curl -s -w '\n%{http_code}' -X POST "http://$ADDR/v1/insert" \
        -d "{\"edge\": $edge, \"offset\": 0.5, \"terms\": [0]}")"
    code="${body##*$'\n'}"
    json="${body%$'\n'*}"
    case "$code" in
    200)
        if printf '%s' "$json" | python3 -c '
import json, sys
v = json.load(sys.stdin)
assert v["id"] >= 0 and v["lsn"] > 0
' 2>/dev/null; then
            insert_ok=$((insert_ok + 1))
        else
            echo "shard-smoke: degraded insert acked without id/lsn: $json" >&2
            bad=1
        fi
        ;;
    500 | 503) ;;
    *)
        echo "shard-smoke: degraded insert returned status $code: $json" >&2
        bad=1
        ;;
    esac
done
echo "shard-smoke: degraded phase: $partials partial (206) answers, $insert_ok healthy-shard inserts acked"
if [ "$partials" -eq 0 ]; then
    echo "shard-smoke: no 206 partial observed with shard 1 down" >&2
    bad=1
fi
if [ "$insert_ok" -eq 0 ]; then
    echo "shard-smoke: no insert survived on the healthy shards" >&2
    bad=1
fi
if [ "$bad" -ne 0 ]; then
    exit 1
fi

# Phase 3: heal the read path and require full 200 reads back (the
# router re-pins fresh per-shard views; recovery must reach storage, not
# just the cache). Shard 1's WAL is still dead: a read-only strict
# hammer must pass, write service needs the restart below.
if ! curl -sf -o /dev/null -X POST "http://$ADDR/v1/chaos" -d '{"spec": ""}'; then
    echo "shard-smoke: clearing faults failed" >&2
    exit 1
fi
recovered=0
for i in $(seq 1 60); do
    code="$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR$QUERY")"
    if [ "$code" = 200 ]; then
        recovered=1
        break
    fi
    sleep 0.5
done
if [ "$recovered" -ne 1 ]; then
    echo "shard-smoke: no 200 within 30s of clearing faults" >&2
    exit 1
fi
if ! "$BIN" -hammer -target "http://$ADDR" -preset SYN -scale 500 \
    -n 400 -c 6 -distinct 32 \
    -mix "search:4,diversified:2,knn:2,ranked:1" -strict; then
    echo "shard-smoke: post-heal read-only strict hammer failed" >&2
    exit 1
fi

# Phase 4: restart on the same WAL directories. The old process may exit
# non-zero (closing the poisoned WAL reports the sticky sync error —
# honest, not clean); the replacement must replay every acknowledged
# mutation and serve the full mixed load again.
kill -TERM "$SERVER"
wait "$SERVER" || echo "shard-smoke: old server reported the poisoned WAL on close (expected)"
"$BIN" -addr "$ADDR" -preset SYN -scale 500 -index SIF \
    -shards 4 -partial-results -enable-chaos \
    -wal "$WALDIR" -breaker-cooldown 500ms &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null; rm -rf "$WALDIR"' EXIT
if ! "$BIN" -hammer -target "http://$ADDR" -preset SYN -scale 500 \
    -n 400 -c 6 -distinct 32 \
    -mix "search:4,diversified:2,knn:2,ranked:1,insert:2,remove:1" -strict; then
    echo "shard-smoke: post-restart strict hammer failed" >&2
    exit 1
fi

kill -TERM "$SERVER"
wait "$SERVER"
CODE=$?
trap 'rm -rf "$WALDIR"' EXIT
if [ "$CODE" -ne 0 ]; then
    echo "shard-smoke: restarted server exited $CODE after SIGTERM, want 0" >&2
    exit 1
fi
echo "shard-smoke: ok (coherent degradation with one shard down, WAL-replay restart, clean drain)"
