#!/usr/bin/env bash
# ALT-oracle benchmark (run by `make bench-oracle` and the CI
# bench-oracle job): boot the same single-node server twice over the same
# dataset — once without the landmark oracle, once with it — and replay
# an identical diversified-heavy read mix against each. The hammer
# upserts one labeled entry per setting into BENCH_oracle.json, carrying
# the server's /varz distance-work counters (pairwise distance
# evaluations, Dijkstra/A* settled nodes, oracle prune/hit counts); the
# gate at the end asserts the oracle cuts settled-node work by >= 3x and
# does not worsen p99 on the diversified-heavy mix.
#
# The mix is deliberately diversified-heavy: the diversification greedy's
# pairwise θ matrix is where the paper's hot path spends its Dijkstras,
# and the oracle's triangle bounds target exactly those point-to-point
# distances. The radius is widened (-delta) past the dataset default:
# at δmax = 1000 the 2·δmax ball holds a handful of nodes and there is
# nothing to save, while wide diversified queries — the regime the
# oracle exists for — make the blind engine sweep hundreds of nodes per
# candidate. The result cache is disabled so repeats recompute, and no
# synthetic I/O latency is injected — the settled-node work under test is
# CPU-bound graph traversal, not modeled disk time.
set -u

BIN="${1:?usage: bench-oracle.sh <path-to-dsks-serve> [out.json]}"
OUT="${2:-BENCH_oracle.json}"

rm -f "$OUT"
for MODE in off on; do
    ADDR="127.0.0.1:$((18120 + $([ "$MODE" = on ] && echo 1 || echo 0)))"
    ORACLE_FLAGS=""
    if [ "$MODE" = on ]; then
        ORACLE_FLAGS="-oracle -landmarks 64"
    fi
    # shellcheck disable=SC2086 — ORACLE_FLAGS is a flag list on purpose.
    "$BIN" -addr "$ADDR" -preset NA -scale 500 -index SIF $ORACLE_FLAGS \
        -max-inflight 32 -queue-depth 256 -cache-size -1 &
    SERVER=$!
    trap 'kill "$SERVER" 2>/dev/null' EXIT
    if ! "$BIN" -hammer -target "http://$ADDR" -preset NA -scale 500 \
        -n 1200 -c 8 -distinct 64 -delta 8000 \
        -mix "diversified:6,search:2,ranked:1" \
        -report "$OUT" -report-label "oracle=$MODE"; then
        echo "bench-oracle: hammer failed with oracle $MODE" >&2
        exit 1
    fi
    kill -TERM "$SERVER"
    wait "$SERVER"
    CODE=$?
    trap - EXIT
    if [ "$CODE" -ne 0 ]; then
        echo "bench-oracle: oracle-$MODE server exited $CODE after SIGTERM, want 0" >&2
        exit 1
    fi
done

python3 - "$OUT" <<'EOF'
import json, sys

rep = json.load(open(sys.argv[1]))
off, on = rep["oracle=off"], rep["oracle=on"]
if off["errors"] or on["errors"]:
    sys.exit(f"bench-oracle: read errors ({off['errors']} off, {on['errors']} on)")
if not off.get("distSettled"):
    sys.exit("bench-oracle: oracle-off run reported no settled-node work "
             "(dist_settled_total missing from /varz?)")
settled_ratio = off["distSettled"] / max(on.get("distSettled", 0), 1)
print(f"bench-oracle: oracle off {off['qps']:.0f} qps (p99 {off['p99Micros']}us, "
      f"{off['distSettled']} settled), oracle on {on['qps']:.0f} qps "
      f"(p99 {on['p99Micros']}us, {on.get('distSettled', 0)} settled) — "
      f"{settled_ratio:.1f}x less Dijkstra work, "
      f"{on.get('oracleLBPrunes', 0)} LB prunes / {on.get('oracleUBHits', 0)} UB hits / "
      f"{on.get('oraclePopsSaved', 0)} A* pops saved")
if settled_ratio < 3.0:
    sys.exit(f"bench-oracle: settled-node reduction {settled_ratio:.2f}x below the 3x gate")
if on["p99Micros"] > off["p99Micros"]:
    sys.exit(f"bench-oracle: oracle-on p99 {on['p99Micros']}us worse than "
             f"oracle-off {off['p99Micros']}us — the pruning is not paying for itself")
EOF
if [ $? -ne 0 ]; then
    exit 1
fi
echo "bench-oracle: ok (report in $OUT)"
