#!/usr/bin/env bash
# Chaos smoke test (run by `make chaos-smoke` and the CI chaos-smoke job):
# boot dsks-serve with checksums and the chaos endpoint enabled, then run
# the hammer's -chaos campaign, which asserts
#   - installed read faults surface as 500s and open the circuit breaker,
#   - the open breaker sheds with 503 + Retry-After on every response,
#   - every 200 during the campaign is intact JSON that touched no storage,
#   - after the faults clear, a storage-backed (uncached) 200 returns and
#     /healthz reports healthy again,
# and finally SIGTERM the server and require a clean drain (exit 0).
set -u

BIN="${1:?usage: chaos-smoke.sh <path-to-dsks-serve>}"
ADDR="127.0.0.1:18081"

"$BIN" -addr "$ADDR" -preset SYN -scale 400 -index SIF \
    -checksums -enable-chaos -breaker-cooldown 500ms &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null' EXIT

if ! "$BIN" -hammer -chaos -target "http://$ADDR" -preset SYN -scale 400; then
    echo "chaos-smoke: chaos campaign assertions failed" >&2
    exit 1
fi

kill -TERM "$SERVER"
wait "$SERVER"
CODE=$?
trap - EXIT
if [ "$CODE" -ne 0 ]; then
    echo "chaos-smoke: server exited $CODE after SIGTERM, want 0" >&2
    exit 1
fi
echo "chaos-smoke: ok (degraded under faults, recovered, clean drain)"
