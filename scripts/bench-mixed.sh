#!/usr/bin/env bash
# Read-under-write benchmark (run by `make bench-mixed` and the CI
# bench-mixed job): boot dsks-serve with the result cache disabled (so
# every read actually walks the MVCC view into storage) and synthetic
# per-miss I/O latency (so latencies are dominated by modeled work, not
# scheduler noise), then drive the two-phase hammer benchmark:
#   - phase A: read-only baseline (search/diversified/knn/ranked mix),
#   - phase B: identical reads under a sustained insert storm.
# The hammer writes the throughput/latency trajectory to BENCH_mixed.json
# and asserts the mixed read p99 stays within 2x of the read-only
# baseline — the acceptance bar for "queries never block writers".
set -u

BIN="${1:?usage: bench-mixed.sh <path-to-dsks-serve> [out.json]}"
OUT="${2:-BENCH_mixed.json}"
ADDR="127.0.0.1:18081"

"$BIN" -addr "$ADDR" -preset SYN -scale 2000 -index SIF \
    -max-inflight 16 -queue-depth 128 -iolat 200us -cache-size -1 &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null' EXIT

if ! "$BIN" -hammer -target "http://$ADDR" -preset SYN -scale 2000 \
    -n 1200 -c 8 -distinct 48 \
    -mix "search:4,diversified:3,knn:2,ranked:1" \
    -bench-mixed "$OUT" -bench-mutators 4 -bench-max-ratio 2.0; then
    echo "bench-mixed: benchmark assertions failed" >&2
    exit 1
fi

kill -TERM "$SERVER"
wait "$SERVER"
CODE=$?
trap - EXIT
if [ "$CODE" -ne 0 ]; then
    echo "bench-mixed: server exited $CODE after SIGTERM, want 0" >&2
    exit 1
fi
echo "bench-mixed: ok (report in $OUT)"
