package dsks

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dsks/internal/fault"
)

// chaos_test exercises the robustness machinery end to end from inside
// the package: SaveTo is crashed at every commit point and the snapshot
// must stay loadable, and injected storage faults must surface as typed
// errors (or be retried away) without ever corrupting query results.

// newChaosDB builds a small in-memory database with a handful of objects.
func newChaosDB(t *testing.T, opts Options) (*DB, *Vocabulary, Position) {
	t.Helper()
	g := NewGraph()
	var nodes []NodeID
	for i := 0; i < 4; i++ {
		nodes = append(nodes, g.AddNode(Point{X: float64(i) * 100, Y: 0}))
	}
	var edges []EdgeID
	for i := 0; i+1 < len(nodes); i++ {
		e, err := g.AddEdge(nodes[i], nodes[i+1], 100)
		if err != nil {
			t.Fatal(err)
		}
		edges = append(edges, e)
	}
	g.Freeze()

	vocab := NewVocabulary()
	objects := NewCollection()
	words := [][]string{
		{"pizza", "wine"}, {"pizza"}, {"sushi", "wine"}, {"pizza", "sushi"},
	}
	for i, w := range words {
		objects.Add(Position{Edge: edges[i%len(edges)], Offset: 25}, vocab.InternAll(w))
	}
	db, err := Open(g, objects, vocab.Size(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, vocab, Position{Edge: edges[0], Offset: 0}
}

func chaosQuery(t *testing.T, db *DB, vocab *Vocabulary, origin Position) (Result, error) {
	t.Helper()
	terms, err := vocab.LookupAll([]string{"pizza"})
	if err != nil {
		t.Fatal(err)
	}
	return db.Search(SKQuery{Pos: origin, Terms: terms, DeltaMax: 1000})
}

func TestSaveToCrashAtEveryPoint(t *testing.T) {
	db, vocab, origin := newChaosDB(t, Options{Index: IndexSIF})
	dir := filepath.Join(t.TempDir(), "snap")
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	defer func() { saveHook = nil }()

	crashErr := errors.New("chaos: power loss")
	for _, point := range saveHookPoints {
		point := point
		saveHook = func(p string) error {
			if p == point {
				return crashErr
			}
			return nil
		}
		err := db.SaveTo(dir)
		saveHook = nil
		if err == nil {
			t.Fatalf("SaveTo crashed at %q returned nil error", point)
		}
		if !errors.Is(err, crashErr) {
			t.Fatalf("SaveTo crashed at %q returned unrelated error: %v", point, err)
		}
		// The invariant: whatever point the save died at, the snapshot on
		// disk (current, previous, or the just-committed new one) must
		// load and answer queries.
		back, err := OpenPath(dir, Options{})
		if err != nil {
			t.Fatalf("OpenPath after crash at %q: %v", point, err)
		}
		res, err := chaosQuery(t, back, vocab, origin)
		if err != nil {
			t.Fatalf("query after crash at %q: %v", point, err)
		}
		if len(res.Candidates) == 0 {
			t.Fatalf("query after crash at %q found no candidates", point)
		}
	}

	// With the hook gone, a clean save must succeed and leave no debris.
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir + ".prev"); !os.IsNotExist(err) {
		t.Errorf("clean save left %s.prev behind (stat err %v)", dir, err)
	}
	if _, err := OpenPath(dir, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveToCrashBetweenRenamesFallsBackToPrev(t *testing.T) {
	db, vocab, origin := newChaosDB(t, Options{Index: IndexIF})
	dir := filepath.Join(t.TempDir(), "snap")
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	defer func() { saveHook = nil }()

	// Crash exactly between "move old snapshot aside" and "move new
	// snapshot in": dir is gone, only dir+".prev" exists.
	saveHook = func(p string) error {
		if p == "rename-new" {
			return errors.New("chaos: crash between renames")
		}
		return nil
	}
	if err := db.SaveTo(dir); err == nil {
		t.Fatal("crashed save returned nil")
	}
	saveHook = nil
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("dir still present after crash between renames (stat err %v)", err)
	}
	back, err := OpenPath(dir, Options{})
	if err != nil {
		t.Fatalf("OpenPath did not fall back to .prev: %v", err)
	}
	if res, err := chaosQuery(t, back, vocab, origin); err != nil || len(res.Candidates) == 0 {
		t.Fatalf("query on .prev fallback: %v (candidates %d)", err, len(res.Candidates))
	}
}

func TestDBChecksumDetectsBitFlip(t *testing.T) {
	db, vocab, origin := newChaosDB(t, Options{Index: IndexSIF, Checksums: true})

	// Warm pass: every page read on a miss records its baseline checksum.
	if _, err := chaosQuery(t, db, vocab, origin); err != nil {
		t.Fatal(err)
	}
	// Cool the pools so the next query re-reads pages from the "medium".
	if err := db.ResetIO(); err != nil {
		t.Fatal(err)
	}
	if err := db.SetFaultSpec("read:every=1:mode=flip:seed=11"); err != nil {
		t.Fatal(err)
	}
	_, err := chaosQuery(t, db, vocab, origin)
	if !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("query over flipped pages err = %v, want ErrCorruptPage", err)
	}
	var corrupt int64
	for _, p := range db.Snapshot().Pools {
		corrupt += p.CorruptPages
	}
	if corrupt == 0 {
		t.Error("CorruptPages counter stayed zero after a detected flip")
	}

	// Healing the medium restores service; the detected page was never
	// admitted to the buffer, so no poisoned data lingers.
	db.ClearFaults()
	res, err := chaosQuery(t, db, vocab, origin)
	if err != nil {
		t.Fatalf("query after clearing faults: %v", err)
	}
	if len(res.Candidates) == 0 {
		t.Error("query after clearing faults found no candidates")
	}
}

func TestDBTransientFaultRetriedToSuccess(t *testing.T) {
	db, vocab, origin := newChaosDB(t, Options{Index: IndexSIF})
	if _, err := chaosQuery(t, db, vocab, origin); err != nil {
		t.Fatal(err)
	}
	if err := db.ResetIO(); err != nil {
		t.Fatal(err)
	}
	if err := db.SetFaultSpec("read:every=3:max=2:transient"); err != nil {
		t.Fatal(err)
	}
	res, err := chaosQuery(t, db, vocab, origin)
	if err != nil {
		t.Fatalf("query under transient faults failed: %v", err)
	}
	if len(res.Candidates) == 0 {
		t.Error("query under transient faults found no candidates")
	}
	var retries int64
	for _, p := range db.Snapshot().Pools {
		retries += p.ReadRetries
	}
	if retries == 0 {
		t.Error("ReadRetries counter stayed zero under a transient campaign")
	}
}

func TestDBPermanentFaultFailsQueryThenRecovers(t *testing.T) {
	db, vocab, origin := newChaosDB(t, Options{Index: IndexSIF})
	if _, err := chaosQuery(t, db, vocab, origin); err != nil {
		t.Fatal(err)
	}
	if err := db.ResetIO(); err != nil {
		t.Fatal(err)
	}
	if err := db.SetFaultSpec("read:every=1"); err != nil {
		t.Fatal(err)
	}
	_, err := chaosQuery(t, db, vocab, origin)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("query under permanent faults err = %v, want injected fault", err)
	}
	if fault.IsTransient(err) {
		t.Error("permanent fault reported as transient")
	}
	db.ClearFaults()
	if res, err := chaosQuery(t, db, vocab, origin); err != nil || len(res.Candidates) == 0 {
		t.Fatalf("recovery query: %v (candidates %d)", err, len(res.Candidates))
	}
}

func TestSetFaultSpecRejectsGarbage(t *testing.T) {
	db, _, _ := newChaosDB(t, Options{Index: IndexIF})
	for _, bad := range []string{"", "bogus", "read:p=7", "read:every=1:zap=3"} {
		if err := db.SetFaultSpec(bad); !errors.Is(err, ErrBadOptions) {
			t.Errorf("SetFaultSpec(%q) err = %v, want ErrBadOptions", bad, err)
		}
	}
}
