package dsks_test

import (
	"math"
	"math/rand"
	"testing"

	"dsks"
)

func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestInsertVisibleToQueries inserts objects into every dynamic index kind
// and verifies all query modes see them at the exact network distance.
func TestInsertVisibleToQueries(t *testing.T) {
	for _, kind := range []dsks.IndexKind{dsks.IndexIF, dsks.IndexSIF, dsks.IndexSIFP} {
		t.Run(string(kind), func(t *testing.T) {
			ds, err := dsks.GeneratePreset(dsks.PresetSYN, 2000, 101)
			if err != nil {
				t.Fatal(err)
			}
			db, err := dsks.OpenDataset(ds, dsks.Options{Index: kind})
			if err != nil {
				t.Fatal(err)
			}
			// A brand-new keyword combination on a known edge.
			e := ds.Graph.Edge(0)
			pos := dsks.Position{Edge: e.ID, Offset: e.Length / 2}
			terms := []dsks.TermID{dsks.TermID(ds.VocabSize - 1), dsks.TermID(ds.VocabSize - 2)}
			id, err := db.Insert(pos, terms)
			if err != nil {
				t.Fatal(err)
			}

			origin := dsks.Position{Edge: e.ID, Offset: 0}
			res, err := db.Search(dsks.SKQuery{Pos: origin, Terms: normalized(terms), DeltaMax: 1e9})
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, c := range res.Candidates {
				if c.Ref.ID == id {
					found = true
					want := db.NetworkDistance(origin, pos)
					if math.Abs(c.Dist-want) > 1e-6 {
						t.Fatalf("inserted object at %v, want %v", c.Dist, want)
					}
				}
			}
			if !found {
				t.Fatal("inserted object not found by boolean search")
			}
		})
	}
}

func normalized(ts []dsks.TermID) []dsks.TermID {
	out := append([]dsks.TermID(nil), ts...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestInsertGrowsExistingList(t *testing.T) {
	// Insert many objects sharing one keyword on one edge: the posting
	// list must be rewritten and re-read correctly (multi-page growth).
	g := dsks.NewGraph()
	a := g.AddNode(dsks.Point{X: 0, Y: 0})
	b := g.AddNode(dsks.Point{X: 1000, Y: 0})
	e, err := g.AddEdge(a, b, 1000)
	if err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	vocab := dsks.NewVocabulary()
	objects := dsks.NewCollection()
	objects.Add(dsks.Position{Edge: e, Offset: 1}, vocab.InternAll([]string{"x"}))
	db, err := dsks.Open(g, objects, vocab.Size(), dsks.Options{Index: dsks.IndexSIF})
	if err != nil {
		t.Fatal(err)
	}
	terms, _ := vocab.LookupAll([]string{"x"})
	const extra = 600 // beyond one page of postings
	for i := 0; i < extra; i++ {
		if _, err := db.Insert(dsks.Position{Edge: e, Offset: float64(i%999) + 1}, terms); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Search(dsks.SKQuery{Pos: dsks.Position{Edge: e}, Terms: terms, DeltaMax: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != extra+1 {
		t.Fatalf("found %d objects, want %d", len(res.Candidates), extra+1)
	}
}

func TestInsertValidation(t *testing.T) {
	db, vocab, _, edges := buildTinyCity(t)
	_ = vocab
	if _, err := db.Insert(dsks.Position{Edge: dsks.EdgeID(99)}, []dsks.TermID{0}); err == nil {
		t.Error("unknown edge accepted")
	}
	if _, err := db.Insert(dsks.Position{Edge: edges[0]}, []dsks.TermID{dsks.TermID(9999)}); err == nil {
		t.Error("out-of-vocabulary term accepted")
	}
}

func TestInsertUnsupportedKind(t *testing.T) {
	g := dsks.NewGraph()
	a := g.AddNode(dsks.Point{X: 0, Y: 0})
	b := g.AddNode(dsks.Point{X: 50, Y: 0})
	e, err := g.AddEdge(a, b, 50)
	if err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	vocab := dsks.NewVocabulary()
	objects := dsks.NewCollection()
	objects.Add(dsks.Position{Edge: e, Offset: 25}, vocab.InternAll([]string{"x"}))
	db, err := dsks.Open(g, objects, vocab.Size(), dsks.Options{Index: dsks.IndexIR})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert(dsks.Position{Edge: e}, []dsks.TermID{0}); err == nil {
		t.Error("IR accepted an insert")
	}
}

func TestRemoveHidesFromQueries(t *testing.T) {
	for _, kind := range []dsks.IndexKind{dsks.IndexIF, dsks.IndexSIF, dsks.IndexSIFP} {
		t.Run(string(kind), func(t *testing.T) {
			ds, err := dsks.GeneratePreset(dsks.PresetSYN, 2000, 103)
			if err != nil {
				t.Fatal(err)
			}
			db, err := dsks.OpenDataset(ds, dsks.Options{Index: kind})
			if err != nil {
				t.Fatal(err)
			}
			// Find a query with results, remove the first result, re-query.
			ws, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
				NumQueries: 10, Keywords: 2, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			ran := false
			for _, wq := range ws {
				q := dsks.SKQuery{Pos: wq.Pos, Terms: wq.Terms, DeltaMax: wq.DeltaMax}
				before, err := db.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				if len(before.Candidates) == 0 {
					continue
				}
				victim := before.Candidates[0].Ref.ID
				if err := db.Remove(victim); err != nil {
					t.Fatal(err)
				}
				after, err := db.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				if len(after.Candidates) != len(before.Candidates)-1 {
					t.Fatalf("after removal: %d candidates, want %d",
						len(after.Candidates), len(before.Candidates)-1)
				}
				for _, c := range after.Candidates {
					if c.Ref.ID == victim {
						t.Fatal("removed object still returned")
					}
				}
				ran = true
				break
			}
			if !ran {
				t.Fatal("no query had results; test is vacuous")
			}
		})
	}
}

func TestRemoveValidation(t *testing.T) {
	db, _, _, _ := buildTinyCity(t)
	if err := db.Remove(dsks.ObjectID(999)); err == nil {
		t.Error("unknown object removed")
	}
	if err := db.Remove(0); err != nil {
		t.Fatalf("first removal failed: %v", err)
	}
	if err := db.Remove(0); err == nil {
		t.Error("double removal accepted")
	}
}

func TestInsertAfterRemove(t *testing.T) {
	db, vocab, origin, edges := buildTinyCity(t)
	terms, _ := vocab.LookupAll([]string{"pizza"})
	if err := db.Remove(0); err != nil {
		t.Fatal(err)
	}
	id, err := db.Insert(dsks.Position{Edge: edges[0], Offset: 30}, terms)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Search(dsks.SKQuery{Pos: origin, Terms: terms, DeltaMax: 500})
	if err != nil {
		t.Fatal(err)
	}
	foundNew := false
	for _, c := range res.Candidates {
		if c.Ref.ID == 0 {
			t.Fatal("removed object resurfaced")
		}
		if c.Ref.ID == id {
			foundNew = true
		}
	}
	if !foundNew {
		t.Fatal("object inserted after removal not found")
	}
}

// TestMixedReadWriteWorkload interleaves inserts, removals and all query
// modes against one database and cross-checks every boolean result
// against brute force over the live collection.
func TestMixedReadWriteWorkload(t *testing.T) {
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 2000, 131)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dsks.OpenDataset(ds, dsks.Options{Index: dsks.IndexSIF})
	if err != nil {
		t.Fatal(err)
	}
	g, col := ds.Graph, ds.Objects
	rng := randNew(17)
	var inserted []dsks.ObjectID
	for step := 0; step < 120; step++ {
		switch step % 4 {
		case 0: // insert a clone of a random live object, jittered
			var src *dsks.Collection = col
			id := dsks.ObjectID(rng.Intn(src.Len()))
			if src.Removed(id) {
				continue
			}
			o := src.Get(id)
			e := g.Edge(o.Pos.Edge)
			pos := dsks.Position{Edge: e.ID, Offset: rng.Float64() * e.Length}
			nid, err := db.Insert(pos, o.Terms)
			if err != nil {
				t.Fatal(err)
			}
			inserted = append(inserted, nid)
		case 2: // remove one of our inserts
			if len(inserted) > 0 {
				victim := inserted[0]
				inserted = inserted[1:]
				if err := db.Remove(victim); err != nil {
					t.Fatal(err)
				}
			}
		default: // query and cross-check
			anchorID := dsks.ObjectID(rng.Intn(col.Len()))
			if col.Removed(anchorID) {
				continue
			}
			anchor := col.Get(anchorID)
			terms := anchor.Terms
			if len(terms) > 2 {
				terms = terms[:2]
			}
			q := dsks.SKQuery{Pos: anchor.Pos, Terms: terms, DeltaMax: 800}
			res, err := db.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			want := map[dsks.ObjectID]bool{}
			for i := 0; i < col.Len(); i++ {
				oid := dsks.ObjectID(i)
				if col.Removed(oid) {
					continue
				}
				o := col.Get(oid)
				if o.HasAllTerms(terms) && g.NetworkDist(q.Pos, o.Pos) <= q.DeltaMax {
					want[oid] = true
				}
			}
			if len(res.Candidates) != len(want) {
				t.Fatalf("step %d: got %d candidates, want %d", step, len(res.Candidates), len(want))
			}
			for _, c := range res.Candidates {
				if !want[c.Ref.ID] {
					t.Fatalf("step %d: spurious candidate %d", step, c.Ref.ID)
				}
			}
		}
	}
}
