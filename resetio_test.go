package dsks

import (
	"testing"
	"time"
)

// TestResetIOIsLatchFree is a white-box check of the ResetIO contract:
// it must complete while another goroutine holds the database write
// latch. The counters swap atomically and the pools use their own short
// internal latches, so a writer mid-commit can never stall a reset (and
// vice versa). Before the atomic-swap redesign ResetIO took db.mu and
// this test would deadlock until the timeout.
func TestResetIOIsLatchFree(t *testing.T) {
	g, err := GenerateNetwork(NetworkConfig{Nodes: 20, EdgeFactor: 1.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollection()
	for e := 0; e < g.NumEdges(); e += 2 {
		col.Add(Position{Edge: EdgeID(e), Offset: 0.5}, []TermID{0, 1})
	}
	db, err := Open(g, col, 4, Options{Index: IndexSIF})
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a writer parked mid-commit: ResetIO must not need db.mu.
	db.mu.Lock()
	defer db.mu.Unlock()

	done := make(chan error, 1)
	go func() { done <- db.ResetIO() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ResetIO under the write latch: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ResetIO blocked on the database write latch; it must be latch-free")
	}

	if got := db.sys.DiskReads(db.kind); got != 0 {
		t.Fatalf("disk-read counter after reset = %d, want 0", got)
	}
}
