package dsks

import (
	"dsks/internal/dataset"
)

// Synthetic data generation, re-exported for examples, benchmarks and
// downstream experimentation. The generators produce analogues of the
// paper's evaluation datasets: road networks with matched edge/node
// ratios and spatio-textual objects with Zipf-distributed, co-occurring
// keywords.

// Preset names one of the paper's datasets (Table 2).
type Preset = dataset.Preset

// The four evaluation datasets of the paper.
const (
	PresetSYN = dataset.PresetSYN
	PresetNA  = dataset.PresetNA
	PresetTW  = dataset.PresetTW
	PresetSF  = dataset.PresetSF
)

// Dataset is a generated road network + object set.
type Dataset = dataset.Dataset

// GeneratePreset builds the analogue of one of the paper's datasets,
// scaled down by scaleDenom (1 = full paper scale).
func GeneratePreset(p Preset, scaleDenom int, seed int64) (*Dataset, error) {
	return dataset.GeneratePreset(p, scaleDenom, seed)
}

// NetworkConfig shapes a custom generated road network.
type NetworkConfig = dataset.NetworkConfig

// GenerateNetwork builds a connected road network in the world space.
func GenerateNetwork(cfg NetworkConfig) (*Graph, error) {
	return dataset.GenerateNetwork(cfg)
}

// ObjectConfig shapes a custom generated object set.
type ObjectConfig = dataset.ObjectConfig

// GenerateObjects places spatio-textual objects on a network's edges.
func GenerateObjects(g *Graph, cfg ObjectConfig) (*Collection, error) {
	return dataset.GenerateObjects(g, cfg)
}

// WorkloadConfig shapes a generated query workload.
type WorkloadConfig = dataset.WorkloadConfig

// WorkloadQuery is one generated query: location, keywords, range.
type WorkloadQuery = dataset.Query

// GenerateWorkload draws query locations from the object locations and
// keywords with frequency-weighted probability, per the paper's setup.
func GenerateWorkload(col *Collection, vocabSize int, cfg WorkloadConfig) ([]WorkloadQuery, error) {
	return dataset.GenerateWorkload(col, vocabSize, cfg)
}

// OpenDataset opens a database over a generated dataset.
func OpenDataset(ds *Dataset, opts Options) (*DB, error) {
	return Open(ds.Graph, ds.Objects, ds.VocabSize, opts)
}
