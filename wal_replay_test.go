package dsks_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"dsks"
)

// TestWALReplayMatchesPureInMemoryReplay is the replay idempotency
// property: a database restored from a mid-sequence snapshot plus the
// write-ahead log's tail must be indistinguishable from one that simply
// applied the whole mutation sequence in memory. The same pseudo-random
// insert/remove sequence drives both; queries over every term must
// agree object for object, distance for distance.
func TestWALReplayMatchesPureInMemoryReplay(t *testing.T) {
	const (
		vocab = 8
		ops   = 120
		snapA = ops / 3 // two snapshots: replay starts from the second,
		snapB = ops / 2 // and the first exercises log compaction
	)
	build := func() (*dsks.Graph, *dsks.Collection) {
		g, err := dsks.GenerateNetwork(dsks.NetworkConfig{Nodes: 40, EdgeFactor: 1.5, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		col := dsks.NewCollection()
		for e := 0; e < g.NumEdges(); e += 4 {
			col.Add(dsks.Position{Edge: dsks.EdgeID(e), Offset: 1},
				[]dsks.TermID{dsks.TermID(e % vocab), dsks.TermID((e + 3) % vocab)})
		}
		return g, col
	}

	tmp := t.TempDir()
	walDir := filepath.Join(tmp, "wal")
	snapDir := filepath.Join(tmp, "snap")

	g1, col1 := build()
	seeded := col1.Len()
	logged, err := dsks.Open(g1, col1, vocab, dsks.Options{Index: dsks.IndexSIF, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	g2, col2 := build()
	shadow, err := dsks.Open(g2, col2, vocab, dsks.Options{Index: dsks.IndexSIF})
	if err != nil {
		t.Fatal(err)
	}
	numEdges := g1.NumEdges()

	rng := rand.New(rand.NewSource(42))
	var live []dsks.ObjectID
	for id := 0; id < seeded; id++ {
		live = append(live, dsks.ObjectID(id))
	}
	for i := 0; i < ops; i++ {
		if rng.Float64() < 0.65 || len(live) == 0 {
			pos := dsks.Position{Edge: dsks.EdgeID(rng.Intn(numEdges)), Offset: rng.Float64() * 2}
			terms := []dsks.TermID{dsks.TermID(rng.Intn(vocab)), dsks.TermID(rng.Intn(vocab))}
			a, err := logged.Insert(pos, terms)
			if err != nil {
				t.Fatalf("op %d: logged insert: %v", i, err)
			}
			b, err := shadow.Insert(pos, terms)
			if err != nil {
				t.Fatalf("op %d: shadow insert: %v", i, err)
			}
			if a != b {
				t.Fatalf("op %d: logged insert got ID %d, shadow got %d", i, a, b)
			}
			live = append(live, a)
		} else {
			j := rng.Intn(len(live))
			id := live[j]
			if err := logged.Remove(id); err != nil {
				t.Fatalf("op %d: logged remove %d: %v", i, id, err)
			}
			if err := shadow.Remove(id); err != nil {
				t.Fatalf("op %d: shadow remove %d: %v", i, id, err)
			}
			live = append(live[:j], live[j+1:]...)
		}
		if i == snapA || i == snapB {
			if err := logged.SaveTo(snapDir); err != nil {
				t.Fatalf("op %d: SaveTo: %v", i, err)
			}
		}
	}
	if err := logged.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := dsks.OpenPath(snapDir, dsks.Options{WALDir: walDir})
	if err != nil {
		t.Fatalf("OpenPath over snapshot+log: %v", err)
	}
	defer restored.Close()

	if got, want := restored.LiveObjects(), shadow.LiveObjects(); got != want {
		t.Fatalf("LiveObjects: restored %d, shadow %d", got, want)
	}
	// Every term, same origin: the candidate sets (IDs and network
	// distances) must be identical.
	origin := dsks.Position{Edge: 0, Offset: 0}
	for term := 0; term < vocab; term++ {
		q := dsks.SKQuery{Pos: origin, Terms: []dsks.TermID{dsks.TermID(term)}, DeltaMax: 1e9}
		a, err := restored.Search(q)
		if err != nil {
			t.Fatalf("term %d: restored search: %v", term, err)
		}
		b, err := shadow.Search(q)
		if err != nil {
			t.Fatalf("term %d: shadow search: %v", term, err)
		}
		if len(a.Candidates) != len(b.Candidates) {
			t.Fatalf("term %d: restored %d candidates, shadow %d", term, len(a.Candidates), len(b.Candidates))
		}
		dists := make(map[dsks.ObjectID]float64, len(b.Candidates))
		for _, c := range b.Candidates {
			dists[c.Ref.ID] = c.Dist
		}
		for _, c := range a.Candidates {
			want, ok := dists[c.Ref.ID]
			if !ok {
				t.Fatalf("term %d: restored candidate %d absent from shadow", term, c.Ref.ID)
			}
			if math.Abs(c.Dist-want) > 1e-9 {
				t.Fatalf("term %d: candidate %d at distance %v, shadow says %v", term, c.Ref.ID, c.Dist, want)
			}
		}
	}
}
