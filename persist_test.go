package dsks_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"dsks"
)

func TestSaveOpenRoundTrip(t *testing.T) {
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 2000, 111)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dsks.OpenDataset(ds, dsks.Options{Index: dsks.IndexSIF})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	back, err := dsks.OpenPath(dir, dsks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: 10, Keywords: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Object IDs are reassigned on load; compare candidate counts and
	// distances.
	for _, q := range ws {
		skq := dsks.SKQuery{Pos: q.Pos, Terms: q.Terms, DeltaMax: q.DeltaMax}
		a, err := db.Search(skq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Search(skq)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Candidates) != len(b.Candidates) {
			t.Fatalf("reloaded DB found %d candidates, original %d",
				len(b.Candidates), len(a.Candidates))
		}
		for i := range a.Candidates {
			if math.Abs(a.Candidates[i].Dist-b.Candidates[i].Dist) > 1e-9 {
				t.Fatalf("candidate %d distance %v vs %v",
					i, a.Candidates[i].Dist, b.Candidates[i].Dist)
			}
		}
	}
}

func TestSaveExcludesRemoved(t *testing.T) {
	db, vocab, origin, _ := buildTinyCity(t)
	terms, _ := vocab.LookupAll([]string{"pizza"})
	before, err := db.Search(dsks.SKQuery{Pos: origin, Terms: terms, DeltaMax: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Remove(before.Candidates[0].Ref.ID); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	back, err := dsks.OpenPath(dir, dsks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := back.Search(dsks.SKQuery{Pos: origin, Terms: terms, DeltaMax: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Candidates) != len(before.Candidates)-1 {
		t.Fatalf("reloaded DB has %d candidates, want %d",
			len(after.Candidates), len(before.Candidates)-1)
	}
}

func TestOpenPathIndexOverride(t *testing.T) {
	db, _, _, _ := buildTinyCity(t)
	dir := t.TempDir()
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	back, err := dsks.OpenPath(dir, dsks.Options{Index: dsks.IndexIF})
	if err != nil {
		t.Fatal(err)
	}
	_ = back
}

func TestOpenPathRejectsGarbage(t *testing.T) {
	if _, err := dsks.OpenPath(filepath.Join(t.TempDir(), "nope"), dsks.Options{}); err == nil {
		t.Error("missing directory accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte(`{"format": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := dsks.OpenPath(dir, dsks.Options{}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestVocabularyPersistence(t *testing.T) {
	v := dsks.NewVocabulary()
	ids := v.InternAll([]string{"pizza", "sushi", "café latte"})
	dir := t.TempDir()
	if err := dsks.SaveVocabulary(dir, v); err != nil {
		t.Fatal(err)
	}
	back, err := dsks.LoadVocabulary(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != v.Size() {
		t.Fatalf("size %d, want %d", back.Size(), v.Size())
	}
	got, err := back.LookupAll([]string{"pizza", "sushi", "café latte"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("term %d id %d, want %d", i, got[i], ids[i])
		}
	}
	if _, err := dsks.LoadVocabulary(t.TempDir()); err == nil {
		t.Error("missing vocabulary accepted")
	}
}
