package dsks

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"dsks/internal/dataset"
	"dsks/internal/graph"
	"dsks/internal/obj"
)

// Database persistence: SaveTo snapshots the road network, the live object
// set and the database options into a directory; OpenPath restores them and
// rebuilds the disk-resident index structures. The structures themselves
// are bulk-built (as in the paper), so rebuild-on-open is both simple and
// fast.
//
// Snapshots are crash-safe (since format 2): SaveTo stages everything in a
// temporary directory, fsyncs each file, records a manifest with per-file
// CRC32C checksums, and swaps the staged directory into place with atomic
// renames. A crash at any point leaves either the previous snapshot or a
// complete new one — never a torn mixture — and OpenPath verifies the
// manifest before trusting the files.
//
// Format 3 additionally records the write-ahead-log linkage: the LSN the
// snapshot includes (so OpenPath replays only the log's tail past it, and
// SaveTo can compact the log down to that point) and the object ID
// allocation state (total allocated IDs plus the tombstoned ones), so
// that objects keep their IDs across a restore and replayed log records
// address the right ones. Format-1 (no manifest) and format-2 (dense ID
// reassignment, no log linkage) snapshots are still readable.

// dbMeta is the persisted configuration.
type dbMeta struct {
	Format         int       `json:"format"`
	Index          IndexKind `json:"index"`
	BufferFraction float64   `json:"bufferFraction,omitempty"`
	PartitionCuts  int       `json:"partitionCuts,omitempty"`
	VocabSize      int       `json:"vocabSize"`
	// WALLSN is the last write-ahead-log record this snapshot includes;
	// replay resumes after it (format 3, zero when no log was attached).
	WALLSN uint64 `json:"walLSN,omitempty"`
	// Allocated and Tombstones reconstruct the object ID space: the
	// snapshot's objects file stores live objects densely, and OpenPath
	// reinstates the tombstoned IDs between them (format 3).
	Allocated  int        `json:"allocated,omitempty"`
	Tombstones []ObjectID `json:"tombstones,omitempty"`
	// OracleLandmarks and OracleSeed record the landmark distance oracle
	// the database ran with (zero when none): OpenPath re-enables the
	// oracle, loading the snapshot's "oracle" file when it validates and
	// rebuilding from the graph when it does not. The oracle file is
	// self-checksummed and deliberately outside the manifest's verified
	// set — damage to it degrades to a rebuild, never to ErrBadSnapshot.
	OracleLandmarks int    `json:"oracleLandmarks,omitempty"`
	OracleSeed      uint64 `json:"oracleSeed,omitempty"`
}

const (
	// dbMetaFormat is the snapshot format SaveTo writes.
	dbMetaFormat = 3
	// dbMetaFormatV2 adds the manifest but reassigns object IDs densely
	// on load and carries no write-ahead-log linkage.
	dbMetaFormatV2 = 2
	// dbMetaFormatV1 is the legacy layout: same files, no manifest, no
	// durability guarantees. OpenPath still reads it.
	dbMetaFormatV1 = 1
)

// snapshotCRC is the CRC32C polynomial used for snapshot file checksums.
var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// manifestEntry records one snapshot file's expected size and checksum.
type manifestEntry struct {
	Size   int64  `json:"size"`
	CRC32C uint32 `json:"crc32c"`
}

// manifest is the integrity record of a format-2 snapshot, written last
// during SaveTo and verified first during OpenPath.
type manifest struct {
	Format int                      `json:"format"`
	Files  map[string]manifestEntry `json:"files"`
}

// snapshotFiles are the files a manifest must cover.
var snapshotFiles = []string{"graph", "objects", "meta.json"}

// saveHook, when non-nil, is consulted at each named commit point of
// SaveTo; a non-nil return aborts the save at exactly that point,
// simulating a crash (staged state is deliberately left behind, as a real
// crash would leave it). Test-only; production saves never set it.
var saveHook func(point string) error

// saveHookPoints enumerates SaveTo's crash points in execution order, for
// tests that crash a save at every one of them.
var saveHookPoints = []string{
	"begin",
	"write-graph",
	"write-objects",
	"write-meta",
	"write-oracle",
	"write-manifest",
	"sync-staging",
	"rename-prev",
	"rename-new",
	"sync-parent",
	"cleanup-prev",
}

// errSimulatedCrash distinguishes a saveHook-triggered abort (leave the
// staged wreckage for the test to inspect) from an ordinary I/O failure
// (clean it up).
type errSimulatedCrash struct{ err error }

func (e *errSimulatedCrash) Error() string { return e.err.Error() }
func (e *errSimulatedCrash) Unwrap() error { return e.err }

func fireSaveHook(point string) error {
	if saveHook == nil {
		return nil
	}
	if err := saveHook(point); err != nil {
		return &errSimulatedCrash{err: err}
	}
	return nil
}

// countingWriter tracks how many bytes passed through it.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// writeSnapshotFile creates path, streams write's output through a CRC32C
// hasher, then flushes, fsyncs and closes the file — checking every one of
// those returns, because a snapshot whose bytes never reached the medium
// is worse than a failed save.
func writeSnapshotFile(path string, write func(io.Writer) error) (manifestEntry, error) {
	f, err := os.Create(path)
	if err != nil {
		return manifestEntry{}, err
	}
	h := crc32.New(snapshotCRC)
	cw := &countingWriter{}
	bw := bufio.NewWriter(io.MultiWriter(f, h, cw))
	if err := write(bw); err != nil {
		f.Close()
		return manifestEntry{}, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return manifestEntry{}, fmt.Errorf("dsks: flushing %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return manifestEntry{}, fmt.Errorf("dsks: syncing %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		return manifestEntry{}, fmt.Errorf("dsks: closing %s: %w", filepath.Base(path), err)
	}
	return manifestEntry{Size: cw.n, CRC32C: h.Sum32()}, nil
}

// syncDir fsyncs a directory so the entries created (or renamed) inside
// it are durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("dsks: syncing directory %s: %w", path, serr)
	}
	return cerr
}

// SaveTo snapshots the database into dir (created if needed): the road
// network, every live object, the options required to rebuild the same
// index structure on OpenPath, and a manifest with per-file checksums.
//
// The snapshot is staged in a temporary sibling directory and swapped in
// with atomic renames, each stage fsynced, so a crash mid-save leaves the
// previous snapshot intact (briefly under dir+".prev" during the swap
// window; OpenPath falls back to it automatically). SaveTo takes the
// database's read latch, so the snapshot is consistent with respect to
// concurrent Insert and Remove; MVCC read views are unaffected — they
// answer from pinned page versions and never touch the latch
// (TestViewPinnedAcrossSaveAndCheckpoint races both under -race).
//
// With a write-ahead log attached, the snapshot records the last log
// record it includes and then checkpoints the log: the active segment is
// rotated and every segment the snapshot made redundant is deleted. The
// checkpoint runs after the latch is released — a crash in between only
// leaves extra log records that the next OpenPath replays idempotently
// (they are at or below the snapshot's recorded LSN, so they are
// skipped).
func (db *DB) SaveTo(dir string) error {
	// Serialize the oracle before taking the read latch: its page reads
	// can block on I/O, and it depends only on the frozen network
	// topology, which no mutation can change.
	var oracleBytes []byte
	if o := db.sys.Oracle; o != nil {
		var buf bytes.Buffer
		if err := o.WriteTo(context.Background(), &buf); err != nil {
			return fmt.Errorf("dsks: serializing oracle: %w", err)
		}
		oracleBytes = buf.Bytes()
	}
	walLSN, err := db.saveSnapshot(dir, oracleBytes)
	if err != nil {
		return err
	}
	if db.wal != nil {
		if err := db.wal.Checkpoint(walLSN); err != nil {
			return fmt.Errorf("dsks: checkpointing wal after snapshot: %w", err)
		}
	}
	return nil
}

// saveSnapshot writes the snapshot under the read latch and returns the
// applied LSN it captured; the log checkpoint happens in SaveTo, after
// the latch is released (an fsync-heavy compaction must not block
// mutators).
func (db *DB) saveSnapshot(dir string, oracleBytes []byte) (walLSN uint64, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	walLSN = db.appliedLSN

	parent := filepath.Dir(dir)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return 0, err
	}
	if err := fireSaveHook("begin"); err != nil {
		return 0, err
	}
	tmp, err := os.MkdirTemp(parent, ".dsks-save-*")
	if err != nil {
		return 0, err
	}
	committed := false
	defer func() {
		if !committed {
			os.RemoveAll(tmp)
		}
	}()

	// fail routes every error return through one place: a simulated crash
	// (saveHook firing) leaves the staged directory behind, as a real
	// crash would, while ordinary failures let the defer clean it up.
	fail := func(e error) error {
		var crash *errSimulatedCrash
		if asCrash(e, &crash) {
			committed = true
		}
		return e
	}

	files := make(map[string]manifestEntry, len(snapshotFiles))

	if err := fireSaveHook("write-graph"); err != nil {
		return 0, fail(err)
	}
	ent, err := writeSnapshotFile(filepath.Join(tmp, "graph"), func(w io.Writer) error {
		if err := graph.Write(w, db.sys.DS.Graph); err != nil {
			return fmt.Errorf("dsks: saving graph: %w", err)
		}
		return nil
	})
	if err != nil {
		return 0, fail(err)
	}
	files["graph"] = ent

	if err := fireSaveHook("write-objects"); err != nil {
		return 0, fail(err)
	}
	ent, err = writeSnapshotFile(filepath.Join(tmp, "objects"), func(w io.Writer) error {
		if err := dataset.WriteObjects(w, db.sys.DS.Objects, db.sys.DS.VocabSize); err != nil {
			return fmt.Errorf("dsks: saving objects: %w", err)
		}
		return nil
	})
	if err != nil {
		return 0, fail(err)
	}
	files["objects"] = ent

	if err := fireSaveHook("write-meta"); err != nil {
		return 0, fail(err)
	}
	col := db.sys.DS.Objects
	meta := dbMeta{
		Format:     dbMetaFormat,
		Index:      db.kind,
		VocabSize:  db.sys.DS.VocabSize,
		WALLSN:     walLSN,
		Allocated:  col.Len(),
		Tombstones: col.Tombstones(),
	}
	if o := db.sys.Oracle; o != nil {
		meta.OracleLandmarks = o.NumLandmarks()
		meta.OracleSeed = o.Seed()
	}
	ent, err = writeSnapshotFile(filepath.Join(tmp, "meta.json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(meta)
	})
	if err != nil {
		return 0, fail(err)
	}
	files["meta.json"] = ent

	if err := fireSaveHook("write-oracle"); err != nil {
		return 0, fail(err)
	}
	if oracleBytes != nil {
		// The oracle file rides in the manifest's file map for visibility
		// but stays off the verified list (snapshotFiles): it carries its
		// own header checksum, and a damaged oracle must degrade to a
		// rebuild, not fail the snapshot.
		ent, err = writeSnapshotFile(filepath.Join(tmp, "oracle"), func(w io.Writer) error {
			_, werr := w.Write(oracleBytes)
			return werr
		})
		if err != nil {
			return 0, fail(err)
		}
		files["oracle"] = ent
	}

	if err := fireSaveHook("write-manifest"); err != nil {
		return 0, fail(err)
	}
	if _, err := writeSnapshotFile(filepath.Join(tmp, "manifest.json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(manifest{Format: dbMetaFormat, Files: files})
	}); err != nil {
		return 0, fail(err)
	}

	if err := fireSaveHook("sync-staging"); err != nil {
		return 0, fail(err)
	}
	if err := syncDir(tmp); err != nil {
		return 0, fail(err)
	}

	// Swap: move any previous snapshot aside, move the staged one in, make
	// the renames durable, then drop the old snapshot. A crash between the
	// two renames leaves only dir+".prev", which OpenPath falls back to.
	prev := dir + ".prev"
	if err := fireSaveHook("rename-prev"); err != nil {
		return 0, fail(err)
	}
	if _, serr := os.Stat(dir); serr == nil {
		os.RemoveAll(prev) // leftover from an earlier crashed save
		if err := os.Rename(dir, prev); err != nil {
			return 0, fail(err)
		}
	}
	if err := fireSaveHook("rename-new"); err != nil {
		return 0, fail(err)
	}
	if err := os.Rename(tmp, dir); err != nil {
		return 0, fail(err)
	}
	committed = true
	if err := fireSaveHook("sync-parent"); err != nil {
		return 0, err
	}
	if err := syncDir(parent); err != nil {
		return 0, err
	}
	if err := fireSaveHook("cleanup-prev"); err != nil {
		return 0, err
	}
	return walLSN, os.RemoveAll(prev)
}

// asCrash reports whether e (or anything it wraps) is a simulated crash.
func asCrash(e error, out **errSimulatedCrash) bool {
	for e != nil {
		if c, ok := e.(*errSimulatedCrash); ok {
			*out = c
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// SaveVocabulary writes a Vocabulary next to a saved database (SaveTo does
// not persist it — the index stores TermIDs only) so that keyword strings
// resolve identically after OpenPath. The write is fsynced and its Close
// checked, like the snapshot files (the vocabulary is written after the
// snapshot swap, so it is not covered by the manifest).
func SaveVocabulary(dir string, v *Vocabulary) error {
	_, err := writeSnapshotFile(filepath.Join(dir, "vocabulary"), func(w io.Writer) error {
		return v.Write(w)
	})
	return err
}

// LoadVocabulary reads a vocabulary saved with SaveVocabulary.
func LoadVocabulary(dir string) (*Vocabulary, error) {
	f, err := os.Open(filepath.Join(dir, "vocabulary"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obj.ReadVocabulary(bufio.NewReader(f))
}

// verifySnapshotFile re-reads path and checks its size and CRC32C against
// the manifest entry.
func verifySnapshotFile(path string, want manifestEntry) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("%w: missing snapshot file %s: %w", ErrBadSnapshot, filepath.Base(path), err)
	}
	defer f.Close()
	h := crc32.New(snapshotCRC)
	n, err := io.Copy(h, f)
	if err != nil {
		return fmt.Errorf("%w: reading snapshot file %s: %w", ErrBadSnapshot, filepath.Base(path), err)
	}
	if n != want.Size {
		return fmt.Errorf("%w: snapshot file %s is %d bytes, manifest says %d",
			ErrBadSnapshot, filepath.Base(path), n, want.Size)
	}
	if got := h.Sum32(); got != want.CRC32C {
		return fmt.Errorf("%w: snapshot file %s checksum %08x, manifest says %08x",
			ErrBadSnapshot, filepath.Base(path), got, want.CRC32C)
	}
	return nil
}

// verifyManifest loads dir's manifest and checks every covered file
// before any of them is parsed. wantFormat is the format meta.json
// declared; the manifest must agree.
func verifyManifest(dir string, wantFormat int) error {
	mf, err := os.Open(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return fmt.Errorf("%w: missing manifest.json: %w", ErrBadSnapshot, err)
	}
	defer mf.Close()
	var m manifest
	if err := json.NewDecoder(mf).Decode(&m); err != nil {
		return fmt.Errorf("%w: reading manifest.json: %w", ErrBadSnapshot, err)
	}
	if m.Format != wantFormat {
		return fmt.Errorf("%w: manifest format %d does not match snapshot format %d",
			ErrBadSnapshot, m.Format, wantFormat)
	}
	for _, name := range snapshotFiles {
		want, ok := m.Files[name]
		if !ok {
			return fmt.Errorf("%w: manifest does not cover %s", ErrBadSnapshot, name)
		}
		if err := verifySnapshotFile(filepath.Join(dir, name), want); err != nil {
			return err
		}
	}
	return nil
}

// OpenPath restores a database saved with SaveTo, rebuilding the index
// structures. opts fields that are zero keep the persisted configuration;
// a non-empty opts.Index overrides the saved index kind.
//
// Format-2 and format-3 snapshots are verified against their manifest
// (per-file size and CRC32C) before anything is parsed; format-1
// snapshots are read without verification. Any unreadable, truncated,
// mismatched or unrecognized snapshot fails with an error matching
// ErrBadSnapshot (the underlying cause also remains reachable through
// errors.Is/As). If dir itself is missing but a dir+".prev" left by a
// crashed save exists, the previous snapshot is opened instead.
//
// With opts.WALDir set, the write-ahead log there is replayed over the
// snapshot: format-3 snapshots record the LSN they already include, so
// only the log's tail is applied (replay is idempotent across repeated
// crashes). A log that contradicts the snapshot fails with an error
// matching ErrBadWAL.
func OpenPath(dir string, opts Options) (*DB, error) {
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		if _, perr := os.Stat(dir + ".prev"); perr == nil {
			// A save crashed between its two renames; fall back to the
			// snapshot it was replacing.
			dir = dir + ".prev"
		}
	}
	mf, err := os.Open(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, fmt.Errorf("%w: missing meta.json: %w", ErrBadSnapshot, err)
	}
	var meta dbMeta
	derr := json.NewDecoder(mf).Decode(&meta)
	mf.Close()
	if derr != nil {
		return nil, fmt.Errorf("%w: reading meta.json: %w", ErrBadSnapshot, derr)
	}
	switch meta.Format {
	case dbMetaFormatV1:
		// Legacy layout: same files, no manifest to verify.
	case dbMetaFormatV2, dbMetaFormat:
		if err := verifyManifest(dir, meta.Format); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unsupported format version %d", ErrBadSnapshot, meta.Format)
	}
	switch meta.Index {
	case "", IndexIR, IndexIF, IndexSIF, IndexSIFP:
	default:
		return nil, fmt.Errorf("%w: unknown index kind %q", ErrBadSnapshot, meta.Index)
	}
	gf, err := os.Open(filepath.Join(dir, "graph"))
	if err != nil {
		return nil, fmt.Errorf("%w: missing graph: %w", ErrBadSnapshot, err)
	}
	defer gf.Close()
	g, err := graph.Read(bufio.NewReader(gf))
	if err != nil {
		return nil, fmt.Errorf("%w: reading graph: %w", ErrBadSnapshot, err)
	}
	of, err := os.Open(filepath.Join(dir, "objects"))
	if err != nil {
		return nil, fmt.Errorf("%w: missing objects: %w", ErrBadSnapshot, err)
	}
	defer of.Close()
	col, vocab, err := dataset.ReadObjects(bufio.NewReader(of))
	if err != nil {
		return nil, fmt.Errorf("%w: reading objects: %w", ErrBadSnapshot, err)
	}
	if vocab != meta.VocabSize {
		return nil, fmt.Errorf("%w: vocabulary size mismatch: objects %d vs meta %d", ErrBadSnapshot, vocab, meta.VocabSize)
	}
	if meta.Format >= dbMetaFormat && meta.Allocated > 0 {
		col, err = restoreIDSpace(col, meta.Allocated, meta.Tombstones)
		if err != nil {
			return nil, err
		}
	}
	if opts.Index == "" {
		opts.Index = meta.Index
	}
	// Re-enable the oracle for snapshots that carried one (or when the
	// caller asks for it): the persisted configuration wins unless opts
	// overrides it, and the snapshot's oracle file is offered for loading
	// — if it is missing, truncated, corrupt or mismatched, openDB's
	// harness rebuilds the oracle from the graph instead.
	oraclePath := ""
	if meta.OracleLandmarks > 0 && !opts.Oracle {
		opts.Oracle = true
		if opts.Landmarks == 0 {
			opts.Landmarks = meta.OracleLandmarks
		}
		if opts.OracleSeed == 0 {
			opts.OracleSeed = meta.OracleSeed
		}
	}
	if opts.Oracle {
		oraclePath = filepath.Join(dir, "oracle")
	}
	return openDB(g, col, vocab, opts, meta.WALLSN, oraclePath)
}

// restoreIDSpace rebuilds the collection with its original object IDs.
// The snapshot's objects file stores the live objects densely (in ID
// order); allocated and tombstones say where the holes were, so the
// rebuilt collection assigns every surviving object its pre-snapshot ID
// and re-tombstones the removed ones. Write-ahead-log records replayed
// on top then address exactly the IDs they were logged against.
func restoreIDSpace(col *Collection, allocated int, tombstones []ObjectID) (*Collection, error) {
	if col.Len()+len(tombstones) != allocated {
		return nil, fmt.Errorf("%w: %d live objects and %d tombstones do not fill %d allocated IDs",
			ErrBadSnapshot, col.Len(), len(tombstones), allocated)
	}
	dead := make(map[ObjectID]bool, len(tombstones))
	for _, id := range tombstones {
		if id < 0 || int(id) >= allocated || dead[id] {
			return nil, fmt.Errorf("%w: invalid tombstone ID %d (of %d allocated)", ErrBadSnapshot, id, allocated)
		}
		dead[id] = true
	}
	out := NewCollection()
	next := ObjectID(0) // next dense snapshot ID to place
	for id := 0; id < allocated; id++ {
		if dead[ObjectID(id)] {
			// Burn the ID: allocate a placeholder and tombstone it.
			placeholder := out.Add(Position{}, nil)
			if err := out.Remove(placeholder); err != nil {
				return nil, fmt.Errorf("%w: restoring tombstone %d: %w", ErrBadSnapshot, id, err)
			}
			continue
		}
		o := col.Get(next)
		out.Add(o.Pos, o.Terms)
		next++
	}
	return out, nil
}
