package dsks

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dsks/internal/dataset"
	"dsks/internal/graph"
	"dsks/internal/obj"
)

// Database persistence: SaveTo snapshots the road network, the live object
// set and the database options into a directory; OpenPath restores them and
// rebuilds the disk-resident index structures. The structures themselves
// are bulk-built (as in the paper), so rebuild-on-open is both simple and
// fast; note that object IDs are reassigned densely on load (tombstoned
// objects are dropped from the snapshot).

// dbMeta is the persisted configuration.
type dbMeta struct {
	Format         int       `json:"format"`
	Index          IndexKind `json:"index"`
	BufferFraction float64   `json:"bufferFraction,omitempty"`
	PartitionCuts  int       `json:"partitionCuts,omitempty"`
	VocabSize      int       `json:"vocabSize"`
}

const dbMetaFormat = 1

// SaveTo snapshots the database into dir (created if needed): the road
// network, every live object, and the options required to rebuild the
// same index structure on OpenPath.
func (db *DB) SaveTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gf, err := os.Create(filepath.Join(dir, "graph"))
	if err != nil {
		return err
	}
	defer gf.Close()
	if err := graph.Write(gf, db.sys.DS.Graph); err != nil {
		return fmt.Errorf("dsks: saving graph: %w", err)
	}
	of, err := os.Create(filepath.Join(dir, "objects"))
	if err != nil {
		return err
	}
	defer of.Close()
	if err := dataset.WriteObjects(of, db.sys.DS.Objects, db.sys.DS.VocabSize); err != nil {
		return fmt.Errorf("dsks: saving objects: %w", err)
	}
	meta := dbMeta{
		Format:    dbMetaFormat,
		Index:     db.kind,
		VocabSize: db.sys.DS.VocabSize,
	}
	mf, err := os.Create(filepath.Join(dir, "meta.json"))
	if err != nil {
		return err
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	return enc.Encode(meta)
}

// SaveVocabulary writes a Vocabulary next to a saved database (SaveTo does
// not persist it — the index stores TermIDs only) so that keyword strings
// resolve identically after OpenPath.
func SaveVocabulary(dir string, v *Vocabulary) error {
	f, err := os.Create(filepath.Join(dir, "vocabulary"))
	if err != nil {
		return err
	}
	defer f.Close()
	return v.Write(f)
}

// LoadVocabulary reads a vocabulary saved with SaveVocabulary.
func LoadVocabulary(dir string) (*Vocabulary, error) {
	f, err := os.Open(filepath.Join(dir, "vocabulary"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obj.ReadVocabulary(bufio.NewReader(f))
}

// OpenPath restores a database saved with SaveTo, rebuilding the index
// structures. opts fields that are zero keep the persisted configuration;
// a non-empty opts.Index overrides the saved index kind.
func OpenPath(dir string, opts Options) (*DB, error) {
	mf, err := os.Open(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	var meta dbMeta
	if err := json.NewDecoder(mf).Decode(&meta); err != nil {
		return nil, fmt.Errorf("dsks: reading meta.json: %w", err)
	}
	if meta.Format != dbMetaFormat {
		return nil, fmt.Errorf("%w: unsupported format version %d", ErrBadSnapshot, meta.Format)
	}
	gf, err := os.Open(filepath.Join(dir, "graph"))
	if err != nil {
		return nil, err
	}
	defer gf.Close()
	g, err := graph.Read(bufio.NewReader(gf))
	if err != nil {
		return nil, fmt.Errorf("dsks: reading graph: %w", err)
	}
	of, err := os.Open(filepath.Join(dir, "objects"))
	if err != nil {
		return nil, err
	}
	defer of.Close()
	col, vocab, err := dataset.ReadObjects(bufio.NewReader(of))
	if err != nil {
		return nil, fmt.Errorf("dsks: reading objects: %w", err)
	}
	if vocab != meta.VocabSize {
		return nil, fmt.Errorf("%w: vocabulary size mismatch: objects %d vs meta %d", ErrBadSnapshot, vocab, meta.VocabSize)
	}
	if opts.Index == "" {
		opts.Index = meta.Index
	}
	return Open(g, col, vocab, opts)
}
