package dsks

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"dsks/internal/core"
	"dsks/internal/index"
	"dsks/internal/invindex"
	"dsks/internal/sig"
	"dsks/internal/storage"
)

// ErrViewClosed reports a query on a View after Close.
var ErrViewClosed = errors.New("dsks: view closed")

// dbRoots is one published version of the database: the commit LSN that
// produced it, the live-object count, and the index root sets. A published
// dbRoots (and everything it points to) is immutable; mutators build a new
// one from copies and install it with a single atomic pointer swap.
type dbRoots struct {
	lsn  uint64
	live int
	// inv is the inverted-file root set (IF, SIF, SIF-P); nil for index
	// kinds without a versioned inverted file (IR), which are immutable
	// after build and need no versioning.
	inv *invindex.Roots
	// sif is the signature root set (SIF, SIF-P); nil otherwise.
	sif *sig.Roots
}

// View is a consistent read-only snapshot of the database, pinned at the
// commit LSN current when it was opened. Every query method — Search,
// SearchDiversified, SearchKNN, SearchRanked, SearchCollective, Stream,
// NetworkDistance — runs entirely against that snapshot, latch-free:
// concurrent Insert/Remove calls publish new versions without ever
// blocking the view's queries, and none of their effects are visible
// through it. Multiple queries on one view observe the same LSN, giving
// multi-query consistency (e.g. paginating with repeated searches, or
// caching results keyed on LSN).
//
// A View is safe for concurrent use. Close releases the pin; the storage
// layer reclaims superseded page versions only once the last view pinning
// them closes, so forgetting Close leaks version-overlay memory (but never
// corrupts anything). Queries on a closed view fail with ErrViewClosed.
type View struct {
	db     *DB
	roots  *dbRoots
	loader index.Loader
	ul     index.UnionLoader // nil when the index lacks OR-semantics loads
	closed atomic.Bool
}

// View opens a read view pinned at the current commit LSN. It never blocks
// on the writer: the root set is loaded with an atomic pointer read and
// pinned in the epoch registry (retrying only in the rare race where the
// loaded version was reclaimed between load and pin). Because opening
// never blocks, the context is not consulted here; it is accepted so call
// sites thread one uniformly, and every query on the view honors its own
// context (a view opened under an already-canceled context opens fine and
// fails at the first query, with the cancellation recorded in metrics).
//
// The caller must Close the view when done with it.
func (db *DB) View(ctx context.Context) (*View, error) {
	_ = ctx
	var r *dbRoots
	for {
		r = db.roots.Load()
		if db.epochs.Pin(r.lsn) {
			break
		}
		// The loaded root set was folded away before we pinned it; the
		// current one is always pinnable, so reload and retry.
	}
	loader, err := db.loaderAt(r)
	if err != nil {
		db.epochs.Unpin(r.lsn)
		return nil, err
	}
	v := &View{db: db, roots: r, loader: loader}
	if ul, ok := loader.(index.UnionLoader); ok {
		v.ul = ul
	}
	return v, nil
}

// loaderAt binds the index's query logic to the root snapshot r and a page
// view pinned at r.lsn. Index kinds without versioned roots (IR) are
// immutable after build and read the shared pool directly.
func (db *DB) loaderAt(r *dbRoots) (index.Loader, error) {
	pool := db.sys.ObjPool(db.kind)
	var pr storage.PageReader = pool
	if pool != nil {
		pr = pool.ViewAt(r.lsn)
	}
	switch db.kind {
	case IndexSIF:
		if r.inv != nil && r.sif != nil {
			return db.sys.SIF.ReaderAt(pr, r.inv, r.sif), nil
		}
	case IndexSIFP:
		if r.inv != nil && r.sif != nil {
			return db.sys.SIFP.ReaderAt(pr, r.inv, r.sif), nil
		}
	case IndexIF:
		if r.inv != nil {
			l, err := db.sys.Loader(db.kind)
			if err != nil {
				return nil, err
			}
			if il, ok := l.(*invindex.Loader); ok {
				return il.At(pr, r.inv), nil
			}
		}
	}
	return db.sys.Loader(db.kind)
}

// Close releases the view's pin on its LSN. Idempotent; after the first
// call every query method fails with ErrViewClosed. Closing the last view
// pinned at an old LSN lets the storage layer fold superseded page
// versions back into the base file.
func (v *View) Close() {
	if v.closed.Swap(true) {
		return
	}
	v.db.epochs.Unpin(v.roots.lsn)
	v.db.reclaim()
}

// LSN returns the commit LSN the view is pinned at: the WAL LSN of the
// last mutation visible through it (databases without a WAL count
// mutations on the same clock). Two views with equal LSNs observe
// identical data.
func (v *View) LSN() uint64 { return v.roots.lsn }

// LiveObjects returns the number of live objects visible in this view.
func (v *View) LiveObjects() int { return v.roots.live }

// guard validates the view and the query envelope.
func (v *View) guard(pos Position, terms []TermID) error {
	if v.closed.Load() {
		return ErrViewClosed
	}
	return v.db.checkQuery(pos, terms)
}

// Search runs a boolean spatial keyword query against the view's snapshot:
// all objects within q.DeltaMax network distance containing every keyword
// of q.Terms, in non-decreasing distance order.
func (v *View) Search(ctx context.Context, q SKQuery) (Result, error) {
	if err := v.guard(q.Pos, q.Terms); err != nil {
		return Result{}, err
	}
	r, err := v.db.sys.RunSKOn(ctx, v.db.kind, v.loader, q)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Candidates: r.Candidates,
		Elapsed:    r.Elapsed,
		DiskReads:  r.DiskReads,
		Stats:      r.Stats,
		Trace:      r.Trace,
	}, nil
}

// SearchDiversified runs a diversified spatial keyword query with the
// incremental COM algorithm against the view's snapshot.
func (v *View) SearchDiversified(ctx context.Context, q DivQuery) (Result, error) {
	return v.SearchDiversifiedWith(ctx, AlgoCOM, q)
}

// SearchDiversifiedWith is SearchDiversified with an explicit algorithm
// choice (COM or the SEQ baseline).
func (v *View) SearchDiversifiedWith(ctx context.Context, algo Algo, q DivQuery) (Result, error) {
	if err := v.guard(q.Pos, q.Terms); err != nil {
		return Result{}, err
	}
	r, err := v.db.sys.RunDivOn(ctx, v.db.kind, v.loader, algo, q)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Candidates: r.Div.Objects,
		F:          r.Div.F,
		Elapsed:    r.Elapsed,
		DiskReads:  r.DiskReads,
		Stats:      r.Stats,
		Trace:      r.Trace,
	}, nil
}

// SearchKNN returns the k nearest objects containing every query keyword,
// in non-decreasing network distance, against the view's snapshot.
func (v *View) SearchKNN(ctx context.Context, q KNNQuery) (Result, error) {
	if err := v.guard(q.Pos, q.Terms); err != nil {
		return Result{}, err
	}
	r, err := v.db.sys.RunKNNOn(ctx, v.db.kind, v.loader, q)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Candidates: r.Candidates,
		Elapsed:    r.Elapsed,
		DiskReads:  r.DiskReads,
		Stats:      r.Stats,
		Trace:      r.Trace,
	}, nil
}

// SearchRanked runs the top-k ranked spatial keyword query against the
// view's snapshot. It requires an index with OR-semantics support (IF, SIF
// or SIF-P); others fail with an error matching ErrUnsupportedIndex.
func (v *View) SearchRanked(ctx context.Context, q RankedQuery) (Result, error) {
	if v.ul == nil {
		return Result{}, errUnsupportedQuery("ranked", v.db.kind)
	}
	if err := v.guard(q.Pos, q.Terms); err != nil {
		return Result{}, err
	}
	r, err := v.db.sys.RunRankedOn(ctx, v.db.kind, v.ul, q)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Ranked:    r.Ranked,
		Elapsed:   r.Elapsed,
		DiskReads: r.DiskReads,
		Stats:     r.Stats,
		Trace:     r.Trace,
	}, nil
}

// SearchCollective finds a keyword-covering group against the view's
// snapshot. It requires an index with OR-semantics support (IF, SIF or
// SIF-P); others fail with an error matching ErrUnsupportedIndex.
func (v *View) SearchCollective(ctx context.Context, q CollectiveQuery) (Result, error) {
	if v.ul == nil {
		return Result{}, errUnsupportedQuery("collective", v.db.kind)
	}
	if err := v.guard(q.Pos, q.Terms); err != nil {
		return Result{}, err
	}
	r, err := v.db.sys.RunCollectiveOn(ctx, v.db.kind, v.ul, q)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Collective: r.Collective,
		Elapsed:    r.Elapsed,
		DiskReads:  r.DiskReads,
		Stats:      r.Stats,
		Trace:      r.Trace,
	}, nil
}

// Stream starts an incremental boolean search against the view's snapshot.
// The view must stay open for the stream's lifetime (the stream reads the
// view's pinned pages); a stream obtained from DB.Stream instead owns a
// private view and releases it itself.
func (v *View) Stream(ctx context.Context, q SKQuery) (*Stream, error) {
	return v.stream(ctx, q, false)
}

func (v *View) stream(ctx context.Context, q SKQuery, own bool) (*Stream, error) {
	if err := v.guard(q.Pos, q.Terms); err != nil {
		return nil, err
	}
	before := v.db.sys.DiskReads(v.db.kind)
	start := time.Now()
	s, err := core.NewSKSearch(ctx, v.db.sys.Net, v.loader, q)
	if err != nil {
		return nil, err
	}
	st := &Stream{search: s, sys: v.db.sys, kind: v.db.kind, start: start, before: before}
	if own {
		st.view = v
	}
	return st, nil
}

// NetworkDistance returns the exact network distance between two
// positions (the road network is immutable, so this is identical across
// views; it lives on View so a view-scoped caller never needs the DB).
// Unreachable pairs fail with an error matching ErrNoPath.
func (v *View) NetworkDistance(ctx context.Context, a, b Position) (float64, error) {
	if v.closed.Load() {
		return 0, ErrViewClosed
	}
	return v.db.NetworkDistanceCtx(ctx, a, b)
}
