package dsks_test

// One benchmark per table and figure of the paper's evaluation (Section
// 5). Each bench regenerates its figure through the experiment driver at
// a laptop-friendly scale and reports the figure's headline numbers as
// custom metrics, so `go test -bench=.` reproduces the whole evaluation
// and prints the same series the paper plots.
//
// Shapes to expect (matching the paper):
//   - Fig 6/7/8: IR slowest by a multiple; IF above SIF above SIF-P, gaps
//     widening with more keywords and larger ranges.
//   - Fig 9: SIF-P false hits fall as the cut budget grows, below SIF-G
//     at a tenth of its space.
//   - Fig 10: Real ≈ Freq < Rand < no partitioning.
//   - Fig 11–16: COM at or below SEQ, the gap widening with the candidate
//     count; SEQ insensitive to k and λ while COM degrades with k and
//     improves with λ.

import (
	"strings"
	"testing"

	"dsks/internal/experiments"
)

// benchCfg keeps a full `go test -bench=.` run in the minutes range.
// Raise Queries / lower Scale (e.g. via cmd/expts) for paper-closer runs.
func benchCfg() experiments.Config {
	return experiments.Config{Scale: 400, Queries: 25, Seed: 1}
}

// reportSeries publishes each series' mean as a benchmark metric. Metric
// units must be whitespace-free, so series names are slugged.
func reportSeries(b *testing.B, r *experiments.Result, unit string, names ...string) {
	b.Helper()
	for _, n := range names {
		if s, ok := r.Series[n]; ok {
			b.ReportMetric(s.Mean(), metricSlug(n)+"_"+unit)
		}
	}
}

func metricSlug(name string) string {
	repl := strings.NewReplacer(" ", "-", "(", "", ")", "", "\t", "-")
	return repl.Replace(name)
}

func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "objs", "objects/SYN", "objects/NA", "objects/TW", "objects/SF")
	}
}

func BenchmarkFig06SKDatasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "ms", "time/IR", "time/IF", "time/SIF", "time/SIF-P")
	}
}

func BenchmarkFig06Construction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "ms", "build/IR", "build/IF", "build/SIF", "build/SIF-P")
		reportSeries(b, r, "bytes", "size/IF", "size/SIF", "size/SIF-P")
	}
}

func BenchmarkFig07QueryKeywords(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "io", "io/IF", "io/SIF", "io/SIF-P")
	}
}

func BenchmarkFig08SearchRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "io", "io/IF", "io/SIF", "io/SIF-P")
		reportSeries(b, r, "cand", "cand/NA", "cand/SF", "cand/SYN", "cand/TW")
	}
}

func BenchmarkFig09SpaceCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "falsehits", "SIF", "SIF-P", "SIF-G")
	}
}

func BenchmarkFig10QueryLogs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "ms", "time/SIF", "time/SIF-P-Rand", "time/SIF-P-Freq", "time/SIF-P-Real")
	}
}

func BenchmarkFig11DivDatasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "ms", "SEQ", "COM")
	}
}

func BenchmarkFig12DivKeywords(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "ms", "SEQ", "COM")
	}
}

func BenchmarkFig13DivRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "ms", "SEQ", "COM")
	}
}

func BenchmarkFig14DivK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "ms", "SEQ", "COM")
		reportSeries(b, r, "cand", "cand/SEQ", "cand/COM")
	}
}

func BenchmarkFig15DivLambda(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "ms", "SEQ", "COM")
	}
}

func BenchmarkFig16aZipf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16a(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "ms", "SEQ", "COM")
	}
}

func BenchmarkFig16bObjects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16b(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "ms", "SEQ", "COM")
	}
}

func BenchmarkFig16cKeywordsPerObject(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16c(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "ms", "SEQ", "COM")
	}
}

func BenchmarkFig16dVocabulary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16d(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "ms", "SEQ", "COM")
	}
}

// --- ablation benches (design choices DESIGN.md calls out) -----------------

func BenchmarkAblationPruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPruning(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "dist", "dist/COM (both rules)", "dist/COM no pruning")
	}
}

func BenchmarkAblationPartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPartition(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "ms", "build/greedy", "build/DP (Algorithm 4)")
		reportSeries(b, r, "hits", "hits/greedy", "hits/DP (Algorithm 4)")
	}
}

func BenchmarkAblationDijkstra(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDijkstra(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "ms", "accumulated", "per-object")
	}
}

func BenchmarkAblationCompaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationCompaction(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "bytes", "flat/TW", "compact/TW")
	}
}

func BenchmarkExtraQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtraQuality(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "f", "f/nearest-k", "f/random-k", "f/SEQ", "f/COM")
	}
}

func BenchmarkExtraBufferSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtraBufferSweep(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "io", "io")
	}
}

func BenchmarkExtraThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtraThroughput(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, r, "qps", "qps")
	}
}
