package dsks_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dsks"
)

// The ALT landmark oracle is an accelerator, not an approximation: its
// triangle bounds only ever short-circuit work whose outcome they prove,
// so every query must return bit-identical results with the oracle on
// and off, and a damaged oracle file must degrade to a rebuild — never
// a crash, never a silently different answer.

// oraclePair opens the same generated dataset twice: once plain, once
// with the landmark oracle.
func oraclePair(t *testing.T, preset dsks.Preset, scale int) (*dsks.DB, *dsks.DB, *dsks.Dataset) {
	t.Helper()
	base := openPresetDB(t, preset, scale, dsks.Options{Index: dsks.IndexSIF})
	assisted := openPresetDB(t, preset, scale, dsks.Options{
		Index: dsks.IndexSIF, Oracle: true, Landmarks: 8, OracleSeed: 7,
	})
	ds, err := dsks.GeneratePreset(preset, scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	return base, assisted, ds
}

func openPresetDB(t *testing.T, preset dsks.Preset, scale int, opts dsks.Options) *dsks.DB {
	t.Helper()
	ds, err := dsks.GeneratePreset(preset, scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dsks.OpenDataset(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	return db
}

// requireSameResult asserts the query payloads are bit-identical: the
// oracle path may skip work, but never change an answer. Stats and
// timing legitimately differ and are not compared.
func requireSameResult(t *testing.T, tag string, want, got dsks.Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Candidates, got.Candidates) {
		t.Fatalf("%s: candidates diverge with the oracle on\nwant %v\ngot  %v",
			tag, want.Candidates, got.Candidates)
	}
	if want.F != got.F {
		t.Fatalf("%s: objective %v with the oracle on, want %v (bit-identical)", tag, got.F, want.F)
	}
	if !reflect.DeepEqual(want.Ranked, got.Ranked) {
		t.Fatalf("%s: ranked results diverge with the oracle on\nwant %v\ngot  %v",
			tag, want.Ranked, got.Ranked)
	}
	if !reflect.DeepEqual(want.Collective, got.Collective) {
		t.Fatalf("%s: collective group diverges with the oracle on\nwant %+v\ngot  %+v",
			tag, want.Collective, got.Collective)
	}
}

// checkOracleEquivalence replays one workload against both databases and
// requires bit-identical answers from every query kind, including both
// diversified algorithms.
func checkOracleEquivalence(t *testing.T, phase string, base, assisted *dsks.DB, ws []dsks.WorkloadQuery) {
	t.Helper()
	ctx := context.Background()
	for qi, w := range ws {
		skq := dsks.SKQuery{Pos: w.Pos, Terms: w.Terms, DeltaMax: w.DeltaMax}
		dq := dsks.DivQuery{SKQuery: skq, K: 4, Lambda: 0.5}

		for _, algo := range []dsks.Algo{dsks.AlgoSEQ, dsks.AlgoCOM} {
			want, err := base.SearchDiversifiedWithCtx(ctx, algo, dq)
			if err != nil {
				t.Fatal(err)
			}
			got, err := assisted.SearchDiversifiedWithCtx(ctx, algo, dq)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, phase+": diversified "+string(algo)+" "+itoa(qi), want, got)
		}

		want, err := base.Search(skq)
		if err != nil {
			t.Fatal(err)
		}
		got, err := assisted.Search(skq)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, phase+": search "+itoa(qi), want, got)

		knn := dsks.KNNQuery{Pos: w.Pos, Terms: w.Terms, K: 5}
		want, err = base.SearchKNN(knn)
		if err != nil {
			t.Fatal(err)
		}
		got, err = assisted.SearchKNN(knn)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, phase+": knn "+itoa(qi), want, got)

		rq := dsks.RankedQuery{Pos: w.Pos, Terms: w.Terms, K: 5, Alpha: 0.5, DeltaMax: w.DeltaMax}
		want, err = base.SearchRanked(rq)
		if err != nil {
			t.Fatal(err)
		}
		got, err = assisted.SearchRanked(rq)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, phase+": ranked "+itoa(qi), want, got)

		cq := dsks.CollectiveQuery{Pos: w.Pos, Terms: w.Terms, DeltaMax: w.DeltaMax}
		want, err = base.SearchCollective(cq)
		if err != nil {
			t.Fatal(err)
		}
		got, err = assisted.SearchCollective(cq)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, phase+": collective "+itoa(qi), want, got)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// TestOracleEquivalence is the oracle's correctness property test: the
// same query mix with the oracle on and off must produce bit-identical
// diversified (both algorithms), boolean, kNN, ranked and collective
// results, on the synthetic presets, before and after mutations.
func TestOracleEquivalence(t *testing.T) {
	for _, tc := range []struct {
		preset dsks.Preset
		scale  int
	}{
		{dsks.PresetSYN, 1000},
		{dsks.PresetNA, 500},
	} {
		t.Run(string(tc.preset), func(t *testing.T) {
			base, assisted, ds := oraclePair(t, tc.preset, tc.scale)
			if assisted.DistanceOracle() == nil {
				t.Fatal("assisted database has no oracle")
			}
			ws, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
				NumQueries: 10, Keywords: 2, Seed: 11,
			})
			if err != nil {
				t.Fatal(err)
			}

			checkOracleEquivalence(t, "initial", base, assisted, ws)

			// Mutations change the object set but not the road network the
			// oracle indexes, so equivalence must survive them untouched.
			ws2, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
				NumQueries: 6, Keywords: 2, Seed: 99,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range ws2 {
				bid, err := base.Insert(w.Pos, w.Terms)
				if err != nil {
					t.Fatal(err)
				}
				aid, err := assisted.Insert(w.Pos, w.Terms)
				if err != nil {
					t.Fatal(err)
				}
				if bid != aid {
					t.Fatalf("insert %d: assisted DB assigned ID %d, baseline %d", i, aid, bid)
				}
			}
			for _, id := range []dsks.ObjectID{1, 5} {
				if err := base.Remove(id); err != nil {
					t.Fatal(err)
				}
				if err := assisted.Remove(id); err != nil {
					t.Fatal(err)
				}
			}

			checkOracleEquivalence(t, "after mutations", base, assisted, ws)
		})
	}
}

// saveOracleSnap saves an oracle-enabled preset database and returns the
// snapshot directory plus a workload to replay against reopens.
func saveOracleSnap(t *testing.T) (string, []dsks.WorkloadQuery) {
	t.Helper()
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: 5, Keywords: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := dsks.OpenDataset(ds, dsks.Options{
		Index: dsks.IndexSIF, Oracle: true, Landmarks: 8, OracleSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	dir := filepath.Join(t.TempDir(), "snap")
	if err := db.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	return dir, ws
}

// divAnswers replays the workload's diversified queries and returns the
// payloads, for comparing a damaged-then-rebuilt reopen to a clean one.
func divAnswers(t *testing.T, db *dsks.DB, ws []dsks.WorkloadQuery) []dsks.Result {
	t.Helper()
	out := make([]dsks.Result, len(ws))
	for i, w := range ws {
		res, err := db.SearchDiversified(dsks.DivQuery{
			SKQuery: dsks.SKQuery{Pos: w.Pos, Terms: w.Terms, DeltaMax: w.DeltaMax},
			K:       4, Lambda: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = res
	}
	return out
}

// reopenAfterDamage corrupts the snapshot's oracle file with damage and
// asserts OpenPath still succeeds — the oracle is rebuilt from the graph
// — and serves the same answers as an undamaged reopen.
func reopenAfterDamage(t *testing.T, scenario string, damage func(t *testing.T, path string)) {
	t.Helper()
	dir, ws := saveOracleSnap(t)

	clean, err := dsks.OpenPath(dir, dsks.Options{})
	if err != nil {
		t.Fatalf("%s: clean reopen failed: %v", scenario, err)
	}
	if clean.DistanceOracle() == nil {
		t.Fatalf("%s: clean reopen lost the oracle", scenario)
	}
	want := divAnswers(t, clean, ws)
	if err := clean.Close(); err != nil {
		t.Fatal(err)
	}

	damage(t, filepath.Join(dir, "oracle"))

	db, err := dsks.OpenPath(dir, dsks.Options{})
	if err != nil {
		t.Fatalf("%s: reopen with a damaged oracle must rebuild, got %v", scenario, err)
	}
	defer db.Close()
	if db.DistanceOracle() == nil {
		t.Fatalf("%s: damaged oracle was not rebuilt", scenario)
	}
	got := divAnswers(t, db, ws)
	for i := range want {
		requireSameResult(t, scenario+": query "+itoa(i), want[i], got[i])
	}
}

func TestOpenPathOracleTruncated(t *testing.T) {
	reopenAfterDamage(t, "truncated oracle", func(t *testing.T, path string) {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, st.Size()/2); err != nil {
			t.Fatal(err)
		}
	})
}

func TestOpenPathOracleBitFlipped(t *testing.T) {
	reopenAfterDamage(t, "bit-flipped oracle", func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestOpenPathOracleWrongLandmarkCount(t *testing.T) {
	reopenAfterDamage(t, "wrong landmark count", func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// The landmark count is the third little-endian u32 of the header;
		// doubling it makes the payload size and the meta count disagree.
		data[8] <<= 1
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestOpenPathOracleMissing(t *testing.T) {
	reopenAfterDamage(t, "deleted oracle", func(t *testing.T, path string) {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	})
}

// TestOpenPathOracleOffByDefault: a snapshot saved without an oracle
// must not grow one on reopen, and reopening an oracle snapshot with
// explicit oracle options must honor them.
func TestOpenPathOracleOffByDefault(t *testing.T) {
	dir := saveTiny(t)
	db, err := dsks.OpenPath(dir, dsks.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.DistanceOracle() != nil {
		t.Fatal("snapshot saved without an oracle reopened with one")
	}
}
