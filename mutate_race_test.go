package dsks_test

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"dsks"
)

// TestMutationsRacingSearches is the serving-layer interleaving: Insert
// and Remove racing SearchDiversifiedCtx (and the other one-shot query
// families) from many goroutines. The database write latch must make
// every query observe the index either entirely before or entirely after
// each mutation — run with -race to exercise the synchronization. The
// table covers every index kind that supports mutation.
func TestMutationsRacingSearches(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind dsks.IndexKind
	}{
		{"IF", dsks.IndexIF},
		{"SIF", dsks.IndexSIF},
		{"SIF-P", dsks.IndexSIFP},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Small synthetic graph with a handful of seeded objects.
			g, err := dsks.GenerateNetwork(dsks.NetworkConfig{Nodes: 30, EdgeFactor: 1.5, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			col := dsks.NewCollection()
			const vocab = 8
			for e := 0; e < g.NumEdges(); e += 3 {
				col.Add(dsks.Position{Edge: dsks.EdgeID(e), Offset: 1},
					[]dsks.TermID{0, dsks.TermID(1 + e%(vocab-1))})
			}
			db, err := dsks.Open(g, col, vocab, dsks.Options{Index: tc.kind})
			if err != nil {
				t.Fatal(err)
			}

			query := dsks.DivQuery{
				SKQuery: dsks.SKQuery{
					Pos: dsks.Position{Edge: 0, Offset: 0}, Terms: []dsks.TermID{0}, DeltaMax: 1e9,
				},
				K: 4, Lambda: 0.7,
			}
			base, err := db.SearchDiversifiedCtx(context.Background(), query)
			if err != nil {
				t.Fatal(err)
			}
			if len(base.Candidates) == 0 {
				t.Fatal("seed query returned no candidates; the race would be vacuous")
			}

			const (
				searchers  = 4
				mutators   = 2
				iterations = 15
			)
			var wg sync.WaitGroup
			errs := make(chan error, searchers+mutators)

			for s := 0; s < searchers; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iterations; i++ {
						res, err := db.SearchDiversifiedCtx(context.Background(), query)
						if err != nil {
							errs <- err
							return
						}
						// Mutators only add/remove term-0 objects, so the
						// candidate pool can only grow or shrink around the
						// seeded base; a torn read would surface as a race
						// report or a nonsensical result.
						if len(res.Candidates) == 0 {
							errs <- err
							return
						}
						// The boolean family shares the same latch.
						if _, err := db.SearchCtx(context.Background(), query.SKQuery); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			for m := 0; m < mutators; m++ {
				wg.Add(1)
				go func(m int) {
					defer wg.Done()
					edge := dsks.EdgeID(1 + m)
					for i := 0; i < iterations; i++ {
						id, err := db.Insert(dsks.Position{Edge: edge, Offset: 0.5},
							[]dsks.TermID{0, dsks.TermID(1 + m)})
						if err != nil {
							errs <- err
							return
						}
						if err := db.Remove(id); err != nil {
							errs <- err
							return
						}
					}
				}(m)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}

			// Every mutation committed: the version counter saw all of them.
			if got, want := db.Version(), uint64(mutators*iterations*2); got != want {
				t.Fatalf("Version() = %d, want %d", got, want)
			}
			// The object set is back to the seed state.
			after, err := db.SearchDiversifiedCtx(context.Background(), query)
			if err != nil {
				t.Fatal(err)
			}
			if len(after.Candidates) != len(base.Candidates) {
				t.Fatalf("after the churn: %d candidates, want %d", len(after.Candidates), len(base.Candidates))
			}
		})
	}
}

// TestWALMutationsRacingSaveAndSearches adds the durability layer to the
// interleaving: Insert and Remove (each append-to-log + fsync-wait)
// racing SaveTo (snapshot + log checkpoint, with rotation and
// compaction) racing queries, under -race. Afterwards the snapshot plus
// the log tail must restore the exact final state.
func TestWALMutationsRacingSaveAndSearches(t *testing.T) {
	g, err := dsks.GenerateNetwork(dsks.NetworkConfig{Nodes: 30, EdgeFactor: 1.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	col := dsks.NewCollection()
	const vocab = 8
	for e := 0; e < g.NumEdges(); e += 3 {
		col.Add(dsks.Position{Edge: dsks.EdgeID(e), Offset: 1},
			[]dsks.TermID{0, dsks.TermID(1 + e%(vocab-1))})
	}
	tmp := t.TempDir()
	opts := dsks.Options{Index: dsks.IndexSIF, WALDir: filepath.Join(tmp, "wal")}
	db, err := dsks.Open(g, col, vocab, opts)
	if err != nil {
		t.Fatal(err)
	}
	snapDir := filepath.Join(tmp, "snap")

	query := dsks.SKQuery{Pos: dsks.Position{Edge: 0, Offset: 0}, Terms: []dsks.TermID{0}, DeltaMax: 1e9}
	const (
		searchers  = 2
		mutators   = 2
		savers     = 1
		iterations = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, searchers+mutators+savers)
	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				if _, err := db.SearchCtx(context.Background(), query); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				id, err := db.Insert(dsks.Position{Edge: dsks.EdgeID(1 + m), Offset: 0.5},
					[]dsks.TermID{0, dsks.TermID(1 + m)})
				if err != nil {
					errs <- err
					return
				}
				if err := db.Remove(id); err != nil {
					errs <- err
					return
				}
			}
		}(m)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iterations/2; i++ {
			if err := db.SaveTo(snapDir); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got, want := db.Version(), uint64(mutators*iterations*2); got != want {
		t.Fatalf("Version() = %d, want %d", got, want)
	}
	// A final save then restore: the churn must round-trip exactly.
	if err := db.SaveTo(snapDir); err != nil {
		t.Fatal(err)
	}
	want := db.LiveObjects()
	base, err := db.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := dsks.OpenPath(snapDir, dsks.Options{WALDir: opts.WALDir})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if got := back.LiveObjects(); got != want {
		t.Fatalf("LiveObjects after restore = %d, want %d", got, want)
	}
	res, err := back.Search(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != len(base.Candidates) {
		t.Fatalf("restored query: %d candidates, want %d", len(res.Candidates), len(base.Candidates))
	}
}
