package dsks_test

import (
	"sync"
	"testing"

	"dsks"
)

// TestConcurrentQueries runs boolean and diversified queries from many
// goroutines against one DB. The buffer pools serialize page access
// internally; results must match the sequential baseline. Run with
// `go test -race` to exercise the synchronization.
func TestConcurrentQueries(t *testing.T) {
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 2000, 77)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dsks.OpenDataset(ds, dsks.Options{Index: dsks.IndexSIF})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: 12, Keywords: 2, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Sequential baseline.
	want := make([][]dsks.Candidate, len(ws))
	for i, q := range ws {
		res, err := db.Search(dsks.SKQuery{Pos: q.Pos, Terms: q.Terms, DeltaMax: q.DeltaMax})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Candidates
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				i := (worker + rep) % len(ws)
				q := ws[i]
				res, err := db.Search(dsks.SKQuery{Pos: q.Pos, Terms: q.Terms, DeltaMax: q.DeltaMax})
				if err != nil {
					errs <- err
					return
				}
				if len(res.Candidates) != len(want[i]) {
					t.Errorf("worker %d query %d: %d candidates, want %d",
						worker, i, len(res.Candidates), len(want[i]))
					return
				}
				// Diversified queries interleaved too.
				if _, err := db.SearchDiversified(dsks.DivQuery{
					SKQuery: dsks.SKQuery{Pos: q.Pos, Terms: q.Terms, DeltaMax: q.DeltaMax},
					K:       4, Lambda: 0.8,
				}); err != nil {
					errs <- err
					return
				}
			}
		}(worker)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
