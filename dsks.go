// Package dsks is a library for diversified spatial keyword search on road
// networks, reproducing Zhang et al., "Diversified Spatial Keyword Search
// On Road Networks" (EDBT 2014).
//
// A database is built from a road network (a weighted graph whose edges
// are road segments) and a set of spatio-textual objects lying on those
// edges. Boolean spatial keyword queries retrieve the objects within a
// network-distance range that contain every query keyword (Search);
// diversified queries additionally select the k results maximizing a
// bi-criteria objective that trades network-distance relevance against
// pairwise spatial diversity (SearchDiversified).
//
// The disk-resident setting of the paper is simulated faithfully: the
// network is stored in CCAM pages, objects in a signature-enhanced
// inverted file, and all page reads flow through an LRU buffer pool whose
// misses are reported as disk accesses.
//
// Every query has a context-aware variant (SearchCtx, SearchDiversifiedCtx,
// ...) that honors cancellation and deadlines: the network expansion checks
// the context between steps and before every simulated disk read, so a
// canceled query stops promptly and returns an error matching ErrCanceled
// or ErrDeadlineExceeded under errors.Is. The context-free methods are thin
// wrappers over context.Background(). Per-query latencies, work counters
// and buffer-pool hit rates are aggregated in a lock-free metrics registry
// (Metrics, Snapshot); per-query stage timings can be observed with
// SetTraceHook.
//
// Quick start:
//
//	g := dsks.NewGraph()
//	a := g.AddNode(dsks.Point{X: 0, Y: 0})
//	b := g.AddNode(dsks.Point{X: 100, Y: 0})
//	road, _ := g.AddEdge(a, b, 100)
//	g.Freeze()
//
//	vocab := dsks.NewVocabulary()
//	objects := dsks.NewCollection()
//	objects.Add(dsks.Position{Edge: road, Offset: 40},
//	    vocab.InternAll([]string{"pancake", "lobster"}))
//
//	db, _ := dsks.Open(g, objects, vocab.Size(), dsks.Options{})
//	terms, _ := vocab.LookupAll([]string{"pancake", "lobster"})
//	res, _ := db.SearchDiversified(dsks.DivQuery{
//	    SKQuery: dsks.SKQuery{
//	        Pos: dsks.Position{Edge: road, Offset: 0}, Terms: terms, DeltaMax: 500,
//	    },
//	    K: 2, Lambda: 0.8,
//	})
package dsks

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"dsks/internal/alt"
	"dsks/internal/core"
	"dsks/internal/dataset"
	"dsks/internal/fault"
	"dsks/internal/geo"
	"dsks/internal/graph"
	"dsks/internal/harness"
	"dsks/internal/invindex"
	"dsks/internal/metrics"
	"dsks/internal/obj"
	"dsks/internal/sig"
	"dsks/internal/storage"
	"dsks/internal/wal"
)

// Re-exported building blocks. The aliases keep one canonical definition
// in the internal packages while giving library users a single import.
type (
	// Point is a planar location in the [0, 10000]² world space.
	Point = geo.Point
	// Graph is the road network under construction or query.
	Graph = graph.Graph
	// NodeID identifies a road intersection.
	NodeID = graph.NodeID
	// EdgeID identifies a road segment.
	EdgeID = graph.EdgeID
	// Position locates a point on the network: an edge plus the geometric
	// offset from the edge's reference node.
	Position = graph.Position
	// TermID identifies a keyword in a Vocabulary.
	TermID = obj.TermID
	// ObjectID identifies a spatio-textual object in a Collection.
	ObjectID = obj.ID
	// Vocabulary maps keyword strings to TermIDs.
	Vocabulary = obj.Vocabulary
	// Collection is the object set of a database.
	Collection = obj.Collection
	// SKQuery is a boolean spatial keyword query.
	SKQuery = core.SKQuery
	// DivQuery is a diversified spatial keyword query.
	DivQuery = core.DivQuery
	// Candidate is a qualifying object with its network distance.
	Candidate = core.Candidate
	// SearchStats are the per-query cost counters.
	SearchStats = core.SearchStats
	// Trace holds one query's stage timings: network expansion, posting
	// reads, and greedy diversification.
	Trace = core.Trace
)

// Observability aliases: the metrics registry and its snapshot types.
type (
	// MetricsRegistry aggregates query samples by kind; obtain the
	// database's registry with DB.Metrics.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time view of the registry: per-kind
	// latency quantiles and work counters, plus buffer-pool hit rates.
	MetricsSnapshot = metrics.Snapshot
	// QuerySnapshot is the aggregated view of one query kind.
	QuerySnapshot = metrics.QuerySnapshot
	// PoolSnapshot is the read-counter view of one buffer pool.
	PoolSnapshot = metrics.PoolSnapshot
	// QueryKind labels the query families the engine serves.
	QueryKind = metrics.QueryKind
	// TraceHook observes per-query stage timings; install with
	// DB.SetTraceHook.
	TraceHook = harness.TraceHook
)

// The query kinds appearing in metrics snapshots.
const (
	KindSearch      = metrics.KindSearch
	KindDiversified = metrics.KindDiversified
	KindKNN         = metrics.KindKNN
	KindRanked      = metrics.KindRanked
	KindCollective  = metrics.KindCollective
	KindStream      = metrics.KindStream
)

// Sentinel errors. Query errors wrap both the dsks sentinel and the
// underlying context error, so errors.Is(err, dsks.ErrCanceled) and
// errors.Is(err, context.Canceled) both hold for a canceled query.
var (
	// ErrCanceled reports a query aborted because its context was canceled.
	ErrCanceled = core.ErrCanceled
	// ErrDeadlineExceeded reports a query aborted because its context's
	// deadline passed.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
	// ErrUnsupportedIndex reports an operation the database's index
	// structure cannot serve (e.g. ranked queries on IR, inserts on IR).
	ErrUnsupportedIndex = errors.New("dsks: operation not supported by this index")
	// ErrUnknownObject reports an ObjectID that does not name a live object.
	ErrUnknownObject = errors.New("dsks: unknown object")
	// ErrUnknownEdge reports an EdgeID outside the road network.
	ErrUnknownEdge = errors.New("dsks: unknown edge")
	// ErrTermOutOfRange reports a TermID at or beyond the vocabulary size.
	ErrTermOutOfRange = errors.New("dsks: term outside vocabulary")
	// ErrBadOptions reports invalid Options passed to Open.
	ErrBadOptions = errors.New("dsks: bad options")
	// ErrBadSnapshot reports a saved database directory that OpenPath
	// cannot restore (unknown format version, corrupt or mismatched files).
	ErrBadSnapshot = errors.New("dsks: invalid database snapshot")
	// ErrBadOracle reports a persisted landmark-oracle file that failed
	// validation (truncation, corruption, or a landmark count/seed that
	// contradicts the snapshot). It never surfaces from OpenPath — a bad
	// oracle file is discarded and the oracle rebuilt from the graph —
	// but internal load paths and tests match against it.
	ErrBadOracle = alt.ErrBadOracle
	// ErrCorruptPage reports a disk page whose bytes failed checksum
	// verification (with Options.Checksums enabled): the storage layer
	// detected silent corruption and refused to serve the page.
	ErrCorruptPage = storage.ErrCorruptPage
	// ErrBadWAL reports a write-ahead log that cannot be trusted: a CRC
	// mismatch or truncation before the final record, a gap in the LSN
	// chain, or a replayed record that contradicts the snapshot it is
	// applied over. (A torn tail — an incomplete final record a crash
	// left behind — is repaired silently, not an error.)
	ErrBadWAL = wal.ErrCorrupt
	// ErrWALClosed reports a mutation on a database whose write-ahead
	// log has been closed or poisoned by an unrecoverable log failure.
	ErrWALClosed = wal.ErrClosed
	// ErrNoPath reports a route request between positions that no chain of
	// road segments connects.
	ErrNoPath = graph.ErrNoPath
)

// NewGraph returns an empty road network; add nodes and edges, then call
// Freeze before opening a database over it.
func NewGraph() *Graph { return graph.New() }

// Snapper maps arbitrary planar points (e.g. raw POI coordinates) to
// their closest road segment, the preprocessing the paper applies before
// indexing. Build one per network and reuse it across points.
type Snapper = graph.Snapper

// NewSnapper builds the network R-tree used for snapping.
func NewSnapper(g *Graph) (*Snapper, error) { return graph.NewSnapper(g) }

// NewVocabulary returns an empty keyword dictionary.
func NewVocabulary() *Vocabulary { return obj.NewVocabulary() }

// NewCollection returns an empty object set.
func NewCollection() *Collection { return obj.NewCollection() }

// IndexKind selects the object index structure backing a database.
type IndexKind = harness.IndexKind

// The available index structures, in increasing pruning power: the
// Euclidean inverted R-tree baseline, the plain inverted file, the
// signature-enhanced inverted file, and the partition-refined signatures.
const (
	IndexIR   = harness.KindIR
	IndexIF   = harness.KindIF
	IndexSIF  = harness.KindSIF
	IndexSIFP = harness.KindSIFP
)

// Algo selects the diversified search algorithm: the incremental COM
// (default) or the retrieve-everything SEQ baseline.
type Algo = harness.DivAlgo

// The two diversified search algorithms.
const (
	AlgoCOM = harness.AlgoCOM
	AlgoSEQ = harness.AlgoSEQ
)

// Options configures a database.
type Options struct {
	// Index picks the object index structure; empty defaults to SIF-P.
	Index IndexKind
	// BufferFraction sizes the LRU buffer pools as a fraction of each
	// page file (default 0.02, the paper's setting).
	BufferFraction float64
	// IOLatency injects a synthetic delay per buffer miss, making
	// response times I/O-dominated like a spinning-disk testbed.
	IOLatency time.Duration
	// PartitionCuts is the SIF-P per-edge cut budget (default 3).
	PartitionCuts int
	// QueryLog trains the SIF-P edge partitioning on an expected workload
	// (each entry one query's keywords). Nil uses the frequency model.
	QueryLog [][]TermID
	// DiskDir, when set, stores every page file on real disk under this
	// directory instead of the in-memory page simulation.
	DiskDir string
	// SelectivityOrder probes the rarest query keyword first, usually
	// discovering empty intersections after one list read. Off by default
	// to match the paper's baselines.
	SelectivityOrder bool
	// Checksums enables per-page CRC32C verification in the buffer
	// pools: every page write-back is stamped and every buffer miss
	// verified, so silent media corruption surfaces as an error matching
	// ErrCorruptPage instead of wrong query results. Off by default to
	// keep the paper's byte-exact I/O accounting unchanged.
	Checksums bool
	// WALDir, when set, makes mutations durable through a write-ahead
	// log in this directory: Insert and Remove append a record and are
	// acknowledged only once a group commit has fsynced it, Open and
	// OpenPath replay the log over the opened state, and SaveTo
	// checkpoints it (rotating and deleting segments the snapshot made
	// redundant). Empty disables logging (mutations live until SaveTo).
	WALDir string
	// WALSyncEvery caps how many mutations a group commit batches into
	// one fsync (default 64).
	WALSyncEvery int
	// WALSyncInterval is the window an unfilled commit batch waits for
	// more mutators before fsyncing (default 2ms).
	WALSyncInterval time.Duration
	// WALStrictSync fsyncs before every acknowledgment instead of group
	// committing: maximum durability, one fsync per mutation.
	WALStrictSync bool
	// Oracle builds the landmark (ALT) distance oracle at open time and
	// routes diversified queries through the landmark-assisted distance
	// engine: triangle-inequality bounds prune or pinch most pairwise
	// distances and goal-directed A* shrinks the rest, with results
	// bit-identical to the unassisted engine (docs/DISTANCE.md). SaveTo
	// persists the oracle with the snapshot, and OpenPath re-enables it
	// automatically for snapshots that carry one.
	Oracle bool
	// Landmarks is the oracle's landmark count (0 = the default 16;
	// at most 512). More landmarks mean tighter bounds and a bigger
	// oracle; see docs/DISTANCE.md for tuning.
	Landmarks int
	// OracleSeed seeds the deterministic landmark selection (0 = seed 1).
	// The same graph, landmark count and seed always pick the same
	// landmarks, so rebuilt and loaded oracles agree.
	OracleSeed uint64
}

// validate rejects option values that cannot configure a database.
func (o Options) validate() error {
	switch o.Index {
	case "", IndexIR, IndexIF, IndexSIF, IndexSIFP:
	default:
		return fmt.Errorf("%w: unknown index kind %q", ErrBadOptions, o.Index)
	}
	if o.BufferFraction < 0 {
		return fmt.Errorf("%w: BufferFraction must be non-negative, got %v", ErrBadOptions, o.BufferFraction)
	}
	if o.IOLatency < 0 {
		return fmt.Errorf("%w: IOLatency must be non-negative, got %v", ErrBadOptions, o.IOLatency)
	}
	if o.PartitionCuts < 0 {
		return fmt.Errorf("%w: PartitionCuts must be non-negative, got %d", ErrBadOptions, o.PartitionCuts)
	}
	if o.WALSyncEvery < 0 {
		return fmt.Errorf("%w: WALSyncEvery must be non-negative, got %d", ErrBadOptions, o.WALSyncEvery)
	}
	if o.WALSyncInterval < 0 {
		return fmt.Errorf("%w: WALSyncInterval must be non-negative, got %v", ErrBadOptions, o.WALSyncInterval)
	}
	if o.Landmarks < 0 || o.Landmarks > alt.MaxLandmarks {
		return fmt.Errorf("%w: Landmarks must be in [0, %d], got %d", ErrBadOptions, alt.MaxLandmarks, o.Landmarks)
	}
	return nil
}

// DB is an opened database: the disk-resident road network and object
// index, ready for queries. Reads and writes follow a single-writer /
// many-readers MVCC protocol: every query pins an immutable version of the
// database (a View) and runs against it latch-free, while mutations build
// the next version off to the side — cloning only the pages and roots they
// touch — and publish it with one atomic pointer swap stamped with the
// commit LSN. A query therefore observes the database exactly as of one
// published LSN, and a mutation burst never blocks the read path (see
// docs/CONCURRENCY.md for the full protocol).
//
// Open a View explicitly for multi-query consistency, or call the one-shot
// Search* methods, which open and close a view per call.
type DB struct {
	sys  *harness.System
	kind IndexKind

	// mu serializes mutators (Insert/Remove and WAL replay): one writer at
	// a time builds and publishes the next version. It also protects the
	// in-memory collection. Queries never take it — they read the roots
	// pointer below.
	mu sync.RWMutex

	// roots is the current published version: index root sets plus the
	// commit LSN that produced them. Readers load it with one atomic read
	// and pin its LSN in epochs; mutators (under mu) replace it after
	// publishing their copy-on-write pages.
	roots atomic.Pointer[dbRoots]
	// epochs tracks which LSNs live views have pinned; superseded page
	// versions are folded into the base file only once no view pins them.
	epochs storage.Epochs
	// foldMu serializes physical folds (reclaim), so an older fold can
	// never overwrite the bytes of a newer one.
	foldMu sync.Mutex

	// version counts committed mutations (Insert/Remove). Result caches
	// historically keyed on it; prefer View.LSN, which identifies the
	// exact snapshot a result came from. Read with Version.
	version atomic.Uint64

	// wal is the write-ahead log, nil unless Options.WALDir was set.
	// Mutators append under mu (so LSN order equals apply order) but wait
	// for durability outside it — an fsync never stalls queries.
	wal *wal.Log
	// appliedLSN is the last log record applied to the in-memory state;
	// written under mu.Lock. SaveTo records it in the snapshot so replay
	// can skip what the snapshot contains.
	appliedLSN uint64
}

// Open builds the disk-resident structures for the given road network and
// object collection. vocabSize must be at least one greater than the
// largest TermID used by the collection. Invalid Options are rejected with
// an error matching ErrBadOptions.
//
// With Options.WALDir set, any existing log there is replayed over the
// built state (so a database that crashed before its first SaveTo
// recovers by opening the same graph and collection again); an
// untrustworthy log fails with an error matching ErrBadWAL.
func Open(g *Graph, objects *Collection, vocabSize int, opts Options) (*DB, error) {
	return openDB(g, objects, vocabSize, opts, 0, "")
}

// openDB is Open plus the write-ahead-log linkage (walFrom is the LSN the
// opened state already includes — a snapshot's recorded LSN, or zero) and
// the snapshot-restore linkage (oraclePath is a persisted oracle file to
// load instead of rebuilding, or empty).
func openDB(g *Graph, objects *Collection, vocabSize int, opts Options, walFrom uint64, oraclePath string) (*DB, error) {
	if g == nil || objects == nil {
		return nil, fmt.Errorf("%w: nil graph or collection", ErrBadOptions)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Index == "" {
		opts.Index = IndexSIFP
	}
	hOpts := harness.Options{
		BufferFraction:   opts.BufferFraction,
		IOLatency:        opts.IOLatency,
		SIFPCuts:         opts.PartitionCuts,
		DiskDir:          opts.DiskDir,
		SelectivityOrder: opts.SelectivityOrder,
		Checksums:        opts.Checksums,
		Oracle:           opts.Oracle,
		OracleLandmarks:  opts.Landmarks,
		OracleSeed:       opts.OracleSeed,
		OracleFile:       oraclePath,
	}
	if opts.QueryLog != nil {
		hOpts.SIFPLog = sig.NewRealLog(opts.QueryLog)
	}
	ds := &dataset.Dataset{Name: "user", Graph: g, Objects: objects, VocabSize: vocabSize}
	sys, err := harness.Build(ds, []harness.IndexKind{opts.Index}, hOpts)
	if err != nil {
		return nil, err
	}
	db := &DB{sys: sys, kind: opts.Index}
	db.roots.Store(db.initialRoots(walFrom))
	if opts.WALDir != "" {
		if err := db.attachWAL(opts, walFrom); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// initialRoots captures the freshly built index state as version zero (or
// walFrom, when the built state already includes a snapshot's mutations).
func (db *DB) initialRoots(walFrom uint64) *dbRoots {
	r := &dbRoots{lsn: walFrom, live: db.sys.DS.Objects.Live()}
	switch db.kind {
	case IndexSIF:
		inv := db.sys.SIF.Index().Roots()
		sr := db.sys.SIF.Roots()
		r.inv, r.sif = &inv, &sr
	case IndexSIFP:
		inv := db.sys.SIFP.Index().Roots()
		sr := db.sys.SIFP.Roots()
		r.inv, r.sif = &inv, &sr
	case IndexIF:
		inv := db.sys.Inv.Roots()
		r.inv = &inv
	}
	return r
}

// attachWAL opens the log, replays the records past walFrom over the
// database, and leaves the log attached for Insert/Remove to append to.
func (db *DB) attachWAL(opts Options, walFrom uint64) error {
	l, records, err := wal.Open(opts.WALDir, walFrom, wal.Options{
		SyncEvery:    opts.WALSyncEvery,
		SyncInterval: opts.WALSyncInterval,
		Strict:       opts.WALStrictSync,
		Metrics:      db.sys.Metrics,
	})
	if err != nil {
		return fmt.Errorf("dsks: opening wal: %w", err)
	}
	db.wal = l
	db.appliedLSN = walFrom
	for _, r := range records {
		if err := db.applyRecord(r); err != nil {
			l.Close()
			return err
		}
	}
	return nil
}

// applyRecord replays one log record over the in-memory state. Replay
// re-validates everything the live mutation validated and additionally
// checks that inserts reassign exactly the object ID the log recorded —
// any divergence means the log does not belong to the opened state, and
// fails with an error matching ErrBadWAL.
func (db *DB) applyRecord(r wal.Record) error {
	switch r.Type {
	case wal.RecInsert:
		pos := Position{Edge: EdgeID(r.Edge), Offset: r.Offset}
		terms := make([]TermID, len(r.Terms))
		for i, t := range r.Terms {
			terms[i] = TermID(t)
		}
		if err := db.checkInsert(pos, terms); err != nil {
			return fmt.Errorf("%w: replaying insert at LSN %d: %w", ErrBadWAL, r.LSN, err)
		}
		id, err := db.applyInsertAt(r.LSN, db.sys.DS.Graph.Clamp(pos), terms)
		if err != nil {
			return fmt.Errorf("dsks: replaying insert at LSN %d: %w", r.LSN, err)
		}
		if id != ObjectID(r.ID) {
			return fmt.Errorf("%w: replaying LSN %d assigned object %d where the log recorded %d",
				ErrBadWAL, r.LSN, id, r.ID)
		}
	case wal.RecRemove:
		id := ObjectID(r.ID)
		if err := db.checkRemove(id); err != nil {
			return fmt.Errorf("%w: replaying remove at LSN %d: %w", ErrBadWAL, r.LSN, err)
		}
		if err := db.applyRemoveAt(r.LSN, id); err != nil {
			return fmt.Errorf("dsks: replaying remove at LSN %d: %w", r.LSN, err)
		}
	default:
		return fmt.Errorf("%w: record type %d at LSN %d", ErrBadWAL, r.Type, r.LSN)
	}
	db.appliedLSN = r.LSN
	return nil
}

// Close releases the database's durability resources: the write-ahead
// log is drained through a final fsync and closed (a poisoned log
// returns its sticky error). Queries remain servable afterwards, but
// mutations fail with an error matching ErrWALClosed. Databases opened
// without Options.WALDir have nothing to release; Close is then a no-op.
func (db *DB) Close() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Close()
}

// Metrics returns the database's metrics registry. Queries record into it
// automatically; Reset zeroes the aggregates.
func (db *DB) Metrics() *MetricsRegistry { return db.sys.Metrics }

// DistanceOracle is the read interface of the database's landmark
// distance oracle (see Options.Oracle and docs/DISTANCE.md).
type DistanceOracle = core.LandmarkOracle

// DistanceOracle returns the database's landmark oracle, or nil when the
// database runs without one. The oracle depends only on the (immutable)
// road network, so the returned handle stays valid across mutations; the
// shard router attaches it to its cross-shard merge engine.
func (db *DB) DistanceOracle() DistanceOracle {
	if db.sys.Oracle == nil {
		return nil
	}
	return db.sys.Oracle
}

// Snapshot captures the metrics registry: per-kind query counts, latency
// quantiles (p50/p95/p99), work counters, and buffer-pool hit rates.
func (db *DB) Snapshot() MetricsSnapshot { return db.sys.Metrics.Snapshot() }

// SetTraceHook installs (or, with nil, removes) a hook observing each
// query's stage timings. The hook runs synchronously on the query
// goroutine, so it must be fast, and it is called concurrently if queries
// are.
func (db *DB) SetTraceHook(h TraceHook) { db.sys.SetTraceHook(h) }

// Result is a query outcome with its cost metrics. Every query family
// fills the shared fields (Elapsed, DiskReads, Stats, Trace); the payload
// fields depend on the method: boolean, kNN and diversified searches fill
// Candidates (and F for diversified), ranked searches fill Ranked, and
// collective searches fill Collective.
type Result struct {
	// Candidates are the qualifying objects in non-decreasing network
	// distance (boolean queries) or the chosen diversified set (in pair
	// order, diversified queries).
	Candidates []Candidate
	// F is the diversification objective value f(S); zero for boolean
	// queries.
	F float64
	// Ranked are the scored objects of a ranked query, best first.
	Ranked []RankedResult
	// Collective is the keyword-covering group of a collective query.
	Collective *CollectiveResult
	// Elapsed is the query's wall-clock time.
	Elapsed time.Duration
	// DiskReads counts buffer-pool misses during the query.
	DiskReads int64
	// Stats are the detailed cost counters.
	Stats SearchStats
	// Trace is the query's stage-timing breakdown.
	Trace Trace
}

// checkQuery validates the parts of a query the index structures index
// into without bounds checks of their own: the query position's edge must
// exist in the road network and every term must fall inside the
// vocabulary. Violations fail with errors matching ErrUnknownEdge and
// ErrTermOutOfRange — the same classification Insert gives them.
func (db *DB) checkQuery(pos Position, terms []TermID) error {
	if pos.Edge < 0 || int(pos.Edge) >= db.sys.DS.Graph.NumEdges() {
		return fmt.Errorf("dsks: query on edge %d: %w", pos.Edge, ErrUnknownEdge)
	}
	for _, t := range terms {
		if t < 0 || int(t) >= db.sys.DS.VocabSize {
			return fmt.Errorf("dsks: term %d with vocabulary of %d: %w", t, db.sys.DS.VocabSize, ErrTermOutOfRange)
		}
	}
	return nil
}

// Search runs a boolean spatial keyword query: all objects within
// q.DeltaMax network distance containing every keyword of q.Terms,
// in non-decreasing distance order.
//
// Deprecated-style convenience: prefer View (for multi-query consistency)
// or SearchCtx (for cancellation); this delegates to SearchCtx with
// context.Background().
func (db *DB) Search(q SKQuery) (Result, error) {
	return db.SearchCtx(context.Background(), q)
}

// SearchCtx is Search honoring the context's cancellation and deadline.
// It opens a view for the single call; use View directly to run several
// queries against one consistent snapshot.
func (db *DB) SearchCtx(ctx context.Context, q SKQuery) (Result, error) {
	v, err := db.View(ctx)
	if err != nil {
		return Result{}, err
	}
	defer v.Close()
	return v.Search(ctx, q)
}

// SearchDiversified runs a diversified spatial keyword query with the
// incremental COM algorithm (Algorithm 6 of the paper).
//
// Deprecated-style convenience: prefer View or SearchDiversifiedCtx; this
// delegates with context.Background().
func (db *DB) SearchDiversified(q DivQuery) (Result, error) {
	return db.SearchDiversifiedWithCtx(context.Background(), AlgoCOM, q)
}

// SearchDiversifiedCtx is SearchDiversified honoring the context's
// cancellation and deadline.
func (db *DB) SearchDiversifiedCtx(ctx context.Context, q DivQuery) (Result, error) {
	return db.SearchDiversifiedWithCtx(ctx, AlgoCOM, q)
}

// SearchDiversifiedWith runs a diversified query with an explicit
// algorithm choice (COM or the SEQ baseline).
//
// Deprecated-style convenience: prefer View or SearchDiversifiedWithCtx;
// this delegates with context.Background().
func (db *DB) SearchDiversifiedWith(algo Algo, q DivQuery) (Result, error) {
	return db.SearchDiversifiedWithCtx(context.Background(), algo, q)
}

// SearchDiversifiedWithCtx is SearchDiversifiedWith honoring the context's
// cancellation and deadline. It opens a view for the single call.
func (db *DB) SearchDiversifiedWithCtx(ctx context.Context, algo Algo, q DivQuery) (Result, error) {
	v, err := db.View(ctx)
	if err != nil {
		return Result{}, err
	}
	defer v.Close()
	return v.SearchDiversifiedWith(ctx, algo, q)
}

// KNNQuery is a k-nearest-neighbor boolean spatial keyword query: the K
// closest objects containing every keyword, with an optional distance cap.
type KNNQuery = core.KNNQuery

// SearchKNN returns the k nearest objects containing every query keyword,
// in non-decreasing network distance. The expansion stops as soon as the
// k-th match is emitted.
//
// Deprecated-style convenience: prefer View or SearchKNNCtx; this
// delegates with context.Background().
func (db *DB) SearchKNN(q KNNQuery) (Result, error) {
	return db.SearchKNNCtx(context.Background(), q)
}

// SearchKNNCtx is SearchKNN honoring the context's cancellation and
// deadline. It opens a view for the single call.
func (db *DB) SearchKNNCtx(ctx context.Context, q KNNQuery) (Result, error) {
	v, err := db.View(ctx)
	if err != nil {
		return Result{}, err
	}
	defer v.Close()
	return v.SearchKNN(ctx, q)
}

// RankedQuery is a top-k ranked spatial keyword query: objects scored by
// α·spatial-proximity + (1−α)·keyword-overlap, OR semantics.
type RankedQuery = core.RankedQuery

// RankedResult is one scored object of a ranked query.
type RankedResult = core.RankedResult

// SearchRanked runs the top-k ranked spatial keyword query and returns the
// scored objects in Result.Ranked. It requires an index with OR-semantics
// support (IF, SIF or SIF-P); others fail with an error matching
// ErrUnsupportedIndex.
//
// Deprecated-style convenience: prefer View or SearchRankedCtx; this
// delegates with context.Background().
func (db *DB) SearchRanked(q RankedQuery) (Result, error) {
	return db.SearchRankedCtx(context.Background(), q)
}

// SearchRankedCtx is SearchRanked honoring the context's cancellation and
// deadline. It opens a view for the single call.
func (db *DB) SearchRankedCtx(ctx context.Context, q RankedQuery) (Result, error) {
	v, err := db.View(ctx)
	if err != nil {
		return Result{}, err
	}
	defer v.Close()
	return v.SearchRanked(ctx, q)
}

// errUnsupportedQuery reports a query family the index kind cannot serve.
func errUnsupportedQuery(family string, kind IndexKind) error {
	return fmt.Errorf("dsks: %s query on index %s: %w", family, kind, ErrUnsupportedIndex)
}

// CollectiveQuery asks for a *group* of objects that together cover every
// query keyword at minimal total network distance (the collective spatial
// keyword search of Cao et al., which the paper's related work discusses).
type CollectiveQuery = core.CollectiveQuery

// CollectiveResult is a chosen keyword-covering group.
type CollectiveResult = core.CollectiveResult

// SearchCollective finds a keyword-covering group with the ln|T|-
// approximate weighted set-cover greedy and returns it in
// Result.Collective. It requires an index with OR-semantics support (IF,
// SIF or SIF-P); others fail with an error matching ErrUnsupportedIndex.
//
// Deprecated-style convenience: prefer View or SearchCollectiveCtx; this
// delegates with context.Background().
func (db *DB) SearchCollective(q CollectiveQuery) (Result, error) {
	return db.SearchCollectiveCtx(context.Background(), q)
}

// SearchCollectiveCtx is SearchCollective honoring the context's
// cancellation and deadline. It opens a view for the single call.
func (db *DB) SearchCollectiveCtx(ctx context.Context, q CollectiveQuery) (Result, error) {
	v, err := db.View(ctx)
	if err != nil {
		return Result{}, err
	}
	defer v.Close()
	return v.SearchCollective(ctx, q)
}

// Stream is an incremental boolean search: candidates are pulled one at a
// time in non-decreasing network distance, so a consumer can stop early
// (the access pattern Algorithm 6 exploits internally). A stream created
// with StreamCtx stops with an error matching ErrCanceled or
// ErrDeadlineExceeded once its context ends.
//
// A stream reads a pinned snapshot: one obtained from DB.Stream/StreamCtx
// owns a private View released when the stream finishes, and one obtained
// from View.Stream reads that view (which must stay open for the stream's
// lifetime). Either way, concurrent Insert/Remove calls neither block the
// stream nor change what it returns.
type Stream struct {
	search *core.SKSearch
	sys    *harness.System
	kind   IndexKind
	start  time.Time
	before int64
	done   bool
	// view, when non-nil, is owned by the stream and closed on finish.
	view *View
}

// Stream starts an incremental boolean search.
//
// Deprecated-style convenience: prefer View.Stream or StreamCtx; this
// delegates with context.Background().
func (db *DB) Stream(q SKQuery) (*Stream, error) {
	return db.StreamCtx(context.Background(), q)
}

// StreamCtx is Stream honoring the context's cancellation and deadline:
// the context is checked on every Next. The stream owns a private view of
// the current version and releases it when exhausted, stopped, or failed.
func (db *DB) StreamCtx(ctx context.Context, q SKQuery) (*Stream, error) {
	v, err := db.View(ctx)
	if err != nil {
		return nil, err
	}
	s, err := v.stream(ctx, q, true)
	if err != nil {
		v.Close()
		return nil, err
	}
	return s, nil
}

// Next returns the next candidate; ok is false when the stream is done.
func (s *Stream) Next() (c Candidate, ok bool, err error) {
	c, ok, err = s.search.Next()
	if !ok || err != nil {
		s.finish(err)
	}
	return c, ok, err
}

// Stop abandons the stream early.
func (s *Stream) Stop() {
	s.search.Stop()
	s.finish(nil)
}

// Stats returns the traversal counters so far.
func (s *Stream) Stats() SearchStats { return s.search.Stats() }

// Trace returns the stream's stage timings so far.
func (s *Stream) Trace() Trace { return s.search.Trace() }

// finish records the stream's metrics sample exactly once and releases
// the stream-owned view, if any.
func (s *Stream) finish(err error) {
	if s.done {
		return
	}
	s.done = true
	if s.view != nil {
		s.view.Close()
	}
	stats := s.search.Stats()
	s.sys.Metrics.Record(KindStream, metrics.Sample{
		Elapsed:       time.Since(s.start),
		Err:           err != nil,
		Canceled:      errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded),
		NodesPopped:   stats.NodesPopped,
		EdgesVisited:  stats.EdgesVisited,
		Candidates:    stats.Candidates,
		Pruned:        stats.Pruned,
		PairDistCalcs: stats.PairDistCalcs,
		DiskReads:     s.sys.DiskReads(s.kind) - s.before,
	})
}

// Insert adds a spatio-textual object to an open database: the object
// joins the collection, its postings are appended to the inverted file and
// its keywords' signature bits are set, so subsequent queries see it.
// Supported for the IF, SIF and SIF-P indexes (IR is bulk-loaded only;
// it fails with an error matching ErrUnsupportedIndex). Terms must be
// below the vocabulary size the database was opened with.
//
// Insert builds the next database version copy-on-write — private copies
// of every touched index page plus cloned root structures — and publishes
// it with one atomic swap stamped with the commit LSN, so concurrent
// queries are never blocked and never observe a half-applied mutation:
// views opened before the swap keep reading the old version, views opened
// after it see the new one. Concurrent Insert/Remove calls serialize on
// the writer latch. A successful insert bumps Version.
//
// With a write-ahead log attached (Options.WALDir), the insert is logged
// before it is applied and acknowledged only once its record is fsynced;
// the durability wait happens after the latch is released, so an fsync
// never stalls anything. A mutation that errors mid-flight after logging
// is indeterminate: it was never acknowledged and never published, but
// the log record exists, so a restart replays it.
func (db *DB) Insert(pos Position, terms []TermID) (ObjectID, error) {
	id, lsn, err := db.InsertAsync(pos, terms)
	if err != nil {
		return 0, err
	}
	if werr := db.WaitDurable(lsn); werr != nil {
		return id, fmt.Errorf("dsks: insert of object %d applied but not durable: %w", id, werr)
	}
	return id, nil
}

// InsertAsync is Insert without the durability wait: it appends the WAL
// record, applies and publishes the mutation, and returns the assigned
// object ID plus the commit LSN immediately — before the record is
// fsynced. Callers that need the Insert acknowledgment contract follow
// up with WaitDurable(lsn) once they have released any latches of their
// own; this is the same append-under-latch, sync-outside split the DB
// itself uses internally, exposed for layers (like a shard router) that
// must record bookkeeping against the assigned ID before blocking.
func (db *DB) InsertAsync(pos Position, terms []TermID) (ObjectID, uint64, error) {
	db.mu.Lock()
	if err := db.checkInsert(pos, terms); err != nil {
		db.mu.Unlock()
		return 0, 0, err
	}
	pos = db.sys.DS.Graph.Clamp(pos)
	lsn := db.roots.Load().lsn + 1
	if db.wal != nil {
		rec := wal.Record{
			Type: wal.RecInsert,
			// The ID the collection will assign, recorded so replay can
			// verify it reassigns the same one.
			ID:     int32(db.sys.DS.Objects.Len()),
			Edge:   int32(pos.Edge),
			Offset: pos.Offset,
			Terms:  make([]int32, len(terms)),
		}
		for i, t := range terms {
			rec.Terms[i] = int32(t)
		}
		var err error
		if lsn, err = db.wal.Append(rec); err != nil {
			db.mu.Unlock()
			return 0, 0, fmt.Errorf("dsks: logging insert: %w", err)
		}
		// The record exists whether or not the apply below succeeds, so
		// snapshots must claim it — replaying it over a state that
		// already allocated the ID would misnumber everything after it.
		db.appliedLSN = lsn
	}
	id, err := db.applyInsertAt(lsn, pos, terms)
	db.mu.Unlock()
	if err != nil {
		return 0, 0, err
	}
	db.reclaim()
	return id, lsn, nil
}

// WaitDurable blocks until the WAL record at lsn is fsynced (group
// commit may batch it with neighbors). Without an attached WAL every
// mutation is as durable as it will ever get, and WaitDurable returns
// nil immediately. It must not be called while holding a latch — it
// waits on a disk sync.
func (db *DB) WaitDurable(lsn uint64) error {
	if db.wal == nil {
		return nil
	}
	return db.wal.WaitDurable(lsn)
}

// WALRecord is one logged mutation, re-exported for replication: a
// primary's log yields WALRecords through TailWAL and a follower
// applies them with ApplyShipped.
type WALRecord = wal.Record

// WALTailer follows a write-ahead log record by record across segment
// rotations; see TailWAL.
type WALTailer = wal.Tailer

// TailWAL returns a tailer over the database's attached write-ahead log
// that yields every durable record past fromLSN in order. The tailer
// reads the segment files directly and never blocks the writer; it
// yields only fsynced records, so a follower can never apply a mutation
// a primary crash could take back. Databases without an attached log
// have nothing to ship and fail with an error matching ErrWALClosed.
func (db *DB) TailWAL(fromLSN uint64) (*WALTailer, error) {
	if db.wal == nil {
		return nil, fmt.Errorf("dsks: tailing a database without a write-ahead log: %w", ErrWALClosed)
	}
	return db.wal.TailFrom(fromLSN), nil
}

// ApplyShipped applies one replicated log record to a follower
// database. It is the apply half of WAL shipping: a read replica tails
// its primary's log (TailWAL) and feeds each record here, converging on
// the primary's state commit by commit. Every applied record publishes
// a new version exactly like a local mutation — concurrent views are
// never blocked and stay pinned at the version they opened.
//
// The follower must not have a write-ahead log of its own (two logs
// would fight over the LSN clock), and records must arrive in LSN order
// with no gaps. Replay re-validates everything the primary validated
// and verifies inserts reassign exactly the object ID the log recorded;
// any divergence fails with an error matching ErrBadWAL and leaves the
// follower at its previous version.
func (db *DB) ApplyShipped(r WALRecord) error {
	db.mu.Lock()
	if db.wal != nil {
		db.mu.Unlock()
		return fmt.Errorf("%w: shipped record applied to a database with its own log", ErrBadWAL)
	}
	if want := db.roots.Load().lsn + 1; r.LSN != want {
		db.mu.Unlock()
		return fmt.Errorf("%w: shipped record at LSN %d where %d was expected", ErrBadWAL, r.LSN, want)
	}
	err := db.applyRecord(r)
	db.mu.Unlock()
	if err != nil {
		return err
	}
	db.reclaim()
	return nil
}

// checkInsert validates an insert without changing anything; callers
// hold the write latch.
func (db *DB) checkInsert(pos Position, terms []TermID) error {
	g := db.sys.DS.Graph
	if pos.Edge < 0 || int(pos.Edge) >= g.NumEdges() {
		return fmt.Errorf("dsks: insert on edge %d: %w", pos.Edge, ErrUnknownEdge)
	}
	for _, t := range terms {
		if t < 0 || int(t) >= db.sys.DS.VocabSize {
			return fmt.Errorf("dsks: term %d with vocabulary of %d: %w", t, db.sys.DS.VocabSize, ErrTermOutOfRange)
		}
	}
	switch db.kind {
	case IndexSIF, IndexSIFP, IndexIF:
		return nil
	default:
		return fmt.Errorf("dsks: insert into index %s: %w", db.kind, ErrUnsupportedIndex)
	}
}

// applyInsertAt performs a validated insert copy-on-write at commit LSN
// lsn: the index mutation runs against a private page batch and cloned
// roots with the ID the collection will assign; only after it succeeds is
// the collection extended and the new version published. Callers hold the
// write latch. pos must already be clamped.
func (db *DB) applyInsertAt(lsn uint64, pos Position, terms []TermID) (ObjectID, error) {
	cur := db.roots.Load()
	col := db.sys.DS.Objects
	// The ID the collection will assign below; indexing it before col.Add
	// means a failed index mutation leaves the collection untouched.
	id := ObjectID(col.Len())
	// Collection.Add normalizes terms; the index must see the same set.
	normTerms := obj.NormalizeTerms(append([]TermID(nil), terms...))

	pool := db.sys.ObjPool(db.kind)
	batch := pool.NewBatch(lsn)
	next := &dbRoots{lsn: lsn, live: cur.live + 1, inv: cur.inv, sif: cur.sif}
	var err error
	switch db.kind {
	case IndexSIF, IndexSIFP:
		s := db.sys.SIF
		if db.kind == IndexSIFP {
			s = db.sys.SIFP
		}
		inv, sr := *cur.inv, *cur.sif
		if err = s.InsertObjectAt(batch, &inv, &sr, id, pos.Edge, pos.Offset, normTerms); err == nil {
			next.inv, next.sif = &inv, &sr
		}
	case IndexIF:
		coder := invindex.GraphZCoder{G: db.sys.DS.Graph}
		inv := *cur.inv
		if err = db.sys.Inv.InsertObjectAt(batch, &inv, coder.EdgeZCode(pos.Edge), id, pos.Edge, pos.Offset, normTerms); err == nil {
			next.inv = &inv
		}
	}
	if err != nil {
		// The batch is dropped unpublished: no reader ever saw anything.
		return 0, err
	}
	got := col.Add(pos, append([]TermID(nil), terms...))
	if got != id {
		return 0, fmt.Errorf("dsks: insert assigned object %d where the index recorded %d", got, id)
	}
	db.publish(batch, next)
	return id, nil
}

// publish installs a mutation's pages and roots as the current version:
// pages first (invisible — no reader is pinned at the new LSN yet), then
// the root swap that makes the LSN reachable. Callers hold the write
// latch.
func (db *DB) publish(batch *storage.WriteBatch, next *dbRoots) {
	db.sys.ObjPool(db.kind).Publish(batch)
	db.roots.Store(next)
	db.version.Add(1)
}

// reclaim folds page versions every live view has moved past back into
// the base file. Fold errors are ignored here: the overlay stays
// authoritative and the next reclaim retries.
func (db *DB) reclaim() {
	pool := db.sys.ObjPool(db.kind)
	if pool == nil {
		return
	}
	db.foldMu.Lock()
	defer db.foldMu.Unlock()
	h := db.epochs.FoldHorizon(db.roots.Load().lsn)
	_ = pool.FoldTo(h)
}

// Remove deletes an object from an open database: it is tombstoned in the
// collection and its postings leave the inverted file, so queries no
// longer see it. Signature bits are not cleared (sound: a stale bit can
// only cost a false hit). Supported for IF, SIF and SIF-P.
//
// Remove follows Insert's copy-on-write protocol: the next version is
// built privately and published atomically, so concurrent queries are
// never blocked and views opened earlier still see the object. A
// successful remove bumps Version. With a write-ahead log attached it is
// logged before applied and acknowledged once fsynced.
func (db *DB) Remove(id ObjectID) error {
	db.mu.Lock()
	if err := db.checkRemove(id); err != nil {
		db.mu.Unlock()
		return err
	}
	lsn := db.roots.Load().lsn + 1
	if db.wal != nil {
		var err error
		if lsn, err = db.wal.Append(wal.Record{Type: wal.RecRemove, ID: int32(id)}); err != nil {
			db.mu.Unlock()
			return fmt.Errorf("dsks: logging remove: %w", err)
		}
		db.appliedLSN = lsn
	}
	err := db.applyRemoveAt(lsn, id)
	db.mu.Unlock()
	if err != nil {
		return err
	}
	db.reclaim()
	if db.wal != nil {
		if werr := db.wal.WaitDurable(lsn); werr != nil {
			return fmt.Errorf("dsks: remove of object %d applied but not durable: %w", id, werr)
		}
	}
	return nil
}

// checkRemove validates a remove without changing anything; callers hold
// the write latch.
func (db *DB) checkRemove(id ObjectID) error {
	col := db.sys.DS.Objects
	if id < 0 || int(id) >= col.Len() || col.Removed(id) {
		return fmt.Errorf("dsks: remove object %d: %w", id, ErrUnknownObject)
	}
	switch db.kind {
	case IndexSIF, IndexSIFP, IndexIF:
		return nil
	default:
		return fmt.Errorf("dsks: remove from index %s: %w", db.kind, ErrUnsupportedIndex)
	}
}

// applyRemoveAt performs a validated remove copy-on-write at commit LSN
// lsn (see applyInsertAt); callers hold the write latch. Signature roots
// are unchanged by removes (bits stay set), so the new version shares
// them.
func (db *DB) applyRemoveAt(lsn uint64, id ObjectID) error {
	cur := db.roots.Load()
	col := db.sys.DS.Objects
	o := col.Get(id)

	pool := db.sys.ObjPool(db.kind)
	batch := pool.NewBatch(lsn)
	next := &dbRoots{lsn: lsn, live: cur.live - 1, inv: cur.inv, sif: cur.sif}
	var err error
	switch db.kind {
	case IndexSIF, IndexSIFP:
		s := db.sys.SIF
		if db.kind == IndexSIFP {
			s = db.sys.SIFP
		}
		inv := *cur.inv
		if err = s.RemoveObjectAt(batch, &inv, id, o.Pos.Edge, o.Terms); err == nil {
			next.inv = &inv
		}
	case IndexIF:
		coder := invindex.GraphZCoder{G: db.sys.DS.Graph}
		inv := *cur.inv
		if err = db.sys.Inv.RemoveObjectAt(batch, &inv, coder.EdgeZCode(o.Pos.Edge), id, o.Terms); err == nil {
			next.inv = &inv
		}
	}
	if err != nil {
		return err
	}
	if err := col.Remove(id); err != nil {
		return err
	}
	db.publish(batch, next)
	return nil
}

// Version returns the database's mutation counter: the number of
// successful Insert and Remove calls since Open (replayed log records
// count too). Prefer LSN (or View.LSN), which names the exact published
// version a reader observes.
func (db *DB) Version() uint64 { return db.version.Load() }

// Graph exposes the road network the database was opened with. The
// graph is immutable once frozen; callers (the shard router replicates
// it across shard databases) must not modify it.
func (db *DB) Graph() *Graph { return db.sys.DS.Graph }

// ObjectCount is the total number of object IDs the database has ever
// allocated, tombstones included (compare LiveObjects). IDs below it are
// addressable by Object.
func (db *DB) ObjectCount() int { return db.sys.DS.Objects.Len() }

// Object reports an allocated object's position and terms, and whether
// it is still live; ok is false for IDs that were never allocated. The
// shard router uses it to rebuild its ID maps after a WAL replay moved a
// shard past the state the router last saw.
func (db *DB) Object(id ObjectID) (pos Position, terms []TermID, live, ok bool) {
	col := db.sys.DS.Objects
	if id < 0 || int(id) >= col.Len() {
		return Position{}, nil, false, false
	}
	o := col.Get(id)
	return o.Pos, append([]TermID(nil), o.Terms...), !col.Removed(id), true
}

// LSN returns the commit LSN of the current published version: the WAL
// LSN of the last applied mutation (databases without a WAL count
// mutations on the same clock). A View opened now is pinned at this LSN
// or a later one.
func (db *DB) LSN() uint64 { return db.roots.Load().lsn }

// LiveObjects returns the number of live (inserted and not removed)
// objects in the current published version (latch-free).
func (db *DB) LiveObjects() int {
	return db.roots.Load().live
}

// DurableLSN reports the write-ahead log's durability horizon: every
// mutation at or below it survives a crash. Zero without a log.
func (db *DB) DurableLSN() uint64 {
	if db.wal == nil {
		return 0
	}
	return db.wal.DurableLSN()
}

// NetworkDistance returns the exact network distance between two
// positions (exposed for inspection and testing; computed in memory).
// Unreachable pairs report +Inf; use NetworkDistanceCtx for an error-
// carrying form.
//
//lint:ignore ctxpair the arities differ: this form folds every error into +Inf
func (db *DB) NetworkDistance(a, b Position) float64 {
	d, err := db.NetworkDistanceCtx(context.Background(), a, b)
	if err != nil {
		return math.Inf(1)
	}
	return d
}

// NetworkDistanceCtx returns the exact network distance between two
// positions, honoring the context and reporting unreachable pairs: a pair
// no chain of road segments connects fails with an error matching
// ErrNoPath, and a done context fails with an error matching ErrCanceled
// or ErrDeadlineExceeded. Positions on edges outside the network fail
// with an error matching ErrUnknownEdge.
func (db *DB) NetworkDistanceCtx(ctx context.Context, a, b Position) (float64, error) {
	if err := core.CtxErr(ctx); err != nil {
		return 0, err
	}
	g := db.sys.DS.Graph
	for _, p := range [2]Position{a, b} {
		if p.Edge < 0 || int(p.Edge) >= g.NumEdges() {
			return 0, fmt.Errorf("dsks: network distance at edge %d: %w", p.Edge, ErrUnknownEdge)
		}
	}
	d := g.NetworkDist(a, b)
	if math.IsInf(d, 1) {
		return 0, fmt.Errorf("dsks: network distance between edges %d and %d: %w", a.Edge, b.Edge, ErrNoPath)
	}
	return d, nil
}

// Route is a least-cost path between two network positions.
type Route = graph.Route

// ShortestRoute returns the least-cost path between two positions — the
// traversed edges in order plus the total cost — for presenting results
// ("how do I get there") rather than just ranking them.
func (db *DB) ShortestRoute(a, b Position) (Route, error) {
	return db.sys.DS.Graph.ShortestRoute(a, b)
}

// IndexSizeBytes returns the on-disk footprint of the object index.
func (db *DB) IndexSizeBytes() int64 { return db.sys.IndexSize[db.kind] }

// BuildTime returns how long the object index construction took.
func (db *DB) BuildTime() time.Duration { return db.sys.BuildTime[db.kind] }

// ResetIO cools the buffer pools and zeroes the disk-access counters.
// It is latch-free: counters are zeroed with atomic swaps and the pools
// drop frames under their own short internal latches, so a reset never
// stalls queries or mutations (concurrent queries may observe partially
// reset counters, which is inherent to any reset during traffic).
func (db *DB) ResetIO() error {
	return db.sys.ResetIO()
}

// SetFaultSpec installs a deterministic fault-injection campaign on every
// page store of the database, replacing any previous campaign. The spec
// grammar is op[:key=value]... — for example
//
//	"read:every=100:max=20:transient"  (every 100th read fails, 20 times, retryable)
//	"read:p=0.01:mode=flip:seed=7"     (1% of reads flip one random bit)
//	"write:every=50:mode=torn"         (every 50th write tears to a 512B prefix)
//
// Campaigns are seeded and deterministic: the same spec over the same
// operation sequence injects the same faults. An invalid spec is rejected
// with an error matching ErrBadOptions and leaves the previous campaign
// in place. Intended for chaos testing and operational fire drills, not
// production serving.
func (db *DB) SetFaultSpec(spec string) error {
	cfg, err := fault.ParseSpec(spec)
	if err != nil {
		return fmt.Errorf("%w: fault spec %q: %v", ErrBadOptions, spec, err)
	}
	in, err := fault.New(cfg)
	if err != nil {
		return fmt.Errorf("%w: fault spec %q: %v", ErrBadOptions, spec, err)
	}
	db.sys.SetInjector(in)
	if db.wal != nil {
		db.wal.SetInjector(in)
	}
	return nil
}

// ClearFaults removes any fault-injection campaign installed with
// SetFaultSpec. Already-corrupted pages are not healed: a page that took
// a bit flip stays corrupt until rewritten (and is detected when read if
// Options.Checksums is enabled).
func (db *DB) ClearFaults() {
	db.sys.SetInjector(nil)
	if db.wal != nil {
		db.wal.SetInjector(nil)
	}
}
