package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsks"
)

// The load driver: replays a synthetic query mix against a running
// dsks-serve and prints throughput, latency percentiles, status counts
// and the server's cache behavior. The mix is derived from the same
// preset/scale/seed the server was booted with, so every query lands on
// real edges and keywords; a bounded set of distinct queries (-distinct)
// makes the result cache observable. The mix may include "insert" and
// "remove" kinds, which POST real mutations: inserts bank their acked
// object IDs in a shared pool, removes draw from it, and -strict
// asserts that each worker observes a strictly increasing commit LSN
// across its own acked mutations.
//
// -bench-mixed FILE switches the driver into the read-under-write
// benchmark: phase A replays the read kinds of the mix with no writers
// (the baseline), phase B replays the identical reads while dedicated
// mutator workers sustain an insert storm. The JSON report written to
// FILE holds both phases' read throughput and latency percentiles, the
// p99 ratio between them (the MVCC views' headline number: reads never
// block on writers, so it should stay near 1), and a per-interval
// trajectory of read throughput and p99 across the mixed phase.

var (
	hammerTarget    *string
	hammerN         *int
	hammerC         *int
	hammerDistinct  *int
	hammerMix       *string
	hammerStrict    *bool
	hammerColdOK    *bool
	hammerWant429   *bool
	hammerTimeout   *time.Duration
	hammerChaos     *bool
	hammerChaosSpec *string
	hammerBench     *string
	hammerBenchMutC *int
	hammerBenchMax  *float64
	hammerReport    *string
	hammerReportLbl *string
	hammerDelta     *float64
)

// hammerFlags registers the load-driver flags.
func hammerFlags(fs *flag.FlagSet) {
	hammerTarget = fs.String("target", "http://127.0.0.1:8080", "server base URL for -hammer")
	hammerN = fs.Int("n", 1000, "hammer: total requests")
	hammerC = fs.Int("c", 8, "hammer: concurrent workers")
	hammerDistinct = fs.Int("distinct", 32, "hammer: distinct queries in the mix (repeats exercise the cache)")
	hammerDelta = fs.Float64("delta", 0, "hammer: δmax per query keyword (0 = dataset default; wider radii stress the pairwise distance engine)")
	hammerMix = fs.String("mix", "search:4,diversified:3,knn:2,ranked:1", "hammer: endpoint mix as kind:weight pairs (kinds include insert and remove)")
	hammerStrict = fs.Bool("strict", false, "hammer: exit non-zero on any 5xx, a 206 partial, or a cold cache")
	hammerColdOK = fs.Bool("allow-cold-cache", false, "hammer: strict runs tolerate zero cache hits (for servers with the cache disabled)")
	hammerWant429 = fs.Bool("expect-429", false, "hammer: exit non-zero unless load shedding (429 + Retry-After) was observed")
	hammerTimeout = fs.Duration("client-timeout", 30*time.Second, "hammer: per-request client timeout")
	hammerChaos = fs.Bool("chaos", false, "hammer: run the chaos campaign (server must be started with -enable-chaos)")
	hammerChaosSpec = fs.String("chaos-spec", "read:every=1", "hammer: fault spec installed during the chaos phase")
	hammerBench = fs.String("bench-mixed", "", "hammer: run the read-under-write benchmark, writing the JSON report to this file")
	hammerBenchMutC = fs.Int("bench-mutators", 2, "bench-mixed: concurrent insert-storm workers during the mixed phase")
	hammerBenchMax = fs.Float64("bench-max-ratio", 0, "bench-mixed: exit non-zero when mixed read p99 exceeds this multiple of the baseline (0 = report only)")
	hammerReport = fs.String("report", "", "hammer: upsert this run's throughput and latency under -report-label in this JSON file")
	hammerReportLbl = fs.String("report-label", "", "hammer: key for the -report entry (e.g. shards=4)")
}

// hammerResult is one request's outcome.
type hammerResult struct {
	status     int
	latency    time.Duration
	cacheHit   bool
	retryAfter bool
	version    uint64 // commit LSN acked with a mutation, 0 otherwise
}

// hammerReq is one entry in the weighted request mix: a GET query, or a
// POST mutation carrying its JSON body.
type hammerReq struct {
	kind string
	url  string
	body []byte // insert body; for "remove" the fallback when no ID is banked
}

// idPool banks the object IDs acked by insert requests so remove
// requests can target objects that actually exist.
type idPool struct {
	mu  sync.Mutex
	ids []int64
}

func (p *idPool) put(id int64) {
	p.mu.Lock()
	p.ids = append(p.ids, id)
	p.mu.Unlock()
}

func (p *idPool) take() (int64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ids) == 0 {
		return 0, false
	}
	id := p.ids[len(p.ids)-1]
	p.ids = p.ids[:len(p.ids)-1]
	return id, true
}

// runHammer drives the load and reports.
func runHammer(preset string, scale int, seed int64) error {
	reqs, err := hammerMixReqs(preset, scale, seed)
	if err != nil {
		return err
	}
	base := strings.TrimRight(*hammerTarget, "/")
	client := &http.Client{Timeout: *hammerTimeout}

	if err := waitHealthy(client, base); err != nil {
		return err
	}

	if *hammerChaos {
		var urls []string
		for _, r := range reqs {
			if r.body == nil {
				urls = append(urls, r.url)
			}
		}
		if len(urls) == 0 {
			return fmt.Errorf("-chaos needs at least one query kind in -mix %q", *hammerMix)
		}
		return runChaos(client, base, urls)
	}

	if *hammerBench != "" {
		return runBenchMixed(client, base, reqs, preset, scale, seed)
	}

	n, c := *hammerN, *hammerC
	if c < 1 {
		c = 1
	}
	results := make([]hammerResult, n)
	pool := &idPool{}
	var next, monoViolations atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker issues sequentially, and every acked mutation
			// publishes a fresh commit LSN, so the LSNs a single worker
			// observes across its own mutations must strictly increase.
			var lastVer uint64
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r := issue(client, base, reqs[i%len(reqs)], pool)
				if r.version > 0 {
					if r.version <= lastVer {
						monoViolations.Add(1)
					}
					lastVer = r.version
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	return report(client, base, results, elapsed, monoViolations.Load())
}

// runChaos drives the fault-injection campaign: warm up, install the
// fault spec through /v1/chaos, assert the server degrades into 503 +
// Retry-After shedding (never corrupt output), heal the spec, and assert
// the half-open probe restores service. Any violated invariant is a
// non-zero exit.
func runChaos(client *http.Client, base string, urls []string) error {
	fmt.Printf("chaos: warmup against %s\n", base)
	warm := urls[0]
	for i := 0; i < 10; i++ {
		status, body, _ := issueBody(client, base+warm)
		if status != http.StatusOK {
			return fmt.Errorf("chaos warmup: query status %d: %s", status, body)
		}
		if !json.Valid(body) {
			return fmt.Errorf("chaos warmup: query returned invalid JSON: %q", body)
		}
	}

	spec := *hammerChaosSpec
	fmt.Printf("chaos: installing fault spec %q\n", spec)
	if err := postChaos(client, base, spec); err != nil {
		return err
	}
	// Make sure the faults are cleared even if an assertion below fails,
	// so a -chaos run never leaves the target server broken.
	defer postChaos(client, base, "")

	// Chaos phase: walk the full mix so most requests miss the result
	// cache and hit faulting storage. Every response must be a storage
	// failure (500), a breaker shed (503 + Retry-After), or an intact
	// 200 that provably touched no storage (a cache hit, or a query
	// reporting zero disk reads) — never a corrupt or truncated body.
	var saw500, saw503, sawRetryAfter, noStorage int
	for i := 0; i < 100 && saw503 < 5; i++ {
		status, body, hdr := issueBody(client, base+urls[i%len(urls)])
		switch status {
		case http.StatusInternalServerError:
			saw500++
		case http.StatusServiceUnavailable:
			saw503++
			if hdr.Get("Retry-After") != "" {
				sawRetryAfter++
			}
		case http.StatusOK:
			var reads struct {
				DiskReads int64 `json:"diskReads"`
			}
			if err := json.Unmarshal(body, &reads); err != nil {
				return fmt.Errorf("chaos: 200 with invalid JSON body %q: %v", body, err)
			}
			if hdr.Get("X-Dsks-Cache") != "hit" && reads.DiskReads != 0 {
				return fmt.Errorf("chaos: uncached 200 with %d disk reads for %s under a %q campaign",
					reads.DiskReads, urls[i%len(urls)], spec)
			}
			noStorage++
		case http.StatusBadRequest, http.StatusNotFound, http.StatusTooManyRequests:
			// Client-class outcomes (malformed mix entries, admission
			// shedding) say nothing about storage; skip them.
		default:
			return fmt.Errorf("chaos: unexpected status %d: %s", status, body)
		}
	}
	fmt.Printf("chaos: degraded phase: %d storage errors, %d shed (Retry-After on %d), %d storage-free 200s\n",
		saw500, saw503, sawRetryAfter, noStorage)
	if saw500 == 0 {
		return fmt.Errorf("chaos: no storage errors observed — is the spec %q reaching the pools?", spec)
	}
	if saw503 == 0 {
		return fmt.Errorf("chaos: circuit breaker never opened (no 503s in %d requests)", saw500+noStorage)
	}
	if sawRetryAfter != saw503 {
		return fmt.Errorf("chaos: %d of %d 503s missing Retry-After", saw503-sawRetryAfter, saw503)
	}

	fmt.Println("chaos: clearing fault spec")
	if err := postChaos(client, base, ""); err != nil {
		return err
	}
	// Recovery must come from storage, not the result cache: only an
	// uncached 200 proves the half-open probe ran and closed the breaker.
	deadline := time.Now().Add(30 * time.Second)
	recovered := false
	for i := 0; time.Now().Before(deadline); i++ {
		status, body, hdr := issueBody(client, base+urls[i%len(urls)])
		if status == http.StatusOK && hdr.Get("X-Dsks-Cache") != "hit" {
			if !json.Valid(body) {
				return fmt.Errorf("chaos: post-recovery query returned invalid JSON: %q", body)
			}
			recovered = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !recovered {
		return fmt.Errorf("chaos: server did not recover within 30s of clearing faults")
	}
	if status, body, _ := issueBody(client, base+"/healthz"); status != http.StatusOK {
		return fmt.Errorf("chaos: healthz after recovery: status %d: %s", status, body)
	}

	var varz struct {
		Health  string `json:"health"`
		Metrics struct {
			Counters map[string]int64 `json:"Counters"`
		} `json:"metrics"`
	}
	if status, body, _ := issueBody(client, base+"/varz"); status == http.StatusOK {
		if err := json.Unmarshal(body, &varz); err == nil {
			fmt.Printf("chaos: recovered (health %q); breaker opened %d times, shed %d requests\n",
				varz.Health,
				varz.Metrics.Counters["server_breaker_opened_total"],
				varz.Metrics.Counters["server_breaker_shed_total"])
			if varz.Metrics.Counters["server_breaker_opened_total"] == 0 {
				return fmt.Errorf("chaos: server_breaker_opened_total stayed zero")
			}
		}
	}
	fmt.Println("chaos: PASS — shed under faults, recovered after heal, no corrupt responses")
	return nil
}

// postChaos installs (or, with an empty spec, clears) the server's fault
// injection through POST /v1/chaos.
func postChaos(client *http.Client, base, spec string) error {
	payload, _ := json.Marshal(map[string]string{"spec": spec})
	resp, err := client.Post(base+"/v1/chaos", "application/json", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("chaos: POST /v1/chaos: %w", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("chaos: /v1/chaos not found — start the server with -enable-chaos")
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("chaos: POST /v1/chaos spec %q: status %d: %s", spec, resp.StatusCode, body)
	}
	return nil
}

// issueBody performs one GET and returns status, body and headers.
func issueBody(client *http.Client, url string) (int, []byte, http.Header) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, []byte(err.Error()), http.Header{}
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body, resp.Header
}

// issue performs one request from the mix. Queries are GETs; insert and
// remove are POSTs whose acked version is recorded for the monotonicity
// check, with acked insert IDs banked in the pool for later removes.
func issue(client *http.Client, base string, req hammerReq, pool *idPool) hammerResult {
	body := req.body
	if req.kind == "remove" {
		if id, ok := pool.take(); ok {
			body, _ = json.Marshal(map[string]int64{"id": id})
		} else {
			// Nothing banked yet: fall back to the insert this entry
			// carries, so the pool fills instead of spinning on 404s.
			req.kind, req.url = "insert", "/v1/insert"
		}
	}

	t0 := time.Now()
	var resp *http.Response
	var err error
	if body != nil {
		resp, err = client.Post(base+req.url, "application/json", bytes.NewReader(body))
	} else {
		resp, err = client.Get(base + req.url)
	}
	if err != nil {
		return hammerResult{status: 0, latency: time.Since(t0)}
	}
	defer resp.Body.Close()

	out := hammerResult{
		status:     resp.StatusCode,
		latency:    time.Since(t0),
		cacheHit:   resp.Header.Get("X-Dsks-Cache") == "hit",
		retryAfter: resp.Header.Get("Retry-After") != "",
	}
	if body != nil && resp.StatusCode == http.StatusOK {
		var ack struct {
			ID      *int64 `json:"id"`
			LSN     uint64 `json:"lsn"`
			Version uint64 `json:"version"`
		}
		if json.NewDecoder(resp.Body).Decode(&ack) == nil {
			// Prefer the commit LSN; fall back to the legacy mutation
			// counter when hammering an older server.
			out.version = ack.LSN
			if out.version == 0 {
				out.version = ack.Version
			}
			if req.kind == "insert" && ack.ID != nil {
				pool.put(*ack.ID)
			}
		}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return out
}

// waitHealthy polls /healthz until the server answers (or ~5s pass).
func waitHealthy(client *http.Client, base string) error {
	var last error
	for i := 0; i < 50; i++ {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("healthz: status %d", resp.StatusCode)
		} else {
			last = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("server at %s never became healthy: %w", base, last)
}

// hammerMixReqs builds the weighted request mix over the preset's
// workload: query URLs for the read kinds, pre-marshaled POST bodies for
// insert and remove.
func hammerMixReqs(preset string, scale int, seed int64) ([]hammerReq, error) {
	ds, err := dsks.GeneratePreset(dsks.Preset(preset), scale, seed)
	if err != nil {
		return nil, err
	}
	distinct := *hammerDistinct
	if distinct < 1 {
		distinct = 1
	}
	ws, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: distinct, Keywords: 2, Seed: seed + 1,
		DeltaMaxPerKeyword: *hammerDelta,
	})
	if err != nil {
		return nil, err
	}

	// Mutations reuse the workload's positions and keywords so inserts
	// land on real edges with in-vocabulary terms.
	insertBody := func(q dsks.WorkloadQuery) []byte {
		b, _ := json.Marshal(map[string]any{
			"edge": q.Pos.Edge, "offset": q.Pos.Offset, "terms": q.Terms,
		})
		return b
	}

	builders := map[string]func(q dsks.WorkloadQuery) string{
		"search": func(q dsks.WorkloadQuery) string {
			return fmt.Sprintf("/v1/search?edge=%d&offset=%g&terms=%s&deltaMax=%g",
				q.Pos.Edge, q.Pos.Offset, terms(q.Terms), q.DeltaMax)
		},
		"diversified": func(q dsks.WorkloadQuery) string {
			return fmt.Sprintf("/v1/diversified?edge=%d&offset=%g&terms=%s&deltaMax=%g&k=5&lambda=0.8",
				q.Pos.Edge, q.Pos.Offset, terms(q.Terms), q.DeltaMax)
		},
		"knn": func(q dsks.WorkloadQuery) string {
			// The workload's δmax bounds the expansion: unbounded kNN legs
			// on an edge-disjoint shard must walk far past their few owned
			// objects, and the bound is what the router prunes shards with.
			return fmt.Sprintf("/v1/knn?edge=%d&offset=%g&terms=%s&k=5&maxDist=%g",
				q.Pos.Edge, q.Pos.Offset, terms(q.Terms), q.DeltaMax)
		},
		"ranked": func(q dsks.WorkloadQuery) string {
			return fmt.Sprintf("/v1/ranked?edge=%d&offset=%g&terms=%s&deltaMax=%g&k=5&alpha=0.5",
				q.Pos.Edge, q.Pos.Offset, terms(q.Terms), q.DeltaMax)
		},
		"collective": func(q dsks.WorkloadQuery) string {
			return fmt.Sprintf("/v1/collective?edge=%d&offset=%g&terms=%s&deltaMax=%g",
				q.Pos.Edge, q.Pos.Offset, terms(q.Terms), q.DeltaMax)
		},
	}

	var reqs []hammerReq
	qi := 0
	for _, part := range strings.Split(*hammerMix, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		kind := kv[0]
		build, query := builders[kind]
		if !query && kind != "insert" && kind != "remove" {
			return nil, fmt.Errorf("unknown mix kind %q (want insert, remove, %s)", kind, keys(builders))
		}
		weight := 1
		if len(kv) == 2 {
			if _, err := fmt.Sscanf(kv[1], "%d", &weight); err != nil {
				return nil, fmt.Errorf("mix weight %q: %w", kv[1], err)
			}
		}
		for i := 0; i < weight; i++ {
			q := ws[qi%len(ws)]
			qi++
			switch kind {
			case "insert":
				reqs = append(reqs, hammerReq{kind: kind, url: "/v1/insert", body: insertBody(q)})
			case "remove":
				// The body is the fallback insert issued while the ID pool
				// is still empty; see issue.
				reqs = append(reqs, hammerReq{kind: kind, url: "/v1/remove", body: insertBody(q)})
			default:
				reqs = append(reqs, hammerReq{kind: kind, url: build(q)})
			}
		}
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("empty mix %q", *hammerMix)
	}
	return reqs, nil
}

func terms(ts []dsks.TermID) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprint(t)
	}
	return strings.Join(parts, ",")
}

func keys(m map[string]func(dsks.WorkloadQuery) string) string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

// report prints the run summary and enforces the strict assertions.
func report(client *http.Client, base string, results []hammerResult, elapsed time.Duration, monoViolations int64) error {
	statuses := map[int]int{}
	var lats []time.Duration
	var hits, five, shed429, retryAfter, acked int
	for _, r := range results {
		statuses[r.status]++
		lats = append(lats, r.latency)
		if r.cacheHit {
			hits++
		}
		if r.version > 0 {
			acked++
		}
		if r.status >= 500 {
			five++
		}
		if r.status == http.StatusTooManyRequests {
			shed429++
			if r.retryAfter {
				retryAfter++
			}
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })

	n := len(results)
	fmt.Printf("hammer: %d requests in %v (%.0f req/s)\n", n, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds())
	var codes []int
	for code := range statuses {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		label := fmt.Sprint(code)
		if code == 0 {
			label = "transport-error"
		}
		fmt.Printf("  status %s: %d\n", label, statuses[code])
	}
	fmt.Printf("  latency p50 %v  p95 %v  p99 %v  max %v\n",
		pct(lats, 0.50), pct(lats, 0.95), pct(lats, 0.99), lats[n-1])
	fmt.Printf("  client-observed cache hits: %d/%d\n", hits, n)
	if acked > 0 {
		fmt.Printf("  acked mutations: %d (LSN monotonicity violations: %d)\n", acked, monoViolations)
	}
	if shed429 > 0 {
		fmt.Printf("  shed with 429: %d (Retry-After present on %d)\n", shed429, retryAfter)
	}

	// The server's own view: cache counters, and — when the target is the
	// scatter-gather router — the per-shard request spread and routing
	// pruning rate.
	var varz struct {
		Shards []struct {
			LSN         uint64 `json:"lsn"`
			LiveObjects int    `json:"liveObjects"`
			Requests    int64  `json:"requests"`
			Errors      int64  `json:"errors"`
		} `json:"shards"`
		Metrics struct {
			Counters map[string]int64 `json:"Counters"`
			Queries  map[string]struct {
				PairDistCalcs int64 `json:"PairDistCalcs"`
			} `json:"Queries"`
		} `json:"metrics"`
	}
	if resp, err := client.Get(base + "/varz"); err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(body, &varz); err == nil {
			fmt.Printf("  server cache: %d hits, %d misses, %d stale evictions\n",
				varz.Metrics.Counters["server_cache_hits_total"],
				varz.Metrics.Counters["server_cache_misses_total"],
				varz.Metrics.Counters["server_cache_stale_evictions_total"])
			if c := varz.Metrics.Counters; c["oracle_lb_prunes_total"] > 0 ||
				c["oracle_ub_hits_total"] > 0 || c["oracle_astar_pops_saved_total"] > 0 {
				fmt.Printf("  oracle: %d lower-bound prunes, %d upper-bound hits, %d A* pops saved (%d nodes settled)\n",
					c["oracle_lb_prunes_total"], c["oracle_ub_hits_total"],
					c["oracle_astar_pops_saved_total"], c["dist_settled_total"])
			}
			if len(varz.Shards) > 0 {
				legs := varz.Metrics.Counters["router_fanout_legs_total"]
				pruned := varz.Metrics.Counters["router_pruned_legs_total"]
				fmt.Printf("  router: %d shards, %d fan-out legs run, %d pruned (%.0f%% of routed)\n",
					len(varz.Shards), legs, pruned,
					100*float64(pruned)/float64(max64(legs+pruned, 1)))
				for i, sh := range varz.Shards {
					fmt.Printf("    shard %d: lsn %d, %d objects, %d requests, %d errors\n",
						i, sh.LSN, sh.LiveObjects, sh.Requests, sh.Errors)
				}
			}
		}
	}

	if *hammerReport != "" {
		var pairCalcs int64
		for _, q := range varz.Metrics.Queries {
			pairCalcs += q.PairDistCalcs
		}
		entry := reportEntry{
			Requests:        n,
			Seconds:         elapsed.Seconds(),
			QPS:             float64(n) / elapsed.Seconds(),
			P50Micros:       pct(lats, 0.50).Microseconds(),
			P95Micros:       pct(lats, 0.95).Microseconds(),
			P99Micros:       pct(lats, 0.99).Microseconds(),
			MaxMicros:       lats[n-1].Microseconds(),
			Errors:          five + statuses[0],
			CacheHits:       hits,
			Shards:          len(varz.Shards),
			FanoutLegs:      varz.Metrics.Counters["router_fanout_legs_total"],
			PrunedLegs:      varz.Metrics.Counters["router_pruned_legs_total"],
			PairDistCalcs:   pairCalcs,
			DistSettled:     varz.Metrics.Counters["dist_settled_total"],
			OracleLBPrunes:  varz.Metrics.Counters["oracle_lb_prunes_total"],
			OracleUBHits:    varz.Metrics.Counters["oracle_ub_hits_total"],
			OraclePopsSaved: varz.Metrics.Counters["oracle_astar_pops_saved_total"],
		}
		if err := upsertReport(*hammerReport, *hammerReportLbl, entry); err != nil {
			return err
		}
		fmt.Printf("  report: %q upserted into %s\n", *hammerReportLbl, *hammerReport)
	}

	if *hammerStrict {
		if five > 0 {
			return fmt.Errorf("strict: %d 5xx responses", five)
		}
		if statuses[0] > 0 {
			return fmt.Errorf("strict: %d transport errors", statuses[0])
		}
		if monoViolations > 0 {
			return fmt.Errorf("strict: %d mutation acks with a non-increasing commit LSN", monoViolations)
		}
		// A 206 means a shard leg failed and the router settled for the
		// survivors; with replicas configured, failover should have turned
		// it into a full answer, so strict runs treat partials as failures.
		if statuses[http.StatusPartialContent] > 0 {
			return fmt.Errorf("strict: %d partial (206) responses", statuses[http.StatusPartialContent])
		}
		// Mutation mixes invalidate the result cache on every acked write,
		// so a cold cache is expected there; only query-only runs must hit.
		if hits == 0 && acked == 0 && !*hammerColdOK {
			return fmt.Errorf("strict: no cache hits observed over %d requests", n)
		}
	}
	if *hammerWant429 {
		if shed429 == 0 {
			return fmt.Errorf("expect-429: no load shedding observed")
		}
		if retryAfter != shed429 {
			return fmt.Errorf("expect-429: %d of %d 429s missing Retry-After", shed429-retryAfter, shed429)
		}
	}
	return nil
}

// reportEntry is one labeled hammer run in the -report JSON file: the
// shard-scaling benchmark upserts one entry per shard count, the oracle
// benchmark one entry per oracle setting, so a single file accumulates
// the data points of one comparison. The distance-work fields come from
// the server's /varz after the run: PairDistCalcs counts pairwise
// distance evaluations, DistSettled the nodes settled by the distance
// engine's Dijkstra/A* sweeps, and the oracle counters how much of that
// work the ALT landmarks avoided.
type reportEntry struct {
	Requests        int     `json:"requests"`
	Seconds         float64 `json:"seconds"`
	QPS             float64 `json:"qps"`
	P50Micros       int64   `json:"p50Micros"`
	P95Micros       int64   `json:"p95Micros"`
	P99Micros       int64   `json:"p99Micros"`
	MaxMicros       int64   `json:"maxMicros"`
	Errors          int     `json:"errors"`
	CacheHits       int     `json:"cacheHits"`
	Shards          int     `json:"shards,omitempty"`
	FanoutLegs      int64   `json:"fanoutLegs,omitempty"`
	PrunedLegs      int64   `json:"prunedLegs,omitempty"`
	PairDistCalcs   int64   `json:"pairDistCalcs,omitempty"`
	DistSettled     int64   `json:"distSettled,omitempty"`
	OracleLBPrunes  int64   `json:"oracleLBPrunes,omitempty"`
	OracleUBHits    int64   `json:"oracleUBHits,omitempty"`
	OraclePopsSaved int64   `json:"oraclePopsSaved,omitempty"`
}

// upsertReport merges one labeled entry into the JSON report file,
// preserving entries from earlier runs.
func upsertReport(path, label string, entry reportEntry) error {
	if label == "" {
		return fmt.Errorf("-report needs -report-label")
	}
	entries := map[string]reportEntry{}
	if body, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(body, &entries); err != nil {
			return fmt.Errorf("existing report %s is not a label map: %w", path, err)
		}
	}
	entries[label] = entry
	body, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(body, '\n'), 0o644)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// benchPhase aggregates the read side of one benchmark phase.
type benchPhase struct {
	Requests    int     `json:"requests"`
	Errors      int64   `json:"errors"`
	Seconds     float64 `json:"seconds"`
	ReadsPerSec float64 `json:"readsPerSec"`
	P50Micros   int64   `json:"p50Micros"`
	P95Micros   int64   `json:"p95Micros"`
	P99Micros   int64   `json:"p99Micros"`
	MaxMicros   int64   `json:"maxMicros"`
}

// benchBucket is one interval of the mixed phase's read trajectory.
type benchBucket struct {
	OffsetSeconds float64 `json:"offsetSeconds"`
	Reads         int     `json:"reads"`
	ReadsPerSec   float64 `json:"readsPerSec"`
	P99Micros     int64   `json:"p99Micros"`
}

// benchReport is the -bench-mixed JSON document.
type benchReport struct {
	Target          string        `json:"target"`
	Mix             string        `json:"mix"`
	Readers         int           `json:"readers"`
	Mutators        int           `json:"mutators"`
	Baseline        benchPhase    `json:"baseline"`
	Mixed           benchPhase    `json:"mixed"`
	Mutations       int64         `json:"mutations"`
	MutationErrors  int64         `json:"mutationErrors"`
	MutationsPerSec float64       `json:"mutationsPerSec"`
	ReadP99Ratio    float64       `json:"readP99Ratio"`
	Trajectory      []benchBucket `json:"trajectory"`
}

// runBenchMixed measures read-under-write behavior in two phases: the
// same -n reads are replayed once with no writers (baseline) and once
// under a sustained insert storm (mixed). Under MVCC read views neither
// phase's reads ever wait on the writer, so the p99 ratio between them
// is the headline regression number the report and -bench-max-ratio
// guard.
func runBenchMixed(client *http.Client, base string, reqs []hammerReq, preset string, scale int, seed int64) error {
	var reads []hammerReq
	for _, r := range reqs {
		if r.body == nil {
			reads = append(reads, r)
		}
	}
	if len(reads) == 0 {
		return fmt.Errorf("-bench-mixed needs at least one query kind in -mix %q", *hammerMix)
	}
	bodies, err := benchInsertBodies(preset, scale, seed)
	if err != nil {
		return err
	}
	n, c := *hammerN, *hammerC
	if c < 1 {
		c = 1
	}

	fmt.Printf("bench-mixed: baseline: %d reads over %d workers, no writers\n", n, c)
	baseline, _ := benchReads(client, base, reads, n, c, false)

	mutC := *hammerBenchMutC
	if mutC < 1 {
		mutC = 1
	}
	stop := make(chan struct{})
	var mutations, mutErrs atomic.Int64
	var mwg sync.WaitGroup
	for w := 0; w < mutC; w++ {
		mwg.Add(1)
		go func(w int) {
			defer mwg.Done()
			for i := w; ; i += mutC {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(base+"/v1/insert", "application/json",
					bytes.NewReader(bodies[i%len(bodies)]))
				if err != nil {
					mutErrs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					mutations.Add(1)
				} else {
					mutErrs.Add(1)
				}
			}
		}(w)
	}

	fmt.Printf("bench-mixed: mixed: %d reads over %d workers under %d insert-storm workers\n", n, c, mutC)
	mixed, traj := benchReads(client, base, reads, n, c, true)
	close(stop)
	mwg.Wait()

	rep := benchReport{
		Target:         base,
		Mix:            *hammerMix,
		Readers:        c,
		Mutators:       mutC,
		Baseline:       baseline,
		Mixed:          mixed,
		Mutations:      mutations.Load(),
		MutationErrors: mutErrs.Load(),
		Trajectory:     traj,
	}
	if mixed.Seconds > 0 {
		rep.MutationsPerSec = float64(rep.Mutations) / mixed.Seconds
	}
	baseP99 := baseline.P99Micros
	if baseP99 < 1 {
		baseP99 = 1 // a sub-microsecond baseline still yields a finite ratio
	}
	rep.ReadP99Ratio = float64(mixed.P99Micros) / float64(baseP99)

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*hammerBench, append(body, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", *hammerBench, err)
	}
	fmt.Printf("bench-mixed: baseline p99 %dµs (%.0f reads/s), mixed p99 %dµs (%.0f reads/s) under %.0f inserts/s — ratio %.2f\n",
		baseline.P99Micros, baseline.ReadsPerSec, mixed.P99Micros, mixed.ReadsPerSec,
		rep.MutationsPerSec, rep.ReadP99Ratio)
	fmt.Printf("bench-mixed: report written to %s\n", *hammerBench)

	if baseline.Errors > 0 || mixed.Errors > 0 {
		return fmt.Errorf("bench-mixed: %d baseline + %d mixed read errors", baseline.Errors, mixed.Errors)
	}
	if rep.Mutations == 0 {
		return fmt.Errorf("bench-mixed: the insert storm landed no mutations (%d errors)", rep.MutationErrors)
	}
	if max := *hammerBenchMax; max > 0 && rep.ReadP99Ratio > max {
		return fmt.Errorf("bench-mixed: mixed read p99 is %.2fx the baseline, want <= %.2fx — reads are blocking on writers",
			rep.ReadP99Ratio, max)
	}
	return nil
}

// benchReads replays n round-robin reads over c workers and aggregates
// one phase; with trajectory set, each read's completion offset is kept
// and bucketed into the per-interval trajectory.
func benchReads(client *http.Client, base string, reads []hammerReq, n, c int, trajectory bool) (benchPhase, []benchBucket) {
	lats := make([]time.Duration, n)
	offs := make([]float64, n)
	var next, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				t0 := time.Now()
				status, _, _ := issueBody(client, base+reads[i%len(reads)].url)
				lats[i] = time.Since(t0)
				offs[i] = time.Since(start).Seconds()
				if status != http.StatusOK {
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	phase := benchPhase{
		Requests:  n,
		Errors:    errs.Load(),
		Seconds:   elapsed.Seconds(),
		P50Micros: pct(sorted, 0.50).Microseconds(),
		P95Micros: pct(sorted, 0.95).Microseconds(),
		P99Micros: pct(sorted, 0.99).Microseconds(),
		MaxMicros: sorted[len(sorted)-1].Microseconds(),
	}
	if phase.Seconds > 0 {
		phase.ReadsPerSec = float64(n) / phase.Seconds
	}
	if !trajectory {
		return phase, nil
	}
	return phase, benchTrajectory(offs, lats)
}

// benchTrajectory buckets reads into fixed intervals by completion time.
func benchTrajectory(offs []float64, lats []time.Duration) []benchBucket {
	const width = 0.5 // seconds
	byBucket := map[int][]time.Duration{}
	for i, o := range offs {
		b := int(o / width)
		byBucket[b] = append(byBucket[b], lats[i])
	}
	keys := make([]int, 0, len(byBucket))
	for k := range byBucket {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]benchBucket, 0, len(keys))
	for _, k := range keys {
		ls := byBucket[k]
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		out = append(out, benchBucket{
			OffsetSeconds: float64(k) * width,
			Reads:         len(ls),
			ReadsPerSec:   float64(len(ls)) / width,
			P99Micros:     pct(ls, 0.99).Microseconds(),
		})
	}
	return out
}

// benchInsertBodies builds the insert POST bodies of the mixed phase's
// mutation storm: workload positions and keywords from the same preset,
// offset by a different seed so the storm does not mirror the read mix.
func benchInsertBodies(preset string, scale int, seed int64) ([][]byte, error) {
	ds, err := dsks.GeneratePreset(dsks.Preset(preset), scale, seed)
	if err != nil {
		return nil, err
	}
	ws, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: 256, Keywords: 2, Seed: seed + 2,
	})
	if err != nil {
		return nil, err
	}
	bodies := make([][]byte, len(ws))
	for i, q := range ws {
		bodies[i], _ = json.Marshal(map[string]any{
			"edge": q.Pos.Edge, "offset": q.Pos.Offset, "terms": q.Terms,
		})
	}
	return bodies, nil
}

// pct reads the q-quantile of sorted latencies.
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
