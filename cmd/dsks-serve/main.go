// Command dsks-serve is the production query server: it opens (or
// generates) a database and serves the HTTP/JSON query API of
// internal/server, with admission control, a version-checked result
// cache, and live observability on /healthz, /varz and /metricsz.
//
// Serve a generated dataset:
//
//	dsks-serve -addr :8080 -preset SYN -scale 200 -index SIF
//
// Serve a snapshot written with dsks.SaveTo:
//
//	dsks-serve -addr :8080 -db ./snap
//
// Shard the road network 4 ways and serve through the scatter-gather
// router (queries fan out to the routed shards and merge; -db reopens a
// sharded snapshot written by the set's SaveTo):
//
//	dsks-serve -addr :8080 -preset SYN -scale 200 -shards 4
//
// Replay a synthetic query mix against a running server (the load
// driver reports throughput, latency percentiles and cache behavior):
//
//	dsks-serve -hammer -target http://localhost:8080 -n 2000 -c 16
//
// The process drains cleanly on SIGINT/SIGTERM: the listener closes,
// in-flight queries finish (up to -drain-timeout), and the exit code is 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dsks"
	"dsks/internal/server"
	"dsks/internal/shard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dsks-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dbDir   = flag.String("db", "", "open a database snapshot (dsks.SaveTo directory) instead of generating")
		preset  = flag.String("preset", "SYN", "generated dataset preset (SYN, NA, TW, SF); ignored with -db")
		scale   = flag.Int("scale", 200, "scale denominator for generated presets")
		seed    = flag.Int64("seed", 1, "random seed for generated presets")
		kind    = flag.String("index", "SIF", "object index: IR, IF, SIF, SIF-P")
		iolat   = flag.Duration("iolat", 0, "synthetic I/O latency per buffer miss")
		buffer  = flag.Float64("buffer", 0, "buffer pool fraction (0 = library default)")
		maxIn   = flag.Int("max-inflight", 16, "queries executing concurrently")
		queue   = flag.Int("queue-depth", 64, "requests waiting for an execution slot (beyond: 429)")
		defTO   = flag.Duration("default-timeout", 2*time.Second, "per-request deadline when the client sends none")
		maxTO   = flag.Duration("max-timeout", 30*time.Second, "cap on client-requested deadlines")
		cache   = flag.Int("cache-size", 4096, "result cache capacity in entries (negative disables)")
		drainTO = flag.Duration("drain-timeout", 10*time.Second, "shutdown drain budget for in-flight queries")

		walDir      = flag.String("wal", "", "write-ahead log directory: mutations are durable before they are acked")
		walEvery    = flag.Int("wal-sync-every", 0, "group commit: fsync once this many mutations are batched (0 = library default)")
		walInterval = flag.Duration("wal-sync-interval", 0, "group commit: fsync at least this often while mutations wait (0 = library default)")
		walStrict   = flag.Bool("wal-strict", false, "fsync every mutation individually (no group commit)")

		oracle    = flag.Bool("oracle", false, "build the ALT landmark distance oracle at startup (accelerates diversified queries)")
		landmarks = flag.Int("landmarks", 0, "landmark count for -oracle (0 = library default)")
		checksums = flag.Bool("checksums", false, "verify per-page CRC32C checksums on every buffer miss")
		faultSpec = flag.String("fault", "", "install a fault-injection spec at startup (see internal/fault)")
		chaos     = flag.Bool("enable-chaos", false, "expose POST /v1/chaos for runtime fault injection (testing only)")
		degradeN  = flag.Int("degrade-after", 3, "consecutive storage errors before the server reports degraded")
		breakN    = flag.Int("break-after", 5, "consecutive storage errors before the circuit breaker opens")
		breakerTO = flag.Duration("breaker-cooldown", time.Second, "open-circuit cooldown before a half-open probe")

		shards     = flag.Int("shards", 1, "shard the road network N ways and serve through the scatter-gather router")
		partialRes = flag.Bool("partial-results", false, "sharded: answer with merged survivors (HTTP 206) when a shard fails, instead of failing the query")
		fanoutLim  = flag.Int("fanout", 0, "sharded: concurrently running fan-out legs per request (0 = all routed shards)")
		replicas   = flag.Int("replicas", 0, "sharded: WAL-shipped read replicas per shard (requires -wal); reads fail over to them when a primary dies")
		hedgeAfter = flag.Duration("hedge-after", 25*time.Millisecond, "sharded: race a replica against a primary leg slower than this (0 disables hedging)")
		maxStale   = flag.Uint64("max-staleness", 4096, "sharded: max log records a failover replica may lag behind the pinned primary LSN (0 = unbounded)")
		legRetries = flag.Int("leg-retries", 2, "sharded: transient-error retries per fan-out leg before failing over")

		hammer = flag.Bool("hammer", false, "run the load driver against -target instead of serving")
	)
	hammerFlags(flag.CommandLine)
	flag.Parse()

	opts := dsks.Options{
		Index:           indexKind(*kind),
		IOLatency:       *iolat,
		BufferFraction:  *buffer,
		Checksums:       *checksums,
		Oracle:          *oracle,
		Landmarks:       *landmarks,
		OracleSeed:      uint64(*seed),
		WALDir:          *walDir,
		WALSyncEvery:    *walEvery,
		WALSyncInterval: *walInterval,
		WALStrictSync:   *walStrict,
	}

	if *hammer {
		return runHammer(*preset, *scale, *seed)
	}

	cfg := server.Config{
		Addr:            *addr,
		MaxInflight:     *maxIn,
		QueueDepth:      *queue,
		DefaultTimeout:  *defTO,
		MaxTimeout:      *maxTO,
		CacheSize:       cacheSize(*cache),
		DegradeAfter:    *degradeN,
		BreakAfter:      *breakN,
		BreakerCooldown: *breakerTO,
		EnableChaos:     *chaos,
	}

	// The backend: one database, or an N-way shard set behind the router.
	var (
		srv          *server.Server
		desc         string
		closeBackend func() error
		durable      func() string
	)
	if *shards > 1 {
		if *replicas > 0 && *walDir == "" {
			return fmt.Errorf("-replicas %d needs -wal: the write-ahead log is the replication shipping medium", *replicas)
		}
		set, d, err := openSet(*dbDir, *preset, *scale, *seed, *shards, shard.Options{
			DB: opts, Partial: *partialRes, FanoutLimit: *fanoutLim,
			Replicas: *replicas, HedgeAfter: *hedgeAfter,
			MaxStaleness: *maxStale, LegRetries: *legRetries,
			Seed: uint64(*seed),
		})
		if err != nil {
			return err
		}
		if *faultSpec != "" {
			if err := set.SetFaultSpec(*faultSpec); err != nil {
				return fmt.Errorf("-fault: %w", err)
			}
			fmt.Printf("dsks-serve: fault injection active on every shard: %s\n", *faultSpec)
		}
		policy := "first-error-wins"
		if *partialRes {
			policy = "partial-results"
		}
		if *replicas > 0 {
			policy += fmt.Sprintf(", %d replicas/shard, hedge %s, staleness bound %d", *replicas, *hedgeAfter, *maxStale)
		}
		srv = server.NewRouter(set, cfg)
		desc = fmt.Sprintf("%s over %d shards (%s)", d, set.Shards(), policy)
		closeBackend = set.Close
		durable = func() string { return fmt.Sprintf("durable LSNs %v", set.DurableLSNs()) }
	} else {
		db, d, err := openDB(*dbDir, *preset, *scale, *seed, opts)
		if err != nil {
			return err
		}
		if *faultSpec != "" {
			if err := db.SetFaultSpec(*faultSpec); err != nil {
				return fmt.Errorf("-fault: %w", err)
			}
			fmt.Printf("dsks-serve: fault injection active: %s\n", *faultSpec)
		}
		srv = server.New(db, cfg)
		desc = d
		closeBackend = db.Close
		durable = func() string { return fmt.Sprintf("durable LSN %d", db.DurableLSN()) }
	}
	errc, err := srv.Start()
	if err != nil {
		return err
	}
	fmt.Printf("dsks-serve: serving %s on %s (index %s, max-inflight %d, queue %d, cache %d)\n",
		desc, srv.Addr(), opts.Index, *maxIn, *queue, *cache)
	if *walDir != "" {
		fmt.Printf("dsks-serve: write-ahead log in %s (%s)\n", *walDir, durable())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("dsks-serve: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil {
		return err
	}
	// Flush and close the write-ahead log(s) so the final group commit is
	// on disk before the process reports a clean exit.
	if err := closeBackend(); err != nil {
		return fmt.Errorf("closing backend: %w", err)
	}
	fmt.Println("dsks-serve: drained cleanly")
	return nil
}

// openSet opens a sharded snapshot (its manifest fixes the shard count),
// or partitions the generated preset dataset n ways.
func openSet(dir, preset string, scale int, seed int64, n int, opts shard.Options) (*shard.Set, string, error) {
	if dir != "" {
		set, err := shard.OpenSetPath(dir, opts)
		if err != nil {
			return nil, "", fmt.Errorf("opening sharded snapshot %s: %w", dir, err)
		}
		return set, "snapshot " + dir, nil
	}
	ds, err := dsks.GeneratePreset(dsks.Preset(preset), scale, seed)
	if err != nil {
		return nil, "", err
	}
	set, err := shard.Open(ds.Graph, ds.Objects, ds.VocabSize, n, opts)
	if err != nil {
		return nil, "", err
	}
	desc := fmt.Sprintf("%s/%d seed %d (%d objects)", preset, scale, seed, set.LiveObjects())
	return set, desc, nil
}

// openDB opens the snapshot directory, or generates the preset dataset.
func openDB(dir, preset string, scale int, seed int64, opts dsks.Options) (*dsks.DB, string, error) {
	if dir != "" {
		db, err := dsks.OpenPath(dir, opts)
		if err != nil {
			return nil, "", fmt.Errorf("opening snapshot %s: %w", dir, err)
		}
		return db, "snapshot " + dir, nil
	}
	ds, err := dsks.GeneratePreset(dsks.Preset(preset), scale, seed)
	if err != nil {
		return nil, "", err
	}
	db, err := dsks.OpenDataset(ds, opts)
	if err != nil {
		return nil, "", err
	}
	desc := fmt.Sprintf("%s/%d seed %d (%d objects)", preset, scale, seed, ds.Objects.Live())
	return db, desc, nil
}

// indexKind maps the flag spelling to the library constant.
func indexKind(s string) dsks.IndexKind {
	switch s {
	case "IR":
		return dsks.IndexIR
	case "IF":
		return dsks.IndexIF
	case "SIF":
		return dsks.IndexSIF
	case "SIF-P", "SIFP":
		return dsks.IndexSIFP
	default:
		return dsks.IndexKind(s) // let Open reject it with ErrBadOptions
	}
}

// cacheSize maps the flag to the server convention (0 = default there, so
// a user's explicit 0 becomes "disabled").
func cacheSize(n int) int {
	if n == 0 {
		return -1
	}
	return n
}
