// Command datagen generates the synthetic dataset analogues (road network
// + spatio-textual objects) and writes them to disk in the library's text
// formats, so experiments can run against frozen inputs.
//
// Usage:
//
//	datagen -preset NA -scale 100 -out ./data/na
//	datagen -preset SYN -scale 1 -out ./data/syn-full   # paper scale
//
// Two files are produced: <out>.graph (node/edge list, see graph.Write)
// and <out>.objects (one object per line: edge, offset, keywords).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"dsks/internal/dataset"
	"dsks/internal/graph"
	"dsks/internal/obj"
)

func main() {
	preset := flag.String("preset", "SYN", "dataset preset: SYN, NA, TW, SF")
	scale := flag.Int("scale", 100, "scale denominator (1 = paper scale)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "dataset", "output path prefix")
	flag.Parse()

	ds, err := dataset.GeneratePreset(dataset.Preset(*preset), *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := writeGraph(*out+".graph", ds); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := writeObjects(*out+".objects", ds); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := ds.Stats()
	fmt.Printf("%s (1/%d scale): %d nodes, %d edges, %d objects, |V|=%d, avg keywords %.1f\n",
		ds.Name, *scale, st.Nodes, st.Edges, st.Objects, st.VocabSize, st.AvgKeywords)
	fmt.Printf("wrote %s.graph and %s.objects\n", *out, *out)
}

func writeGraph(path string, ds *dataset.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := graph.Write(w, ds.Graph); err != nil {
		return err
	}
	return w.Flush()
}

func writeObjects(path string, ds *dataset.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# objects %d vocab %d\n", ds.Objects.Len(), ds.VocabSize)
	for i := 0; i < ds.Objects.Len(); i++ {
		o := ds.Objects.Get(obj.ID(i))
		fmt.Fprintf(w, "%d %g", o.Pos.Edge, o.Pos.Offset)
		for _, t := range o.Terms {
			fmt.Fprintf(w, " %d", t)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}
