// Command dsks runs spatial keyword and diversified spatial keyword
// queries against a dataset — either a preset analogue generated on the
// fly or a dataset frozen to disk by command datagen.
//
// Usage:
//
//	dsks -preset SYN -scale 200 -terms 3,7 -deltamax 1500           # boolean SK query
//	dsks -preset NA -terms 1,2,5 -k 10 -lambda 0.8 -algo COM        # diversified
//	dsks -load ./data/na -terms 4 -index SIF-P -queries 5
//	dsks -preset SYN -queries 20 -stats                             # metrics report
//	dsks -preset NA -timeout 50ms -terms 1,2                        # per-query deadline
//
// Keywords are term IDs of the generated vocabulary (0 = most frequent).
// Without -terms the tool anchors each query at a random object and uses
// its keywords, printing the chosen terms. With -stats, a metrics report
// (per-kind query counts, latency quantiles, buffer-pool hit rates)
// follows the query output; the bare argument "stats" does the same.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"dsks/internal/core"
	"dsks/internal/dataset"
	"dsks/internal/harness"
	"dsks/internal/metrics"
	"dsks/internal/obj"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	preset := flag.String("preset", "SYN", "dataset preset (SYN, NA, TW, SF); ignored with -load")
	load := flag.String("load", "", "load a datagen-written dataset by path prefix")
	scale := flag.Int("scale", 200, "scale denominator for generated presets")
	seed := flag.Int64("seed", 1, "random seed")
	kind := flag.String("index", "SIF", "object index: IR, IF, SIF, SIF-P")
	terms := flag.String("terms", "", "comma-separated query term IDs (empty: use a random object's keywords)")
	nterms := flag.Int("l", 2, "number of keywords taken from the anchor object when -terms is empty")
	deltaMax := flag.Float64("deltamax", 1500, "maximal network distance δmax")
	k := flag.Int("k", 0, "diversified result size k (0 = plain SK query)")
	lambda := flag.Float64("lambda", 0.8, "relevance/diversity trade-off λ")
	algo := flag.String("algo", "COM", "diversified algorithm: SEQ or COM")
	knn := flag.Int("knn", 0, "k-nearest-neighbor mode: return the knn closest matches (overrides -k)")
	alpha := flag.Float64("alpha", -1, "ranked mode: spatial weight α in [0,1] (overrides -k and -knn)")
	queries := flag.Int("queries", 1, "number of queries to run")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none)")
	stats := flag.Bool("stats", false, "print the metrics report after the queries")
	flag.Parse()
	if flag.Arg(0) == "stats" {
		*stats = true
	}

	var ds *dataset.Dataset
	var err error
	if *load != "" {
		ds, err = dataset.Load(*load)
	} else {
		ds, err = dataset.GeneratePreset(dataset.Preset(*preset), *scale, *seed)
	}
	if err != nil {
		return err
	}
	st := ds.Stats()
	fmt.Printf("dataset %s: %d nodes, %d edges, %d objects, |V|=%d\n",
		ds.Name, st.Nodes, st.Edges, st.Objects, st.VocabSize)

	ik := harness.IndexKind(*kind)
	sys, err := harness.Build(ds, []harness.IndexKind{ik}, harness.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("index %s: %.2f MB, built in %v\n\n", ik,
		float64(sys.IndexSize[ik])/(1<<20), sys.BuildTime[ik].Round(0))

	rng := rand.New(rand.NewSource(*seed + 100))
	for qi := 0; qi < *queries; qi++ {
		anchor := ds.Objects.Get(obj.ID(rng.Intn(ds.Objects.Len())))
		var queryTerms []obj.TermID
		if *terms != "" {
			for _, part := range strings.Split(*terms, ",") {
				t, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil || t < 0 || t >= ds.VocabSize {
					return fmt.Errorf("bad term %q (vocabulary is 0..%d)", part, ds.VocabSize-1)
				}
				queryTerms = append(queryTerms, obj.TermID(t))
			}
		} else {
			n := *nterms
			if n > len(anchor.Terms) {
				n = len(anchor.Terms)
			}
			perm := rng.Perm(len(anchor.Terms))
			for _, pi := range perm[:n] {
				queryTerms = append(queryTerms, anchor.Terms[pi])
			}
		}
		queryTerms = obj.NormalizeTerms(queryTerms)

		skq := core.SKQuery{Pos: anchor.Pos, Terms: queryTerms, DeltaMax: *deltaMax}
		fmt.Printf("query %d: edge %d offset %.1f, terms %v, δmax %.0f\n",
			qi+1, skq.Pos.Edge, skq.Pos.Offset, skq.Terms, skq.DeltaMax)

		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		err := runQuery(ctx, sys, ik, skq, *k, *lambda, *algo, *knn, *alpha)
		cancel()
		switch {
		case errors.Is(err, core.ErrDeadlineExceeded):
			fmt.Printf("  query aborted: deadline of %v exceeded\n", *timeout)
		case err != nil:
			return err
		}
		fmt.Println()
	}
	if *stats {
		printStats(sys.Metrics.Snapshot())
	}
	return nil
}

// runQuery dispatches one query to the mode the flags select.
func runQuery(ctx context.Context, sys *harness.System, ik harness.IndexKind,
	skq core.SKQuery, k int, lambda float64, algo string, knn int, alpha float64) error {
	switch {
	case alpha >= 0:
		kk := k
		if kk <= 0 {
			kk = 10
		}
		res, err := sys.RunRanked(ctx, ik, core.RankedQuery{
			Pos: skq.Pos, Terms: skq.Terms, K: kk, Alpha: alpha, DeltaMax: skq.DeltaMax,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  ranked top-%d (α=%.2f); %d candidates seen, early-stop=%v\n",
			kk, alpha, res.Stats.Candidates, res.Stats.EarlyTerminate)
		for i, r := range res.Ranked {
			fmt.Printf("  #%d object %d score %.3f (%d/%d keywords, %.1f away)\n",
				i+1, r.Ref.ID, r.Score, r.Matched, len(skq.Terms), r.Dist)
		}
	case knn > 0:
		res, err := sys.RunKNN(ctx, ik, core.KNNQuery{
			Pos: skq.Pos, Terms: skq.Terms, K: knn, MaxDist: skq.DeltaMax,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %d nearest matches (%d nodes expanded)\n",
			len(res.Candidates), res.Stats.NodesPopped)
		for i, c := range res.Candidates {
			fmt.Printf("  #%d object %d on edge %d at network distance %.1f\n",
				i+1, c.Ref.ID, c.Ref.Edge, c.Dist)
		}
	case k <= 0:
		res, err := sys.RunSK(ctx, ik, skq)
		if err != nil {
			return err
		}
		fmt.Printf("  %d candidates in %v (%d disk reads, %d nodes expanded)\n",
			len(res.Candidates), res.Elapsed.Round(0), res.DiskReads, res.Stats.NodesPopped)
		for i, c := range res.Candidates {
			if i == 10 {
				fmt.Printf("  ... %d more\n", len(res.Candidates)-10)
				break
			}
			fmt.Printf("  #%d object %d on edge %d at network distance %.1f\n",
				i+1, c.Ref.ID, c.Ref.Edge, c.Dist)
		}
	default:
		res, err := sys.RunDiv(ctx, ik, harness.DivAlgo(algo), harness.DivQueryOf(
			dataset.Query{Pos: skq.Pos, Terms: skq.Terms, DeltaMax: skq.DeltaMax}, k, lambda))
		if err != nil {
			return err
		}
		fmt.Printf("  %s chose %d objects (f = %.4f) in %v; %d disk reads, %d candidates seen, %d pruned, early-stop=%v\n",
			algo, len(res.Div.Objects), res.Div.F, res.Elapsed.Round(0),
			res.DiskReads, res.Stats.Candidates, res.Stats.Pruned, res.Stats.EarlyTerminate)
		for i, c := range res.Div.Objects {
			fmt.Printf("  #%d object %d on edge %d at network distance %.1f\n",
				i+1, c.Ref.ID, c.Ref.Edge, c.Dist)
		}
	}
	return nil
}

// printStats renders the metrics snapshot: one line per active query kind,
// then the buffer pools.
func printStats(snap metrics.Snapshot) {
	fmt.Printf("--- metrics (%d queries) ---\n", snap.TotalQueries())
	for _, kind := range metrics.Kinds() {
		q, ok := snap.Queries[kind]
		if !ok || q.Count == 0 {
			continue
		}
		fmt.Printf("%-12s n=%-4d err=%d canceled=%d  p50=%v p95=%v p99=%v mean=%v max=%v\n",
			kind, q.Count, q.Errors, q.Canceled,
			q.P50.Round(time.Microsecond), q.P95.Round(time.Microsecond),
			q.P99.Round(time.Microsecond), q.Mean.Round(time.Microsecond),
			q.Max.Round(time.Microsecond))
		fmt.Printf("             nodes=%d edges=%d candidates=%d pruned=%d pairdist=%d diskreads=%d\n",
			q.NodesPopped, q.EdgesVisited, q.Candidates, q.Pruned, q.PairDistCalcs, q.DiskReads)
	}
	for _, name := range snap.PoolNames() {
		p := snap.Pools[name]
		fmt.Printf("pool %-10s logical=%-8d disk=%-8d hit-rate=%.1f%%\n",
			name, p.LogicalReads, p.DiskReads, 100*p.HitRate)
	}
}
