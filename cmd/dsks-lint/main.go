// Command dsks-lint is the project's multichecker: it runs the five
// dsks-specific analyzers (see docs/LINTING.md) over the packages
// matching the given patterns and exits non-zero when any invariant is
// violated. With -vet it additionally delegates to `go vet` on the same
// patterns, so one invocation covers both the stock and the
// project-specific passes.
//
// Usage:
//
//	dsks-lint [-list] [-run name,...] [-vet] [packages]
//
// Findings print as file:line:col: message (analyzer). Suppress a
// deliberate violation with a trailing or preceding comment:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"dsks/internal/analysis"
	"dsks/internal/analysis/countedio"
	"dsks/internal/analysis/ctxpair"
	"dsks/internal/analysis/detrand"
	"dsks/internal/analysis/errsentinel"
	"dsks/internal/analysis/lockio"
)

var analyzers = []*analysis.Analyzer{
	ctxpair.Analyzer,
	errsentinel.Analyzer,
	lockio.Analyzer,
	detrand.Analyzer,
	countedio.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	vet := flag.Bool("vet", false, "also run 'go vet' on the same patterns")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dsks-lint [-list] [-run name,...] [-vet] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := analyzers
	if *run != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown analyzer %q (try -list)", name)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fatalf("%v", err)
	}

	failed := false
	for _, pkg := range pkgs {
		for _, a := range selected {
			findings, err := analysis.RunAnalyzer(pkg, a)
			if err != nil {
				fatalf("%v", err)
			}
			for _, f := range findings {
				failed = true
				fmt.Printf("%s: %s\n", f.Pos, f.Message)
			}
		}
	}

	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dsks-lint: "+format+"\n", args...)
	os.Exit(2)
}
