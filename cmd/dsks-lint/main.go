// Command dsks-lint is the project's multichecker: it runs the eight
// dsks-specific analyzers (see docs/LINTING.md) over the packages
// matching the given patterns and exits non-zero when any invariant is
// violated. Packages load in parallel and are analyzed in import-graph
// order so cross-package facts (viewclose, commitorder, atomicfield)
// flow from dependencies to dependents. With -vet it additionally
// delegates to `go vet` on the same patterns, so one invocation covers
// both the stock and the project-specific passes.
//
// Usage:
//
//	dsks-lint [-list] [-run name,...] [-format text|json|sarif] [-o file] [-debug] [-vet] [packages]
//
// With -format=text findings print as file:line:col: message; json
// emits a flat array and sarif a SARIF 2.1.0 document (what CI uploads
// as the code-scanning artifact). -debug prints load time, per-analyzer
// wall time, and fact-store contents to stderr. Suppress a deliberate
// violation with a trailing or preceding comment:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"dsks/internal/analysis"
	"dsks/internal/analysis/atomicfield"
	"dsks/internal/analysis/commitorder"
	"dsks/internal/analysis/countedio"
	"dsks/internal/analysis/ctxpair"
	"dsks/internal/analysis/detrand"
	"dsks/internal/analysis/errsentinel"
	"dsks/internal/analysis/lockio"
	"dsks/internal/analysis/viewclose"
)

var analyzers = []*analysis.Analyzer{
	ctxpair.Analyzer,
	errsentinel.Analyzer,
	lockio.Analyzer,
	detrand.Analyzer,
	countedio.Analyzer,
	viewclose.Analyzer,
	commitorder.Analyzer,
	atomicfield.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	out := flag.String("o", "", "write findings to this file instead of stdout")
	debug := flag.Bool("debug", false, "print load/analyzer timings and fact keys to stderr")
	vet := flag.Bool("vet", false, "also run 'go vet' on the same patterns")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: dsks-lint [-list] [-run name,...] [-format text|json|sarif] [-o file] [-debug] [-vet] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := analyzers
	if *run != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown analyzer %q (try -list)", name)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loadStart := time.Now()
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fatalf("%v", err)
	}
	loadTime := time.Since(loadStart)

	runner := &analysis.Runner{}
	findings, err := runner.Run(pkgs, selected)
	if err != nil {
		fatalf("%v", err)
	}

	if *debug {
		fmt.Fprintf(os.Stderr, "dsks-lint: loaded %d packages in %s\n", len(pkgs), loadTime.Round(time.Millisecond))
		for _, line := range runner.Timings() {
			fmt.Fprintf(os.Stderr, "dsks-lint: %s\n", line)
		}
		for _, a := range selected {
			if keys := runner.Facts.Keys(a.Name); len(keys) > 0 {
				fmt.Fprintf(os.Stderr, "dsks-lint: %s exported %d facts\n", a.Name, len(keys))
			}
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}

	baseDir, err := os.Getwd()
	if err != nil {
		baseDir = ""
	}
	switch *format {
	case "text":
		for _, f := range findings {
			fmt.Fprintf(w, "%s: %s\n", f.Pos, f.Message)
		}
	case "json":
		if err := analysis.WriteJSON(w, baseDir, findings); err != nil {
			fatalf("%v", err)
		}
	case "sarif":
		if err := analysis.WriteSARIF(w, baseDir, selected, findings); err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("unknown format %q (want text, json, or sarif)", *format)
	}

	failed := len(findings) > 0

	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dsks-lint: "+format+"\n", args...)
	os.Exit(2)
}
