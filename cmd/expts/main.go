// Command expts regenerates the tables and figures of the paper's
// evaluation (Section 5) over the synthetic dataset analogues.
//
// Usage:
//
//	expts -fig all                 # every figure at the default scale
//	expts -fig 7,11,16a            # selected figures
//	expts -fig table2 -scale 50    # closer to paper scale (slower)
//	expts -queries 200 -iolat 100us
//
// The scale flag divides the paper's dataset sizes; -scale 1 is full paper
// scale (hours), -scale 100 is the default (minutes), -scale 400 runs in
// seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"dsks/internal/experiments"
)

var figures = map[string]func(experiments.Config) (*experiments.Result, error){
	"table2": experiments.Table2,
	"6":      experiments.Fig6,
	"7":      experiments.Fig7,
	"8":      experiments.Fig8,
	"9":      experiments.Fig9,
	"10":     experiments.Fig10,
	"11":     experiments.Fig11,
	"12":     experiments.Fig12,
	"13":     experiments.Fig13,
	"14":     experiments.Fig14,
	"15":     experiments.Fig15,
	"16a":    experiments.Fig16a,
	"16b":    experiments.Fig16b,
	"16c":    experiments.Fig16c,
	"16d":    experiments.Fig16d,
	// Ablations of the design choices (not figures of the paper).
	"buffer":               experiments.ExtraBufferSweep,
	"quality":              experiments.ExtraQuality,
	"throughput":           experiments.ExtraThroughput,
	"ablation-pruning":     experiments.AblationPruning,
	"ablation-partition":   experiments.AblationPartition,
	"ablation-dijkstra":    experiments.AblationDijkstra,
	"ablation-compaction":  experiments.AblationCompaction,
	"ablation-selectivity": experiments.AblationSelectivity,
	"ablation-c1":          experiments.AblationC1,
	"ablation-oracle":      experiments.AblationOracle,
}

// figureOrder renders "all" deterministically.
var figureOrder = []string{
	"table2", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
	"16a", "16b", "16c", "16d",
	"buffer", "quality", "throughput",
	"ablation-pruning", "ablation-partition", "ablation-dijkstra", "ablation-compaction",
	"ablation-selectivity", "ablation-c1", "ablation-oracle",
}

func main() {
	fig := flag.String("fig", "all", "comma-separated figure ids ("+strings.Join(figureOrder, ", ")+") or 'all'")
	scale := flag.Int("scale", 100, "dataset scale denominator (1 = paper scale)")
	queries := flag.Int("queries", 50, "workload size (paper: 500)")
	seed := flag.Int64("seed", 1, "random seed")
	iolat := flag.Duration("iolat", 0, "synthetic per-miss I/O latency (e.g. 100us)")
	plot := flag.Bool("plot", false, "print unicode sparklines for each figure's series")
	flag.Parse()

	var ids []string
	if *fig == "all" {
		ids = figureOrder
	} else {
		ids = strings.Split(*fig, ",")
	}
	cfg := experiments.Config{
		Scale:     *scale,
		Queries:   *queries,
		Seed:      *seed,
		IOLatency: *iolat,
		Out:       os.Stdout,
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fn, ok := figures[id]
		if !ok {
			known := make([]string, 0, len(figures))
			for k := range figures {
				known = append(known, k)
			}
			sort.Strings(known)
			fmt.Fprintf(os.Stderr, "unknown figure %q (known: %s)\n", id, strings.Join(known, ", "))
			os.Exit(2)
		}
		start := time.Now()
		r, err := fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s failed: %v\n", id, err)
			os.Exit(1)
		}
		if *plot {
			r.FprintSparks(os.Stdout)
		}
		fmt.Printf("(figure %s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
