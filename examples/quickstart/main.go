// Quickstart: the paper's motivating example (Section 1, Figure 1) — a
// tourist in a city center wants k = 2 restaurants that each serve both
// pancake and lobster, close to her location but spread out, so that the
// post-dinner options around them do not overlap.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dsks"
)

func main() {
	// A small downtown grid: 3×3 intersections, 200m blocks.
	g := dsks.NewGraph()
	var nodes [3][3]dsks.NodeID
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			nodes[r][c] = g.AddNode(dsks.Point{X: float64(c) * 200, Y: float64(r) * 200})
		}
	}
	var streets []dsks.EdgeID
	addRoad := func(a, b dsks.NodeID) dsks.EdgeID {
		// Cost model: walking distance = geometric street length.
		e, err := g.AddEdge(a, b, g.Node(a).Loc.Dist(g.Node(b).Loc))
		if err != nil {
			log.Fatal(err)
		}
		streets = append(streets, e)
		return e
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 2; c++ {
			addRoad(nodes[r][c], nodes[r][c+1])
		}
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			addRoad(nodes[r][c], nodes[r+1][c])
		}
	}
	g.Freeze()

	// Restaurants with their service lists, placed along the streets.
	vocab := dsks.NewVocabulary()
	objects := dsks.NewCollection()
	names := map[dsks.ObjectID]string{}
	place := func(name string, street dsks.EdgeID, offset float64, services ...string) {
		id := objects.Add(dsks.Position{Edge: street, Offset: offset}, vocab.InternAll(services))
		names[id] = name
	}
	// Two clusters: p1/p2 close together near the query, p4 across town —
	// the paper's point is that {p1, p4} beats {p1, p2}.
	place("p1 Harbour Grill", streets[0], 50, "pancake", "lobster", "seafood")
	place("p2 Corner Bistro", streets[0], 80, "pancake", "lobster", "wine")
	place("p3 Noodle Bar", streets[1], 100, "noodles", "dumplings")
	place("p4 Garden House", streets[5], 120, "pancake", "lobster", "garden")
	place("p5 Espresso Lane", streets[8], 60, "coffee", "cake")

	db, err := dsks.Open(g, objects, vocab.Size(), dsks.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The tourist stands at the west end of the first street.
	where := dsks.Position{Edge: streets[0], Offset: 0}
	terms, err := vocab.LookupAll([]string{"pancake", "lobster"})
	if err != nil {
		log.Fatal(err)
	}

	// Open a read view: both queries below run against the same pinned
	// snapshot, so a concurrent insert could never make them disagree.
	ctx := context.Background()
	view, err := db.View(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer view.Close()

	// Plain boolean search: everything serving both, nearest first.
	res, err := view.Search(ctx, dsks.SKQuery{Pos: where, Terms: terms, DeltaMax: 800})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("All restaurants serving pancake AND lobster within 800m:")
	for _, c := range res.Candidates {
		fmt.Printf("  %-18s %4.0fm away\n", names[c.Ref.ID], c.Dist)
	}

	// Diversified search: k = 2, λ = 0.4 — weight spread over closeness.
	// p1 and p2 are only 30m apart, so even though p2 is the second
	// closest match, the diversified result swaps it for the far cluster's
	// p4 (the paper's S2 = {p1, p4} over S1 = {p1, p2}).
	div, err := view.SearchDiversified(ctx, dsks.DivQuery{
		SKQuery: dsks.SKQuery{Pos: where, Terms: terms, DeltaMax: 800},
		K:       2,
		Lambda:  0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDiversified pick (k=2, λ=0.4), objective f = %.3f:\n", div.F)
	for _, c := range div.Candidates {
		fmt.Printf("  %-18s %4.0fm away\n", names[c.Ref.ID], c.Dist)
	}
	pairDist, err := view.NetworkDistance(ctx, div.Candidates[0].Ref.Pos(), div.Candidates[1].Ref.Pos())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  the two picks are %.0fm apart on the road network\n", pairDist)

	// Where did the time go? Every result carries a stage-timing trace.
	fmt.Printf("\nQuery time breakdown: expansion %v, posting reads %v, diversification %v (total %v)\n",
		div.Trace.Expansion.Round(time.Microsecond),
		div.Trace.PostingReads.Round(time.Microsecond),
		div.Trace.Diversify.Round(time.Microsecond),
		div.Trace.Total.Round(time.Microsecond))
}
