// Tourplanner: diversified search for trip planning — pick k hotels that
// all offer the wanted amenities, close to the conference venue but spread
// across town so day trips from them cover different neighbourhoods. The
// example contrasts the incremental COM algorithm against the SEQ
// baseline and shows how the relevance/diversity knob λ changes the
// picks, mirroring Figures 14 and 15 of the paper.
//
// Run with:
//
//	go run ./examples/tourplanner
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"dsks"
)

func main() {
	fmt.Println("generating a metropolitan area (1/300 of the paper's NA scale)...")
	ds, err := dsks.GeneratePreset(dsks.PresetNA, 300, 23)
	if err != nil {
		log.Fatal(err)
	}
	db, err := dsks.OpenDataset(ds, dsks.Options{Index: dsks.IndexSIF})
	if err != nil {
		log.Fatal(err)
	}
	queries, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: 30, Keywords: 2, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Find a workload query with a healthy number of matches to narrate.
	var venue dsks.WorkloadQuery
	best := 0
	for _, q := range queries {
		res, err := db.Search(dsks.SKQuery{Pos: q.Pos, Terms: q.Terms, DeltaMax: q.DeltaMax})
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Candidates) > best {
			best = len(res.Candidates)
			venue = q
		}
	}
	if best < 4 {
		log.Fatalf("dataset too sparse for the demo (best query matched %d)", best)
	}
	fmt.Printf("venue on street %d; %d hotels offer amenities %v within %.0fm\n\n",
		venue.Pos.Edge, best, venue.Terms, venue.DeltaMax)

	// λ sweep: higher λ favours closeness, lower λ favours spread. The
	// whole sweep runs inside one read view, so every λ is scored against
	// the same pinned snapshot even if hotels were being inserted
	// concurrently — comparing picks across λ only makes sense when all
	// three queries saw identical data.
	ctx := context.Background()
	view, err := db.View(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("effect of the relevance/diversity trade-off (k = 4, snapshot LSN %d):\n", view.LSN())
	for _, lambda := range []float64{0.9, 0.7, 0.5} {
		res, err := view.SearchDiversified(ctx, dsks.DivQuery{
			SKQuery: dsks.SKQuery{Pos: venue.Pos, Terms: venue.Terms, DeltaMax: venue.DeltaMax},
			K:       4,
			Lambda:  lambda,
		})
		if err != nil {
			log.Fatal(err)
		}
		var avgDist, minPair float64
		minPair = -1
		for i, c := range res.Candidates {
			avgDist += c.Dist
			for _, d := range res.Candidates[i+1:] {
				pd, err := view.NetworkDistance(ctx, c.Ref.Pos(), d.Ref.Pos())
				if err != nil {
					log.Fatal(err)
				}
				if minPair < 0 || pd < minPair {
					minPair = pd
				}
			}
		}
		if n := float64(len(res.Candidates)); n > 0 {
			avgDist /= n
		}
		fmt.Printf("  λ = %.1f: f = %.3f, avg hotel distance %5.0fm, closest pair %5.0fm apart\n",
			lambda, res.F, avgDist, minPair)
	}
	view.Close() // release the pin so storage can reclaim old versions

	// COM vs SEQ over the whole workload (k = 10, λ = 0.8 — the paper's
	// defaults). COM prunes and terminates early; SEQ retrieves everything.
	fmt.Println("\nincremental COM vs SEQ baseline over 30 queries (k = 10, λ = 0.8):")
	for _, algo := range []dsks.Algo{dsks.AlgoSEQ, dsks.AlgoCOM} {
		if err := db.ResetIO(); err != nil {
			log.Fatal(err)
		}
		var elapsed time.Duration
		var reads, pruned int64
		var early int
		for _, q := range queries {
			res, err := db.SearchDiversifiedWith(algo, dsks.DivQuery{
				SKQuery: dsks.SKQuery{Pos: q.Pos, Terms: q.Terms, DeltaMax: q.DeltaMax},
				K:       10,
				Lambda:  0.8,
			})
			if err != nil {
				log.Fatal(err)
			}
			elapsed += res.Elapsed
			reads += res.DiskReads
			pruned += res.Stats.Pruned
			if res.Stats.EarlyTerminate {
				early++
			}
		}
		n := int64(len(queries))
		fmt.Printf("  %-4s avg %-10v avg disk reads %6.1f  pruned %3d objects, early-stopped %d/%d queries\n",
			algo, (elapsed / time.Duration(n)).Round(time.Microsecond),
			float64(reads)/float64(n), pruned, early, len(queries))
	}

	// An interactive planner wants to abandon a query the moment the user
	// navigates away: every search has a context-aware variant.
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the user already left
	_, err = db.SearchDiversifiedCtx(ctx, dsks.DivQuery{
		SKQuery: dsks.SKQuery{Pos: venue.Pos, Terms: venue.Terms, DeltaMax: venue.DeltaMax},
		K:       4,
		Lambda:  0.8,
	})
	fmt.Printf("\ncanceled mid-flight: errors.Is(err, dsks.ErrCanceled) = %v\n",
		errors.Is(err, dsks.ErrCanceled))
}
