// Importer: the ingestion pipeline for raw point data — the preprocessing
// step the paper applies to GeoNames and geo-tweets, where "we move an
// object to its closest road segment if it does not lie on any edge in
// the road network". Raw POIs arrive as free coordinates plus text; the
// pipeline snaps each to its nearest road segment, tokenizes the text
// into the vocabulary, indexes everything, and answers a query.
//
// Run with:
//
//	go run ./examples/importer
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"dsks"
)

// rawPOI is what an external feed would deliver: coordinates + text.
type rawPOI struct {
	Name string
	Loc  dsks.Point
	Text string
}

func main() {
	// A mid-sized generated road network stands in for the city map.
	g, err := dsks.GenerateNetwork(dsks.NetworkConfig{
		Nodes: 900, EdgeFactor: 1.4, Jitter: 0.3, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d intersections, %d segments\n", g.NumNodes(), g.NumEdges())

	// Raw feed: a few named POIs plus a bulk of synthetic ones scattered
	// around the map, none of them on a road segment.
	categories := []string{
		"cafe espresso breakfast",
		"pizza italian delivery",
		"museum art exhibition",
		"hotel rooftop bar",
		"pharmacy open late",
	}
	rng := rand.New(rand.NewSource(7))
	feed := []rawPOI{
		{"Blue Door Cafe", dsks.Point{X: 2310, Y: 4070}, "cafe espresso breakfast pastry"},
		{"Luigi's", dsks.Point{X: 2480, Y: 4140}, "pizza italian delivery"},
		{"City Museum", dsks.Point{X: 7770, Y: 2210}, "museum art exhibition sculpture"},
	}
	for i := 0; i < 3000; i++ {
		feed = append(feed, rawPOI{
			Name: fmt.Sprintf("poi-%04d", i),
			Loc:  dsks.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000},
			Text: categories[rng.Intn(len(categories))],
		})
	}

	// Ingestion: snap + tokenize + collect.
	snapper, err := dsks.NewSnapper(g)
	if err != nil {
		log.Fatal(err)
	}
	vocab := dsks.NewVocabulary()
	objects := dsks.NewCollection()
	names := map[dsks.ObjectID]string{}
	var worstSnap float64
	for _, poi := range feed {
		pos, snapDist, err := snapper.Snap(poi.Loc)
		if err != nil {
			log.Fatal(err)
		}
		if snapDist > worstSnap {
			worstSnap = snapDist
		}
		id := objects.Add(pos, vocab.InternAll(strings.Fields(poi.Text)))
		names[id] = poi.Name
	}
	fmt.Printf("ingested %d POIs (worst snap distance %.1f map units), vocabulary %d terms\n",
		objects.Len(), worstSnap, vocab.Size())

	db, err := dsks.Open(g, objects, vocab.Size(), dsks.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Query: the 5 nearest espresso cafes from Luigi's front door.
	luigi, _, err := snapper.Snap(dsks.Point{X: 2480, Y: 4140})
	if err != nil {
		log.Fatal(err)
	}
	terms, err := vocab.LookupAll([]string{"cafe", "espresso"})
	if err != nil {
		log.Fatal(err)
	}
	// A serving path would bound every lookup; the context-aware variant
	// aborts cleanly if the deadline passes mid-expansion.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := db.SearchKNNCtx(ctx, dsks.KNNQuery{Pos: luigi, Terms: terms, K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n5 nearest espresso cafes from Luigi's:")
	for i, c := range res.Candidates {
		fmt.Printf("  %d. %-14s %6.0f map units along the roads\n",
			i+1, names[c.Ref.ID], c.Dist)
	}
}
