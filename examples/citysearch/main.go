// Citysearch: local-search over a city-scale dataset — the yellow-pages
// scenario the paper's introduction motivates. A San-Francisco-like
// network is generated, businesses with Zipf-distributed service keywords
// are placed on its streets, and the same boolean query workload is run
// against all four index structures of the paper to show why the
// signature-based inverted file (SIF/SIF-P) is the one you want.
//
// Run with:
//
//	go run ./examples/citysearch
package main

import (
	"fmt"
	"log"
	"time"

	"dsks"
)

func main() {
	fmt.Println("generating a San-Francisco-like city (1/400 of paper scale)...")
	ds, err := dsks.GeneratePreset(dsks.PresetSF, 400, 7)
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Printf("  %d intersections, %d streets, %d businesses, %d distinct keywords\n\n",
		st.Nodes, st.Edges, st.Objects, st.VocabSize)

	queries, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: 50,
		Keywords:   3, // e.g. "pizza delivery vegan"
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("index structure comparison over the same 50-query workload:")
	fmt.Printf("  %-6s  %-10s  %-10s  %-12s  %s\n",
		"index", "build", "size", "avg query", "avg disk reads")
	for _, kind := range []dsks.IndexKind{dsks.IndexIR, dsks.IndexIF, dsks.IndexSIF, dsks.IndexSIFP} {
		db, err := dsks.OpenDataset(ds, dsks.Options{Index: kind})
		if err != nil {
			log.Fatal(err)
		}
		if err := db.ResetIO(); err != nil {
			log.Fatal(err)
		}
		for _, q := range queries {
			if _, err := db.Search(dsks.SKQuery{Pos: q.Pos, Terms: q.Terms, DeltaMax: q.DeltaMax}); err != nil {
				log.Fatal(err)
			}
		}
		// The per-query accounting lives in the metrics registry: latency
		// quantiles and cost counters per query kind, hit rates per pool.
		snap := db.Snapshot()
		qs := snap.Queries[dsks.KindSearch]
		fmt.Printf("  %-6s  %-10v  %6.2f MB  %12v  %8.1f\n",
			kind, db.BuildTime().Round(time.Millisecond),
			float64(db.IndexSizeBytes())/(1<<20),
			qs.Mean.Round(time.Microsecond),
			float64(qs.DiskReads)/float64(qs.Count))
	}

	// One concrete search, spelled out.
	db, err := dsks.OpenDataset(ds, dsks.Options{Index: dsks.IndexSIFP})
	if err != nil {
		log.Fatal(err)
	}
	q := queries[0]
	res, err := db.Search(dsks.SKQuery{Pos: q.Pos, Terms: q.Terms, DeltaMax: q.DeltaMax})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample query: keywords %v within %.0fm of street %d\n",
		q.Terms, q.DeltaMax, q.Pos.Edge)
	fmt.Printf("  %d matching businesses; nearest three:\n", len(res.Candidates))
	for i, c := range res.Candidates {
		if i == 3 {
			break
		}
		fmt.Printf("  business %d on street %d, %.0fm down the road network\n",
			c.Ref.ID, c.Ref.Edge, c.Dist)
	}

	snap := db.Snapshot()
	qs := snap.Queries[dsks.KindSearch]
	fmt.Printf("\nobservability: %d search queries, p50 %v, p95 %v\n",
		qs.Count, qs.P50.Round(time.Microsecond), qs.P95.Round(time.Microsecond))
	for _, name := range snap.PoolNames() {
		p := snap.Pools[name]
		fmt.Printf("  pool %-10s %6d reads, %5.1f%% served from buffer\n",
			name, p.LogicalReads, 100*p.HitRate)
	}
}
