package dsks_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"dsks"
)

// viewTestDB builds the small synthetic graph shared by the view tests:
// every third edge carries one object tagged with term 0 plus one other
// term, so a term-0 range query with a huge radius enumerates exactly
// the seeded objects.
func viewTestDB(t *testing.T, opts dsks.Options) *dsks.DB {
	t.Helper()
	g, err := dsks.GenerateNetwork(dsks.NetworkConfig{Nodes: 30, EdgeFactor: 1.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	col := dsks.NewCollection()
	const vocab = 8
	for e := 0; e < g.NumEdges(); e += 3 {
		col.Add(dsks.Position{Edge: dsks.EdgeID(e), Offset: 1},
			[]dsks.TermID{0, dsks.TermID(1 + e%(vocab-1))})
	}
	db, err := dsks.Open(g, col, vocab, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

var viewTestQuery = dsks.SKQuery{
	Pos: dsks.Position{Edge: 0, Offset: 0}, Terms: []dsks.TermID{0}, DeltaMax: 1e9,
}

// TestViewSnapshotIsolation pins a view, mutates the database, and
// checks that the pinned view keeps answering from its commit point
// while a freshly opened view sees the mutation.
func TestViewSnapshotIsolation(t *testing.T) {
	db := viewTestDB(t, dsks.Options{Index: dsks.IndexSIF})
	ctx := context.Background()

	old, err := db.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	base, err := old.Search(ctx, viewTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Candidates) == 0 {
		t.Fatal("seed query returned no candidates")
	}
	oldLSN, oldLive := old.LSN(), old.LiveObjects()

	id, err := db.Insert(dsks.Position{Edge: 1, Offset: 0.5}, []dsks.TermID{0, 1})
	if err != nil {
		t.Fatal(err)
	}

	// The pinned view is frozen at its LSN: same live count, same result.
	if got := old.LSN(); got != oldLSN {
		t.Fatalf("pinned view LSN moved: %d -> %d", oldLSN, got)
	}
	if got := old.LiveObjects(); got != oldLive {
		t.Fatalf("pinned view LiveObjects moved: %d -> %d", oldLive, got)
	}
	again, err := old.Search(ctx, viewTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Candidates) != len(base.Candidates) {
		t.Fatalf("pinned view saw the insert: %d candidates, want %d",
			len(again.Candidates), len(base.Candidates))
	}

	// A view opened after the commit sees it.
	fresh, err := db.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.LSN() <= oldLSN {
		t.Fatalf("fresh view LSN = %d, want > %d", fresh.LSN(), oldLSN)
	}
	if got, want := fresh.LiveObjects(), oldLive+1; got != want {
		t.Fatalf("fresh view LiveObjects = %d, want %d", got, want)
	}
	after, err := fresh.Search(ctx, viewTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(after.Candidates), len(base.Candidates)+1; got != want {
		t.Fatalf("fresh view candidates = %d, want %d", got, want)
	}

	// Remove restores the old cardinality for yet another view, while
	// the fresh view stays pinned at its own commit point.
	if err := db.Remove(id); err != nil {
		t.Fatal(err)
	}
	if got, want := fresh.LiveObjects(), oldLive+1; got != want {
		t.Fatalf("fresh view LiveObjects after Remove = %d, want %d", got, want)
	}
	last, err := db.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer last.Close()
	if got := last.LiveObjects(); got != oldLive {
		t.Fatalf("post-remove view LiveObjects = %d, want %d", got, oldLive)
	}
}

// TestViewClosedErrors checks the lifecycle contract: Close is
// idempotent and every query on a closed view fails with ErrViewClosed.
func TestViewClosedErrors(t *testing.T) {
	db := viewTestDB(t, dsks.Options{Index: dsks.IndexIF})
	ctx := context.Background()

	v, err := db.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Search(ctx, viewTestQuery); err != nil {
		t.Fatal(err)
	}
	v.Close()
	v.Close() // idempotent

	if _, err := v.Search(ctx, viewTestQuery); !errors.Is(err, dsks.ErrViewClosed) {
		t.Fatalf("Search on closed view: err = %v, want ErrViewClosed", err)
	}
	dq := dsks.DivQuery{SKQuery: viewTestQuery, K: 2, Lambda: 0.5}
	if _, err := v.SearchDiversified(ctx, dq); !errors.Is(err, dsks.ErrViewClosed) {
		t.Fatalf("SearchDiversified on closed view: err = %v, want ErrViewClosed", err)
	}
	if _, err := v.Stream(ctx, viewTestQuery); !errors.Is(err, dsks.ErrViewClosed) {
		t.Fatalf("Stream on closed view: err = %v, want ErrViewClosed", err)
	}
	if _, err := v.NetworkDistance(ctx, viewTestQuery.Pos, viewTestQuery.Pos); !errors.Is(err, dsks.ErrViewClosed) {
		t.Fatalf("NetworkDistance on closed view: err = %v, want ErrViewClosed", err)
	}
}

// TestViewCloseDeterministic closes one view from many goroutines at
// once and checks the lifecycle stays deterministic: the pin is
// released exactly once (the race detector would flag a double-unpin),
// every query method — including the ranked, kNN, and collective
// entry points not covered above — fails with ErrViewClosed
// afterwards, and the database remains fully usable.
func TestViewCloseDeterministic(t *testing.T) {
	db := viewTestDB(t, dsks.Options{Index: dsks.IndexIF})
	ctx := context.Background()

	v, err := db.View(ctx)
	if err != nil {
		t.Fatal(err)
	}

	knn := dsks.KNNQuery{Pos: viewTestQuery.Pos, Terms: []dsks.TermID{0}, K: 2, MaxDist: 1e9}
	ranked := dsks.RankedQuery{Pos: viewTestQuery.Pos, Terms: []dsks.TermID{0}, K: 2, Alpha: 0.5, DeltaMax: 1e9}
	coll := dsks.CollectiveQuery{Pos: viewTestQuery.Pos, Terms: []dsks.TermID{0, 1}, DeltaMax: 1e9}
	dq := dsks.DivQuery{SKQuery: viewTestQuery, K: 2, Lambda: 0.5}

	// Each entry point works on the open view, so a post-close failure
	// below can only come from the closed check, not the query itself.
	if _, err := v.SearchKNN(ctx, knn); err != nil {
		t.Fatalf("SearchKNN on open view: %v", err)
	}
	if _, err := v.SearchRanked(ctx, ranked); err != nil {
		t.Fatalf("SearchRanked on open view: %v", err)
	}
	if _, err := v.SearchCollective(ctx, coll); err != nil {
		t.Fatalf("SearchCollective on open view: %v", err)
	}
	if _, err := v.SearchDiversifiedWith(ctx, dsks.AlgoSEQ, dq); err != nil {
		t.Fatalf("SearchDiversifiedWith on open view: %v", err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.Close()
		}()
	}
	wg.Wait()

	if _, err := v.SearchKNN(ctx, knn); !errors.Is(err, dsks.ErrViewClosed) {
		t.Fatalf("SearchKNN on closed view: err = %v, want ErrViewClosed", err)
	}
	if _, err := v.SearchRanked(ctx, ranked); !errors.Is(err, dsks.ErrViewClosed) {
		t.Fatalf("SearchRanked on closed view: err = %v, want ErrViewClosed", err)
	}
	if _, err := v.SearchCollective(ctx, coll); !errors.Is(err, dsks.ErrViewClosed) {
		t.Fatalf("SearchCollective on closed view: err = %v, want ErrViewClosed", err)
	}
	if _, err := v.SearchDiversifiedWith(ctx, dsks.AlgoSEQ, dq); !errors.Is(err, dsks.ErrViewClosed) {
		t.Fatalf("SearchDiversifiedWith on closed view: err = %v, want ErrViewClosed", err)
	}

	// The racing Close calls released the single pin without corrupting
	// the epoch table: mutations still commit and a fresh view observes
	// them at a later LSN.
	id, err := db.Insert(dsks.Position{Edge: 1, Offset: 0}, []dsks.TermID{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	after, err := db.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	if after.LSN() <= v.LSN() {
		t.Fatalf("post-close view LSN = %d, want > %d", after.LSN(), v.LSN())
	}
	if err := db.Remove(id); err != nil {
		t.Fatal(err)
	}
}

// TestReaderStarvation runs a mutation storm against concurrent view
// readers and proves each result is consistent with exactly one
// published LSN. The protocol: the single mutator holds a test-side
// mutex across each Insert and its acknowledgement, so any reader that
// opens a view under the same mutex knows precisely how many inserts
// have committed — and therefore exactly how many term-0 objects its
// snapshot must contain. A view whose root set mixed two commits, or
// that observed a commit its LSN predates, fails the count check.
func TestReaderStarvation(t *testing.T) {
	db := viewTestDB(t, dsks.Options{Index: dsks.IndexSIF})
	ctx := context.Background()

	seed, err := db.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	base, err := seed.Search(ctx, viewTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	seed.Close()
	seedCount := len(base.Candidates)
	if seedCount == 0 {
		t.Fatal("seed query returned no candidates; the race would be vacuous")
	}

	const (
		readers    = 4
		iterations = 25
		inserts    = 40
	)
	var (
		ackMu   sync.Mutex
		acked   int    // inserts committed and acknowledged
		ackLSN  uint64 // db LSN at the last acknowledgement
		wg      sync.WaitGroup
		errs    = make(chan error, readers+1)
		failMu  sync.Mutex
		failure string
	)
	ackLSN = db.LSN()

	fail := func(msg string) {
		failMu.Lock()
		if failure == "" {
			failure = msg
		}
		failMu.Unlock()
	}

	wg.Add(1)
	go func() { // the storm: term-0 inserts, each acknowledged under ackMu
		defer wg.Done()
		for i := 0; i < inserts; i++ {
			ackMu.Lock()
			_, err := db.Insert(dsks.Position{Edge: dsks.EdgeID(1 + i%5), Offset: 0.5},
				[]dsks.TermID{0, dsks.TermID(1 + i%7)})
			if err != nil {
				ackMu.Unlock()
				errs <- err
				return
			}
			acked++
			ackLSN = db.LSN()
			ackMu.Unlock()
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				// Open the view while no insert can be in flight: the
				// snapshot must hold exactly seedCount+acked term-0
				// objects at exactly ackLSN.
				ackMu.Lock()
				v, err := db.View(ctx)
				want := seedCount + acked
				wantLSN := ackLSN
				ackMu.Unlock()
				if err != nil {
					errs <- err
					return
				}
				if got := v.LSN(); got != wantLSN {
					fail(fmt.Sprintf("view LSN %d != acknowledged LSN %d", got, wantLSN))
				}
				// The query itself runs latch-free, racing later inserts;
				// its answer must still match the pinned commit point.
				res, err := v.Search(ctx, viewTestQuery)
				if err != nil {
					v.Close()
					errs <- err
					return
				}
				if len(res.Candidates) != want {
					fail(fmt.Sprintf("view@%d returned %d candidates, want %d",
						v.LSN(), len(res.Candidates), want))
				}
				v.Close()
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if failure != "" {
		t.Fatal(failure)
	}
	if got, want := db.LiveObjects(), seedCount+inserts; got != want {
		t.Fatalf("LiveObjects after the storm = %d, want %d", got, want)
	}
}

// TestViewPinnedAcrossSaveAndCheckpoint races view-pinned readers
// against SaveTo (snapshot + WAL checkpoint, which folds old page
// versions) and a mutator. A view opened before the churn must keep
// answering from its original commit point for its whole lifetime —
// the epoch pin has to hold the fold horizon back until it closes.
func TestViewPinnedAcrossSaveAndCheckpoint(t *testing.T) {
	tmp := t.TempDir()
	db := viewTestDB(t, dsks.Options{Index: dsks.IndexSIF, WALDir: filepath.Join(tmp, "wal")})
	ctx := context.Background()
	snapDir := filepath.Join(tmp, "snap")

	pinned, err := db.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()
	base, err := pinned.Search(ctx, viewTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Candidates) == 0 {
		t.Fatal("seed query returned no candidates")
	}
	pinLSN, pinLive := pinned.LSN(), pinned.LiveObjects()

	const iterations = 10
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	wg.Add(1)
	go func() { // mutator: net +1 object per iteration
		defer wg.Done()
		for i := 0; i < iterations; i++ {
			id, err := db.Insert(dsks.Position{Edge: dsks.EdgeID(1 + i%5), Offset: 0.5},
				[]dsks.TermID{0, 1})
			if err != nil {
				errs <- err
				return
			}
			if i%2 == 1 {
				if err := db.Remove(id); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // saver: snapshot + checkpoint folds page versions
		defer wg.Done()
		for i := 0; i < iterations/2; i++ {
			if err := db.SaveTo(snapDir); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // short-lived views racing the fold horizon
		defer wg.Done()
		for i := 0; i < iterations; i++ {
			v, err := db.View(ctx)
			if err != nil {
				errs <- err
				return
			}
			if _, err := v.Search(ctx, viewTestQuery); err != nil {
				v.Close()
				errs <- err
				return
			}
			v.Close()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The long-lived pin survived every save and checkpoint untouched.
	if got := pinned.LSN(); got != pinLSN {
		t.Fatalf("pinned LSN after churn = %d, want %d", got, pinLSN)
	}
	if got := pinned.LiveObjects(); got != pinLive {
		t.Fatalf("pinned LiveObjects after churn = %d, want %d", got, pinLive)
	}
	res, err := pinned.Search(ctx, viewTestQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != len(base.Candidates) {
		t.Fatalf("pinned view after churn: %d candidates, want %d",
			len(res.Candidates), len(base.Candidates))
	}
	// And once it closes, reclamation may proceed and the present state
	// is what a fresh view reports.
	pinned.Close()
	now, err := db.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer now.Close()
	if got, want := now.LiveObjects(), pinLive+(iterations+1)/2; got != want {
		t.Fatalf("fresh view LiveObjects = %d, want %d", got, want)
	}
}
