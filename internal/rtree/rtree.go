// Package rtree implements a disk-resident R-tree over rectangles with
// uint64 payloads, stored in 4KB pages behind a buffer pool. It serves two
// roles from the paper: the network R-tree over edge MBRs (used to identify
// the edge an object lies on / snap objects to their closest road segment,
// Section 2.2) and the per-keyword trees of the Inverted R-tree baseline
// (IR, Section 5).
//
// Construction is by STR (sort-tile-recursive) bulk loading; incremental
// insertion with linear split is also provided.
package rtree

import (
	"container/heap"
	"context"
	"math"
	"sort"

	"dsks/internal/geo"
	"dsks/internal/storage"
)

// Entry is a rectangle with its payload reference.
type Entry struct {
	Rect geo.Rect
	Ref  uint64
}

// Page layout:
//
//	header: kind uint16 (1 = leaf, 2 = internal), count uint16
//	entry:  minX, minY, maxX, maxY float64, then ref uint64 (leaf)
//	        or child uint32 (internal)
const (
	kindLeaf     = 1
	kindInternal = 2

	headerSize = 4
	rectSize   = 32
	leafEntry  = rectSize + 8
	innerEntry = rectSize + 4

	// MaxLeafEntries and MaxInternalEntries are per-page fan-outs.
	MaxLeafEntries     = (storage.PageSize - headerSize) / leafEntry
	MaxInternalEntries = (storage.PageSize - headerSize) / innerEntry
)

// Tree is an R-tree handle.
type Tree struct {
	pool   *storage.BufferPool
	root   storage.PageID
	height int
	count  int
	pages  int
}

// New creates an empty tree.
func New(pool *storage.BufferPool) (*Tree, error) {
	t := &Tree{pool: pool}
	id, err := t.newPage(kindLeaf)
	if err != nil {
		return nil, err
	}
	t.root = id
	t.height = 1
	return t, nil
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.count }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// NumPages returns the number of pages occupied.
func (t *Tree) NumPages() int { return t.pages }

// SizeBytes returns the on-disk footprint.
func (t *Tree) SizeBytes() int64 { return int64(t.pages) * storage.PageSize }

func (t *Tree) newPage(kind uint16) (storage.PageID, error) {
	p, err := t.pool.Allocate()
	if err != nil {
		return storage.InvalidPageID, err
	}
	p.PutUint16(0, kind)
	p.PutUint16(2, 0)
	t.pool.MarkDirty(p.ID())
	t.pages++
	return p.ID(), nil
}

func pageKind(p *storage.Page) uint16 { return p.Uint16(0) }
func pageCount(p *storage.Page) int   { return int(p.Uint16(2)) }
func setCount(p *storage.Page, n int) { p.PutUint16(2, uint16(n)) }

func entryOff(kind uint16, i int) int {
	if kind == kindLeaf {
		return headerSize + i*leafEntry
	}
	return headerSize + i*innerEntry
}

func readRect(p *storage.Page, off int) geo.Rect {
	return geo.Rect{
		MinX: p.Float64(off),
		MinY: p.Float64(off + 8),
		MaxX: p.Float64(off + 16),
		MaxY: p.Float64(off + 24),
	}
}

func writeRect(p *storage.Page, off int, r geo.Rect) {
	p.PutFloat64(off, r.MinX)
	p.PutFloat64(off+8, r.MinY)
	p.PutFloat64(off+16, r.MaxX)
	p.PutFloat64(off+24, r.MaxY)
}

func leafRef(p *storage.Page, i int) uint64 { return p.Uint64(entryOff(kindLeaf, i) + rectSize) }
func setLeafEntry(p *storage.Page, i int, e Entry) {
	off := entryOff(kindLeaf, i)
	writeRect(p, off, e.Rect)
	p.PutUint64(off+rectSize, e.Ref)
}

func innerChild(p *storage.Page, i int) storage.PageID {
	return storage.PageID(p.Uint32(entryOff(kindInternal, i) + rectSize))
}
func setInnerEntry(p *storage.Page, i int, r geo.Rect, child storage.PageID) {
	off := entryOff(kindInternal, i)
	writeRect(p, off, r)
	p.PutUint32(off+rectSize, uint32(child))
}

func nodeMBR(p *storage.Page) geo.Rect {
	r := geo.EmptyRect()
	kind, n := pageKind(p), pageCount(p)
	for i := 0; i < n; i++ {
		r.Expand(readRect(p, entryOff(kind, i)))
	}
	return r
}

// --- bulk load --------------------------------------------------------------

// BulkLoad builds a tree over entries using sort-tile-recursive packing.
func BulkLoad(pool *storage.BufferPool, entries []Entry) (*Tree, error) {
	t := &Tree{pool: pool}
	if len(entries) == 0 {
		return New(pool)
	}
	type nodeRef struct {
		id  storage.PageID
		mbr geo.Rect
	}

	perLeaf := MaxLeafEntries * 3 / 4
	if perLeaf < 1 {
		perLeaf = 1
	}
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	strSortEntries(sorted, perLeaf)

	var level []nodeRef
	for start := 0; start < len(sorted); start += perLeaf {
		end := start + perLeaf
		if end > len(sorted) {
			end = len(sorted)
		}
		id, err := t.newPage(kindLeaf)
		if err != nil {
			return nil, err
		}
		p, err := pool.Get(id)
		if err != nil {
			return nil, err
		}
		setCount(p, end-start)
		mbr := geo.EmptyRect()
		for j := start; j < end; j++ {
			setLeafEntry(p, j-start, sorted[j])
			mbr.Expand(sorted[j].Rect)
		}
		pool.MarkDirty(id)
		level = append(level, nodeRef{id, mbr})
	}
	t.height = 1

	perNode := MaxInternalEntries * 3 / 4
	if perNode < 2 {
		perNode = 2
	}
	for len(level) > 1 {
		// Re-tile the child MBRs by center, like the leaf level.
		sort.Slice(level, func(i, j int) bool {
			return level[i].mbr.Center().X < level[j].mbr.Center().X
		})
		sliceLen := perNode * int(math.Ceil(math.Sqrt(float64((len(level)+perNode-1)/perNode))))
		if sliceLen < perNode {
			sliceLen = perNode
		}
		for s := 0; s < len(level); s += sliceLen {
			e := s + sliceLen
			if e > len(level) {
				e = len(level)
			}
			part := level[s:e]
			sort.Slice(part, func(i, j int) bool {
				return part[i].mbr.Center().Y < part[j].mbr.Center().Y
			})
		}
		var next []nodeRef
		for start := 0; start < len(level); start += perNode {
			end := start + perNode
			if end > len(level) {
				end = len(level)
			}
			id, err := t.newPage(kindInternal)
			if err != nil {
				return nil, err
			}
			p, err := pool.Get(id)
			if err != nil {
				return nil, err
			}
			setCount(p, end-start)
			mbr := geo.EmptyRect()
			for j := start; j < end; j++ {
				setInnerEntry(p, j-start, level[j].mbr, level[j].id)
				mbr.Expand(level[j].mbr)
			}
			pool.MarkDirty(id)
			next = append(next, nodeRef{id, mbr})
		}
		level = next
		t.height++
	}
	t.root = level[0].id
	t.count = len(entries)
	if err := pool.Flush(); err != nil {
		return nil, err
	}
	return t, nil
}

// strSortEntries orders entries by STR tiling: slices by center X, within a
// slice by center Y.
func strSortEntries(es []Entry, perLeaf int) {
	sort.Slice(es, func(i, j int) bool {
		return es[i].Rect.Center().X < es[j].Rect.Center().X
	})
	numLeaves := (len(es) + perLeaf - 1) / perLeaf
	slices := int(math.Ceil(math.Sqrt(float64(numLeaves))))
	if slices < 1 {
		slices = 1
	}
	sliceLen := perLeaf * int(math.Ceil(float64(numLeaves)/float64(slices)))
	if sliceLen < perLeaf {
		sliceLen = perLeaf
	}
	for s := 0; s < len(es); s += sliceLen {
		e := s + sliceLen
		if e > len(es) {
			e = len(es)
		}
		part := es[s:e]
		sort.Slice(part, func(i, j int) bool {
			return part[i].Rect.Center().Y < part[j].Rect.Center().Y
		})
	}
}

// --- insert -----------------------------------------------------------------

// Insert adds an entry, splitting nodes on overflow (linear split).
func (t *Tree) Insert(e Entry) error {
	split, err := t.insertAt(t.root, t.height, e)
	if err != nil {
		return err
	}
	if split != nil {
		rootID, err := t.newPage(kindInternal)
		if err != nil {
			return err
		}
		p, err := t.pool.Get(rootID)
		if err != nil {
			return err
		}
		old, err := t.pool.Get(t.root)
		if err != nil {
			return err
		}
		oldMBR := nodeMBR(old)
		p, err = t.pool.Get(rootID)
		if err != nil {
			return err
		}
		setCount(p, 2)
		setInnerEntry(p, 0, oldMBR, t.root)
		setInnerEntry(p, 1, split.mbr, split.id)
		t.pool.MarkDirty(rootID)
		t.root = rootID
		t.height++
	}
	t.count++
	return nil
}

type splitNode struct {
	id  storage.PageID
	mbr geo.Rect
}

func (t *Tree) insertAt(id storage.PageID, level int, e Entry) (*splitNode, error) {
	p, err := t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	if pageKind(p) == kindLeaf {
		return t.insertLeaf(id, e)
	}
	// Choose subtree: least enlargement, ties by area.
	n := pageCount(p)
	best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
	for i := 0; i < n; i++ {
		r := readRect(p, entryOff(kindInternal, i))
		enl, area := r.Enlargement(e.Rect), r.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	child := innerChild(p, best)
	split, err := t.insertAt(child, level-1, e)
	if err != nil {
		return nil, err
	}
	// Refresh the chosen entry's MBR.
	cp, err := t.pool.Get(child)
	if err != nil {
		return nil, err
	}
	childMBR := nodeMBR(cp)
	p, err = t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	setInnerEntry(p, best, childMBR, child)
	t.pool.MarkDirty(id)
	if split == nil {
		return nil, nil
	}
	return t.addInnerEntry(id, *split)
}

func (t *Tree) insertLeaf(id storage.PageID, e Entry) (*splitNode, error) {
	p, err := t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	n := pageCount(p)
	if n < MaxLeafEntries {
		setLeafEntry(p, n, e)
		setCount(p, n+1)
		t.pool.MarkDirty(id)
		return nil, nil
	}
	// Overflow: linear split by the axis with the widest spread of centers.
	all := make([]Entry, 0, n+1)
	for i := 0; i < n; i++ {
		all = append(all, Entry{readRect(p, entryOff(kindLeaf, i)), leafRef(p, i)})
	}
	all = append(all, e)
	left, right := linearSplit(all)

	rightID, err := t.newPage(kindLeaf)
	if err != nil {
		return nil, err
	}
	lp, err := t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	setCount(lp, len(left))
	for i, le := range left {
		setLeafEntry(lp, i, le)
	}
	t.pool.MarkDirty(id)
	rp, err := t.pool.Get(rightID)
	if err != nil {
		return nil, err
	}
	setCount(rp, len(right))
	mbr := geo.EmptyRect()
	for i, re := range right {
		setLeafEntry(rp, i, re)
		mbr.Expand(re.Rect)
	}
	t.pool.MarkDirty(rightID)
	return &splitNode{rightID, mbr}, nil
}

func (t *Tree) addInnerEntry(id storage.PageID, s splitNode) (*splitNode, error) {
	p, err := t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	n := pageCount(p)
	if n < MaxInternalEntries {
		setInnerEntry(p, n, s.mbr, s.id)
		setCount(p, n+1)
		t.pool.MarkDirty(id)
		return nil, nil
	}
	type innerEnt struct {
		rect  geo.Rect
		child storage.PageID
	}
	all := make([]innerEnt, 0, n+1)
	for i := 0; i < n; i++ {
		all = append(all, innerEnt{readRect(p, entryOff(kindInternal, i)), innerChild(p, i)})
	}
	all = append(all, innerEnt{s.mbr, s.id})
	sort.Slice(all, func(i, j int) bool {
		return all[i].rect.Center().X < all[j].rect.Center().X
	})
	mid := len(all) / 2
	lp, err := t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	setCount(lp, mid)
	for i := 0; i < mid; i++ {
		setInnerEntry(lp, i, all[i].rect, all[i].child)
	}
	t.pool.MarkDirty(id)
	rightID, err := t.newPage(kindInternal)
	if err != nil {
		return nil, err
	}
	rp, err := t.pool.Get(rightID)
	if err != nil {
		return nil, err
	}
	setCount(rp, len(all)-mid)
	mbr := geo.EmptyRect()
	for i := mid; i < len(all); i++ {
		setInnerEntry(rp, i-mid, all[i].rect, all[i].child)
		mbr.Expand(all[i].rect)
	}
	t.pool.MarkDirty(rightID)
	return &splitNode{rightID, mbr}, nil
}

// linearSplit partitions entries into two halves along the axis with the
// widest center spread.
func linearSplit(all []Entry) (left, right []Entry) {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, e := range all {
		c := e.Rect.Center()
		minX, maxX = math.Min(minX, c.X), math.Max(maxX, c.X)
		minY, maxY = math.Min(minY, c.Y), math.Max(maxY, c.Y)
	}
	byX := maxX-minX >= maxY-minY
	sort.Slice(all, func(i, j int) bool {
		ci, cj := all[i].Rect.Center(), all[j].Rect.Center()
		if byX {
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})
	mid := len(all) / 2
	return all[:mid], all[mid:]
}

// --- queries ----------------------------------------------------------------

// Search calls fn for every stored entry whose rectangle intersects query,
// until fn returns false.
func (t *Tree) Search(query geo.Rect, fn func(Entry) bool) error {
	return t.SearchCtx(context.Background(), query, fn)
}

// SearchCtx is Search with cancellation: a done ctx aborts the traversal
// before the next page read.
func (t *Tree) SearchCtx(ctx context.Context, query geo.Rect, fn func(Entry) bool) error {
	_, err := t.search(ctx, t.root, query, fn)
	return err
}

func (t *Tree) search(ctx context.Context, id storage.PageID, query geo.Rect, fn func(Entry) bool) (bool, error) {
	p, err := t.pool.GetCtx(ctx, id)
	if err != nil {
		return false, err
	}
	kind, n := pageKind(p), pageCount(p)
	if kind == kindLeaf {
		for i := 0; i < n; i++ {
			r := readRect(p, entryOff(kindLeaf, i))
			if r.Intersects(query) {
				e := Entry{r, leafRef(p, i)}
				if !fn(e) {
					return false, nil
				}
				// fn may have triggered pool activity; re-fetch.
				p, err = t.pool.GetCtx(ctx, id)
				if err != nil {
					return false, err
				}
			}
		}
		return true, nil
	}
	// Collect matching children first: recursion may evict this frame.
	var children []storage.PageID
	for i := 0; i < n; i++ {
		if readRect(p, entryOff(kindInternal, i)).Intersects(query) {
			children = append(children, innerChild(p, i))
		}
	}
	for _, c := range children {
		cont, err := t.search(ctx, c, query, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// NearestRefine is the distance refinement callback of Nearest: given an
// entry it returns the exact distance from the query point to the indexed
// geometry (e.g. point-to-segment distance for edge MBRs).
type NearestRefine func(Entry) float64

// Nearest performs best-first nearest-neighbor search from p using MBR
// MinDist as the lower bound and refine as the exact distance. It returns
// the closest entry and its exact distance, or false for an empty tree.
func (t *Tree) Nearest(p geo.Point, refine NearestRefine) (Entry, float64, bool) {
	pq := &nnHeap{}
	heap.Push(pq, nnItem{0, false, Entry{}, t.root})
	bestDist := math.Inf(1)
	var best Entry
	found := false
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nnItem)
		if it.dist >= bestDist {
			break
		}
		if it.isEntry {
			d := refine(it.entry)
			if d < bestDist {
				bestDist, best, found = d, it.entry, true
			}
			continue
		}
		page, err := t.pool.Get(it.page)
		if err != nil {
			return Entry{}, 0, false
		}
		kind, n := pageKind(page), pageCount(page)
		for i := 0; i < n; i++ {
			r := readRect(page, entryOff(kind, i))
			d := r.MinDist(p)
			if d >= bestDist {
				continue
			}
			if kind == kindLeaf {
				heap.Push(pq, nnItem{d, true, Entry{r, leafRef(page, i)}, storage.InvalidPageID})
			} else {
				heap.Push(pq, nnItem{d, false, Entry{}, innerChild(page, i)})
			}
		}
	}
	return best, bestDist, found
}

type nnItem struct {
	dist    float64
	isEntry bool
	entry   Entry
	page    storage.PageID
}

type nnHeap []nnItem

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
