package rtree

import (
	"math/rand"
	"testing"

	"dsks/internal/geo"
)

func BenchmarkBulkLoad(b *testing.B) {
	es := randomEntriesBench(50_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkLoad(newPool(2048), es); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertTree(b *testing.B) {
	tr, err := New(newPool(2048))
	if err != nil {
		b.Fatal(err)
	}
	es := randomEntriesBench(1_000_000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(es[i%len(es)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchSmallWindow(b *testing.B) {
	tr, err := BulkLoad(newPool(2048), randomEntriesBench(50_000, 3))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := rng.Float64()*geo.WorldMax, rng.Float64()*geo.WorldMax
		q := geo.Rect{MinX: x, MinY: y, MaxX: x + 50, MaxY: y + 50}
		if err := tr.Search(q, func(Entry) bool { return true }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearest(b *testing.B) {
	es := randomEntriesBench(50_000, 5)
	tr, err := BulkLoad(newPool(2048), es)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geo.Point{X: rng.Float64() * geo.WorldMax, Y: rng.Float64() * geo.WorldMax}
		if _, _, ok := tr.Nearest(p, func(e Entry) float64 { return e.Rect.MinDist(p) }); !ok {
			b.Fatal("no nearest")
		}
	}
}

func randomEntriesBench(n int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entry, n)
	for i := range out {
		x, y := rng.Float64()*geo.WorldMax, rng.Float64()*geo.WorldMax
		out[i] = Entry{Rect: geo.Rect{MinX: x, MinY: y, MaxX: x + 5, MaxY: y + 5}, Ref: uint64(i)}
	}
	return out
}
