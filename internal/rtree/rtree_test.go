package rtree

import (
	"math"
	"math/rand"
	"testing"

	"dsks/internal/geo"
	"dsks/internal/storage"
)

func newPool(frames int) *storage.BufferPool {
	return storage.NewBufferPool(storage.NewPageFile(), frames, nil)
}

func randomEntries(n int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entry, n)
	for i := range out {
		x, y := rng.Float64()*geo.WorldMax, rng.Float64()*geo.WorldMax
		w, h := rng.Float64()*20, rng.Float64()*20
		out[i] = Entry{
			Rect: geo.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h},
			Ref:  uint64(i),
		}
	}
	return out
}

// bruteRange returns the refs of entries intersecting q.
func bruteRange(es []Entry, q geo.Rect) map[uint64]bool {
	out := map[uint64]bool{}
	for _, e := range es {
		if e.Rect.Intersects(q) {
			out[e.Ref] = true
		}
	}
	return out
}

func checkRange(t *testing.T, tr *Tree, es []Entry, q geo.Rect) {
	t.Helper()
	want := bruteRange(es, q)
	got := map[uint64]bool{}
	if err := tr.Search(q, func(e Entry) bool { got[e.Ref] = true; return true }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("range %v: got %d refs, want %d", q, len(got), len(want))
	}
	for r := range want {
		if !got[r] {
			t.Fatalf("range %v: missing ref %d", q, r)
		}
	}
}

func TestBulkLoadRangeQueries(t *testing.T) {
	es := randomEntries(3000, 1)
	tr, err := BulkLoad(newPool(256), es)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(es) {
		t.Fatalf("Len = %d", tr.Len())
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 25; i++ {
		x, y := rng.Float64()*geo.WorldMax, rng.Float64()*geo.WorldMax
		q := geo.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*1000, MaxY: y + rng.Float64()*1000}
		checkRange(t, tr, es, q)
	}
	// Whole-world query returns everything.
	checkRange(t, tr, es, geo.Rect{MinX: 0, MinY: 0, MaxX: geo.WorldMax + 50, MaxY: geo.WorldMax + 50})
}

func TestInsertRangeQueries(t *testing.T) {
	es := randomEntries(1500, 3)
	tr, err := New(newPool(256))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range es {
		if err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != len(es) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Errorf("expected split, height = %d", tr.Height())
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		x, y := rng.Float64()*geo.WorldMax, rng.Float64()*geo.WorldMax
		q := geo.Rect{MinX: x, MinY: y, MaxX: x + 800, MaxY: y + 800}
		checkRange(t, tr, es, q)
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr, err := New(newPool(8))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	if err := tr.Search(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		func(e Entry) bool { found = true; return true }); err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("empty tree returned entries")
	}
	if _, _, ok := tr.Nearest(geo.Point{X: 1, Y: 1}, func(e Entry) float64 { return 0 }); ok {
		t.Error("empty tree returned a nearest entry")
	}
}

func TestSearchEarlyStop(t *testing.T) {
	es := randomEntries(500, 5)
	tr, err := BulkLoad(newPool(64), es)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := tr.Search(geo.Rect{MinX: 0, MinY: 0, MaxX: geo.WorldMax, MaxY: geo.WorldMax},
		func(e Entry) bool { count++; return count < 5 }); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestNearestPoint(t *testing.T) {
	// Index points (degenerate rects); nearest must match brute force.
	rng := rand.New(rand.NewSource(6))
	pts := make([]geo.Point, 800)
	es := make([]Entry, len(pts))
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * geo.WorldMax, Y: rng.Float64() * geo.WorldMax}
		es[i] = Entry{Rect: geo.RectOf(pts[i], pts[i]), Ref: uint64(i)}
	}
	tr, err := BulkLoad(newPool(128), es)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := geo.Point{X: rng.Float64() * geo.WorldMax, Y: rng.Float64() * geo.WorldMax}
		gotEntry, gotDist, ok := tr.Nearest(q, func(e Entry) float64 {
			return pts[e.Ref].Dist(q)
		})
		if !ok {
			t.Fatal("no nearest found")
		}
		bestDist := math.Inf(1)
		for _, p := range pts {
			if d := p.Dist(q); d < bestDist {
				bestDist = d
			}
		}
		if math.Abs(gotDist-bestDist) > 1e-9 {
			t.Fatalf("nearest dist %v (ref %d), brute force %v", gotDist, gotEntry.Ref, bestDist)
		}
	}
}

func TestNearestWithRefinement(t *testing.T) {
	// Refinement that differs from MBR distance: segments stored by MBR.
	// Segment A: (0,0)-(10,0); segment B: (5,3)-(15,3).
	segs := [][2]geo.Point{
		{{X: 0, Y: 0}, {X: 10, Y: 0}},
		{{X: 5, Y: 3}, {X: 15, Y: 3}},
	}
	es := make([]Entry, len(segs))
	for i, s := range segs {
		es[i] = Entry{Rect: geo.RectOf(s[0], s[1]), Ref: uint64(i)}
	}
	tr, err := BulkLoad(newPool(16), es)
	if err != nil {
		t.Fatal(err)
	}
	segDist := func(e Entry) float64 {
		s := segs[e.Ref]
		return pointSegDist(geo.Point{X: 7, Y: 2}, s[0], s[1])
	}
	got, d, ok := tr.Nearest(geo.Point{X: 7, Y: 2}, segDist)
	if !ok {
		t.Fatal("no nearest")
	}
	// Query (7,2): dist to A = 2, dist to B = 1 -> B wins.
	if got.Ref != 1 || math.Abs(d-1) > 1e-9 {
		t.Errorf("nearest = ref %d dist %v, want ref 1 dist 1", got.Ref, d)
	}
}

// pointSegDist is a reference point-to-segment distance for the test.
func pointSegDist(p, a, b geo.Point) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	apx, apy := p.X-a.X, p.Y-a.Y
	den := abx*abx + aby*aby
	t := 0.0
	if den > 0 {
		t = (apx*abx + apy*aby) / den
	}
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(geo.Point{X: a.X + t*abx, Y: a.Y + t*aby})
}

func TestBulkLoadEmptyAndSingle(t *testing.T) {
	tr, err := BulkLoad(newPool(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("empty bulk load Len = %d", tr.Len())
	}
	one := []Entry{{Rect: geo.Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}, Ref: 7}}
	tr, err = BulkLoad(newPool(8), one)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	if err := tr.Search(geo.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}, func(e Entry) bool {
		found = e.Ref == 7
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("single entry not found")
	}
}

func TestTinyPoolThrashingCorrect(t *testing.T) {
	es := randomEntries(1000, 7)
	tr, err := BulkLoad(newPool(3), es)
	if err != nil {
		t.Fatal(err)
	}
	q := geo.Rect{MinX: 1000, MinY: 1000, MaxX: 4000, MaxY: 4000}
	checkRange(t, tr, es, q)
}
