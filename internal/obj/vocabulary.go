package obj

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Vocabulary is the term dictionary V: a bijection between keyword strings
// and dense TermIDs.
type Vocabulary struct {
	terms []string
	ids   map[string]TermID
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]TermID)}
}

// Intern returns the TermID for s, adding it to the vocabulary if new.
// Terms are case-folded and trimmed.
func (v *Vocabulary) Intern(s string) TermID {
	s = normalizeTerm(s)
	if id, ok := v.ids[s]; ok {
		return id
	}
	id := TermID(len(v.terms))
	v.terms = append(v.terms, s)
	v.ids[s] = id
	return id
}

// Lookup returns the TermID for s, if present.
func (v *Vocabulary) Lookup(s string) (TermID, bool) {
	id, ok := v.ids[normalizeTerm(s)]
	return id, ok
}

// Term returns the keyword string of id.
func (v *Vocabulary) Term(id TermID) string {
	if id < 0 || int(id) >= len(v.terms) {
		panic(fmt.Sprintf("obj: unknown term %d", id))
	}
	return v.terms[id]
}

// Size returns |V|.
func (v *Vocabulary) Size() int { return len(v.terms) }

// InternAll interns every keyword and returns the normalized TermID set.
func (v *Vocabulary) InternAll(words []string) []TermID {
	ts := make([]TermID, 0, len(words))
	for _, w := range words {
		if strings.TrimSpace(w) == "" {
			continue
		}
		ts = append(ts, v.Intern(w))
	}
	return NormalizeTerms(ts)
}

// LookupAll resolves every keyword; it fails if any keyword is unknown.
func (v *Vocabulary) LookupAll(words []string) ([]TermID, error) {
	ts := make([]TermID, 0, len(words))
	for _, w := range words {
		id, ok := v.Lookup(w)
		if !ok {
			return nil, fmt.Errorf("obj: unknown keyword %q", w)
		}
		ts = append(ts, id)
	}
	return NormalizeTerms(ts), nil
}

// TopK returns the k terms with the highest frequency (given per-term
// frequencies, typically from Collection.TermFrequencies), most frequent
// first. Ties break by TermID for determinism.
func TopK(freq []int64, k int) []TermID {
	ids := make([]TermID, len(freq))
	for i := range ids {
		ids[i] = TermID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		fi, fj := freq[ids[i]], freq[ids[j]]
		if fi != fj {
			return fi > fj
		}
		return ids[i] < ids[j]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

func normalizeTerm(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// Write encodes the vocabulary, one term per line in TermID order, so that
// ReadVocabulary reproduces identical IDs.
func (v *Vocabulary) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vocabulary %d\n", len(v.terms))
	for _, s := range v.terms {
		fmt.Fprintln(bw, s)
	}
	return bw.Flush()
}

// ReadVocabulary decodes a vocabulary written by Write.
func ReadVocabulary(r io.Reader) (*Vocabulary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<21)
	if !sc.Scan() {
		return nil, fmt.Errorf("obj: empty vocabulary file")
	}
	var n int
	if _, err := fmt.Sscanf(sc.Text(), "# vocabulary %d", &n); err != nil {
		return nil, fmt.Errorf("obj: bad vocabulary header %q: %w", sc.Text(), err)
	}
	v := NewVocabulary()
	for sc.Scan() {
		v.Intern(sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if v.Size() != n {
		return nil, fmt.Errorf("obj: header claims %d terms, file has %d", n, v.Size())
	}
	return v, nil
}
