// Package obj defines spatio-textual objects — points on road-network edges
// described by a set of keywords — together with the vocabulary (term
// dictionary) and collection helpers used by the object indexes.
package obj

import (
	"fmt"
	"sort"

	"dsks/internal/graph"
)

// ID identifies a spatio-textual object.
type ID int32

// TermID identifies a keyword in a Vocabulary.
type TermID int32

// Object is a spatio-textual object: a position on a road-network edge plus
// a set of keywords. Terms is always sorted and duplicate-free (enforced by
// NormalizeTerms / Collection.Add).
type Object struct {
	ID    ID
	Pos   graph.Position
	Terms []TermID
}

// HasTerm reports whether the object contains t (binary search over the
// sorted term list).
func (o *Object) HasTerm(t TermID) bool {
	i := sort.Search(len(o.Terms), func(i int) bool { return o.Terms[i] >= t })
	return i < len(o.Terms) && o.Terms[i] == t
}

// HasAllTerms reports whether the object contains every term of the sorted
// query term list ts (the boolean AND semantics of the paper's SK query).
func (o *Object) HasAllTerms(ts []TermID) bool {
	i, j := 0, 0
	for i < len(ts) && j < len(o.Terms) {
		switch {
		case o.Terms[j] < ts[i]:
			j++
		case o.Terms[j] == ts[i]:
			i++
			j++
		default:
			return false
		}
	}
	return i == len(ts)
}

// NormalizeTerms sorts ts and removes duplicates in place, returning the
// normalized slice.
func NormalizeTerms(ts []TermID) []TermID {
	if len(ts) < 2 {
		return ts
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Collection holds the full object set of a dataset, with per-edge grouping
// available on demand. Objects on the same edge are ordered by their offset
// along the edge (their "visiting order" in the paper's partitioning).
// Removed objects leave a tombstone: their ID stays allocated but they no
// longer appear in OnEdge listings or term frequencies.
type Collection struct {
	objects []Object
	removed []bool
	byEdge  map[graph.EdgeID][]ID
	sorted  bool
	live    int
}

// NewCollection returns an empty collection.
func NewCollection() *Collection {
	return &Collection{byEdge: make(map[graph.EdgeID][]ID)}
}

// Add appends an object with the given position and terms; the term slice
// is normalized (sorted, deduplicated) and retained. It returns the new
// object's ID.
func (c *Collection) Add(pos graph.Position, terms []TermID) ID {
	id := ID(len(c.objects))
	c.objects = append(c.objects, Object{ID: id, Pos: pos, Terms: NormalizeTerms(terms)})
	c.removed = append(c.removed, false)
	c.byEdge[pos.Edge] = append(c.byEdge[pos.Edge], id)
	c.sorted = false
	c.live++
	return id
}

// Remove tombstones the object: its ID remains allocated but it disappears
// from OnEdge listings and term frequencies. Removing an unknown or
// already-removed ID is an error.
func (c *Collection) Remove(id ID) error {
	if id < 0 || int(id) >= len(c.objects) {
		return fmt.Errorf("obj: unknown object %d", id)
	}
	if c.removed[id] {
		return fmt.Errorf("obj: object %d already removed", id)
	}
	c.removed[id] = true
	c.live--
	e := c.objects[id].Pos.Edge
	lst := c.byEdge[e]
	for i, x := range lst {
		if x == id {
			c.byEdge[e] = append(lst[:i], lst[i+1:]...)
			break
		}
	}
	if len(c.byEdge[e]) == 0 {
		delete(c.byEdge, e)
	}
	return nil
}

// Removed reports whether id has been tombstoned.
func (c *Collection) Removed(id ID) bool {
	return id >= 0 && int(id) < len(c.objects) && c.removed[id]
}

// Tombstones returns the removed IDs in ascending order — together with
// Len, the full allocation state of the ID space, which snapshots record
// so that replayed log records address the same IDs.
func (c *Collection) Tombstones() []ID {
	var ids []ID
	for id, dead := range c.removed {
		if dead {
			ids = append(ids, ID(id))
		}
	}
	return ids
}

// Len returns the number of allocated object IDs (including tombstones;
// use Live for the current object count).
func (c *Collection) Len() int { return len(c.objects) }

// Live returns the number of objects that have not been removed.
func (c *Collection) Live() int { return c.live }

// Get returns the object with the given ID.
func (c *Collection) Get(id ID) *Object {
	if id < 0 || int(id) >= len(c.objects) {
		panic(fmt.Sprintf("obj: unknown object %d", id))
	}
	return &c.objects[id]
}

// OnEdge returns the IDs of the objects lying on edge e, ordered by offset
// from the edge's reference node. The returned slice must not be modified.
func (c *Collection) OnEdge(e graph.EdgeID) []ID {
	c.ensureSorted()
	return c.byEdge[e]
}

// Edges returns all edges that carry at least one object, in ascending ID
// order.
func (c *Collection) Edges() []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(c.byEdge))
	for e := range c.byEdge {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TermFrequencies returns the number of objects containing each term, for a
// vocabulary of size n.
func (c *Collection) TermFrequencies(n int) []int64 {
	freq := make([]int64, n)
	for i := range c.objects {
		if c.removed[i] {
			continue
		}
		for _, t := range c.objects[i].Terms {
			if int(t) < n {
				freq[t]++
			}
		}
	}
	return freq
}

// AvgTermsPerObject returns the mean keyword count per live object.
func (c *Collection) AvgTermsPerObject() float64 {
	if c.live == 0 {
		return 0
	}
	total := 0
	for i := range c.objects {
		if !c.removed[i] {
			total += len(c.objects[i].Terms)
		}
	}
	return float64(total) / float64(c.live)
}

func (c *Collection) ensureSorted() {
	if c.sorted {
		return
	}
	for e, ids := range c.byEdge {
		lst := ids
		sort.Slice(lst, func(i, j int) bool {
			oi, oj := c.objects[lst[i]], c.objects[lst[j]]
			if oi.Pos.Offset != oj.Pos.Offset {
				return oi.Pos.Offset < oj.Pos.Offset
			}
			return oi.ID < oj.ID
		})
		c.byEdge[e] = lst
	}
	c.sorted = true
}
