package obj

import (
	"reflect"
	"testing"
	"testing/quick"

	"dsks/internal/graph"
)

func TestNormalizeTerms(t *testing.T) {
	tests := []struct {
		in, want []TermID
	}{
		{nil, nil},
		{[]TermID{3}, []TermID{3}},
		{[]TermID{3, 1, 2}, []TermID{1, 2, 3}},
		{[]TermID{2, 2, 1, 1}, []TermID{1, 2}},
		{[]TermID{5, 5, 5}, []TermID{5}},
	}
	for _, tc := range tests {
		got := NormalizeTerms(append([]TermID(nil), tc.in...))
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("NormalizeTerms(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestHasTermAndHasAllTerms(t *testing.T) {
	o := Object{Terms: NormalizeTerms([]TermID{4, 1, 9})}
	if !o.HasTerm(4) || !o.HasTerm(1) || !o.HasTerm(9) {
		t.Error("HasTerm missing present terms")
	}
	if o.HasTerm(2) || o.HasTerm(10) {
		t.Error("HasTerm found absent terms")
	}
	if !o.HasAllTerms([]TermID{1, 9}) {
		t.Error("HasAllTerms subset failed")
	}
	if !o.HasAllTerms(nil) {
		t.Error("empty query must match")
	}
	if o.HasAllTerms([]TermID{1, 2}) {
		t.Error("HasAllTerms with absent term matched")
	}
	if o.HasAllTerms([]TermID{1, 4, 9, 11}) {
		t.Error("HasAllTerms superset matched")
	}
}

func TestHasAllTermsQuick(t *testing.T) {
	f := func(objTerms, query []uint8) bool {
		ot := make([]TermID, len(objTerms))
		for i, v := range objTerms {
			ot[i] = TermID(v % 32)
		}
		qt := make([]TermID, len(query))
		for i, v := range query {
			qt[i] = TermID(v % 32)
		}
		o := Object{Terms: NormalizeTerms(ot)}
		qn := NormalizeTerms(qt)
		want := true
		for _, q := range qn {
			found := false
			for _, x := range o.Terms {
				if x == q {
					found = true
					break
				}
			}
			if !found {
				want = false
				break
			}
		}
		return o.HasAllTerms(qn) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVocabularyIntern(t *testing.T) {
	v := NewVocabulary()
	a := v.Intern("Pizza")
	b := v.Intern("pizza ")
	if a != b {
		t.Error("case/space folding broken")
	}
	c := v.Intern("sushi")
	if c == a {
		t.Error("distinct terms share an ID")
	}
	if v.Size() != 2 {
		t.Errorf("Size = %d", v.Size())
	}
	if v.Term(a) != "pizza" {
		t.Errorf("Term = %q", v.Term(a))
	}
	if _, ok := v.Lookup("burger"); ok {
		t.Error("unknown term found")
	}
	if id, ok := v.Lookup("PIZZA"); !ok || id != a {
		t.Error("lookup with different case failed")
	}
}

func TestVocabularyInternAllLookupAll(t *testing.T) {
	v := NewVocabulary()
	ts := v.InternAll([]string{"b", "a", "b", " ", ""})
	if len(ts) != 2 {
		t.Fatalf("InternAll = %v", ts)
	}
	if ts[0] > ts[1] {
		t.Error("InternAll result not sorted")
	}
	got, err := v.LookupAll([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ts) {
		t.Errorf("LookupAll = %v, want %v", got, ts)
	}
	if _, err := v.LookupAll([]string{"a", "zzz"}); err == nil {
		t.Error("LookupAll with unknown keyword succeeded")
	}
}

func TestTopK(t *testing.T) {
	freq := []int64{5, 9, 9, 1}
	got := TopK(freq, 3)
	want := []TermID{1, 2, 0} // ties break by ID
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopK = %v, want %v", got, want)
	}
	if got := TopK(freq, 10); len(got) != 4 {
		t.Errorf("TopK overflow = %v", got)
	}
}

func TestCollectionAddGetOnEdge(t *testing.T) {
	c := NewCollection()
	e := graph.EdgeID(3)
	id1 := c.Add(graph.Position{Edge: e, Offset: 7}, []TermID{2, 1})
	id2 := c.Add(graph.Position{Edge: e, Offset: 2}, []TermID{3})
	id3 := c.Add(graph.Position{Edge: graph.EdgeID(4), Offset: 0}, []TermID{1})
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.Get(id1).Terms; !reflect.DeepEqual(got, []TermID{1, 2}) {
		t.Errorf("terms not normalized: %v", got)
	}
	// OnEdge returns objects ordered by offset.
	on := c.OnEdge(e)
	if !reflect.DeepEqual(on, []ID{id2, id1}) {
		t.Errorf("OnEdge = %v", on)
	}
	if got := c.OnEdge(graph.EdgeID(99)); len(got) != 0 {
		t.Errorf("OnEdge empty edge = %v", got)
	}
	edges := c.Edges()
	if !reflect.DeepEqual(edges, []graph.EdgeID{3, 4}) {
		t.Errorf("Edges = %v", edges)
	}
	_ = id3
}

func TestCollectionOnEdgeStableAfterAdd(t *testing.T) {
	c := NewCollection()
	e := graph.EdgeID(0)
	c.Add(graph.Position{Edge: e, Offset: 5}, nil)
	_ = c.OnEdge(e) // forces a sort
	id := c.Add(graph.Position{Edge: e, Offset: 1}, nil)
	on := c.OnEdge(e) // must re-sort after the add
	if on[0] != id {
		t.Errorf("OnEdge stale after Add: %v", on)
	}
}

func TestTermFrequenciesAndAvg(t *testing.T) {
	c := NewCollection()
	c.Add(graph.Position{}, []TermID{0, 1})
	c.Add(graph.Position{}, []TermID{1})
	c.Add(graph.Position{}, []TermID{1, 2, 0})
	freq := c.TermFrequencies(3)
	if !reflect.DeepEqual(freq, []int64{2, 3, 1}) {
		t.Errorf("freq = %v", freq)
	}
	if got := c.AvgTermsPerObject(); got != 2 {
		t.Errorf("avg = %v", got)
	}
	if got := NewCollection().AvgTermsPerObject(); got != 0 {
		t.Errorf("avg of empty = %v", got)
	}
}

func TestGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Get on unknown ID did not panic")
		}
	}()
	NewCollection().Get(0)
}

func TestCollectionRemove(t *testing.T) {
	c := NewCollection()
	e := graph.EdgeID(1)
	a := c.Add(graph.Position{Edge: e, Offset: 1}, []TermID{0})
	b := c.Add(graph.Position{Edge: e, Offset: 2}, []TermID{0, 1})
	if c.Live() != 2 {
		t.Fatalf("Live = %d", c.Live())
	}
	if err := c.Remove(a); err != nil {
		t.Fatal(err)
	}
	if c.Live() != 1 || c.Len() != 2 {
		t.Fatalf("Live/Len = %d/%d", c.Live(), c.Len())
	}
	if !c.Removed(a) || c.Removed(b) {
		t.Error("Removed flags wrong")
	}
	on := c.OnEdge(e)
	if len(on) != 1 || on[0] != b {
		t.Fatalf("OnEdge after remove = %v", on)
	}
	freq := c.TermFrequencies(2)
	if freq[0] != 1 || freq[1] != 1 {
		t.Errorf("freq after remove = %v", freq)
	}
	if got := c.AvgTermsPerObject(); got != 2 {
		t.Errorf("avg after remove = %v", got)
	}
	if err := c.Remove(a); err == nil {
		t.Error("double remove accepted")
	}
	if err := c.Remove(ID(99)); err == nil {
		t.Error("unknown remove accepted")
	}
	// Removing the last object of an edge clears its listing.
	if err := c.Remove(b); err != nil {
		t.Fatal(err)
	}
	if got := c.OnEdge(e); len(got) != 0 {
		t.Errorf("OnEdge after clearing = %v", got)
	}
	if len(c.Edges()) != 0 {
		t.Errorf("Edges after clearing = %v", c.Edges())
	}
}
