package storage

import (
	"math/rand"
	"testing"
)

func benchPoolWithPages(b *testing.B, frames, pages int) (*BufferPool, []PageID) {
	b.Helper()
	f := NewPageFile()
	pool := NewBufferPool(f, frames, nil)
	ids := make([]PageID, pages)
	for i := range ids {
		p, err := pool.Allocate()
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = p.ID()
	}
	if err := pool.DropAll(); err != nil {
		b.Fatal(err)
	}
	return pool, ids
}

func BenchmarkPoolGetHit(b *testing.B) {
	pool, ids := benchPoolWithPages(b, 64, 32) // everything fits
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Get(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolGetMiss(b *testing.B) {
	pool, ids := benchPoolWithPages(b, 2, 512) // nearly every access misses
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Get(ids[rng.Intn(len(ids))]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolAllocateFlush(b *testing.B) {
	f := NewPageFile()
	pool := NewBufferPool(f, 64, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := pool.Allocate()
		if err != nil {
			b.Fatal(err)
		}
		p.PutUint64(0, uint64(i))
		pool.MarkDirty(p.ID())
		if i%64 == 63 {
			if err := pool.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
