package storage

import (
	"context"
	"math"
)

// This file implements multi-version concurrency control at the page
// level: copy-on-write mutation batches, LSN-pinned read views and
// epoch-based reclamation over a BufferPool.
//
// The protocol is single-writer / many-readers, bolt-style:
//
//   - A mutator opens a WriteBatch stamped with its commit LSN. Every page
//     it touches is copied into the batch on first access; mutations go to
//     the private copies and newly allocated pages, never to shared frames
//     or the file. A failed mutation simply drops the batch — nothing was
//     ever visible.
//   - Publish installs the batch's dirty pages into the pool's version
//     overlay in one critical section. Readers pinned at an older LSN keep
//     resolving the older version (or the base file); readers pinned at or
//     after the commit LSN see the new one.
//   - A PageView resolves every Get against the overlay first (newest
//     version at or below its pin LSN) and falls back to the base
//     pool/file. Overlay hits count as logical reads, like buffer hits,
//     so the paper's disk-access accounting is unchanged.
//   - FoldTo(h) writes the newest version at or below horizon h of each
//     page back into the base file and drops every overlay entry at or
//     below h. The caller guarantees h is not above any pinned LSN (see
//     Epochs), which makes the fold invisible: no pinned reader can have
//     read the stale base of a folded page (a version at or below its pin
//     LSN existed in the overlay for the reader's whole lifetime), and no
//     pinned reader wants a version older than the folded one.
//
// The overlay lives outside the LRU: it is bounded by the mutation volume
// between folds, not by the pool capacity, and DropAll (cache cooling)
// deliberately leaves it alone — it is published truth, not cache.

// PageReader is the read-side page access interface: the plain BufferPool
// (reads the latest base state), a PageView (reads a pinned version) and a
// WriteBatch (reads through its own pending writes) all implement it.
type PageReader interface {
	Get(id PageID) (*Page, error)
	GetCtx(ctx context.Context, id PageID) (*Page, error)
}

// Pager adds the mutation surface to PageReader: the BufferPool implements
// it for build-time in-place writes, the WriteBatch for copy-on-write
// mutations.
type Pager interface {
	PageReader
	Allocate() (*Page, error)
	MarkDirty(id PageID)
}

// Interface conformance.
var (
	_ Pager      = (*BufferPool)(nil)
	_ Pager      = (*WriteBatch)(nil)
	_ PageReader = (*PageView)(nil)
)

// pageVersion is one published copy-on-write page version.
type pageVersion struct {
	lsn  uint64
	page *Page
}

// versionAt returns the newest overlay version of id at or below lsn, or
// nil when the base file is authoritative for that LSN.
func (b *BufferPool) versionAt(id PageID, lsn uint64) *Page {
	b.verMu.RLock()
	defer b.verMu.RUnlock()
	chain := b.versions[id]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].lsn <= lsn {
			return chain[i].page
		}
	}
	return nil
}

// OverlayPages returns the number of pages with at least one unfolded
// overlay version (observability and tests).
func (b *BufferPool) OverlayPages() int {
	b.verMu.RLock()
	defer b.verMu.RUnlock()
	return len(b.versions)
}

// NewBatch opens a copy-on-write mutation batch that will commit at lsn.
// The batch is private until Publish; dropping it undoes everything except
// file growth from Allocate (abandoned zero pages, the usual write
// amplification of merge-on-write files).
func (b *BufferPool) NewBatch(lsn uint64) *WriteBatch {
	return &WriteBatch{
		pool:  b,
		lsn:   lsn,
		pages: make(map[PageID]*Page),
		dirty: make(map[PageID]bool),
	}
}

// Publish atomically installs the batch's dirty pages as versions stamped
// with the batch LSN. The caller must not publish batches out of LSN order
// (chains must stay ascending); the single-writer discipline of the
// database latch guarantees this.
func (b *BufferPool) Publish(w *WriteBatch) {
	b.verMu.Lock()
	if b.versions == nil {
		b.versions = make(map[PageID][]pageVersion)
	}
	for id := range w.dirty {
		b.versions[id] = append(b.versions[id], pageVersion{lsn: w.lsn, page: w.pages[id]})
	}
	b.verMu.Unlock()
}

// ViewAt returns a reader pinned at lsn. The caller is responsible for
// keeping lsn pinned in an Epochs registry for the view's lifetime, so
// FoldTo never folds past it.
func (b *BufferPool) ViewAt(lsn uint64) *PageView {
	return &PageView{pool: b, lsn: lsn}
}

// FoldTo writes the newest version at or below horizon of every overlaid
// page back into the base file and drops the folded overlay entries. The
// caller must guarantee (via Epochs) that no reader is pinned below
// horizon. Write failures leave the affected page's overlay intact (the
// overlay stays authoritative; the fold retries on the next call) and are
// reported through the first error.
func (b *BufferPool) FoldTo(horizon uint64) error {
	type foldEntry struct {
		id   PageID
		page *Page
	}
	b.verMu.RLock()
	fold := make([]foldEntry, 0, len(b.versions))
	for id, chain := range b.versions {
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].lsn <= horizon {
				fold = append(fold, foldEntry{id: id, page: chain[i].page})
				break
			}
		}
	}
	b.verMu.RUnlock()

	var firstErr error
	for _, f := range fold {
		// Stamp then write, the same order as eviction write-back, so a
		// checksum-verified pool treats the folded bytes as the new
		// baseline.
		b.stamp(f.id, f.page.data[:])
		if err := b.file.write(f.id, f.page.data[:]); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		b.stats.addWrite()

		// The cached base frame (if any) now holds stale bytes: drop it
		// before the overlay entries disappear, so no reader can resolve
		// the page to the stale frame. The frame object itself is left to
		// the garbage collector — pages handed out earlier stay stable.
		b.mu.Lock()
		if el, ok := b.frames[f.id]; ok {
			delete(b.frames, f.id)
			b.lru.Remove(el)
		}
		b.mu.Unlock()

		b.verMu.Lock()
		chain := b.versions[f.id]
		keep := chain[:0]
		for _, v := range chain {
			if v.lsn > horizon {
				keep = append(keep, v)
			}
		}
		if len(keep) == 0 {
			delete(b.versions, f.id)
		} else {
			b.versions[f.id] = append([]pageVersion(nil), keep...)
		}
		b.verMu.Unlock()
	}
	return firstErr
}

// WriteBatch is a private copy-on-write staging area for one mutation.
// Reads resolve batch-local copies first, then the newest published
// version, then the base pool; the first access to a shared page copies it
// into the batch. Only pages passed to MarkDirty (and thus actually
// modified) are published.
//
// A WriteBatch is not safe for concurrent use; the database's writer latch
// serializes mutators.
type WriteBatch struct {
	pool  *BufferPool
	lsn   uint64
	pages map[PageID]*Page
	dirty map[PageID]bool
}

// LSN returns the batch's commit LSN.
func (w *WriteBatch) LSN() uint64 { return w.lsn }

// Pages returns how many pages the batch has touched (copies plus fresh
// allocations).
func (w *WriteBatch) Pages() int { return len(w.pages) }

// Get returns the batch's view of the page, copying it in on first touch.
func (w *WriteBatch) Get(id PageID) (*Page, error) {
	return w.GetCtx(context.Background(), id)
}

// GetCtx is Get with cancellation on the underlying base read.
func (w *WriteBatch) GetCtx(ctx context.Context, id PageID) (*Page, error) {
	if p, ok := w.pages[id]; ok {
		return p, nil
	}
	private := &Page{id: id}
	// A mutator reads the latest committed state: the newest published
	// version regardless of LSN (the single writer always commits above
	// every published LSN), else the base pool.
	if src := w.pool.versionAt(id, math.MaxUint64); src != nil {
		w.pool.stats.addRead(false)
		private.data = src.data
	} else {
		src, err := w.pool.GetCtx(ctx, id)
		if err != nil {
			return nil, err
		}
		private.data = src.data
	}
	w.pages[id] = private
	return private, nil
}

// Allocate reserves a fresh page on the backing file and adds it to the
// batch. The page reaches the base file only through Publish + FoldTo; a
// dropped batch leaves a zero page behind.
func (w *WriteBatch) Allocate() (*Page, error) {
	id, err := w.pool.file.Allocate()
	if err != nil {
		return nil, err
	}
	p := &Page{id: id}
	w.pages[id] = p
	return p, nil
}

// MarkDirty records that the batch's copy of the page was modified, so
// Publish installs it as a new version.
func (w *WriteBatch) MarkDirty(id PageID) {
	if _, ok := w.pages[id]; ok {
		w.dirty[id] = true
	}
}

// PageView reads one pinned LSN: the newest overlay version at or below
// the pin, falling back to the base pool. Overlay hits are logical reads
// (no disk access), exactly like buffer hits. A PageView is safe for
// concurrent use and stays consistent for as long as its LSN is pinned in
// the owning Epochs registry.
type PageView struct {
	pool *BufferPool
	lsn  uint64
}

// LSN returns the view's pin LSN.
func (v *PageView) LSN() uint64 { return v.lsn }

// Get returns the page as of the view's LSN.
func (v *PageView) Get(id PageID) (*Page, error) {
	return v.GetCtx(context.Background(), id)
}

// GetCtx is Get with cancellation on the underlying base read.
func (v *PageView) GetCtx(ctx context.Context, id PageID) (*Page, error) {
	if p := v.pool.versionAt(id, v.lsn); p != nil {
		v.pool.stats.addRead(false)
		return p, nil
	}
	return v.pool.GetCtx(ctx, id)
}
