package storage

import (
	"testing"
	"testing/quick"
)

func TestPageAccessors(t *testing.T) {
	var p Page
	p.PutUint16(0, 0xBEEF)
	if p.Uint16(0) != 0xBEEF {
		t.Error("uint16 roundtrip")
	}
	p.PutUint32(10, 0xDEADBEEF)
	if p.Uint32(10) != 0xDEADBEEF {
		t.Error("uint32 roundtrip")
	}
	p.PutUint64(100, 1<<60|7)
	if p.Uint64(100) != 1<<60|7 {
		t.Error("uint64 roundtrip")
	}
	p.PutFloat64(200, 3.25)
	if p.Float64(200) != 3.25 {
		t.Error("float64 roundtrip")
	}
}

func TestPageReadWriteAt(t *testing.T) {
	var p Page
	if err := p.WriteAt(PageSize-3, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := p.ReadAt(PageSize-3, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[2] != 3 {
		t.Errorf("got %v", got)
	}
	if err := p.WriteAt(PageSize-2, []byte{1, 2, 3}); err == nil {
		t.Error("write past end did not fail")
	}
	if err := p.ReadAt(-1, got); err == nil {
		t.Error("negative read did not fail")
	}
}

func TestPageFileAllocateReadWrite(t *testing.T) {
	f := NewPageFile()
	if f.NumPages() != 0 {
		t.Fatalf("fresh file has %d pages", f.NumPages())
	}
	a, errA := f.Allocate()
	b, errB := f.Allocate()
	if errA != nil || errB != nil {
		t.Fatalf("Allocate errors: %v %v", errA, errB)
	}
	if a == InvalidPageID || b == InvalidPageID || a == b {
		t.Fatalf("bad ids %d %d", a, b)
	}
	src := make([]byte, PageSize)
	src[0], src[PageSize-1] = 0xAB, 0xCD
	if err := f.write(a, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, PageSize)
	if err := f.read(a, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0xAB || dst[PageSize-1] != 0xCD {
		t.Error("page bytes lost")
	}
	if err := f.read(InvalidPageID, dst); err == nil {
		t.Error("reading null page did not fail")
	}
	if err := f.read(PageID(99), dst); err == nil {
		t.Error("reading unallocated page did not fail")
	}
	if f.SizeBytes() != 2*PageSize {
		t.Errorf("SizeBytes = %d", f.SizeBytes())
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	f := NewPageFile()
	stats := &IOStats{}
	pool := NewBufferPool(f, 2, stats)
	p, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := p.ID()
	p.PutUint32(0, 42)
	pool.MarkDirty(id)
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}

	// First Get after DropAll is a miss; second is a hit.
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	stats.Reset()
	if _, err := pool.Get(id); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Get(id); err != nil {
		t.Fatal(err)
	}
	s := stats.Snapshot()
	if s.LogicalRead != 2 || s.DiskRead != 1 {
		t.Errorf("stats = %d logical / %d disk, want 2 logical / 1 disk", s.LogicalRead, s.DiskRead)
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	f := NewPageFile()
	pool := NewBufferPool(f, 1, nil) // single frame forces eviction
	a, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	aid := a.ID()
	a.PutUint64(0, 111)
	pool.MarkDirty(aid)

	b, err := pool.Allocate() // evicts a, which must be written back
	if err != nil {
		t.Fatal(err)
	}
	bid := b.ID()
	b.PutUint64(0, 222)
	pool.MarkDirty(bid)

	got, err := pool.Get(aid) // evicts b
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64(0) != 111 {
		t.Errorf("page a = %d after eviction round-trip", got.Uint64(0))
	}
	got, err = pool.Get(bid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint64(0) != 222 {
		t.Errorf("page b = %d after eviction round-trip", got.Uint64(0))
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	f := NewPageFile()
	stats := &IOStats{}
	pool := NewBufferPool(f, 2, stats)
	var ids []PageID
	for i := 0; i < 3; i++ {
		p, err := pool.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p.PutUint32(0, uint32(i))
		pool.MarkDirty(p.ID())
		ids = append(ids, p.ID())
	}
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	// Touch 0, 1; then touching 0 again and fetching 2 must evict 1.
	mustGet := func(id PageID) {
		t.Helper()
		if _, err := pool.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(ids[0])
	mustGet(ids[1])
	mustGet(ids[0]) // refresh 0
	mustGet(ids[2]) // evicts 1
	stats.Reset()
	mustGet(ids[0]) // hit
	s := stats.Snapshot()
	if s.DiskRead != 0 {
		t.Errorf("page 0 was evicted despite LRU refresh")
	}
	mustGet(ids[1]) // miss
	if stats.Snapshot().DiskRead != 1 {
		t.Errorf("page 1 should have been evicted")
	}
}

func TestFramesForBudget(t *testing.T) {
	if got := FramesForBudget(0); got != 1 {
		t.Errorf("zero budget -> %d frames", got)
	}
	if got := FramesForBudget(10 * PageSize); got != 10 {
		t.Errorf("10-page budget -> %d", got)
	}
}

func TestPageDataRoundTripQuick(t *testing.T) {
	f := func(off uint16, v uint64) bool {
		var p Page
		o := int(off) % (PageSize - 8)
		p.PutUint64(o, v)
		return p.Uint64(o) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIOStatsConcurrent(t *testing.T) {
	f := NewPageFile()
	stats := &IOStats{}
	pool := NewBufferPool(f, 4, stats)
	ids := make([]PageID, 8)
	for i := range ids {
		p, err := pool.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = p.ID()
	}
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 100; i++ {
				if _, err := pool.Get(ids[(w+i)%len(ids)]); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := stats.Snapshot().LogicalRead; got != 400 {
		t.Errorf("logical reads = %d, want 400", got)
	}
}
