// Package storage simulates the disk-resident setting of the paper: every
// index structure serializes into fixed-size 4096-byte pages held by a page
// file, and all reads go through an LRU buffer pool that counts buffer
// misses as disk accesses. An optional per-I/O latency can be injected so
// that response times become I/O-dominated, as on the paper's testbed.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PageSize is the fixed page size in bytes, matching the paper's setup.
const PageSize = 4096

// PageID identifies a page within a PageFile. The zero value InvalidPageID
// never refers to a real page.
type PageID uint32

// InvalidPageID is the null page reference.
const InvalidPageID PageID = 0

// ErrPageBounds is returned when a read or write would cross a page border.
var ErrPageBounds = errors.New("storage: access beyond page bounds")

// Page is a fixed-size block of bytes with little-endian accessors. A Page
// is obtained from a buffer pool and must not be retained across other pool
// operations (the frame may be evicted and reused).
type Page struct {
	id   PageID
	data [PageSize]byte
}

// ID returns the page's identifier.
func (p *Page) ID() PageID { return p.id }

// Data returns the raw page bytes.
func (p *Page) Data() []byte { return p.data[:] }

// PutUint16 stores v at byte offset off.
func (p *Page) PutUint16(off int, v uint16) {
	binary.LittleEndian.PutUint16(p.data[off:off+2], v)
}

// Uint16 loads the value at byte offset off.
func (p *Page) Uint16(off int) uint16 { return binary.LittleEndian.Uint16(p.data[off : off+2]) }

// PutUint32 stores v at byte offset off.
func (p *Page) PutUint32(off int, v uint32) {
	binary.LittleEndian.PutUint32(p.data[off:off+4], v)
}

// Uint32 loads the value at byte offset off.
func (p *Page) Uint32(off int) uint32 { return binary.LittleEndian.Uint32(p.data[off : off+4]) }

// PutUint64 stores v at byte offset off.
func (p *Page) PutUint64(off int, v uint64) {
	binary.LittleEndian.PutUint64(p.data[off:off+8], v)
}

// Uint64 loads the value at byte offset off.
func (p *Page) Uint64(off int) uint64 { return binary.LittleEndian.Uint64(p.data[off : off+8]) }

// PutFloat64 stores v at byte offset off as IEEE-754 bits.
func (p *Page) PutFloat64(off int, v float64) { p.PutUint64(off, float64bits(v)) }

// Float64 loads the value at byte offset off.
func (p *Page) Float64(off int) float64 { return float64frombits(p.Uint64(off)) }

// WriteAt copies b into the page at offset off.
func (p *Page) WriteAt(off int, b []byte) error {
	// off > PageSize is checked before the subtraction so that off+len(b)
	// can never be computed in overflowing form.
	if off < 0 || off > PageSize || len(b) > PageSize-off {
		return fmt.Errorf("%w: off=%d len=%d", ErrPageBounds, off, len(b))
	}
	copy(p.data[off:], b)
	return nil
}

// ReadAt copies len(b) bytes from the page at offset off into b.
func (p *Page) ReadAt(off int, b []byte) error {
	if off < 0 || off > PageSize || len(b) > PageSize-off {
		return fmt.Errorf("%w: off=%d len=%d", ErrPageBounds, off, len(b))
	}
	copy(b, p.data[off:off+len(b)])
	return nil
}
