package storage

import "testing"

// newMVCCPage allocates one flushed base page holding val at offset 0.
func newMVCCPage(t *testing.T, pool *BufferPool, val uint32) PageID {
	t.Helper()
	p, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p.PutUint32(0, val)
	pool.MarkDirty(p.ID())
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	return p.ID()
}

// readAt returns the uint32 at offset 0 as of the given LSN.
func readAt(t *testing.T, pool *BufferPool, id PageID, lsn uint64) uint32 {
	t.Helper()
	p, err := pool.ViewAt(lsn).Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return p.Uint32(0)
}

func TestWriteBatchInvisibleUntilPublish(t *testing.T) {
	pool := NewBufferPool(NewPageFile(), 4, nil)
	id := newMVCCPage(t, pool, 100)

	w := pool.NewBatch(1)
	p, err := w.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Uint32(0); got != 100 {
		t.Fatalf("batch read = %d, want 100", got)
	}
	p.PutUint32(0, 200)
	w.MarkDirty(id)

	// Nothing published: base pool and any view still read 100.
	if got := readAt(t, pool, id, 1); got != 100 {
		t.Fatalf("pre-publish view read = %d, want 100", got)
	}
	base, err := pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got := base.Uint32(0); got != 100 {
		t.Fatalf("pre-publish base read = %d, want 100", got)
	}
	if n := pool.OverlayPages(); n != 0 {
		t.Fatalf("OverlayPages before publish = %d, want 0", n)
	}

	pool.Publish(w)
	if n := pool.OverlayPages(); n != 1 {
		t.Fatalf("OverlayPages after publish = %d, want 1", n)
	}
	// A view pinned before the commit keeps the old value; at or after it,
	// the new one.
	if got := readAt(t, pool, id, 0); got != 100 {
		t.Fatalf("view@0 = %d, want 100", got)
	}
	if got := readAt(t, pool, id, 1); got != 200 {
		t.Fatalf("view@1 = %d, want 200", got)
	}
	if got := readAt(t, pool, id, 7); got != 200 {
		t.Fatalf("view@7 = %d, want 200", got)
	}
}

func TestWriteBatchDroppedChangesNothing(t *testing.T) {
	pool := NewBufferPool(NewPageFile(), 4, nil)
	id := newMVCCPage(t, pool, 5)

	w := pool.NewBatch(1)
	p, err := w.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	p.PutUint32(0, 6)
	w.MarkDirty(id)
	if _, err := w.Allocate(); err != nil {
		t.Fatal(err)
	}
	// The batch goes out of scope unpublished: no overlay entry, base
	// bytes untouched (only the abandoned allocation grew the file).
	w = nil
	_ = w
	if n := pool.OverlayPages(); n != 0 {
		t.Fatalf("OverlayPages after dropped batch = %d, want 0", n)
	}
	if got := readAt(t, pool, id, 99); got != 5 {
		t.Fatalf("read after dropped batch = %d, want 5", got)
	}
}

func TestWriteBatchReadsNewestPublishedVersion(t *testing.T) {
	pool := NewBufferPool(NewPageFile(), 4, nil)
	id := newMVCCPage(t, pool, 1)

	for lsn := uint64(2); lsn <= 4; lsn++ {
		w := pool.NewBatch(lsn)
		p, err := w.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		// Each batch must see the previous commit, not the base file.
		if got, want := p.Uint32(0), uint32(lsn-1); got != want {
			t.Fatalf("batch@%d read = %d, want %d", lsn, got, want)
		}
		p.PutUint32(0, uint32(lsn))
		w.MarkDirty(id)
		pool.Publish(w)
	}
	// Every pinned LSN resolves its own version.
	for lsn := uint64(1); lsn <= 4; lsn++ {
		if got := readAt(t, pool, id, lsn); got != uint32(lsn) {
			t.Fatalf("view@%d = %d, want %d", lsn, got, lsn)
		}
	}
}

func TestFoldToWritesBackAndTrims(t *testing.T) {
	f := NewPageFile()
	pool := NewBufferPool(f, 4, nil)
	id := newMVCCPage(t, pool, 1)

	for lsn := uint64(2); lsn <= 3; lsn++ {
		w := pool.NewBatch(lsn)
		p, err := w.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		p.PutUint32(0, uint32(lsn))
		w.MarkDirty(id)
		pool.Publish(w)
	}

	// Fold through LSN 2: the lsn-2 bytes reach the base file, the lsn-3
	// version stays in the overlay.
	if err := pool.FoldTo(2); err != nil {
		t.Fatal(err)
	}
	if n := pool.OverlayPages(); n != 1 {
		t.Fatalf("OverlayPages after FoldTo(2) = %d, want 1 (lsn-3 version kept)", n)
	}
	var buf [PageSize]byte
	if err := f.read(id, buf[:]); err != nil {
		t.Fatal(err)
	}
	if got := (&Page{data: buf}).Uint32(0); got != 2 {
		t.Fatalf("base file after FoldTo(2) = %d, want 2", got)
	}
	// A reader still pinned at 2 reads the folded base; at 3, the overlay.
	if got := readAt(t, pool, id, 2); got != 2 {
		t.Fatalf("view@2 after fold = %d, want 2", got)
	}
	if got := readAt(t, pool, id, 3); got != 3 {
		t.Fatalf("view@3 after fold = %d, want 3", got)
	}

	if err := pool.FoldTo(3); err != nil {
		t.Fatal(err)
	}
	if n := pool.OverlayPages(); n != 0 {
		t.Fatalf("OverlayPages after FoldTo(3) = %d, want 0", n)
	}
	if got := readAt(t, pool, id, 3); got != 3 {
		t.Fatalf("view@3 after full fold = %d, want 3", got)
	}
}

func TestEpochsPinUnpinHorizon(t *testing.T) {
	var e Epochs
	if !e.Pin(3) || !e.Pin(3) || !e.Pin(7) {
		t.Fatal("fresh pins must succeed")
	}
	if got := e.Pinned(); got != 3 {
		t.Fatalf("Pinned = %d, want 3", got)
	}
	// The horizon stops at the minimum pinned LSN.
	if got := e.FoldHorizon(10); got != 3 {
		t.Fatalf("FoldHorizon(10) = %d, want 3", got)
	}
	e.Unpin(3)
	e.Unpin(3)
	if got := e.FoldHorizon(10); got != 7 {
		t.Fatalf("FoldHorizon(10) after unpin = %d, want 7", got)
	}
	e.Unpin(7)
	if got := e.FoldHorizon(10); got != 10 {
		t.Fatalf("FoldHorizon(10) with nothing pinned = %d, want 10", got)
	}
	// The horizon is monotone even if the current LSN runs behind it.
	if got := e.FoldHorizon(4); got != 10 {
		t.Fatalf("FoldHorizon(4) = %d, want 10 (monotone)", got)
	}
	// Pinning below the horizon fails: those versions may be reclaimed.
	if e.Pin(9) {
		t.Fatal("Pin(9) below the fold horizon must fail")
	}
	if !e.Pin(10) {
		t.Fatal("Pin(10) at the horizon must succeed")
	}
	if got := e.FoldHorizon(12); got != 10 {
		t.Fatalf("FoldHorizon(12) with pin at 10 = %d, want 10", got)
	}
}

func TestFoldRespectsPinnedReaders(t *testing.T) {
	pool := NewBufferPool(NewPageFile(), 4, nil)
	id := newMVCCPage(t, pool, 1)

	var e Epochs
	if !e.Pin(1) { // a reader opened before the mutation below
		t.Fatal("Pin(1) failed")
	}

	w := pool.NewBatch(2)
	p, err := w.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	p.PutUint32(0, 2)
	w.MarkDirty(id)
	pool.Publish(w)

	// The pinned reader caps the horizon at 1, so the lsn-2 version stays
	// in the overlay and the reader keeps resolving the base bytes.
	if err := pool.FoldTo(e.FoldHorizon(2)); err != nil {
		t.Fatal(err)
	}
	if n := pool.OverlayPages(); n != 1 {
		t.Fatalf("OverlayPages with a pinned reader = %d, want 1", n)
	}
	if got := readAt(t, pool, id, 1); got != 1 {
		t.Fatalf("pinned view@1 = %d, want 1", got)
	}

	e.Unpin(1)
	if err := pool.FoldTo(e.FoldHorizon(2)); err != nil {
		t.Fatal(err)
	}
	if n := pool.OverlayPages(); n != 0 {
		t.Fatalf("OverlayPages after release = %d, want 0", n)
	}
	if got := readAt(t, pool, id, 2); got != 2 {
		t.Fatalf("view@2 after fold = %d, want 2", got)
	}
}
