package storage

import (
	"errors"
	"testing"
)

var errInjected = errors.New("injected disk fault")

func TestFaultHookReadFails(t *testing.T) {
	f := NewPageFile()
	pool := NewBufferPool(f, 2, nil)
	p, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := p.ID()
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	f.SetFault(func(op string, _ PageID) error {
		if op == "read" {
			return errInjected
		}
		return nil
	})
	if _, err := pool.Get(id); !errors.Is(err, errInjected) {
		t.Errorf("Get under fault = %v, want injected error", err)
	}
	// Clearing the hook restores service.
	f.SetFault(nil)
	if _, err := pool.Get(id); err != nil {
		t.Errorf("Get after clearing fault = %v", err)
	}
}

func TestFaultHookWriteFails(t *testing.T) {
	f := NewPageFile()
	pool := NewBufferPool(f, 2, nil)
	p, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pool.MarkDirty(p.ID())
	f.SetFault(func(op string, _ PageID) error {
		if op == "write" {
			return errInjected
		}
		return nil
	})
	if err := pool.Flush(); !errors.Is(err, errInjected) {
		t.Errorf("Flush under fault = %v, want injected error", err)
	}
}

func TestFaultHookSelectivePage(t *testing.T) {
	f := NewPageFile()
	pool := NewBufferPool(f, 1, nil)
	a, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	aid := a.ID()
	b, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	bid := b.ID()
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	f.SetFault(func(op string, id PageID) error {
		if op == "read" && id == bid {
			return errInjected
		}
		return nil
	})
	if _, err := pool.Get(aid); err != nil {
		t.Errorf("healthy page failed: %v", err)
	}
	if _, err := pool.Get(bid); !errors.Is(err, errInjected) {
		t.Errorf("faulty page returned %v", err)
	}
}
