package storage

import (
	"fmt"
	"math"
	"sync"
)

func float64bits(v float64) uint64     { return math.Float64bits(v) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }

// FaultHook inspects a page operation ("read" or "write") before it
// executes; a non-nil return fails the operation. Failure-injection tests
// use it to verify that I/O errors propagate cleanly through the index
// structures and search algorithms.
type FaultHook func(op string, id PageID) error

// File is the page store a BufferPool manages: the in-memory simulation
// (PageFile) or a real on-disk file (DiskPageFile).
type File interface {
	// Allocate reserves a fresh zeroed page and returns its ID.
	Allocate() PageID
	// NumPages returns the number of allocated pages.
	NumPages() int
	// SizeBytes returns the store's total size in bytes.
	SizeBytes() int64
	read(id PageID, dst []byte) error
	write(id PageID, src []byte) error
}

// PageFile is the backing "disk": an append-only collection of pages kept
// in memory. Page 0 is reserved so that InvalidPageID can act as a null
// reference. PageFile is safe for concurrent use.
type PageFile struct {
	mu    sync.RWMutex
	pages [][]byte
	fault FaultHook
}

// NewPageFile returns an empty page file.
func NewPageFile() *PageFile {
	// Reserve page 0 so that PageID 0 is never a live page.
	return &PageFile{pages: make([][]byte, 1)}
}

// Allocate reserves a fresh zeroed page and returns its ID.
func (f *PageFile) Allocate() PageID {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := PageID(len(f.pages))
	f.pages = append(f.pages, make([]byte, PageSize))
	return id
}

// NumPages returns the number of allocated pages (excluding the reserved
// null page).
func (f *PageFile) NumPages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.pages) - 1
}

// SizeBytes returns the total size of the file in bytes.
func (f *PageFile) SizeBytes() int64 { return int64(f.NumPages()) * PageSize }

// SetFault installs (or clears, with nil) the failure-injection hook.
func (f *PageFile) SetFault(hook FaultHook) {
	f.mu.Lock()
	f.fault = hook
	f.mu.Unlock()
}

// read copies the page's bytes into dst.
func (f *PageFile) read(id PageID, dst []byte) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.fault != nil {
		if err := f.fault("read", id); err != nil {
			return err
		}
	}
	if id == InvalidPageID || int(id) >= len(f.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	copy(dst, f.pages[id])
	return nil
}

// write copies src into the page's bytes.
func (f *PageFile) write(id PageID, src []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fault != nil {
		if err := f.fault("write", id); err != nil {
			return err
		}
	}
	if id == InvalidPageID || int(id) >= len(f.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	copy(f.pages[id], src)
	return nil
}
