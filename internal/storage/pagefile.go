package storage

import (
	"fmt"
	"math"
	"sync"
)

func float64bits(v float64) uint64     { return math.Float64bits(v) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }

// FaultHook inspects a page operation ("read" or "write") before it
// executes; a non-nil return fails the operation. It is the low-level
// escape hatch for tests with bespoke failure logic; structured,
// deterministic campaigns use an Injector (internal/fault) installed
// with SetInjector instead.
type FaultHook func(op string, id PageID) error

// Injector intercepts page I/O on a File. It is implemented by
// fault.Injector (internal/fault); the interface lives here, with plain
// string/uint32 parameters, so the storage layer stays free of the fault
// package and the fault package free of storage.
//
// Implementations must be safe for concurrent use.
type Injector interface {
	// BeforeOp is consulted before the operation; a non-nil return
	// aborts it with that error.
	BeforeOp(op string, page uint32) error
	// CorruptRead may mutate buf — the bytes a successful read is about
	// to return — and reports whether it did (silent media corruption).
	CorruptRead(page uint32, buf []byte) bool
	// WriteLimit reports how many of the size bytes of a page write
	// should reach the medium (size = full write, less = a torn write
	// that still reports success).
	WriteLimit(page uint32, size int) int
}

// hookInjector adapts the legacy FaultHook to the Injector interface:
// it can fail operations but never corrupts or tears.
type hookInjector FaultHook

func (h hookInjector) BeforeOp(op string, page uint32) error { return FaultHook(h)(op, PageID(page)) }
func (h hookInjector) CorruptRead(uint32, []byte) bool       { return false }
func (h hookInjector) WriteLimit(_ uint32, size int) int     { return size }

// File is the page store a BufferPool manages: the in-memory simulation
// (PageFile) or a real on-disk file (DiskPageFile).
type File interface {
	// Allocate reserves a fresh zeroed page and returns its ID. A
	// failure to extend the backing medium surfaces here, not on the
	// page's first use.
	Allocate() (PageID, error)
	// SetInjector installs (or clears, with nil) a fault injector
	// intercepting the store's page I/O.
	SetInjector(Injector)
	// NumPages returns the number of allocated pages.
	NumPages() int
	// SizeBytes returns the store's total size in bytes.
	SizeBytes() int64
	read(id PageID, dst []byte) error
	write(id PageID, src []byte) error
}

// PageFile is the backing "disk": an append-only collection of pages kept
// in memory. Page 0 is reserved so that InvalidPageID can act as a null
// reference. PageFile is safe for concurrent use.
type PageFile struct {
	mu    sync.RWMutex
	pages [][]byte
	inj   Injector
}

// NewPageFile returns an empty page file.
func NewPageFile() *PageFile {
	// Reserve page 0 so that PageID 0 is never a live page.
	return &PageFile{pages: make([][]byte, 1)}
}

// Allocate reserves a fresh zeroed page and returns its ID.
func (f *PageFile) Allocate() (PageID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := PageID(len(f.pages))
	f.pages = append(f.pages, make([]byte, PageSize))
	return id, nil
}

// NumPages returns the number of allocated pages (excluding the reserved
// null page).
func (f *PageFile) NumPages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.pages) - 1
}

// SizeBytes returns the total size of the file in bytes.
func (f *PageFile) SizeBytes() int64 { return int64(f.NumPages()) * PageSize }

// SetFault installs (or clears, with nil) the low-level failure hook.
func (f *PageFile) SetFault(hook FaultHook) {
	if hook == nil {
		f.SetInjector(nil)
		return
	}
	f.SetInjector(hookInjector(hook))
}

// SetInjector installs (or clears, with nil) the fault injector.
func (f *PageFile) SetInjector(in Injector) {
	f.mu.Lock()
	f.inj = in
	f.mu.Unlock()
}

// read copies the page's bytes into dst.
func (f *PageFile) read(id PageID, dst []byte) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.inj != nil {
		if err := f.inj.BeforeOp("read", uint32(id)); err != nil {
			return err
		}
	}
	if id == InvalidPageID || int(id) >= len(f.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	copy(dst, f.pages[id])
	if f.inj != nil {
		f.inj.CorruptRead(uint32(id), dst[:PageSize])
	}
	return nil
}

// write copies src into the page's bytes.
func (f *PageFile) write(id PageID, src []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	limit := PageSize
	if f.inj != nil {
		if err := f.inj.BeforeOp("write", uint32(id)); err != nil {
			return err
		}
		limit = f.inj.WriteLimit(uint32(id), PageSize)
	}
	if id == InvalidPageID || int(id) >= len(f.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	copy(f.pages[id], src[:limit])
	return nil
}
