package storage

import "sync"

// Epochs tracks which commit LSNs are pinned by active readers, and the
// fold horizon — the LSN up to which overlay versions have been (or are
// being) folded back into the base file. It is the reclamation half of the
// MVCC protocol:
//
//   - A reader pins the LSN of the root set it loaded. Pin re-validates
//     under the registry lock that the LSN has not already been folded
//     past; on failure the reader reloads the (newer) current root set and
//     pins again — the newest published LSN is always pinnable.
//   - FoldHorizon advances the horizon to the minimum pinned LSN (or the
//     current commit LSN when nothing is pinned) and returns it; the
//     caller then runs BufferPool.FoldTo with the result. Because the
//     horizon advance and every Pin serialize on the same lock, a fold can
//     never race a reader into pinning an LSN it is about to reclaim.
//
// The zero value is ready to use.
type Epochs struct {
	mu     sync.Mutex
	pins   map[uint64]int
	folded uint64
}

// Pin registers a reader at lsn. It fails (returning false, registering
// nothing) when lsn is below the fold horizon — the versions a reader at
// lsn would need may already be gone — in which case the caller must
// reload the current root set and pin its newer LSN instead.
func (e *Epochs) Pin(lsn uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if lsn < e.folded {
		return false
	}
	if e.pins == nil {
		e.pins = make(map[uint64]int)
	}
	e.pins[lsn]++
	return true
}

// Unpin releases one reader registered at lsn.
func (e *Epochs) Unpin(lsn uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n, ok := e.pins[lsn]; ok {
		if n <= 1 {
			delete(e.pins, lsn)
		} else {
			e.pins[lsn] = n - 1
		}
	}
}

// Pinned returns the number of active pins (observability and tests).
func (e *Epochs) Pinned() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, c := range e.pins {
		n += c
	}
	return n
}

// FoldHorizon advances the fold horizon to the minimum pinned LSN, or to
// current when nothing is pinned, and returns the (monotone) result. The
// caller feeds it to BufferPool.FoldTo; calls must be serialized by the
// caller (one fold at a time), though they may race Pin/Unpin freely.
func (e *Epochs) FoldHorizon(current uint64) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := current
	for lsn := range e.pins {
		if lsn < h {
			h = lsn
		}
	}
	if h > e.folded {
		e.folded = h
	}
	return e.folded
}
