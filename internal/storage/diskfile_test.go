package storage

import (
	"errors"
	"path/filepath"
	"testing"
)

func TestDiskPageFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := NewDiskPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pool := NewBufferPool(f, 2, nil)

	var ids []PageID
	for i := 0; i < 5; i++ {
		p, err := pool.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p.PutUint64(0, uint64(1000+i))
		pool.MarkDirty(p.ID())
		ids = append(ids, p.ID())
	}
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		p, err := pool.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Uint64(0); got != uint64(1000+i) {
			t.Fatalf("page %d = %d after disk round trip", id, got)
		}
	}
	if f.NumPages() != 5 {
		t.Errorf("NumPages = %d", f.NumPages())
	}
	if f.SizeBytes() != 5*PageSize {
		t.Errorf("SizeBytes = %d", f.SizeBytes())
	}
}

func TestDiskPageFileBounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := NewDiskPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dst := make([]byte, PageSize)
	if err := f.read(InvalidPageID, dst); err == nil {
		t.Error("read of null page succeeded")
	}
	if err := f.read(PageID(42), dst); err == nil {
		t.Error("read of unallocated page succeeded")
	}
	if err := f.write(PageID(42), dst); err == nil {
		t.Error("write of unallocated page succeeded")
	}
}

func TestDiskPageFileFaultHook(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := NewDiskPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pool := NewBufferPool(f, 1, nil)
	p, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := p.ID()
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	want := errors.New("injected")
	f.SetFault(func(op string, _ PageID) error {
		if op == "read" {
			return want
		}
		return nil
	})
	if _, err := pool.Get(id); !errors.Is(err, want) {
		t.Errorf("Get under fault = %v", err)
	}
}

// TestBTreeOnDisk is an integration check that the whole stack works on a
// real file (exercised via a pool here; btree-level tests construct their
// own in-memory pools).
func TestPoolEvictionPersistsOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	f, err := NewDiskPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pool := NewBufferPool(f, 1, nil) // single frame: every access evicts
	a, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	aid := a.ID()
	a.PutUint32(0, 7)
	pool.MarkDirty(aid)
	b, err := pool.Allocate() // evicts a to disk
	if err != nil {
		t.Fatal(err)
	}
	b.PutUint32(0, 8)
	pool.MarkDirty(b.ID())
	got, err := pool.Get(aid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint32(0) != 7 {
		t.Fatalf("evicted page lost on disk: %d", got.Uint32(0))
	}
}
