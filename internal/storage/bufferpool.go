package storage

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCorruptPage reports a page whose bytes failed checksum verification
// on a buffer miss: the store returned data that differs from what the
// pool last wrote back (a bit flip, a torn write, or any other silent
// media corruption). The page's data is never returned to the caller.
var ErrCorruptPage = errors.New("storage: corrupt page (checksum mismatch)")

// castagnoli is the CRC32C polynomial table used for page checksums —
// the same polynomial storage engines use for on-disk block checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Default retry policy for transient read faults.
const (
	defaultRetryMax  = 3
	defaultRetryBase = 200 * time.Microsecond
)

// IOCounters is a point-in-time copy of a pool's I/O counters.
type IOCounters struct {
	LogicalRead int64 // page requests
	DiskRead    int64 // buffer misses (the paper's "# disk accesses")
	DiskWrite   int64 // page write-backs
	ReadRetries int64 // transient read faults retried
	CorruptPage int64 // checksum failures detected
}

// IOStats counts the logical and physical page accesses performed through a
// buffer pool. Reads that hit the buffer are logical only; buffer misses
// count as disk accesses — the metric the paper reports. ReadRetries and
// CorruptPages track the robustness machinery: transient faults absorbed
// by the retry loop and checksum failures detected on miss.
//
// Every counter is a plain atomic, so recording and resetting are both
// latch-free: a Reset is an atomic swap per counter and can never stall a
// concurrent reader or writer. A Snapshot taken while counters move is not
// a single consistent cut across counters, only per-counter exact — all
// consumers aggregate deltas, for which this is sufficient.
type IOStats struct {
	LogicalRead  atomic.Int64
	DiskRead     atomic.Int64
	DiskWrite    atomic.Int64
	ReadRetries  atomic.Int64
	CorruptPages atomic.Int64
}

// Snapshot returns a copy of the counters.
func (s *IOStats) Snapshot() IOCounters {
	return IOCounters{
		LogicalRead: s.LogicalRead.Load(),
		DiskRead:    s.DiskRead.Load(),
		DiskWrite:   s.DiskWrite.Load(),
		ReadRetries: s.ReadRetries.Load(),
		CorruptPage: s.CorruptPages.Load(),
	}
}

// Reset zeroes all counters with one atomic swap each; no latch is taken,
// so in-flight queries keep counting without ever blocking on the reset.
func (s *IOStats) Reset() {
	s.LogicalRead.Swap(0)
	s.DiskRead.Swap(0)
	s.DiskWrite.Swap(0)
	s.ReadRetries.Swap(0)
	s.CorruptPages.Swap(0)
}

func (s *IOStats) addRead(miss bool) {
	s.LogicalRead.Add(1)
	if miss {
		s.DiskRead.Add(1)
	}
}

func (s *IOStats) addWrite() { s.DiskWrite.Add(1) }

func (s *IOStats) addRetry() { s.ReadRetries.Add(1) }

func (s *IOStats) addCorrupt() { s.CorruptPages.Add(1) }

// transientFault reports whether err marks itself retryable — the
// contract fault.Error (internal/fault) satisfies through its
// TransientFault method. The anonymous interface keeps storage free of
// a fault-package dependency.
func transientFault(err error) bool {
	var t interface{ TransientFault() bool }
	return errors.As(err, &t) && t.TransientFault()
}

// BufferPool is an LRU page cache in front of a PageFile. The paper uses an
// LRU buffer sized at 2% of the network dataset; use FramesForBudget to
// derive the frame count. BufferPool is safe for concurrent use, but a
// *Page returned by Get must not be used after subsequent pool calls from
// the same goroutine chain (frames are recycled on eviction). Callers that
// mutate a page must call MarkDirty before releasing it.
//
// With checksums enabled (SetChecksums) the pool stamps a CRC32C of every
// page it writes back and verifies it when the page is next read on a
// miss; a mismatch fails the read with an error matching ErrCorruptPage
// and the corrupt bytes are never admitted to the buffer. The sums are
// kept out-of-band (a side table, not page bytes), so the page layout and
// the paper's byte-exact accounting are unchanged; verification is off by
// default.
type BufferPool struct {
	mu        sync.Mutex
	file      File
	frames    map[PageID]*list.Element
	lru       *list.List // front = most recently used
	capacity  int
	stats     *IOStats
	ioLatency time.Duration

	// retryMax/retryBase bound the exponential-backoff retry of
	// transient read faults on the miss path.
	retryMax  int
	retryBase time.Duration

	// sumMu guards sums, the out-of-band CRC32C per page written back.
	// nil sums = checksums disabled. Taken after mu when both are held.
	sumMu sync.Mutex
	sums  map[PageID]uint32

	// verMu guards versions, the multi-version overlay: per page, the
	// LSN-stamped copy-on-write versions published by committed WriteBatches
	// and not yet folded back into the base file. Chains are ascending by
	// LSN. verMu is never held together with mu (the overlay check and the
	// base read are separate critical sections), so there is no ordering
	// constraint between them.
	verMu    sync.RWMutex
	versions map[PageID][]pageVersion
}

type frame struct {
	page  Page
	dirty bool
}

// NewBufferPool creates a pool with the given number of frames (minimum 1)
// over file. stats may be nil, in which case a private IOStats is created.
func NewBufferPool(file File, capacity int, stats *IOStats) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	if stats == nil {
		stats = &IOStats{}
	}
	return &BufferPool{
		file:      file,
		frames:    make(map[PageID]*list.Element, capacity),
		lru:       list.New(),
		capacity:  capacity,
		stats:     stats,
		retryMax:  defaultRetryMax,
		retryBase: defaultRetryBase,
	}
}

// FramesForBudget returns the number of frames an LRU buffer of
// budgetBytes holds (at least 1).
func FramesForBudget(budgetBytes int64) int {
	n := int(budgetBytes / PageSize)
	if n < 1 {
		n = 1
	}
	return n
}

// SetIOLatency injects a synthetic delay per buffer miss, making response
// time I/O-bound as on a spinning-disk testbed. Zero disables the delay.
func (b *BufferPool) SetIOLatency(d time.Duration) {
	b.mu.Lock()
	b.ioLatency = d
	b.mu.Unlock()
}

// SetChecksums enables (or disables) per-page CRC32C checksums: stamped
// on every write-back from now on, verified on every buffer miss for
// pages that have a stamp. Disabling drops all stamps.
func (b *BufferPool) SetChecksums(on bool) {
	b.sumMu.Lock()
	if on && b.sums == nil {
		b.sums = make(map[PageID]uint32)
	} else if !on {
		b.sums = nil
	}
	b.sumMu.Unlock()
}

// ChecksumsEnabled reports whether the pool verifies page checksums.
func (b *BufferPool) ChecksumsEnabled() bool {
	b.sumMu.Lock()
	defer b.sumMu.Unlock()
	return b.sums != nil
}

// SetRetry configures the transient-read-fault retry policy: at most max
// retries, sleeping base, 2*base, 4*base, ... between attempts. max 0
// disables retries; base 0 keeps the default backoff.
func (b *BufferPool) SetRetry(max int, base time.Duration) {
	b.mu.Lock()
	if max < 0 {
		max = 0
	}
	if base <= 0 {
		base = defaultRetryBase
	}
	b.retryMax, b.retryBase = max, base
	b.mu.Unlock()
}

// stamp records the CRC32C of a page's bytes at write-back time.
func (b *BufferPool) stamp(id PageID, data []byte) {
	b.sumMu.Lock()
	if b.sums != nil {
		b.sums[id] = crc32.Checksum(data, castagnoli)
	}
	b.sumMu.Unlock()
}

// verify checks freshly-read page bytes against the stamp from the last
// write-back. A page read for the first time since checksums were enabled
// has no stamp yet; its bytes are adopted as the baseline (stamped now),
// so any later divergence is caught without a full-file scan at enable
// time.
func (b *BufferPool) verify(id PageID, data []byte) error {
	b.sumMu.Lock()
	defer b.sumMu.Unlock()
	if b.sums == nil {
		return nil
	}
	got := crc32.Checksum(data, castagnoli)
	want, ok := b.sums[id]
	if !ok {
		b.sums[id] = got
		return nil
	}
	if got != want {
		b.stats.addCorrupt()
		return fmt.Errorf("storage: page %d checksum mismatch (stored %08x, read %08x): %w",
			id, want, got, ErrCorruptPage)
	}
	return nil
}

// SetCapacity resizes the pool (minimum 1 frame), evicting LRU frames as
// needed. Builds run with a generous capacity, then shrink to the paper's
// 2%-of-dataset budget before queries.
func (b *BufferPool) SetCapacity(n int) error {
	if n < 1 {
		n = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.capacity = n
	for len(b.frames) > b.capacity {
		el := b.lru.Back()
		victim := el.Value.(*frame)
		if victim.dirty {
			b.stamp(victim.page.id, victim.page.data[:])
			//lint:ignore lockio resize is a maintenance operation between build and query phases, not a query path
			if err := b.file.write(victim.page.id, victim.page.data[:]); err != nil {
				return err
			}
			b.stats.addWrite()
		}
		delete(b.frames, victim.page.id)
		b.lru.Remove(el)
	}
	return nil
}

// Capacity returns the pool's frame count.
func (b *BufferPool) Capacity() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity
}

// Stats returns the pool's I/O counters.
func (b *BufferPool) Stats() *IOStats { return b.stats }

// File returns the underlying page store.
func (b *BufferPool) File() File { return b.file }

// Allocate reserves a new page on the backing file and returns it pinned in
// the buffer (counted as neither read nor write until flushed). A failure
// to extend the backing medium is the caller's error, not a deferred one.
func (b *BufferPool) Allocate() (*Page, error) {
	id, err := b.file.Allocate()
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.evictForSpaceLocked(); err != nil {
		return nil, err
	}
	fr := &frame{dirty: true}
	fr.page.id = id
	b.frames[id] = b.lru.PushFront(fr)
	return &fr.page, nil
}

// Get returns the page with the given ID, loading it from the file on a
// buffer miss.
func (b *BufferPool) Get(id PageID) (*Page, error) {
	return b.GetCtx(context.Background(), id)
}

// GetCtx is Get with cancellation: a context that is already done fails
// before any counter is touched (no logical or disk read is recorded), and
// the injected IOLatency sleep of a buffer miss is interrupted when the
// context is canceled or its deadline expires mid-wait. The returned error
// wraps ctx.Err(), so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) hold.
//
// Transient read faults (errors exposing TransientFault() == true, as the
// fault injector's do) are retried with bounded exponential backoff; the
// retries are counted in the pool's IOStats. Permanent faults, corruption
// and exhausted retries fail the call.
func (b *BufferPool) GetCtx(ctx context.Context, id PageID) (*Page, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("storage: page %d read aborted: %w", id, err)
	}
	b.mu.Lock()
	if el, ok := b.frames[id]; ok {
		b.lru.MoveToFront(el)
		b.stats.addRead(false)
		p := &el.Value.(*frame).page
		b.mu.Unlock()
		return p, nil
	}
	b.stats.addRead(true)
	lat, retryMax, backoff := b.ioLatency, b.retryMax, b.retryBase
	b.mu.Unlock()

	// Miss path: the injected latency sleep and the physical read happen
	// OUTSIDE the pool latch, so concurrent misses overlap instead of
	// serializing every query behind one simulated seek (the lockio
	// invariant). The page is read into a private frame and admitted
	// under the latch afterwards.
	if lat > 0 {
		if err := sleepCtx(ctx, lat); err != nil {
			return nil, fmt.Errorf("storage: page %d read interrupted: %w", id, err)
		}
	}
	fr := &frame{}
	fr.page.id = id
	for attempt := 0; ; attempt++ {
		err := b.file.read(id, fr.page.data[:])
		if err == nil {
			if err := b.verify(id, fr.page.data[:]); err != nil {
				return nil, err
			}
			break
		}
		if attempt >= retryMax || !transientFault(err) {
			return nil, err
		}
		b.stats.addRetry()
		if serr := sleepCtx(ctx, backoff); serr != nil {
			return nil, fmt.Errorf("storage: page %d retry aborted after transient fault (%v): %w", id, err, serr)
		}
		backoff *= 2
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.frames[id]; ok {
		// Another goroutine admitted the page while we were reading; use
		// its frame, which may already carry newer (dirty) data.
		b.lru.MoveToFront(el)
		return &el.Value.(*frame).page, nil
	}
	if err := b.evictForSpaceLocked(); err != nil {
		return nil, err
	}
	b.frames[id] = b.lru.PushFront(fr)
	return &fr.page, nil
}

// sleepCtx waits for d or until ctx is done, whichever comes first. A
// context that can never be canceled sleeps directly, avoiding the timer
// allocation on the common Background path.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// MarkDirty records that the page was modified so eviction writes it back.
func (b *BufferPool) MarkDirty(id PageID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.frames[id]; ok {
		el.Value.(*frame).dirty = true
	}
}

// Flush writes all dirty pages back to the file without evicting them.
func (b *BufferPool) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for el := b.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if fr.dirty {
			b.stamp(fr.page.id, fr.page.data[:])
			//lint:ignore lockio the latch must pin every dirty frame until its bytes hit the file, or MarkDirty could race the write-back
			if err := b.file.write(fr.page.id, fr.page.data[:]); err != nil {
				return err
			}
			fr.dirty = false
			b.stats.addWrite()
		}
	}
	return nil
}

// DropAll flushes and then empties the buffer, so the next reads are cold.
// Experiments use this between the build phase and the query phase.
func (b *BufferPool) DropAll() error {
	if err := b.Flush(); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.frames = make(map[PageID]*list.Element, b.capacity)
	b.lru.Init()
	return nil
}

// evictForSpaceLocked makes room for one more frame, writing back dirty
// victims. Caller holds b.mu; the write-back deliberately stays under
// the latch because a dirty victim must not be readable from the file
// map while its data is still in flight (dirty evictions only occur on
// write-heavy build paths, never on the concurrent query path).
func (b *BufferPool) evictForSpaceLocked() error {
	for len(b.frames) >= b.capacity {
		el := b.lru.Back()
		if el == nil {
			return fmt.Errorf("storage: buffer pool with no evictable frame")
		}
		victim := el.Value.(*frame)
		if victim.dirty {
			b.stamp(victim.page.id, victim.page.data[:])
			//lint:ignore lockio write-back of a dirty victim must complete before the page leaves the frame map
			if err := b.file.write(victim.page.id, victim.page.data[:]); err != nil {
				return err
			}
			b.stats.addWrite()
		}
		delete(b.frames, victim.page.id)
		b.lru.Remove(el)
	}
	return nil
}
