package storage

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// failOnWrite is a minimal injector failing the Nth write.
type failOnWrite struct{ n, seen int }

func (f *failOnWrite) BeforeOp(op string, page uint32) error {
	if op != "write" {
		return nil
	}
	f.seen++
	if f.seen == f.n {
		return errors.New("injected write failure")
	}
	return nil
}
func (f *failOnWrite) CorruptRead(uint32, []byte) bool   { return false }
func (f *failOnWrite) WriteLimit(_ uint32, size int) int { return size }

// tearNext tears every write to a fixed prefix.
type tearNext struct{ limit int }

func (t *tearNext) BeforeOp(string, uint32) error      { return nil }
func (t *tearNext) CorruptRead(uint32, []byte) bool    { return false }
func (t *tearNext) WriteLimit(_ uint32, size int) int {
	if t.limit < size {
		return t.limit
	}
	return size
}

// failSync fails every fsync.
type failSync struct{}

func (failSync) BeforeOp(op string, page uint32) error {
	if op == "sync" {
		return errors.New("injected sync failure")
	}
	return nil
}
func (failSync) CorruptRead(uint32, []byte) bool   { return false }
func (failSync) WriteLimit(_ uint32, size int) int { return size }

func TestLogFileAppendAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, err := OpenLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off1, err := l.Append([]byte("hello"))
	if err != nil || off1 != 0 {
		t.Fatalf("Append = (%d, %v), want (0, nil)", off1, err)
	}
	off2, err := l.Append([]byte("world"))
	if err != nil || off2 != 5 {
		t.Fatalf("Append = (%d, %v), want (5, nil)", off2, err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Size(); got != 10 {
		t.Fatalf("Size = %d, want 10", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen appends at the end, not the start.
	l2, err := OpenLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Size(); got != 10 {
		t.Fatalf("Size after reopen = %d, want 10", got)
	}
	if off, err := l2.Append([]byte("!")); err != nil || off != 10 {
		t.Fatalf("Append after reopen = (%d, %v), want (10, nil)", off, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "helloworld!" {
		t.Fatalf("file contents %q", data)
	}
}

func TestLogFileInjectedWriteFailureWritesNothing(t *testing.T) {
	l, err := OpenLogFile(filepath.Join(t.TempDir(), "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetInjector(&failOnWrite{n: 1})
	if _, err := l.Append([]byte("doomed")); err == nil {
		t.Fatal("Append under a write fault returned nil")
	}
	if got := l.Size(); got != 0 {
		t.Fatalf("Size after failed append = %d, want 0 (nothing written)", got)
	}
}

func TestLogFileTornAppendReportsShortWrite(t *testing.T) {
	l, err := OpenLogFile(filepath.Join(t.TempDir(), "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetInjector(&tearNext{limit: 3})
	off, err := l.Append([]byte("abcdef"))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("torn append err = %v, want io.ErrShortWrite", err)
	}
	if got := l.Size(); got != 3 {
		t.Fatalf("Size after torn append = %d, want 3 (the torn prefix)", got)
	}
	// The documented repair: truncate back to the returned offset.
	if err := l.Truncate(off); err != nil {
		t.Fatal(err)
	}
	l.SetInjector(nil)
	if off, err := l.Append([]byte("abcdef")); err != nil || off != 0 {
		t.Fatalf("Append after repair = (%d, %v), want (0, nil)", off, err)
	}
	_, _, torn := l.Stats()
	if torn != 1 {
		t.Fatalf("torn counter = %d, want 1", torn)
	}
}

func TestLogFileInjectedSyncFailure(t *testing.T) {
	l, err := OpenLogFile(filepath.Join(t.TempDir(), "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("data")); err != nil {
		t.Fatal(err)
	}
	l.SetInjector(failSync{})
	if err := l.Sync(); err == nil {
		t.Fatal("Sync under a sync fault returned nil")
	}
	l.SetInjector(nil)
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync after clearing faults: %v", err)
	}
}

func TestLogFileTruncateBeyondSizeRejected(t *testing.T) {
	l, err := OpenLogFile(filepath.Join(t.TempDir(), "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Truncate(1); err == nil {
		t.Fatal("Truncate beyond size returned nil")
	}
}
