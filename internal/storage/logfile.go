package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// LogFile is an append-only byte log backed by a real file, the medium
// under the write-ahead log (internal/wal). It carries the same Injector
// seam as the page stores, so appends and fsyncs are fault-injectable
// like page I/O: the injector sees the page-aligned block number of the
// append offset (offset / PageSize), letting page-targeted specs address
// regions of the log, and fsyncs report under the "sync" operation.
//
// Append and Truncate serialize on an internal mutex; Sync snapshots the
// file handle under the mutex but performs the fsync outside it, so
// concurrent appends are never stalled behind a flush (the group-commit
// property the WAL's batching depends on).
type LogFile struct {
	mu   sync.Mutex
	f    *os.File
	size int64
	inj  Injector

	appends int64
	syncs   int64
	torn    int64
}

// OpenLogFile opens (creating if needed, never truncating) the log file
// at path and positions appends at its current end.
func OpenLogFile(path string) (*LogFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &LogFile{f: f, size: st.Size()}, nil
}

// SetInjector installs (or clears, with nil) the fault injector
// intercepting the log's appends and fsyncs.
func (l *LogFile) SetInjector(in Injector) {
	l.mu.Lock()
	l.inj = in
	l.mu.Unlock()
}

// Size returns the log's current size in bytes, including any torn
// prefix a failed append left behind (callers repair with Truncate).
func (l *LogFile) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Stats reports the operation counters: completed appends, fsyncs, and
// torn (partially applied) appends.
func (l *LogFile) Stats() (appends, syncs, torn int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.syncs, l.torn
}

// Append writes p at the end of the log and returns the offset it was
// written at. An injected failure aborts the append before any byte is
// written; an injected torn write applies only a prefix, extends the
// size by that prefix, and fails with an error matching
// io.ErrShortWrite — the caller must Truncate back to the returned
// offset before appending again, or the log carries a torn record.
func (l *LogFile) Append(p []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	off := l.size
	limit := len(p)
	if l.inj != nil {
		block := uint32(off / PageSize)
		if err := l.inj.BeforeOp("write", block); err != nil {
			return off, err
		}
		limit = l.inj.WriteLimit(block, len(p))
	}
	n, err := l.f.WriteAt(p[:limit], off)
	l.size += int64(n)
	if err != nil {
		return off, fmt.Errorf("storage: log append at %d: %w", off, err)
	}
	if limit < len(p) {
		l.torn++
		return off, fmt.Errorf("storage: torn log append at %d (%d of %d bytes): %w",
			off, limit, len(p), io.ErrShortWrite)
	}
	l.appends++
	return off, nil
}

// Sync makes every appended byte durable. The fsync itself runs outside
// the log's mutex, so appends proceed concurrently; an injected "sync"
// fault models a medium that accepts writes but cannot flush them.
func (l *LogFile) Sync() error {
	l.mu.Lock()
	f, inj, size := l.f, l.inj, l.size
	l.syncs++
	l.mu.Unlock()
	if inj != nil {
		if err := inj.BeforeOp("sync", uint32(size/PageSize)); err != nil {
			return err
		}
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: log fsync: %w", err)
	}
	return nil
}

// Truncate cuts the log back to size bytes — the repair for a torn
// append, and the poison-path cleanup that drops an unacknowledged tail.
func (l *LogFile) Truncate(size int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if size > l.size {
		return fmt.Errorf("storage: log truncate to %d beyond size %d", size, l.size)
	}
	if err := l.f.Truncate(size); err != nil {
		return fmt.Errorf("storage: log truncate to %d: %w", size, err)
	}
	l.size = size
	return nil
}

// Close releases the underlying file.
func (l *LogFile) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
