package storage

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzPageRoundTrip drives Page.WriteAt/ReadAt with arbitrary offsets and
// payloads: out-of-range accesses must return ErrPageBounds (never panic,
// even for offsets that would overflow off+len), and accepted writes must
// read back byte-identical without disturbing neighbouring bytes.
func FuzzPageRoundTrip(f *testing.F) {
	f.Add(0, []byte("hello"))
	f.Add(PageSize-3, []byte("overrun"))
	f.Add(-1, []byte{1})
	f.Add(int(^uint(0)>>1)-2, []byte{1, 2, 3}) // off near MaxInt: off+len overflows
	f.Add(PageSize, []byte{})
	f.Fuzz(func(t *testing.T, off int, data []byte) {
		var p Page
		err := p.WriteAt(off, data)
		inBounds := off >= 0 && off <= PageSize && len(data) <= PageSize-off
		if inBounds != (err == nil) {
			t.Fatalf("WriteAt(off=%d, len=%d): err=%v, want in-bounds=%v", off, len(data), err, inBounds)
		}
		if err != nil {
			if !errors.Is(err, ErrPageBounds) {
				t.Fatalf("WriteAt error %v does not wrap ErrPageBounds", err)
			}
			if p.ReadAt(off, make([]byte, len(data))) == nil {
				t.Fatalf("ReadAt accepted bounds WriteAt rejected: off=%d len=%d", off, len(data))
			}
			return
		}
		got := make([]byte, len(data))
		if err := p.ReadAt(off, got); err != nil {
			t.Fatalf("ReadAt after successful WriteAt failed: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch at off=%d: wrote %q, read %q", off, data, got)
		}
		// Bytes outside the written window must stay zero.
		for i, b := range p.Data() {
			if (i < off || i >= off+len(data)) && b != 0 {
				t.Fatalf("WriteAt(off=%d, len=%d) disturbed byte %d", off, len(data), i)
			}
		}
	})
}
