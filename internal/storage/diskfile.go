package storage

import (
	"fmt"
	"os"
	"sync"
)

// DiskPageFile is a page store backed by a real file on disk: the same
// File contract as the in-memory PageFile, but every buffer miss is an
// actual pread and every write-back an actual pwrite. Useful when the
// simulated I/O accounting should be grounded in a physical medium.
type DiskPageFile struct {
	mu    sync.Mutex
	f     *os.File
	pages int
	inj   Injector
	// scratch page used to extend the file on Allocate.
	zero [PageSize]byte
}

// NewDiskPageFile creates (truncating) a page file at path. Page 0 is
// reserved, as in the in-memory store.
func NewDiskPageFile(path string) (*DiskPageFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	d := &DiskPageFile{f: f}
	// Reserve page 0 so InvalidPageID never refers to a live page.
	if _, err := f.WriteAt(d.zero[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	d.pages = 1
	return d, nil
}

// Close releases the underlying file.
func (d *DiskPageFile) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

// SetFault installs (or clears, with nil) the low-level failure hook.
func (d *DiskPageFile) SetFault(hook FaultHook) {
	if hook == nil {
		d.SetInjector(nil)
		return
	}
	d.SetInjector(hookInjector(hook))
}

// SetInjector installs (or clears, with nil) the fault injector.
func (d *DiskPageFile) SetInjector(in Injector) {
	d.mu.Lock()
	d.inj = in
	d.mu.Unlock()
}

// Allocate implements File: the file is extended with a zero page, and a
// failure to extend it (a full disk, most likely) surfaces here rather
// than on the page's first use.
func (d *DiskPageFile) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(d.pages)
	if _, err := d.f.WriteAt(d.zero[:], int64(id)*PageSize); err != nil {
		return InvalidPageID, fmt.Errorf("storage: extending page file to page %d: %w", id, err)
	}
	d.pages++
	return id, nil
}

// NumPages implements File.
func (d *DiskPageFile) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages - 1
}

// SizeBytes implements File.
func (d *DiskPageFile) SizeBytes() int64 { return int64(d.NumPages()) * PageSize }

func (d *DiskPageFile) read(id PageID, dst []byte) error {
	d.mu.Lock()
	inj, pages := d.inj, d.pages
	d.mu.Unlock()
	if inj != nil {
		if err := inj.BeforeOp("read", uint32(id)); err != nil {
			return err
		}
	}
	if id == InvalidPageID || int(id) >= pages {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if _, err := d.f.ReadAt(dst[:PageSize], int64(id)*PageSize); err != nil {
		return err
	}
	if inj != nil {
		inj.CorruptRead(uint32(id), dst[:PageSize])
	}
	return nil
}

func (d *DiskPageFile) write(id PageID, src []byte) error {
	d.mu.Lock()
	inj, pages := d.inj, d.pages
	d.mu.Unlock()
	limit := PageSize
	if inj != nil {
		if err := inj.BeforeOp("write", uint32(id)); err != nil {
			return err
		}
		limit = inj.WriteLimit(uint32(id), PageSize)
	}
	if id == InvalidPageID || int(id) >= pages {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	_, err := d.f.WriteAt(src[:limit], int64(id)*PageSize)
	return err
}
