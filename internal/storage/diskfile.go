package storage

import (
	"fmt"
	"os"
	"sync"
)

// DiskPageFile is a page store backed by a real file on disk: the same
// File contract as the in-memory PageFile, but every buffer miss is an
// actual pread and every write-back an actual pwrite. Useful when the
// simulated I/O accounting should be grounded in a physical medium.
type DiskPageFile struct {
	mu    sync.Mutex
	f     *os.File
	pages int
	fault FaultHook
	// scratch page used to extend the file on Allocate.
	zero [PageSize]byte
}

// NewDiskPageFile creates (truncating) a page file at path. Page 0 is
// reserved, as in the in-memory store.
func NewDiskPageFile(path string) (*DiskPageFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	d := &DiskPageFile{f: f}
	// Reserve page 0 so InvalidPageID never refers to a live page.
	if _, err := f.WriteAt(d.zero[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	d.pages = 1
	return d, nil
}

// Close releases the underlying file.
func (d *DiskPageFile) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

// SetFault installs (or clears) the failure-injection hook.
func (d *DiskPageFile) SetFault(hook FaultHook) {
	d.mu.Lock()
	d.fault = hook
	d.mu.Unlock()
}

// Allocate implements File.
func (d *DiskPageFile) Allocate() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(d.pages)
	// Extend the file with a zero page; allocation failures surface on
	// the first read/write of the page.
	_, _ = d.f.WriteAt(d.zero[:], int64(id)*PageSize)
	d.pages++
	return id
}

// NumPages implements File.
func (d *DiskPageFile) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages - 1
}

// SizeBytes implements File.
func (d *DiskPageFile) SizeBytes() int64 { return int64(d.NumPages()) * PageSize }

func (d *DiskPageFile) read(id PageID, dst []byte) error {
	d.mu.Lock()
	fault, pages := d.fault, d.pages
	d.mu.Unlock()
	if fault != nil {
		if err := fault("read", id); err != nil {
			return err
		}
	}
	if id == InvalidPageID || int(id) >= pages {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	_, err := d.f.ReadAt(dst[:PageSize], int64(id)*PageSize)
	return err
}

func (d *DiskPageFile) write(id PageID, src []byte) error {
	d.mu.Lock()
	fault, pages := d.fault, d.pages
	d.mu.Unlock()
	if fault != nil {
		if err := fault("write", id); err != nil {
			return err
		}
	}
	if id == InvalidPageID || int(id) >= pages {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	_, err := d.f.WriteAt(src[:PageSize], int64(id)*PageSize)
	return err
}
