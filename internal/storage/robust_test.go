package storage

import (
	"context"
	"errors"
	"testing"
	"time"

	"dsks/internal/fault"
)

// newPoolWithPage returns a 2-frame pool over a PageFile with one
// allocated page whose first byte is 0xAA, flushed to the file.
func newPoolWithPage(t *testing.T) (*BufferPool, *PageFile, PageID) {
	t.Helper()
	f := NewPageFile()
	pool := NewBufferPool(f, 2, nil)
	p, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := p.ID()
	p.Data()[0] = 0xAA
	pool.MarkDirty(id)
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	return pool, f, id
}

func TestChecksumDetectsBitFlip(t *testing.T) {
	pool, f, id := newPoolWithPage(t)
	pool.SetChecksums(true)

	// First read stamps the baseline.
	if _, err := pool.Get(id); err != nil {
		t.Fatal(err)
	}
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}

	// Every read from now on flips one bit of the returned bytes.
	in, err := fault.New(fault.Config{EveryN: 1, Mode: fault.ModeFlipBit, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f.SetInjector(in)
	_, err = pool.Get(id)
	if !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("flipped page read err = %v, want ErrCorruptPage", err)
	}
	if got := pool.Stats().Snapshot().CorruptPage; got != 1 {
		t.Errorf("CorruptPage counter = %d, want 1", got)
	}

	// Clearing the injector heals the medium: the clean bytes verify again.
	f.SetInjector(nil)
	p, err := pool.Get(id)
	if err != nil {
		t.Fatalf("clean re-read failed: %v", err)
	}
	if p.Data()[0] != 0xAA {
		t.Errorf("page byte = %#x, want 0xAA", p.Data()[0])
	}
}

func TestChecksumOffAdmitsCorruption(t *testing.T) {
	pool, f, id := newPoolWithPage(t)
	// No SetChecksums: the flip goes undetected (the paper-faithful
	// default trades integrity checking for byte-exact accounting).
	in, err := fault.New(fault.Config{EveryN: 1, Mode: fault.ModeFlipBit, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f.SetInjector(in)
	if _, err := pool.Get(id); err != nil {
		t.Fatalf("checksum-off read failed: %v", err)
	}
	if got := pool.Stats().Snapshot().CorruptPage; got != 0 {
		t.Errorf("CorruptPage counter = %d, want 0", got)
	}
}

func TestTransientReadFaultIsRetried(t *testing.T) {
	pool, f, id := newPoolWithPage(t)
	pool.SetRetry(3, 10*time.Microsecond)

	// Two transient failures, then success: the retry loop absorbs both.
	in, err := fault.New(fault.Config{Op: fault.OpRead, EveryN: 1, MaxFaults: 2, Transient: true})
	if err != nil {
		t.Fatal(err)
	}
	f.SetInjector(in)
	p, err := pool.Get(id)
	if err != nil {
		t.Fatalf("read with transient faults failed: %v", err)
	}
	if p.Data()[0] != 0xAA {
		t.Errorf("page byte = %#x, want 0xAA", p.Data()[0])
	}
	if got := pool.Stats().Snapshot().ReadRetries; got != 2 {
		t.Errorf("ReadRetries = %d, want 2", got)
	}
}

func TestPermanentFaultIsNotRetried(t *testing.T) {
	pool, f, id := newPoolWithPage(t)
	pool.SetRetry(5, 10*time.Microsecond)

	in, err := fault.New(fault.Config{Op: fault.OpRead, EveryN: 1}) // permanent
	if err != nil {
		t.Fatal(err)
	}
	f.SetInjector(in)
	if _, err := pool.Get(id); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("read err = %v, want injected fault", err)
	}
	if got := pool.Stats().Snapshot().ReadRetries; got != 0 {
		t.Errorf("ReadRetries = %d, want 0 for a permanent fault", got)
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	pool, f, id := newPoolWithPage(t)
	pool.SetRetry(2, 10*time.Microsecond)

	// More consecutive transient faults than the retry budget.
	in, err := fault.New(fault.Config{Op: fault.OpRead, EveryN: 1, Transient: true})
	if err != nil {
		t.Fatal(err)
	}
	f.SetInjector(in)
	_, gotErr := pool.Get(id)
	if !errors.Is(gotErr, fault.ErrInjected) {
		t.Fatalf("read err = %v, want injected fault after retries exhaust", gotErr)
	}
	if !fault.IsTransient(gotErr) {
		t.Errorf("exhausted-retries error lost its transient marker: %v", gotErr)
	}
	if got := pool.Stats().Snapshot().ReadRetries; got != 2 {
		t.Errorf("ReadRetries = %d, want 2", got)
	}
}

func TestRetryHonorsCancellation(t *testing.T) {
	pool, f, id := newPoolWithPage(t)
	pool.SetRetry(10, 50*time.Millisecond)

	in, err := fault.New(fault.Config{Op: fault.OpRead, EveryN: 1, Transient: true})
	if err != nil {
		t.Fatal(err)
	}
	f.SetInjector(in)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, gotErr := pool.GetCtx(ctx, id)
	if !errors.Is(gotErr, context.DeadlineExceeded) {
		t.Fatalf("read err = %v, want deadline exceeded", gotErr)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("canceled retry took %v, want prompt abort", elapsed)
	}
}

func TestTornWriteDetectedByChecksum(t *testing.T) {
	pool, f, id := newPoolWithPage(t)
	pool.SetChecksums(true)

	// Tear the next write-back to a 64-byte prefix. The stamp records the
	// full intended page, so the torn remainder fails verification on the
	// next miss.
	in, err := fault.New(fault.Config{Op: fault.OpWrite, EveryN: 1, MaxFaults: 1,
		Mode: fault.ModeTornWrite, TornBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Data() {
		p.Data()[i] = 0x5C
	}
	pool.MarkDirty(id)
	f.SetInjector(in)
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	f.SetInjector(nil)
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Get(id); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("torn page read err = %v, want ErrCorruptPage", err)
	}
}
