package geo

import (
	"math"
	"testing"
)

// FuzzZOrder checks the Morton-code invariants for arbitrary float64
// inputs, including infinities and NaN: ZCode never panics, always stays
// within the 42-bit key space, its bit layout round-trips exactly through
// deinterleave, and ZDecode lands within two cells of the clamped input.
func FuzzZOrder(f *testing.F) {
	f.Add(0.0, 0.0)
	f.Add(WorldMax, WorldMax)
	f.Add(-1.5, WorldMax*2)
	f.Add(1234.5678, 9876.5432)
	f.Add(math.Inf(1), math.Inf(-1))
	f.Add(math.NaN(), 42.0)
	f.Fuzz(func(t *testing.T, x, y float64) {
		code := ZCode(Point{X: x, Y: y})
		if code >= 1<<(2*zBits) {
			t.Fatalf("ZCode(%g, %g) = %#x exceeds %d bits", x, y, code, 2*zBits)
		}
		// The even/odd bit planes must reassemble into the same code.
		ix, iy := deinterleave(code), deinterleave(code>>1)
		if back := interleave(ix) | interleave(iy)<<1; back != code {
			t.Fatalf("interleave/deinterleave mismatch: %#x -> (%d,%d) -> %#x", code, ix, iy, back)
		}
		if ix >= zResolution || iy >= zResolution {
			t.Fatalf("deinterleave produced out-of-range cell (%d,%d)", ix, iy)
		}
		p := ZDecode(code)
		if p.X < 0 || p.X > WorldMax || p.Y < 0 || p.Y > WorldMax {
			t.Fatalf("ZDecode(%#x) = %v outside the world box", code, p)
		}
		// Quantization loses at most one cell per axis for finite inputs.
		const cell = WorldMax / (zResolution - 1)
		cx, cy := clampWorld(x), clampWorld(y)
		if !math.IsNaN(x) && math.Abs(p.X-cx) > 2*cell {
			t.Fatalf("ZDecode X drifted: in=%g clamped=%g out=%g", x, cx, p.X)
		}
		if !math.IsNaN(y) && math.Abs(p.Y-cy) > 2*cell {
			t.Fatalf("ZDecode Y drifted: in=%g clamped=%g out=%g", y, cy, p.Y)
		}
	})
}

func clampWorld(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > WorldMax {
		return WorldMax
	}
	return v
}
