package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-2, 0}, Point{2, 0}, 4},
	}
	for _, tc := range tests {
		if got := tc.a.Dist(tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Dist(tc.a); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Dist not symmetric for %v,%v", tc.a, tc.b)
		}
	}
}

func TestPointLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if got := a.Lerp(b, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp mid = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := a.Lerp(b, -1); got != a {
		t.Errorf("Lerp clamps below: %v", got)
	}
	if got := a.Lerp(b, 2); got != b {
		t.Errorf("Lerp clamps above: %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectOf(Point{2, 3}, Point{0, 1})
	if r != (Rect{0, 1, 2, 3}) {
		t.Fatalf("RectOf = %+v", r)
	}
	if r.Area() != 4 {
		t.Errorf("Area = %v", r.Area())
	}
	if r.Margin() != 4 {
		t.Errorf("Margin = %v", r.Margin())
	}
	if got := r.Center(); got != (Point{1, 2}) {
		t.Errorf("Center = %v", got)
	}
	if !r.Contains(Point{1, 2}) || r.Contains(Point{3, 3}) {
		t.Errorf("Contains wrong")
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if e.Area() != 0 {
		t.Errorf("empty area = %v", e.Area())
	}
	e.ExpandPoint(Point{1, 1})
	if e.IsEmpty() || e.Area() != 0 {
		t.Errorf("single point rect: %+v", e)
	}
	e.ExpandPoint(Point{3, 2})
	if e != (Rect{1, 1, 3, 2}) {
		t.Errorf("expanded rect = %+v", e)
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	tests := []struct {
		b    Rect
		want bool
	}{
		{Rect{1, 1, 3, 3}, true},
		{Rect{2, 2, 3, 3}, true}, // touching counts
		{Rect{3, 3, 4, 4}, false},
		{Rect{-1, -1, 5, 5}, true}, // containment
		{Rect{0.5, 0.5, 1, 1}, true},
	}
	for _, tc := range tests {
		if got := a.Intersects(tc.b); got != tc.want {
			t.Errorf("Intersects(%+v) = %v, want %v", tc.b, got, tc.want)
		}
		if got := tc.b.Intersects(a); got != tc.want {
			t.Errorf("Intersects not symmetric for %+v", tc.b)
		}
	}
}

func TestRectUnionEnlargement(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, 2, 3, 3}
	u := a.Union(b)
	if u != (Rect{0, 0, 3, 3}) {
		t.Fatalf("Union = %+v", u)
	}
	if got := a.Enlargement(b); got != 8 {
		t.Errorf("Enlargement = %v, want 8", got)
	}
	if got := a.Enlargement(Rect{0, 0, 0.5, 0.5}); got != 0 {
		t.Errorf("Enlargement of contained = %v", got)
	}
}

func TestRectMinDist(t *testing.T) {
	r := Rect{1, 1, 3, 3}
	tests := []struct {
		p    Point
		want float64
	}{
		{Point{2, 2}, 0},          // inside
		{Point{1, 1}, 0},          // corner
		{Point{0, 2}, 1},          // left of
		{Point{2, 5}, 2},          // above
		{Point{0, 0}, math.Sqrt2}, // diagonal
	}
	for _, tc := range tests {
		if got := r.MinDist(tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("MinDist(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestZCodeMonotoneCells(t *testing.T) {
	// Same cell -> same code; distinct far cells -> distinct codes.
	if ZCode(Point{0, 0}) != 0 {
		t.Errorf("origin code = %d", ZCode(Point{0, 0}))
	}
	a := ZCode(Point{100, 100})
	b := ZCode(Point{9000, 9000})
	if a == b {
		t.Error("far points share a Z-code")
	}
	if a > b {
		t.Error("Z-code not increasing along the diagonal")
	}
}

func TestZCodeClamps(t *testing.T) {
	lo := ZCode(Point{-50, -50})
	if lo != ZCode(Point{0, 0}) {
		t.Errorf("negative coords not clamped: %d", lo)
	}
	hi := ZCode(Point{WorldMax + 10, WorldMax + 10})
	if hi != ZCode(Point{WorldMax, WorldMax}) {
		t.Errorf("overflow coords not clamped")
	}
}

func TestZDecodeRoundTrip(t *testing.T) {
	cell := WorldMax / float64(zResolution-1)
	f := func(x, y uint16) bool {
		p := Point{float64(x) / 65535 * WorldMax, float64(y) / 65535 * WorldMax}
		back := ZDecode(ZCode(p))
		return math.Abs(back.X-p.X) <= cell && math.Abs(back.Y-p.Y) <= cell
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		v &= zResolution - 1
		return deinterleave(interleave(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZOrderLocality(t *testing.T) {
	// Nearby points should usually have closer codes than far points; we
	// check the weaker, always-true property that points in the same small
	// cell share a prefix. Statistical check: mean |code delta| for near
	// pairs below far pairs.
	rng := rand.New(rand.NewSource(1))
	var nearSum, farSum float64
	const n = 500
	for i := 0; i < n; i++ {
		p := Point{rng.Float64() * WorldMax, rng.Float64() * WorldMax}
		q := Point{p.X + 1, p.Y + 1}
		r := Point{rng.Float64() * WorldMax, rng.Float64() * WorldMax}
		nearSum += math.Abs(float64(ZCode(p)) - float64(ZCode(q)))
		farSum += math.Abs(float64(ZCode(p)) - float64(ZCode(r)))
	}
	if nearSum >= farSum {
		t.Errorf("Z-order locality violated: near=%g far=%g", nearSum/n, farSum/n)
	}
}

func TestScaler(t *testing.T) {
	src := Rect{100, 200, 300, 400}
	s := NewScaler(src)
	got := s.Scale(Point{100, 200})
	if got != (Point{0, 0}) {
		t.Errorf("min corner -> %v", got)
	}
	got = s.Scale(Point{300, 400})
	if math.Abs(got.X-WorldMax) > 1e-9 || math.Abs(got.Y-WorldMax) > 1e-9 {
		t.Errorf("max corner -> %v", got)
	}
	// Aspect ratio preserved for non-square sources.
	s2 := NewScaler(Rect{0, 0, 200, 100})
	got = s2.Scale(Point{200, 100})
	if math.Abs(got.X-WorldMax) > 1e-9 || math.Abs(got.Y-WorldMax/2) > 1e-9 {
		t.Errorf("aspect ratio broken: %v", got)
	}
	// Degenerate source maps to origin.
	s3 := NewScaler(Rect{5, 5, 5, 5})
	if got := s3.Scale(Point{5, 5}); got != (Point{0, 0}) {
		t.Errorf("degenerate scaler -> %v", got)
	}
}
