package geo

// Z-order (Morton) codes interleave the bits of the two coordinates so that
// points close in space tend to be close in the one-dimensional code. The
// paper uses Z-ordering both to cluster road nodes into CCAM pages and as
// the B+-tree key of an edge (the code of its center point).

// zBits is the number of bits used per coordinate; 21 bits per axis keeps
// the interleaved code within 42 bits, comfortably inside a uint64.
const zBits = 21

// zResolution is the number of cells per axis.
const zResolution = 1 << zBits

// ZCode returns the Morton code of p, assuming p lies in [0, WorldMax]².
// Coordinates outside the world box are clamped.
func ZCode(p Point) uint64 {
	ix := quantize(p.X)
	iy := quantize(p.Y)
	return interleave(ix) | interleave(iy)<<1
}

func quantize(v float64) uint32 {
	if v < 0 {
		v = 0
	}
	if v > WorldMax {
		v = WorldMax
	}
	i := uint64(v / WorldMax * (zResolution - 1))
	return uint32(i)
}

// interleave spreads the low 21 bits of v so that bit i of v lands at bit
// 2i of the result (the classical "Morton spread" via magic masks). A
// fuzz-found regression previously used the three-dimensional stride-3
// masks here, inflating codes to 62 bits; the pairwise masks below keep
// two interleaved axes within the documented 42-bit key space.
func interleave(v uint32) uint64 {
	x := uint64(v) & 0x1fffff
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// deinterleave reverses interleave.
func deinterleave(x uint64) uint32 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return uint32(x & 0x1fffff)
}

// ZDecode returns the cell-center point of a Morton code. It is the
// (lossy) inverse of ZCode: ZDecode(ZCode(p)) is within one cell of p.
func ZDecode(code uint64) Point {
	ix := deinterleave(code)
	iy := deinterleave(code >> 1)
	cell := WorldMax / (zResolution - 1)
	return Point{float64(ix) * cell, float64(iy) * cell}
}
