// Package geo provides the planar geometry primitives used throughout the
// library: points, rectangles (MBRs), Z-order (Morton) codes and coordinate
// scaling. All datasets are scaled to the [0, 10000]² space used in the
// paper's experiments.
package geo

import (
	"fmt"
	"math"
)

// WorldMax is the upper bound of the coordinate space; every dataset is
// scaled so that all coordinates fall into [0, WorldMax]².
const WorldMax = 10000.0

// Point is a location in the 2-dimensional plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Lerp returns the point a fraction t of the way from p to q.
// t is clamped to [0, 1].
func (p Point) Lerp(q Point, t float64) Point {
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle (minimum bounding rectangle).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// RectOf returns the MBR of the two points a and b.
func RectOf(a, b Point) Rect {
	r := Rect{a.X, a.Y, a.X, a.Y}
	r.ExpandPoint(b)
	return r
}

// EmptyRect returns a rectangle that contains nothing and expands to the
// first point or rectangle added to it.
func EmptyRect() Rect {
	return Rect{math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1)}
}

// IsEmpty reports whether r is the empty rectangle.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// ExpandPoint grows r to include p.
func (r *Rect) ExpandPoint(p Point) {
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.X > r.MaxX {
		r.MaxX = p.X
	}
	if p.Y > r.MaxY {
		r.MaxY = p.Y
	}
}

// Expand grows r to include s.
func (r *Rect) Expand(s Rect) {
	if s.IsEmpty() {
		return
	}
	r.ExpandPoint(Point{s.MinX, s.MinY})
	r.ExpandPoint(Point{s.MaxX, s.MaxY})
}

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Intersects reports whether r and s overlap.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Area returns the area of r; the empty rectangle has area 0.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// Margin returns half the perimeter of r.
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) + (r.MaxY - r.MinY)
}

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Union returns the MBR of r and s.
func (r Rect) Union(s Rect) Rect {
	out := r
	out.Expand(s)
	return out
}

// Enlargement returns the area increase needed for r to include s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// MinDist returns the minimum Euclidean distance from p to any point of r.
// If p is inside r the distance is 0.
func (r Rect) MinDist(p Point) float64 {
	dx := math.Max(math.Max(r.MinX-p.X, 0), p.X-r.MaxX)
	dy := math.Max(math.Max(r.MinY-p.Y, 0), p.Y-r.MaxY)
	return math.Sqrt(dx*dx + dy*dy)
}

// PointSegment returns the minimum distance from p to the segment a–b and
// the offset along the segment (distance from a) of the closest point.
func PointSegment(p, a, b Point) (dist, offset float64) {
	abx, aby := b.X-a.X, b.Y-a.Y
	den := abx*abx + aby*aby
	if den == 0 {
		return p.Dist(a), 0
	}
	t := ((p.X-a.X)*abx + (p.Y-a.Y)*aby) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	closest := Point{a.X + t*abx, a.Y + t*aby}
	return p.Dist(closest), t * math.Sqrt(den)
}

// Scaler maps points from an arbitrary source bounding box into the
// [0, WorldMax]² world used by the experiments, preserving the aspect ratio.
type Scaler struct {
	src   Rect
	scale float64
}

// NewScaler builds a Scaler for the given source bounding box. A degenerate
// source box (zero extent) maps everything to the origin.
func NewScaler(src Rect) *Scaler {
	ext := math.Max(src.MaxX-src.MinX, src.MaxY-src.MinY)
	s := 0.0
	if ext > 0 {
		s = WorldMax / ext
	}
	return &Scaler{src: src, scale: s}
}

// Scale maps p into the world coordinate space.
func (s *Scaler) Scale(p Point) Point {
	return Point{(p.X - s.src.MinX) * s.scale, (p.Y - s.src.MinY) * s.scale}
}
