package core

import (
	"container/heap"
	"context"
	"math"
	"sort"

	"dsks/internal/ccam"
	"dsks/internal/graph"
)

// DistEngine computes pairwise network distances between positions on the
// road network, on demand. Since no pre-computation (Voronoi diagrams,
// shortcuts) is assumed by the paper, each distance is resolved by a
// bounded Dijkstra over the disk-resident network; per-source node
// distance maps are cached for the lifetime of one query, so the n×n
// pairwise matrix of SEQ costs n traversals rather than n².
//
// The bound is sound for diversification: two objects within DeltaMax of
// the query are within 2·DeltaMax of each other (through the query), so a
// search bounded by 2·DeltaMax always finds the exact distance.
type DistEngine struct {
	ctx   context.Context // query-scoped: the engine lives for one query
	net   ccam.Network
	bound float64
	cache map[graph.Position][]nodeDist
	stats *SearchStats
}

type nodeDist struct {
	node graph.NodeID
	dist float64
}

// NewDistEngine creates an engine with the given search bound (use
// 2·DeltaMax for diversified queries). ctx governs every traversal the
// engine runs; stats may be nil.
func NewDistEngine(ctx context.Context, net ccam.Network, bound float64, stats *SearchStats) *DistEngine {
	if stats == nil {
		stats = &SearchStats{}
	}
	return &DistEngine{
		ctx:   ctx,
		net:   net,
		bound: bound,
		cache: make(map[graph.Position][]nodeDist),
		stats: stats,
	}
}

// Reset drops the per-query cache.
func (d *DistEngine) Reset() { d.cache = make(map[graph.Position][]nodeDist) }

// Dist returns the exact network distance between a and b, or +Inf when it
// exceeds the engine's bound.
func (d *DistEngine) Dist(a, b graph.Position) (float64, error) {
	d.stats.PairDistCalcs++
	direct := math.Inf(1)
	if a.Edge == b.Edge {
		info, err := d.net.EdgeInfo(a.Edge)
		if err != nil {
			return 0, err
		}
		wa := offsetCost(info.Weight, info.Length, a.Offset)
		wb := offsetCost(info.Weight, info.Length, b.Offset)
		direct = math.Abs(wa - wb)
		if direct == 0 {
			return 0, nil
		}
	}
	// Prefer a cached source.
	src, dst := a, b
	if _, ok := d.cache[a]; !ok {
		if _, ok2 := d.cache[b]; ok2 {
			src, dst = b, a
		}
	}
	dists, err := d.fromSource(src)
	if err != nil {
		return 0, err
	}
	info, err := d.net.EdgeInfo(dst.Edge)
	if err != nil {
		return 0, err
	}
	w1 := offsetCost(info.Weight, info.Length, dst.Offset)
	via := math.Inf(1)
	if dn1, ok := lookupNodeDist(dists, info.N1); ok {
		via = dn1 + w1
	}
	if dn2, ok := lookupNodeDist(dists, info.N2); ok {
		via = math.Min(via, dn2+(info.Weight-w1))
	}
	return math.Min(direct, via), nil
}

// fromSource returns (computing and caching if needed) the bounded
// node-distance table from position p.
func (d *DistEngine) fromSource(p graph.Position) ([]nodeDist, error) {
	if cached, ok := d.cache[p]; ok {
		return cached, nil
	}
	d.stats.SourceDijkstra++
	info, err := d.net.EdgeInfo(p.Edge)
	if err != nil {
		return nil, err
	}
	w1 := offsetCost(info.Weight, info.Length, p.Offset)

	dist := make(map[graph.NodeID]float64)
	pq := &nodePQ{}
	relax := func(n graph.NodeID, dd float64) {
		if dd > d.bound {
			return
		}
		if cur, ok := dist[n]; !ok || dd < cur {
			dist[n] = dd
			heap.Push(pq, nodeEntry{node: n, dist: dd})
		}
	}
	relax(info.N1, w1)
	relax(info.N2, info.Weight-w1)
	settled := make(map[graph.NodeID]bool)
	for pq.Len() > 0 {
		if err := ctxErr(d.ctx); err != nil {
			return nil, err
		}
		cur := heap.Pop(pq).(nodeEntry)
		if settled[cur.node] || cur.dist > dist[cur.node] {
			continue
		}
		settled[cur.node] = true
		adj, err := d.net.Adjacency(d.ctx, cur.node)
		if err != nil {
			return nil, mapCtxErr(err)
		}
		for _, a := range adj {
			relax(a.Other, cur.dist+a.Weight)
		}
	}
	out := make([]nodeDist, 0, len(dist))
	for n, dd := range dist {
		out = append(out, nodeDist{node: n, dist: dd})
	}
	sortNodeDists(out)
	d.cache[p] = out
	return out, nil
}

func sortNodeDists(nd []nodeDist) {
	sort.Slice(nd, func(i, j int) bool { return nd[i].node < nd[j].node })
}

func lookupNodeDist(nd []nodeDist, n graph.NodeID) (float64, bool) {
	lo, hi := 0, len(nd)
	for lo < hi {
		mid := (lo + hi) / 2
		if nd[mid].node < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nd) && nd[lo].node == n {
		return nd[lo].dist, true
	}
	return 0, false
}

// Stats returns the engine's counters.
func (d *DistEngine) Stats() SearchStats { return *d.stats }
