package core

import (
	"container/heap"
	"context"
	"math"
	"sort"

	"dsks/internal/ccam"
	"dsks/internal/graph"
)

// DistEngine computes pairwise network distances between positions on the
// road network, on demand. Since no pre-computation (Voronoi diagrams,
// shortcuts) is assumed by the paper, each distance is resolved by a
// bounded Dijkstra over the disk-resident network; per-source node
// distance maps are cached for the lifetime of one query, so the n×n
// pairwise matrix of SEQ costs n traversals rather than n².
//
// The bound is sound for diversification: two objects within DeltaMax of
// the query are within 2·DeltaMax of each other (through the query), so a
// search bounded by 2·DeltaMax always finds the exact distance.
//
// When the network carries a landmark oracle (core.WithOracle over an
// internal/alt oracle), three assists kick in, none of which changes the
// diversification results (docs/DISTANCE.md has the soundness argument):
//
//  1. the triangle lower bound maxₗ|d(l,a)−d(l,b)| exceeds the bound →
//     the pair is beyond 2·DeltaMax, where the objective clamps every
//     distance to the same θ, so no traversal runs at all;
//  2. the upper bound minₗ(d(l,a)+d(l,b)) meets the lower bound → the
//     distance is pinched exactly, again with no traversal;
//  3. the remaining traversals become goal-directed A*, using the
//     landmark potential toward the target, which settles a fraction of
//     the nodes the blind bounded Dijkstra would while producing the
//     same distance.
type DistEngine struct {
	ctx   context.Context // query-scoped: the engine lives for one query
	net   ccam.Network
	bound float64
	cache map[graph.Position][]nodeDist
	stats *SearchStats

	oracle    LandmarkOracle
	counters  OracleCounters
	posVecs   map[graph.Position][]float64 // per-position landmark vectors
	nodeVecs  map[graph.NodeID][]float64   // per-node landmark vectors (page reads amortized)
	astarRuns map[graph.Position]int       // A* runs per source, for the table cutover
	vecBuf    []float64                    // scratch row for oracle reads
}

type nodeDist struct {
	node graph.NodeID
	dist float64
}

// astarTableCutover is how many goal-directed A* runs a single source
// position gets before the engine switches to building its full bounded
// table. With the upper-bound-seeded stop rule each A* run settles only
// the nodes whose f beats the oracle upper bound — typically one or two
// nodes, a sliver of the 2·DeltaMax ball — so per-target searches beat
// one blind sweep even when a source is paired against every other
// candidate of a large matrix. The cutover is therefore a backstop
// against degenerate fan-out, not an amortization strategy.
const astarTableCutover = 1024

// NewDistEngine creates an engine with the given search bound (use
// 2·DeltaMax for diversified queries). ctx governs every traversal the
// engine runs; stats may be nil. If net was wrapped by WithOracle, the
// engine unwraps it and runs landmark-assisted.
func NewDistEngine(ctx context.Context, net ccam.Network, bound float64, stats *SearchStats) *DistEngine {
	if stats == nil {
		stats = &SearchStats{}
	}
	d := &DistEngine{
		ctx:   ctx,
		net:   net,
		bound: bound,
		cache: make(map[graph.Position][]nodeDist),
		stats: stats,
	}
	if an, ok := net.(*assistedNetwork); ok {
		d.net = an.Network
		d.counters = an.counters
		if an.oracle != nil {
			d.oracle = an.oracle
			d.posVecs = make(map[graph.Position][]float64)
			d.nodeVecs = make(map[graph.NodeID][]float64)
			d.astarRuns = make(map[graph.Position]int)
			d.vecBuf = make([]float64, an.oracle.NumLandmarks())
		}
	}
	return d
}

// Reset drops the per-query cache.
func (d *DistEngine) Reset() {
	d.cache = make(map[graph.Position][]nodeDist)
	if d.oracle != nil {
		d.posVecs = make(map[graph.Position][]float64)
		d.nodeVecs = make(map[graph.NodeID][]float64)
		d.astarRuns = make(map[graph.Position]int)
	}
}

// Dist returns the exact network distance between a and b, or +Inf when it
// exceeds the engine's bound.
func (d *DistEngine) Dist(a, b graph.Position) (float64, error) {
	d.stats.PairDistCalcs++
	direct := math.Inf(1)
	if a.Edge == b.Edge {
		info, err := d.net.EdgeInfo(a.Edge)
		if err != nil {
			return 0, err
		}
		wa := offsetCost(info.Weight, info.Length, a.Offset)
		wb := offsetCost(info.Weight, info.Length, b.Offset)
		direct = math.Abs(wa - wb)
		if direct == 0 {
			return 0, nil
		}
	}
	// Prefer a cached source: a table lookup costs nothing and is exact.
	if _, ok := d.cache[a]; ok {
		return d.viaTable(a, b, direct)
	}
	if _, ok := d.cache[b]; ok {
		return d.viaTable(b, a, direct)
	}
	if d.oracle != nil {
		return d.assisted(a, b, direct)
	}
	return d.viaTable(a, b, direct)
}

// viaTable resolves the src→dst distance through src's bounded
// node-distance table (computing it if needed), the unassisted path.
func (d *DistEngine) viaTable(src, dst graph.Position, direct float64) (float64, error) {
	dists, err := d.fromSource(src)
	if err != nil {
		return 0, err
	}
	info, err := d.net.EdgeInfo(dst.Edge)
	if err != nil {
		return 0, err
	}
	w1 := offsetCost(info.Weight, info.Length, dst.Offset)
	via := math.Inf(1)
	if dn1, ok := lookupNodeDist(dists, info.N1); ok {
		via = dn1 + w1
	}
	if dn2, ok := lookupNodeDist(dists, info.N2); ok {
		via = math.Min(via, dn2+(info.Weight-w1))
	}
	return math.Min(direct, via), nil
}

// assisted resolves a→b with the landmark oracle: lower-bound prune,
// upper-bound pinch, then goal-directed A* (or the full table once the
// source has seen astarTableCutover targets).
func (d *DistEngine) assisted(a, b graph.Position, direct float64) (float64, error) {
	va, err := d.posVec(a)
	if err != nil {
		return 0, err
	}
	vb, err := d.posVec(b)
	if err != nil {
		return 0, err
	}
	lb, ub := oracleBounds(va, vb)
	if lb > d.bound {
		// The true network distance is at least lb > 2·DeltaMax. Beyond
		// the bound the unassisted path reports either +Inf or some
		// finite value > bound, and every consumer clamps both to the
		// same θ (DivParams.Div), so returning the direct distance (≥
		// the true distance ≥ lb here, or +Inf off-edge) is
		// indistinguishable from traversing.
		d.stats.OracleLBPrunes++
		addCounter(d.counters.LBPrunes, 1)
		return direct, nil
	}
	if ub == lb {
		// Pinched: some landmark lies on a shortest a–b path, so the
		// upper bound is the exact distance (and it is ≤ d.bound here,
		// where the engine's contract requires exactness).
		d.stats.OracleUBHits++
		addCounter(d.counters.UBHits, 1)
		return math.Min(direct, ub), nil
	}
	if d.astarRuns[a] >= astarTableCutover {
		return d.viaTable(a, b, direct)
	}
	d.astarRuns[a]++
	via, err := d.astar(a, vb, b, ub)
	if err != nil {
		return 0, err
	}
	return math.Min(direct, via), nil
}

// nodeVec returns (reading and caching if needed) node n's landmark
// vector. The engine-level cache turns the per-node page read — buffer
// pool latch, possible miss latency — into a one-time cost per query,
// which matters because A* consults the vector of every node it labels.
func (d *DistEngine) nodeVec(n graph.NodeID) ([]float64, error) {
	if v, ok := d.nodeVecs[n]; ok {
		return v, nil
	}
	v := make([]float64, d.oracle.NumLandmarks())
	if err := d.oracle.NodeVec(d.ctx, n, v); err != nil {
		return nil, mapCtxErr(err)
	}
	d.nodeVecs[n] = v
	return v, nil
}

// posVec returns (computing and caching if needed) position p's landmark
// vector: vp[l] = min over p's end nodes of d(l, node) + offset cost,
// which is the exact landmark distance to the position itself.
func (d *DistEngine) posVec(p graph.Position) ([]float64, error) {
	if v, ok := d.posVecs[p]; ok {
		return v, nil
	}
	info, err := d.net.EdgeInfo(p.Edge)
	if err != nil {
		return nil, err
	}
	w1 := offsetCost(info.Weight, info.Length, p.Offset)
	v1, err := d.nodeVec(info.N1)
	if err != nil {
		return nil, err
	}
	v2, err := d.nodeVec(info.N2)
	if err != nil {
		return nil, err
	}
	w2 := info.Weight - w1
	v := make([]float64, len(v1))
	for i := range v {
		v[i] = math.Min(v1[i]+w1, v2[i]+w2)
	}
	d.posVecs[p] = v
	return v, nil
}

// oracleBounds turns two position vectors into triangle-inequality
// bounds: lb = maxₗ|va[l]−vb[l]| ≤ d(a,b) ≤ minₗ(va[l]+vb[l]) = ub.
// A landmark unreachable from both positions bounds nothing (the
// difference would be Inf−Inf) and is skipped; a landmark reachable from
// exactly one side proves the positions are in different components, so
// lb becomes +Inf — which is the exact distance.
func oracleBounds(va, vb []float64) (lb, ub float64) {
	ub = math.Inf(1)
	for i := range va {
		x, y := va[i], vb[i]
		if s := x + y; s < ub {
			ub = s
		}
		if math.IsInf(x, 1) && math.IsInf(y, 1) {
			continue
		}
		if diff := math.Abs(x - y); diff > lb {
			lb = diff
		}
	}
	return lb, ub
}

// astarEntry orders the A* frontier by f = g + potential; g rides along
// for the staleness check.
type astarEntry struct {
	node graph.NodeID
	g, f float64
}

type astarPQ []astarEntry

func (h astarPQ) Len() int            { return len(h) }
func (h astarPQ) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h astarPQ) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *astarPQ) Push(x interface{}) { *h = append(*h, x.(astarEntry)) }
func (h *astarPQ) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// astar runs the goal-directed bounded search from src toward dst, using
// the landmark potential π(n) = maxₗ|vn[l]−vdst[l]| (a lower bound on
// d(n, dst), consistent by the triangle inequality). Tentative labels are
// pruned at the engine bound exactly like the blind Dijkstra's, a node
// whose label later improves is re-expanded (so the result never depends
// on floating-point slack in the potential), and the search stops once
// the cheapest frontier f cannot beat the best target value — which is
// why it settles only a sliver of the bounded ball.
//
// best is seeded with the oracle upper bound when it lies within the
// engine bound: ub ≥ d(src,dst) always, and if the true distance is
// smaller the optimal path's f values are all ≤ d < ub, so the stop rule
// cannot fire before the exact distance is found; if d == ub the bound
// is already the answer. Beyond the engine bound the seed is skipped so
// the engine still reports +Inf exactly like the blind table.
func (d *DistEngine) astar(src graph.Position, vdst []float64, dst graph.Position, ub float64) (float64, error) {
	d.stats.SourceDijkstra++
	ainfo, err := d.net.EdgeInfo(src.Edge)
	if err != nil {
		return 0, err
	}
	binfo, err := d.net.EdgeInfo(dst.Edge)
	if err != nil {
		return 0, err
	}
	w1a := offsetCost(ainfo.Weight, ainfo.Length, src.Offset)
	w1b := offsetCost(binfo.Weight, binfo.Length, dst.Offset)
	w2b := binfo.Weight - w1b

	pot := func(n graph.NodeID) (float64, error) {
		vn, err := d.nodeVec(n)
		if err != nil {
			return 0, err
		}
		p := 0.0
		for i, x := range vn {
			y := vdst[i]
			if math.IsInf(x, 1) && math.IsInf(y, 1) {
				continue
			}
			if diff := math.Abs(x - y); diff > p {
				p = diff
			}
		}
		return p, nil
	}

	best := math.Inf(1)
	if ub <= d.bound {
		best = ub
	}
	dist := make(map[graph.NodeID]float64)
	pq := &astarPQ{}
	relax := func(n graph.NodeID, g float64) error {
		// g alone is a lower bound on any src→dst path through n, so a
		// label that cannot beat best (which never goes below the true
		// distance) is dead on arrival.
		if g > d.bound || g >= best {
			return nil
		}
		if cur, ok := dist[n]; !ok || g < cur {
			dist[n] = g
			p, err := pot(n)
			if err != nil {
				return err
			}
			heap.Push(pq, astarEntry{node: n, g: g, f: g + p})
		}
		return nil
	}
	if err := relax(ainfo.N1, w1a); err != nil {
		return 0, err
	}
	if err := relax(ainfo.N2, ainfo.Weight-w1a); err != nil {
		return 0, err
	}
	settled := make(map[graph.NodeID]bool)
	var settledCount int64
	for pq.Len() > 0 {
		if (*pq)[0].f >= best {
			break
		}
		if err := ctxErr(d.ctx); err != nil {
			return 0, err
		}
		cur := heap.Pop(pq).(astarEntry)
		if cur.g > dist[cur.node] {
			continue // stale
		}
		if !settled[cur.node] {
			settled[cur.node] = true
			settledCount++
		}
		if cur.node == binfo.N1 {
			if c := cur.g + w1b; c < best {
				best = c
			}
		}
		if cur.node == binfo.N2 {
			if c := cur.g + w2b; c < best {
				best = c
			}
		}
		adj, err := d.net.Adjacency(d.ctx, cur.node)
		if err != nil {
			return 0, mapCtxErr(err)
		}
		for _, a := range adj {
			if err := relax(a.Other, cur.g+a.Weight); err != nil {
				return 0, err
			}
		}
	}
	// Every labeled node has a path ≤ bound, so the blind bounded
	// Dijkstra would have settled all of them; the unsettled remainder
	// is work the potential provably saved.
	if saved := int64(len(dist)) - settledCount; saved > 0 {
		d.stats.OraclePopsSaved += saved
		addCounter(d.counters.PopsSaved, saved)
	}
	d.stats.DistSettled += settledCount
	addCounter(d.counters.Settled, settledCount)
	return best, nil
}

// fromSource returns (computing and caching if needed) the bounded
// node-distance table from position p.
func (d *DistEngine) fromSource(p graph.Position) ([]nodeDist, error) {
	if cached, ok := d.cache[p]; ok {
		return cached, nil
	}
	d.stats.SourceDijkstra++
	info, err := d.net.EdgeInfo(p.Edge)
	if err != nil {
		return nil, err
	}
	w1 := offsetCost(info.Weight, info.Length, p.Offset)

	dist := make(map[graph.NodeID]float64)
	pq := &nodePQ{}
	relax := func(n graph.NodeID, dd float64) {
		if dd > d.bound {
			return
		}
		if cur, ok := dist[n]; !ok || dd < cur {
			dist[n] = dd
			heap.Push(pq, nodeEntry{node: n, dist: dd})
		}
	}
	relax(info.N1, w1)
	relax(info.N2, info.Weight-w1)
	settled := make(map[graph.NodeID]bool)
	var settledCount int64
	for pq.Len() > 0 {
		if err := ctxErr(d.ctx); err != nil {
			return nil, err
		}
		cur := heap.Pop(pq).(nodeEntry)
		if settled[cur.node] || cur.dist > dist[cur.node] {
			continue
		}
		settled[cur.node] = true
		settledCount++
		adj, err := d.net.Adjacency(d.ctx, cur.node)
		if err != nil {
			return nil, mapCtxErr(err)
		}
		for _, a := range adj {
			relax(a.Other, cur.dist+a.Weight)
		}
	}
	d.stats.DistSettled += settledCount
	addCounter(d.counters.Settled, settledCount)
	out := make([]nodeDist, 0, len(dist))
	for n, dd := range dist {
		out = append(out, nodeDist{node: n, dist: dd})
	}
	sortNodeDists(out)
	d.cache[p] = out
	return out, nil
}

func sortNodeDists(nd []nodeDist) {
	sort.Slice(nd, func(i, j int) bool { return nd[i].node < nd[j].node })
}

func lookupNodeDist(nd []nodeDist, n graph.NodeID) (float64, bool) {
	lo, hi := 0, len(nd)
	for lo < hi {
		mid := (lo + hi) / 2
		if nd[mid].node < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nd) && nd[lo].node == n {
		return nd[lo].dist, true
	}
	return 0, false
}

// Stats returns the engine's counters.
func (d *DistEngine) Stats() SearchStats { return *d.stats }
