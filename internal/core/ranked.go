package core

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"time"

	"dsks/internal/ccam"
	"dsks/internal/graph"
	"dsks/internal/index"
	"dsks/internal/obj"
)

// RankedQuery is the top-k ranked spatial keyword query (the road-network
// variant studied by Rocha-Junior et al., which the paper's related work
// discusses): instead of the boolean AND, objects are scored by a convex
// combination of spatial proximity and textual overlap,
//
//	score(o) = α·(1 − δ(q,o)/DeltaMax) + (1−α)·|o.T ∩ q.T| / |q.T|
//
// and the K highest-scoring objects containing at least one query keyword
// within DeltaMax are returned.
type RankedQuery struct {
	Pos      graph.Position
	Terms    []obj.TermID
	K        int
	Alpha    float64 // spatial weight in [0,1]
	DeltaMax float64
}

// Validate checks the query's well-formedness.
func (q RankedQuery) Validate() error {
	if len(q.Terms) == 0 {
		return fmt.Errorf("core: ranked query needs at least one keyword")
	}
	if q.K < 1 {
		return fmt.Errorf("core: ranked query needs k >= 1, got %d", q.K)
	}
	if q.Alpha < 0 || q.Alpha > 1 {
		return fmt.Errorf("core: alpha must be in [0,1], got %v", q.Alpha)
	}
	if q.DeltaMax <= 0 {
		return fmt.Errorf("core: DeltaMax must be positive, got %v", q.DeltaMax)
	}
	return nil
}

// RankedResult is one scored object.
type RankedResult struct {
	Ref     index.ObjectRef
	Dist    float64
	Matched int
	Score   float64
}

// SearchRanked runs the top-k ranked search by incremental network
// expansion: objects containing any query keyword are scored as they
// arrive (in non-decreasing network distance), and the expansion stops as
// soon as even a perfect textual match at the current frontier could not
// displace the k-th best score — the spatial part of the score is monotone
// in the arrival order.
func SearchRanked(ctx context.Context, net ccam.Network, loader index.UnionLoader, q RankedQuery) ([]RankedResult, SearchStats, error) {
	res, stats, _, err := SearchRankedTraced(ctx, net, loader, q)
	return res, stats, err
}

// SearchRankedTraced is SearchRanked, additionally returning the per-stage
// timings of the expansion.
func SearchRankedTraced(ctx context.Context, net ccam.Network, loader index.UnionLoader, q RankedQuery) ([]RankedResult, SearchStats, Trace, error) {
	if err := q.Validate(); err != nil {
		return nil, SearchStats{}, Trace{}, err
	}
	terms := obj.NormalizeTerms(append([]obj.TermID(nil), q.Terms...))
	rs := &rankedSearch{
		ctx:     ctx,
		net:     net,
		loader:  loader,
		q:       q,
		terms:   terms,
		nodeDst: make(map[graph.NodeID]float64),
		settled: make(map[graph.NodeID]bool),
		visited: make(map[graph.EdgeID]bool),
		best:    make(map[index.ObjectRef]RankedResult),
	}
	if err := rs.run(); err != nil {
		return nil, SearchStats{}, Trace{}, err
	}
	return rs.topK(), rs.stats, rs.trace, nil
}

// rankedSearch mirrors SKSearch's expansion but scores with OR semantics.
// Distances of loaded objects are finalized the same way: via settled
// end-nodes, with the same-edge direct path handled at the start.
type rankedSearch struct {
	ctx    context.Context // query-scoped: the search lives for one query
	net    ccam.Network
	loader index.UnionLoader
	q      RankedQuery
	terms  []obj.TermID

	pq      nodePQ
	nodeDst map[graph.NodeID]float64
	settled map[graph.NodeID]bool
	visited map[graph.EdgeID]bool

	best  map[index.ObjectRef]RankedResult // best-known distance per object
	stats SearchStats
	trace Trace
}

// loadAny times a union-loader call into the trace's PostingReads stage.
func (r *rankedSearch) loadAny(e graph.EdgeID) ([]index.ObjectMatch, error) {
	start := time.Now()
	matches, err := r.loader.LoadObjectsAny(r.ctx, e, r.terms)
	r.trace.PostingReads += time.Since(start)
	return matches, err
}

func (r *rankedSearch) score(dist float64, matched int) float64 {
	spatial := 1 - dist/r.q.DeltaMax
	if spatial < 0 {
		spatial = 0
	}
	textual := float64(matched) / float64(len(r.terms))
	return r.q.Alpha*spatial + (1-r.q.Alpha)*textual
}

// kthBest returns the current k-th best score (0 if fewer than k seen).
func (r *rankedSearch) kthBest() float64 {
	if len(r.best) < r.q.K {
		return -1
	}
	scores := make([]float64, 0, len(r.best))
	for ref, res := range r.best {
		_ = ref
		scores = append(scores, res.Score)
	}
	sort.Float64s(scores)
	return scores[len(scores)-r.q.K]
}

func (r *rankedSearch) run() error {
	if err := ctxErr(r.ctx); err != nil {
		return err
	}
	runStart := time.Now()
	defer func() {
		r.trace.Total = time.Since(runStart)
		r.trace.Expansion = r.trace.Total - r.trace.PostingReads
	}()
	info, err := r.net.EdgeInfo(r.q.Pos.Edge)
	if err != nil {
		return err
	}
	wq1 := offsetCost(info.Weight, info.Length, r.q.Pos.Offset)
	wq2 := info.Weight - wq1
	r.relax(info.N1, wq1)
	r.relax(info.N2, wq2)

	r.visited[r.q.Pos.Edge] = true
	r.stats.EdgesVisited++
	matches, err := r.loadAny(r.q.Pos.Edge)
	if err != nil {
		return mapCtxErr(err)
	}
	for _, m := range matches {
		wo1 := offsetCost(info.Weight, info.Length, m.Ref.Offset)
		direct := wo1 - wq1
		if direct < 0 {
			direct = -direct
		}
		r.record(m, direct)
	}

	for {
		if err := ctxErr(r.ctx); err != nil {
			return err
		}
		var cur nodeEntry
		found := false
		for r.pq.Len() > 0 {
			cur = heap.Pop(&r.pq).(nodeEntry)
			if !r.settled[cur.node] && cur.dist <= r.nodeDst[cur.node] {
				found = true
				break
			}
		}
		if !found {
			return nil
		}
		if cur.dist > r.q.DeltaMax {
			return nil
		}
		// Early termination: the best possible score of any unseen object
		// (perfect textual match at the frontier distance) cannot displace
		// the k-th best.
		if kth := r.kthBest(); kth >= 0 && r.score(cur.dist, len(r.terms)) <= kth {
			r.stats.EarlyTerminate = true
			return nil
		}
		r.settled[cur.node] = true
		r.stats.NodesPopped++
		adj, err := r.net.Adjacency(r.ctx, cur.node)
		if err != nil {
			return mapCtxErr(err)
		}
		for _, a := range adj {
			r.relax(a.Other, cur.dist+a.Weight)
			settledIsRef := cur.node < a.Other
			if !r.visited[a.Edge] {
				r.visited[a.Edge] = true
				r.stats.EdgesVisited++
				matches, err := r.loadAny(a.Edge)
				if err != nil {
					return mapCtxErr(err)
				}
				for _, m := range matches {
					r.record(m, cur.dist+objCost(a, settledIsRef, m.Ref.Offset))
				}
			} else {
				// Second end settled: distances may improve.
				for ref, res := range r.best {
					if ref.Edge != a.Edge {
						continue
					}
					if d := cur.dist + objCost(a, settledIsRef, ref.Offset); d < res.Dist {
						res.Dist = d
						res.Score = r.score(d, res.Matched)
						r.best[ref] = res
					}
				}
			}
		}
	}
}

func (r *rankedSearch) relax(n graph.NodeID, d float64) {
	if r.settled[n] {
		return
	}
	if cur, ok := r.nodeDst[n]; !ok || d < cur {
		r.nodeDst[n] = d
		heap.Push(&r.pq, nodeEntry{node: n, dist: d})
	}
}

func (r *rankedSearch) record(m index.ObjectMatch, dist float64) {
	res, ok := r.best[m.Ref]
	if !ok || dist < res.Dist {
		res = RankedResult{Ref: m.Ref, Dist: dist, Matched: m.Matched}
		res.Score = r.score(dist, m.Matched)
		r.best[m.Ref] = res
	}
	if !ok {
		r.stats.Candidates++
	}
}

// topK extracts the k best-scoring objects within range, ties broken by
// distance then ID for determinism.
func (r *rankedSearch) topK() []RankedResult {
	all := make([]RankedResult, 0, len(r.best))
	for _, res := range r.best {
		if res.Dist <= r.q.DeltaMax {
			all = append(all, res)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Ref.ID < all[j].Ref.ID
	})
	if len(all) > r.q.K {
		all = all[:r.q.K]
	}
	return all
}
