package core

// GreedyDiversify is Algorithm 1, the 2-approximate greedy for max-sum
// diversification: it repeatedly selects the remaining pair with the
// largest diversification distance θ until ⌊k/2⌋ pairs are chosen, adding
// one arbitrary remaining object when k is odd (we pick the most relevant
// remaining one, i.e. the earliest arrival, for determinism). It returns
// the indices of the chosen objects in [0, n).
//
// theta(i, j) must be symmetric; ties break toward smaller indices so the
// result is deterministic.
func GreedyDiversify(n, k int, theta func(i, j int) float64) []int {
	if k <= 0 || n <= 0 {
		return nil
	}
	want := k
	if want > n {
		want = n
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	var chosen []int
	// Pair-selection phase: even when k >= n the pairing still runs, so
	// callers that need the pair structure (core-pair initialization) see
	// the true greedy pairs.
	for p := 0; p < want/2; p++ {
		bi, bj, bt := -1, -1, 0.0
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !alive[j] {
					continue
				}
				if t := theta(i, j); bi < 0 || t > bt {
					bi, bj, bt = i, j, t
				}
			}
		}
		if bi < 0 {
			break
		}
		chosen = append(chosen, bi, bj)
		alive[bi], alive[bj] = false, false
	}
	// Fill any remainder (odd k, or fewer pairs than requested) with
	// arbitrary remaining objects — smallest index for determinism.
	for i := 0; i < n && len(chosen) < want; i++ {
		if alive[i] {
			chosen = append(chosen, i)
			alive[i] = false
		}
	}
	return chosen
}
