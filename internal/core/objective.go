package core

// DivParams captures the bi-criteria max-sum diversification objective of
// Section 2.1. With rel(u) = 1 − δ(q,u)/δmax and div(u,v) = δ(u,v)/(2δmax),
// the set objective
//
//	f(S) = λ·Σ_{u∈S} rel(u) + (1−λ)/(k−1)·Σ_{u≠v∈S} div(u,v)
//
// rewrites as the sum over unordered pairs of the diversification distance
//
//	θ(u,v) = λ/(k−1)·(rel(u)+rel(v)) + 2(1−λ)/(k−1)·div(u,v)
//
// which is the quantity Algorithm 1's greedy, the core pairs of Algorithm 5
// and the pruning bounds of Algorithm 6 operate on.
type DivParams struct {
	K        int
	Lambda   float64
	DeltaMax float64
}

// Rel is the normalized relevance of an object at network distance d from
// the query; 1 at the query, 0 at DeltaMax.
func (p DivParams) Rel(d float64) float64 {
	if p.DeltaMax <= 0 {
		return 0
	}
	r := 1 - d/p.DeltaMax
	if r < 0 {
		return 0
	}
	return r
}

// Div is the normalized spatial diversity of two objects at pairwise
// network distance d; it is at most 1 because two objects within DeltaMax
// of the query are within 2·DeltaMax of each other.
func (p DivParams) Div(d float64) float64 {
	if p.DeltaMax <= 0 {
		return 0
	}
	v := d / (2 * p.DeltaMax)
	if v > 1 {
		return 1
	}
	return v
}

// Theta combines two relevances and a diversity into the pairwise
// diversification distance θ.
func (p DivParams) Theta(relU, relV, div float64) float64 {
	den := float64(p.K - 1)
	if den <= 0 {
		den = 1
	}
	return p.Lambda/den*(relU+relV) + 2*(1-p.Lambda)/den*div
}

// ThetaFromDists is Theta applied to raw network distances.
func (p DivParams) ThetaFromDists(dU, dV, dUV float64) float64 {
	return p.Theta(p.Rel(dU), p.Rel(dV), p.Div(dUV))
}

// UnvisitedPairBound is the upper bound of θ between two unvisited objects
// when the expansion frontier is gamma (both at distance >= gamma, pairwise
// distance <= 2·DeltaMax): the bound of Algorithm 6 lines 5–7.
func (p DivParams) UnvisitedPairBound(gamma float64) float64 {
	r := p.Rel(gamma)
	return p.Theta(r, r, 1)
}

// VisitedUnvisitedBound is the upper bound of θ between a visited object at
// distance dVisited and any unvisited object, with frontier gamma: the
// unvisited object's relevance is at most Rel(gamma) and their pairwise
// distance at most dVisited + DeltaMax (through the query).
func (p DivParams) VisitedUnvisitedBound(dVisited, gamma float64) float64 {
	return p.Theta(p.Rel(dVisited), p.Rel(gamma), p.Div(dVisited+p.DeltaMax))
}

// SetObjective evaluates f(S) as the sum of θ over all unordered pairs of
// the candidate set, given the pairwise θ lookup.
func SetObjective(n int, theta func(i, j int) float64) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total += theta(i, j)
		}
	}
	return total
}
