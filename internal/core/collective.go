package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"dsks/internal/ccam"
	"dsks/internal/graph"
	"dsks/internal/index"
	"dsks/internal/obj"
)

// CollectiveQuery is the collective spatial keyword search the paper's
// related work discusses (Cao et al. [15]): instead of requiring a single
// object to contain every keyword, a *group* of objects must collectively
// cover the query keywords, at minimal total network distance from the
// query (the sum cost of [15]'s TYPE1 queries).
type CollectiveQuery struct {
	Pos      graph.Position
	Terms    []obj.TermID
	DeltaMax float64
}

// Validate checks the query's well-formedness.
func (q CollectiveQuery) Validate() error {
	if len(q.Terms) == 0 {
		return fmt.Errorf("core: collective query needs at least one keyword")
	}
	if q.DeltaMax <= 0 {
		return fmt.Errorf("core: DeltaMax must be positive, got %v", q.DeltaMax)
	}
	return nil
}

// CollectiveResult is the chosen group.
type CollectiveResult struct {
	// Objects are the chosen group members with their network distances.
	Objects []Candidate
	// Cost is the sum of the members' network distances from the query.
	Cost float64
	// Covered reports whether every query keyword is covered; when false,
	// Uncovered lists the keywords no in-range object contains.
	Covered   bool
	Uncovered []obj.TermID
}

// SearchCollective finds a keyword-covering group with the classic
// weighted set-cover greedy (ln|T|-approximate for the sum cost):
// candidates containing at least one query keyword are collected within
// DeltaMax, then objects are repeatedly chosen by the lowest
// distance-per-newly-covered-keyword ratio until all keywords are covered
// (ties prefer closer objects, then smaller IDs).
func SearchCollective(ctx context.Context, net ccam.Network, loader index.UnionLoader, q CollectiveQuery) (CollectiveResult, SearchStats, error) {
	res, stats, _, err := SearchCollectiveTraced(ctx, net, loader, q)
	return res, stats, err
}

// SearchCollectiveTraced is SearchCollective, additionally returning the
// per-stage timings (the set-cover greedy is accounted to Diversify).
func SearchCollectiveTraced(ctx context.Context, net ccam.Network, loader index.UnionLoader, q CollectiveQuery) (CollectiveResult, SearchStats, Trace, error) {
	if err := q.Validate(); err != nil {
		return CollectiveResult{}, SearchStats{}, Trace{}, err
	}
	start := time.Now()
	terms := obj.NormalizeTerms(append([]obj.TermID(nil), q.Terms...))

	// Collect OR-candidates within the range via the ranked machinery's
	// expansion, run to exhaustion (alpha = 1 disables textual influence
	// on arrival order, which is irrelevant here; no early stop because
	// K is set beyond any possible candidate count... instead we reuse the
	// plain expansion below).
	rs := &rankedSearch{
		ctx:     ctx,
		net:     net,
		loader:  loader,
		q:       RankedQuery{Pos: q.Pos, Terms: terms, K: math.MaxInt32, Alpha: 1, DeltaMax: q.DeltaMax},
		terms:   terms,
		nodeDst: make(map[graph.NodeID]float64),
		settled: make(map[graph.NodeID]bool),
		visited: make(map[graph.EdgeID]bool),
		best:    make(map[index.ObjectRef]RankedResult),
	}
	if err := rs.run(); err != nil {
		return CollectiveResult{}, SearchStats{}, Trace{}, err
	}

	// Which keywords each candidate covers requires the term sets; the
	// union loader reports only counts, so re-derive coverage by probing
	// per-term loads on the candidate's edge would repeat I/O. Instead,
	// candidates are grouped per edge and coverage resolved with one
	// single-term load per (edge, term) actually needed.
	type cand struct {
		ref    index.ObjectRef
		dist   float64
		covers map[obj.TermID]bool
	}
	cands := make(map[index.ObjectRef]*cand)
	edges := make(map[graph.EdgeID]bool)
	for ref, res := range rs.best {
		if res.Dist > q.DeltaMax {
			continue
		}
		cands[ref] = &cand{ref: ref, dist: res.Dist, covers: make(map[obj.TermID]bool)}
		edges[ref.Edge] = true
	}
	coverStart := time.Now()
	for e := range edges {
		for _, t := range terms {
			refs, err := loader.LoadObjects(ctx, e, []obj.TermID{t})
			if err != nil {
				return CollectiveResult{}, SearchStats{}, Trace{}, mapCtxErr(err)
			}
			for _, r := range refs {
				if c, ok := cands[r]; ok {
					c.covers[t] = true
				}
			}
		}
	}
	trace := rs.trace
	trace.PostingReads += time.Since(coverStart)
	divStart := time.Now()

	// Greedy weighted set cover.
	uncovered := make(map[obj.TermID]bool, len(terms))
	for _, t := range terms {
		uncovered[t] = true
	}
	ordered := make([]*cand, 0, len(cands))
	for _, c := range cands {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].dist != ordered[j].dist {
			return ordered[i].dist < ordered[j].dist
		}
		return ordered[i].ref.ID < ordered[j].ref.ID
	})
	var result CollectiveResult
	for len(uncovered) > 0 {
		var best *cand
		bestRatio := math.Inf(1)
		for _, c := range ordered {
			gain := 0
			for t := range uncovered {
				if c.covers[t] {
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			// Distance 0 objects cover for free.
			ratio := c.dist / float64(gain)
			if ratio < bestRatio {
				best, bestRatio = c, ratio
			}
		}
		if best == nil {
			break // some keywords cannot be covered in range
		}
		result.Objects = append(result.Objects, Candidate{Ref: best.ref, Dist: best.dist})
		result.Cost += best.dist
		for t := range uncovered {
			if best.covers[t] {
				delete(uncovered, t)
			}
		}
	}
	result.Covered = len(uncovered) == 0
	for t := range uncovered {
		result.Uncovered = append(result.Uncovered, t)
	}
	sort.Slice(result.Uncovered, func(i, j int) bool { return result.Uncovered[i] < result.Uncovered[j] })
	sort.Slice(result.Objects, func(i, j int) bool {
		if result.Objects[i].Dist != result.Objects[j].Dist {
			return result.Objects[i].Dist < result.Objects[j].Dist
		}
		return result.Objects[i].Ref.ID < result.Objects[j].Ref.ID
	})
	trace.Diversify = time.Since(divStart)
	trace.Total = time.Since(start)
	return result, rs.stats, trace, nil
}
