package core

import (
	"context"
	"sync/atomic"

	"dsks/internal/ccam"
	"dsks/internal/graph"
)

// LandmarkOracle is the read interface of the ALT distance oracle
// (internal/alt). NodeVec fills dst (length NumLandmarks) with node n's
// exact network distances to every landmark; the engine turns those
// vectors into triangle-inequality distance bounds and A* potentials.
// The contract that keeps the bounds sound: the vectors hold exact
// distances over the same network the engine traverses (+Inf across
// components), and they depend only on the network topology — never on
// the object set.
type LandmarkOracle interface {
	NumLandmarks() int
	NodeVec(ctx context.Context, n graph.NodeID, dst []float64) error
}

// OracleCounters are the process-wide oracle effectiveness counters,
// named oracle_*_total / dist_settled_total on /varz and /metricsz. Any
// field may be nil; the engine skips nil counters, so a zero value is a
// valid "don't count" configuration.
type OracleCounters struct {
	LBPrunes  *atomic.Int64 // oracle_lb_prunes_total
	UBHits    *atomic.Int64 // oracle_ub_hits_total
	PopsSaved *atomic.Int64 // oracle_astar_pops_saved_total
	Settled   *atomic.Int64 // dist_settled_total (counted with or without an oracle)
}

func addCounter(c *atomic.Int64, n int64) {
	if c != nil && n != 0 {
		c.Add(n)
	}
}

// assistedNetwork carries a landmark oracle alongside a network so the
// pair travels together through the Search* entry points; NewDistEngine
// unwraps it. The embedded Network keeps every traversal call working
// unchanged on the wrapper itself.
type assistedNetwork struct {
	ccam.Network
	oracle   LandmarkOracle
	counters OracleCounters
}

// WithOracle attaches oracle and counters to net. A nil or empty oracle
// attaches counters alone — useful so dist_settled_total counts the
// unassisted baseline too. The wrapper changes nothing about traversal;
// only DistEngine looks inside.
func WithOracle(net ccam.Network, oracle LandmarkOracle, counters OracleCounters) ccam.Network {
	if oracle != nil && oracle.NumLandmarks() == 0 {
		oracle = nil
	}
	return &assistedNetwork{Network: net, oracle: oracle, counters: counters}
}

// Unassisted strips any oracle attachment from net.
func Unassisted(net ccam.Network) ccam.Network {
	if an, ok := net.(*assistedNetwork); ok {
		return an.Network
	}
	return net
}
