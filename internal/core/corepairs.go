package core

import (
	"sort"

	"dsks/internal/obj"
)

// CorePair is one of the ⌈k/2⌉ object pairs the greedy diversification
// would select over the objects seen so far (Section 4.2).
type CorePair struct {
	A, B  obj.ID
	Theta float64
}

// CorePairSet incrementally maintains the core pairs — and hence the
// diversification distance threshold θ_T — against the arrival of new
// objects, per Algorithm 5. θ_T grows monotonically (Theorem 1), which is
// what the diversity pruning of Algorithm 6 relies on.
type CorePairSet struct {
	maxPairs int
	pairs    []CorePair     // sorted by Theta, descending
	member   map[obj.ID]int // core object -> index of its pair
}

// NewCorePairSet creates an empty set maintaining at most maxPairs pairs
// (⌈k/2⌉ for a diversified query of size k).
func NewCorePairSet(maxPairs int) *CorePairSet {
	return &CorePairSet{maxPairs: maxPairs, member: make(map[obj.ID]int)}
}

// InitGreedy seeds the set by running Algorithm 1's greedy over the first
// objects: ids are the arrived objects, theta the symmetric pairwise
// diversification distance.
func (cp *CorePairSet) InitGreedy(ids []obj.ID, theta func(a, b obj.ID) float64) {
	cp.pairs = cp.pairs[:0]
	cp.member = make(map[obj.ID]int)
	chosen := GreedyDiversify(len(ids), 2*cp.maxPairs, func(i, j int) float64 {
		return theta(ids[i], ids[j])
	})
	for i := 0; i+1 < len(chosen); i += 2 {
		a, b := ids[chosen[i]], ids[chosen[i+1]]
		cp.pairs = append(cp.pairs, CorePair{A: a, B: b, Theta: theta(a, b)})
	}
	cp.sortPairs()
}

func (cp *CorePairSet) sortPairs() {
	sort.SliceStable(cp.pairs, func(i, j int) bool { return cp.pairs[i].Theta > cp.pairs[j].Theta })
	for i, p := range cp.pairs {
		cp.member[p.A] = i
		cp.member[p.B] = i
	}
}

// ThetaT returns the current pruning threshold: the smallest core-pair θ
// once the set is full, else 0 (no pruning power yet).
func (cp *CorePairSet) ThetaT() float64 {
	if len(cp.pairs) < cp.maxPairs || cp.maxPairs == 0 {
		return 0
	}
	return cp.pairs[len(cp.pairs)-1].Theta
}

// IsCore reports whether id is currently a core object.
func (cp *CorePairSet) IsCore(id obj.ID) bool {
	_, ok := cp.member[id]
	return ok
}

// Pairs returns a copy of the current core pairs, best first.
func (cp *CorePairSet) Pairs() []CorePair {
	return append([]CorePair(nil), cp.pairs...)
}

// CoreObjects returns the core objects in pair order.
func (cp *CorePairSet) CoreObjects() []obj.ID {
	out := make([]obj.ID, 0, 2*len(cp.pairs))
	for _, p := range cp.pairs {
		out = append(out, p.A, p.B)
	}
	return out
}

// partnerTheta returns the θ of the pair that core object x belongs to.
func (cp *CorePairSet) partnerTheta(x obj.ID) (float64, obj.ID, int, bool) {
	i, ok := cp.member[x]
	if !ok {
		return 0, 0, 0, false
	}
	p := cp.pairs[i]
	other := p.A
	if other == x {
		other = p.B
	}
	return p.Theta, other, i, true
}

// Update processes the arrival of object o (Algorithm 5): alive lists all
// arrived, unpruned objects — o itself may be included; it is skipped when
// it is the object currently being placed but participates in cascaded
// re-insertions — and theta is the symmetric pairwise diversification
// distance. It returns the number of while-loop iterations performed (at
// most ⌈k/2⌉ per the paper's analysis), which tests use to verify the
// bound.
func (cp *CorePairSet) Update(o obj.ID, alive []obj.ID, theta func(a, b obj.ID) float64) int {
	if cp.maxPairs == 0 {
		return 0
	}
	iterations := 0
	cur := o
	for {
		iterations++
		thetaT := cp.ThetaT()
		// φ(cur): alive objects with θ(cur, x) > θ_T that do not dominate
		// cur; pick the farthest (Lines 2–3).
		bestX := obj.ID(-1)
		bestTheta := 0.0
		for _, x := range alive {
			if x == cur {
				continue
			}
			t := theta(cur, x)
			if t <= thetaT {
				continue
			}
			// x dominates cur (Lemma 1): skip this pair. The paper assumes
			// distinct diversification distances; exact θ ties do occur in
			// practice, and treating a tie as dominance keeps every case-iii
			// replacement a strict improvement — which is what guarantees
			// the cascade terminates (Σ pair θ strictly increases over a
			// finite value set).
			if pt, _, _, isCore := cp.partnerTheta(x); isCore && t <= pt {
				continue
			}
			if bestX < 0 || t > bestTheta || (t == bestTheta && x < bestX) {
				bestX, bestTheta = x, t
			}
		}
		if bestX < 0 {
			return iterations // case i: cur contributes nothing
		}
		if _, _, idx, isCore := cp.partnerTheta(bestX); !isCore {
			// Case ii: evict the ⌈k/2⌉-th pair, adopt (cur, bestX).
			last := cp.pairs[len(cp.pairs)-1]
			delete(cp.member, last.A)
			delete(cp.member, last.B)
			cp.pairs[len(cp.pairs)-1] = CorePair{A: cur, B: bestX, Theta: bestTheta}
			cp.sortPairs()
			return iterations
		} else {
			// Case iii: (bestX, y) is a core pair; replace it with
			// (cur, bestX) and re-process y as a fresh arrival.
			old := cp.pairs[idx]
			y := old.A
			if y == bestX {
				y = old.B
			}
			delete(cp.member, y)
			delete(cp.member, old.A)
			delete(cp.member, old.B)
			cp.pairs[idx] = CorePair{A: cur, B: bestX, Theta: bestTheta}
			cp.sortPairs()
			cur = y
		}
	}
}
