package core

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors for interrupted queries. Both wrap the underlying
// context error, so errors.Is matches either the sentinel or the raw
// context.Canceled / context.DeadlineExceeded.
var (
	// ErrCanceled is returned when a query's context is canceled before
	// the search completes.
	ErrCanceled = errors.New("core: query canceled")
	// ErrDeadlineExceeded is returned when a query's context deadline
	// expires before the search completes.
	ErrDeadlineExceeded = errors.New("core: query deadline exceeded")
)

// queryError pairs a sentinel with the context error that triggered it, so
// that errors.Is works against both (Go 1.20 multi-error unwrapping).
type queryError struct {
	sentinel error
	cause    error
}

func (e *queryError) Error() string { return fmt.Sprintf("%v: %v", e.sentinel, e.cause) }

func (e *queryError) Unwrap() []error { return []error{e.sentinel, e.cause} }

// mapCtxErr translates an error carrying context.Canceled or
// context.DeadlineExceeded into the corresponding typed sentinel (wrapping
// the original), and returns every other error unchanged. Apply it at the
// boundary where a search returns to its caller.
func mapCtxErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrCanceled), errors.Is(err, ErrDeadlineExceeded):
		return err // already mapped
	case errors.Is(err, context.Canceled):
		return &queryError{sentinel: ErrCanceled, cause: err}
	case errors.Is(err, context.DeadlineExceeded):
		return &queryError{sentinel: ErrDeadlineExceeded, cause: err}
	default:
		return err
	}
}

// ctxErr checks ctx and returns the mapped sentinel when it is done.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return mapCtxErr(err)
	}
	return nil
}

// CtxErr reports a done context as the matching typed sentinel (ErrCanceled
// or ErrDeadlineExceeded, wrapping the context error so errors.Is matches
// both); nil while the context is live. Exported for the API layers that
// check a context before entering the core search loop.
func CtxErr(ctx context.Context) error { return ctxErr(ctx) }
