package core

import (
	"context"
	"time"

	"dsks/internal/ccam"
	"dsks/internal/index"
	"dsks/internal/obj"
)

// PruneOptions toggles Algorithm 6's two pruning rules individually; the
// zero value enables both. Disabling them isolates each rule's
// contribution (the ablation benches use this).
type PruneOptions struct {
	// DisableEarlyStop keeps the network expansion running to DeltaMax
	// even when no unvisited object can enter a core pair.
	DisableEarlyStop bool
	// DisableObjectPrune keeps dead visited objects in the pairwise
	// computations.
	DisableObjectPrune bool
}

// SearchCOM is the incremental diversified spatial keyword search of
// Algorithm 6: objects arrive from the network expansion in non-decreasing
// network distance; the core pairs and the threshold θ_T are maintained
// incrementally (Algorithm 5); and two diversity-based pruning rules cut
// the work — visited objects that can never enter a core pair are dropped
// from future pairwise computations, and the whole expansion terminates as
// soon as no unvisited object can contribute.
func SearchCOM(ctx context.Context, net ccam.Network, loader index.Loader, q DivQuery) (DivResult, error) {
	return SearchCOMPruned(ctx, net, loader, q, PruneOptions{})
}

// SearchCOMPruned is SearchCOM with explicit control over the pruning
// rules.
func SearchCOMPruned(ctx context.Context, net ccam.Network, loader index.Loader, q DivQuery, prune PruneOptions) (DivResult, error) {
	if err := q.Validate(); err != nil {
		return DivResult{}, err
	}
	start := time.Now()
	sks, err := NewSKSearch(ctx, net, loader, q.SKQuery)
	if err != nil {
		return DivResult{}, err
	}
	var distStats SearchStats
	c := &comState{
		params:  DivParams{K: q.K, Lambda: q.Lambda, DeltaMax: q.DeltaMax},
		dist:    NewDistEngine(ctx, net, 2*q.DeltaMax, &distStats),
		cands:   make(map[obj.ID]Candidate),
		maxSeen: make(map[obj.ID]float64),
		memo:    make(map[[2]obj.ID]float64),
		pairs:   NewCorePairSet(q.K / 2),
		prune:   prune,
	}
	finish := func(result []Candidate) (DivResult, error) {
		divStart := time.Now()
		res, err := c.finish(result, sks, &distStats)
		c.divTime += time.Since(divStart)
		if err != nil {
			return res, mapCtxErr(err)
		}
		res.Trace = sks.Trace()
		res.Trace.Diversify = c.divTime
		res.Trace.Total = time.Since(start)
		return res, nil
	}

	// Line 1: collect the first k arrivals and seed the core pairs with the
	// greedy of Algorithm 1.
	var first []Candidate
	for len(first) < q.K {
		cand, ok, err := sks.Next()
		if err != nil {
			return DivResult{}, err
		}
		if !ok {
			break
		}
		first = append(first, cand)
	}
	for _, cand := range first {
		c.cands[cand.Ref.ID] = cand
		c.alive = append(c.alive, cand.Ref.ID)
	}
	if len(first) < q.K {
		// Fewer qualifying objects than k: everything is in the result.
		return finish(first)
	}
	divStart := time.Now()
	c.pairs.InitGreedy(c.alive, c.theta)
	for i, a := range c.alive {
		for _, b := range c.alive[i+1:] {
			c.noteTheta(a, b, c.theta(a, b))
		}
	}
	c.divTime += time.Since(divStart)
	if c.err != nil {
		return DivResult{}, mapCtxErr(c.err)
	}

	// Lines 2–16: the arrival loop.
	earlyStop := false
	for {
		cand, ok, err := sks.Next()
		if err != nil {
			return DivResult{}, err
		}
		if !ok {
			break
		}
		divStart := time.Now()
		err = c.arrive(cand)
		stop := c.canTerminate(cand.Dist) && !prune.DisableEarlyStop
		c.divTime += time.Since(divStart)
		if err != nil {
			return DivResult{}, mapCtxErr(err)
		}
		if stop {
			earlyStop = true
			sks.Stop()
			break
		}
	}

	// Assemble the result from the core objects (Line 17), padding to k
	// with the most relevant non-core survivor when k is odd.
	core := c.pairs.CoreObjects()
	result := make([]Candidate, 0, q.K)
	inCore := make(map[obj.ID]bool, len(core))
	for _, id := range core {
		result = append(result, c.cands[id])
		inCore[id] = true
	}
	if len(result) < q.K {
		best := Candidate{Dist: -1}
		for _, id := range c.alive {
			if inCore[id] {
				continue
			}
			cand := c.cands[id]
			if best.Dist < 0 || cand.Dist < best.Dist ||
				(cand.Dist == best.Dist && cand.Ref.ID < best.Ref.ID) {
				best = cand
			}
		}
		if best.Dist >= 0 {
			result = append(result, best)
		}
	}
	res, err := finish(result)
	res.Stats.EarlyTerminate = earlyStop
	return res, err
}

// comState carries the arrival-loop bookkeeping of Algorithm 6.
type comState struct {
	params  DivParams
	dist    *DistEngine
	cands   map[obj.ID]Candidate
	alive   []obj.ID
	maxSeen map[obj.ID]float64    // largest θ each object has with any other
	memo    map[[2]obj.ID]float64 // pairwise θ cache
	pairs   *CorePairSet
	prune   PruneOptions
	pruned  int64
	divTime time.Duration
	err     error
}

// theta is the memoized pairwise diversification distance. Distance-engine
// errors are captured in c.err (the callback signature has no error path).
func (c *comState) theta(a, b obj.ID) float64 {
	if a > b {
		a, b = b, a
	}
	key := [2]obj.ID{a, b}
	if t, ok := c.memo[key]; ok {
		return t
	}
	ca, cb := c.cands[a], c.cands[b]
	d, err := c.dist.Dist(ca.Ref.Pos(), cb.Ref.Pos())
	if err != nil {
		c.err = err
		return 0
	}
	t := c.params.ThetaFromDists(ca.Dist, cb.Dist, d)
	c.memo[key] = t
	return t
}

func (c *comState) noteTheta(a, b obj.ID, t float64) {
	if t > c.maxSeen[a] {
		c.maxSeen[a] = t
	}
	if t > c.maxSeen[b] {
		c.maxSeen[b] = t
	}
}

// arrive processes one new candidate (Line 3 of Algorithm 6).
func (c *comState) arrive(cand Candidate) error {
	id := cand.Ref.ID
	c.cands[id] = cand
	for _, x := range c.alive {
		c.noteTheta(id, x, c.theta(id, x))
	}
	if c.err != nil {
		return c.err
	}
	c.alive = append(c.alive, id)
	c.pairs.Update(id, c.alive, c.theta)
	return c.err
}

// canTerminate evaluates the pruning rules with frontier gamma (Lines
// 4–16): it may drop visited objects from future computation, and returns
// true when no unvisited object can contribute to a core pair.
func (c *comState) canTerminate(gamma float64) bool {
	thetaT := c.pairs.ThetaT()
	if thetaT == 0 {
		return false
	}
	// Upper bound for a pair of unvisited objects (Lines 5–7).
	terminate := c.params.UnvisitedPairBound(gamma) < thetaT

	// Per-visited-object checks (Lines 8–14).
	survivors := c.alive[:0]
	for _, id := range c.alive {
		cand := c.cands[id]
		ub := c.params.VisitedUnvisitedBound(cand.Dist, gamma)
		if ub >= thetaT {
			// id could still pair with an unvisited object.
			terminate = false
			survivors = append(survivors, id)
			continue
		}
		// id cannot pair with the future; if it also cannot pair with the
		// past — and is not currently core — it is dead (Lines 13–14).
		if !c.prune.DisableObjectPrune && c.maxSeen[id] < thetaT && !c.pairs.IsCore(id) {
			c.pruned++
			delete(c.cands, id)
			delete(c.maxSeen, id)
			continue
		}
		survivors = append(survivors, id)
	}
	c.alive = survivors
	return terminate
}

func (c *comState) finish(result []Candidate, sks *SKSearch, distStats *SearchStats) (DivResult, error) {
	stats := sks.Stats()
	stats.Add(*distStats)
	stats.Pruned = c.pruned
	for _, cand := range result {
		c.cands[cand.Ref.ID] = cand
	}
	f := SetObjective(len(result), func(i, j int) float64 {
		return c.theta(result[i].Ref.ID, result[j].Ref.ID)
	})
	if c.err != nil {
		return DivResult{}, c.err
	}
	return DivResult{Objects: result, F: f, Stats: stats}, nil
}
