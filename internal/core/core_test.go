package core_test

import (
	"context"

	"math"
	"math/rand"
	"sort"
	"testing"

	"dsks/internal/core"
	"dsks/internal/dataset"
	"dsks/internal/graph"
	"dsks/internal/harness"
	"dsks/internal/obj"
)

// testWorld builds a small generated dataset with all index kinds.
func testWorld(t testing.TB, seed int64) (*harness.System, []dataset.Query) {
	t.Helper()
	ds, err := dataset.GeneratePreset(dataset.PresetSYN, 2000, seed)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := harness.Build(ds, []harness.IndexKind{
		harness.KindIR, harness.KindIF, harness.KindSIF, harness.KindSIFP, harness.KindC1,
	}, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: 20, Keywords: 2, DeltaMaxPerKeyword: 900, Seed: seed + 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, ws
}

// bruteSK enumerates all qualifying objects by exact in-memory shortest
// paths.
func bruteSK(sys *harness.System, q core.SKQuery) []core.Candidate {
	g := sys.DS.Graph
	col := sys.DS.Objects
	var out []core.Candidate
	for i := 0; i < col.Len(); i++ {
		o := col.Get(obj.ID(i))
		if !o.HasAllTerms(q.Terms) {
			continue
		}
		d := g.NetworkDist(q.Pos, o.Pos)
		if d <= q.DeltaMax {
			out = append(out, core.Candidate{Dist: d})
			out[len(out)-1].Ref.ID = o.ID
			out[len(out)-1].Ref.Edge = o.Pos.Edge
			out[len(out)-1].Ref.Offset = o.Pos.Offset
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Ref.ID < out[j].Ref.ID
	})
	return out
}

func TestSKSearchMatchesBruteForce(t *testing.T) {
	sys, ws := testWorld(t, 42)
	nonEmpty := 0
	for _, wq := range ws {
		q := harness.SKQueryOf(wq)
		want := bruteSK(sys, q)
		got, err := sys.RunSK(context.Background(), harness.KindSIF, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Candidates) != len(want) {
			t.Fatalf("query %+v: got %d candidates, want %d", q, len(got.Candidates), len(want))
		}
		if len(want) > 0 {
			nonEmpty++
		}
		wantIDs := make(map[obj.ID]float64, len(want))
		for _, c := range want {
			wantIDs[c.Ref.ID] = c.Dist
		}
		prev := -1.0
		for _, c := range got.Candidates {
			wd, ok := wantIDs[c.Ref.ID]
			if !ok {
				t.Fatalf("unexpected candidate %d", c.Ref.ID)
			}
			if math.Abs(wd-c.Dist) > 1e-6 {
				t.Fatalf("object %d: dist %v, want %v", c.Ref.ID, c.Dist, wd)
			}
			if c.Dist < prev {
				t.Fatalf("arrival order not monotone: %v after %v", c.Dist, prev)
			}
			prev = c.Dist
		}
	}
	if nonEmpty == 0 {
		t.Fatal("workload produced no non-empty results; test is vacuous")
	}
}

func TestAllLoadersEquivalent(t *testing.T) {
	sys, ws := testWorld(t, 7)
	kinds := []harness.IndexKind{harness.KindIR, harness.KindIF, harness.KindSIF, harness.KindSIFP, harness.KindC1}
	for _, wq := range ws[:10] {
		q := harness.SKQueryOf(wq)
		var ref []core.Candidate
		for i, kind := range kinds {
			got, err := sys.RunSK(context.Background(), kind, q)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			if i == 0 {
				ref = got.Candidates
				continue
			}
			if len(got.Candidates) != len(ref) {
				t.Fatalf("%s returned %d candidates, %s returned %d",
					kinds[0], len(ref), kind, len(got.Candidates))
			}
			for j := range ref {
				if got.Candidates[j].Ref.ID != ref[j].Ref.ID ||
					math.Abs(got.Candidates[j].Dist-ref[j].Dist) > 1e-9 {
					t.Fatalf("%s candidate %d differs: %+v vs %+v",
						kind, j, got.Candidates[j], ref[j])
				}
			}
		}
	}
}

func TestSKSearchQueryOnEdgeWithObjects(t *testing.T) {
	// The query's own edge must be handled specially (direct along-edge
	// distances). Place the query exactly on an object-carrying edge.
	sys, _ := testWorld(t, 11)
	col := sys.DS.Objects
	edges := col.Edges()
	if len(edges) == 0 {
		t.Skip("no edges with objects")
	}
	e := edges[0]
	ids := col.OnEdge(e)
	o := col.Get(ids[0])
	q := core.SKQuery{
		Pos:      graph.Position{Edge: e, Offset: o.Pos.Offset},
		Terms:    o.Terms[:1],
		DeltaMax: 500,
	}
	got, err := sys.RunSK(context.Background(), harness.KindSIF, q)
	if err != nil {
		t.Fatal(err)
	}
	// The co-located object must be the first candidate at distance 0.
	if len(got.Candidates) == 0 {
		t.Fatal("no candidates for co-located query")
	}
	first := got.Candidates[0]
	if first.Dist > 1e-9 {
		t.Fatalf("first candidate at distance %v, want 0", first.Dist)
	}
	want := bruteSK(sys, q)
	if len(got.Candidates) != len(want) {
		t.Fatalf("got %d, want %d", len(got.Candidates), len(want))
	}
}

func TestSKSearchValidation(t *testing.T) {
	sys, _ := testWorld(t, 13)
	loader, err := sys.Loader(harness.KindSIF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewSKSearch(context.Background(), sys.Net, loader, core.SKQuery{DeltaMax: 10}); err == nil {
		t.Error("empty keyword set accepted")
	}
	if _, err := core.NewSKSearch(context.Background(), sys.Net, loader, core.SKQuery{
		Terms: []obj.TermID{1}, DeltaMax: 0,
	}); err == nil {
		t.Error("zero DeltaMax accepted")
	}
	if _, err := core.NewSKSearch(context.Background(), sys.Net, loader, core.SKQuery{
		Terms: []obj.TermID{2, 1}, DeltaMax: 10,
	}); err == nil {
		t.Error("unsorted terms accepted")
	}
}

func TestDistEngineMatchesGraph(t *testing.T) {
	sys, _ := testWorld(t, 3)
	g := sys.DS.Graph
	col := sys.DS.Objects
	var stats core.SearchStats
	eng := core.NewDistEngine(context.Background(), sys.Net, 1e18, &stats)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		a := col.Get(obj.ID(rng.Intn(col.Len()))).Pos
		b := col.Get(obj.ID(rng.Intn(col.Len()))).Pos
		got, err := eng.Dist(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := g.NetworkDist(a, b)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("Dist(%+v, %+v) = %v, want %v", a, b, got, want)
		}
	}
	if stats.SourceDijkstra == 0 {
		t.Error("no Dijkstra runs recorded")
	}
	// Caching: distances from an already-used source must not launch new
	// Dijkstra runs.
	a := col.Get(0).Pos
	if _, err := eng.Dist(a, col.Get(1).Pos); err != nil {
		t.Fatal(err)
	}
	before := stats.SourceDijkstra
	if _, err := eng.Dist(a, col.Get(2).Pos); err != nil {
		t.Fatal(err)
	}
	if stats.SourceDijkstra != before {
		t.Error("cached source re-ran Dijkstra")
	}
}

func TestDistEngineBound(t *testing.T) {
	sys, _ := testWorld(t, 9)
	col := sys.DS.Objects
	g := sys.DS.Graph
	eng := core.NewDistEngine(context.Background(), sys.Net, 100, nil) // tight bound
	found := false
	for i := 0; i < col.Len() && !found; i++ {
		for j := i + 1; j < col.Len() && !found; j++ {
			a, b := col.Get(obj.ID(i)).Pos, col.Get(obj.ID(j)).Pos
			want := g.NetworkDist(a, b)
			if want > 150 && a.Edge != b.Edge {
				got, err := eng.Dist(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if !math.IsInf(got, 1) && got < want-1e-9 {
					t.Fatalf("bounded engine returned %v < true %v", got, want)
				}
				found = true
			}
		}
	}
	if !found {
		t.Skip("no far pair found")
	}
}
