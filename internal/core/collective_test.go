package core_test

import (
	"context"

	"testing"

	"dsks/internal/core"
	"dsks/internal/dataset"
	"dsks/internal/geo"
	"dsks/internal/graph"
	"dsks/internal/harness"
	"dsks/internal/index"
	"dsks/internal/obj"
)

func TestSearchCollectiveCovers(t *testing.T) {
	sys, ws := testWorld(t, 71)
	loader, err := sys.Loader(harness.KindSIF)
	if err != nil {
		t.Fatal(err)
	}
	ul := loader.(index.UnionLoader)
	col := sys.DS.Objects
	covered := 0
	for _, wq := range ws {
		res, _, err := core.SearchCollective(context.Background(), sys.Net, ul, core.CollectiveQuery{
			Pos: wq.Pos, Terms: wq.Terms, DeltaMax: wq.DeltaMax,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Covered {
			// Some keyword genuinely has no in-range object: verify.
			for _, tm := range res.Uncovered {
				for i := 0; i < col.Len(); i++ {
					o := col.Get(obj.ID(i))
					if o.HasTerm(tm) &&
						sys.DS.Graph.NetworkDist(wq.Pos, o.Pos) <= wq.DeltaMax {
						t.Fatalf("keyword %d reported uncovered but object %d covers it in range", tm, i)
					}
				}
			}
			continue
		}
		covered++
		// The chosen group must cover all keywords, each member within
		// range, and the cost must equal the distance sum.
		remaining := map[obj.TermID]bool{}
		for _, tm := range wq.Terms {
			remaining[tm] = true
		}
		sum := 0.0
		for _, c := range res.Objects {
			if c.Dist > wq.DeltaMax+1e-9 {
				t.Fatalf("member at %v beyond range %v", c.Dist, wq.DeltaMax)
			}
			sum += c.Dist
			for _, tm := range wq.Terms {
				if col.Get(c.Ref.ID).HasTerm(tm) {
					delete(remaining, tm)
				}
			}
			// Distances must be exact.
			want := sys.DS.Graph.NetworkDist(wq.Pos, c.Ref.Pos())
			if diff := c.Dist - want; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("member distance %v, want %v", c.Dist, want)
			}
		}
		if len(remaining) > 0 {
			t.Fatalf("group does not cover %v", remaining)
		}
		if diff := res.Cost - sum; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("cost %v != sum %v", res.Cost, sum)
		}
	}
	if covered == 0 {
		t.Fatal("no query was coverable; test is vacuous")
	}
}

func TestSearchCollectiveBeatsNaivePerKeyword(t *testing.T) {
	// The greedy group's cost is never worse than covering each keyword
	// with its own nearest containing object (that assignment is a valid
	// cover the greedy dominates or equals... the greedy is not optimal,
	// so only assert it is within the naive cover's cost — the naive is a
	// feasible greedy starting point, and the greedy picks by ratio, so
	// its cost can exceed the naive's only on adversarial ties; assert a
	// generous factor and that single-object covers are found when one
	// object has every keyword).
	sys, _ := testWorld(t, 73)
	loader, _ := sys.Loader(harness.KindSIF)
	ul := loader.(index.UnionLoader)
	col := sys.DS.Objects

	// Query anchored at an object that contains all its own terms: the
	// group should be that single object at distance 0.
	anchor := col.Get(3)
	res, _, err := core.SearchCollective(context.Background(), sys.Net, ul, core.CollectiveQuery{
		Pos: anchor.Pos, Terms: anchor.Terms, DeltaMax: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatal("anchored query not covered")
	}
	if len(res.Objects) != 1 || res.Cost > 1e-9 {
		t.Fatalf("expected the co-located object alone, got %d objects cost %v",
			len(res.Objects), res.Cost)
	}
}

func TestSearchCollectiveUncoverable(t *testing.T) {
	// Manual world: one street, keyword 1 is only on an object beyond the
	// range, so queries covering {0, 1} must report 1 uncovered.
	g, col, sys := collectiveWorld(t)
	loader, err := sys.Loader(harness.KindSIF)
	if err != nil {
		t.Fatal(err)
	}
	ul := loader.(index.UnionLoader)
	res, _, err := core.SearchCollective(context.Background(), sys.Net, ul, core.CollectiveQuery{
		Pos:      col.Get(0).Pos, // at the near object
		Terms:    []obj.TermID{0, 1},
		DeltaMax: 100, // the far object is 900 away
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered {
		t.Fatal("out-of-range keyword reported covered")
	}
	if len(res.Uncovered) != 1 || res.Uncovered[0] != 1 {
		t.Fatalf("Uncovered = %v, want [1]", res.Uncovered)
	}
	// Keyword 0 is still covered by the near object.
	if len(res.Objects) != 1 || res.Objects[0].Ref.ID != 0 {
		t.Fatalf("partial cover = %+v", res.Objects)
	}
	_ = g
}

// collectiveWorld builds a single 1000-unit street with an object carrying
// keyword 0 at offset 50 and an object carrying keyword 1 at offset 950.
func collectiveWorld(t *testing.T) (*graphPkg, *obj.Collection, *harness.System) {
	t.Helper()
	g := newTestGraphLine(t)
	col := obj.NewCollection()
	col.Add(posOn(g, 0, 50), []obj.TermID{0})
	col.Add(posOn(g, 0, 950), []obj.TermID{1})
	sys := buildManual(t, g, col, 2)
	return g, col, sys
}

func TestSearchCollectiveValidation(t *testing.T) {
	sys, _ := testWorld(t, 77)
	loader, _ := sys.Loader(harness.KindSIF)
	ul := loader.(index.UnionLoader)
	if _, _, err := core.SearchCollective(context.Background(), sys.Net, ul, core.CollectiveQuery{DeltaMax: 10}); err == nil {
		t.Error("empty terms accepted")
	}
	if _, _, err := core.SearchCollective(context.Background(), sys.Net, ul, core.CollectiveQuery{
		Terms: []obj.TermID{1},
	}); err == nil {
		t.Error("zero range accepted")
	}
}

// Manual-world helpers shared by the collective tests.

type graphPkg = graph.Graph

func newTestGraphLine(t *testing.T) *graphPkg {
	t.Helper()
	g := graph.New()
	g.AddNode(geo.Point{X: 0, Y: 0})
	g.AddNode(geo.Point{X: 1000, Y: 0})
	if _, err := g.AddEdge(0, 1, 1000); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	return g
}

func posOn(g *graphPkg, e int, off float64) graph.Position {
	return graph.Position{Edge: graph.EdgeID(e), Offset: off}
}

func buildManual(t *testing.T, g *graphPkg, col *obj.Collection, vocab int) *harness.System {
	t.Helper()
	ds := &dataset.Dataset{Name: "manual", Graph: g, Objects: col, VocabSize: vocab}
	sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}
