package core

import (
	"context"
	"fmt"
	"math"

	"dsks/internal/ccam"
	"dsks/internal/graph"
	"dsks/internal/index"
	"dsks/internal/obj"
)

// KNNQuery is the k-nearest-neighbor variant of the boolean spatial
// keyword query: the k closest objects (by network distance) containing
// every query keyword, without a fixed range. MaxDist optionally caps the
// expansion (0 = unbounded); the related-work section of the paper calls
// this the boolean kNN spatial keyword search.
type KNNQuery struct {
	Pos     graph.Position
	Terms   []obj.TermID
	K       int
	MaxDist float64
}

// Validate checks the query's well-formedness.
func (q KNNQuery) Validate() error {
	if len(q.Terms) == 0 {
		return fmt.Errorf("core: kNN query needs at least one keyword")
	}
	if q.K < 1 {
		return fmt.Errorf("core: kNN query needs k >= 1, got %d", q.K)
	}
	if q.MaxDist < 0 {
		return fmt.Errorf("core: negative MaxDist %v", q.MaxDist)
	}
	return nil
}

// SearchKNN runs the incremental expansion of Algorithm 3 and stops as
// soon as k qualifying objects have been emitted (or the network is
// exhausted). Because candidates arrive in non-decreasing network
// distance, the first k emissions are exactly the k nearest.
func SearchKNN(ctx context.Context, net ccam.Network, loader index.Loader, q KNNQuery) ([]Candidate, SearchStats, error) {
	if err := q.Validate(); err != nil {
		return nil, SearchStats{}, err
	}
	bound := q.MaxDist
	if bound == 0 {
		bound = math.Inf(1)
	}
	sks, err := NewSKSearch(ctx, net, loader, SKQuery{
		Pos:      q.Pos,
		Terms:    obj.NormalizeTerms(append([]obj.TermID(nil), q.Terms...)),
		DeltaMax: bound,
	})
	if err != nil {
		return nil, SearchStats{}, err
	}
	out := make([]Candidate, 0, q.K)
	for len(out) < q.K {
		c, ok, err := sks.Next()
		if err != nil {
			return nil, SearchStats{}, err
		}
		if !ok {
			break
		}
		out = append(out, c)
	}
	sks.Stop()
	return out, sks.Stats(), nil
}
