// Package core implements the paper's query processing algorithms: the
// incremental spatial keyword search on road networks (Algorithm 3 — INE
// with accumulated Dijkstra distances plus signature-based object
// loading), the greedy max-sum diversification (Algorithm 1), the
// incremental core-pair maintenance (Algorithm 5), and the incremental
// diversified SK search with diversity-based pruning (Algorithm 6, COM)
// together with its straw-man SEQ.
package core

import (
	"errors"
	"fmt"

	"dsks/internal/graph"
	"dsks/internal/index"
	"dsks/internal/obj"
)

// SKQuery is a boolean spatial keyword query on a road network: find the
// objects within network distance DeltaMax of Pos that contain every
// keyword in Terms.
type SKQuery struct {
	Pos      graph.Position
	Terms    []obj.TermID // sorted, duplicate-free (obj.NormalizeTerms)
	DeltaMax float64
}

// Validate checks the query's well-formedness.
func (q SKQuery) Validate() error {
	if len(q.Terms) == 0 {
		return errors.New("core: query needs at least one keyword")
	}
	for i := 1; i < len(q.Terms); i++ {
		if q.Terms[i] <= q.Terms[i-1] {
			return errors.New("core: query terms must be sorted and unique")
		}
	}
	if q.DeltaMax <= 0 {
		return fmt.Errorf("core: DeltaMax must be positive, got %v", q.DeltaMax)
	}
	return nil
}

// Candidate is an object satisfying the spatial keyword constraint, with
// its exact network distance from the query.
type Candidate struct {
	Ref  index.ObjectRef
	Dist float64
}

// DivQuery extends SKQuery with the diversification parameters: the result
// size k and the relevance/diversity trade-off λ of the paper's bi-criteria
// objective.
type DivQuery struct {
	SKQuery
	K      int
	Lambda float64
}

// Validate checks the query's well-formedness.
func (q DivQuery) Validate() error {
	if err := q.SKQuery.Validate(); err != nil {
		return err
	}
	if q.K < 1 {
		return fmt.Errorf("core: k must be >= 1, got %d", q.K)
	}
	if q.Lambda < 0 || q.Lambda > 1 {
		return fmt.Errorf("core: lambda must be in [0,1], got %v", q.Lambda)
	}
	return nil
}

// SearchStats aggregates the per-query cost counters the experiments
// report.
type SearchStats struct {
	NodesPopped    int64 // l_n: nodes settled by the network expansion
	EdgesVisited   int64 // l_e: edges whose objects were (potentially) loaded
	Candidates     int64 // objects satisfying the spatial keyword constraint
	PairDistCalcs  int64 // pairwise network distance evaluations
	SourceDijkstra int64 // bounded Dijkstra runs of the distance engine
	DistSettled    int64 // nodes settled by the distance engine's traversals
	Pruned         int64 // objects eliminated by the diversity pruning
	EarlyTerminate bool  // whether COM cut the expansion short

	// Landmark-oracle effectiveness (docs/DISTANCE.md); all zero when
	// the engine runs unassisted.
	OracleLBPrunes  int64 // pairs short-circuited by the triangle lower bound
	OracleUBHits    int64 // pairs resolved by upper bound == lower bound
	OraclePopsSaved int64 // in-bound nodes A* provably left unsettled
}

// Add accumulates other into s.
func (s *SearchStats) Add(other SearchStats) {
	s.NodesPopped += other.NodesPopped
	s.EdgesVisited += other.EdgesVisited
	s.Candidates += other.Candidates
	s.PairDistCalcs += other.PairDistCalcs
	s.SourceDijkstra += other.SourceDijkstra
	s.DistSettled += other.DistSettled
	s.Pruned += other.Pruned
	s.EarlyTerminate = s.EarlyTerminate || other.EarlyTerminate
	s.OracleLBPrunes += other.OracleLBPrunes
	s.OracleUBHits += other.OracleUBHits
	s.OraclePopsSaved += other.OraclePopsSaved
}
