package core

import "time"

// Trace breaks a query's wall-clock time down by stage. Searches accumulate
// it as they run; callers read it after (or instead of) the result. Stages
// that a query type does not exercise stay zero.
type Trace struct {
	// Expansion is the time spent inside the network expansion proper:
	// popping nodes, fetching adjacency pages, relaxing edges.
	Expansion time.Duration
	// PostingReads is the time spent in Loader.LoadObjects /
	// LoadObjectsAny calls — signature tests, B+-tree descents and
	// posting-heap reads.
	PostingReads time.Duration
	// Diversify is the time spent in diversification work on top of the
	// candidate stream: pairwise distance computation, core-pair
	// maintenance, greedy set construction.
	Diversify time.Duration
	// Total is the end-to-end time of the query.
	Total time.Duration
}

// Add accumulates other into t.
func (t *Trace) Add(other Trace) {
	t.Expansion += other.Expansion
	t.PostingReads += other.PostingReads
	t.Diversify += other.Diversify
	t.Total += other.Total
}
