package core

import (
	"context"
	"time"

	"dsks/internal/ccam"
	"dsks/internal/index"
	"dsks/internal/obj"
)

// DivResult is the outcome of a diversified spatial keyword query: the k
// chosen objects (fewer when fewer qualify), the objective value f(S), the
// cost counters, and the per-stage timings.
type DivResult struct {
	Objects []Candidate
	F       float64
	Stats   SearchStats
	Trace   Trace
}

// SearchSEQ is the straw-man of Section 4.1: retrieve every object
// satisfying the spatial keyword constraint with Algorithm 3, compute all
// pairwise diversification distances, and feed them to the greedy of
// Algorithm 1. Its cost is dominated by loading all candidates and the
// full pairwise network distance computation.
func SearchSEQ(ctx context.Context, net ccam.Network, loader index.Loader, q DivQuery) (DivResult, error) {
	if err := q.Validate(); err != nil {
		return DivResult{}, err
	}
	start := time.Now()
	sks, err := NewSKSearch(ctx, net, loader, q.SKQuery)
	if err != nil {
		return DivResult{}, err
	}
	cands, err := sks.All()
	if err != nil {
		return DivResult{}, err
	}
	stats := sks.Stats()

	divStart := time.Now()
	params := DivParams{K: q.K, Lambda: q.Lambda, DeltaMax: q.DeltaMax}
	dist := NewDistEngine(ctx, net, 2*q.DeltaMax, &stats)

	theta, err := pairwiseTheta(cands, params, dist)
	if err != nil {
		return DivResult{}, mapCtxErr(err)
	}
	chosen := GreedyDiversify(len(cands), q.K, theta)
	result := make([]Candidate, len(chosen))
	for i, idx := range chosen {
		result[i] = cands[idx]
	}
	f := SetObjective(len(chosen), func(i, j int) float64 {
		return theta(chosen[i], chosen[j])
	})
	trace := sks.Trace()
	trace.Diversify = time.Since(divStart)
	trace.Total = time.Since(start)
	return DivResult{Objects: result, F: f, Stats: stats, Trace: trace}, nil
}

// pairwiseTheta materializes the full pairwise θ matrix (the expensive part
// of SEQ) and returns an index-based lookup.
func pairwiseTheta(cands []Candidate, params DivParams, dist *DistEngine) (func(i, j int) float64, error) {
	n := len(cands)
	matrix := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d, err := dist.Dist(cands[i].Ref.Pos(), cands[j].Ref.Pos())
			if err != nil {
				return nil, err
			}
			t := params.ThetaFromDists(cands[i].Dist, cands[j].Dist, d)
			matrix[i*n+j] = t
			matrix[j*n+i] = t
		}
	}
	return func(i, j int) float64 { return matrix[i*n+j] }, nil
}

// CandidateIDs extracts the object IDs of candidates.
func CandidateIDs(cands []Candidate) []obj.ID {
	out := make([]obj.ID, len(cands))
	for i, c := range cands {
		out[i] = c.Ref.ID
	}
	return out
}
