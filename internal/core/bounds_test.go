package core_test

import (
	"context"

	"math/rand"
	"testing"
	"testing/quick"

	"dsks/internal/core"
	"dsks/internal/dataset"
	"dsks/internal/harness"
)

// TestUnvisitedPairBoundSound verifies the soundness of Algorithm 6's
// global pruning bound: for any two objects at distance >= gamma from the
// query (both within DeltaMax), their true θ never exceeds
// UnvisitedPairBound(gamma).
func TestUnvisitedPairBoundSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := core.DivParams{
			K:        2 + rng.Intn(10),
			Lambda:   rng.Float64(),
			DeltaMax: 100 + rng.Float64()*1000,
		}
		gamma := rng.Float64() * p.DeltaMax
		// Two hypothetical unvisited objects: distances in [gamma, DeltaMax],
		// pairwise distance at most dU + dV (<= 2 DeltaMax).
		dU := gamma + rng.Float64()*(p.DeltaMax-gamma)
		dV := gamma + rng.Float64()*(p.DeltaMax-gamma)
		dUV := rng.Float64() * (dU + dV)
		return p.ThetaFromDists(dU, dV, dUV) <= p.UnvisitedPairBound(gamma)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestVisitedUnvisitedBoundSound verifies the per-object pruning bound:
// for a visited object at distance dV and any unvisited object (distance
// >= gamma, pairwise distance <= dV + DeltaMax), the true θ never exceeds
// VisitedUnvisitedBound(dV, gamma).
func TestVisitedUnvisitedBoundSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := core.DivParams{
			K:        2 + rng.Intn(10),
			Lambda:   rng.Float64(),
			DeltaMax: 100 + rng.Float64()*1000,
		}
		gamma := rng.Float64() * p.DeltaMax
		dVisited := rng.Float64() * p.DeltaMax
		dU := gamma + rng.Float64()*(p.DeltaMax-gamma) // unvisited object
		dUV := rng.Float64() * (dVisited + p.DeltaMax) // through the query
		return p.ThetaFromDists(dVisited, dU, dUV) <= p.VisitedUnvisitedBound(dVisited, gamma)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestBoundsOnRealExpansion checks the bounds against actual objects from
// a real expansion: every pair of candidates arriving after the frontier
// gamma must satisfy both bounds.
func TestBoundsOnRealExpansion(t *testing.T) {
	sys, ws := testWorld(t, 55)
	g := sys.DS.Graph
	params := core.DivParams{K: 6, Lambda: 0.7, DeltaMax: ws[0].DeltaMax}
	checked := 0
	for _, wq := range ws[:6] {
		q := harness.SKQueryOf(wq)
		res, err := sys.RunSK(context.Background(), harness.KindSIF, q)
		if err != nil {
			t.Fatal(err)
		}
		cands := res.Candidates
		params.DeltaMax = q.DeltaMax
		for i := 0; i < len(cands); i++ {
			gamma := cands[i].Dist
			// All candidates from i onward are "unvisited" at frontier gamma.
			for a := i; a < len(cands); a++ {
				for b := a + 1; b < len(cands); b++ {
					dAB := g.NetworkDist(cands[a].Ref.Pos(), cands[b].Ref.Pos())
					theta := params.ThetaFromDists(cands[a].Dist, cands[b].Dist, dAB)
					if theta > params.UnvisitedPairBound(gamma)+1e-9 {
						t.Fatalf("unvisited pair bound violated: θ=%v > bound=%v (γ=%v)",
							theta, params.UnvisitedPairBound(gamma), gamma)
					}
					checked++
				}
			}
			// Visited (arrived before i) against unvisited (from i on).
			for v := 0; v < i; v++ {
				for u := i; u < len(cands); u++ {
					dVU := g.NetworkDist(cands[v].Ref.Pos(), cands[u].Ref.Pos())
					theta := params.ThetaFromDists(cands[v].Dist, cands[u].Dist, dVU)
					bound := params.VisitedUnvisitedBound(cands[v].Dist, gamma)
					if theta > bound+1e-9 {
						t.Fatalf("visited/unvisited bound violated: θ=%v > bound=%v", theta, bound)
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Skip("no candidate pairs to check")
	}
}

// TestTravelTimeCostModel runs the full pipeline on a network whose edge
// weights are travel times rather than distances — the "general cost
// model" the paper's INE choice is motivated by.
func TestTravelTimeCostModel(t *testing.T) {
	g, err := dataset.GenerateNetwork(dataset.NetworkConfig{
		Nodes: 400, EdgeFactor: 1.4, Jitter: 0.3, TravelTimeCost: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	col, err := dataset.GenerateObjects(g, dataset.ObjectConfig{
		NumObjects: 3000, VocabSize: 300, KeywordsPerObject: 6, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := &dataset.Dataset{Name: "tt", Graph: g, Objects: col, VocabSize: 300}
	sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := dataset.GenerateWorkload(col, 300, dataset.WorkloadConfig{
		NumQueries: 10, Keywords: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, wq := range ws {
		q := harness.SKQueryOf(wq)
		res, err := sys.RunSK(context.Background(), harness.KindSIF, q)
		if err != nil {
			t.Fatal(err)
		}
		// Validate against exact in-memory distances (in cost units).
		for _, c := range res.Candidates {
			want := g.NetworkDist(q.Pos, c.Ref.Pos())
			if diff := c.Dist - want; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("travel-time dist %v, want %v", c.Dist, want)
			}
		}
		if len(res.Candidates) > 0 {
			nonEmpty++
		}
		// Diversified search must also run under the cost model.
		if _, err := sys.RunDiv(context.Background(), harness.KindSIF, harness.AlgoCOM,
			harness.DivQueryOf(wq, 4, 0.8)); err != nil {
			t.Fatal(err)
		}
	}
	if nonEmpty == 0 {
		t.Fatal("travel-time workload produced no results; test is vacuous")
	}
}

// TestKNNInternal exercises core.SearchKNN directly on the test world.
func TestKNNInternal(t *testing.T) {
	sys, ws := testWorld(t, 59)
	loader, err := sys.Loader(harness.KindSIF)
	if err != nil {
		t.Fatal(err)
	}
	for _, wq := range ws[:5] {
		cands, stats, err := core.SearchKNN(context.Background(), sys.Net, loader, core.KNNQuery{
			Pos: wq.Pos, Terms: wq.Terms, K: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) > 5 {
			t.Fatalf("kNN returned %d > k", len(cands))
		}
		if stats.EdgesVisited == 0 {
			t.Error("no edges visited")
		}
	}
}
