package core_test

import (
	"context"

	"math"
	"sort"
	"testing"

	"dsks/internal/core"
	"dsks/internal/harness"
	"dsks/internal/index"
	"dsks/internal/obj"
)

// bruteRanked computes the exact top-k ranked results by full enumeration
// with exact in-memory distances.
func bruteRanked(sys *harness.System, q core.RankedQuery) []core.RankedResult {
	g := sys.DS.Graph
	col := sys.DS.Objects
	var all []core.RankedResult
	for i := 0; i < col.Len(); i++ {
		o := col.Get(obj.ID(i))
		matched := 0
		for _, t := range q.Terms {
			if o.HasTerm(t) {
				matched++
			}
		}
		if matched == 0 {
			continue
		}
		d := g.NetworkDist(q.Pos, o.Pos)
		if d > q.DeltaMax {
			continue
		}
		spatial := 1 - d/q.DeltaMax
		score := q.Alpha*spatial + (1-q.Alpha)*float64(matched)/float64(len(q.Terms))
		all = append(all, core.RankedResult{
			Ref:     index.ObjectRef{ID: o.ID, Edge: o.Pos.Edge, Offset: o.Pos.Offset},
			Dist:    d,
			Matched: matched,
			Score:   score,
		})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Ref.ID < all[j].Ref.ID
	})
	if len(all) > q.K {
		all = all[:q.K]
	}
	return all
}

func TestSearchRankedMatchesBruteForce(t *testing.T) {
	sys, ws := testWorld(t, 63)
	loader, err := sys.Loader(harness.KindSIF)
	if err != nil {
		t.Fatal(err)
	}
	ul, ok := loader.(index.UnionLoader)
	if !ok {
		t.Fatal("SIF is not a UnionLoader")
	}
	nonEmpty := 0
	for _, wq := range ws {
		for _, alpha := range []float64{0.3, 0.7, 1.0} {
			q := core.RankedQuery{
				Pos: wq.Pos, Terms: wq.Terms, K: 5, Alpha: alpha, DeltaMax: wq.DeltaMax,
			}
			got, _, err := core.SearchRanked(context.Background(), sys.Net, ul, q)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteRanked(sys, q)
			if len(got) != len(want) {
				t.Fatalf("alpha=%v: got %d results, want %d", alpha, len(got), len(want))
			}
			// Scores must match as multisets (ties may reorder members).
			gs := scoresOf(got)
			bs := scoresOf(want)
			for i := range gs {
				if math.Abs(gs[i]-bs[i]) > 1e-9 {
					t.Fatalf("alpha=%v rank %d: score %v, want %v\ngot %+v\nwant %+v",
						alpha, i, gs[i], bs[i], got, want)
				}
			}
			if len(want) > 0 {
				nonEmpty++
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatal("workload produced no ranked results; test is vacuous")
	}
}

func scoresOf(rs []core.RankedResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Score
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

func TestSearchRankedPureSpatial(t *testing.T) {
	// Alpha = 1: the ranked query degenerates to "nearest objects with any
	// query keyword".
	sys, ws := testWorld(t, 65)
	loader, err := sys.Loader(harness.KindSIF)
	if err != nil {
		t.Fatal(err)
	}
	ul := loader.(index.UnionLoader)
	wq := ws[0]
	got, _, err := core.SearchRanked(context.Background(), sys.Net, ul, core.RankedQuery{
		Pos: wq.Pos, Terms: wq.Terms, K: 10, Alpha: 1, DeltaMax: wq.DeltaMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist-1e-9 {
			t.Fatalf("alpha=1 results not distance-ordered: %v after %v",
				got[i].Dist, got[i-1].Dist)
		}
	}
}

func TestSearchRankedEarlyTermination(t *testing.T) {
	// With a heavily spatial score, the expansion should terminate early
	// on at least some queries once k matches are close by.
	sys, ws := testWorld(t, 67)
	loader, _ := sys.Loader(harness.KindSIF)
	ul := loader.(index.UnionLoader)
	sawEarly := false
	for _, wq := range ws {
		_, stats, err := core.SearchRanked(context.Background(), sys.Net, ul, core.RankedQuery{
			Pos: wq.Pos, Terms: wq.Terms, K: 2, Alpha: 0.9, DeltaMax: wq.DeltaMax,
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.EarlyTerminate {
			sawEarly = true
		}
	}
	if !sawEarly {
		t.Log("warning: ranked search never terminated early on this workload")
	}
}

func TestSearchRankedValidation(t *testing.T) {
	sys, _ := testWorld(t, 69)
	loader, _ := sys.Loader(harness.KindSIF)
	ul := loader.(index.UnionLoader)
	bad := []core.RankedQuery{
		{K: 1, Alpha: 0.5, DeltaMax: 10},                         // no terms
		{Terms: []obj.TermID{1}, K: 0, Alpha: 0.5, DeltaMax: 10}, // k = 0
		{Terms: []obj.TermID{1}, K: 1, Alpha: 1.5, DeltaMax: 10}, // alpha > 1
		{Terms: []obj.TermID{1}, K: 1, Alpha: 0.5, DeltaMax: 0},  // no range
	}
	for i, q := range bad {
		if _, _, err := core.SearchRanked(context.Background(), sys.Net, ul, q); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}
