package core_test

import (
	"context"

	"math"
	"math/rand"
	"sort"
	"testing"

	"dsks/internal/core"
	"dsks/internal/harness"
	"dsks/internal/obj"
)

func TestDivParamsRanges(t *testing.T) {
	p := core.DivParams{K: 10, Lambda: 0.8, DeltaMax: 1000}
	if got := p.Rel(0); got != 1 {
		t.Errorf("Rel(0) = %v", got)
	}
	if got := p.Rel(1000); got != 0 {
		t.Errorf("Rel(DeltaMax) = %v", got)
	}
	if got := p.Rel(2000); got != 0 {
		t.Errorf("Rel beyond range = %v (must clamp)", got)
	}
	if got := p.Div(2000); got != 1 {
		t.Errorf("Div(2·DeltaMax) = %v", got)
	}
	if got := p.Div(5000); got != 1 {
		t.Errorf("Div clamps at 1, got %v", got)
	}
	// θ is monotone in both relevance and diversity.
	if p.Theta(1, 1, 1) <= p.Theta(0.5, 0.5, 0.5) {
		t.Error("Theta not monotone")
	}
	// λ = 1 ignores diversity.
	p1 := core.DivParams{K: 10, Lambda: 1, DeltaMax: 1000}
	if p1.Theta(0.5, 0.5, 0) != p1.Theta(0.5, 0.5, 1) {
		t.Error("lambda=1 should ignore diversity")
	}
	// λ = 0 ignores relevance.
	p0 := core.DivParams{K: 10, Lambda: 0, DeltaMax: 1000}
	if p0.Theta(0, 0, 0.5) != p0.Theta(1, 1, 0.5) {
		t.Error("lambda=0 should ignore relevance")
	}
}

func TestObjectiveDecomposition(t *testing.T) {
	// f(S) as Σ pairwise θ must equal the direct definition
	// λ·Σ rel + (1-λ)/(k-1)·Σ_{u≠v} div for random inputs.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(8)
		p := core.DivParams{K: k, Lambda: rng.Float64(), DeltaMax: 1000}
		dists := make([]float64, k)
		for i := range dists {
			dists[i] = rng.Float64() * 1000
		}
		pair := make([][]float64, k)
		for i := range pair {
			pair[i] = make([]float64, k)
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				d := rng.Float64() * 2000
				pair[i][j], pair[j][i] = d, d
			}
		}
		viaTheta := core.SetObjective(k, func(i, j int) float64 {
			return p.ThetaFromDists(dists[i], dists[j], pair[i][j])
		})
		direct := 0.0
		for i := 0; i < k; i++ {
			direct += p.Lambda * p.Rel(dists[i])
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i != j {
					direct += (1 - p.Lambda) / float64(k-1) * p.Div(pair[i][j])
				}
			}
		}
		if math.Abs(viaTheta-direct) > 1e-9 {
			t.Fatalf("decomposition broken: pairwise %v vs direct %v", viaTheta, direct)
		}
	}
}

func TestGreedyDiversifyBasics(t *testing.T) {
	theta := func(i, j int) float64 { return float64((i + 1) * (j + 1)) }
	got := core.GreedyDiversify(5, 4, theta)
	if len(got) != 4 {
		t.Fatalf("chose %d objects", len(got))
	}
	// First pair must be the max-θ pair (3,4); second-best disjoint pair
	// is (1,2).
	if !(got[0] == 3 && got[1] == 4) {
		t.Errorf("first pair = %d,%d, want 3,4", got[0], got[1])
	}
	if !(got[2] == 1 && got[3] == 2) {
		t.Errorf("second pair = %d,%d, want 1,2", got[2], got[3])
	}
	// k >= n returns everything.
	if got := core.GreedyDiversify(3, 10, theta); len(got) != 3 {
		t.Errorf("k>=n returned %v", got)
	}
	// k = 0 and negative.
	if got := core.GreedyDiversify(5, 0, theta); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	// Odd k adds one extra object.
	if got := core.GreedyDiversify(5, 3, theta); len(got) != 3 {
		t.Errorf("odd k returned %v", got)
	}
}

func TestGreedyTwoApproximation(t *testing.T) {
	// The greedy is 2-approximate for max-sum dispersion; verify against
	// exhaustive search on small instances.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n, k := 8, 4
		theta := make([][]float64, n)
		for i := range theta {
			theta[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64()
				theta[i][j], theta[j][i] = v, v
			}
		}
		tf := func(i, j int) float64 { return theta[i][j] }
		chosen := core.GreedyDiversify(n, k, tf)
		fGreedy := core.SetObjective(len(chosen), func(a, b int) float64 {
			return tf(chosen[a], chosen[b])
		})
		// Exhaustive optimum over all C(8,4) subsets.
		best := 0.0
		var idx [4]int
		for idx[0] = 0; idx[0] < n; idx[0]++ {
			for idx[1] = idx[0] + 1; idx[1] < n; idx[1]++ {
				for idx[2] = idx[1] + 1; idx[2] < n; idx[2]++ {
					for idx[3] = idx[2] + 1; idx[3] < n; idx[3]++ {
						f := 0.0
						for a := 0; a < 4; a++ {
							for b := a + 1; b < 4; b++ {
								f += theta[idx[a]][idx[b]]
							}
						}
						if f > best {
							best = f
						}
					}
				}
			}
		}
		if fGreedy < best/2-1e-9 {
			t.Fatalf("greedy %v below half of optimum %v", fGreedy, best)
		}
	}
}

// randomThetaWorld builds a random symmetric θ matrix over ids 0..n-1.
func randomThetaWorld(rng *rand.Rand, n int) func(a, b obj.ID) float64 {
	m := make(map[[2]obj.ID]float64)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m[[2]obj.ID{obj.ID(i), obj.ID(j)}] = rng.Float64()
		}
	}
	return func(a, b obj.ID) float64 {
		if a > b {
			a, b = b, a
		}
		return m[[2]obj.ID{a, b}]
	}
}

// TestCorePairsMatchGreedy is the paper's Algorithm 5 invariant: after each
// arrival, the incrementally maintained core pairs must equal the greedy
// Algorithm 1 run from scratch on all objects seen so far.
func TestCorePairsMatchGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(20)
		k := 2 * (1 + rng.Intn(4)) // even k in 2..8
		theta := randomThetaWorld(rng, n)

		cp := core.NewCorePairSet(k / 2)
		ids := make([]obj.ID, 0, n)
		for i := 0; i < n; i++ {
			ids = append(ids, obj.ID(i))
			if len(ids) < k {
				continue
			}
			if len(ids) == k {
				cp.InitGreedy(ids, theta)
			} else {
				iters := cp.Update(obj.ID(i), ids, theta)
				if iters > k/2+1 {
					t.Fatalf("update looped %d times for k=%d", iters, k)
				}
			}
			// Reference: greedy from scratch over ids.
			chosen := core.GreedyDiversify(len(ids), k, func(a, b int) float64 {
				return theta(ids[a], ids[b])
			})
			wantPairs := make([][2]obj.ID, 0, k/2)
			for j := 0; j+1 < len(chosen); j += 2 {
				a, b := ids[chosen[j]], ids[chosen[j+1]]
				if a > b {
					a, b = b, a
				}
				wantPairs = append(wantPairs, [2]obj.ID{a, b})
			}
			gotPairs := make([][2]obj.ID, 0, k/2)
			for _, p := range cp.Pairs() {
				a, b := p.A, p.B
				if a > b {
					a, b = b, a
				}
				gotPairs = append(gotPairs, [2]obj.ID{a, b})
			}
			sortPairs(wantPairs)
			sortPairs(gotPairs)
			if len(gotPairs) != len(wantPairs) {
				t.Fatalf("trial %d after %d arrivals: %d pairs vs %d",
					trial, len(ids), len(gotPairs), len(wantPairs))
			}
			for x := range gotPairs {
				if gotPairs[x] != wantPairs[x] {
					t.Fatalf("trial %d after %d arrivals (k=%d): pairs %v, want %v",
						trial, len(ids), k, gotPairs, wantPairs)
				}
			}
		}
	}
}

func sortPairs(ps [][2]obj.ID) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

// TestThetaTMonotone checks Theorem 1: θ_T never decreases as objects
// arrive.
func TestThetaTMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n, k := 40, 6
		theta := randomThetaWorld(rng, n)
		cp := core.NewCorePairSet(k / 2)
		var ids []obj.ID
		prev := -1.0
		for i := 0; i < n; i++ {
			ids = append(ids, obj.ID(i))
			if len(ids) < k {
				continue
			}
			if len(ids) == k {
				cp.InitGreedy(ids, theta)
			} else {
				cp.Update(obj.ID(i), ids, theta)
			}
			if tt := cp.ThetaT(); tt < prev-1e-12 {
				t.Fatalf("thetaT decreased: %v -> %v", prev, tt)
			} else {
				prev = tt
			}
		}
	}
}

func TestSEQAndCOMAgree(t *testing.T) {
	sys, ws := testWorld(t, 21)
	ran := 0
	for _, wq := range ws {
		q := harness.DivQueryOf(wq, 6, 0.8)
		seq, err := sys.RunDiv(context.Background(), harness.KindSIF, harness.AlgoSEQ, q)
		if err != nil {
			t.Fatal(err)
		}
		com, err := sys.RunDiv(context.Background(), harness.KindSIF, harness.AlgoCOM, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Div.Objects) != len(com.Div.Objects) {
			t.Fatalf("SEQ chose %d, COM chose %d", len(seq.Div.Objects), len(com.Div.Objects))
		}
		if len(seq.Div.Objects) == 0 {
			continue
		}
		ran++
		// Both run the same greedy; with continuous distances the chosen
		// sets must match.
		a := core.CandidateIDs(seq.Div.Objects)
		b := core.CandidateIDs(com.Div.Objects)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("result sets differ: SEQ %v vs COM %v (f: %v vs %v)",
					a, b, seq.Div.F, com.Div.F)
			}
		}
		if math.Abs(seq.Div.F-com.Div.F) > 1e-9 {
			t.Fatalf("objective differs: %v vs %v", seq.Div.F, com.Div.F)
		}
	}
	if ran == 0 {
		t.Fatal("no query produced results; test is vacuous")
	}
}

func TestCOMPrunesOrTerminates(t *testing.T) {
	// With high lambda (relevance-heavy), COM must terminate the expansion
	// early on at least some queries.
	sys, ws := testWorld(t, 33)
	sawEarly := false
	for _, wq := range ws {
		q := harness.DivQueryOf(wq, 4, 0.9)
		com, err := sys.RunDiv(context.Background(), harness.KindSIF, harness.AlgoCOM, q)
		if err != nil {
			t.Fatal(err)
		}
		if com.Stats.EarlyTerminate {
			sawEarly = true
		}
	}
	if !sawEarly {
		t.Log("warning: COM never terminated early on this workload (may be small candidate sets)")
	}
}

func TestCOMFewerThanK(t *testing.T) {
	// A query matching very few objects returns all of them.
	sys, _ := testWorld(t, 17)
	col := sys.DS.Objects
	// Find an object with a rare term combination.
	o := col.Get(0)
	q := core.DivQuery{
		SKQuery: core.SKQuery{Pos: o.Pos, Terms: o.Terms, DeltaMax: 100},
		K:       10, Lambda: 0.8,
	}
	com, err := sys.RunDiv(context.Background(), harness.KindSIF, harness.AlgoCOM, q)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := sys.RunDiv(context.Background(), harness.KindSIF, harness.AlgoSEQ, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(com.Div.Objects) != len(seq.Div.Objects) {
		t.Fatalf("few-object case: COM %d vs SEQ %d", len(com.Div.Objects), len(seq.Div.Objects))
	}
	if len(com.Div.Objects) == 0 {
		t.Fatal("co-located object not found")
	}
}

func TestDivQueryValidation(t *testing.T) {
	q := core.DivQuery{
		SKQuery: core.SKQuery{Terms: []obj.TermID{1}, DeltaMax: 10},
		K:       0, Lambda: 0.5,
	}
	if err := q.Validate(); err == nil {
		t.Error("k=0 accepted")
	}
	q.K = 5
	q.Lambda = 1.5
	if err := q.Validate(); err == nil {
		t.Error("lambda>1 accepted")
	}
	q.Lambda = 0.5
	if err := q.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}
