package core_test

import (
	"context"
	"strconv"
	"testing"

	"dsks/internal/alt"
	"dsks/internal/ccam"
	"dsks/internal/core"
	"dsks/internal/dataset"
	"dsks/internal/harness"
	"dsks/internal/obj"
	"dsks/internal/storage"
)

func benchWorld(b *testing.B) (*harness.System, []dataset.Query) {
	b.Helper()
	ds, err := dataset.GeneratePreset(dataset.PresetNA, 400, 1)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: 64, Keywords: 3, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys, ws
}

func BenchmarkSKSearch(b *testing.B) {
	sys, ws := benchWorld(b)
	loader, err := sys.Loader(harness.KindSIF)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := harness.SKQueryOf(ws[i%len(ws)])
		s, err := core.NewSKSearch(context.Background(), sys.Net, loader, q)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.All(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchSEQ(b *testing.B) {
	sys, ws := benchWorld(b)
	loader, err := sys.Loader(harness.KindSIF)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := harness.DivQueryOf(ws[i%len(ws)], 10, 0.8)
		if _, err := core.SearchSEQ(context.Background(), sys.Net, loader, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchCOM(b *testing.B) {
	sys, ws := benchWorld(b)
	loader, err := sys.Loader(harness.KindSIF)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := harness.DivQueryOf(ws[i%len(ws)], 10, 0.8)
		if _, err := core.SearchCOM(context.Background(), sys.Net, loader, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchKNN(b *testing.B) {
	sys, ws := benchWorld(b)
	loader, err := sys.Loader(harness.KindSIF)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wq := ws[i%len(ws)]
		if _, _, err := core.SearchKNN(context.Background(), sys.Net, loader, core.KNNQuery{
			Pos: wq.Pos, Terms: wq.Terms, K: 10, MaxDist: wq.DeltaMax,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistEngine(b *testing.B) {
	sys, _ := benchWorld(b)
	col := sys.DS.Objects
	eng := core.NewDistEngine(context.Background(), sys.Net, 3000, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := col.Get(obj.ID(i % col.Len())).Pos
		c := col.Get(obj.ID((i * 7) % col.Len())).Pos
		if _, err := eng.Dist(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDistOn measures DistEngine.Dist over net: pairwise distances
// between cycling object positions, the access pattern of the
// diversification θ matrix.
func benchDistOn(b *testing.B, sys *harness.System, net ccam.Network) {
	col := sys.DS.Objects
	eng := core.NewDistEngine(context.Background(), net, 3000, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := col.Get(obj.ID(i % col.Len())).Pos
		c := col.Get(obj.ID((i * 7) % col.Len())).Pos
		if _, err := eng.Dist(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistOracle compares the oracle-assisted engine against the
// blind one at a small and a large landmark count: more landmarks
// tighten the triangle bounds (more LB prunes and UB pinches, fewer A*
// pops) at the price of a longer position-vector computation per point.
func BenchmarkDistOracle(b *testing.B) {
	sys, _ := benchWorld(b)
	b.Run("off", func(b *testing.B) {
		benchDistOn(b, sys, sys.Net)
	})
	for _, l := range []int{4, 32} {
		pool := storage.NewBufferPool(storage.NewPageFile(), 1024, nil)
		o, err := alt.Build(sys.DS.Graph, pool, alt.Config{Landmarks: l, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("l="+strconv.Itoa(l), func(b *testing.B) {
			benchDistOn(b, sys, core.WithOracle(sys.Net, o, core.OracleCounters{}))
		})
	}
}

func BenchmarkCorePairUpdate(b *testing.B) {
	// Synthetic θ world: measures Algorithm 5's maintenance cost alone.
	const n = 512
	theta := func(x, y obj.ID) float64 {
		if x > y {
			x, y = y, x
		}
		h := (uint64(x)*2654435761 + uint64(y)*40503) % 100_000
		return float64(h) / 100_000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := core.NewCorePairSet(5)
		ids := make([]obj.ID, 0, n)
		for j := 0; j < n; j++ {
			ids = append(ids, obj.ID(j))
			if len(ids) == 10 {
				cp.InitGreedy(ids, theta)
			} else if len(ids) > 10 {
				cp.Update(obj.ID(j), ids, theta)
			}
		}
	}
}

func BenchmarkGreedyDiversify(b *testing.B) {
	const n = 256
	theta := func(i, j int) float64 {
		return float64((i*2654435761+j*40503)%100_000) / 100_000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GreedyDiversify(n, 10, theta)
	}
}
