package core

import (
	"container/heap"
	"context"
	"math"
	"time"

	"dsks/internal/ccam"
	"dsks/internal/graph"
	"dsks/internal/index"
)

// SKSearch is the incremental network expansion of Algorithm 3: it settles
// road nodes in non-decreasing network distance from the query (Dijkstra
// accumulated over the CCAM structure), loads the qualifying objects of
// each newly visited edge through the object index (Algorithm 2), and
// emits candidates in non-decreasing network distance — the arrival order
// the diversified search (Algorithm 6) consumes.
type SKSearch struct {
	ctx    context.Context // query-scoped: the search lives for one query
	net    ccam.Network
	loader index.Loader
	q      SKQuery

	pq      nodePQ
	nodeDst map[graph.NodeID]float64 // tentative distances
	settled map[graph.NodeID]bool    // marked nodes (final distance)
	visited map[graph.EdgeID]bool    // edges whose objects were loaded

	pending  objPQ                       // loaded, not yet emitted
	inflight map[index.ObjectRef]*objRef // loaded objects by identity
	byEdge   map[graph.EdgeID][]*objRef  // pending objects grouped by edge

	deltaT float64 // lower bound on any future settled distance
	done   bool
	stats  SearchStats
	trace  Trace
}

type objRef struct {
	ref      index.ObjectRef
	dist     float64 // best-known distance
	endsSeen int     // how many marked end-nodes contributed
	emitted  bool
	heapIdx  int
}

// NewSKSearch prepares an incremental search; it performs the first edge
// load (the query's own edge) eagerly. ctx governs the whole lifetime of
// the search: a context that is already done fails here before any I/O,
// and cancellation mid-expansion surfaces from Next as ErrCanceled or
// ErrDeadlineExceeded.
func NewSKSearch(ctx context.Context, net ccam.Network, loader index.Loader, q SKQuery) (*SKSearch, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	s := &SKSearch{
		ctx:      ctx,
		net:      net,
		loader:   loader,
		q:        q,
		nodeDst:  make(map[graph.NodeID]float64),
		settled:  make(map[graph.NodeID]bool),
		visited:  make(map[graph.EdgeID]bool),
		inflight: make(map[index.ObjectRef]*objRef),
		byEdge:   make(map[graph.EdgeID][]*objRef),
	}
	info, err := net.EdgeInfo(q.Pos.Edge)
	if err != nil {
		return nil, err
	}
	// Anchor the expansion at the two end-nodes of the query's edge.
	wq1 := offsetCost(info.Weight, info.Length, q.Pos.Offset)
	wq2 := info.Weight - wq1
	s.relax(info.N1, wq1)
	s.relax(info.N2, wq2)

	// Objects on the query's own edge: their direct along-edge distance is
	// available immediately; paths through the end-nodes are applied as
	// the ends settle.
	s.visited[q.Pos.Edge] = true
	s.stats.EdgesVisited++
	refs, err := s.loadObjects(q.Pos.Edge)
	if err != nil {
		return nil, mapCtxErr(err)
	}
	for _, r := range refs {
		wo1 := offsetCost(info.Weight, info.Length, r.Offset)
		direct := math.Abs(wo1 - wq1)
		s.addObject(r, direct)
	}
	return s, nil
}

// loadObjects times a Loader call into the trace's PostingReads stage.
func (s *SKSearch) loadObjects(e graph.EdgeID) ([]index.ObjectRef, error) {
	start := time.Now()
	refs, err := s.loader.LoadObjects(s.ctx, e, s.q.Terms)
	s.trace.PostingReads += time.Since(start)
	return refs, err
}

// offsetCost converts a geometric offset from the reference node into a
// traversal cost, per w(n1, p) = w(n1, n2) · d(n1, p)/d(n1, n2).
func offsetCost(weight, length, offset float64) float64 {
	if length <= 0 {
		return 0
	}
	if offset < 0 {
		offset = 0
	} else if offset > length {
		offset = length
	}
	return weight * offset / length
}

func (s *SKSearch) relax(n graph.NodeID, d float64) {
	if s.settled[n] {
		return
	}
	if cur, ok := s.nodeDst[n]; !ok || d < cur {
		s.nodeDst[n] = d
		heap.Push(&s.pq, nodeEntry{node: n, dist: d})
	}
}

func (s *SKSearch) addObject(r index.ObjectRef, d float64) {
	if o, ok := s.inflight[r]; ok {
		if d < o.dist {
			o.dist = d
			heap.Fix(&s.pending, o.heapIdx)
		}
		o.endsSeen++
		return
	}
	o := &objRef{ref: r, dist: d, endsSeen: 1}
	s.inflight[r] = o
	s.byEdge[r.Edge] = append(s.byEdge[r.Edge], o)
	heap.Push(&s.pending, o)
}

// Next returns the next candidate in non-decreasing network distance. The
// boolean is false when the search is exhausted (all qualifying objects
// within DeltaMax have been emitted).
func (s *SKSearch) Next() (Candidate, bool, error) {
	for {
		// Emit a pending object once no future relaxation can undercut it:
		// its distance is within the expansion frontier deltaT, or the
		// expansion is finished.
		if len(s.pending) > 0 {
			top := s.pending[0]
			if top.dist <= s.q.DeltaMax && (s.done || top.dist <= s.deltaT) {
				heap.Pop(&s.pending)
				delete(s.inflight, top.ref)
				top.emitted = true
				s.stats.Candidates++
				return Candidate{Ref: top.ref, Dist: top.dist}, true, nil
			}
			if s.done && top.dist > s.q.DeltaMax {
				// Everything left is out of range.
				return Candidate{}, false, nil
			}
		}
		if s.done {
			return Candidate{}, false, nil
		}
		if err := s.expandOnce(); err != nil {
			return Candidate{}, false, mapCtxErr(err)
		}
	}
}

// expandOnce settles one node of the network expansion (one iteration of
// Algorithm 3's main loop). The context is checked once per settled node,
// so cancellation latency is bounded by a single node's work.
func (s *SKSearch) expandOnce() error {
	if err := ctxErr(s.ctx); err != nil {
		return err
	}
	expandStart := time.Now()
	postingBefore := s.trace.PostingReads
	defer func() {
		s.trace.Expansion += time.Since(expandStart) - (s.trace.PostingReads - postingBefore)
	}()
	// Pop the next unsettled node.
	var cur nodeEntry
	for {
		if s.pq.Len() == 0 {
			s.done = true
			return nil
		}
		cur = heap.Pop(&s.pq).(nodeEntry)
		if !s.settled[cur.node] && cur.dist <= s.nodeDst[cur.node] {
			break
		}
	}
	s.deltaT = cur.dist
	if s.deltaT > s.q.DeltaMax {
		// Any unsettled node — and hence any unseen object — is beyond
		// the range (the termination test of Algorithm 3).
		s.done = true
		return nil
	}
	s.settled[cur.node] = true
	s.stats.NodesPopped++

	adj, err := s.net.Adjacency(s.ctx, cur.node)
	if err != nil {
		return err
	}
	for _, a := range adj {
		s.relax(a.Other, cur.dist+a.Weight)

		refNode := cur.node // reference node N1 = smaller end ID
		if a.Other < cur.node {
			refNode = a.Other
		}
		if !s.visited[a.Edge] {
			// First visit: load qualifying objects (Algorithm 2).
			s.visited[a.Edge] = true
			s.stats.EdgesVisited++
			refs, err := s.loadObjects(a.Edge)
			if err != nil {
				return err
			}
			for _, r := range refs {
				s.addObject(r, cur.dist+objCost(a, refNode == cur.node, r.Offset))
			}
		} else {
			// Edge seen before: the second settled end may shorten the
			// distance of its pending objects.
			for _, o := range s.pendingOnEdge(a.Edge) {
				d := cur.dist + objCost(a, refNode == cur.node, o.ref.Offset)
				if d < o.dist {
					o.dist = d
					heap.Fix(&s.pending, o.heapIdx)
				}
				o.endsSeen++
			}
		}
	}
	return nil
}

// objCost is the cost from a settled end-node to an object at the given
// geometric offset from the edge's reference node.
func objCost(a ccam.AdjEntry, settledIsRef bool, offset float64) float64 {
	w1 := offsetCost(a.Weight, a.Length, offset)
	if settledIsRef {
		return w1
	}
	return a.Weight - w1
}

// pendingOnEdge returns the not-yet-emitted objects of edge e, compacting
// the per-edge list as emitted entries are encountered.
func (s *SKSearch) pendingOnEdge(e graph.EdgeID) []*objRef {
	lst := s.byEdge[e]
	alive := lst[:0]
	for _, o := range lst {
		if !o.emitted {
			alive = append(alive, o)
		}
	}
	if len(alive) == 0 {
		delete(s.byEdge, e)
		return nil
	}
	s.byEdge[e] = alive
	return alive
}

// All drains the search, returning every candidate in distance order (the
// non-incremental use of Algorithm 3 that SEQ relies on).
func (s *SKSearch) All() ([]Candidate, error) {
	var out []Candidate
	for {
		c, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, c)
	}
}

// Stats returns the traversal counters so far.
func (s *SKSearch) Stats() SearchStats { return s.stats }

// Trace returns the stage timings accumulated so far (Total is left for
// the caller, which owns the end-to-end clock).
func (s *SKSearch) Trace() Trace { return s.trace }

// Frontier returns the current expansion frontier deltaT: every not-yet-
// emitted object is at least this far from the query.
func (s *SKSearch) Frontier() float64 { return s.deltaT }

// Stop abandons the expansion (Algorithm 6's early termination).
func (s *SKSearch) Stop() {
	s.done = true
	s.pending = nil
	s.inflight = nil
	s.byEdge = nil
}

// --- heaps ------------------------------------------------------------------

type nodeEntry struct {
	node graph.NodeID
	dist float64
}

type nodePQ []nodeEntry

func (h nodePQ) Len() int            { return len(h) }
func (h nodePQ) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodePQ) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodePQ) Push(x interface{}) { *h = append(*h, x.(nodeEntry)) }
func (h *nodePQ) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type objPQ []*objRef

func (h objPQ) Len() int { return len(h) }
func (h objPQ) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].ref.ID < h[j].ref.ID
}
func (h objPQ) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *objPQ) Push(x interface{}) {
	o := x.(*objRef)
	o.heapIdx = len(*h)
	*h = append(*h, o)
}
func (h *objPQ) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
