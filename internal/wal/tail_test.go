package wal

import (
	"errors"
	"os"
	"testing"
)

// drain reads every record the tailer currently yields.
func drain(t *testing.T, tl *Tailer) []Record {
	t.Helper()
	var out []Record
	for {
		rec, ok, err := tl.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

func TestTailFollowsLiveLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	defer l.Close()
	for i := int32(0); i < 3; i++ {
		appendWait(t, l, insertRec(i))
	}

	tl := l.TailFrom(0)
	defer tl.Close()
	recs := drain(t, tl)
	if len(recs) != 3 {
		t.Fatalf("tailed %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Type != RecInsert || r.ID != int32(i) {
			t.Fatalf("record %d = %+v, want insert id %d at LSN %d", i, r, i, i+1)
		}
	}
	// Caught up: not-ready, then the next append shows up on re-poll.
	if _, ok, err := tl.Next(); ok || err != nil {
		t.Fatalf("Next at the tail = (ok=%v, %v), want not-ready", ok, err)
	}
	appendWait(t, l, insertRec(9))
	recs = drain(t, tl)
	if len(recs) != 1 || recs[0].LSN != 4 || recs[0].ID != 9 {
		t.Fatalf("tail after append = %+v, want the LSN-4 insert", recs)
	}
}

func TestTailFromMidpointSkipsCoveredRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	defer l.Close()
	for i := int32(0); i < 5; i++ {
		appendWait(t, l, insertRec(i))
	}
	tl := l.TailFrom(3)
	defer tl.Close()
	recs := drain(t, tl)
	if len(recs) != 2 || recs[0].LSN != 4 || recs[1].LSN != 5 {
		t.Fatalf("tail from LSN 3 = %+v, want LSNs 4,5", recs)
	}
}

func TestTailCrossesSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{SegmentBytes: 64})
	defer l.Close()
	tl := l.TailFrom(0)
	defer tl.Close()

	// Interleave appends and polls so the tailer rotates live, not just
	// over a finished backlog.
	var got []Record
	for i := int32(0); i < 6; i++ {
		appendWait(t, l, insertRec(i))
		got = append(got, drain(t, tl)...)
	}
	if l.Segments() < 2 {
		t.Fatalf("Segments = %d, want several (rotation did not happen)", l.Segments())
	}
	if len(got) != 6 {
		t.Fatalf("tailed %d records across rotations, want 6", len(got))
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want %d", i, r.LSN, i+1)
		}
	}
}

func TestTailHonorsDurableBound(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	defer l.Close()
	for i := int32(0); i < 3; i++ {
		appendWait(t, l, insertRec(i))
	}

	// Pin the bound below the log's real durable LSN: the records are on
	// disk, but the tailer must not yield past what the bound admits —
	// exactly the window where an in-flight append's bytes may exist but
	// could still vanish in a crash.
	var bound uint64
	tl := &Tailer{dir: dir, next: 1, bound: func() uint64 { return bound }}
	defer tl.Close()
	if _, ok, err := tl.Next(); ok || err != nil {
		t.Fatalf("Next with bound 0 = (ok=%v, %v), want not-ready", ok, err)
	}
	bound = 2
	if recs := drain(t, tl); len(recs) != 2 || recs[1].LSN != 2 {
		t.Fatalf("tail with bound 2 = %+v, want LSNs 1,2", recs)
	}
	bound = 3
	if recs := drain(t, tl); len(recs) != 1 || recs[0].LSN != 3 {
		t.Fatalf("tail with bound 3 = %+v, want LSN 3", recs)
	}
}

func TestOfflineTailerStopsCleanlyAtTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	for i := int32(0); i < 3; i++ {
		appendWait(t, l, insertRec(i))
	}
	segPath := l.segPath
	l.Close()

	// A crash mid-append: the final record's bytes stop at EOF.
	full, err := appendRecord(nil, Record{LSN: 4, Type: RecRemove, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tl := OpenTailer(dir, 0)
	defer tl.Close()
	recs := drain(t, tl)
	if len(recs) != 3 {
		t.Fatalf("offline tail over a torn log = %d records, want 3", len(recs))
	}
	// The torn record stays "not yet" forever — a clean stop, not an error.
	if _, ok, err := tl.Next(); ok || err != nil {
		t.Fatalf("Next at torn tail = (ok=%v, %v), want not-ready", ok, err)
	}
}

func TestTailerMidLogCorruptionIsTerminal(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	for i := int32(0); i < 3; i++ {
		appendWait(t, l, insertRec(i))
	}
	segPath := l.segPath
	l.Close()

	// Flip a bit in the FIRST record: valid records follow it, so this is
	// corruption, never a torn append.
	flipByteAt(t, segPath, 12)
	tl := OpenTailer(dir, 0)
	defer tl.Close()
	if _, _, err := tl.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Next over mid-log corruption = %v, want ErrCorrupt", err)
	}
}

func TestTailerDurableButUnreadableIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	defer l.Close()
	appendWait(t, l, insertRec(1))
	appendWait(t, l, insertRec(2))

	// Chop the durable tail behind the live writer's back: the log still
	// reports DurableLSN 2, so the missing bytes cannot be an in-flight
	// append — the bounded tailer must call it corruption.
	st, err := os.Stat(l.segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(l.segPath, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	tl := l.TailFrom(1)
	defer tl.Close()
	if _, _, err := tl.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Next over a truncated durable record = %v, want ErrCorrupt", err)
	}
}

func TestTailerCompactionGap(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	defer l.Close()
	var last uint64
	for i := int32(0); i < 4; i++ {
		last = appendWait(t, l, insertRec(i))
	}
	if err := l.Checkpoint(last); err != nil {
		t.Fatal(err)
	}

	// The checkpoint dropped every segment holding LSNs 1..4: a tailer
	// positioned there can never catch up.
	tl := l.TailFrom(0)
	defer tl.Close()
	appendWait(t, l, insertRec(9)) // give the bound something past the gap
	if _, _, err := tl.Next(); !errors.Is(err, ErrTailGap) {
		t.Fatalf("Next across a compaction gap = %v, want ErrTailGap", err)
	}
	// A tailer seeded at the checkpoint LSN follows the surviving segment.
	tl2 := l.TailFrom(last)
	defer tl2.Close()
	recs := drain(t, tl2)
	if len(recs) != 1 || recs[0].LSN != last+1 {
		t.Fatalf("tail from the checkpoint = %+v, want LSN %d", recs, last+1)
	}
}

func TestTailerCloseRefusesFurtherReads(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	defer l.Close()
	appendWait(t, l, insertRec(1))
	tl := l.TailFrom(0)
	drain(t, tl)
	if err := tl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tl.Next(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Next after Close = %v, want ErrClosed", err)
	}
}
