package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ErrTailGap marks a tailer that can no longer follow the log: the
// segment holding its next record was compacted away (Checkpoint runs
// on the primary's schedule, not the tailer's). The only recovery is to
// re-seed the follower from a snapshot past the gap.
var ErrTailGap = errors.New("wal: tail position compacted away")

// Tailer follows a write-ahead-log directory record by record, across
// segment rotations, without disturbing the writer. It is the shipping
// side of replication: a read replica opens a Tailer on its primary's
// log and applies each record it yields.
//
// A Tailer attached to a live Log (TailFrom) is bounded by the log's
// durable LSN: it never yields a record the primary has not fsynced,
// because unsynced bytes can legally vanish in a crash — applying them
// would diverge the replica from every state the primary can recover
// to. A standalone Tailer (OpenTailer) has no writer to ask and reads
// to the end of the files instead; it is the offline flavor used to
// drain a dead primary's directory.
//
// Next distinguishes three conditions the same way scan does: "nothing
// more yet" (a clean tail, including a torn final record — poll again),
// a compaction gap (ErrTailGap), and everything else (mid-log damage, a
// broken LSN chain, a record claimed durable but unreadable) which is
// corruption matching ErrCorrupt.
//
// A Tailer is not safe for concurrent use; each follower owns one.
type Tailer struct {
	dir  string
	next uint64 // next LSN to yield

	// bound returns the highest LSN safe to yield; nil means read to
	// end-of-files (no live writer).
	bound func() uint64

	// Current segment.
	f     *os.File
	first uint64 // the segment's declared first LSN
	name  string
	off   int64 // file offset of the next unparsed byte

	// Read-ahead window: win holds file bytes starting at winOff.
	win    []byte
	winOff int64

	closed bool
}

// TailFrom returns a Tailer over the live log that yields every durable
// record past fromLSN, in order. The tailer holds no lock on the log;
// it reads the segment files directly and asks only for the durable
// bound, so a wedged follower can never stall the writer.
func (l *Log) TailFrom(fromLSN uint64) *Tailer {
	return &Tailer{dir: l.dir, next: fromLSN + 1, bound: l.DurableLSN}
}

// OpenTailer returns a standalone Tailer over a log directory with no
// live writer. It reads to the end of the files: a torn final record
// reads as "nothing more yet", exactly like a bounded tailer that
// caught up.
func OpenTailer(dir string, fromLSN uint64) *Tailer {
	return &Tailer{dir: dir, next: fromLSN + 1}
}

// NextLSN returns the LSN the next successful Next will yield.
func (t *Tailer) NextLSN() uint64 { return t.next }

// Next returns the next record past the tail position. ok reports
// whether a record was yielded; (ok=false, err=nil) means the tailer
// has consumed everything currently safe to read — poll again after the
// writer makes progress. Errors are terminal: ErrTailGap if compaction
// overtook the tail position, ErrCorrupt-matching otherwise.
func (t *Tailer) Next() (r Record, ok bool, err error) {
	if t.closed {
		return Record{}, false, fmt.Errorf("wal: tailer: %w", ErrClosed)
	}
	for {
		// Snapshot the durable bound BEFORE reading file bytes: every
		// record at or below it was fully written (and fsynced) before
		// the bound advanced, so a parse failure below the bound is real
		// corruption, never a benign race with an in-flight append.
		var limit uint64
		if t.bound != nil {
			limit = t.bound()
			if t.next > limit {
				return Record{}, false, nil
			}
		}
		if t.f == nil {
			ready, err := t.seek()
			if err != nil || !ready {
				return Record{}, false, err
			}
		}
		size, err := t.size()
		if err != nil {
			return Record{}, false, err
		}
		if t.off >= size {
			rotated, err := t.rotate()
			if err != nil || !rotated {
				return Record{}, false, err
			}
			continue
		}
		rest, atEOF, err := t.window(size)
		if err != nil {
			return Record{}, false, err
		}
		keep, rec, perr := parseNext(rest)
		if perr != nil {
			if atEOF && tornTail(rest, keep) {
				// A torn append at the tail of the file. Legal only
				// while it is still the tail: a record the writer calls
				// durable, or one a later segment has moved past, must
				// parse.
				if t.bound != nil && limit >= t.next {
					return Record{}, false, fmt.Errorf("%w: %s at offset %d: durable LSN %d unreadable: %v",
						ErrCorrupt, t.name, t.off, t.next, perr)
				}
				if succeeded, err := t.hasSuccessor(); err != nil {
					return Record{}, false, err
				} else if succeeded {
					return Record{}, false, fmt.Errorf("%w: %s at offset %d: torn record below a later segment: %v",
						ErrCorrupt, t.name, t.off, perr)
				}
				return Record{}, false, nil
			}
			return Record{}, false, fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, t.name, t.off, perr)
		}
		if rec.LSN < t.next {
			// The first segment can begin before the tail position.
			t.off += int64(keep)
			continue
		}
		if rec.LSN != t.next {
			return Record{}, false, fmt.Errorf("%w: %s has LSN %d where %d was expected",
				ErrCorrupt, t.name, rec.LSN, t.next)
		}
		t.off += int64(keep)
		t.next = rec.LSN + 1
		return rec, true, nil
	}
}

// Close releases the tailer's file handle. Further Next calls fail.
func (t *Tailer) Close() error {
	t.closed = true
	t.win = nil
	if t.f != nil {
		f := t.f
		t.f = nil
		return f.Close()
	}
	return nil
}

// seek opens the segment that contains t.next: the one with the largest
// declared first LSN not past it. No segments at all reads as "nothing
// yet" (the writer may not have created the log); segments that all
// start past t.next mean compaction already dropped the tail position.
func (t *Tailer) seek() (ready bool, err error) {
	names, err := segNames(t.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	if len(names) == 0 {
		return false, nil
	}
	pick, pickFirst := "", uint64(0)
	for _, name := range names {
		first, err := parseSegName(name)
		if err != nil {
			return false, err
		}
		if first <= t.next && (pick == "" || first > pickFirst) {
			pick, pickFirst = name, first
		}
	}
	if pick == "" {
		return false, fmt.Errorf("%w: oldest segment starts past LSN %d", ErrTailGap, t.next)
	}
	return true, t.open(pick, pickFirst)
}

// rotate advances to the successor segment once the current one is
// fully consumed. The successor must begin exactly at t.next — rotation
// happens at a quiescent point, so any other first LSN means the chain
// is broken. No successor yet reads as "nothing more".
func (t *Tailer) rotate() (rotated bool, err error) {
	names, err := segNames(t.dir)
	if err != nil {
		return false, err
	}
	pick, pickFirst := "", uint64(0)
	for _, name := range names {
		first, err := parseSegName(name)
		if err != nil {
			return false, err
		}
		if first > t.first && (pick == "" || first < pickFirst) {
			pick, pickFirst = name, first
		}
	}
	if pick == "" {
		return false, nil
	}
	if pickFirst != t.next {
		return false, fmt.Errorf("%w: %s begins at LSN %d where %d was expected after %s",
			ErrCorrupt, pick, pickFirst, t.next, t.name)
	}
	return true, t.open(pick, pickFirst)
}

// hasSuccessor reports whether a segment after the current one exists.
func (t *Tailer) hasSuccessor() (bool, error) {
	names, err := segNames(t.dir)
	if err != nil {
		return false, err
	}
	for _, name := range names {
		first, err := parseSegName(name)
		if err != nil {
			return false, err
		}
		if first > t.first {
			return true, nil
		}
	}
	return false, nil
}

// open switches the tailer to the named segment.
func (t *Tailer) open(name string, first uint64) error {
	f, err := os.Open(filepath.Join(t.dir, name))
	if err != nil {
		return err
	}
	if t.f != nil {
		t.f.Close()
	}
	t.f, t.first, t.name, t.off = f, first, name, 0
	t.win, t.winOff = nil, 0
	return nil
}

// size returns the current segment's length. The writer only ever
// appends (crash-repair truncation happens below the durable bound a
// live tailer respects), so a fresh stat is always safe to parse up to.
func (t *Tailer) size() (int64, error) {
	st, err := t.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// window returns the file bytes at t.off, reading ahead in chunks big
// enough to hold any legal record so backlog replay does one pread per
// window, not per record. atEOF reports whether the returned slice runs
// to the end of the file — the precondition for calling a parse failure
// a torn tail.
func (t *Tailer) window(size int64) (rest []byte, atEOF bool, err error) {
	const windowBytes = recHeader + maxPayload
	end := t.winOff + int64(len(t.win))
	have := end - t.off
	// Reuse the window only if it covers t.off and either runs to the
	// file's end or still holds a full maximal record.
	if t.off >= t.winOff && have > 0 && (end >= size || have >= windowBytes) {
		return t.win[t.off-t.winOff:], end >= size, nil
	}
	n := min(size-t.off, windowBytes)
	buf := make([]byte, n)
	if got, err := t.f.ReadAt(buf, t.off); err != nil && !(errors.Is(err, io.EOF) && got == len(buf)) {
		return nil, false, fmt.Errorf("wal: tailing %s: %w", t.name, err)
	}
	t.win, t.winOff = buf, t.off
	return buf, t.off+n >= size, nil
}
