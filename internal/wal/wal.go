// Package wal is the write-ahead log that makes database mutations
// durable: an append-only, CRC32C-protected, LSN-stamped record log
// layered on the storage layer's LogFile (so appends and fsyncs are
// counted and fault-injectable like page I/O).
//
// Mutators append a record, then block in WaitDurable until a group-
// commit goroutine has batched their record — together with every other
// record appended in the same window — into one fsync. SyncEvery and
// SyncInterval bound the batch; Strict mode fsyncs before every
// acknowledgment. On startup, Open scans the log's segments, verifies
// every record's CRC and the density of the LSN chain, truncates a torn
// tail (bytes a crash left half-written, never acknowledged), rejects
// mid-log corruption with an error matching ErrCorrupt, and returns the
// records past the caller's snapshot LSN for replay. Checkpoint rotates
// the active segment and deletes segments a snapshot has made redundant.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dsks/internal/metrics"
	"dsks/internal/storage"
)

// Sentinel errors.
var (
	// ErrCorrupt reports a log whose records cannot all be trusted:
	// a CRC mismatch or truncation before the final record, a gap in the
	// LSN chain, or a record that contradicts the snapshot it is being
	// replayed over.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrClosed reports an operation on a closed (or poisoned and
	// therefore closed-to-appends) log.
	ErrClosed = errors.New("wal: log closed")
)

// CrashHook, when non-nil, is consulted at each named commit point of
// Checkpoint; a non-nil return aborts at exactly that point, simulating
// a crash mid-rotation or mid-compaction. Test-only, like persist's
// saveHook; production checkpoints never set it.
var CrashHook func(point string) error

// CrashPoints enumerates Checkpoint's crash points in execution order,
// for tests that crash a checkpoint at every one of them.
var CrashPoints = []string{
	"checkpoint-start",
	"rotate-create",
	"rotate-swap",
	"compact-unlink",
}

func fireCrashHook(point string) error {
	if CrashHook == nil {
		return nil
	}
	return CrashHook(point)
}

// Options configures a log.
type Options struct {
	// SyncEvery caps how many records accumulate before the group-commit
	// goroutine fsyncs without waiting out the interval (default 64).
	SyncEvery int
	// SyncInterval is the gathering window an unfilled batch waits for
	// more committers (default 2ms).
	SyncInterval time.Duration
	// Strict fsyncs before every acknowledgment (SyncEvery 1, no
	// gathering window): maximum durability, minimum batching.
	Strict bool
	// SegmentBytes is the rotation threshold for the active segment
	// (default 4 MiB). Rotation happens at quiescent points (after a
	// sync that left nothing pending, and at every Checkpoint).
	SegmentBytes int64
	// Metrics receives the log's counters (wal_appends_total,
	// wal_fsyncs_total, ...); nil uses a private registry.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 2 * time.Millisecond
	}
	if o.Strict {
		o.SyncEvery = 1
		o.SyncInterval = 0
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Metrics == nil {
		o.Metrics = metrics.NewRegistry()
	}
	return o
}

// closedSeg is a rotated (no longer appended-to) segment.
type closedSeg struct {
	first uint64 // first LSN the segment may contain
	path  string
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; Append serializes on the log's mutex while fsyncs run outside it.
type Log struct {
	dir  string
	opts Options

	mu   sync.Mutex
	work *sync.Cond // signals the group-commit goroutine
	dur  *sync.Cond // broadcast when durable advances (or the log dies)

	seg        *storage.LogFile // active segment
	segFirst   uint64           // first LSN the active segment may contain
	segPath    string
	segs       []closedSeg // rotated segments, oldest first
	inj        storage.Injector
	next       uint64 // next LSN to assign
	written    uint64 // last LSN appended (0 = none)
	durable    uint64 // last LSN fsynced
	durableOff int64  // active-segment offset after the last durable record
	err        error  // sticky: the log is poisoned, appends fail
	closing    bool
	closed     bool
	wg         sync.WaitGroup

	appends     *atomic.Int64
	fsyncs      *atomic.Int64
	syncedRecs  *atomic.Int64
	replayed    *atomic.Int64
	truncated   *atomic.Int64
	rotations   *atomic.Int64
	compactions *atomic.Int64
	durableLSN  *atomic.Int64
}

// segName renders the segment filename for its first LSN.
func segName(first uint64) string { return fmt.Sprintf("wal-%016x.seg", first) }

// Open opens (creating if needed) the log in dir and scans it. fromLSN
// is the LSN the caller's base state (a snapshot, or zero for a fresh
// build) already includes; the returned records are the verified tail
// past it, in LSN order, ready to replay. A torn tail — a final record
// a crash left incomplete — is truncated away (it was never
// acknowledged); corruption before the final record, a gap in the LSN
// chain, or a log that starts after fromLSN+1 fails with an error
// matching ErrCorrupt.
func Open(dir string, fromLSN uint64, opts Options) (*Log, []Record, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	l := &Log{
		dir:         dir,
		opts:        opts,
		appends:     opts.Metrics.Counter("wal_appends_total"),
		fsyncs:      opts.Metrics.Counter("wal_fsyncs_total"),
		syncedRecs:  opts.Metrics.Counter("wal_synced_records_total"),
		replayed:    opts.Metrics.Counter("wal_replayed_records_total"),
		truncated:   opts.Metrics.Counter("wal_truncated_bytes_total"),
		rotations:   opts.Metrics.Counter("wal_rotations_total"),
		compactions: opts.Metrics.Counter("wal_compacted_segments_total"),
		durableLSN:  opts.Metrics.Counter("wal_durable_lsn"),
	}
	l.work = sync.NewCond(&l.mu)
	l.dur = sync.NewCond(&l.mu)

	records, err := l.scan(fromLSN)
	if err != nil {
		return nil, nil, err
	}
	l.replayed.Add(int64(len(records)))
	l.durable = l.written
	l.durableLSN.Store(int64(l.durable))

	if l.segPath == "" {
		// Fresh log: the first segment starts at the next LSN.
		l.segFirst = l.next
		l.segPath = filepath.Join(dir, segName(l.segFirst))
	}
	seg, err := storage.OpenLogFile(l.segPath)
	if err != nil {
		return nil, nil, err
	}
	l.seg = seg
	l.durableOff = seg.Size()
	if err := syncDir(dir); err != nil {
		seg.Close()
		return nil, nil, err
	}

	l.wg.Add(1)
	go l.syncLoop()
	return l, records, nil
}

// Append encodes r, stamps the next LSN, and writes it to the active
// segment. The record is NOT durable yet: the returned LSN must be
// passed to WaitDurable before the mutation is acknowledged. A failed
// append leaves the log exactly as it was (a torn prefix is truncated
// away); if even that repair fails the log is poisoned and every later
// call fails with the first error.
func (l *Log) Append(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.closing {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	r.LSN = l.next
	buf, err := appendRecord(nil, r)
	if err != nil {
		return 0, err
	}
	start := l.seg.Size()
	if _, err := l.seg.Append(buf); err != nil {
		if terr := l.seg.Truncate(start); terr != nil {
			// The torn record cannot be removed: no further append may
			// land after it, or replay would see garbage mid-log.
			l.fail(fmt.Errorf("wal: repairing torn append: %w (after %w)", terr, err))
		}
		return 0, err
	}
	l.written = r.LSN
	l.next = r.LSN + 1
	l.appends.Add(1)
	l.work.Signal()
	return r.LSN, nil
}

// WaitDurable blocks until the log has fsynced lsn (returning nil), the
// log is poisoned (returning the sticky error), or the log is closed
// with lsn still pending (returning ErrClosed).
func (l *Log) WaitDurable(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable < lsn && l.err == nil && !l.closed {
		l.dur.Wait()
	}
	if l.durable >= lsn {
		return nil
	}
	if l.err != nil {
		return l.err
	}
	return ErrClosed
}

// fail poisons the log (first error wins) and drops the unacknowledged
// tail of the active segment, so a reopen recovers exactly the records
// that were acknowledged durable. Callers hold l.mu.
func (l *Log) fail(err error) {
	if l.err == nil {
		l.err = fmt.Errorf("%w: %w", ErrClosed, err)
		// Best effort: if the truncate fails too, replay's torn-tail
		// repair handles whatever half-synced bytes survive.
		_ = l.seg.Truncate(l.durableOff)
	}
	l.dur.Broadcast()
	l.work.Broadcast()
}

// syncLoop is the group-commit goroutine: it gathers the records
// appended since the last fsync into one batch, fsyncs once (outside
// the log mutex), advances the durable LSN, and wakes the committers.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for l.err == nil && !l.closing && l.written == l.durable {
			l.work.Wait()
		}
		if l.err != nil || (l.closing && l.written == l.durable) {
			l.mu.Unlock()
			return
		}
		if !l.closing && l.opts.SyncInterval > 0 && l.written-l.durable < uint64(l.opts.SyncEvery) {
			// Gathering window: let concurrent committers join the batch.
			l.mu.Unlock()
			time.Sleep(l.opts.SyncInterval)
			l.mu.Lock()
		}
		target := l.written
		targetOff := l.seg.Size()
		seg := l.seg
		l.mu.Unlock()

		err := seg.Sync()

		l.mu.Lock()
		if err != nil {
			l.fail(err)
			l.mu.Unlock()
			return
		}
		l.fsyncs.Add(1)
		if target > l.durable {
			l.syncedRecs.Add(int64(target - l.durable))
			l.durable = target
			l.durableOff = targetOff
			l.durableLSN.Store(int64(target))
		}
		if l.durable == l.written && l.seg.Size() >= l.opts.SegmentBytes {
			// Quiescent and oversized: rotate so compaction has a
			// boundary to cut at. Pending records never span a rotation.
			if rerr := l.rotateLocked(); rerr != nil {
				l.fail(rerr)
				l.mu.Unlock()
				return
			}
		}
		l.dur.Broadcast()
		l.mu.Unlock()
	}
}

// rotateLocked closes the active segment and opens a fresh one starting
// at the next LSN. Callers hold l.mu and have ensured durable==written
// (a pending record must never be split from its fsync by a rotation).
// The directory is fsynced so the new segment's name is durable before
// any record in it can be acknowledged.
func (l *Log) rotateLocked() error {
	path := filepath.Join(l.dir, segName(l.next))
	nf, err := storage.OpenLogFile(path)
	if err != nil {
		return fmt.Errorf("wal: rotating to %s: %w", filepath.Base(path), err)
	}
	if l.inj != nil {
		nf.SetInjector(l.inj)
	}
	if err := syncDir(l.dir); err != nil {
		nf.Close()
		return err
	}
	old := l.seg
	l.segs = append(l.segs, closedSeg{first: l.segFirst, path: l.segPath})
	l.seg, l.segFirst, l.segPath = nf, l.next, path
	l.durableOff = 0
	l.rotations.Add(1)
	if err := old.Close(); err != nil {
		return fmt.Errorf("wal: closing rotated segment: %w", err)
	}
	return nil
}

// Checkpoint makes the log reflect a snapshot that durably includes
// every record up to and including upto: it drains pending fsyncs,
// rotates the active segment if it holds checkpointed records, and
// deletes rotated segments the snapshot has made redundant. Replay
// stays idempotent throughout — a crash between the snapshot commit
// and the compaction only means records <= upto are replayed onto a
// state that already contains them, which the caller skips by LSN.
func (l *Log) Checkpoint(upto uint64) error {
	if err := fireCrashHook("checkpoint-start"); err != nil {
		return err
	}
	l.mu.Lock()
	for l.err == nil && !l.closing && l.durable < l.written {
		l.work.Signal()
		l.dur.Wait()
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.closing || l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.segFirst <= upto && l.seg.Size() > 0 {
		if err := fireCrashHook("rotate-create"); err != nil {
			l.mu.Unlock()
			return err
		}
		if err := l.rotateLocked(); err != nil {
			l.fail(err)
			l.mu.Unlock()
			return err
		}
		if err := fireCrashHook("rotate-swap"); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	// A rotated segment covers the LSNs before its successor's first;
	// it is redundant once that whole range is <= upto.
	var drop []closedSeg
	for len(l.segs) > 0 {
		nextFirst := l.segFirst
		if len(l.segs) > 1 {
			nextFirst = l.segs[1].first
		}
		if nextFirst > upto+1 {
			break
		}
		drop = append(drop, l.segs[0])
		l.segs = l.segs[1:]
	}
	l.mu.Unlock()

	for _, s := range drop {
		if err := fireCrashHook("compact-unlink"); err != nil {
			return err
		}
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("wal: compacting %s: %w", filepath.Base(s.path), err)
		}
		l.compactions.Add(1)
	}
	if len(drop) > 0 {
		return syncDir(l.dir)
	}
	return nil
}

// SetInjector installs (or clears, with nil) a fault injector on the
// active segment and every segment rotation creates from now on.
func (l *Log) SetInjector(in storage.Injector) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inj = in
	l.seg.SetInjector(in)
}

// DurableLSN reports the last LSN the log has fsynced.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// NextLSN reports the LSN the next append will be stamped with.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Segments reports how many segment files the log currently spans
// (rotated plus active).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs) + 1
}

// Close drains pending records through one final fsync, stops the
// group-commit goroutine, and closes the active segment. A poisoned
// log returns its sticky error. Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	already := l.closing
	l.closing = true
	l.work.Broadcast()
	l.mu.Unlock()
	l.wg.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || already {
		return nil
	}
	l.closed = true
	err := l.err
	if cerr := l.seg.Close(); err == nil && cerr != nil {
		err = cerr
	}
	l.dur.Broadcast()
	return err
}

// syncDir fsyncs a directory so entries created, renamed or removed in
// it are durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("wal: syncing directory %s: %w", path, serr)
	}
	return cerr
}
