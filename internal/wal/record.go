package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Record framing. Every record is
//
//	[size uint32][crc32c uint32][payload]
//
// where size = len(payload) and the CRC32C covers the payload only. The
// payload is
//
//	[lsn uint64][type uint8][body]
//
// with a type-specific body:
//
//	insert: [id int32][edge int32][offset float64][nterms uint16][terms int32...]
//	remove: [id int32]
//
// All integers are little-endian. The insert body carries the object ID
// the live process assigned, so replay can verify that applying the log
// over the restored collection reassigns exactly the same IDs — any
// divergence means the snapshot and the log do not belong together.

// RecordType tags a log record's payload.
type RecordType uint8

// The mutation kinds the log records.
const (
	RecInsert RecordType = 1
	RecRemove RecordType = 2
)

// Record is one logged mutation.
type Record struct {
	// LSN is the record's log sequence number; assigned by Append,
	// verified dense and ascending by replay.
	LSN uint64
	// Type selects which of the remaining fields are meaningful.
	Type RecordType
	// ID is the object inserted or removed.
	ID int32
	// Edge and Offset are the inserted object's position (RecInsert).
	Edge   int32
	Offset float64
	// Terms are the inserted object's keywords (RecInsert).
	Terms []int32
}

const (
	// recHeader is the length/CRC prefix before each payload.
	recHeader = 8
	// minPayload is the smallest legal payload: LSN + type + a 4-byte body.
	minPayload = 8 + 1 + 4
	// maxPayload bounds a single record; anything larger in the framing
	// is treated as corruption, not an allocation request.
	maxPayload = 1 << 20
)

// recCRC is the Castagnoli table shared with the snapshot manifest.
var recCRC = crc32.MakeTable(crc32.Castagnoli)

// appendRecord encodes r (with its LSN already stamped) onto buf.
func appendRecord(buf []byte, r Record) ([]byte, error) {
	var body []byte
	switch r.Type {
	case RecInsert:
		if len(r.Terms) > math.MaxUint16 {
			return nil, fmt.Errorf("wal: insert with %d terms exceeds the record format", len(r.Terms))
		}
		body = make([]byte, 0, 9+4+4+8+2+4*len(r.Terms))
		body = binary.LittleEndian.AppendUint64(body, r.LSN)
		body = append(body, byte(r.Type))
		body = binary.LittleEndian.AppendUint32(body, uint32(r.ID))
		body = binary.LittleEndian.AppendUint32(body, uint32(r.Edge))
		body = binary.LittleEndian.AppendUint64(body, math.Float64bits(r.Offset))
		body = binary.LittleEndian.AppendUint16(body, uint16(len(r.Terms)))
		for _, t := range r.Terms {
			body = binary.LittleEndian.AppendUint32(body, uint32(t))
		}
	case RecRemove:
		body = make([]byte, 0, 9+4)
		body = binary.LittleEndian.AppendUint64(body, r.LSN)
		body = append(body, byte(r.Type))
		body = binary.LittleEndian.AppendUint32(body, uint32(r.ID))
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, recCRC))
	return append(buf, body...), nil
}

// decodePayload parses a CRC-verified payload into a Record.
func decodePayload(p []byte) (Record, error) {
	if len(p) < 9 {
		return Record{}, fmt.Errorf("wal: payload of %d bytes too short", len(p))
	}
	r := Record{
		LSN:  binary.LittleEndian.Uint64(p),
		Type: RecordType(p[8]),
	}
	body := p[9:]
	switch r.Type {
	case RecInsert:
		if len(body) < 4+4+8+2 {
			return Record{}, fmt.Errorf("wal: insert body of %d bytes too short", len(body))
		}
		r.ID = int32(binary.LittleEndian.Uint32(body))
		r.Edge = int32(binary.LittleEndian.Uint32(body[4:]))
		r.Offset = math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
		n := int(binary.LittleEndian.Uint16(body[16:]))
		body = body[18:]
		if len(body) != 4*n {
			return Record{}, fmt.Errorf("wal: insert claims %d terms, body has %d bytes", n, len(body))
		}
		r.Terms = make([]int32, n)
		for i := range r.Terms {
			r.Terms[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
		}
	case RecRemove:
		if len(body) != 4 {
			return Record{}, fmt.Errorf("wal: remove body of %d bytes, want 4", len(body))
		}
		r.ID = int32(binary.LittleEndian.Uint32(body))
	default:
		return Record{}, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
	return r, nil
}
