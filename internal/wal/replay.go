package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// scan reads every segment in l.dir in LSN order, verifies the records,
// repairs a torn tail, and returns the records past fromLSN. It fills
// l.segs / l.segFirst / l.segPath / l.next / l.written as a side effect.
//
// The corruption policy distinguishes what a crash can legitimately
// leave behind from what it cannot:
//
//   - An incomplete final record in the FINAL segment is a torn tail: a
//     crash interrupted the append, nothing past it was ever
//     acknowledged, so it is truncated away. Likewise a final record
//     whose bytes run to end-of-file but fail their CRC (a partially
//     flushed page cache), and a tail of zero bytes.
//   - The same damage anywhere else — before a later valid record, or in
//     a non-final segment — cannot come from a torn append: something
//     acknowledged after it survived, so the log is lying. That, a CRC
//     mismatch mid-log, a gap in the LSN chain, or a log that starts
//     after fromLSN+1 all fail with an error matching ErrCorrupt.
func (l *Log) scan(fromLSN uint64) ([]Record, error) {
	names, err := segNames(l.dir)
	if err != nil {
		return nil, err
	}

	var (
		records []Record
		expect  uint64 // next LSN the chain demands; 0 = no record seen yet
	)
	for i, name := range names {
		first, err := parseSegName(name)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(l.dir, name)
		last := i == len(names)-1
		if last {
			l.segFirst, l.segPath = first, path
		} else {
			l.segs = append(l.segs, closedSeg{first: first, path: path})
		}

		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		off := 0
		segRecords := 0
		for off < len(data) {
			rest := data[off:]
			keep, r, perr := parseNext(rest)
			if perr != nil {
				if last && tornTail(rest, keep) {
					if err := l.truncateTail(path, int64(off)); err != nil {
						return nil, err
					}
					break
				}
				return nil, fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, name, off, perr)
			}
			if segRecords == 0 && r.LSN < first {
				return nil, fmt.Errorf("%w: %s starts at LSN %d before its name claims %d",
					ErrCorrupt, name, r.LSN, first)
			}
			if expect == 0 {
				if r.LSN > fromLSN+1 {
					return nil, fmt.Errorf("%w: first record is LSN %d but the snapshot only covers up to %d",
						ErrCorrupt, r.LSN, fromLSN)
				}
			} else if r.LSN != expect {
				return nil, fmt.Errorf("%w: %s has LSN %d where %d was expected",
					ErrCorrupt, name, r.LSN, expect)
			}
			expect = r.LSN + 1
			segRecords++
			if r.LSN > fromLSN {
				records = append(records, r)
			}
			off += keep
		}
	}

	l.next = fromLSN + 1
	if expect > l.next {
		l.next = expect
	}
	l.written = l.next - 1
	return records, nil
}

// parseNext decodes the record at the head of rest. On success it
// returns the record and its encoded length. On failure, n is the
// complete-record length if the framing was intact (so tornTail can
// tell a record that runs to end-of-file from one with bytes after it),
// or 0 if even the framing was unreadable.
func parseNext(rest []byte) (n int, r Record, err error) {
	if len(rest) < recHeader {
		return 0, Record{}, fmt.Errorf("truncated header (%d bytes)", len(rest))
	}
	size := int(binary.LittleEndian.Uint32(rest))
	if size < minPayload || size > maxPayload {
		return 0, Record{}, fmt.Errorf("implausible record size %d", size)
	}
	if len(rest) < recHeader+size {
		return 0, Record{}, fmt.Errorf("record of %d bytes truncated at %d", recHeader+size, len(rest))
	}
	payload := rest[recHeader : recHeader+size]
	want := binary.LittleEndian.Uint32(rest[4:])
	if got := crc32.Checksum(payload, recCRC); got != want {
		return recHeader + size, Record{}, fmt.Errorf("CRC mismatch (%08x != %08x)", got, want)
	}
	r, derr := decodePayload(payload)
	if derr != nil {
		return recHeader + size, Record{}, derr
	}
	return recHeader + size, r, nil
}

// tornTail reports whether a parse failure at the tail of the final
// segment is consistent with a torn append: the record is incomplete
// (n == 0 and the bytes are not a later record's leavings — all zeros
// or simply cut off), or it is complete but runs exactly to end-of-file
// with a bad CRC (a partially flushed cache). n is parseNext's
// complete-record length, 0 if the framing itself was short or bogus.
func tornTail(rest []byte, n int) bool {
	if n > 0 {
		// Complete framing, bad content: torn only if nothing follows.
		return n == len(rest)
	}
	if len(rest) < recHeader || len(rest) < recHeader+int(binary.LittleEndian.Uint32(rest)) {
		// The record is cut off by end-of-file.
		return true
	}
	// Implausible size with a full buffer behind it: torn only if the
	// size field and everything after are preallocated zeros.
	for _, b := range rest {
		if b != 0 {
			return false
		}
	}
	return true
}

// truncateTail drops a torn tail during scan, before the segment is
// opened for appending.
func (l *Log) truncateTail(path string, size int64) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(path), err)
	}
	l.truncated.Add(st.Size() - size)
	return nil
}

// segNames lists the segment files in dir in LSN order (the zero-padded
// hex names sort lexicographically).
func segNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// parseSegName extracts the first-LSN a segment's name declares.
func parseSegName(name string) (uint64, error) {
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, fmt.Errorf("%w: malformed segment name %q", ErrCorrupt, name)
	}
	first, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: malformed segment name %q", ErrCorrupt, name)
	}
	return first, nil
}
