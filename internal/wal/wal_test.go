package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dsks/internal/fault"
	"dsks/internal/metrics"
)

func mustOpen(t *testing.T, dir string, from uint64, opts Options) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(dir, from, opts)
	if err != nil {
		t.Fatalf("Open(%s, %d): %v", dir, from, err)
	}
	return l, recs
}

func insertRec(id int32) Record {
	return Record{Type: RecInsert, ID: id, Edge: id * 2, Offset: float64(id) + 0.5, Terms: []int32{id, id + 1}}
}

// appendWait appends r and blocks until it is durable.
func appendWait(t *testing.T, l *Log, r Record) uint64 {
	t.Helper()
	lsn, err := l.Append(r)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatalf("WaitDurable(%d): %v", lsn, err)
	}
	return lsn
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs := mustOpen(t, dir, 0, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := []Record{insertRec(0), {Type: RecRemove, ID: 0}, insertRec(7)}
	for i := range want {
		lsn := appendWait(t, l, want[i])
		if lsn != uint64(i+1) {
			t.Fatalf("record %d got LSN %d", i, lsn)
		}
		want[i].LSN = lsn
	}
	if got := l.DurableLSN(); got != 3 {
		t.Fatalf("DurableLSN = %d, want 3", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs := mustOpen(t, dir, 0, Options{})
	defer l2.Close()
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		w := want[i]
		if r.LSN != w.LSN || r.Type != w.Type || r.ID != w.ID || r.Edge != w.Edge || r.Offset != w.Offset {
			t.Fatalf("record %d = %+v, want %+v", i, r, w)
		}
		if len(r.Terms) != len(w.Terms) {
			t.Fatalf("record %d terms %v, want %v", i, r.Terms, w.Terms)
		}
		for j := range r.Terms {
			if r.Terms[j] != w.Terms[j] {
				t.Fatalf("record %d terms %v, want %v", i, r.Terms, w.Terms)
			}
		}
	}
	if got := l2.NextLSN(); got != 4 {
		t.Fatalf("NextLSN after replay = %d, want 4", got)
	}
}

func TestReplaySkipsSnapshotCoveredRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	for i := int32(0); i < 5; i++ {
		appendWait(t, l, insertRec(i))
	}
	l.Close()

	// A snapshot that already contains LSNs 1..3 replays only 4 and 5.
	l2, recs := mustOpen(t, dir, 3, Options{})
	defer l2.Close()
	if len(recs) != 2 || recs[0].LSN != 4 || recs[1].LSN != 5 {
		t.Fatalf("replay past LSN 3 = %+v, want LSNs 4,5", recs)
	}
	// A snapshot ahead of the whole log replays nothing and appends after it.
	l2.Close()
	l3, recs := mustOpen(t, dir, 9, Options{})
	defer l3.Close()
	if len(recs) != 0 {
		t.Fatalf("replay past LSN 9 = %+v, want none", recs)
	}
	if lsn, err := l3.Append(insertRec(9)); err != nil || lsn != 10 {
		t.Fatalf("Append after future snapshot = (%d, %v), want (10, nil)", lsn, err)
	}
}

func TestGroupCommitBatchesConcurrentAppends(t *testing.T) {
	reg := metrics.NewRegistry()
	l, _ := mustOpen(t, t.TempDir(), 0, Options{
		SyncEvery:    32,
		SyncInterval: 5 * time.Millisecond,
		Metrics:      reg,
	})
	defer l.Close()

	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := l.Append(insertRec(int32(w*per + i)))
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if err := l.WaitDurable(lsn); err != nil {
					t.Errorf("WaitDurable: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	snap := reg.Snapshot()
	appends := snap.Counters["wal_appends_total"]
	fsyncs := snap.Counters["wal_fsyncs_total"]
	synced := snap.Counters["wal_synced_records_total"]
	if appends != writers*per {
		t.Fatalf("wal_appends_total = %d, want %d", appends, writers*per)
	}
	if synced != appends {
		t.Fatalf("wal_synced_records_total = %d, want %d", synced, appends)
	}
	if fsyncs == 0 || fsyncs >= synced {
		t.Fatalf("group commit degenerated: %d fsyncs for %d records", fsyncs, synced)
	}
	t.Logf("group commit: %d records over %d fsyncs (%.1f per batch)",
		synced, fsyncs, float64(synced)/float64(fsyncs))
}

func TestStrictModeSyncsEveryCommit(t *testing.T) {
	reg := metrics.NewRegistry()
	l, _ := mustOpen(t, t.TempDir(), 0, Options{Strict: true, Metrics: reg})
	defer l.Close()
	for i := int32(0); i < 5; i++ {
		appendWait(t, l, insertRec(i))
	}
	snap := reg.Snapshot()
	if fsyncs := snap.Counters["wal_fsyncs_total"]; fsyncs != 5 {
		t.Fatalf("strict mode: %d fsyncs for 5 sequential commits, want 5", fsyncs)
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	for i := int32(0); i < 3; i++ {
		appendWait(t, l, insertRec(i))
	}
	segPath := l.segPath
	l.Close()

	// Simulate a crash mid-append: a record whose bytes stop at EOF.
	full, err := appendRecord(nil, Record{LSN: 4, Type: RecRemove, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := metrics.NewRegistry()
	l2, recs := mustOpen(t, dir, 0, Options{Metrics: reg})
	defer l2.Close()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(recs))
	}
	if tb := reg.Snapshot().Counters["wal_truncated_bytes_total"]; tb != int64(len(full)-3) {
		t.Fatalf("wal_truncated_bytes_total = %d, want %d", tb, len(full)-3)
	}
	// The log continues where the acknowledged records ended.
	if lsn, err := l2.Append(insertRec(9)); err != nil || lsn != 4 {
		t.Fatalf("Append after torn-tail repair = (%d, %v), want (4, nil)", lsn, err)
	}
}

func TestZeroTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	appendWait(t, l, insertRec(1))
	segPath := l.segPath
	l.Close()

	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, recs := mustOpen(t, dir, 0, Options{})
	defer l2.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records after zeroed tail, want 1", len(recs))
	}
}

func TestFinalRecordCRCMismatchTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	for i := int32(0); i < 3; i++ {
		appendWait(t, l, insertRec(i))
	}
	segPath := l.segPath
	size := l.seg.Size()
	l.Close()

	// Flip a bit in the LAST record's payload: a partially flushed page
	// cache can leave exactly this — framing intact, content wrong. It
	// runs to end-of-file, so it is a torn tail, not corruption.
	flipByteAt(t, segPath, size-2)
	l2, recs := mustOpen(t, dir, 0, Options{})
	defer l2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after final-record bit flip, want 2", len(recs))
	}
}

func TestMidLogCRCMismatchIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	for i := int32(0); i < 3; i++ {
		appendWait(t, l, insertRec(i))
	}
	segPath := l.segPath
	l.Close()

	// Flip a bit in the FIRST record: valid records follow it, so this
	// cannot be a torn append and must fail the open.
	flipByteAt(t, segPath, 12)
	if _, _, err := Open(dir, 0, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-log corruption = %v, want ErrCorrupt", err)
	}
}

func TestLSNGapAfterSnapshotIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	// Hand-craft a segment whose records start at LSN 5: opening it over
	// a base state that only covers up to LSN 2 leaves 3 and 4 missing.
	var buf []byte
	var err error
	if buf, err = appendRecord(buf, Record{LSN: 5, Type: RecRemove, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(5)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, 2, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over an LSN gap = %v, want ErrCorrupt", err)
	}
	// The same log is fine for a base state that covers up to LSN 4.
	l, recs := mustOpen(t, dir, 4, Options{})
	defer l.Close()
	if len(recs) != 1 || recs[0].LSN != 5 {
		t.Fatalf("replay = %+v, want the single LSN-5 record", recs)
	}
}

func TestSyncFaultPoisonsLogAndDropsUnacked(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	acked := appendWait(t, l, insertRec(1))

	inj, err := fault.New(fault.Config{Op: fault.OpSync, Probability: 1})
	if err != nil {
		t.Fatal(err)
	}
	l.SetInjector(inj)
	lsn, err := l.Append(insertRec(2))
	if err != nil {
		t.Fatalf("Append (the write itself is unfaulted): %v", err)
	}
	if err := l.WaitDurable(lsn); err == nil {
		t.Fatal("WaitDurable under a sync fault returned nil")
	} else if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("WaitDurable error %v does not wrap fault.ErrInjected", err)
	}
	// Poisoned: even a fresh append is refused.
	if _, err := l.Append(insertRec(3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on poisoned log = %v, want ErrClosed", err)
	}
	if err := l.Close(); err == nil {
		t.Fatal("Close of poisoned log returned nil")
	}

	// Reopen recovers exactly the acknowledged record: the unsynced
	// tail was truncated by the poison path.
	l2, recs := mustOpen(t, dir, 0, Options{})
	defer l2.Close()
	if len(recs) != 1 || recs[0].LSN != acked {
		t.Fatalf("replay after poison = %+v, want only acked LSN %d", recs, acked)
	}
}

func TestCheckpointRotatesAndCompacts(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	l, _ := mustOpen(t, dir, 0, Options{Metrics: reg})
	var last uint64
	for i := int32(0); i < 4; i++ {
		last = appendWait(t, l, insertRec(i))
	}
	if err := l.Checkpoint(last); err != nil {
		t.Fatal(err)
	}
	if got := l.Segments(); got != 1 {
		t.Fatalf("Segments after full checkpoint = %d, want 1", got)
	}
	names, err := segNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != segName(last+1) {
		t.Fatalf("segment files after checkpoint = %v, want [%s]", names, segName(last+1))
	}
	snap := reg.Snapshot()
	if snap.Counters["wal_rotations_total"] == 0 || snap.Counters["wal_compacted_segments_total"] == 0 {
		t.Fatalf("checkpoint counters = %v, want rotation and compaction", snap.Counters)
	}

	// Records appended after the checkpoint land in the new segment and
	// survive a reopen from the checkpoint LSN.
	appendWait(t, l, insertRec(40))
	l.Close()
	l2, recs := mustOpen(t, dir, last, Options{})
	defer l2.Close()
	if len(recs) != 1 || recs[0].LSN != last+1 {
		t.Fatalf("replay after checkpoint = %+v, want LSN %d", recs, last+1)
	}
}

func TestCheckpointKeepsUncoveredSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{})
	appendWait(t, l, insertRec(1))
	appendWait(t, l, insertRec(2))
	// Checkpoint at LSN 1: the active segment still holds LSN 2, so it
	// is rotated but NOT deleted.
	if err := l.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if got := l.Segments(); got != 2 {
		t.Fatalf("Segments after partial checkpoint = %d, want 2", got)
	}
	l.Close()
	l2, recs := mustOpen(t, dir, 1, Options{})
	defer l2.Close()
	if len(recs) != 1 || recs[0].LSN != 2 {
		t.Fatalf("replay after partial checkpoint = %+v, want LSN 2", recs)
	}
}

func TestSegmentRotationAtSizeThreshold(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, 0, Options{SegmentBytes: 64})
	for i := int32(0); i < 6; i++ {
		appendWait(t, l, insertRec(i))
	}
	if got := l.Segments(); got < 2 {
		t.Fatalf("Segments with a 64-byte threshold = %d, want several", got)
	}
	l.Close()
	l2, recs := mustOpen(t, dir, 0, Options{})
	defer l2.Close()
	if len(recs) != 6 {
		t.Fatalf("replayed %d records across rotated segments, want 6", len(recs))
	}
}

func TestCloseDrainsPendingThenRefuses(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), 0, Options{SyncInterval: 50 * time.Millisecond})
	lsn, err := l.Append(insertRec(1))
	if err != nil {
		t.Fatal(err)
	}
	// Close must drain the pending record through a final fsync.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got != lsn {
		t.Fatalf("DurableLSN after Close = %d, want %d (drained)", got, lsn)
	}
	if _, err := l.Append(insertRec(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.WaitDurable(lsn + 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitDurable past Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

func TestCheckpointCrashHooks(t *testing.T) {
	for _, point := range CrashPoints {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := mustOpen(t, dir, 0, Options{})
			var last uint64
			for i := int32(0); i < 3; i++ {
				last = appendWait(t, l, insertRec(i))
			}
			CrashHook = func(p string) error {
				if p == point {
					return fmt.Errorf("simulated crash at %s", p)
				}
				return nil
			}
			defer func() { CrashHook = nil }()
			if err := l.Checkpoint(last); err == nil {
				t.Fatalf("Checkpoint with a crash at %s returned nil", point)
			}
			CrashHook = nil
			l.Close()

			// Whatever intermediate state the crash left, a reopen from
			// the checkpoint's snapshot recovers (replay is idempotent).
			l2, recs := mustOpen(t, dir, last, Options{})
			defer l2.Close()
			if len(recs) != 0 {
				t.Fatalf("crash at %s left %d records past the snapshot", point, len(recs))
			}
			if lsn, err := l2.Append(insertRec(9)); err != nil || lsn != last+1 {
				t.Fatalf("Append after crash at %s = (%d, %v), want (%d, nil)", point, lsn, err, last+1)
			}
		})
	}
}

func flipByteAt(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
