package invindex

import (
	"context"

	"math/rand"
	"reflect"
	"testing"

	"dsks/internal/geo"
	"dsks/internal/graph"
	"dsks/internal/obj"
	"dsks/internal/storage"
)

// buildFixture creates a small graph with objects and the index over them.
func buildFixture(t testing.TB, nObjects int, seed int64) (*graph.Graph, *obj.Collection, *Index, *Loader, *storage.IOStats) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	const n = 50
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{X: rng.Float64() * geo.WorldMax, Y: rng.Float64() * geo.WorldMax})
	}
	for i := 1; i < n; i++ {
		if _, err := g.AddEdge(graph.NodeID(i-1), graph.NodeID(i), 1+rng.Float64()*5); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		a, b := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if a != b {
			_, _ = g.AddEdge(a, b, 1+rng.Float64()*5)
		}
	}
	g.Freeze()

	const vocab = 20
	col := obj.NewCollection()
	for i := 0; i < nObjects; i++ {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		nt := 1 + rng.Intn(4)
		terms := make([]obj.TermID, nt)
		for j := range terms {
			terms[j] = obj.TermID(rng.Intn(vocab))
		}
		col.Add(graph.Position{Edge: e, Offset: rng.Float64() * g.Edge(e).Length}, terms)
	}
	stats := &storage.IOStats{}
	pool := storage.NewBufferPool(storage.NewPageFile(), 256, stats)
	idx, err := Build(g, col, vocab, pool)
	if err != nil {
		t.Fatal(err)
	}
	return g, col, idx, &Loader{Idx: idx, Coder: GraphZCoder{G: g}}, stats
}

// bruteLoad is the reference implementation of Algorithm 2.
func bruteLoad(col *obj.Collection, e graph.EdgeID, terms []obj.TermID) map[obj.ID]bool {
	out := map[obj.ID]bool{}
	for _, id := range col.OnEdge(e) {
		if col.Get(id).HasAllTerms(terms) {
			out[id] = true
		}
	}
	return out
}

func TestLoadObjectsMatchesBruteForce(t *testing.T) {
	g, col, _, loader, _ := buildFixture(t, 400, 1)
	rng := rand.New(rand.NewSource(2))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		nt := 1 + rng.Intn(3)
		terms := make([]obj.TermID, nt)
		for j := range terms {
			terms[j] = obj.TermID(rng.Intn(20))
		}
		terms = obj.NormalizeTerms(terms)
		want := bruteLoad(col, e, terms)
		got, err := loader.LoadObjects(context.Background(), e, terms)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("edge %d terms %v: got %d, want %d", e, terms, len(got), len(want))
		}
		for _, r := range got {
			if !want[r.ID] {
				t.Fatalf("edge %d terms %v: spurious object %d", e, terms, r.ID)
			}
			o := col.Get(r.ID)
			if r.Edge != e || o.Pos.Offset != r.Offset {
				t.Fatalf("posting mismatch for %d: %+v vs %+v", r.ID, r, o.Pos)
			}
		}
		if len(want) > 0 {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("all probes empty; test is vacuous")
	}
}

func TestLoadObjectsEmptyTerm(t *testing.T) {
	_, _, _, loader, _ := buildFixture(t, 100, 3)
	got, err := loader.LoadObjects(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("empty terms returned %v", got)
	}
}

func TestLoadObjectsUnknownTerm(t *testing.T) {
	g, _, _, loader, _ := buildFixture(t, 100, 4)
	for e := 0; e < g.NumEdges(); e++ {
		got, err := loader.LoadObjects(context.Background(), graph.EdgeID(e), []obj.TermID{19})
		if err != nil {
			t.Fatal(err)
		}
		// Term 19 may or may not exist; just ensure no crash and that all
		// returned objects really carry it.
		for _, r := range got {
			_ = r
		}
	}
}

func TestPostingChainSpansPages(t *testing.T) {
	// Many objects with the same term on one edge forces a multi-page
	// chain.
	g := graph.New()
	g.AddNode(geo.Point{X: 0, Y: 0})
	g.AddNode(geo.Point{X: 100, Y: 0})
	eid, err := g.AddEdge(0, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	col := obj.NewCollection()
	const many = 700 // > 255 postings per page
	for i := 0; i < many; i++ {
		col.Add(graph.Position{Edge: eid, Offset: float64(i) / many * 100}, []obj.TermID{0})
	}
	pool := storage.NewBufferPool(storage.NewPageFile(), 64, nil)
	idx, err := Build(g, col, 1, pool)
	if err != nil {
		t.Fatal(err)
	}
	if idx.ListPages(0) < 3 {
		t.Fatalf("expected multi-page chain, got %d pages", idx.ListPages(0))
	}
	loader := &Loader{Idx: idx, Coder: GraphZCoder{G: g}}
	got, err := loader.LoadObjects(context.Background(), eid, []obj.TermID{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != many {
		t.Fatalf("chain read returned %d of %d postings", len(got), many)
	}
}

func TestIndexCountsIO(t *testing.T) {
	g, col, _, loader, stats := buildFixture(t, 500, 5)
	edges := col.Edges()
	if len(edges) == 0 {
		t.Fatal("no object edges")
	}
	var nonEmptyTerm obj.TermID = -1
	var probe graph.EdgeID
	for _, e := range edges {
		ids := col.OnEdge(e)
		if len(ids) > 0 {
			nonEmptyTerm = col.Get(ids[0]).Terms[0]
			probe = e
			break
		}
	}
	if nonEmptyTerm < 0 {
		t.Fatal("no term found")
	}
	stats.Reset()
	if _, err := loader.LoadObjects(context.Background(), probe, []obj.TermID{nonEmptyTerm}); err != nil {
		t.Fatal(err)
	}
	if stats.Snapshot().LogicalRead == 0 {
		t.Error("load performed no page reads")
	}
	_ = g
}

func TestEdgeKeyOrderingByZCode(t *testing.T) {
	// Keys of the same term must order primarily by Z-code so that
	// spatially adjacent edges are adjacent in the B+-tree.
	k1 := edgeKey(5, 100)
	k2 := edgeKey(5, 200)
	if k1 >= k2 {
		t.Error("keys not ordered by z-code")
	}
	// Different terms never collide even with identical z-codes.
	if edgeKey(5, 100) == edgeKey(6, 100) {
		t.Error("term separation broken")
	}
}

func TestSizeAndTreeExposed(t *testing.T) {
	_, _, idx, _, _ := buildFixture(t, 300, 6)
	if idx.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
	if idx.Tree() == nil || idx.Tree().Len() == 0 {
		t.Error("tree empty")
	}
}

func TestBuildRejectsOutOfVocab(t *testing.T) {
	g := graph.New()
	g.AddNode(geo.Point{})
	g.AddNode(geo.Point{X: 1})
	eid, err := g.AddEdge(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	col := obj.NewCollection()
	col.Add(graph.Position{Edge: eid}, []obj.TermID{5})
	pool := storage.NewBufferPool(storage.NewPageFile(), 8, nil)
	if _, err := Build(g, col, 3, pool); err == nil {
		t.Error("out-of-vocabulary term accepted")
	}
}

func TestZCellCollisionHandled(t *testing.T) {
	// Two edges whose centers share a Z-cell must keep separate postings.
	g := graph.New()
	g.AddNode(geo.Point{X: 0, Y: 0})
	g.AddNode(geo.Point{X: 1e-7, Y: 0})
	g.AddNode(geo.Point{X: 0, Y: 1e-7})
	e1, err := g.AddEdge(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := g.AddEdge(0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	coder := GraphZCoder{G: g}
	if coder.EdgeZCode(e1) != coder.EdgeZCode(e2) {
		t.Skip("centers no longer collide; adjust epsilon")
	}
	col := obj.NewCollection()
	a := col.Add(graph.Position{Edge: e1, Offset: 0}, []obj.TermID{0})
	b := col.Add(graph.Position{Edge: e2, Offset: 0}, []obj.TermID{0})
	pool := storage.NewBufferPool(storage.NewPageFile(), 8, nil)
	idx, err := Build(g, col, 1, pool)
	if err != nil {
		t.Fatal(err)
	}
	loader := &Loader{Idx: idx, Coder: coder}
	got1, err := loader.LoadObjects(context.Background(), e1, []obj.TermID{0})
	if err != nil {
		t.Fatal(err)
	}
	got2, err := loader.LoadObjects(context.Background(), e2, []obj.TermID{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got1) != 1 || got1[0].ID != a {
		t.Errorf("edge 1 load = %v", got1)
	}
	if len(got2) != 1 || got2[0].ID != b {
		t.Errorf("edge 2 load = %v", got2)
	}
}

func TestLoaderIntersectionOrder(t *testing.T) {
	// Results are sorted by object ID regardless of posting order.
	g := graph.New()
	g.AddNode(geo.Point{})
	g.AddNode(geo.Point{X: 10})
	eid, err := g.AddEdge(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	col := obj.NewCollection()
	var want []obj.ID
	for i := 0; i < 5; i++ {
		// Decreasing offsets: posting order is offset order, not ID order.
		id := col.Add(graph.Position{Edge: eid, Offset: float64(10 - i)}, []obj.TermID{0, 1})
		want = append(want, id)
	}
	pool := storage.NewBufferPool(storage.NewPageFile(), 8, nil)
	idx, err := Build(g, col, 2, pool)
	if err != nil {
		t.Fatal(err)
	}
	loader := &Loader{Idx: idx, Coder: GraphZCoder{G: g}}
	got, err := loader.LoadObjects(context.Background(), eid, []obj.TermID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	var ids []obj.ID
	for _, r := range got {
		ids = append(ids, r.ID)
	}
	if !reflect.DeepEqual(ids, want) {
		t.Errorf("load order = %v, want %v", ids, want)
	}
}

// TestDynamicModel drives random inserts and removals against a model,
// verifying LoadObjects after every mutation batch.
func TestDynamicModel(t *testing.T) {
	g, col, idx, loader, _ := buildFixture(t, 200, 7)
	coder := GraphZCoder{G: g}
	rng := rand.New(rand.NewSource(8))
	nextID := obj.ID(col.Len())
	// Model: live objects (the collection tracks them too).
	for batch := 0; batch < 20; batch++ {
		// A few inserts.
		for i := 0; i < 5; i++ {
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			nt := 1 + rng.Intn(3)
			terms := make([]obj.TermID, nt)
			for j := range terms {
				terms[j] = obj.TermID(rng.Intn(20))
			}
			pos := graph.Position{Edge: e, Offset: rng.Float64() * g.Edge(e).Length}
			id := col.Add(pos, terms)
			if id != nextID {
				t.Fatalf("collection assigned %d, expected %d", id, nextID)
			}
			nextID++
			o := col.Get(id)
			if err := idx.InsertObject(coder.EdgeZCode(e), id, e, pos.Offset, o.Terms); err != nil {
				t.Fatal(err)
			}
		}
		// A few removals of random live objects.
		for i := 0; i < 3; i++ {
			id := obj.ID(rng.Intn(int(nextID)))
			if col.Removed(id) {
				continue
			}
			o := col.Get(id)
			if err := idx.RemoveObject(coder.EdgeZCode(o.Pos.Edge), id, o.Terms); err != nil {
				t.Fatal(err)
			}
			if err := col.Remove(id); err != nil {
				t.Fatal(err)
			}
		}
		// Verify random probes against the collection.
		for probe := 0; probe < 30; probe++ {
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			ts := obj.NormalizeTerms([]obj.TermID{
				obj.TermID(rng.Intn(20)), obj.TermID(rng.Intn(20)),
			})
			got, err := loader.LoadObjects(context.Background(), e, ts)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteLoad(col, e, ts)
			if len(got) != len(want) {
				t.Fatalf("batch %d edge %d terms %v: got %d, want %d",
					batch, e, ts, len(got), len(want))
			}
			for _, r := range got {
				if !want[r.ID] {
					t.Fatalf("spurious object %d", r.ID)
				}
			}
		}
	}
}
