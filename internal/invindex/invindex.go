// Package invindex implements the inverted indexing technique of Section
// 3.1 (the paper's IF structure): for each keyword t, the edges carrying an
// object with t are organized in a disk-resident B+-tree whose key is the
// Z-ordering code of the edge's center point, and each tree entry points at
// the posting list holding the objects (with their offset from the edge's
// reference node).
//
// Posting lists are packed contiguously into a heap of 4KB pages — small
// lists share pages, long lists span consecutive pages — so the on-disk
// footprint matches a real inverted file rather than a page per list.
//
// The package also exposes the per-term posting statistics the signature
// layer (package sig) builds on.
//
// Index state is split in two for the MVCC query path: Roots holds the
// versioned root set (B+-tree meta, heap write cursor, per-term counts) and
// every operation exists in a form parameterized over a page source — a
// storage.WriteBatch for copy-on-write mutation (InsertObjectAt /
// RemoveObjectAt against a private *Roots), a pinned storage.PageView for
// latch-free reads (Reader). The Index methods bind the live Roots to the
// buffer pool for the build path and single-threaded callers.
package invindex

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"dsks/internal/btree"
	"dsks/internal/geo"
	"dsks/internal/graph"
	"dsks/internal/index"
	"dsks/internal/obj"
	"dsks/internal/storage"
)

// Posting is one record of an inverted list: an object containing the term,
// on the keyed edge.
type Posting struct {
	Object obj.ID
	Edge   graph.EdgeID
	Offset float64
}

// Posting heap layout: 16-byte records (object uint32, edge uint32, offset
// float64) packed into pages; a record never crosses a page border (the
// tail of a page shorter than one record is padding). A list is addressed
// by (start page, start offset, count) packed into the B+-tree value.
const postingSize = 16

// packListRef encodes a list address into a B+-tree value: page (32 bits),
// in-page offset (12 bits), record count (20 bits).
func packListRef(page storage.PageID, off, count int) uint64 {
	return uint64(page)<<32 | uint64(off)<<20 | uint64(count)
}

func unpackListRef(v uint64) (page storage.PageID, off, count int) {
	return storage.PageID(v >> 32), int(v >> 20 & 0xfff), int(v & 0xfffff)
}

// maxListRecords caps a single list at the 20-bit count field.
const maxListRecords = 1<<20 - 1

// edgeKey composes the B+-tree key of (term, edge): the term in the high
// bits, the Z-order code of the edge's center in the low bits. Two edges of
// a term may share a Z-cell; their postings are merged under one key and
// disambiguated by the Edge field of each posting, preserving the paper's
// "key of an edge is the Z-ordering code of its center point" clustering.
func edgeKey(t obj.TermID, zcode uint64) uint64 {
	return uint64(t)<<42 | (zcode & ((1 << 42) - 1))
}

// Roots is the versioned root state of the inverted file: everything a
// reader needs to resolve queries against a fixed snapshot and a mutator
// needs to extend the index. A published Roots value must never be mutated;
// mutators work on a copy (InsertObjectAt / RemoveObjectAt clone the
// TermPostings slice on first write, so a shallow struct copy is a safe
// starting point).
type Roots struct {
	Tree btree.Meta

	// TermPostings[t] counts term t's postings; the signature layer skips
	// terms whose inverted file fits into one page.
	TermPostings []int32

	// Heap write cursor: lists are appended at the tail.
	CurPage storage.PageID
	CurOff  int

	// PostingPages counts heap pages (footprint accounting).
	PostingPages int
}

// Index is the IF structure: one logical inverted file per keyword, all
// sharing a single B+-tree keyed by (term, edge-Z-code) and a packed
// posting heap. All reads go through the buffer pool, so page fetches are
// counted as disk accesses.
type Index struct {
	pool  *storage.BufferPool
	roots Roots

	// postingsRead counts every posting record decoded at query time (the
	// C2/C3 of the paper's expected-load analysis). Shared across all
	// readers of this index regardless of which snapshot they pin.
	postingsRead atomic.Int64
}

// Build constructs the inverted index for all objects in c over graph g.
// vocabSize is the vocabulary size |V|.
func Build(g *graph.Graph, c *obj.Collection, vocabSize int, pool *storage.BufferPool) (*Index, error) {
	idx := &Index{pool: pool}
	idx.roots.TermPostings = make([]int32, vocabSize)

	// Group postings by (term, zcode) key.
	type listEntry struct {
		key      uint64
		term     obj.TermID
		postings []Posting
	}
	byKey := make(map[uint64]*listEntry)
	for _, e := range c.Edges() {
		z := geo.ZCode(g.EdgeCenter(e))
		for _, id := range c.OnEdge(e) {
			o := c.Get(id)
			for _, t := range o.Terms {
				if int(t) >= vocabSize {
					return nil, fmt.Errorf("invindex: term %d outside vocabulary of %d", t, vocabSize)
				}
				k := edgeKey(t, z)
				le := byKey[k]
				if le == nil {
					le = &listEntry{key: k, term: t}
					byKey[k] = le
				}
				le.postings = append(le.postings, Posting{Object: id, Edge: e, Offset: o.Pos.Offset})
				idx.roots.TermPostings[t]++
			}
		}
	}
	keys := make([]*listEntry, 0, len(byKey))
	for _, le := range byKey {
		keys = append(keys, le)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].key < keys[j].key })

	// Write the packed posting heap and collect B+-tree entries.
	entries := make([]btree.Entry, 0, len(keys))
	for _, le := range keys {
		ref, err := writeListAt(pool, &idx.roots, le.postings)
		if err != nil {
			return nil, err
		}
		entries = append(entries, btree.Entry{Key: le.key, Value: ref})
	}
	tree, err := btree.BulkLoad(pool, entries)
	if err != nil {
		return nil, err
	}
	idx.roots.Tree = tree.Meta()
	if err := pool.Flush(); err != nil {
		return nil, err
	}
	return idx, nil
}

// writeListAt appends postings (sorted by edge then offset) to the heap
// through p and returns the packed list reference, advancing r's write
// cursor.
func writeListAt(p storage.Pager, r *Roots, ps []Posting) (uint64, error) {
	if len(ps) > maxListRecords {
		return 0, fmt.Errorf("invindex: posting list of %d records exceeds the %d cap", len(ps), maxListRecords)
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Edge != ps[j].Edge {
			return ps[i].Edge < ps[j].Edge
		}
		if ps[i].Offset != ps[j].Offset {
			return ps[i].Offset < ps[j].Offset
		}
		return ps[i].Object < ps[j].Object
	})
	// A list that does not fit in the current page's remainder starts on a
	// fresh page, so that multi-page lists always occupy consecutively
	// allocated pages — the invariant readListAt's pageID++ walk relies on.
	// (During the initial build heap pages are consecutive anyway; after
	// the build, B+-tree pages interleave in the file.)
	remainder := (storage.PageSize - r.CurOff) / postingSize
	if r.CurPage == storage.InvalidPageID || len(ps) > remainder {
		if err := newHeapPageAt(p, r); err != nil {
			return 0, err
		}
	}
	startPage, startOff := r.CurPage, r.CurOff
	for _, rec := range ps {
		if r.CurOff+postingSize > storage.PageSize {
			if err := newHeapPageAt(p, r); err != nil {
				return 0, err
			}
		}
		page, err := p.Get(r.CurPage)
		if err != nil {
			return 0, err
		}
		page.PutUint32(r.CurOff, uint32(rec.Object))
		page.PutUint32(r.CurOff+4, uint32(rec.Edge))
		page.PutFloat64(r.CurOff+8, rec.Offset)
		p.MarkDirty(r.CurPage)
		r.CurOff += postingSize
	}
	return packListRef(startPage, startOff, len(ps)), nil
}

func newHeapPageAt(p storage.Pager, r *Roots) error {
	page, err := p.Allocate()
	if err != nil {
		return err
	}
	r.CurPage = page.ID()
	r.CurOff = 0
	r.PostingPages++
	return nil
}

// readListAt loads the postings of a packed list that lie on edge e (the
// list may also hold postings of Z-cell-colliding edges). Consecutive heap
// pages are fetched through pr; decoded records are charged to counter.
func readListAt(ctx context.Context, pr storage.PageReader, counter *atomic.Int64, ref uint64, e graph.EdgeID) ([]Posting, error) {
	pageID, off, count := unpackListRef(ref)
	counter.Add(int64(count))
	var out []Posting
	for i := 0; i < count; {
		page, err := pr.GetCtx(ctx, pageID)
		if err != nil {
			return nil, err
		}
		for ; i < count && off+postingSize <= storage.PageSize; i++ {
			p := Posting{
				Object: obj.ID(page.Uint32(off)),
				Edge:   graph.EdgeID(page.Uint32(off + 4)),
				Offset: page.Float64(off + 8),
			}
			if p.Edge == e {
				out = append(out, p)
			}
			off += postingSize
		}
		pageID++
		off = 0
	}
	return out, nil
}

// readListAllAt loads every posting of a packed list (no edge filter).
func readListAllAt(pr storage.PageReader, ref uint64) ([]Posting, error) {
	pageID, off, count := unpackListRef(ref)
	out := make([]Posting, 0, count)
	for i := 0; i < count; {
		page, err := pr.Get(pageID)
		if err != nil {
			return nil, err
		}
		for ; i < count && off+postingSize <= storage.PageSize; i++ {
			out = append(out, Posting{
				Object: obj.ID(page.Uint32(off)),
				Edge:   graph.EdgeID(page.Uint32(off + 4)),
				Offset: page.Float64(off + 8),
			})
			off += postingSize
		}
		pageID++
		off = 0
	}
	return out, nil
}

// InsertObjectAt adds a new object's postings through p, updating *r in
// place. r must be a private copy of a published Roots (the TermPostings
// slice is cloned internally before the first write, so a shallow struct
// copy suffices). Existing lists are rewritten at the end of the posting
// heap (the abandoned space is the usual inverted-file amplification of
// in-place updates); the B+-tree entry is repointed or created.
func (idx *Index) InsertObjectAt(p storage.Pager, r *Roots, zcode uint64, id obj.ID, e graph.EdgeID, offset float64, terms []obj.TermID) error {
	r.TermPostings = append([]int32(nil), r.TermPostings...)
	for _, t := range terms {
		if int(t) >= len(r.TermPostings) {
			return fmt.Errorf("invindex: term %d outside vocabulary of %d", t, len(r.TermPostings))
		}
		key := edgeKey(t, zcode)
		rec := Posting{Object: id, Edge: e, Offset: offset}
		old, err := btree.GetAt(context.Background(), p, r.Tree, key)
		if errors.Is(err, btree.ErrNotFound) {
			ref, err := writeListAt(p, r, []Posting{rec})
			if err != nil {
				return err
			}
			if err := btree.InsertAt(p, &r.Tree, key, ref); err != nil {
				return err
			}
		} else if err != nil {
			return err
		} else {
			ps, err := readListAllAt(p, old)
			if err != nil {
				return err
			}
			ps = append(ps, rec)
			ref, err := writeListAt(p, r, ps)
			if err != nil {
				return err
			}
			if err := btree.UpdateAt(p, r.Tree, key, ref); err != nil {
				return err
			}
		}
		r.TermPostings[t]++
	}
	return nil
}

// RemoveObjectAt deletes an object's postings through p, updating *r in
// place (same contract as InsertObjectAt): each affected list is rewritten
// at the heap tail without the object's record. Removing an object absent
// from a term's list is ignored for that term.
func (idx *Index) RemoveObjectAt(p storage.Pager, r *Roots, zcode uint64, id obj.ID, terms []obj.TermID) error {
	r.TermPostings = append([]int32(nil), r.TermPostings...)
	for _, t := range terms {
		if int(t) >= len(r.TermPostings) {
			return fmt.Errorf("invindex: term %d outside vocabulary of %d", t, len(r.TermPostings))
		}
		key := edgeKey(t, zcode)
		old, err := btree.GetAt(context.Background(), p, r.Tree, key)
		if errors.Is(err, btree.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		ps, err := readListAllAt(p, old)
		if err != nil {
			return err
		}
		kept := ps[:0]
		removed := false
		for _, rec := range ps {
			if rec.Object == id {
				removed = true
				continue
			}
			kept = append(kept, rec)
		}
		if !removed {
			continue
		}
		if len(kept) == 0 {
			// Keep the key with an empty list reference (count 0): reads
			// of it return nothing and never touch a page.
			if err := btree.UpdateAt(p, r.Tree, key, packListRef(storage.InvalidPageID, 0, 0)); err != nil {
				return err
			}
		} else {
			ref, err := writeListAt(p, r, kept)
			if err != nil {
				return err
			}
			if err := btree.UpdateAt(p, r.Tree, key, ref); err != nil {
				return err
			}
		}
		r.TermPostings[t]--
	}
	return nil
}

// InsertObject adds a new object's postings to the live roots after the
// initial build (single-threaded path; the MVCC path goes through
// InsertObjectAt with a WriteBatch and a private Roots copy).
func (idx *Index) InsertObject(zcode uint64, id obj.ID, e graph.EdgeID, offset float64, terms []obj.TermID) error {
	if err := idx.InsertObjectAt(idx.pool, &idx.roots, zcode, id, e, offset, terms); err != nil {
		return err
	}
	return idx.pool.Flush()
}

// RemoveObject deletes an object's postings from the live roots
// (single-threaded path; see InsertObject).
func (idx *Index) RemoveObject(zcode uint64, id obj.ID, terms []obj.TermID) error {
	if err := idx.RemoveObjectAt(idx.pool, &idx.roots, zcode, id, terms); err != nil {
		return err
	}
	return idx.pool.Flush()
}

// TermPostings returns term t's postings on edge e (the R_t of Algorithm
// 2), loading them from disk. zcode must be the Z-code of e's center.
func (idx *Index) TermPostings(t obj.TermID, e graph.EdgeID, zcode uint64) ([]Posting, error) {
	return idx.TermPostingsCtx(context.Background(), t, e, zcode)
}

// TermPostingsCtx is TermPostings with cancellation: a done ctx aborts the
// B+-tree descent or the posting-heap walk before the next page read.
func (idx *Index) TermPostingsCtx(ctx context.Context, t obj.TermID, e graph.EdgeID, zcode uint64) ([]Posting, error) {
	return idx.termPostingsAt(ctx, idx.pool, &idx.roots, t, e, zcode)
}

func (idx *Index) termPostingsAt(ctx context.Context, pr storage.PageReader, r *Roots, t obj.TermID, e graph.EdgeID, zcode uint64) ([]Posting, error) {
	ref, err := btree.GetAt(ctx, pr, r.Tree, edgeKey(t, zcode))
	if errors.Is(err, btree.ErrNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return readListAt(ctx, pr, &idx.postingsRead, ref, e)
}

// EdgeZCoder supplies the Z-code of an edge's center (implemented by the
// road network graph); it is injected so that query processing does not
// depend on the full in-memory graph.
type EdgeZCoder interface {
	EdgeZCode(e graph.EdgeID) uint64
}

// GraphZCoder adapts a *graph.Graph to EdgeZCoder.
type GraphZCoder struct{ G *graph.Graph }

// EdgeZCode implements EdgeZCoder.
func (z GraphZCoder) EdgeZCode(e graph.EdgeID) uint64 { return geo.ZCode(z.G.EdgeCenter(e)) }

// Loader is the query-time handle of the IF index: it resolves edge
// Z-codes through the coder and intersects the per-term posting lists
// with AND semantics (Algorithm 2 without the signature test). Its methods
// read the live roots through the buffer pool; At binds the same logic to
// a pinned page view and a published Roots snapshot for latch-free reads.
type Loader struct {
	Idx   *Index
	Coder EdgeZCoder
	// SelectivityOrder probes the rarest query term first so empty
	// intersections short-circuit after the cheapest list read. Off by
	// default: the paper's baselines probe in query order, and enabling
	// it narrows the IF-vs-SIF gap the evaluation reproduces (see the
	// ablation-selectivity experiment).
	SelectivityOrder bool
}

// At returns a Reader running this loader's query logic against the page
// source pr and the root snapshot r.
func (l *Loader) At(pr storage.PageReader, r *Roots) *Reader {
	return &Reader{Idx: l.Idx, PR: pr, Roots: r, Coder: l.Coder, SelectivityOrder: l.SelectivityOrder}
}

// LoadObjects implements index.Loader against the live roots.
func (l *Loader) LoadObjects(ctx context.Context, e graph.EdgeID, terms []obj.TermID) ([]index.ObjectRef, error) {
	return l.At(l.Idx.pool, &l.Idx.roots).LoadObjects(ctx, e, terms)
}

// LoadObjectsAny implements index.UnionLoader against the live roots.
func (l *Loader) LoadObjectsAny(ctx context.Context, e graph.EdgeID, terms []obj.TermID) ([]index.ObjectMatch, error) {
	return l.At(l.Idx.pool, &l.Idx.roots).LoadObjectsAny(ctx, e, terms)
}

// Reader is a Loader bound to an explicit page source and root snapshot:
// with a pinned storage.PageView and a published Roots it answers queries
// latch-free at one LSN; with the buffer pool and the live roots it is the
// legacy read path.
type Reader struct {
	Idx              *Index
	PR               storage.PageReader
	Roots            *Roots
	Coder            EdgeZCoder
	SelectivityOrder bool
}

// TermPostingsCtx returns term t's postings on edge e at this reader's
// snapshot.
func (rd *Reader) TermPostingsCtx(ctx context.Context, t obj.TermID, e graph.EdgeID, zcode uint64) ([]Posting, error) {
	return rd.Idx.termPostingsAt(ctx, rd.PR, rd.Roots, t, e, zcode)
}

// LoadObjects implements index.Loader: it loads R_t for every query term
// and returns the intersection (rarest-first when SelectivityOrder is on).
func (rd *Reader) LoadObjects(ctx context.Context, e graph.EdgeID, terms []obj.TermID) ([]index.ObjectRef, error) {
	if len(terms) == 0 {
		return nil, nil
	}
	if rd.SelectivityOrder {
		terms = bySelectivity(rd.Roots.TermPostings, terms)
	}
	z := rd.Coder.EdgeZCode(e)
	var inter map[obj.ID]Posting
	for i, t := range terms {
		ps, err := rd.TermPostingsCtx(ctx, t, e, z)
		if err != nil {
			return nil, err
		}
		if len(ps) == 0 {
			return nil, nil
		}
		if i == 0 {
			inter = make(map[obj.ID]Posting, len(ps))
			for _, p := range ps {
				inter[p.Object] = p
			}
			continue
		}
		next := make(map[obj.ID]Posting, len(inter))
		for _, p := range ps {
			if _, ok := inter[p.Object]; ok {
				next[p.Object] = p
			}
		}
		inter = next
		if len(inter) == 0 {
			return nil, nil
		}
	}
	out := make([]index.ObjectRef, 0, len(inter))
	for _, p := range inter {
		out = append(out, index.ObjectRef{ID: p.Object, Edge: p.Edge, Offset: p.Offset})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// LoadObjectsAny implements index.UnionLoader: objects on e containing at
// least one query term, with their distinct-term match counts (the OR
// semantics of the ranked spatial keyword query).
func (rd *Reader) LoadObjectsAny(ctx context.Context, e graph.EdgeID, terms []obj.TermID) ([]index.ObjectMatch, error) {
	if len(terms) == 0 {
		return nil, nil
	}
	z := rd.Coder.EdgeZCode(e)
	found := make(map[obj.ID]*index.ObjectMatch)
	for _, t := range terms {
		ps, err := rd.TermPostingsCtx(ctx, t, e, z)
		if err != nil {
			return nil, err
		}
		for _, p := range ps {
			m := found[p.Object]
			if m == nil {
				m = &index.ObjectMatch{Ref: index.ObjectRef{ID: p.Object, Edge: p.Edge, Offset: p.Offset}}
				found[p.Object] = m
			}
			m.Matched++
		}
	}
	out := make([]index.ObjectMatch, 0, len(found))
	for _, m := range found {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ref.ID < out[j].Ref.ID })
	return out, nil
}

// PostingsRead returns how many posting records queries have decoded.
func (idx *Index) PostingsRead() int64 { return idx.postingsRead.Load() }

// ResetPostingsRead zeroes the posting-read counter.
func (idx *Index) ResetPostingsRead() { idx.postingsRead.Store(0) }

// bySelectivity returns the terms ordered by ascending global posting
// count (rarest first); the input is not modified.
func bySelectivity(termPostings []int32, terms []obj.TermID) []obj.TermID {
	out := append([]obj.TermID(nil), terms...)
	sort.SliceStable(out, func(i, j int) bool {
		return termPostings[out[i]] < termPostings[out[j]]
	})
	return out
}

// recordsPerPage is the heap packing density.
const recordsPerPage = storage.PageSize / postingSize

// ListPages returns the approximate number of heap pages term t's inverted
// file occupies (its postings are packed at recordsPerPage density); the
// signature layer skips terms whose file fits in a single page.
func (idx *Index) ListPages(t obj.TermID) int {
	n := int(idx.roots.TermPostings[t])
	if n == 0 {
		return 0
	}
	return (n + recordsPerPage - 1) / recordsPerPage
}

// SizeBytes returns the on-disk footprint (posting heap + B+-tree).
func (idx *Index) SizeBytes() int64 {
	return int64(idx.roots.PostingPages)*storage.PageSize + idx.roots.Tree.SizeBytes()
}

// Pool returns the index's buffer pool.
func (idx *Index) Pool() *storage.BufferPool { return idx.pool }

// Roots returns a copy of the live root set — the starting point for a
// copy-on-write mutation or a published snapshot for readers. The embedded
// TermPostings slice is shared until the next InsertObjectAt/RemoveObjectAt
// clones it, which is safe because published slices are never mutated.
func (idx *Index) Roots() Roots { return idx.roots }

// SetRoots replaces the live root set (the commit step of a successful
// copy-on-write mutation on the legacy in-place path; the DB-level MVCC
// path keeps roots in its own atomic pointer instead).
func (idx *Index) SetRoots(r Roots) { idx.roots = r }

// CurrentRoots returns a pointer to the live root set for legacy readers.
func (idx *Index) CurrentRoots() *Roots { return &idx.roots }

// Tree exposes the underlying B+-tree (for inspection in tests).
func (idx *Index) Tree() *btree.Tree { return btree.Open(idx.pool, idx.roots.Tree) }
