package invindex

import (
	"context"

	"math/rand"
	"testing"

	"dsks/internal/obj"
	"dsks/internal/storage"
)

func BenchmarkLoadObjects(b *testing.B) {
	_, col, _, loader, _ := buildFixture(b, 5000, 1)
	edges := col.Edges()
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[rng.Intn(len(edges))]
		ts := obj.NormalizeTerms([]obj.TermID{
			obj.TermID(rng.Intn(20)), obj.TermID(rng.Intn(20)),
		})
		if _, err := loader.LoadObjects(context.Background(), e, ts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadObjectsAny(b *testing.B) {
	_, col, _, loader, _ := buildFixture(b, 5000, 3)
	edges := col.Edges()
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[rng.Intn(len(edges))]
		ts := obj.NormalizeTerms([]obj.TermID{
			obj.TermID(rng.Intn(20)), obj.TermID(rng.Intn(20)),
		})
		if _, err := loader.LoadObjectsAny(context.Background(), e, ts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildIndex(b *testing.B) {
	g, col, _, _, _ := buildFixture(b, 5000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := newBenchPool()
		if _, err := Build(g, col, 20, pool); err != nil {
			b.Fatal(err)
		}
	}
}

func newBenchPool() *storage.BufferPool {
	return storage.NewBufferPool(storage.NewPageFile(), 2048, nil)
}
