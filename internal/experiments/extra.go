package experiments

import (
	"fmt"

	"dsks/internal/dataset"
	"dsks/internal/harness"
)

// ExtraBufferSweep is an additional experiment beyond the paper's figures:
// the sensitivity of the SK search to the LRU buffer budget, which the
// paper fixes at 2% of the network dataset. Disk accesses should fall
// steeply as the buffer grows and flatten once the working set fits.
func ExtraBufferSweep(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Extra: LRU buffer budget sweep (NA, SIF)",
		"buffer frames", "avg disk accesses", "avg query ms")
	ds, err := dataset.GeneratePreset(dataset.PresetNA, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 83,
	})
	if err != nil {
		return nil, err
	}
	for _, frames := range []int{2, 4, 8, 16, 32, 64, 128} {
		sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{
			BufferFrames: frames,
			IOLatency:    cfg.IOLatency,
		})
		if err != nil {
			return nil, err
		}
		avg, reads, _, err := runSKWorkload(sys, harness.KindSIF, ws)
		if err != nil {
			return nil, err
		}
		r.addRow(fmt.Sprintf("%d", frames), f1(reads), ms(avg))
		r.series("io").Append(float64(frames), reads)
		r.series("time").Append(float64(frames), msf(avg))
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}
