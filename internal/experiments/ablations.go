package experiments

import (
	"context"

	"fmt"
	"time"

	"dsks/internal/core"
	"dsks/internal/dataset"
	"dsks/internal/harness"
	"dsks/internal/sig"
)

// The ablations isolate the design choices DESIGN.md calls out: the two
// pruning rules of Algorithm 6, the greedy-vs-DP edge partitioning, the
// accumulated-Dijkstra INE, and the KD-tree signature compaction.

// AblationPruning runs COM with each pruning rule disabled in turn, on the
// NA analogue at the default diversified settings, against full COM and
// SEQ. The paper's claim: both rules contribute, and together they are
// what separates COM from SEQ.
func AblationPruning(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Ablation: Algorithm 6 pruning rules (NA)",
		"variant", "query ms", "candidates", "pruned", "pair-dist calcs")
	ds, err := dataset.GeneratePreset(dataset.PresetNA, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{IOLatency: cfg.IOLatency})
	if err != nil {
		return nil, err
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 61,
	})
	if err != nil {
		return nil, err
	}
	loader, err := sys.Loader(harness.KindSIF)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name  string
		prune core.PruneOptions
		seq   bool
	}{
		{"COM (both rules)", core.PruneOptions{}, false},
		{"COM no early-stop", core.PruneOptions{DisableEarlyStop: true}, false},
		{"COM no object-prune", core.PruneOptions{DisableObjectPrune: true}, false},
		{"COM no pruning", core.PruneOptions{DisableEarlyStop: true, DisableObjectPrune: true}, false},
		{"SEQ", core.PruneOptions{}, true},
	}
	for _, v := range variants {
		if err := sys.ResetIO(); err != nil {
			return nil, err
		}
		var elapsed time.Duration
		var stats core.SearchStats
		for _, wq := range ws {
			q := harness.DivQueryOf(wq, 10, 0.8)
			//lint:ignore detrand wall-clock latency measurement, not a data source
			start := time.Now()
			var res core.DivResult
			var err error
			if v.seq {
				res, err = core.SearchSEQ(context.Background(), sys.Net, loader, q)
			} else {
				res, err = core.SearchCOMPruned(context.Background(), sys.Net, loader, q, v.prune)
			}
			if err != nil {
				return nil, err
			}
			elapsed += time.Since(start)
			stats.Add(res.Stats) // Add accumulates Pruned and the other counters
		}
		n := float64(len(ws))
		avg := elapsed / time.Duration(len(ws))
		r.addRow(v.name, ms(avg), f1(float64(stats.Candidates)/n),
			i64(stats.Pruned), f1(float64(stats.PairDistCalcs)/n))
		r.series(v.name).Append(0, msf(avg))
		r.series("cand/"+v.name).Append(0, float64(stats.Candidates)/n)
		r.series("dist/"+v.name).Append(0, float64(stats.PairDistCalcs)/n)
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}

// AblationPartition compares the greedy edge partitioner against the exact
// dynamic program of Algorithm 4: construction time and the resulting
// false-hit counts on the same workload. The paper reports the greedy up
// to two orders of magnitude faster at similar quality.
func AblationPartition(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Ablation: greedy vs DP edge partitioning (SF)",
		"method", "partition build ms", "false hits")
	ds, err := dataset.GeneratePreset(dataset.PresetSF, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 67,
	})
	if err != nil {
		return nil, err
	}
	for _, m := range []struct {
		name   string
		method sig.PartitionMethod
	}{
		{"greedy", sig.PartitionMethodGreedy},
		{"DP (Algorithm 4)", sig.PartitionMethodDP},
	} {
		sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIFP}, harness.Options{
			SIFPMethod: m.method,
		})
		if err != nil {
			return nil, err
		}
		hits, err := falseHits(sys, harness.KindSIFP, sys.SIFP, ws)
		if err != nil {
			return nil, err
		}
		build := sys.BuildTime[harness.KindSIFP]
		r.addRow(m.name, ms(build), i64(hits))
		r.series("build/"+m.name).Append(0, msf(build))
		r.series("hits/"+m.name).Append(0, float64(hits))
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}

// AblationDijkstra quantifies the paper's Section 3.2 choice of
// accumulating Dijkstra distances during the INE, against the original
// formulation where each encountered object's network distance is
// computed from scratch.
func AblationDijkstra(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Ablation: accumulated vs per-object Dijkstra (NA)",
		"variant", "avg query ms", "avg dijkstra runs")
	ds, err := dataset.GeneratePreset(dataset.PresetNA, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{IOLatency: cfg.IOLatency})
	if err != nil {
		return nil, err
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 71,
	})
	if err != nil {
		return nil, err
	}
	loader, err := sys.Loader(harness.KindSIF)
	if err != nil {
		return nil, err
	}

	// Accumulated (the paper's Algorithm 3): one expansion per query.
	if err := sys.ResetIO(); err != nil {
		return nil, err
	}
	var accElapsed time.Duration
	for _, wq := range ws {
		//lint:ignore detrand wall-clock latency measurement, not a data source
		start := time.Now()
		search, err := core.NewSKSearch(context.Background(), sys.Net, loader, harness.SKQueryOf(wq))
		if err != nil {
			return nil, err
		}
		if _, err := search.All(); err != nil {
			return nil, err
		}
		accElapsed += time.Since(start)
	}
	r.addRow("accumulated (Alg. 3)", ms(accElapsed/time.Duration(len(ws))), "1.0")
	r.series("accumulated").Append(0, msf(accElapsed/time.Duration(len(ws))))

	// Per-object: re-derive every candidate's distance with a fresh
	// bounded Dijkstra, as the original INE of [16] would.
	if err := sys.ResetIO(); err != nil {
		return nil, err
	}
	var perElapsed time.Duration
	var runs, queries int64
	for _, wq := range ws {
		//lint:ignore detrand wall-clock latency measurement, not a data source
		start := time.Now()
		search, err := core.NewSKSearch(context.Background(), sys.Net, loader, harness.SKQueryOf(wq))
		if err != nil {
			return nil, err
		}
		cands, err := search.All()
		if err != nil {
			return nil, err
		}
		for _, c := range cands {
			var st core.SearchStats
			eng := core.NewDistEngine(context.Background(), sys.Net, wq.DeltaMax, &st)
			if _, err := eng.Dist(wq.Pos, c.Ref.Pos()); err != nil {
				return nil, err
			}
			runs += st.SourceDijkstra
		}
		perElapsed += time.Since(start)
		queries++
	}
	r.addRow("per-object (INE of [16])", ms(perElapsed/time.Duration(len(ws))),
		f1(float64(runs)/float64(queries)))
	r.series("per-object").Append(0, msf(perElapsed/time.Duration(len(ws))))
	r.Table.Fprint(cfg.Out)
	return r, nil
}

// AblationOracle measures the landmark distance oracle (docs/DISTANCE.md)
// on the diversification hot path: the same COM workload with the
// distance engine blind vs landmark-assisted. Results are bit-identical
// by construction (enforced here), so the only deltas are latency and
// traversal work — settled nodes per query is the headline number.
func AblationOracle(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Ablation: landmark distance oracle (NA)",
		"variant", "avg query ms", "settled/query", "LB prunes", "UB hits", "A* pops saved")
	ds, err := dataset.GeneratePreset(dataset.PresetNA, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		opts harness.Options
	}{
		{"blind engine", harness.Options{IOLatency: cfg.IOLatency}},
		{"oracle l=16", harness.Options{
			IOLatency: cfg.IOLatency,
			Oracle:    true, OracleLandmarks: 16, OracleSeed: uint64(cfg.Seed) + 1,
		}},
		{"oracle l=64", harness.Options{
			IOLatency: cfg.IOLatency,
			Oracle:    true, OracleLandmarks: 64, OracleSeed: uint64(cfg.Seed) + 1,
		}},
	}
	var baseline []float64 // per-query F of the blind run, for the identity check
	for vi, v := range variants {
		sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, v.opts)
		if err != nil {
			return nil, err
		}
		// Wide radii are the oracle's regime: at the default δmax the
		// bounded ball holds a handful of nodes and there is nothing to
		// save (see docs/DISTANCE.md).
		ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
			NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 73,
			DeltaMaxPerKeyword: 2500,
		})
		if err != nil {
			return nil, err
		}
		loader, err := sys.Loader(harness.KindSIF)
		if err != nil {
			return nil, err
		}
		if err := sys.ResetIO(); err != nil {
			return nil, err
		}
		var elapsed time.Duration
		var stats core.SearchStats
		for qi, wq := range ws {
			q := harness.DivQueryOf(wq, 10, 0.8)
			//lint:ignore detrand wall-clock latency measurement, not a data source
			start := time.Now()
			res, err := core.SearchCOM(context.Background(), sys.SearchNet(), loader, q)
			if err != nil {
				return nil, err
			}
			elapsed += time.Since(start)
			stats.Add(res.Stats)
			if vi == 0 {
				baseline = append(baseline, res.F)
			} else if res.F != baseline[qi] {
				return nil, fmt.Errorf("oracle changed query %d: F=%v, blind F=%v",
					qi, res.F, baseline[qi])
			}
		}
		n := float64(len(ws))
		avg := elapsed / time.Duration(len(ws))
		r.addRow(v.name, ms(avg), f1(float64(stats.DistSettled)/n),
			i64(stats.OracleLBPrunes), i64(stats.OracleUBHits), i64(stats.OraclePopsSaved))
		r.series(v.name).Append(0, msf(avg))
		r.series("settled/"+v.name).Append(0, float64(stats.DistSettled)/n)
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}

// AblationCompaction measures the KD-tree signature compaction: compacted
// vs flat bitmap size on every dataset analogue.
func AblationCompaction(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Ablation: KD-tree signature compaction",
		"dataset", "flat bitmap MB", "compacted MB", "ratio")
	for _, p := range allPresets {
		ds, err := dataset.GeneratePreset(p, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{})
		if err != nil {
			return nil, err
		}
		flat := sys.SIF.FlatSignatureBytes()
		compact := sys.SIF.SignatureBytes()
		ratio := 0.0
		if flat > 0 {
			ratio = float64(compact) / float64(flat)
		}
		r.addRow(string(p), mb(flat), mb(compact), fmt.Sprintf("%.2f", ratio))
		r.series("flat/"+string(p)).Append(0, float64(flat))
		r.series("compact/"+string(p)).Append(0, float64(compact))
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}

// AblationSelectivity quantifies the rarest-term-first probe order — an
// engineering improvement over the paper's query-order baseline that is
// off by default because it narrows the IF-vs-SIF gap the evaluation
// reproduces: the inverted file alone recovers much of the signature's
// benefit when it can discover empty intersections after one cheap list
// read.
func AblationSelectivity(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Ablation: rarest-term-first probing (NA, l = 3)",
		"index", "probe order", "avg disk accesses", "avg query ms")
	ds, err := dataset.GeneratePreset(dataset.PresetNA, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 101,
	})
	if err != nil {
		return nil, err
	}
	for _, sel := range []bool{false, true} {
		sys, err := harness.Build(ds, fineIndexKinds, harness.Options{
			SelectivityOrder: sel,
			IOLatency:        cfg.IOLatency,
		})
		if err != nil {
			return nil, err
		}
		name := "query order"
		if sel {
			name = "rarest first"
		}
		for _, kind := range fineIndexKinds {
			avg, reads, _, err := runSKWorkload(sys, kind, ws)
			if err != nil {
				return nil, err
			}
			r.addRow(string(kind), name, f1(reads), ms(avg))
			r.series(fmt.Sprintf("io/%s/%s", kind, name)).Append(0, reads)
		}
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}

// AblationC1 reproduces the expected-cost analysis of Section 3.2: the
// number of objects loaded when objects live directly in the road-network
// storage (C1 = l_e·m, every object of every visited edge), in the plain
// inverted file (C2) and under the signature test (C3). The analysis
// predicts C1 > C2 > C3; the disk-access column shows the same ordering.
func AblationC1(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Ablation: C1/C2/C3 object-loading analysis (NA, l = 3)",
		"structure", "avg records loaded", "avg disk accesses", "avg query ms")
	ds, err := dataset.GeneratePreset(dataset.PresetNA, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sys, err := harness.Build(ds, []harness.IndexKind{harness.KindC1, harness.KindIF, harness.KindSIF},
		harness.Options{IOLatency: cfg.IOLatency})
	if err != nil {
		return nil, err
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 103,
	})
	if err != nil {
		return nil, err
	}
	sys.C1.ResetScanned()
	sys.Inv.ResetPostingsRead()
	sys.SIF.Index().ResetPostingsRead()
	records := func(kind harness.IndexKind) int64 {
		switch kind {
		case harness.KindC1:
			return sys.C1.ObjectsScanned()
		case harness.KindIF:
			return sys.Inv.PostingsRead()
		default:
			return sys.SIF.Index().PostingsRead()
		}
	}
	for _, kind := range []harness.IndexKind{harness.KindC1, harness.KindIF, harness.KindSIF} {
		before := records(kind)
		avg, reads, _, err := runSKWorkload(sys, kind, ws)
		if err != nil {
			return nil, err
		}
		loaded := float64(records(kind)-before) / float64(len(ws))
		label := map[harness.IndexKind]string{
			harness.KindC1:  "C1 objects-in-network",
			harness.KindIF:  "C2 inverted file",
			harness.KindSIF: "C3 signature + inverted",
		}[kind]
		r.addRow(label, f1(loaded), f1(reads), ms(avg))
		r.series("io/"+string(kind)).Append(0, reads)
		r.series("records/"+string(kind)).Append(0, loaded)
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}
