package experiments

import (
	"context"

	"fmt"

	"dsks/internal/dataset"
	"dsks/internal/harness"
	"dsks/internal/sig"
	"dsks/internal/storage"
)

// fineIndexKinds drops IR, as the paper does after Figure 6.
var fineIndexKinds = []harness.IndexKind{harness.KindIF, harness.KindSIF, harness.KindSIFP}

// Fig7 reproduces Figure 7: the effect of the number of query keywords l
// (1–4) on the NA dataset — response time and disk accesses for IF, SIF
// and SIF-P.
func Fig7(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Figure 7: effect of the number of query keywords (NA)",
		"l", "index", "query ms", "disk accesses")
	ds, err := dataset.GeneratePreset(dataset.PresetNA, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sys, err := harness.Build(ds, fineIndexKinds, harness.Options{IOLatency: cfg.IOLatency})
	if err != nil {
		return nil, err
	}
	for l := 1; l <= 4; l++ {
		ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
			NumQueries: cfg.Queries, Keywords: l, Seed: cfg.Seed + int64(l)*77,
		})
		if err != nil {
			return nil, err
		}
		for _, kind := range fineIndexKinds {
			avg, reads, _, err := runSKWorkload(sys, kind, ws)
			if err != nil {
				return nil, err
			}
			r.addRow(fmt.Sprintf("%d", l), string(kind), ms(avg), f1(reads))
			r.series("time/"+string(kind)).Append(float64(l), msf(avg))
			r.series("io/"+string(kind)).Append(float64(l), reads)
		}
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}

// fig8Ranges is the δmax sweep of Figure 8.
var fig8Ranges = []float64{250, 500, 1000, 1500}

// Fig8 reproduces Figure 8: the effect of the search range δmax — (a)
// response time on NA for IF/SIF/SIF-P, (b) candidate counts on all four
// datasets.
func Fig8(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Figure 8: effect of the search range (δmax)",
		"δmax", "series", "value")
	// (a) response time on NA.
	ds, err := dataset.GeneratePreset(dataset.PresetNA, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sys, err := harness.Build(ds, fineIndexKinds, harness.Options{IOLatency: cfg.IOLatency})
	if err != nil {
		return nil, err
	}
	for _, dm := range fig8Ranges {
		ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
			NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 31,
		})
		if err != nil {
			return nil, err
		}
		for i := range ws {
			ws[i].DeltaMax = dm
		}
		for _, kind := range fineIndexKinds {
			avg, reads, _, err := runSKWorkload(sys, kind, ws)
			if err != nil {
				return nil, err
			}
			r.addRow(f1(dm), "time ms "+string(kind), ms(avg))
			r.series("time/"+string(kind)).Append(dm, msf(avg))
			r.series("io/"+string(kind)).Append(dm, reads)
		}
	}
	// (b) candidate counts on the four datasets (SIF).
	for _, p := range allPresets {
		dsb, err := dataset.GeneratePreset(p, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sysb, err := harness.Build(dsb, []harness.IndexKind{harness.KindSIF}, harness.Options{})
		if err != nil {
			return nil, err
		}
		for _, dm := range fig8Ranges {
			ws, err := dataset.GenerateWorkload(dsb.Objects, dsb.VocabSize, dataset.WorkloadConfig{
				NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 32,
			})
			if err != nil {
				return nil, err
			}
			for i := range ws {
				ws[i].DeltaMax = dm
			}
			_, _, cands, err := runSKWorkload(sysb, harness.KindSIF, ws)
			if err != nil {
				return nil, err
			}
			r.addRow(f1(dm), "candidates "+string(p), f1(cands))
			r.series("cand/"+string(p)).Append(dm, cands)
		}
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}

// fig9Cuts is the cut budget sweep of Figure 9.
var fig9Cuts = []int{2, 4, 8, 16, 32}

// Fig9 reproduces Figure 9: space cost-effectiveness on SF — the number of
// false hits of SIF-P as the maximal cut budget grows, against SIF (no
// partitioning) and the group-based SIF-G given ten times SIF-P's
// signature space.
func Fig9(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Figure 9: space cost-effectiveness (SF)",
		"max cuts", "index", "false hits", "sig/extra MB")
	ds, err := dataset.GeneratePreset(dataset.PresetSF, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 5,
	})
	if err != nil {
		return nil, err
	}

	// Baseline: plain SIF false hits (constant across the sweep).
	base, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{})
	if err != nil {
		return nil, err
	}
	baseHits, err := falseHits(base, harness.KindSIF, base.SIF, ws)
	if err != nil {
		return nil, err
	}

	for _, cuts := range fig9Cuts {
		sysP, err := harness.Build(ds, []harness.IndexKind{harness.KindSIFP}, harness.Options{
			SIFPCuts: cuts,
		})
		if err != nil {
			return nil, err
		}
		pHits, err := falseHits(sysP, harness.KindSIFP, sysP.SIFP, ws)
		if err != nil {
			return nil, err
		}
		sigBytes := sysP.SIFP.SignatureBytes()
		r.addRow(fmt.Sprintf("%d", cuts), "SIF-P", i64(pHits), mb(sigBytes))
		r.series("SIF-P").Append(float64(cuts), float64(pHits))

		// SIF-G sized at ~10x the SIF-P signature budget.
		grpSys, extra, gHits, err := buildGroupAtBudget(ds, ws, 10*sigBytes)
		if err != nil {
			return nil, err
		}
		_ = grpSys
		r.addRow(fmt.Sprintf("%d", cuts), "SIF-G", i64(gHits), mb(extra))
		r.series("SIF-G").Append(float64(cuts), float64(gHits))

		r.addRow(fmt.Sprintf("%d", cuts), "SIF", i64(baseHits), "0")
		r.series("SIF").Append(float64(cuts), float64(baseHits))
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}

// falseHits replays the workload and returns the index's false-hit count.
func falseHits(sys *harness.System, kind harness.IndexKind, counted interface {
	Counters() sig.Counters
	ResetCounters()
}, ws []dataset.Query) (int64, error) {
	counted.ResetCounters()
	if err := sys.ResetIO(); err != nil {
		return 0, err
	}
	for _, wq := range ws {
		if _, err := sys.RunSK(context.Background(), kind, harness.SKQueryOf(wq)); err != nil {
			return 0, err
		}
	}
	return counted.Counters().FalseHits, nil
}

// buildGroupAtBudget grows SIF-G's top-x until its pairwise inverted lists
// consume at least the given space budget, then measures its false hits.
func buildGroupAtBudget(ds *dataset.Dataset, ws []dataset.Query, budget int64) (*harness.System, int64, int64, error) {
	if budget < int64(storage.PageSize) {
		budget = storage.PageSize
	}
	for topX := 8; ; topX *= 2 {
		sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIFG}, harness.Options{
			GroupTopX: topX,
		})
		if err != nil {
			return nil, 0, 0, err
		}
		extra := sys.Group.ExtraSizeBytes()
		if extra >= budget || topX >= 4096 {
			hits, err := falseHits(sys, harness.KindSIFG, sys.Group, ws)
			if err != nil {
				return nil, 0, 0, err
			}
			return sys, extra, hits, nil
		}
	}
}

// Fig10 reproduces Figure 10: sensitivity of SIF-P to the query log used
// at construction — SIF vs SIF-P-Rand vs SIF-P-Freq vs SIF-P-Real on the
// NA and TW analogues.
func Fig10(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Figure 10: effect of the query log (NA, TW)",
		"dataset", "index", "query ms", "disk accesses")
	for _, p := range []dataset.Preset{dataset.PresetNA, dataset.PresetTW} {
		ds, err := dataset.GeneratePreset(p, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
			NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 17,
		})
		if err != nil {
			return nil, err
		}
		variants := []struct {
			name string
			kind harness.IndexKind
			opts harness.Options
		}{
			{"SIF", harness.KindSIF, harness.Options{}},
			{"SIF-P-Rand", harness.KindSIFP, harness.Options{SIFPLog: &sig.RandLog{L: 3, N: 16, Seed: 5}}},
			{"SIF-P-Freq", harness.KindSIFP, harness.Options{SIFPLog: &sig.FreqLog{L: 3, N: 16, Seed: 5}}},
			{"SIF-P-Real", harness.KindSIFP, harness.Options{SIFPLog: sig.NewRealLog(harness.TermsOf(ws))}},
		}
		for _, v := range variants {
			v.opts.IOLatency = cfg.IOLatency
			sys, err := harness.Build(ds, []harness.IndexKind{v.kind}, v.opts)
			if err != nil {
				return nil, err
			}
			avg, reads, _, err := runSKWorkload(sys, v.kind, ws)
			if err != nil {
				return nil, err
			}
			r.addRow(string(p), v.name, ms(avg), f1(reads))
			r.series(fmt.Sprintf("%s/%s", p, v.name)).Append(0, reads)
			r.series("time/"+v.name).Append(0, msf(avg))
		}
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}
