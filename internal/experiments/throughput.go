package experiments

import (
	"context"

	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dsks/internal/dataset"
	"dsks/internal/harness"
)

// ExtraThroughput is an additional experiment beyond the paper's figures:
// query throughput under concurrency. The buffer pools serialize page
// access internally; on a multi-core host the speedup column shows how far
// short of linear the shared-buffer design falls, and on a single core a
// flat curve certifies that the added goroutines cost (almost) nothing in
// contention overhead.
func ExtraThroughput(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Extra: concurrent query throughput (NA, SIF)",
		"workers", "queries/sec", "speedup")
	ds, err := dataset.GeneratePreset(dataset.PresetNA, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{
		IOLatency: cfg.IOLatency,
	})
	if err != nil {
		return nil, err
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 91,
	})
	if err != nil {
		return nil, err
	}
	// Warm up once so every worker sees comparable buffer state.
	for _, wq := range ws {
		if _, err := sys.RunSK(context.Background(), harness.KindSIF, harness.SKQueryOf(wq)); err != nil {
			return nil, err
		}
	}

	const duration = 300 * time.Millisecond
	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		var done atomic.Int64
		var firstErr atomic.Value
		//lint:ignore detrand wall-clock deadline for the measurement window, not a data source
		stop := time.Now().Add(duration)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				//lint:ignore detrand wall-clock check against the measurement deadline, not a data source
				for i := w; time.Now().Before(stop); i++ {
					wq := ws[i%len(ws)]
					if _, err := sys.RunSK(context.Background(), harness.KindSIF, harness.SKQueryOf(wq)); err != nil {
						firstErr.Store(err)
						return
					}
					done.Add(1)
				}
			}(w)
		}
		wg.Wait()
		if err, ok := firstErr.Load().(error); ok && err != nil {
			return nil, err
		}
		qps := float64(done.Load()) / duration.Seconds()
		if workers == 1 {
			base = qps
		}
		speedup := 0.0
		if base > 0 {
			speedup = qps / base
		}
		r.addRow(fmt.Sprintf("%d", workers), f1(qps), fmt.Sprintf("%.2fx", speedup))
		r.series("qps").Append(float64(workers), qps)
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}
