package experiments

import (
	"context"

	"fmt"
	"math"
	"math/rand"

	"dsks/internal/core"
	"dsks/internal/dataset"
	"dsks/internal/harness"
)

// ExtraQuality is an additional experiment beyond the paper's figures: the
// effectiveness of diversification. For each query, four strategies pick k
// objects from the qualifying candidates — the k nearest (no diversity), a
// random k, and the 2-approximate greedy as run by SEQ and COM — and the
// experiment reports the average objective value f(S) and the average
// closest-pair network distance of the chosen sets. The greedy strategies
// must dominate f(S), and their result sets must spread much further than
// the nearest-k (the paper's Example 1, quantified).
func ExtraQuality(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Extra: diversification effectiveness (NA, k = 6, λ = 0.35)",
		"strategy", "avg f(S)", "avg closest pair dist", "queries")
	ds, err := dataset.GeneratePreset(dataset.PresetNA, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{})
	if err != nil {
		return nil, err
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 89,
	})
	if err != nil {
		return nil, err
	}
	const k = 6
	const lambda = 0.35
	g := ds.Graph

	type agg struct {
		f, minPair float64
		n          int
	}
	results := map[string]*agg{}
	add := func(name string, params core.DivParams, q dataset.Query, chosen []core.Candidate) {
		if len(chosen) < 2 {
			return
		}
		a := results[name]
		if a == nil {
			a = &agg{}
			results[name] = a
		}
		f := 0.0
		minPair := math.Inf(1)
		for i := range chosen {
			for j := i + 1; j < len(chosen); j++ {
				d := g.NetworkDist(chosen[i].Ref.Pos(), chosen[j].Ref.Pos())
				f += params.ThetaFromDists(chosen[i].Dist, chosen[j].Dist, d)
				if d < minPair {
					minPair = d
				}
			}
		}
		a.f += f
		a.minPair += minPair
		a.n++
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 97))
	for _, wq := range ws {
		params := core.DivParams{K: k, Lambda: lambda, DeltaMax: wq.DeltaMax}
		sk, err := sys.RunSK(context.Background(), harness.KindSIF, harness.SKQueryOf(wq))
		if err != nil {
			return nil, err
		}
		cands := sk.Candidates
		if len(cands) < k {
			continue
		}
		// Nearest-k: the plain boolean result truncated.
		add("nearest-k", params, wq, cands[:k])
		// Random-k.
		perm := rng.Perm(len(cands))
		randK := make([]core.Candidate, k)
		for i := 0; i < k; i++ {
			randK[i] = cands[perm[i]]
		}
		add("random-k", params, wq, randK)
		// The two diversified algorithms.
		for _, algo := range divAlgos {
			res, err := sys.RunDiv(context.Background(), harness.KindSIF, algo, harness.DivQueryOf(wq, k, lambda))
			if err != nil {
				return nil, err
			}
			add(string(algo), params, wq, res.Div.Objects)
		}
	}
	for _, name := range []string{"nearest-k", "random-k", "SEQ", "COM"} {
		a := results[name]
		if a == nil || a.n == 0 {
			continue
		}
		r.addRow(name, fmt.Sprintf("%.3f", a.f/float64(a.n)), f1(a.minPair/float64(a.n)), i64(int64(a.n)))
		r.series("f/"+name).Append(0, a.f/float64(a.n))
		r.series("minpair/"+name).Append(0, a.minPair/float64(a.n))
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}
