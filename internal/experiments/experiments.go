// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) over the synthetic dataset analogues: the index
// comparison figures (6–10) and the diversified search figures (11–16),
// plus the Table 2 statistics. Each driver returns both a printable table
// and named numeric series so tests and benches can assert the paper's
// qualitative shape (who wins, by what factor, where trends bend).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Config controls the scale and workload of an experiment run.
type Config struct {
	// Scale divides the paper-scale dataset sizes (see dataset.GeneratePreset).
	// Larger is smaller/faster. Zero defaults to 400 (seconds-scale runs);
	// cmd/expts defaults to 100 for closer-to-paper behaviour.
	Scale int
	// Queries is the workload size (paper: 500). Zero defaults to 40.
	Queries int
	// Seed drives the dataset and workload generation.
	Seed int64
	// IOLatency injects a per-miss disk latency so that response times are
	// I/O-dominated like the paper's testbed. Zero disables.
	IOLatency time.Duration
	// Out receives the printed tables; nil discards them.
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 400
	}
	if c.Queries <= 0 {
		c.Queries = 40
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table in aligned columns.
func (t *Table) Fprint(w io.Writer) {
	if w == nil {
		return
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named line of a figure: parallel X/Y values.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Mean returns the average Y value (0 for empty series).
func (s *Series) Mean() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	total := 0.0
	for _, y := range s.Y {
		total += y
	}
	return total / float64(len(s.Y))
}

// Result bundles the printable table with the numeric series of a figure.
type Result struct {
	Table  *Table
	Series map[string]*Series
}

func newResult(title string, header ...string) *Result {
	return &Result{
		Table:  &Table{Title: title, Header: header},
		Series: make(map[string]*Series),
	}
}

func (r *Result) series(name string) *Series {
	s, ok := r.Series[name]
	if !ok {
		s = &Series{Name: name}
		r.Series[name] = s
	}
	return s
}

func (r *Result) addRow(cells ...string) { r.Table.Rows = append(r.Table.Rows, cells) }

func ms(d time.Duration) string   { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }
func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
func mb(bytes int64) string       { return fmt.Sprintf("%.2f", float64(bytes)/(1<<20)) }
func f1(v float64) string         { return fmt.Sprintf("%.1f", v) }
func i64(v int64) string          { return fmt.Sprintf("%d", v) }

// sparkLevels are the eight block glyphs of a unicode sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders the series' Y values as a unicode sparkline, scaled to the
// series' own min/max (a flat series renders as mid-level blocks).
func (s *Series) Spark() string {
	if len(s.Y) == 0 {
		return ""
	}
	lo, hi := s.Y[0], s.Y[0]
	for _, y := range s.Y {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	out := make([]rune, len(s.Y))
	for i, y := range s.Y {
		level := len(sparkLevels) / 2
		if hi > lo {
			level = int((y - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		out[i] = sparkLevels[level]
	}
	return string(out)
}

// FprintSparks prints one sparkline per multi-point series, sorted by
// name, for quick trend reading in terminals.
func (r *Result) FprintSparks(w io.Writer) {
	if w == nil {
		return
	}
	names := make([]string, 0, len(r.Series))
	for n, s := range r.Series {
		if len(s.Y) >= 2 {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range names {
		s := r.Series[n]
		fmt.Fprintf(w, "  %s  %s  (%.3g → %.3g)\n", pad(n, width), s.Spark(), s.Y[0], s.Y[len(s.Y)-1])
	}
	fmt.Fprintln(w)
}
