package experiments

import (
	"context"

	"fmt"
	"time"

	"dsks/internal/dataset"
	"dsks/internal/harness"
)

// divAlgos is the algorithm order of Figures 11–16.
var divAlgos = []harness.DivAlgo{harness.AlgoSEQ, harness.AlgoCOM}

// runDivWorkload executes the diversified workload and returns average
// response time, disk reads and candidates.
func runDivWorkload(sys *harness.System, ws []dataset.Query, k int, lambda float64, algo harness.DivAlgo) (time.Duration, float64, float64, error) {
	if err := sys.ResetIO(); err != nil {
		return 0, 0, 0, err
	}
	var total time.Duration
	var reads, cands int64
	for _, wq := range ws {
		res, err := sys.RunDiv(context.Background(), harness.KindSIF, algo, harness.DivQueryOf(wq, k, lambda))
		if err != nil {
			return 0, 0, 0, err
		}
		total += res.Elapsed
		reads += res.DiskReads
		cands += res.Stats.Candidates
	}
	n := float64(len(ws))
	return total / time.Duration(len(ws)), float64(reads) / n, float64(cands) / n, nil
}

// divSweep runs SEQ and COM over a parameter sweep, recording time and
// candidate series under "<algo>" and "cand/<algo>".
func divSweep(cfg Config, r *Result, sys *harness.System, label string,
	points []float64, wsAt func(x float64) ([]dataset.Query, int, float64, error)) error {
	for _, x := range points {
		ws, k, lambda, err := wsAt(x)
		if err != nil {
			return err
		}
		for _, algo := range divAlgos {
			avg, reads, cands, err := runDivWorkload(sys, ws, k, lambda, algo)
			if err != nil {
				return err
			}
			r.addRow(fmt.Sprintf("%v", x), string(algo), ms(avg), f1(reads), f1(cands))
			r.series(string(algo)).Append(x, msf(avg))
			r.series("io/"+string(algo)).Append(x, reads)
			r.series("cand/"+string(algo)).Append(x, cands)
		}
	}
	_ = label
	r.Table.Fprint(cfg.Out)
	return nil
}

// Fig11 reproduces Figure 11: the diversified SK search on the four
// datasets — SEQ vs COM at the defaults (l = 3, k = 10, λ = 0.8).
func Fig11(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Figure 11: diversified SK search on different datasets",
		"dataset", "algo", "query ms", "disk accesses", "candidates")
	for _, p := range allPresets {
		sys, ws, err := buildSystem(cfg, p, []harness.IndexKind{harness.KindSIF}, harness.Options{})
		if err != nil {
			return nil, err
		}
		for _, algo := range divAlgos {
			avg, reads, cands, err := runDivWorkload(sys, ws, 10, 0.8, algo)
			if err != nil {
				return nil, err
			}
			r.addRow(string(p), string(algo), ms(avg), f1(reads), f1(cands))
			r.series(string(algo)).Append(0, msf(avg))
			r.series(fmt.Sprintf("%s/%s", p, algo)).Append(0, msf(avg))
		}
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}

// Fig12 reproduces Figure 12: diversified search varying the number of
// query keywords l (δmax = 500·l, as in the paper's setting).
func Fig12(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Figure 12: diversified search varying l (NA)",
		"l", "algo", "query ms", "disk accesses", "candidates")
	ds, err := dataset.GeneratePreset(dataset.PresetNA, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{IOLatency: cfg.IOLatency})
	if err != nil {
		return nil, err
	}
	err = divSweep(cfg, r, sys, "l", []float64{1, 2, 3, 4}, func(x float64) ([]dataset.Query, int, float64, error) {
		ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
			NumQueries: cfg.Queries, Keywords: int(x), Seed: cfg.Seed + int64(x)*13,
		})
		return ws, 10, 0.8, err
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Fig13 reproduces Figure 13: diversified search varying the search range.
func Fig13(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Figure 13: diversified search varying δmax (NA)",
		"δmax", "algo", "query ms", "disk accesses", "candidates")
	ds, err := dataset.GeneratePreset(dataset.PresetNA, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{IOLatency: cfg.IOLatency})
	if err != nil {
		return nil, err
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 41,
	})
	if err != nil {
		return nil, err
	}
	err = divSweep(cfg, r, sys, "δmax", fig8Ranges, func(x float64) ([]dataset.Query, int, float64, error) {
		cp := make([]dataset.Query, len(ws))
		copy(cp, ws)
		for i := range cp {
			cp[i].DeltaMax = x
		}
		return cp, 10, 0.8, nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Fig14 reproduces Figure 14: diversified search varying k (5–20).
func Fig14(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Figure 14: diversified search varying k (NA)",
		"k", "algo", "query ms", "disk accesses", "candidates")
	ds, err := dataset.GeneratePreset(dataset.PresetNA, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{IOLatency: cfg.IOLatency})
	if err != nil {
		return nil, err
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 43,
	})
	if err != nil {
		return nil, err
	}
	err = divSweep(cfg, r, sys, "k", []float64{5, 10, 15, 20}, func(x float64) ([]dataset.Query, int, float64, error) {
		return ws, int(x), 0.8, nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Fig15 reproduces Figure 15: diversified search varying λ (0.5–0.9).
func Fig15(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Figure 15: diversified search varying λ (NA)",
		"λ", "algo", "query ms", "disk accesses", "candidates")
	ds, err := dataset.GeneratePreset(dataset.PresetNA, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{IOLatency: cfg.IOLatency})
	if err != nil {
		return nil, err
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 47,
	})
	if err != nil {
		return nil, err
	}
	err = divSweep(cfg, r, sys, "λ", []float64{0.5, 0.6, 0.7, 0.8, 0.9}, func(x float64) ([]dataset.Query, int, float64, error) {
		return ws, 10, x, nil
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// fig16Variant builds a SYN dataset with one knob changed and measures
// SEQ and COM.
func fig16Variant(cfg Config, r *Result, x float64, objCfg dataset.ObjectConfig, netNodes int) error {
	g, err := dataset.GenerateNetwork(dataset.NetworkConfig{
		Nodes: netNodes, EdgeFactor: 2.2, Jitter: 0.3, Seed: cfg.Seed,
	})
	if err != nil {
		return err
	}
	col, err := dataset.GenerateObjects(g, objCfg)
	if err != nil {
		return err
	}
	ds := &dataset.Dataset{
		Name: "SYN", Graph: g, Objects: col,
		VocabSize: objCfg.VocabSize, ZipfS: objCfg.ZipfS, ScaleDenom: cfg.Scale,
	}
	sys, err := harness.Build(ds, []harness.IndexKind{harness.KindSIF}, harness.Options{IOLatency: cfg.IOLatency})
	if err != nil {
		return err
	}
	ws, err := dataset.GenerateWorkload(col, objCfg.VocabSize, dataset.WorkloadConfig{
		NumQueries: cfg.Queries, Keywords: 3, Seed: cfg.Seed + 53,
	})
	if err != nil {
		return err
	}
	for _, algo := range divAlgos {
		avg, reads, cands, err := runDivWorkload(sys, ws, 10, 0.8, algo)
		if err != nil {
			return err
		}
		r.addRow(fmt.Sprintf("%v", x), string(algo), ms(avg), f1(reads), f1(cands))
		r.series(string(algo)).Append(x, msf(avg))
		r.series("cand/"+string(algo)).Append(x, cands)
	}
	return nil
}

// fig16Base returns the default SYN object configuration at the config's
// scale.
func fig16Base(cfg Config) (dataset.ObjectConfig, int) {
	objects := 1_000_000 / cfg.Scale
	if objects < 500 {
		objects = 500
	}
	vocab := 100_000 / cfg.Scale
	if vocab < 200 {
		vocab = 200
	}
	nodes := 17_000 / cfg.Scale
	if nodes < 64 {
		nodes = 64
	}
	return dataset.ObjectConfig{
		NumObjects:        objects,
		VocabSize:         vocab,
		KeywordsPerObject: 15,
		ZipfS:             1.1,
		Seed:              cfg.Seed + 2,
	}, nodes
}

// Fig16a reproduces Figure 16(a): term-frequency skew z from 0.9 to 1.3.
func Fig16a(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Figure 16a: varying Zipf skew z (SYN)",
		"z", "algo", "query ms", "disk accesses", "candidates")
	base, nodes := fig16Base(cfg)
	for _, z := range []float64{0.9, 1.0, 1.1, 1.2, 1.3} {
		oc := base
		oc.ZipfS = z
		if err := fig16Variant(cfg, r, z, oc, nodes); err != nil {
			return nil, err
		}
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}

// Fig16b reproduces Figure 16(b): object count from 0.5M to 2M (scaled).
func Fig16b(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Figure 16b: varying the number of objects (SYN)",
		"n_o (paper-scale M)", "algo", "query ms", "disk accesses", "candidates")
	base, nodes := fig16Base(cfg)
	for _, m := range []float64{0.5, 1.0, 1.5, 2.0} {
		oc := base
		oc.NumObjects = int(m * 1_000_000 / float64(cfg.Scale))
		if oc.NumObjects < 250 {
			oc.NumObjects = 250
		}
		if err := fig16Variant(cfg, r, m, oc, nodes); err != nil {
			return nil, err
		}
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}

// Fig16c reproduces Figure 16(c): keywords per object.
func Fig16c(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Figure 16c: varying keywords per object (SYN)",
		"n_k", "algo", "query ms", "disk accesses", "candidates")
	base, nodes := fig16Base(cfg)
	for _, nk := range []float64{5, 10, 15, 20, 25} {
		oc := base
		oc.KeywordsPerObject = int(nk)
		if err := fig16Variant(cfg, r, nk, oc, nodes); err != nil {
			return nil, err
		}
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}

// Fig16d reproduces Figure 16(d): vocabulary size from 20K to 100K (scaled).
func Fig16d(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Figure 16d: varying the vocabulary size (SYN)",
		"|V| (paper-scale K)", "algo", "query ms", "disk accesses", "candidates")
	base, nodes := fig16Base(cfg)
	for _, v := range []float64{20, 40, 60, 80, 100} {
		oc := base
		oc.VocabSize = int(v * 1000 / float64(cfg.Scale))
		if oc.VocabSize < 100 {
			oc.VocabSize = 100
		}
		if err := fig16Variant(cfg, r, v, oc, nodes); err != nil {
			return nil, err
		}
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}

// Table2 prints the Table 2 statistics of the generated dataset analogues.
func Table2(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Table 2: dataset statistics (scaled analogues)",
		"property", "SYN", "NA", "TW", "SF")
	order := []dataset.Preset{dataset.PresetSYN, dataset.PresetNA, dataset.PresetTW, dataset.PresetSF}
	stats := make([]dataset.Stats, len(order))
	for i, p := range order {
		ds, err := dataset.GeneratePreset(p, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		stats[i] = ds.Stats()
		r.series("objects/"+string(p)).Append(0, float64(stats[i].Objects))
		r.series("edges/"+string(p)).Append(0, float64(stats[i].Edges))
	}
	row := func(name string, get func(dataset.Stats) string) {
		cells := []string{name}
		for _, st := range stats {
			cells = append(cells, get(st))
		}
		r.addRow(cells...)
	}
	row("# objects", func(s dataset.Stats) string { return fmt.Sprintf("%d", s.Objects) })
	row("vocabulary size", func(s dataset.Stats) string { return fmt.Sprintf("%d", s.VocabSize) })
	row("avg # keywords", func(s dataset.Stats) string { return f1(s.AvgKeywords) })
	row("# nodes", func(s dataset.Stats) string { return fmt.Sprintf("%d", s.Nodes) })
	row("# edges", func(s dataset.Stats) string { return fmt.Sprintf("%d", s.Edges) })
	r.Table.Fprint(cfg.Out)
	return r, nil
}
