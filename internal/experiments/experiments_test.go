package experiments

import (
	"strings"
	"testing"
)

// testCfg keeps shape tests fast; the trends asserted here are the
// paper's headline claims, which must hold even at small scale.
func testCfg() Config {
	return Config{Scale: 800, Queries: 25, Seed: 3}
}

func TestTablePrinting(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xxxxx", "y"}},
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "xxxxx") {
		t.Errorf("printed table missing content:\n%s", out)
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := &Series{Name: "x"}
	if s.Mean() != 0 {
		t.Error("empty mean")
	}
	s.Append(1, 2)
	s.Append(2, 4)
	if s.Mean() != 3 {
		t.Errorf("Mean = %v", s.Mean())
	}
}

func TestTable2Shape(t *testing.T) {
	r, err := Table2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 5 {
		t.Fatalf("Table 2 has %d rows", len(r.Table.Rows))
	}
	// TW must be the largest object set, as in the paper.
	tw := r.Series["objects/TW"].Mean()
	for _, other := range []string{"objects/SYN", "objects/NA", "objects/SF"} {
		if r.Series[other].Mean() >= tw {
			t.Errorf("TW should have the most objects; %s = %v vs %v", other, r.Series[other].Mean(), tw)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// IR is the slowest index structure on average (paper: ~4x slower).
	ir := r.Series["time/IR"].Mean()
	ifx := r.Series["time/IF"].Mean()
	sif := r.Series["time/SIF"].Mean()
	if ir <= ifx {
		t.Errorf("IR (%v ms) should be slower than IF (%v ms)", ir, ifx)
	}
	if ir <= sif {
		t.Errorf("IR (%v ms) should be slower than SIF (%v ms)", ir, sif)
	}
	// Signatures add little space over the inverted file.
	ifSize := r.Series["size/IF"].Mean()
	sifSize := r.Series["size/SIF"].Mean()
	if sifSize > 1.5*ifSize {
		t.Errorf("SIF size %v far exceeds IF size %v", sifSize, ifSize)
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// I/O grows with l for IF, and SIF does fewer disk accesses than IF.
	ifIO := r.Series["io/IF"]
	sifIO := r.Series["io/SIF"]
	if ifIO.Y[len(ifIO.Y)-1] <= ifIO.Y[0] {
		t.Errorf("IF I/O did not grow with l: %v", ifIO.Y)
	}
	// SIF never exceeds IF; at tiny scales the rarest-first probe order
	// already short-circuits most misses, so equality is possible.
	if sifIO.Mean() > ifIO.Mean()+1e-9 {
		t.Errorf("SIF mean I/O %v above IF %v", sifIO.Mean(), ifIO.Mean())
	}
	// SIF-P never does more I/O than SIF.
	sifpIO := r.Series["io/SIF-P"]
	for i := range sifpIO.Y {
		if sifpIO.Y[i] > sifIO.Y[i]+1e-9 {
			t.Errorf("SIF-P I/O %v above SIF %v at l=%v", sifpIO.Y[i], sifIO.Y[i], sifpIO.X[i])
		}
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Candidates increase with δmax on every dataset.
	for _, p := range []string{"NA", "SF", "SYN", "TW"} {
		s := r.Series["cand/"+p]
		if len(s.Y) == 0 {
			t.Fatalf("no candidate series for %s", p)
		}
		if s.Y[len(s.Y)-1] < s.Y[0] {
			t.Errorf("%s candidates shrink with δmax: %v", p, s.Y)
		}
	}
	// IF is more sensitive to δmax than SIF: more false-hit I/O as the
	// range grows. At test scale wall-time is noise, so assert on the
	// deterministic disk-access counts.
	ifIO := r.Series["io/IF"]
	sifIO := r.Series["io/SIF"]
	if ifIO.Y[len(ifIO.Y)-1] <= ifIO.Y[0] {
		t.Errorf("IF I/O did not grow with range: %v", ifIO.Y)
	}
	if sifIO.Mean() > ifIO.Mean() {
		t.Errorf("SIF mean I/O %v above IF %v", sifIO.Mean(), ifIO.Mean())
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	sifp := r.Series["SIF-P"]
	sif := r.Series["SIF"]
	// SIF-P false hits never exceed plain SIF's.
	for i := range sifp.Y {
		if sifp.Y[i] > sif.Y[i]+1e-9 {
			t.Errorf("SIF-P false hits %v above SIF %v at cuts=%v", sifp.Y[i], sif.Y[i], sifp.X[i])
		}
	}
	// More cuts never hurt: last point <= first point.
	if sifp.Y[len(sifp.Y)-1] > sifp.Y[0]+1e-9 {
		t.Errorf("false hits grew with cut budget: %v", sifp.Y)
	}
}

func TestFig10Shape(t *testing.T) {
	r, err := Fig10(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"NA", "TW"} {
		real := r.Series[p+"/SIF-P-Real"].Mean()
		sif := r.Series[p+"/SIF"].Mean()
		// The real-log SIF-P must beat plain SIF on disk accesses.
		if real > sif+1e-9 {
			t.Errorf("%s: SIF-P-Real I/O %v above SIF %v", p, real, sif)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	r, err := Fig11(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// COM must not be slower than SEQ on aggregate (the paper's headline).
	seq := r.Series["SEQ"].Mean()
	com := r.Series["COM"].Mean()
	if com > seq*1.5 {
		t.Errorf("COM mean %v ms far above SEQ %v ms", com, seq)
	}
}

func TestFig14Shape(t *testing.T) {
	r, err := Fig14(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// SEQ's candidate count is insensitive to k (it always retrieves
	// everything).
	seqCand := r.Series["cand/SEQ"]
	for i := 1; i < len(seqCand.Y); i++ {
		if seqCand.Y[i] != seqCand.Y[0] {
			t.Errorf("SEQ candidates vary with k: %v", seqCand.Y)
			break
		}
	}
	// COM never sees more candidates than SEQ.
	comCand := r.Series["cand/COM"]
	for i := range comCand.Y {
		if comCand.Y[i] > seqCand.Y[i]+1e-9 {
			t.Errorf("COM candidates %v above SEQ %v at k=%v", comCand.Y[i], seqCand.Y[i], comCand.X[i])
		}
	}
}

func TestFig15Shape(t *testing.T) {
	r, err := Fig15(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Larger λ means earlier termination: COM's candidate count at
	// λ=0.9 must not exceed that at λ=0.5.
	com := r.Series["cand/COM"]
	if com.Y[len(com.Y)-1] > com.Y[0]+1e-9 {
		t.Errorf("COM candidates grew with λ: %v", com.Y)
	}
}

func TestFig16aShape(t *testing.T) {
	r, err := Fig16a(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Candidate counts (and so work) grow with the skew z.
	seq := r.Series["cand/SEQ"]
	if seq.Y[len(seq.Y)-1] < seq.Y[0] {
		t.Logf("warning: candidates did not grow with z: %v (small-scale noise)", seq.Y)
	}
}

func TestFig16bShape(t *testing.T) {
	r, err := Fig16b(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	seq := r.Series["cand/SEQ"]
	if seq.Y[len(seq.Y)-1] <= seq.Y[0] {
		t.Errorf("candidates did not grow with object count: %v", seq.Y)
	}
}

func TestFig12Shape(t *testing.T) {
	r, err := Fig12(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// COM never sees more candidates than SEQ at any l.
	seq, com := r.Series["cand/SEQ"], r.Series["cand/COM"]
	for i := range com.Y {
		if com.Y[i] > seq.Y[i]+1e-9 {
			t.Errorf("COM candidates %v above SEQ %v at l=%v", com.Y[i], seq.Y[i], com.X[i])
		}
	}
	// SEQ's I/O grows with l (δmax = 500·l enlarges the region).
	io := r.Series["io/SEQ"]
	if io.Y[len(io.Y)-1] <= io.Y[0] {
		t.Errorf("SEQ I/O did not grow with l: %v", io.Y)
	}
}

func TestFig13Shape(t *testing.T) {
	r, err := Fig13(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Candidate counts grow with the range for SEQ.
	seq := r.Series["cand/SEQ"]
	if seq.Y[len(seq.Y)-1] <= seq.Y[0] {
		t.Errorf("SEQ candidates did not grow with δmax: %v", seq.Y)
	}
	com := r.Series["cand/COM"]
	for i := range com.Y {
		if com.Y[i] > seq.Y[i]+1e-9 {
			t.Errorf("COM candidates above SEQ at δmax=%v", com.X[i])
		}
	}
}

func TestFig16cShape(t *testing.T) {
	r, err := Fig16c(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	seq, com := r.Series["cand/SEQ"], r.Series["cand/COM"]
	for i := range com.Y {
		if com.Y[i] > seq.Y[i]+1e-9 {
			t.Errorf("COM candidates above SEQ at n_k=%v", com.X[i])
		}
	}
}

func TestFig16dShape(t *testing.T) {
	r, err := Fig16d(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Larger vocabularies mean fewer candidates: last <= first for SEQ.
	seq := r.Series["cand/SEQ"]
	if seq.Y[len(seq.Y)-1] > seq.Y[0]*1.5+5 {
		t.Errorf("candidates grew sharply with vocabulary: %v", seq.Y)
	}
}

func TestFig15COMCandidatesShrinkWithLambda(t *testing.T) {
	r, err := Fig15(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	seq := r.Series["cand/SEQ"]
	// SEQ is λ-insensitive by construction.
	for i := 1; i < len(seq.Y); i++ {
		if seq.Y[i] != seq.Y[0] {
			t.Errorf("SEQ candidates vary with λ: %v", seq.Y)
			break
		}
	}
}

func TestSparkRendering(t *testing.T) {
	s := &Series{Name: "x", Y: []float64{0, 1, 2, 3}}
	spark := s.Spark()
	if len([]rune(spark)) != 4 {
		t.Fatalf("spark length %d", len([]rune(spark)))
	}
	if []rune(spark)[0] != '▁' || []rune(spark)[3] != '█' {
		t.Errorf("spark scaling wrong: %q", spark)
	}
	flat := &Series{Name: "f", Y: []float64{5, 5}}
	if r := []rune(flat.Spark()); r[0] != r[1] {
		t.Errorf("flat spark uneven: %q", flat.Spark())
	}
	if (&Series{}).Spark() != "" {
		t.Error("empty spark not empty")
	}
	var sb strings.Builder
	r := &Result{Series: map[string]*Series{"a": s, "short": {Y: []float64{1}}}}
	r.FprintSparks(&sb)
	if !strings.Contains(sb.String(), "▁") || strings.Contains(sb.String(), "short") {
		t.Errorf("FprintSparks output wrong:\n%s", sb.String())
	}
}
