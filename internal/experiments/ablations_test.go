package experiments

import "testing"

func TestAblationPruningShape(t *testing.T) {
	r, err := AblationPruning(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Full COM must not see more candidates than the unpruned variant.
	full := r.Series["cand/COM (both rules)"].Mean()
	none := r.Series["cand/COM no pruning"].Mean()
	if full > none+1e-9 {
		t.Errorf("full COM saw %v candidates vs unpruned %v", full, none)
	}
	// Disabling early-stop must not reduce the candidate count below the
	// full variant's.
	noStop := r.Series["cand/COM no early-stop"].Mean()
	if noStop < full-1e-9 {
		t.Errorf("no-early-stop saw fewer candidates (%v) than full COM (%v)", noStop, full)
	}
	// The object-prune rule reduces pairwise distance computations when
	// disabled early-stop forces long streams; at minimum the unpruned
	// variant must not do fewer distance calcs than full COM.
	fullDist := r.Series["dist/COM (both rules)"].Mean()
	noneDist := r.Series["dist/COM no pruning"].Mean()
	if fullDist > noneDist+1e-9 {
		t.Errorf("full COM did more distance calcs (%v) than unpruned (%v)", fullDist, noneDist)
	}
}

func TestAblationPartitionShape(t *testing.T) {
	r, err := AblationPartition(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	greedyHits := r.Series["hits/greedy"].Mean()
	dpHits := r.Series["hits/DP (Algorithm 4)"].Mean()
	// DP is exact w.r.t. its training log: it should not lose badly to
	// the greedy on the real workload (both trained on the same model).
	if dpHits > greedyHits*1.5+5 {
		t.Errorf("DP false hits %v far above greedy %v", dpHits, greedyHits)
	}
	// And the greedy must be quality-competitive: not more than 50% above
	// DP on this workload (the paper reports similar I/O for both).
	if greedyHits > dpHits*1.5+5 {
		t.Errorf("greedy false hits %v far above DP %v", greedyHits, dpHits)
	}
}

func TestAblationDijkstraShape(t *testing.T) {
	r, err := AblationDijkstra(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	acc := r.Series["accumulated"].Mean()
	per := r.Series["per-object"].Mean()
	if per < acc {
		t.Logf("warning: per-object recomputation (%v ms) beat accumulated (%v ms) — tiny-scale noise", per, acc)
	}
}

func TestAblationCompactionShape(t *testing.T) {
	r, err := AblationCompaction(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"NA", "SF", "SYN", "TW"} {
		flat := r.Series["flat/"+p].Mean()
		compact := r.Series["compact/"+p].Mean()
		if compact > flat {
			t.Errorf("%s: compacted signatures (%v B) larger than flat bitmaps (%v B)", p, compact, flat)
		}
	}
}

func TestExtraBufferSweepShape(t *testing.T) {
	r, err := ExtraBufferSweep(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	io := r.Series["io"]
	if len(io.Y) < 2 {
		t.Fatal("sweep too short")
	}
	// A bigger buffer never costs more I/O on this read-only workload.
	if io.Y[len(io.Y)-1] > io.Y[0]+1e-9 {
		t.Errorf("disk accesses grew with the buffer: %v", io.Y)
	}
}

func TestExtraQualityShape(t *testing.T) {
	r, err := ExtraQuality(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	seq, ok1 := r.Series["f/SEQ"]
	nearest, ok2 := r.Series["f/nearest-k"]
	random, ok3 := r.Series["f/random-k"]
	if !ok1 || !ok2 || !ok3 {
		t.Skip("too few multi-candidate queries at test scale")
	}
	// The diversified greedy must beat both trivial strategies on f(S).
	if seq.Mean() < nearest.Mean()-1e-9 {
		t.Errorf("greedy f(S) %v below nearest-k %v", seq.Mean(), nearest.Mean())
	}
	if seq.Mean() < random.Mean()-1e-9 {
		t.Errorf("greedy f(S) %v below random-k %v", seq.Mean(), random.Mean())
	}
	// And spread its picks further apart than the nearest-k.
	if r.Series["minpair/SEQ"].Mean() < r.Series["minpair/nearest-k"].Mean()-1e-9 {
		t.Errorf("greedy closest-pair %v below nearest-k %v",
			r.Series["minpair/SEQ"].Mean(), r.Series["minpair/nearest-k"].Mean())
	}
	// SEQ and COM agree.
	if com := r.Series["f/COM"]; com.Mean() != seq.Mean() {
		t.Errorf("COM f %v != SEQ f %v", com.Mean(), seq.Mean())
	}
}

func TestAblationSelectivityShape(t *testing.T) {
	r, err := AblationSelectivity(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Rarest-first never does more I/O than query order, for any index.
	for _, kind := range []string{"IF", "SIF", "SIF-P"} {
		ordered := r.Series["io/"+kind+"/rarest first"].Mean()
		plain := r.Series["io/"+kind+"/query order"].Mean()
		if ordered > plain+1e-9 {
			t.Errorf("%s: rarest-first I/O %v above query-order %v", kind, ordered, plain)
		}
	}
}

func TestAblationC1Shape(t *testing.T) {
	r, err := AblationC1(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The Section 3.2 ordering holds on records loaded: C1 > C2 >= C3
	// (C1's page accesses can be low at small scale since a dozen objects
	// share a page; the analysis counts loaded records).
	c1 := r.Series["records/C1"].Mean()
	c2 := r.Series["records/IF"].Mean()
	c3 := r.Series["records/SIF"].Mean()
	if c1 <= c2 {
		t.Errorf("C1 records %v not above C2 %v", c1, c2)
	}
	if c3 > c2+1e-9 {
		t.Errorf("C3 records %v above C2 %v", c3, c2)
	}
}
