package experiments

import (
	"context"

	"fmt"
	"time"

	"dsks/internal/dataset"
	"dsks/internal/harness"
)

// allPresets is the dataset order of the paper's multi-dataset figures.
var allPresets = []dataset.Preset{dataset.PresetNA, dataset.PresetSF, dataset.PresetSYN, dataset.PresetTW}

// skIndexKinds is the index order of Figure 6 (IR is dropped from later
// figures, as in the paper).
var skIndexKinds = []harness.IndexKind{harness.KindIR, harness.KindIF, harness.KindSIF, harness.KindSIFP}

// buildSystem generates a preset dataset and builds the requested kinds.
func buildSystem(cfg Config, p dataset.Preset, kinds []harness.IndexKind, hOpts harness.Options) (*harness.System, []dataset.Query, error) {
	ds, err := dataset.GeneratePreset(p, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	hOpts.IOLatency = cfg.IOLatency
	sys, err := harness.Build(ds, kinds, hOpts)
	if err != nil {
		return nil, nil, err
	}
	ws, err := dataset.GenerateWorkload(ds.Objects, ds.VocabSize, dataset.WorkloadConfig{
		NumQueries: cfg.Queries,
		Keywords:   3,
		Seed:       cfg.Seed + 1000,
	})
	if err != nil {
		return nil, nil, err
	}
	return sys, ws, nil
}

// runSKWorkload executes the workload and returns the average response
// time, average disk reads and average candidate count.
func runSKWorkload(sys *harness.System, kind harness.IndexKind, ws []dataset.Query) (time.Duration, float64, float64, error) {
	if err := sys.ResetIO(); err != nil {
		return 0, 0, 0, err
	}
	var total time.Duration
	var reads, cands int64
	for _, wq := range ws {
		res, err := sys.RunSK(context.Background(), kind, harness.SKQueryOf(wq))
		if err != nil {
			return 0, 0, 0, err
		}
		total += res.Elapsed
		reads += res.DiskReads
		cands += int64(len(res.Candidates))
	}
	n := float64(len(ws))
	return total / time.Duration(len(ws)), float64(reads) / n, float64(cands) / n, nil
}

// Fig6 reproduces Figure 6: SK search on the four datasets — (a) average
// query response time, (b) index construction time, (c) index size — for
// IR, IF, SIF and SIF-P.
func Fig6(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := newResult("Figure 6: SK search on different datasets",
		"dataset", "index", "query ms", "build ms", "size MB")
	for _, p := range allPresets {
		sys, ws, err := buildSystem(cfg, p, skIndexKinds, harness.Options{})
		if err != nil {
			return nil, err
		}
		for _, kind := range skIndexKinds {
			avg, _, _, err := runSKWorkload(sys, kind, ws)
			if err != nil {
				return nil, err
			}
			r.addRow(string(p), string(kind), ms(avg),
				ms(sys.BuildTime[kind]), mb(sys.IndexSize[kind]))
			r.series("time/"+string(kind)).Append(0, msf(avg))
			r.series("build/"+string(kind)).Append(0, msf(sys.BuildTime[kind]))
			r.series("size/"+string(kind)).Append(0, float64(sys.IndexSize[kind]))
			r.series(fmt.Sprintf("time/%s/%s", p, kind)).Append(0, msf(avg))
		}
	}
	r.Table.Fprint(cfg.Out)
	return r, nil
}
