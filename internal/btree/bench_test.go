package btree

import (
	"math/rand"
	"testing"
)

func benchTree(b *testing.B, n int) *Tree {
	b.Helper()
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: uint64(i) * 3, Value: uint64(i)}
	}
	tr, err := BulkLoad(newPool(1024), entries)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkGet(b *testing.B) {
	tr := benchTree(b, 100_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(uint64(rng.Intn(100_000)) * 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	tr, err := New(newPool(1024))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	const n = 100_000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: uint64(i), Value: uint64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkLoad(newPool(1024), entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	tr := benchTree(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
			count++
			return true
		}); err != nil {
			b.Fatal(err)
		}
		if count != 100_000 {
			b.Fatalf("scanned %d", count)
		}
	}
}

func BenchmarkGetColdBuffer(b *testing.B) {
	// A 3-frame pool forces nearly every access to miss.
	entries := make([]Entry, 100_000)
	for i := range entries {
		entries[i] = Entry{Key: uint64(i), Value: uint64(i)}
	}
	pool := newPool(3)
	tr, err := BulkLoad(pool, entries)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(uint64(rng.Intn(100_000))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(pool.Stats().Snapshot().DiskRead)/float64(b.N), "reads/op")
}
