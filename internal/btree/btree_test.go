package btree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dsks/internal/storage"
)

func newPool(frames int) *storage.BufferPool {
	return storage.NewBufferPool(storage.NewPageFile(), frames, nil)
}

func TestEmptyTree(t *testing.T) {
	tr, err := New(newPool(8))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, err := tr.Get(42); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get on empty = %v", err)
	}
	called := false
	if err := tr.Scan(0, ^uint64(0), func(k, v uint64) bool { called = true; return true }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("Scan on empty tree produced entries")
	}
}

func TestInsertGetSmall(t *testing.T) {
	tr, err := New(newPool(16))
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{5, 1, 9, 3, 7}
	for _, k := range keys {
		if err := tr.Insert(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		v, err := tr.Get(k)
		if err != nil || v != k*10 {
			t.Errorf("Get(%d) = %d, %v", k, v, err)
		}
	}
	if _, err := tr.Get(2); !errors.Is(err, ErrNotFound) {
		t.Error("missing key found")
	}
	if err := tr.Insert(5, 0); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate insert = %v", err)
	}
	if tr.Len() != 5 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestInsertManyWithSplits(t *testing.T) {
	tr, err := New(newPool(64))
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000 // forces multiple leaf and internal splits
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(uint64(i)*3, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 {
		t.Errorf("expected splits, height = %d", tr.Height())
	}
	for i := 0; i < n; i++ {
		v, err := tr.Get(uint64(i) * 3)
		if err != nil || v != uint64(i) {
			t.Fatalf("Get(%d) = %d, %v", i*3, v, err)
		}
	}
	// Keys in between must be absent.
	for i := 0; i < 100; i++ {
		if _, err := tr.Get(uint64(i)*3 + 1); !errors.Is(err, ErrNotFound) {
			t.Fatalf("phantom key %d", i*3+1)
		}
	}
}

func TestScanOrderAndRange(t *testing.T) {
	tr, err := New(newPool(64))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	keys := map[uint64]bool{}
	for len(keys) < 2000 {
		keys[uint64(rng.Intn(1<<20))] = true
	}
	var sorted []uint64
	for k := range keys {
		sorted = append(sorted, k)
		if err := tr.Insert(k, k^0xFF); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	// Full scan yields all keys in order.
	var got []uint64
	if err := tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
		if v != k^0xFF {
			t.Fatalf("value mismatch for %d", k)
		}
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sorted) {
		t.Fatalf("scan found %d keys, want %d", len(got), len(sorted))
	}
	for i := range got {
		if got[i] != sorted[i] {
			t.Fatalf("scan order broken at %d", i)
		}
	}

	// Bounded range scan.
	lo, hi := sorted[500], sorted[700]
	count := 0
	if err := tr.Scan(lo, hi, func(k, v uint64) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 201 {
		t.Errorf("range scan found %d keys, want 201", count)
	}

	// Early termination.
	count = 0
	if err := tr.Scan(0, ^uint64(0), func(k, v uint64) bool { count++; return count < 10 }); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("early stop scanned %d", count)
	}
}

func TestBulkLoad(t *testing.T) {
	const n = 30000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: uint64(i) * 7, Value: uint64(i)}
	}
	tr, err := BulkLoad(newPool(128), entries)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < n; i += 97 {
		v, err := tr.Get(uint64(i) * 7)
		if err != nil || v != uint64(i) {
			t.Fatalf("Get(%d) = %d, %v", i*7, v, err)
		}
	}
	if _, err := tr.Get(3); !errors.Is(err, ErrNotFound) {
		t.Error("phantom key in bulk-loaded tree")
	}
	// Scan must return exactly the loaded keys in order.
	i := 0
	if err := tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
		if k != uint64(i)*7 || v != uint64(i) {
			t.Fatalf("scan entry %d = (%d,%d)", i, k, v)
		}
		i++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scan visited %d entries", i)
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	if _, err := BulkLoad(newPool(8), []Entry{{2, 0}, {1, 0}}); err == nil {
		t.Error("unsorted input accepted")
	}
	if _, err := BulkLoad(newPool(8), []Entry{{2, 0}, {2, 1}}); err == nil {
		t.Error("duplicate keys accepted")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad(newPool(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestBulkLoadThenInsert(t *testing.T) {
	entries := make([]Entry, 1000)
	for i := range entries {
		entries[i] = Entry{Key: uint64(i) * 2, Value: uint64(i)}
	}
	tr, err := BulkLoad(newPool(64), entries)
	if err != nil {
		t.Fatal(err)
	}
	// Insert odd keys into the bulk-loaded tree.
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(uint64(i)*2+1, 9999); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		if _, err := tr.Get(uint64(i)); err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
	}
}

func TestTinyBufferPoolStillCorrect(t *testing.T) {
	// With only 3 frames every access thrashes; correctness must hold.
	tr, err := New(newPool(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		v, err := tr.Get(uint64(i))
		if err != nil || v != uint64(i) {
			t.Fatalf("Get(%d) = %d, %v", i, v, err)
		}
	}
}

func TestQuickInsertedAlwaysFound(t *testing.T) {
	f := func(keys []uint64) bool {
		tr, err := New(newPool(32))
		if err != nil {
			return false
		}
		seen := map[uint64]bool{}
		for _, k := range keys {
			if seen[k] {
				continue
			}
			seen[k] = true
			if err := tr.Insert(k, k+1); err != nil {
				return false
			}
		}
		for k := range seen {
			v, err := tr.Get(k)
			if err != nil || v != k+1 {
				return false
			}
		}
		return tr.Len() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFaultPropagation(t *testing.T) {
	file := storage.NewPageFile()
	pool := storage.NewBufferPool(file, 4, nil)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("injected")
	file.SetFault(func(op string, _ storage.PageID) error {
		if op == "read" {
			return wantErr
		}
		return nil
	})
	if _, err := tr.Get(42); !errors.Is(err, wantErr) {
		t.Errorf("Get under fault = %v", err)
	}
	if err := tr.Scan(0, 100, func(k, v uint64) bool { return true }); !errors.Is(err, wantErr) {
		t.Errorf("Scan under fault = %v", err)
	}
	file.SetFault(nil)
	if _, err := tr.Get(42); err != nil {
		t.Errorf("Get after fault cleared = %v", err)
	}
}

// TestModelBasedOps drives random insert/update/get sequences against a
// map model.
func TestModelBasedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr, err := New(newPool(16))
	if err != nil {
		t.Fatal(err)
	}
	model := map[uint64]uint64{}
	for op := 0; op < 8000; op++ {
		k := uint64(rng.Intn(2000))
		switch rng.Intn(3) {
		case 0: // insert
			v := rng.Uint64()
			_, exists := model[k]
			err := tr.Insert(k, v)
			if exists && !errors.Is(err, ErrDuplicate) {
				t.Fatalf("op %d: duplicate insert of %d gave %v", op, k, err)
			}
			if !exists {
				if err != nil {
					t.Fatalf("op %d: insert %d failed: %v", op, k, err)
				}
				model[k] = v
			}
		case 1: // update
			v := rng.Uint64()
			_, exists := model[k]
			err := tr.Update(k, v)
			if !exists && !errors.Is(err, ErrNotFound) {
				t.Fatalf("op %d: update of missing %d gave %v", op, k, err)
			}
			if exists {
				if err != nil {
					t.Fatalf("op %d: update %d failed: %v", op, k, err)
				}
				model[k] = v
			}
		default: // get
			want, exists := model[k]
			got, err := tr.Get(k)
			if exists && (err != nil || got != want) {
				t.Fatalf("op %d: get %d = (%d, %v), want %d", op, k, got, err, want)
			}
			if !exists && !errors.Is(err, ErrNotFound) {
				t.Fatalf("op %d: get of missing %d gave %v", op, k, err)
			}
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len %d, model %d", tr.Len(), len(model))
	}
	// Final full verification via scan.
	count := 0
	if err := tr.Scan(0, ^uint64(0), func(k, v uint64) bool {
		if model[k] != v {
			t.Fatalf("scan %d = %d, want %d", k, v, model[k])
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != len(model) {
		t.Fatalf("scan saw %d keys, model has %d", count, len(model))
	}
}
