// Package btree implements a disk-resident B+-tree with uint64 keys and
// uint64 values, stored in 4KB pages behind a buffer pool. It is the spine
// of every inverted file in the library: the key of an edge is the Z-order
// code of its center point (disambiguated with the edge ID) and the value
// points at the posting-list page chain for that edge.
//
// The tree supports point lookup, ordered range scans, single insert and
// sorted bulk loading (the construction path of the indexes).
//
// Tree state is split in two: the immutable Meta value (root page, height,
// counts) and the page source the operation runs against. Every operation
// exists in a form parameterized over storage.PageReader / storage.Pager —
// GetAt, ScanAt, InsertAt, UpdateAt — so reads can run against an
// LSN-pinned storage.PageView and mutations against a copy-on-write
// storage.WriteBatch (the MVCC query path), while the Tree handle binds a
// Meta to a concrete buffer pool for the single-threaded build path and
// tests.
package btree

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"dsks/internal/storage"
)

// Page layouts.
//
//	common header: kind uint16 (1 = leaf, 2 = internal), count uint16
//	leaf:    next  uint32 (PageID of right sibling), count × (key u64, val u64)
//	internal: count × key u64, (count+1) × child u32
const (
	kindLeaf     = 1
	kindInternal = 2

	headerSize = 4
	leafMeta   = headerSize + 4
	leafEntry  = 16
	// MaxLeafEntries is the number of (key, value) pairs a leaf page holds.
	MaxLeafEntries = (storage.PageSize - leafMeta) / leafEntry

	internalMeta = headerSize
	// MaxInternalKeys is the number of separator keys an internal page holds.
	// Each key is 8 bytes and each of the count+1 children is 4 bytes.
	MaxInternalKeys = (storage.PageSize - internalMeta - 4) / 12
)

// ErrNotFound is returned by Get for absent keys.
var ErrNotFound = errors.New("btree: key not found")

// ErrDuplicate is returned by Insert when the key already exists.
var ErrDuplicate = errors.New("btree: duplicate key")

// Meta is the versioned root state of a tree: everything needed to read or
// mutate it besides the pages themselves. Meta is a small value; copying
// it is how the MVCC layer snapshots a tree — a mutation through InsertAt
// updates the caller's copy, leaving every previously published Meta
// reading its old root unchanged.
type Meta struct {
	Root   storage.PageID
	Height int // 1 = root is a leaf
	Count  int // number of keys stored
	Pages  int // pages the tree occupies
}

// SizeBytes returns the on-disk footprint of the tree.
func (m Meta) SizeBytes() int64 { return int64(m.Pages) * storage.PageSize }

// Tree binds a Meta to a buffer pool: the handle of the build path and of
// single-threaded callers. Concurrent readers use GetAt/ScanAt with a
// pinned storage.PageView and a published Meta instead.
type Tree struct {
	pool *storage.BufferPool
	m    Meta
}

// New creates an empty tree (a single empty leaf as root).
func New(pool *storage.BufferPool) (*Tree, error) {
	m, err := NewAt(pool)
	if err != nil {
		return nil, err
	}
	return &Tree{pool: pool, m: m}, nil
}

// Open binds an existing tree's Meta to a pool.
func Open(pool *storage.BufferPool, m Meta) *Tree { return &Tree{pool: pool, m: m} }

// Meta returns the tree's current root state.
func (t *Tree) Meta() Meta { return t.m }

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.m.Count }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.m.Height }

// NumPages returns the number of pages the tree occupies.
func (t *Tree) NumPages() int { return t.m.Pages }

// SizeBytes returns the on-disk footprint of the tree.
func (t *Tree) SizeBytes() int64 { return t.m.SizeBytes() }

// Get returns the value stored under key, or ErrNotFound.
func (t *Tree) Get(key uint64) (uint64, error) {
	return GetAt(context.Background(), t.pool, t.m, key)
}

// GetCtx is Get with cancellation: a done ctx aborts the root-to-leaf
// descent before the next page read.
func (t *Tree) GetCtx(ctx context.Context, key uint64) (uint64, error) {
	return GetAt(ctx, t.pool, t.m, key)
}

// Update replaces the value stored under an existing key, or returns
// ErrNotFound. The tree shape is unchanged.
func (t *Tree) Update(key, value uint64) error {
	return UpdateAt(t.pool, t.m, key, value)
}

// Scan calls fn for every (key, value) with lo <= key <= hi, in ascending
// key order, until fn returns false or the range is exhausted.
func (t *Tree) Scan(lo, hi uint64, fn func(key, val uint64) bool) error {
	return ScanAt(t.pool, t.m, lo, hi, fn)
}

// Insert stores (key, value); inserting an existing key fails with
// ErrDuplicate.
func (t *Tree) Insert(key, value uint64) error {
	return InsertAt(t.pool, &t.m, key, value)
}

// NewAt writes an empty tree (a single empty leaf as root) through p and
// returns its Meta.
func NewAt(p storage.Pager) (Meta, error) {
	var m Meta
	leaf, err := newPageAt(p, &m, kindLeaf)
	if err != nil {
		return Meta{}, err
	}
	m.Root = leaf
	m.Height = 1
	return m, nil
}

func newPageAt(p storage.Pager, m *Meta, kind uint16) (storage.PageID, error) {
	pg, err := p.Allocate()
	if err != nil {
		return storage.InvalidPageID, err
	}
	pg.PutUint16(0, kind)
	pg.PutUint16(2, 0)
	if kind == kindLeaf {
		pg.PutUint32(headerSize, uint32(storage.InvalidPageID))
	}
	p.MarkDirty(pg.ID())
	m.Pages++
	return pg.ID(), nil
}

// --- page accessors -------------------------------------------------------

func pageKind(p *storage.Page) uint16 { return p.Uint16(0) }
func pageCount(p *storage.Page) int   { return int(p.Uint16(2)) }
func setCount(p *storage.Page, n int) { p.PutUint16(2, uint16(n)) }
func leafNext(p *storage.Page) storage.PageID {
	return storage.PageID(p.Uint32(headerSize))
}
func setLeafNext(p *storage.Page, id storage.PageID) { p.PutUint32(headerSize, uint32(id)) }

func leafKey(p *storage.Page, i int) uint64 { return p.Uint64(leafMeta + i*leafEntry) }
func leafVal(p *storage.Page, i int) uint64 { return p.Uint64(leafMeta + i*leafEntry + 8) }
func setLeafKV(p *storage.Page, i int, k, v uint64) {
	p.PutUint64(leafMeta+i*leafEntry, k)
	p.PutUint64(leafMeta+i*leafEntry+8, v)
}

func internalKey(p *storage.Page, i int) uint64       { return p.Uint64(internalMeta + i*8) }
func setInternalKey(p *storage.Page, i int, k uint64) { p.PutUint64(internalMeta+i*8, k) }

func childOff(i int) int { return internalMeta + MaxInternalKeys*8 + i*4 }
func internalChild(p *storage.Page, i int) storage.PageID {
	return storage.PageID(p.Uint32(childOff(i)))
}
func setInternalChild(p *storage.Page, i int, id storage.PageID) {
	p.PutUint32(childOff(i), uint32(id))
}

// --- lookup ---------------------------------------------------------------

// findLeafAt descends to the leaf that would contain key.
func findLeafAt(ctx context.Context, r storage.PageReader, m Meta, key uint64) (storage.PageID, error) {
	id := m.Root
	for {
		p, err := r.GetCtx(ctx, id)
		if err != nil {
			return storage.InvalidPageID, err
		}
		if pageKind(p) == kindLeaf {
			return id, nil
		}
		n := pageCount(p)
		// First separator strictly greater than key; descend left of it.
		i := sort.Search(n, func(i int) bool { return internalKey(p, i) > key })
		id = internalChild(p, i)
	}
}

// GetAt returns the value stored under key in the tree rooted at m, read
// through r, or ErrNotFound. A done ctx aborts the descent before the next
// page read.
func GetAt(ctx context.Context, r storage.PageReader, m Meta, key uint64) (uint64, error) {
	leafID, err := findLeafAt(ctx, r, m, key)
	if err != nil {
		return 0, err
	}
	p, err := r.GetCtx(ctx, leafID)
	if err != nil {
		return 0, err
	}
	n := pageCount(p)
	i := sort.Search(n, func(i int) bool { return leafKey(p, i) >= key })
	if i < n && leafKey(p, i) == key {
		return leafVal(p, i), nil
	}
	return 0, ErrNotFound
}

// UpdateAt replaces the value stored under an existing key, or returns
// ErrNotFound. The tree shape (and thus Meta) is unchanged; against a
// WriteBatch the modified leaf becomes a copy-on-write version.
func UpdateAt(p storage.Pager, m Meta, key, value uint64) error {
	leafID, err := findLeafAt(context.Background(), p, m, key)
	if err != nil {
		return err
	}
	pg, err := p.Get(leafID)
	if err != nil {
		return err
	}
	n := pageCount(pg)
	i := sort.Search(n, func(i int) bool { return leafKey(pg, i) >= key })
	if i >= n || leafKey(pg, i) != key {
		return fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	setLeafKV(pg, i, key, value)
	p.MarkDirty(leafID)
	return nil
}

// ScanAt calls fn for every (key, value) with lo <= key <= hi in the tree
// rooted at m, read through r, in ascending key order, until fn returns
// false or the range is exhausted.
func ScanAt(r storage.PageReader, m Meta, lo, hi uint64, fn func(key, val uint64) bool) error {
	leafID, err := findLeafAt(context.Background(), r, m, lo)
	if err != nil {
		return err
	}
	for leafID != storage.InvalidPageID {
		p, err := r.Get(leafID)
		if err != nil {
			return err
		}
		n := pageCount(p)
		i := sort.Search(n, func(i int) bool { return leafKey(p, i) >= lo })
		next := leafNext(p)
		for ; i < n; i++ {
			k := leafKey(p, i)
			if k > hi {
				return nil
			}
			if !fn(k, leafVal(p, i)) {
				return nil
			}
		}
		leafID = next
	}
	return nil
}

// --- insert ---------------------------------------------------------------

type splitResult struct {
	split   bool
	sepKey  uint64 // first key of the new right sibling
	newPage storage.PageID
}

// InsertAt stores (key, value) in the tree rooted at *m through p,
// updating *m in place (root, height, counts); inserting an existing key
// fails with ErrDuplicate. Against a WriteBatch every modified page is a
// private copy, so a failed insert leaves the published tree untouched.
func InsertAt(p storage.Pager, m *Meta, key, value uint64) error {
	res, err := insertIntoAt(p, m, m.Root, key, value)
	if err != nil {
		return err
	}
	if res.split {
		newRoot, err := newPageAt(p, m, kindInternal)
		if err != nil {
			return err
		}
		pg, err := p.Get(newRoot)
		if err != nil {
			return err
		}
		setCount(pg, 1)
		setInternalKey(pg, 0, res.sepKey)
		setInternalChild(pg, 0, m.Root)
		setInternalChild(pg, 1, res.newPage)
		p.MarkDirty(newRoot)
		m.Root = newRoot
		m.Height++
	}
	m.Count++
	return nil
}

func insertIntoAt(p storage.Pager, m *Meta, id storage.PageID, key, value uint64) (splitResult, error) {
	pg, err := p.Get(id)
	if err != nil {
		return splitResult{}, err
	}
	if pageKind(pg) == kindLeaf {
		return insertLeafAt(p, m, id, key, value)
	}
	n := pageCount(pg)
	i := sort.Search(n, func(i int) bool { return internalKey(pg, i) > key })
	child := internalChild(pg, i)
	res, err := insertIntoAt(p, m, child, key, value)
	if err != nil || !res.split {
		return splitResult{}, err
	}
	// Re-fetch: the child insert may have evicted our frame.
	pg, err = p.Get(id)
	if err != nil {
		return splitResult{}, err
	}
	return insertInternalKeyAt(p, m, id, pg, res.sepKey, res.newPage)
}

func insertLeafAt(p storage.Pager, m *Meta, id storage.PageID, key, value uint64) (splitResult, error) {
	pg, err := p.Get(id)
	if err != nil {
		return splitResult{}, err
	}
	n := pageCount(pg)
	i := sort.Search(n, func(i int) bool { return leafKey(pg, i) >= key })
	if i < n && leafKey(pg, i) == key {
		return splitResult{}, fmt.Errorf("%w: %d", ErrDuplicate, key)
	}
	if n < MaxLeafEntries {
		for j := n; j > i; j-- {
			setLeafKV(pg, j, leafKey(pg, j-1), leafVal(pg, j-1))
		}
		setLeafKV(pg, i, key, value)
		setCount(pg, n+1)
		p.MarkDirty(id)
		return splitResult{}, nil
	}
	// Split: gather all n+1 entries, write halves.
	keys := make([]uint64, 0, n+1)
	vals := make([]uint64, 0, n+1)
	for j := 0; j < n; j++ {
		keys = append(keys, leafKey(pg, j))
		vals = append(vals, leafVal(pg, j))
	}
	keys = append(keys, 0)
	vals = append(vals, 0)
	copy(keys[i+1:], keys[i:])
	copy(vals[i+1:], vals[i:])
	keys[i], vals[i] = key, value

	rightID, err := newPageAt(p, m, kindLeaf)
	if err != nil {
		return splitResult{}, err
	}
	// Re-fetch both pages (allocation may evict).
	left, err := p.Get(id)
	if err != nil {
		return splitResult{}, err
	}
	mid := (n + 1) / 2
	oldNext := leafNext(left)
	setCount(left, mid)
	for j := 0; j < mid; j++ {
		setLeafKV(left, j, keys[j], vals[j])
	}
	setLeafNext(left, rightID)
	p.MarkDirty(id)

	right, err := p.Get(rightID)
	if err != nil {
		return splitResult{}, err
	}
	setCount(right, n+1-mid)
	for j := mid; j <= n; j++ {
		setLeafKV(right, j-mid, keys[j], vals[j])
	}
	setLeafNext(right, oldNext)
	p.MarkDirty(rightID)
	return splitResult{split: true, sepKey: keys[mid], newPage: rightID}, nil
}

func insertInternalKeyAt(p storage.Pager, m *Meta, id storage.PageID, pg *storage.Page, sep uint64, newChild storage.PageID) (splitResult, error) {
	n := pageCount(pg)
	i := sort.Search(n, func(i int) bool { return internalKey(pg, i) > sep })
	if n < MaxInternalKeys {
		for j := n; j > i; j-- {
			setInternalKey(pg, j, internalKey(pg, j-1))
		}
		for j := n + 1; j > i+1; j-- {
			setInternalChild(pg, j, internalChild(pg, j-1))
		}
		setInternalKey(pg, i, sep)
		setInternalChild(pg, i+1, newChild)
		setCount(pg, n+1)
		p.MarkDirty(id)
		return splitResult{}, nil
	}
	// Split internal node.
	keys := make([]uint64, 0, n+1)
	children := make([]storage.PageID, 0, n+2)
	for j := 0; j < n; j++ {
		keys = append(keys, internalKey(pg, j))
	}
	for j := 0; j <= n; j++ {
		children = append(children, internalChild(pg, j))
	}
	keys = append(keys, 0)
	copy(keys[i+1:], keys[i:])
	keys[i] = sep
	children = append(children, storage.InvalidPageID)
	copy(children[i+2:], children[i+1:])
	children[i+1] = newChild

	rightID, err := newPageAt(p, m, kindInternal)
	if err != nil {
		return splitResult{}, err
	}
	left, err := p.Get(id)
	if err != nil {
		return splitResult{}, err
	}
	total := n + 1
	mid := total / 2 // keys[mid] moves up
	setCount(left, mid)
	for j := 0; j < mid; j++ {
		setInternalKey(left, j, keys[j])
	}
	for j := 0; j <= mid; j++ {
		setInternalChild(left, j, children[j])
	}
	p.MarkDirty(id)

	right, err := p.Get(rightID)
	if err != nil {
		return splitResult{}, err
	}
	rn := total - mid - 1
	setCount(right, rn)
	for j := 0; j < rn; j++ {
		setInternalKey(right, j, keys[mid+1+j])
	}
	for j := 0; j <= rn; j++ {
		setInternalChild(right, j, children[mid+1+j])
	}
	p.MarkDirty(rightID)
	return splitResult{split: true, sepKey: keys[mid], newPage: rightID}, nil
}

// --- bulk load --------------------------------------------------------------

// Entry is a (key, value) pair for bulk loading.
type Entry struct {
	Key   uint64
	Value uint64
}

// BulkLoad builds a tree from entries, which must be sorted by key with no
// duplicates. This is the construction path of the inverted indexes.
func BulkLoad(pool *storage.BufferPool, entries []Entry) (*Tree, error) {
	for i := 1; i < len(entries); i++ {
		if entries[i].Key <= entries[i-1].Key {
			return nil, fmt.Errorf("btree: bulk load input not strictly sorted at %d", i)
		}
	}
	t := &Tree{pool: pool}
	if len(entries) == 0 {
		return New(pool)
	}

	// Fill leaves left to right.
	type nodeRef struct {
		id       storage.PageID
		firstKey uint64
	}
	var level []nodeRef
	perLeaf := MaxLeafEntries * 3 / 4 // leave slack for future inserts
	if perLeaf < 1 {
		perLeaf = 1
	}
	var prevLeaf storage.PageID = storage.InvalidPageID
	for start := 0; start < len(entries); start += perLeaf {
		end := start + perLeaf
		if end > len(entries) {
			end = len(entries)
		}
		id, err := newPageAt(pool, &t.m, kindLeaf)
		if err != nil {
			return nil, err
		}
		p, err := pool.Get(id)
		if err != nil {
			return nil, err
		}
		setCount(p, end-start)
		for j := start; j < end; j++ {
			setLeafKV(p, j-start, entries[j].Key, entries[j].Value)
		}
		pool.MarkDirty(id)
		if prevLeaf != storage.InvalidPageID {
			pp, err := pool.Get(prevLeaf)
			if err != nil {
				return nil, err
			}
			setLeafNext(pp, id)
			pool.MarkDirty(prevLeaf)
		}
		prevLeaf = id
		level = append(level, nodeRef{id, entries[start].Key})
	}
	t.m.Height = 1

	// Build internal levels until a single root remains.
	perNode := MaxInternalKeys * 3 / 4
	if perNode < 2 {
		perNode = 2
	}
	for len(level) > 1 {
		var next []nodeRef
		for start := 0; start < len(level); start += perNode + 1 {
			end := start + perNode + 1
			if end > len(level) {
				end = len(level)
			}
			// Avoid a trailing group with a single child.
			if end < len(level) && len(level)-end == 1 {
				end--
			}
			id, err := newPageAt(pool, &t.m, kindInternal)
			if err != nil {
				return nil, err
			}
			p, err := pool.Get(id)
			if err != nil {
				return nil, err
			}
			nk := end - start - 1
			setCount(p, nk)
			for j := 0; j < nk; j++ {
				setInternalKey(p, j, level[start+1+j].firstKey)
			}
			for j := 0; j <= nk; j++ {
				setInternalChild(p, j, level[start+j].id)
			}
			pool.MarkDirty(id)
			next = append(next, nodeRef{id, level[start].firstKey})
		}
		level = next
		t.m.Height++
	}
	t.m.Root = level[0].id
	t.m.Count = len(entries)
	if err := pool.Flush(); err != nil {
		return nil, err
	}
	return t, nil
}
