// Package btree implements a disk-resident B+-tree with uint64 keys and
// uint64 values, stored in 4KB pages behind a buffer pool. It is the spine
// of every inverted file in the library: the key of an edge is the Z-order
// code of its center point (disambiguated with the edge ID) and the value
// points at the posting-list page chain for that edge.
//
// The tree supports point lookup, ordered range scans, single insert and
// sorted bulk loading (the construction path of the indexes).
package btree

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"dsks/internal/storage"
)

// Page layouts.
//
//	common header: kind uint16 (1 = leaf, 2 = internal), count uint16
//	leaf:    next  uint32 (PageID of right sibling), count × (key u64, val u64)
//	internal: count × key u64, (count+1) × child u32
const (
	kindLeaf     = 1
	kindInternal = 2

	headerSize = 4
	leafMeta   = headerSize + 4
	leafEntry  = 16
	// MaxLeafEntries is the number of (key, value) pairs a leaf page holds.
	MaxLeafEntries = (storage.PageSize - leafMeta) / leafEntry

	internalMeta = headerSize
	// MaxInternalKeys is the number of separator keys an internal page holds.
	// Each key is 8 bytes and each of the count+1 children is 4 bytes.
	MaxInternalKeys = (storage.PageSize - internalMeta - 4) / 12
)

// ErrNotFound is returned by Get for absent keys.
var ErrNotFound = errors.New("btree: key not found")

// ErrDuplicate is returned by Insert when the key already exists.
var ErrDuplicate = errors.New("btree: duplicate key")

// Tree is a B+-tree handle. All page access goes through the buffer pool.
type Tree struct {
	pool   *storage.BufferPool
	root   storage.PageID
	height int
	count  int
	pages  int
}

// New creates an empty tree (a single empty leaf as root).
func New(pool *storage.BufferPool) (*Tree, error) {
	t := &Tree{pool: pool}
	leaf, err := t.newPage(kindLeaf)
	if err != nil {
		return nil, err
	}
	t.root = leaf
	t.height = 1
	return t, nil
}

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.count }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// NumPages returns the number of pages the tree occupies.
func (t *Tree) NumPages() int { return t.pages }

// SizeBytes returns the on-disk footprint of the tree.
func (t *Tree) SizeBytes() int64 { return int64(t.pages) * storage.PageSize }

func (t *Tree) newPage(kind uint16) (storage.PageID, error) {
	p, err := t.pool.Allocate()
	if err != nil {
		return storage.InvalidPageID, err
	}
	p.PutUint16(0, kind)
	p.PutUint16(2, 0)
	if kind == kindLeaf {
		p.PutUint32(headerSize, uint32(storage.InvalidPageID))
	}
	t.pool.MarkDirty(p.ID())
	t.pages++
	return p.ID(), nil
}

// --- page accessors -------------------------------------------------------

func pageKind(p *storage.Page) uint16 { return p.Uint16(0) }
func pageCount(p *storage.Page) int   { return int(p.Uint16(2)) }
func setCount(p *storage.Page, n int) { p.PutUint16(2, uint16(n)) }
func leafNext(p *storage.Page) storage.PageID {
	return storage.PageID(p.Uint32(headerSize))
}
func setLeafNext(p *storage.Page, id storage.PageID) { p.PutUint32(headerSize, uint32(id)) }

func leafKey(p *storage.Page, i int) uint64 { return p.Uint64(leafMeta + i*leafEntry) }
func leafVal(p *storage.Page, i int) uint64 { return p.Uint64(leafMeta + i*leafEntry + 8) }
func setLeafKV(p *storage.Page, i int, k, v uint64) {
	p.PutUint64(leafMeta+i*leafEntry, k)
	p.PutUint64(leafMeta+i*leafEntry+8, v)
}

func internalKey(p *storage.Page, i int) uint64       { return p.Uint64(internalMeta + i*8) }
func setInternalKey(p *storage.Page, i int, k uint64) { p.PutUint64(internalMeta+i*8, k) }

func childOff(i int) int { return internalMeta + MaxInternalKeys*8 + i*4 }
func internalChild(p *storage.Page, i int) storage.PageID {
	return storage.PageID(p.Uint32(childOff(i)))
}
func setInternalChild(p *storage.Page, i int, id storage.PageID) {
	p.PutUint32(childOff(i), uint32(id))
}

// --- lookup ---------------------------------------------------------------

// findLeaf descends to the leaf that would contain key.
func (t *Tree) findLeaf(key uint64) (storage.PageID, error) {
	return t.findLeafCtx(context.Background(), key)
}

func (t *Tree) findLeafCtx(ctx context.Context, key uint64) (storage.PageID, error) {
	id := t.root
	for {
		p, err := t.pool.GetCtx(ctx, id)
		if err != nil {
			return storage.InvalidPageID, err
		}
		if pageKind(p) == kindLeaf {
			return id, nil
		}
		n := pageCount(p)
		// First separator strictly greater than key; descend left of it.
		i := sort.Search(n, func(i int) bool { return internalKey(p, i) > key })
		id = internalChild(p, i)
	}
}

// Get returns the value stored under key, or ErrNotFound.
func (t *Tree) Get(key uint64) (uint64, error) {
	return t.GetCtx(context.Background(), key)
}

// GetCtx is Get with cancellation: a done ctx aborts the root-to-leaf
// descent before the next page read.
func (t *Tree) GetCtx(ctx context.Context, key uint64) (uint64, error) {
	leafID, err := t.findLeafCtx(ctx, key)
	if err != nil {
		return 0, err
	}
	p, err := t.pool.GetCtx(ctx, leafID)
	if err != nil {
		return 0, err
	}
	n := pageCount(p)
	i := sort.Search(n, func(i int) bool { return leafKey(p, i) >= key })
	if i < n && leafKey(p, i) == key {
		return leafVal(p, i), nil
	}
	return 0, ErrNotFound
}

// Update replaces the value stored under an existing key, or returns
// ErrNotFound. The tree shape is unchanged.
func (t *Tree) Update(key, value uint64) error {
	leafID, err := t.findLeaf(key)
	if err != nil {
		return err
	}
	p, err := t.pool.Get(leafID)
	if err != nil {
		return err
	}
	n := pageCount(p)
	i := sort.Search(n, func(i int) bool { return leafKey(p, i) >= key })
	if i >= n || leafKey(p, i) != key {
		return fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	setLeafKV(p, i, key, value)
	t.pool.MarkDirty(leafID)
	return nil
}

// Scan calls fn for every (key, value) with lo <= key <= hi, in ascending
// key order, until fn returns false or the range is exhausted.
func (t *Tree) Scan(lo, hi uint64, fn func(key, val uint64) bool) error {
	leafID, err := t.findLeaf(lo)
	if err != nil {
		return err
	}
	for leafID != storage.InvalidPageID {
		p, err := t.pool.Get(leafID)
		if err != nil {
			return err
		}
		n := pageCount(p)
		i := sort.Search(n, func(i int) bool { return leafKey(p, i) >= lo })
		next := leafNext(p)
		for ; i < n; i++ {
			k := leafKey(p, i)
			if k > hi {
				return nil
			}
			if !fn(k, leafVal(p, i)) {
				return nil
			}
		}
		leafID = next
	}
	return nil
}

// --- insert ---------------------------------------------------------------

type splitResult struct {
	split   bool
	sepKey  uint64 // first key of the new right sibling
	newPage storage.PageID
}

// Insert stores (key, value); inserting an existing key fails with
// ErrDuplicate.
func (t *Tree) Insert(key, value uint64) error {
	res, err := t.insertInto(t.root, t.height, key, value)
	if err != nil {
		return err
	}
	if res.split {
		newRoot, err := t.newPage(kindInternal)
		if err != nil {
			return err
		}
		p, err := t.pool.Get(newRoot)
		if err != nil {
			return err
		}
		setCount(p, 1)
		setInternalKey(p, 0, res.sepKey)
		setInternalChild(p, 0, t.root)
		setInternalChild(p, 1, res.newPage)
		t.pool.MarkDirty(newRoot)
		t.root = newRoot
		t.height++
	}
	t.count++
	return nil
}

func (t *Tree) insertInto(id storage.PageID, level int, key, value uint64) (splitResult, error) {
	p, err := t.pool.Get(id)
	if err != nil {
		return splitResult{}, err
	}
	if pageKind(p) == kindLeaf {
		return t.insertLeaf(id, key, value)
	}
	n := pageCount(p)
	i := sort.Search(n, func(i int) bool { return internalKey(p, i) > key })
	child := internalChild(p, i)
	res, err := t.insertInto(child, level-1, key, value)
	if err != nil || !res.split {
		return splitResult{}, err
	}
	// Re-fetch: the child insert may have evicted our frame.
	p, err = t.pool.Get(id)
	if err != nil {
		return splitResult{}, err
	}
	return t.insertInternalKey(id, p, res.sepKey, res.newPage)
}

func (t *Tree) insertLeaf(id storage.PageID, key, value uint64) (splitResult, error) {
	p, err := t.pool.Get(id)
	if err != nil {
		return splitResult{}, err
	}
	n := pageCount(p)
	i := sort.Search(n, func(i int) bool { return leafKey(p, i) >= key })
	if i < n && leafKey(p, i) == key {
		return splitResult{}, fmt.Errorf("%w: %d", ErrDuplicate, key)
	}
	if n < MaxLeafEntries {
		for j := n; j > i; j-- {
			setLeafKV(p, j, leafKey(p, j-1), leafVal(p, j-1))
		}
		setLeafKV(p, i, key, value)
		setCount(p, n+1)
		t.pool.MarkDirty(id)
		return splitResult{}, nil
	}
	// Split: gather all n+1 entries, write halves.
	keys := make([]uint64, 0, n+1)
	vals := make([]uint64, 0, n+1)
	for j := 0; j < n; j++ {
		keys = append(keys, leafKey(p, j))
		vals = append(vals, leafVal(p, j))
	}
	keys = append(keys, 0)
	vals = append(vals, 0)
	copy(keys[i+1:], keys[i:])
	copy(vals[i+1:], vals[i:])
	keys[i], vals[i] = key, value

	rightID, err := t.newPage(kindLeaf)
	if err != nil {
		return splitResult{}, err
	}
	// Re-fetch both pages (allocation may evict).
	left, err := t.pool.Get(id)
	if err != nil {
		return splitResult{}, err
	}
	mid := (n + 1) / 2
	oldNext := leafNext(left)
	setCount(left, mid)
	for j := 0; j < mid; j++ {
		setLeafKV(left, j, keys[j], vals[j])
	}
	setLeafNext(left, rightID)
	t.pool.MarkDirty(id)

	right, err := t.pool.Get(rightID)
	if err != nil {
		return splitResult{}, err
	}
	setCount(right, n+1-mid)
	for j := mid; j <= n; j++ {
		setLeafKV(right, j-mid, keys[j], vals[j])
	}
	setLeafNext(right, oldNext)
	t.pool.MarkDirty(rightID)
	return splitResult{split: true, sepKey: keys[mid], newPage: rightID}, nil
}

func (t *Tree) insertInternalKey(id storage.PageID, p *storage.Page, sep uint64, newChild storage.PageID) (splitResult, error) {
	n := pageCount(p)
	i := sort.Search(n, func(i int) bool { return internalKey(p, i) > sep })
	if n < MaxInternalKeys {
		for j := n; j > i; j-- {
			setInternalKey(p, j, internalKey(p, j-1))
		}
		for j := n + 1; j > i+1; j-- {
			setInternalChild(p, j, internalChild(p, j-1))
		}
		setInternalKey(p, i, sep)
		setInternalChild(p, i+1, newChild)
		setCount(p, n+1)
		t.pool.MarkDirty(id)
		return splitResult{}, nil
	}
	// Split internal node.
	keys := make([]uint64, 0, n+1)
	children := make([]storage.PageID, 0, n+2)
	for j := 0; j < n; j++ {
		keys = append(keys, internalKey(p, j))
	}
	for j := 0; j <= n; j++ {
		children = append(children, internalChild(p, j))
	}
	keys = append(keys, 0)
	copy(keys[i+1:], keys[i:])
	keys[i] = sep
	children = append(children, storage.InvalidPageID)
	copy(children[i+2:], children[i+1:])
	children[i+1] = newChild

	rightID, err := t.newPage(kindInternal)
	if err != nil {
		return splitResult{}, err
	}
	left, err := t.pool.Get(id)
	if err != nil {
		return splitResult{}, err
	}
	total := n + 1
	mid := total / 2 // keys[mid] moves up
	setCount(left, mid)
	for j := 0; j < mid; j++ {
		setInternalKey(left, j, keys[j])
	}
	for j := 0; j <= mid; j++ {
		setInternalChild(left, j, children[j])
	}
	t.pool.MarkDirty(id)

	right, err := t.pool.Get(rightID)
	if err != nil {
		return splitResult{}, err
	}
	rn := total - mid - 1
	setCount(right, rn)
	for j := 0; j < rn; j++ {
		setInternalKey(right, j, keys[mid+1+j])
	}
	for j := 0; j <= rn; j++ {
		setInternalChild(right, j, children[mid+1+j])
	}
	t.pool.MarkDirty(rightID)
	return splitResult{split: true, sepKey: keys[mid], newPage: rightID}, nil
}

// --- bulk load --------------------------------------------------------------

// Entry is a (key, value) pair for bulk loading.
type Entry struct {
	Key   uint64
	Value uint64
}

// BulkLoad builds a tree from entries, which must be sorted by key with no
// duplicates. This is the construction path of the inverted indexes.
func BulkLoad(pool *storage.BufferPool, entries []Entry) (*Tree, error) {
	for i := 1; i < len(entries); i++ {
		if entries[i].Key <= entries[i-1].Key {
			return nil, fmt.Errorf("btree: bulk load input not strictly sorted at %d", i)
		}
	}
	t := &Tree{pool: pool}
	if len(entries) == 0 {
		return New(pool)
	}

	// Fill leaves left to right.
	type nodeRef struct {
		id       storage.PageID
		firstKey uint64
	}
	var level []nodeRef
	perLeaf := MaxLeafEntries * 3 / 4 // leave slack for future inserts
	if perLeaf < 1 {
		perLeaf = 1
	}
	var prevLeaf storage.PageID = storage.InvalidPageID
	for start := 0; start < len(entries); start += perLeaf {
		end := start + perLeaf
		if end > len(entries) {
			end = len(entries)
		}
		id, err := t.newPage(kindLeaf)
		if err != nil {
			return nil, err
		}
		p, err := pool.Get(id)
		if err != nil {
			return nil, err
		}
		setCount(p, end-start)
		for j := start; j < end; j++ {
			setLeafKV(p, j-start, entries[j].Key, entries[j].Value)
		}
		pool.MarkDirty(id)
		if prevLeaf != storage.InvalidPageID {
			pp, err := pool.Get(prevLeaf)
			if err != nil {
				return nil, err
			}
			setLeafNext(pp, id)
			pool.MarkDirty(prevLeaf)
		}
		prevLeaf = id
		level = append(level, nodeRef{id, entries[start].Key})
	}
	t.height = 1

	// Build internal levels until a single root remains.
	perNode := MaxInternalKeys * 3 / 4
	if perNode < 2 {
		perNode = 2
	}
	for len(level) > 1 {
		var next []nodeRef
		for start := 0; start < len(level); start += perNode + 1 {
			end := start + perNode + 1
			if end > len(level) {
				end = len(level)
			}
			// Avoid a trailing group with a single child.
			if end < len(level) && len(level)-end == 1 {
				end--
			}
			id, err := t.newPage(kindInternal)
			if err != nil {
				return nil, err
			}
			p, err := pool.Get(id)
			if err != nil {
				return nil, err
			}
			nk := end - start - 1
			setCount(p, nk)
			for j := 0; j < nk; j++ {
				setInternalKey(p, j, level[start+1+j].firstKey)
			}
			for j := 0; j <= nk; j++ {
				setInternalChild(p, j, level[start+j].id)
			}
			pool.MarkDirty(id)
			next = append(next, nodeRef{id, level[start].firstKey})
		}
		level = next
		t.height++
	}
	t.root = level[0].id
	t.count = len(entries)
	if err := pool.Flush(); err != nil {
		return nil, err
	}
	return t, nil
}
