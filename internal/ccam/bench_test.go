package ccam

import (
	"context"

	"math/rand"
	"testing"

	"dsks/internal/graph"
	"dsks/internal/storage"
)

func BenchmarkBuild(b *testing.B) {
	g := randomGraph(b, 5000, 5000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, newPool(4096)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdjacencyWarm(b *testing.B) {
	g := randomGraph(b, 5000, 5000, 2)
	f, err := Build(g, newPool(4096))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Adjacency(context.Background(), graph.NodeID(rng.Intn(g.NumNodes()))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdjacencyCold(b *testing.B) {
	g := randomGraph(b, 5000, 5000, 4)
	stats := &storage.IOStats{}
	pool := storage.NewBufferPool(storage.NewPageFile(), 2, stats)
	f, err := Build(g, pool)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Adjacency(context.Background(), graph.NodeID(rng.Intn(g.NumNodes()))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.Snapshot().DiskRead)/float64(b.N), "reads/op")
}
