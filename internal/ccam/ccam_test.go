package ccam

import (
	"context"

	"errors"
	"math/rand"
	"testing"

	"dsks/internal/geo"
	"dsks/internal/graph"
	"dsks/internal/storage"
)

func randomGraph(t testing.TB, n, extra int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{X: rng.Float64() * geo.WorldMax, Y: rng.Float64() * geo.WorldMax})
	}
	for i := 1; i < n; i++ {
		if _, err := g.AddEdge(graph.NodeID(i-1), graph.NodeID(i), 1+rng.Float64()*10); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < extra; i++ {
		a, b := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if a != b {
			_, _ = g.AddEdge(a, b, 1+rng.Float64()*10)
		}
	}
	g.Freeze()
	return g
}

func newPool(frames int) *storage.BufferPool {
	return storage.NewBufferPool(storage.NewPageFile(), frames, nil)
}

func TestBuildAndReadBack(t *testing.T) {
	g := randomGraph(t, 500, 700, 1)
	pool := newPool(64)
	f, err := Build(g, pool)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumNodes() != g.NumNodes() {
		t.Fatalf("NumNodes = %d", f.NumNodes())
	}
	if f.NumPages() == 0 {
		t.Fatal("no pages written")
	}
	// Every node's adjacency must round-trip exactly.
	for n := 0; n < g.NumNodes(); n++ {
		nd := graph.NodeID(n)
		got, err := f.Adjacency(context.Background(), nd)
		if err != nil {
			t.Fatalf("Adjacency(%d): %v", n, err)
		}
		want := g.Adjacent(nd)
		if len(got) != len(want) {
			t.Fatalf("node %d: %d entries, want %d", n, len(got), len(want))
		}
		for i, eid := range want {
			e := g.Edge(eid)
			if got[i].Edge != eid || got[i].Other != e.OtherEnd(nd) ||
				got[i].Weight != e.Weight || got[i].Length != e.Length {
				t.Fatalf("node %d entry %d mismatch: %+v vs edge %+v", n, i, got[i], e)
			}
		}
	}
}

func TestAdjacencyCountsIO(t *testing.T) {
	g := randomGraph(t, 300, 300, 2)
	stats := &storage.IOStats{}
	pool := storage.NewBufferPool(storage.NewPageFile(), 4, stats)
	f, err := Build(g, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	stats.Reset()
	if _, err := f.Adjacency(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if stats.Snapshot().DiskRead != 1 {
		t.Errorf("cold adjacency read cost %d disk I/Os", stats.Snapshot().DiskRead)
	}
	if _, err := f.Adjacency(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if stats.Snapshot().DiskRead != 1 {
		t.Error("warm adjacency read should not hit disk")
	}
}

func TestZOrderClusteringLocality(t *testing.T) {
	// CCAM's point: spatially close nodes should share pages more often
	// than random assignment would. We check that the number of pages is
	// close to the packing optimum (within 2x), which only happens when
	// groups are filled densely.
	g := randomGraph(t, 2000, 2000, 3)
	pool := newPool(256)
	f, err := Build(g, pool)
	if err != nil {
		t.Fatal(err)
	}
	totalBytes := pageHeaderSize
	for n := 0; n < g.NumNodes(); n++ {
		totalBytes += nodeEntrySize(g.Degree(graph.NodeID(n)))
	}
	minPages := (totalBytes + storage.PageSize - 1) / storage.PageSize
	if f.NumPages() > 2*minPages+1 {
		t.Errorf("poor packing: %d pages vs optimum %d", f.NumPages(), minPages)
	}
}

func TestAdjacencyUnknownNode(t *testing.T) {
	g := randomGraph(t, 10, 5, 4)
	f, err := Build(g, newPool(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Adjacency(context.Background(), graph.NodeID(-1)); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := f.Adjacency(context.Background(), graph.NodeID(10)); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestInMemoryMatchesFile(t *testing.T) {
	g := randomGraph(t, 100, 150, 5)
	f, err := Build(g, newPool(32))
	if err != nil {
		t.Fatal(err)
	}
	mem := InMemory{G: g}
	if mem.NumNodes() != f.NumNodes() {
		t.Fatal("node count mismatch")
	}
	for n := 0; n < g.NumNodes(); n++ {
		a, err := f.Adjacency(context.Background(), graph.NodeID(n))
		if err != nil {
			t.Fatal(err)
		}
		b, err := mem.Adjacency(context.Background(), graph.NodeID(n))
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("node %d: file %d vs mem %d entries", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d entry %d: %+v vs %+v", n, i, a[i], b[i])
			}
		}
	}
	if _, err := mem.Adjacency(context.Background(), graph.NodeID(1000)); err == nil {
		t.Error("InMemory accepted unknown node")
	}
}

func TestAdjacencyFaultPropagation(t *testing.T) {
	g := randomGraph(t, 100, 100, 9)
	file := storage.NewPageFile()
	pool := storage.NewBufferPool(file, 16, nil)
	f, err := Build(g, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("injected")
	file.SetFault(func(op string, _ storage.PageID) error {
		if op == "read" {
			return wantErr
		}
		return nil
	})
	if _, err := f.Adjacency(context.Background(), 0); !errors.Is(err, wantErr) {
		t.Errorf("Adjacency under fault = %v", err)
	}
}
