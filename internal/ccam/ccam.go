// Package ccam implements the connectivity-clustered access method of
// Shekhar & Liu, the disk-based road-network representation the paper
// adopts: node adjacency lists are clustered into 4KB pages by the Z-order
// of the node locations, recursively two-way-partitioned until each group's
// adjacency lists fit into one page. Traversal fetches pages through an LRU
// buffer pool, so spatially/topologically close nodes tend to share pages
// and the expansion enjoys access locality.
package ccam

import (
	"context"
	"fmt"
	"sort"

	"dsks/internal/geo"
	"dsks/internal/graph"
	"dsks/internal/storage"
)

// AdjEntry is one record of a node's adjacency list as stored on disk.
type AdjEntry struct {
	Edge   graph.EdgeID
	Other  graph.NodeID
	Length float64
	Weight float64
}

// EdgeInfo describes an edge as needed to anchor mid-edge positions during
// distance computation: its end-nodes and cost.
type EdgeInfo struct {
	N1, N2 graph.NodeID
	Length float64
	Weight float64
}

// Network is the access interface the search algorithms traverse: a node
// count, adjacency-list lookup, and edge resolution. Both the disk-resident
// File and the zero-I/O InMemory satisfy it.
type Network interface {
	NumNodes() int
	// Adjacency fetches node n's adjacency list. Disk-backed implementations
	// honor ctx: a done context aborts the page read (wrapping ctx.Err())
	// before any I/O is charged.
	Adjacency(ctx context.Context, n graph.NodeID) ([]AdjEntry, error)
	// EdgeInfo resolves an edge's end-nodes and cost. Like the node->page
	// directory, the edge directory is memory-resident metadata, so no
	// context is needed.
	EdgeInfo(e graph.EdgeID) (EdgeInfo, error)
}

// On-page encoding:
//
//	page header:  numNodes uint16
//	node entry:   nodeID uint32, degree uint16, degree × adjRecord
//	adjRecord:    edgeID uint32, other uint32, length float64, weight float64
const (
	pageHeaderSize = 2
	nodeHeaderSize = 6
	adjRecordSize  = 24
)

func nodeEntrySize(degree int) int { return nodeHeaderSize + degree*adjRecordSize }

// File is the disk-resident CCAM structure. The node→page directory is
// kept in memory (as in the original design, where it is small and hot);
// adjacency lists live on pages and every lookup goes through the buffer
// pool.
type File struct {
	pool     *storage.BufferPool
	dir      []storage.PageID // node -> page holding its adjacency list
	edges    []EdgeInfo       // edge directory (memory-resident metadata)
	numNodes int
	numPages int
}

// Build lays out g's adjacency lists into pages of the pool's file and
// returns the resulting File. Nodes are sorted by the Z-order code of their
// locations and the ordered sequence is recursively split in two until each
// group fits into a single page.
func Build(g *Graph, pool *storage.BufferPool) (*File, error) {
	n := g.NumNodes()
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	codes := make([]uint64, n)
	for i := 0; i < n; i++ {
		codes[i] = geo.ZCode(g.Node(graph.NodeID(i)).Loc)
	}
	sort.Slice(order, func(i, j int) bool {
		ci, cj := codes[order[i]], codes[order[j]]
		if ci != cj {
			return ci < cj
		}
		return order[i] < order[j]
	})

	f := &File{pool: pool, dir: make([]storage.PageID, n), numNodes: n}
	f.edges = make([]EdgeInfo, g.NumEdges())
	for i := range f.edges {
		e := g.Edge(graph.EdgeID(i))
		f.edges[i] = EdgeInfo{N1: e.N1, N2: e.N2, Length: e.Length, Weight: e.Weight}
	}

	var emit func(group []graph.NodeID) error
	emit = func(group []graph.NodeID) error {
		if len(group) == 0 {
			return nil
		}
		size := pageHeaderSize
		for _, nd := range group {
			size += nodeEntrySize(g.Degree(nd))
		}
		if size > storage.PageSize {
			if len(group) == 1 {
				return fmt.Errorf("ccam: node %d adjacency list (%d edges) exceeds one page",
					group[0], g.Degree(group[0]))
			}
			mid := len(group) / 2
			if err := emit(group[:mid]); err != nil {
				return err
			}
			return emit(group[mid:])
		}
		return f.writeGroup(g, group)
	}
	if err := emit(order); err != nil {
		return nil, err
	}
	if err := pool.Flush(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *File) writeGroup(g *Graph, group []graph.NodeID) error {
	page, err := f.pool.Allocate()
	if err != nil {
		return err
	}
	page.PutUint16(0, uint16(len(group)))
	off := pageHeaderSize
	for _, nd := range group {
		adj := g.Adjacent(nd)
		page.PutUint32(off, uint32(nd))
		page.PutUint16(off+4, uint16(len(adj)))
		off += nodeHeaderSize
		for _, eid := range adj {
			e := g.Edge(eid)
			page.PutUint32(off, uint32(eid))
			page.PutUint32(off+4, uint32(e.OtherEnd(nd)))
			page.PutFloat64(off+8, e.Length)
			page.PutFloat64(off+16, e.Weight)
			off += adjRecordSize
		}
		f.dir[nd] = page.ID()
	}
	f.pool.MarkDirty(page.ID())
	f.numPages++
	return nil
}

// NumNodes returns the number of nodes in the network.
func (f *File) NumNodes() int { return f.numNodes }

// NumPages returns the number of pages the adjacency lists occupy.
func (f *File) NumPages() int { return f.numPages }

// SizeBytes returns the on-disk footprint of the structure.
func (f *File) SizeBytes() int64 { return int64(f.numPages) * storage.PageSize }

// Adjacency fetches node n's adjacency list from disk (through the buffer
// pool, counting a disk access on a miss). A done ctx aborts the read.
func (f *File) Adjacency(ctx context.Context, n graph.NodeID) ([]AdjEntry, error) {
	if n < 0 || int(n) >= f.numNodes {
		return nil, fmt.Errorf("ccam: unknown node %d", n)
	}
	page, err := f.pool.GetCtx(ctx, f.dir[n])
	if err != nil {
		return nil, err
	}
	count := int(page.Uint16(0))
	off := pageHeaderSize
	for i := 0; i < count; i++ {
		id := graph.NodeID(page.Uint32(off))
		deg := int(page.Uint16(off + 4))
		off += nodeHeaderSize
		if id != n {
			off += deg * adjRecordSize
			continue
		}
		out := make([]AdjEntry, deg)
		for j := 0; j < deg; j++ {
			out[j] = AdjEntry{
				Edge:   graph.EdgeID(page.Uint32(off)),
				Other:  graph.NodeID(page.Uint32(off + 4)),
				Length: page.Float64(off + 8),
				Weight: page.Float64(off + 16),
			}
			off += adjRecordSize
		}
		return out, nil
	}
	return nil, fmt.Errorf("ccam: node %d missing from its directory page", n)
}

// EdgeInfo implements Network.
func (f *File) EdgeInfo(e graph.EdgeID) (EdgeInfo, error) {
	if e < 0 || int(e) >= len(f.edges) {
		return EdgeInfo{}, fmt.Errorf("ccam: unknown edge %d", e)
	}
	return f.edges[e], nil
}

// Graph is a minimal alias used by Build; it matches *graph.Graph.
type Graph = graph.Graph

// InMemory adapts a *graph.Graph to the Network interface with zero I/O
// cost; it is used by tests and by CPU-only distance computations.
type InMemory struct{ G *graph.Graph }

// NumNodes implements Network.
func (m InMemory) NumNodes() int { return m.G.NumNodes() }

// Adjacency implements Network. The in-memory adapter performs no I/O and
// ignores ctx.
func (m InMemory) Adjacency(_ context.Context, n graph.NodeID) ([]AdjEntry, error) {
	if n < 0 || int(n) >= m.G.NumNodes() {
		return nil, fmt.Errorf("ccam: unknown node %d", n)
	}
	adj := m.G.Adjacent(n)
	out := make([]AdjEntry, len(adj))
	for i, eid := range adj {
		e := m.G.Edge(eid)
		out[i] = AdjEntry{Edge: eid, Other: e.OtherEnd(n), Length: e.Length, Weight: e.Weight}
	}
	return out, nil
}

// EdgeInfo implements Network.
func (m InMemory) EdgeInfo(e graph.EdgeID) (EdgeInfo, error) {
	if e < 0 || int(e) >= m.G.NumEdges() {
		return EdgeInfo{}, fmt.Errorf("ccam: unknown edge %d", e)
	}
	ed := m.G.Edge(e)
	return EdgeInfo{N1: ed.N1, N2: ed.N2, Length: ed.Length, Weight: ed.Weight}, nil
}
