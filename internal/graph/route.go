package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Route is a least-cost path between two network positions: the traversed
// edges in order and the total cost. The first and last edges are entered
// or left mid-edge at the endpoint positions.
type Route struct {
	Edges []EdgeID
	Cost  float64
}

// ShortestRoute computes the least-cost path from a to b with Dijkstra and
// parent pointers. For positions on the same edge the direct along-edge
// path competes with detours through the end-nodes.
func (g *Graph) ShortestRoute(a, b Position) (Route, error) {
	if int(a.Edge) >= g.NumEdges() || int(b.Edge) >= g.NumEdges() || a.Edge < 0 || b.Edge < 0 {
		return Route{}, fmt.Errorf("%w: route endpoint out of range", ErrUnknownEdge)
	}
	a, b = g.Clamp(a), g.Clamp(b)
	if a.Edge == b.Edge {
		direct := g.SameEdgeCost(a, b)
		if detour, ok := g.routeViaNodes(a, b); ok && detour.Cost < direct {
			return detour, nil
		}
		return Route{Edges: []EdgeID{a.Edge}, Cost: direct}, nil
	}
	r, ok := g.routeViaNodes(a, b)
	if !ok {
		return Route{}, fmt.Errorf("%w: edges %d and %d are not connected", ErrNoPath, a.Edge, b.Edge)
	}
	return r, nil
}

// routeViaNodes runs Dijkstra from a's end-nodes to b's end-nodes,
// tracking the entering edge of each settled node for reconstruction.
func (g *Graph) routeViaNodes(a, b Position) (Route, bool) {
	ea, eb := g.Edge(a.Edge), g.Edge(b.Edge)
	wa1, wa2 := g.CostToEnds(a)
	wb1, wb2 := g.CostToEnds(b)

	dist := make(map[NodeID]float64, 64)
	parentEdge := make(map[NodeID]EdgeID, 64)
	h := &nodeHeap{}
	relax := func(n NodeID, d float64, via EdgeID) {
		if cur, ok := dist[n]; !ok || d < cur {
			dist[n] = d
			parentEdge[n] = via
			heap.Push(h, nodeItem{n, d})
		}
	}
	relax(ea.N1, wa1, a.Edge)
	relax(ea.N2, wa2, a.Edge)
	settled := make(map[NodeID]bool, 64)
	for h.Len() > 0 {
		it := heap.Pop(h).(nodeItem)
		if settled[it.node] || it.dist > dist[it.node] {
			continue
		}
		settled[it.node] = true
		for _, eid := range g.Adjacent(it.node) {
			e := g.Edge(eid)
			relax(e.OtherEnd(it.node), it.dist+e.Weight, eid)
		}
	}
	best := math.Inf(1)
	var endNode NodeID = InvalidNode
	if d, ok := dist[eb.N1]; ok && d+wb1 < best {
		best, endNode = d+wb1, eb.N1
	}
	if d, ok := dist[eb.N2]; ok && d+wb2 < best {
		best, endNode = d+wb2, eb.N2
	}
	if endNode == InvalidNode {
		return Route{}, false
	}
	// Walk the parent edges back from the reached end-node of b's edge.
	var rev []EdgeID
	rev = append(rev, b.Edge)
	n := endNode
	for {
		via := parentEdge[n]
		rev = append(rev, via)
		if via == a.Edge {
			break
		}
		n = g.Edge(via).OtherEnd(n)
	}
	edges := make([]EdgeID, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		// Collapse a duplicated first/last edge (a and b adjacent).
		if len(edges) > 0 && edges[len(edges)-1] == rev[i] {
			continue
		}
		edges = append(edges, rev[i])
	}
	return Route{Edges: edges, Cost: best}, true
}
