package graph

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"dsks/internal/geo"
)

// paperGraph builds the example road network of the paper's Figure 2 in
// spirit: a small graph with known shortest distances.
//
//	n0 --10-- n1 --5-- n2
//	 |                 |
//	 8                 4
//	 |                 |
//	n3 ------12------ n4
func paperGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.AddNode(geo.Point{X: 0, Y: 10})  // n0
	g.AddNode(geo.Point{X: 10, Y: 10}) // n1
	g.AddNode(geo.Point{X: 15, Y: 10}) // n2
	g.AddNode(geo.Point{X: 0, Y: 0})   // n3
	g.AddNode(geo.Point{X: 15, Y: 0})  // n4
	for _, e := range [][3]float64{{0, 1, 10}, {1, 2, 5}, {0, 3, 8}, {2, 4, 4}, {3, 4, 12}} {
		if _, err := g.AddEdge(NodeID(e[0]), NodeID(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	g.Freeze()
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	a := g.AddNode(geo.Point{X: 0, Y: 0})
	b := g.AddNode(geo.Point{X: 1, Y: 0})
	if _, err := g.AddEdge(a, a, 5); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := g.AddEdge(a, NodeID(99), 5); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := g.AddEdge(a, b, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := g.AddEdge(a, b, math.NaN()); err == nil {
		t.Error("NaN weight accepted")
	}
	if _, err := g.AddEdge(b, a, 2); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	// Reference node is the smaller ID even when given reversed.
	e := g.Edge(0)
	if e.N1 != a || e.N2 != b {
		t.Errorf("reference node not normalized: %+v", e)
	}
}

func TestEdgeBetween(t *testing.T) {
	g := paperGraph(t)
	e, ok := g.EdgeBetween(0, 1)
	if !ok || e.Weight != 10 {
		t.Fatalf("EdgeBetween(0,1) = %+v, %v", e, ok)
	}
	if _, ok := g.EdgeBetween(0, 4); ok {
		t.Error("nonexistent edge found")
	}
	if _, ok := g.EdgeBetween(0, NodeID(99)); ok {
		t.Error("edge to invalid node found")
	}
}

func TestDegreesAndAdjacency(t *testing.T) {
	g := paperGraph(t)
	if g.Degree(0) != 2 || g.Degree(2) != 2 || g.Degree(1) != 2 {
		t.Errorf("degrees wrong: %d %d %d", g.Degree(0), g.Degree(2), g.Degree(1))
	}
	// Adjacency sorted by the opposite end node after Freeze.
	adj := g.Adjacent(0)
	if g.Edge(adj[0]).OtherEnd(0) > g.Edge(adj[1]).OtherEnd(0) {
		t.Error("adjacency not sorted by opposite node")
	}
}

func TestWeightAtAndPointAt(t *testing.T) {
	g := paperGraph(t)
	e, _ := g.EdgeBetween(0, 1) // length 10 (Euclidean), weight 10
	if got := g.WeightAt(e.ID, 5); math.Abs(got-5) > 1e-12 {
		t.Errorf("WeightAt mid = %v", got)
	}
	if got := g.WeightAt(e.ID, -3); got != 0 {
		t.Errorf("WeightAt clamps low: %v", got)
	}
	if got := g.WeightAt(e.ID, 100); math.Abs(got-10) > 1e-12 {
		t.Errorf("WeightAt clamps high: %v", got)
	}
	p := g.PointAt(e.ID, 5)
	if math.Abs(p.X-5) > 1e-12 || math.Abs(p.Y-10) > 1e-12 {
		t.Errorf("PointAt = %v", p)
	}
}

func TestWeightAtNonDistanceCost(t *testing.T) {
	// Travel-time cost model: weight != length. w(n1,p) must scale with
	// the geometric offset fraction.
	g := New()
	a := g.AddNode(geo.Point{X: 0, Y: 0})
	b := g.AddNode(geo.Point{X: 10, Y: 0})
	eid, err := g.AddEdge(a, b, 60) // 60 cost units over 10 distance units
	if err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	if got := g.WeightAt(eid, 5); math.Abs(got-30) > 1e-12 {
		t.Errorf("WeightAt half = %v, want 30", got)
	}
}

func TestConnected(t *testing.T) {
	g := paperGraph(t)
	if !g.Connected() {
		t.Error("paper graph should be connected")
	}
	g2 := New()
	g2.AddNode(geo.Point{})
	g2.AddNode(geo.Point{X: 1})
	g2.AddNode(geo.Point{X: 2})
	if _, err := g2.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g2.Freeze()
	if g2.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if !New().Connected() {
		t.Error("empty graph should be connected")
	}
}

func TestDistancesFromNode(t *testing.T) {
	g := paperGraph(t)
	dist := g.DistancesFromNode(0, Inf)
	want := []float64{0, 10, 15, 8, 19}
	for i, w := range want {
		if math.Abs(dist[i]-w) > 1e-9 {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], w)
		}
	}
}

func TestDistancesBound(t *testing.T) {
	g := paperGraph(t)
	dist := g.DistancesFromNode(0, 9)
	if !math.IsInf(dist[2], 1) {
		t.Errorf("node beyond bound explored: dist[2]=%v", dist[2])
	}
	if dist[3] != 8 {
		t.Errorf("node within bound missing: dist[3]=%v", dist[3])
	}
}

func TestNetworkDistSameEdge(t *testing.T) {
	g := paperGraph(t)
	e, _ := g.EdgeBetween(0, 1)
	a := Position{Edge: e.ID, Offset: 2}
	b := Position{Edge: e.ID, Offset: 7}
	if got := g.NetworkDist(a, b); math.Abs(got-5) > 1e-9 {
		t.Errorf("same-edge dist = %v", got)
	}
	if got := g.NetworkDist(a, a); got != 0 {
		t.Errorf("identical position dist = %v", got)
	}
}

func TestNetworkDistCrossEdge(t *testing.T) {
	g := paperGraph(t)
	e01, _ := g.EdgeBetween(0, 1)
	e24, _ := g.EdgeBetween(2, 4)
	// a at geometric offset 3 from n0 on (0,1): edge length 10, weight 10,
	// so cost(a, n1) = 7. b at geometric offset 1 from n2 on (2,4): edge
	// length 10, weight 4, so cost(n2, b) = 0.4.
	a := Position{Edge: e01.ID, Offset: 3}
	b := Position{Edge: e24.ID, Offset: 1}
	// Best path: a->n1->n2->b = 7 + 5 + 0.4 = 12.4
	// (vs a->n0->n3->n4->b = 3 + 8 + 12 + 3.6 = 26.6).
	if got := g.NetworkDist(a, b); math.Abs(got-12.4) > 1e-9 {
		t.Errorf("cross-edge dist = %v, want 12.4", got)
	}
	// Symmetry.
	if got := g.NetworkDist(b, a); math.Abs(got-12.4) > 1e-9 {
		t.Errorf("dist not symmetric: %v", got)
	}
}

func TestNetworkDistSameEdgeDetour(t *testing.T) {
	// When the along-edge path is longer than a detour through other
	// edges, NetworkDist must take the detour. Construct a triangle where
	// the long edge (weight 100) is undercut by two short ones.
	g := New()
	a := g.AddNode(geo.Point{X: 0, Y: 0})
	b := g.AddNode(geo.Point{X: 100, Y: 0})
	c := g.AddNode(geo.Point{X: 50, Y: 1})
	long, err := g.AddEdge(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(a, c, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(c, b, 2); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	p1 := Position{Edge: long, Offset: 1}
	p2 := Position{Edge: long, Offset: 99}
	// Along edge: 98. Via ends: 1 + (2+2) + 1 = 6.
	if got := g.NetworkDist(p1, p2); math.Abs(got-6) > 1e-9 {
		t.Errorf("detour dist = %v, want 6", got)
	}
}

func TestPositionHelpers(t *testing.T) {
	g := paperGraph(t)
	e, _ := g.EdgeBetween(0, 1)
	p := g.Clamp(Position{Edge: e.ID, Offset: 50})
	if p.Offset != e.Length {
		t.Errorf("Clamp high = %v", p.Offset)
	}
	to1, to2 := g.CostToEnds(Position{Edge: e.ID, Offset: 4})
	if math.Abs(to1-4) > 1e-9 || math.Abs(to2-6) > 1e-9 {
		t.Errorf("CostToEnds = %v, %v", to1, to2)
	}
	pos, err := g.AtNode(0)
	if err != nil {
		t.Fatal(err)
	}
	// Position must actually be at node 0's location.
	if loc := g.Location(pos); loc.Dist(g.Node(0).Loc) > 1e-9 {
		t.Errorf("AtNode location = %v", loc)
	}
	// AtNode for a node that is N2 of its first edge.
	pos4, err := g.AtNode(4)
	if err != nil {
		t.Fatal(err)
	}
	if loc := g.Location(pos4); loc.Dist(g.Node(4).Loc) > 1e-9 {
		t.Errorf("AtNode(4) location = %v", loc)
	}
}

func TestGraphIORoundTrip(t *testing.T) {
	g := paperGraph(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(EdgeID(i)), g2.Edge(EdgeID(i))
		if a.N1 != b.N1 || a.N2 != b.N2 || math.Abs(a.Weight-b.Weight) > 1e-12 {
			t.Errorf("edge %d changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestGraphReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"x 5\n",
		"n 1\nv 0 0\n",                          // short node record
		"n 1\nv 1 0 0\n",                        // wrong id
		"n 2\nv 0 0 0\nv 1 1 1\nm 1\ne 0 0 5\n", // self loop
		"n 1\nv 0 0 0\nm 1\n",                   // missing edge line
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewBufferString(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
}

func TestRandomGraphDijkstraMatchesBellmanFord(t *testing.T) {
	// Property test: Dijkstra distances equal Bellman-Ford on a random
	// connected graph.
	rng := rand.New(rand.NewSource(7))
	g := New()
	const n = 40
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	// Spanning chain plus random chords.
	for i := 1; i < n; i++ {
		if _, err := g.AddEdge(NodeID(i-1), NodeID(i), 1+rng.Float64()*9); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		_, _ = g.AddEdge(a, b, 1+rng.Float64()*9)
	}
	g.Freeze()

	src := NodeID(0)
	got := g.DistancesFromNode(src, Inf)

	// Bellman-Ford reference.
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Inf(1)
	}
	want[src] = 0
	for iter := 0; iter < n; iter++ {
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(EdgeID(e))
			if d := want[ed.N1] + ed.Weight; d < want[ed.N2] {
				want[ed.N2] = d
			}
			if d := want[ed.N2] + ed.Weight; d < want[ed.N1] {
				want[ed.N1] = d
			}
		}
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("node %d: dijkstra %v vs bellman-ford %v", i, got[i], want[i])
		}
	}
}

func TestNetworkDistTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New()
	const n = 25
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	for i := 1; i < n; i++ {
		if _, err := g.AddEdge(NodeID(i-1), NodeID(i), 1+rng.Float64()*5); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a != b {
			_, _ = g.AddEdge(a, b, 1+rng.Float64()*5)
		}
	}
	g.Freeze()
	randPos := func() Position {
		e := g.Edge(EdgeID(rng.Intn(g.NumEdges())))
		return Position{Edge: e.ID, Offset: rng.Float64() * e.Length}
	}
	for trial := 0; trial < 50; trial++ {
		a, b, c := randPos(), randPos(), randPos()
		ab, bc, ac := g.NetworkDist(a, b), g.NetworkDist(b, c), g.NetworkDist(a, c)
		if ac > ab+bc+1e-9 {
			t.Fatalf("triangle inequality violated: d(a,c)=%v > %v+%v", ac, ab, bc)
		}
	}
}
