package graph

import (
	"fmt"

	"dsks/internal/geo"
	"dsks/internal/rtree"
	"dsks/internal/storage"
)

// Snapper maps arbitrary planar points to their closest road segment —
// the preprocessing step the paper applies to objects that "do not lie on
// any edge in the road network". It is a network R-tree over the edge
// MBRs (Section 2.2) with exact point-to-segment refinement.
type Snapper struct {
	g    *Graph
	tree *rtree.Tree
}

// NewSnapper bulk-loads the network R-tree over g's edges. The tree lives
// on its own in-memory page file; snapping is a build-time operation, so
// its I/O is not charged to query accounting.
func NewSnapper(g *Graph) (*Snapper, error) {
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("%w: cannot snap onto a network with no edges", ErrEmptyNetwork)
	}
	entries := make([]rtree.Entry, g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		entries[i] = rtree.Entry{Rect: g.EdgeMBR(EdgeID(i)), Ref: uint64(i)}
	}
	pool := storage.NewBufferPool(storage.NewPageFile(), 4096, nil)
	tree, err := rtree.BulkLoad(pool, entries)
	if err != nil {
		return nil, err
	}
	return &Snapper{g: g, tree: tree}, nil
}

// Snap returns the network position closest to p (Euclidean distance to
// the road segment) and that distance.
func (s *Snapper) Snap(p geo.Point) (Position, float64, error) {
	best, dist, ok := s.tree.Nearest(p, func(e rtree.Entry) float64 {
		d, _ := s.segDist(EdgeID(e.Ref), p)
		return d
	})
	if !ok {
		return Position{}, 0, fmt.Errorf("%w: snap found no edge", ErrEmptyNetwork)
	}
	eid := EdgeID(best.Ref)
	_, off := s.segDist(eid, p)
	return Position{Edge: eid, Offset: off}, dist, nil
}

func (s *Snapper) segDist(e EdgeID, p geo.Point) (dist, offset float64) {
	ed := s.g.Edge(e)
	return geo.PointSegment(p, s.g.Node(ed.N1).Loc, s.g.Node(ed.N2).Loc)
}
