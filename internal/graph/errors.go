package graph

import "errors"

// Sentinel errors for the graph package's query operations, wrapped with
// %w at every return site so callers can classify failures with
// errors.Is across the package boundary.
var (
	// ErrUnknownEdge reports a Position whose EdgeID is outside the network.
	ErrUnknownEdge = errors.New("graph: unknown edge")
	// ErrNoPath reports endpoints that no chain of road segments connects.
	ErrNoPath = errors.New("graph: no path between the endpoints")
	// ErrEmptyNetwork reports a spatial operation on a network with no
	// edges (e.g. snapping a point onto nothing).
	ErrEmptyNetwork = errors.New("graph: empty network")
)
