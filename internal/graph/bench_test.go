package graph

import (
	"math/rand"
	"testing"

	"dsks/internal/geo"
)

func benchGraph(b *testing.B, n int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{X: rng.Float64() * geo.WorldMax, Y: rng.Float64() * geo.WorldMax})
	}
	for i := 1; i < n; i++ {
		if _, err := g.AddEdge(NodeID(i-1), NodeID(i), 1+rng.Float64()*10); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 2*n; i++ {
		a, c := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a != c {
			_, _ = g.AddEdge(a, c, 1+rng.Float64()*10)
		}
	}
	g.Freeze()
	return g
}

func BenchmarkDijkstraFull(b *testing.B) {
	g := benchGraph(b, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DistancesFromNode(NodeID(i%g.NumNodes()), Inf)
	}
}

func BenchmarkDijkstraBounded(b *testing.B) {
	g := benchGraph(b, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DistancesFromNode(NodeID(i%g.NumNodes()), 8)
	}
}

func BenchmarkNetworkDist(b *testing.B) {
	g := benchGraph(b, 2_000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := Position{Edge: EdgeID(rng.Intn(g.NumEdges()))}
		c := Position{Edge: EdgeID(rng.Intn(g.NumEdges()))}
		g.NetworkDist(a, c)
	}
}

func BenchmarkSnap(b *testing.B) {
	g := benchGraph(b, 5_000)
	s, err := NewSnapper(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geo.Point{X: rng.Float64() * geo.WorldMax, Y: rng.Float64() * geo.WorldMax}
		if _, _, err := s.Snap(p); err != nil {
			b.Fatal(err)
		}
	}
}
