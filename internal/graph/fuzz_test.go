package graph

import (
	"bytes"
	"testing"
)

// FuzzLoadGraph feeds arbitrary bytes to the text-format reader. Read must
// never panic; when it accepts an input, the graph must survive a
// Write/Read round trip with identical node and edge counts.
func FuzzLoadGraph(f *testing.F) {
	f.Add([]byte("n 2\nv 0 1 2\nv 1 3 4\nm 1\ne 0 1 5\n"))
	f.Add([]byte("n 0\nm 0\n"))
	f.Add([]byte("# comment\nn 1\nv 0 0 0\nm 0\n"))
	f.Add([]byte("n 2\nv 0 1 2\nv 1 3 4\nm 1\ne 0 4294967296 5\n"))
	f.Add([]byte("n 9999999999999999999\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("Write of accepted graph failed: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read of written graph failed: %v\ninput: %q", err, data)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d edges",
				g.NumNodes(), g2.NumNodes(), g.NumEdges(), g2.NumEdges())
		}
	})
}
