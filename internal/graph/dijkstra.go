package graph

import (
	"container/heap"
	"math"
)

// This file provides exact in-memory shortest-path computation. It serves
// as ground truth in tests and as the CPU-side of the pairwise network
// distance engine (the disk-resident CCAM traversal is accounted
// separately by the search algorithms).

// nodeHeap is a min-priority queue of (node, dist) used by Dijkstra.
type nodeItem struct {
	node NodeID
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Inf is the distance reported for unreachable targets.
var Inf = math.Inf(1)

// DistancesFromNode runs Dijkstra from node src and returns the network
// distance to every node. Distances above bound are not explored; pass
// graph.Inf for an unbounded search. Unreached nodes report Inf.
func (g *Graph) DistancesFromNode(src NodeID, bound float64) []float64 {
	dist := make([]float64, g.NumNodes())
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	h := &nodeHeap{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(nodeItem)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		if it.dist > bound {
			break
		}
		for _, eid := range g.Adjacent(it.node) {
			e := g.Edge(eid)
			m := e.OtherEnd(it.node)
			if d := it.dist + e.Weight; d < dist[m] {
				dist[m] = d
				heap.Push(h, nodeItem{m, d})
			}
		}
	}
	return dist
}

// multiSourceDistances runs Dijkstra seeded with several (node, cost)
// sources, which is how distances from a mid-edge position are computed.
func (g *Graph) multiSourceDistances(seeds []nodeItem, bound float64) []float64 {
	dist := make([]float64, g.NumNodes())
	for i := range dist {
		dist[i] = Inf
	}
	h := &nodeHeap{}
	for _, s := range seeds {
		if s.dist < dist[s.node] {
			dist[s.node] = s.dist
			heap.Push(h, s)
		}
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(nodeItem)
		if it.dist > dist[it.node] {
			continue
		}
		if it.dist > bound {
			break
		}
		for _, eid := range g.Adjacent(it.node) {
			e := g.Edge(eid)
			m := e.OtherEnd(it.node)
			if d := it.dist + e.Weight; d < dist[m] {
				dist[m] = d
				heap.Push(h, nodeItem{m, d})
			}
		}
	}
	return dist
}

// DistancesFromPosition returns the network distance from position p to
// every node, bounded by bound.
func (g *Graph) DistancesFromPosition(p Position, bound float64) []float64 {
	p = g.Clamp(p)
	e := g.Edge(p.Edge)
	w1, w2 := g.CostToEnds(p)
	return g.multiSourceDistances([]nodeItem{{e.N1, w1}, {e.N2, w2}}, bound)
}

// NetworkDist returns the exact network distance between two positions,
// following the paper's Equation 1: the distance to a point on edge
// (n1, n2) is min over both end-nodes of (distance to end + offset cost),
// with the special case of both points sharing an edge, where the direct
// along-edge path competes with paths through the end-nodes.
func (g *Graph) NetworkDist(a, b Position) float64 {
	a, b = g.Clamp(a), g.Clamp(b)
	direct := Inf
	if a.Edge == b.Edge {
		direct = g.SameEdgeCost(a, b)
		if direct == 0 {
			return 0
		}
	}
	eb := g.Edge(b.Edge)
	dist := g.DistancesFromPosition(a, Inf)
	b1, b2 := g.CostToEnds(b)
	viaNodes := math.Min(dist[eb.N1]+b1, dist[eb.N2]+b2)
	return math.Min(direct, viaNodes)
}
