package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dsks/internal/geo"
)

func pt(x, y float64) geo.Point { return geo.Point{X: x, Y: y} }

// maxNodeID bounds parsed node counts and edge endpoints so narrowing to
// the int32-backed NodeID can never wrap.
const maxNodeID = 1<<31 - 1

// The text format is a simple, diff-friendly encoding compatible with the
// common "node / edge list" distribution format of road-network datasets:
//
//	n <numNodes>
//	v <id> <x> <y>          (numNodes lines, ids must be 0..numNodes-1)
//	m <numEdges>
//	e <n1> <n2> <weight>    (numEdges lines)

// Write encodes g into w in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "n %d\n", g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		nd := g.Node(NodeID(i))
		fmt.Fprintf(bw, "v %d %g %g\n", nd.ID, nd.Loc.X, nd.Loc.Y)
	}
	fmt.Fprintf(bw, "m %d\n", g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		fmt.Fprintf(bw, "e %d %d %g\n", e.N1, e.N2, e.Weight)
	}
	return bw.Flush()
}

// Read decodes a graph from r and freezes it.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	g := New()
	line := 0
	next := func() ([]string, error) {
		for sc.Scan() {
			line++
			txt := strings.TrimSpace(sc.Text())
			if txt == "" || strings.HasPrefix(txt, "#") {
				continue
			}
			return strings.Fields(txt), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}
	hdr, err := next()
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if len(hdr) != 2 || hdr[0] != "n" {
		return nil, fmt.Errorf("graph: line %d: expected node header, got %q", line, strings.Join(hdr, " "))
	}
	nn, err := strconv.Atoi(hdr[1])
	if err != nil || nn < 0 || int64(nn) > int64(maxNodeID) {
		return nil, fmt.Errorf("graph: line %d: bad node count %q", line, hdr[1])
	}
	for i := 0; i < nn; i++ {
		f, err := next()
		if err != nil {
			return nil, fmt.Errorf("graph: reading node %d: %w", i, err)
		}
		if len(f) != 4 || f[0] != "v" {
			return nil, fmt.Errorf("graph: line %d: bad node record", line)
		}
		id, err1 := strconv.Atoi(f[1])
		x, err2 := strconv.ParseFloat(f[2], 64)
		y, err3 := strconv.ParseFloat(f[3], 64)
		if err1 != nil || err2 != nil || err3 != nil || id != i {
			return nil, fmt.Errorf("graph: line %d: bad node record", line)
		}
		g.AddNode(pt(x, y))
	}
	hdr, err = next()
	if err != nil {
		return nil, fmt.Errorf("graph: reading edge header: %w", err)
	}
	if len(hdr) != 2 || hdr[0] != "m" {
		return nil, fmt.Errorf("graph: line %d: expected edge header", line)
	}
	ne, err := strconv.Atoi(hdr[1])
	if err != nil || ne < 0 {
		return nil, fmt.Errorf("graph: line %d: bad edge count %q", line, hdr[1])
	}
	for i := 0; i < ne; i++ {
		f, err := next()
		if err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		if len(f) != 4 || f[0] != "e" {
			return nil, fmt.Errorf("graph: line %d: bad edge record", line)
		}
		a, err1 := strconv.Atoi(f[1])
		b, err2 := strconv.Atoi(f[2])
		w, err3 := strconv.ParseFloat(f[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("graph: line %d: bad edge record", line)
		}
		// Range-check before narrowing to NodeID: a value beyond int32
		// would wrap and could alias a valid node.
		if a < 0 || a >= nn || b < 0 || b >= nn {
			return nil, fmt.Errorf("graph: line %d: edge endpoint out of range", line)
		}
		if _, err := g.AddEdge(NodeID(a), NodeID(b), w); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
	}
	g.Freeze()
	return g, nil
}
