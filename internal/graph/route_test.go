package graph

import (
	"math"
	"math/rand"
	"testing"

	"dsks/internal/geo"
)

func TestShortestRouteMatchesNetworkDist(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := New()
	const n = 60
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
	}
	for i := 1; i < n; i++ {
		if _, err := g.AddEdge(NodeID(i-1), NodeID(i), 1+rng.Float64()*8); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 70; i++ {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a != b {
			_, _ = g.AddEdge(a, b, 1+rng.Float64()*8)
		}
	}
	g.Freeze()
	randPos := func() Position {
		e := g.Edge(EdgeID(rng.Intn(g.NumEdges())))
		return Position{Edge: e.ID, Offset: rng.Float64() * e.Length}
	}
	for trial := 0; trial < 60; trial++ {
		a, b := randPos(), randPos()
		r, err := g.ShortestRoute(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := g.NetworkDist(a, b)
		if math.Abs(r.Cost-want) > 1e-9 {
			t.Fatalf("route cost %v, NetworkDist %v", r.Cost, want)
		}
		if len(r.Edges) == 0 {
			t.Fatal("route has no edges")
		}
		// Endpoints' edges terminate the route.
		if r.Edges[0] != a.Edge || r.Edges[len(r.Edges)-1] != b.Edge {
			t.Fatalf("route %v does not start/end on the endpoint edges %d/%d",
				r.Edges, a.Edge, b.Edge)
		}
		// Consecutive edges share a node.
		for i := 1; i < len(r.Edges); i++ {
			e1, e2 := g.Edge(r.Edges[i-1]), g.Edge(r.Edges[i])
			if e1.N1 != e2.N1 && e1.N1 != e2.N2 && e1.N2 != e2.N1 && e1.N2 != e2.N2 {
				t.Fatalf("route edges %d and %d not adjacent", r.Edges[i-1], r.Edges[i])
			}
		}
	}
}

func TestShortestRouteSameEdge(t *testing.T) {
	g := paperGraph(t)
	e, _ := g.EdgeBetween(0, 1)
	r, err := g.ShortestRoute(Position{Edge: e.ID, Offset: 2}, Position{Edge: e.ID, Offset: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Edges) != 1 || r.Edges[0] != e.ID || math.Abs(r.Cost-6) > 1e-9 {
		t.Fatalf("same-edge route = %+v", r)
	}
}

func TestShortestRouteSameEdgeDetour(t *testing.T) {
	// The long-edge triangle from the NetworkDist test: the detour must be
	// taken and reported edge-by-edge.
	g := New()
	a := g.AddNode(geo.Point{X: 0, Y: 0})
	b := g.AddNode(geo.Point{X: 100, Y: 0})
	c := g.AddNode(geo.Point{X: 50, Y: 1})
	long, err := g.AddEdge(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(a, c, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(c, b, 2); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	r, err := g.ShortestRoute(Position{Edge: long, Offset: 1}, Position{Edge: long, Offset: 99})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Cost-6) > 1e-9 {
		t.Fatalf("detour cost %v, want 6", r.Cost)
	}
	if len(r.Edges) != 4 { // long, a-c, c-b, long
		t.Fatalf("detour route edges = %v", r.Edges)
	}
}

func TestShortestRouteDisconnected(t *testing.T) {
	g := New()
	g.AddNode(geo.Point{})
	g.AddNode(geo.Point{X: 1})
	g.AddNode(geo.Point{X: 10})
	g.AddNode(geo.Point{X: 11})
	e1, err := g.AddEdge(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := g.AddEdge(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	if _, err := g.ShortestRoute(Position{Edge: e1}, Position{Edge: e2}); err == nil {
		t.Error("route across components succeeded")
	}
	if _, err := g.ShortestRoute(Position{Edge: EdgeID(99)}, Position{Edge: e1}); err == nil {
		t.Error("unknown edge accepted")
	}
}
