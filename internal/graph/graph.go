// Package graph models the road network of the paper: a weighted,
// bidirectional graph G = (V, E, W) whose nodes are road intersections and
// whose edges are road segments. Spatio-textual objects lie on edges at an
// offset from the edge's reference node (the end-node with the smaller ID).
package graph

import (
	"fmt"
	"math"
	"sort"

	"dsks/internal/geo"
)

// NodeID identifies a road node.
type NodeID int32

// EdgeID identifies a road segment.
type EdgeID int32

// InvalidNode and InvalidEdge are null references.
const (
	InvalidNode NodeID = -1
	InvalidEdge EdgeID = -1
)

// Node is a road intersection.
type Node struct {
	ID  NodeID
	Loc geo.Point
}

// Edge is a bidirectional road segment between two nodes. N1 is always the
// reference node (the smaller ID). Length is the geometric length of the
// segment; Weight is its traversal cost (distance or travel time). For a
// distance cost model Weight == Length.
type Edge struct {
	ID     EdgeID
	N1, N2 NodeID
	Length float64
	Weight float64
}

// OtherEnd returns the end-node opposite to n, or InvalidNode if n is not
// an end-node of e.
func (e Edge) OtherEnd(n NodeID) NodeID {
	switch n {
	case e.N1:
		return e.N2
	case e.N2:
		return e.N1
	}
	return InvalidNode
}

// Graph is the in-memory road network used to build the disk-resident CCAM
// structure and the object indexes. It is immutable once built (construction
// via AddNode/AddEdge, then Freeze).
type Graph struct {
	nodes  []Node
	edges  []Edge
	adj    [][]EdgeID // adjacency: node -> incident edges
	frozen bool
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddNode appends a node at p and returns its ID.
func (g *Graph) AddNode(p geo.Point) NodeID {
	if g.frozen {
		panic("graph: AddNode after Freeze")
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Loc: p})
	g.adj = append(g.adj, nil)
	return id
}

// AddEdge connects a and b with the given weight. The geometric length is
// the Euclidean distance between the endpoints; the reference node is the
// smaller ID. It returns the new edge's ID, or an error for invalid
// endpoints, self-loops or non-positive weight.
func (g *Graph) AddEdge(a, b NodeID, weight float64) (EdgeID, error) {
	if g.frozen {
		panic("graph: AddEdge after Freeze")
	}
	if a == b {
		return InvalidEdge, fmt.Errorf("graph: self-loop at node %d", a)
	}
	if !g.validNode(a) || !g.validNode(b) {
		return InvalidEdge, fmt.Errorf("graph: edge (%d,%d) references unknown node", a, b)
	}
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return InvalidEdge, fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", a, b, weight)
	}
	if a > b {
		a, b = b, a
	}
	length := g.nodes[a].Loc.Dist(g.nodes[b].Loc)
	if length == 0 {
		// Coincident endpoints: use the weight as a nominal length so that
		// offsets along the edge remain well defined.
		length = weight
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, N1: a, N2: b, Length: length, Weight: weight})
	g.adj[a] = append(g.adj[a], id)
	g.adj[b] = append(g.adj[b], id)
	return id, nil
}

// Freeze finalizes the graph: adjacency lists are sorted by the opposite
// end-node ID for deterministic traversal. Further mutation panics.
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	for n := range g.adj {
		nid := NodeID(n)
		lst := g.adj[n]
		sort.Slice(lst, func(i, j int) bool {
			return g.edges[lst[i]].OtherEnd(nid) < g.edges[lst[j]].OtherEnd(nid)
		})
	}
	g.frozen = true
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Adjacent returns the IDs of the edges incident to n. The returned slice
// must not be modified.
func (g *Graph) Adjacent(n NodeID) []EdgeID { return g.adj[n] }

// Degree returns the number of edges incident to n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// EdgeBetween returns the edge connecting a and b, if any. When parallel
// edges exist the one with the smallest weight is returned (it dominates
// any shortest path).
func (g *Graph) EdgeBetween(a, b NodeID) (Edge, bool) {
	if !g.validNode(a) || !g.validNode(b) {
		return Edge{}, false
	}
	best, found := Edge{}, false
	for _, eid := range g.adj[a] {
		e := g.edges[eid]
		if e.OtherEnd(a) == b && (!found || e.Weight < best.Weight) {
			best, found = e, true
		}
	}
	return best, found
}

// EdgeMBR returns the minimum bounding rectangle of edge e's segment.
func (g *Graph) EdgeMBR(id EdgeID) geo.Rect {
	e := g.edges[id]
	return geo.RectOf(g.nodes[e.N1].Loc, g.nodes[e.N2].Loc)
}

// EdgeCenter returns the center point of the edge's segment; its Z-order
// code is the B+-tree key of the edge in the inverted indexes.
func (g *Graph) EdgeCenter(id EdgeID) geo.Point {
	e := g.edges[id]
	return geo.RectOf(g.nodes[e.N1].Loc, g.nodes[e.N2].Loc).Center()
}

// PointAt returns the location of the point at geometric offset d from the
// reference node N1 along edge e. d is clamped to [0, Length].
func (g *Graph) PointAt(id EdgeID, d float64) geo.Point {
	e := g.edges[id]
	if e.Length == 0 {
		return g.nodes[e.N1].Loc
	}
	return g.nodes[e.N1].Loc.Lerp(g.nodes[e.N2].Loc, d/e.Length)
}

// WeightAt converts a geometric offset along edge e (distance from N1) into
// a traversal cost from N1, per the paper's w(n1,p) = w(n1,n2)·d(n1,p)/d(n1,n2).
func (g *Graph) WeightAt(id EdgeID, d float64) float64 {
	e := g.edges[id]
	if e.Length == 0 {
		return 0
	}
	if d < 0 {
		d = 0
	} else if d > e.Length {
		d = e.Length
	}
	return e.Weight * d / e.Length
}

// Connected reports whether every node is reachable from node 0
// (breadth-first over edges). An empty graph is connected.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(g.nodes))
	queue := []NodeID{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, eid := range g.adj[n] {
			m := g.edges[eid].OtherEnd(n)
			if !seen[m] {
				seen[m] = true
				count++
				queue = append(queue, m)
			}
		}
	}
	return count == len(g.nodes)
}

// MBR returns the bounding rectangle of all node locations.
func (g *Graph) MBR() geo.Rect {
	r := geo.EmptyRect()
	for i := range g.nodes {
		r.ExpandPoint(g.nodes[i].Loc)
	}
	return r
}

func (g *Graph) validNode(n NodeID) bool { return n >= 0 && int(n) < len(g.nodes) }
