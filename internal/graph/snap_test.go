package graph

import (
	"math"
	"math/rand"
	"testing"

	"dsks/internal/geo"
)

func TestSnapperExactOnEdge(t *testing.T) {
	g := paperGraph(t)
	s, err := NewSnapper(g)
	if err != nil {
		t.Fatal(err)
	}
	// A point exactly on edge (0,1): y = 10, x in [0, 10].
	pos, dist, err := s.Snap(geo.Point{X: 4, Y: 10})
	if err != nil {
		t.Fatal(err)
	}
	if dist > 1e-9 {
		t.Errorf("on-edge point snapped at distance %v", dist)
	}
	e, _ := g.EdgeBetween(0, 1)
	if pos.Edge != e.ID || math.Abs(pos.Offset-4) > 1e-9 {
		t.Errorf("snap = %+v, want edge %d offset 4", pos, e.ID)
	}
}

func TestSnapperOffEdge(t *testing.T) {
	g := paperGraph(t)
	s, err := NewSnapper(g)
	if err != nil {
		t.Fatal(err)
	}
	// A point 3 above edge (0,1)'s midpoint.
	pos, dist, err := s.Snap(geo.Point{X: 5, Y: 13})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist-3) > 1e-9 {
		t.Errorf("snap distance %v, want 3", dist)
	}
	if math.Abs(pos.Offset-5) > 1e-9 {
		t.Errorf("snap offset %v, want 5", pos.Offset)
	}
}

func TestSnapperMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := New()
	const n = 60
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
	}
	for i := 1; i < n; i++ {
		if _, err := g.AddEdge(NodeID(i-1), NodeID(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a != b {
			_, _ = g.AddEdge(a, b, 1)
		}
	}
	g.Freeze()
	s, err := NewSnapper(g)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		p := geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		_, gotDist, err := s.Snap(p)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(EdgeID(e))
			d, _ := geo.PointSegment(p, g.Node(ed.N1).Loc, g.Node(ed.N2).Loc)
			if d < best {
				best = d
			}
		}
		if math.Abs(gotDist-best) > 1e-9 {
			t.Fatalf("snap distance %v, brute force %v", gotDist, best)
		}
	}
}

func TestSnapperEmptyNetwork(t *testing.T) {
	if _, err := NewSnapper(New()); err == nil {
		t.Error("empty network accepted")
	}
}

func TestPointSegment(t *testing.T) {
	a, b := geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 0}
	d, off := geo.PointSegment(geo.Point{X: 5, Y: 4}, a, b)
	if math.Abs(d-4) > 1e-12 || math.Abs(off-5) > 1e-12 {
		t.Errorf("mid: d=%v off=%v", d, off)
	}
	// Beyond the end: clamps to b.
	d, off = geo.PointSegment(geo.Point{X: 13, Y: 4}, a, b)
	if math.Abs(d-5) > 1e-12 || math.Abs(off-10) > 1e-12 {
		t.Errorf("clamp: d=%v off=%v", d, off)
	}
	// Degenerate segment.
	d, off = geo.PointSegment(geo.Point{X: 3, Y: 4}, a, a)
	if math.Abs(d-5) > 1e-12 || off != 0 {
		t.Errorf("degenerate: d=%v off=%v", d, off)
	}
}
