package graph

import (
	"fmt"

	"dsks/internal/geo"
)

// Position locates a point on the road network: an edge and the geometric
// offset (distance along the segment) from the edge's reference node N1.
// Both query locations and spatio-textual objects are Positions.
type Position struct {
	Edge   EdgeID
	Offset float64
}

// AtNode returns the Position of node n on one of its incident edges
// (offset 0 if n is the reference node, else the full edge length).
func (g *Graph) AtNode(n NodeID) (Position, error) {
	adj := g.Adjacent(n)
	if len(adj) == 0 {
		return Position{}, fmt.Errorf("graph: node %d is isolated", n)
	}
	e := g.Edge(adj[0])
	if e.N1 == n {
		return Position{Edge: e.ID, Offset: 0}, nil
	}
	return Position{Edge: e.ID, Offset: e.Length}, nil
}

// Clamp returns p with its offset limited to the edge's length.
func (g *Graph) Clamp(p Position) Position {
	e := g.Edge(p.Edge)
	if p.Offset < 0 {
		p.Offset = 0
	} else if p.Offset > e.Length {
		p.Offset = e.Length
	}
	return p
}

// CostToEnds returns the traversal cost from position p to the two
// end-nodes (N1, N2) of its edge.
func (g *Graph) CostToEnds(p Position) (toN1, toN2 float64) {
	e := g.Edge(p.Edge)
	toN1 = g.WeightAt(p.Edge, p.Offset)
	return toN1, e.Weight - toN1
}

// SameEdgeCost returns the traversal cost between two positions on the same
// edge. It panics if they are on different edges.
func (g *Graph) SameEdgeCost(a, b Position) float64 {
	if a.Edge != b.Edge {
		panic("graph: SameEdgeCost on different edges")
	}
	wa := g.WeightAt(a.Edge, a.Offset)
	wb := g.WeightAt(b.Edge, b.Offset)
	if wa > wb {
		return wa - wb
	}
	return wb - wa
}

// Location returns the planar location of p.
func (g *Graph) Location(p Position) geo.Point { return g.PointAt(p.Edge, p.Offset) }
