// Package ir implements the Inverted R-tree baseline (IR) of the paper's
// evaluation: one R-tree per keyword over the object locations, the
// natural extension of the INE object lookup of Papadias et al. to keyword
// search. Because the trees are built in Euclidean space, independent of
// the road network, retrieving the objects lying on an edge requires a
// spatial range query with the edge's MBR on every query keyword's tree,
// and every candidate the query returns must then be verified against the
// object table (a disk-resident record fetch) to learn which edge it
// actually lies on — which is exactly why the paper reports IR to be
// several times slower than the network-aware inverted file.
package ir

import (
	"context"
	"fmt"
	"sort"

	"dsks/internal/geo"
	"dsks/internal/graph"
	"dsks/internal/index"
	"dsks/internal/obj"
	"dsks/internal/rtree"
	"dsks/internal/storage"
)

// Object table record: edge uint32, offset float64 (12 bytes).
const (
	recordSize     = 12
	recordsPerPage = storage.PageSize / recordSize
)

// Index holds one R-tree per keyword plus the object table used to verify
// candidates. Rare keywords (few objects) still get a tree; its single
// page mirrors a one-page inverted list.
type Index struct {
	g     *graph.Graph
	trees map[obj.TermID]*rtree.Tree
	pool  *storage.BufferPool

	tablePages []storage.PageID // object table: id/recordsPerPage -> page
	numObjects int
	size       int64
}

// Build bulk-loads the per-keyword R-trees and the object table for all
// objects in c.
func Build(g *graph.Graph, c *obj.Collection, vocabSize int, pool *storage.BufferPool) (*Index, error) {
	idx := &Index{
		g:          g,
		trees:      make(map[obj.TermID]*rtree.Tree),
		pool:       pool,
		numObjects: c.Len(),
	}

	// Object table, in object-ID order.
	for start := 0; start < c.Len(); start += recordsPerPage {
		page, err := pool.Allocate()
		if err != nil {
			return nil, err
		}
		end := start + recordsPerPage
		if end > c.Len() {
			end = c.Len()
		}
		off := 0
		for i := start; i < end; i++ {
			o := c.Get(obj.ID(i))
			page.PutUint32(off, uint32(o.Pos.Edge))
			page.PutFloat64(off+4, o.Pos.Offset)
			off += recordSize
		}
		pool.MarkDirty(page.ID())
		idx.tablePages = append(idx.tablePages, page.ID())
	}
	idx.size = int64(len(idx.tablePages)) * storage.PageSize

	// Per-keyword R-trees over the object locations.
	perTerm := make(map[obj.TermID][]rtree.Entry)
	for _, e := range c.Edges() {
		for _, id := range c.OnEdge(e) {
			o := c.Get(id)
			loc := g.Location(o.Pos)
			ent := rtree.Entry{Rect: geo.RectOf(loc, loc), Ref: uint64(id)}
			for _, t := range o.Terms {
				if int(t) >= vocabSize {
					return nil, fmt.Errorf("ir: term %d outside vocabulary of %d", t, vocabSize)
				}
				perTerm[t] = append(perTerm[t], ent)
			}
		}
	}
	terms := make([]obj.TermID, 0, len(perTerm))
	for t := range perTerm {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })
	for _, t := range terms {
		tr, err := rtree.BulkLoad(pool, perTerm[t])
		if err != nil {
			return nil, err
		}
		idx.trees[t] = tr
		idx.size += tr.SizeBytes()
	}
	if err := pool.Flush(); err != nil {
		return nil, err
	}
	return idx, nil
}

// fetchRecord reads an object's (edge, offset) from the disk-resident
// object table.
func (idx *Index) fetchRecord(ctx context.Context, id obj.ID) (graph.EdgeID, float64, error) {
	if id < 0 || int(id) >= idx.numObjects {
		return 0, 0, fmt.Errorf("ir: unknown object %d", id)
	}
	page, err := idx.pool.GetCtx(ctx, idx.tablePages[int(id)/recordsPerPage])
	if err != nil {
		return 0, 0, err
	}
	off := (int(id) % recordsPerPage) * recordSize
	return graph.EdgeID(page.Uint32(off)), page.Float64(off + 4), nil
}

// LoadObjects implements index.Loader: every query keyword's R-tree is
// probed with the edge's MBR; each Euclidean candidate is verified against
// the object table (one record fetch) to keep only the objects that
// actually lie on the edge, then the per-keyword results are intersected
// with AND semantics.
func (idx *Index) LoadObjects(ctx context.Context, e graph.EdgeID, terms []obj.TermID) ([]index.ObjectRef, error) {
	if len(terms) == 0 {
		return nil, nil
	}
	mbr := idx.g.EdgeMBR(e)
	var inter map[obj.ID]index.ObjectRef
	for i, t := range terms {
		tr, ok := idx.trees[t]
		if !ok {
			return nil, nil
		}
		var candidates []obj.ID
		err := tr.SearchCtx(ctx, mbr, func(ent rtree.Entry) bool {
			candidates = append(candidates, obj.ID(ent.Ref))
			return true
		})
		if err != nil {
			return nil, err
		}
		found := make(map[obj.ID]index.ObjectRef)
		for _, id := range candidates {
			oe, off, err := idx.fetchRecord(ctx, id)
			if err != nil {
				return nil, err
			}
			if oe == e {
				found[id] = index.ObjectRef{ID: id, Edge: e, Offset: off}
			}
		}
		if len(found) == 0 {
			return nil, nil
		}
		if i == 0 {
			inter = found
			continue
		}
		for oid := range inter {
			if _, ok := found[oid]; !ok {
				delete(inter, oid)
			}
		}
		if len(inter) == 0 {
			return nil, nil
		}
	}
	out := make([]index.ObjectRef, 0, len(inter))
	for _, r := range inter {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// SizeBytes implements index.Sizer.
func (idx *Index) SizeBytes() int64 { return idx.size }

// NumTrees returns the number of per-keyword trees.
func (idx *Index) NumTrees() int { return len(idx.trees) }
