package ir

import (
	"context"

	"math/rand"
	"testing"

	"dsks/internal/geo"
	"dsks/internal/graph"
	"dsks/internal/obj"
	"dsks/internal/storage"
)

func buildFixture(t testing.TB, seed int64) (*graph.Graph, *obj.Collection, *Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	const n = 60
	for i := 0; i < n; i++ {
		g.AddNode(geo.Point{X: rng.Float64() * geo.WorldMax, Y: rng.Float64() * geo.WorldMax})
	}
	for i := 1; i < n; i++ {
		if _, err := g.AddEdge(graph.NodeID(i-1), graph.NodeID(i), 1+rng.Float64()*5); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		a, b := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if a != b {
			_, _ = g.AddEdge(a, b, 1+rng.Float64()*5)
		}
	}
	g.Freeze()

	const vocab = 12
	col := obj.NewCollection()
	for i := 0; i < 500; i++ {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		ts := make([]obj.TermID, 1+rng.Intn(3))
		for j := range ts {
			ts[j] = obj.TermID(rng.Intn(vocab))
		}
		col.Add(graph.Position{Edge: e, Offset: rng.Float64() * g.Edge(e).Length}, ts)
	}
	pool := storage.NewBufferPool(storage.NewPageFile(), 512, nil)
	idx, err := Build(g, col, vocab, pool)
	if err != nil {
		t.Fatal(err)
	}
	return g, col, idx
}

func TestIRMatchesBruteForce(t *testing.T) {
	g, col, idx := buildFixture(t, 1)
	rng := rand.New(rand.NewSource(2))
	nonEmpty := 0
	for trial := 0; trial < 400; trial++ {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		ts := obj.NormalizeTerms([]obj.TermID{
			obj.TermID(rng.Intn(12)), obj.TermID(rng.Intn(12)),
		})
		got, err := idx.LoadObjects(context.Background(), e, ts)
		if err != nil {
			t.Fatal(err)
		}
		want := map[obj.ID]bool{}
		for _, id := range col.OnEdge(e) {
			if col.Get(id).HasAllTerms(ts) {
				want[id] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("edge %d terms %v: got %d, want %d", e, ts, len(got), len(want))
		}
		for _, r := range got {
			if !want[r.ID] {
				t.Fatalf("spurious object %d on edge %d", r.ID, e)
			}
			// Offsets must reproduce the object's position closely (they
			// are reconstructed from leaf geometry).
			o := col.Get(r.ID)
			if diff := r.Offset - o.Pos.Offset; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("object %d offset %v, want %v", r.ID, r.Offset, o.Pos.Offset)
			}
		}
		if len(want) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("all probes empty; test is vacuous")
	}
}

func TestIREmptyAndUnknownTerms(t *testing.T) {
	_, _, idx := buildFixture(t, 3)
	got, err := idx.LoadObjects(context.Background(), 0, nil)
	if err != nil || got != nil {
		t.Errorf("empty terms: %v, %v", got, err)
	}
	got, err = idx.LoadObjects(context.Background(), 0, []obj.TermID{999})
	if err != nil || got != nil {
		t.Errorf("unknown term: %v, %v", got, err)
	}
}

func TestIRSizeAndTrees(t *testing.T) {
	_, _, idx := buildFixture(t, 4)
	if idx.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
	if idx.NumTrees() == 0 {
		t.Error("no per-keyword trees")
	}
}

func TestIRRejectsOutOfVocab(t *testing.T) {
	g := graph.New()
	g.AddNode(geo.Point{})
	g.AddNode(geo.Point{X: 1})
	eid, err := g.AddEdge(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	col := obj.NewCollection()
	col.Add(graph.Position{Edge: eid}, []obj.TermID{9})
	pool := storage.NewBufferPool(storage.NewPageFile(), 8, nil)
	if _, err := Build(g, col, 3, pool); err == nil {
		t.Error("out-of-vocabulary term accepted")
	}
}
