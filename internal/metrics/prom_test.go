package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Record(KindSearch, Sample{Elapsed: 3 * time.Millisecond, DiskReads: 7})
	r.Record(KindSearch, Sample{Elapsed: 5 * time.Millisecond, Err: true})
	r.Record(KindDiversified, Sample{Elapsed: time.Second, Canceled: true, Err: true})
	r.RegisterPool("net", func() PoolCounters {
		return PoolCounters{LogicalReads: 100, DiskReads: 25, ReadRetries: 3, CorruptPages: 1}
	})
	r.Counter("server_cache_hits").Add(3)
	r.Counter("server_cache_misses").Add(9)

	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		`dsks_queries_total{kind="search"} 2`,
		`dsks_queries_total{kind="diversified"} 1`,
		`dsks_query_errors_total{kind="search"} 1`,
		`dsks_query_canceled_total{kind="diversified"} 1`,
		`dsks_query_disk_reads_total{kind="search"} 7`,
		`dsks_query_latency_seconds_count{kind="search"} 2`,
		`dsks_query_latency_seconds_bucket{kind="search",le="+Inf"} 2`,
		`dsks_pool_logical_reads_total{pool="net"} 100`,
		`dsks_pool_disk_reads_total{pool="net"} 25`,
		`dsks_pool_read_retries_total{pool="net"} 3`,
		`dsks_pool_corrupt_pages_total{pool="net"} 1`,
		`dsks_pool_hit_rate{pool="net"} 0.75`,
		"# TYPE server_cache_hits counter",
		"server_cache_hits 3",
		"server_cache_misses 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q\n%s", want, out)
		}
	}

	// Histogram buckets must be cumulative and end at the total count.
	if strings.Contains(out, "e+") || strings.Contains(out, "e-") {
		t.Errorf("rendering contains exponent-format floats:\n%s", out)
	}
}

func TestCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Add(2)
	if again := r.Counter("hits"); again != c {
		t.Fatal("Counter returned a different pointer for the same name")
	}
	snap := r.Snapshot()
	if got := snap.Counters["hits"]; got != 2 {
		t.Fatalf("snapshot counter = %d, want 2", got)
	}
	if names := snap.CounterNames(); len(names) != 1 || names[0] != "hits" {
		t.Fatalf("CounterNames = %v", names)
	}
	r.Reset()
	if got := r.Counter("hits").Load(); got != 0 {
		t.Fatalf("after Reset counter = %d, want 0", got)
	}
}
