// Package metrics is the observability layer of the query engine: atomic
// counters and lock-free latency histograms, aggregated per query kind and
// per buffer pool. Recording is wait-free (a handful of atomic adds per
// query), so concurrent queries never serialize on the metrics; snapshots
// are consistent enough for monitoring without stopping the world.
package metrics

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// QueryKind labels the query families the engine serves.
type QueryKind string

// The query kinds the registry tracks.
const (
	KindSearch      QueryKind = "search"
	KindDiversified QueryKind = "diversified"
	KindKNN         QueryKind = "knn"
	KindRanked      QueryKind = "ranked"
	KindCollective  QueryKind = "collective"
	KindStream      QueryKind = "stream"
	// KindMerge tracks the scatter-gather router's merge phase: the time
	// from the last fan-out leg returning to the merged result being
	// ready (internal/shard).
	KindMerge QueryKind = "merge"
)

// Kinds lists every tracked query kind in display order.
func Kinds() []QueryKind {
	return []QueryKind{KindSearch, KindDiversified, KindKNN, KindRanked, KindCollective, KindStream, KindMerge}
}

// numBuckets covers latencies from 1ns to ~9.2s-per-bucket-boundary with
// power-of-two buckets; anything beyond the last boundary lands in the
// final bucket.
const numBuckets = 34

// Histogram is a lock-free latency histogram with exponential
// (power-of-two nanosecond) buckets. The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketOf maps a duration to its bucket index: bucket i holds durations
// in [2^i, 2^(i+1)) nanoseconds (bucket 0 also takes <= 1ns).
func bucketOf(d time.Duration) int {
	ns := int64(d)
	if ns < 1 {
		ns = 1
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// bucketUpper is the exclusive upper bound of bucket i in nanoseconds.
func bucketUpper(i int) int64 {
	if i >= 62 {
		return 1<<63 - 1
	}
	return 1 << (i + 1)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	h.buckets[bucketOf(d)].Add(1)
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Max     time.Duration
	Buckets [numBuckets]int64
}

// Snapshot copies the histogram's counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts,
// interpolating linearly within the winning bucket. An empty histogram
// returns 0. The estimate is bounded by the true value's bucket, so it is
// never off by more than 2x.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i := range s.Buckets {
		n := float64(s.Buckets[i])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lower := float64(int64(1) << i)
			upper := float64(bucketUpper(i))
			frac := (rank - cum) / n
			v := lower + frac*(upper-lower)
			if max := float64(s.Max); v > max && max > 0 {
				v = max
			}
			return time.Duration(v)
		}
		cum += n
	}
	return s.Max
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Sample is what one finished query contributes to the registry.
type Sample struct {
	Elapsed  time.Duration
	Err      bool // the query returned an error
	Canceled bool // the error was a cancellation or deadline

	// Work counters, typically copied from core.SearchStats.
	NodesPopped   int64
	EdgesVisited  int64
	Candidates    int64
	Pruned        int64
	PairDistCalcs int64
	// DiskReads is the buffer misses the query charged to its index.
	DiskReads int64
}

// queryMetrics aggregates one query kind.
type queryMetrics struct {
	count    atomic.Int64
	errors   atomic.Int64
	canceled atomic.Int64
	latency  Histogram

	nodesPopped   atomic.Int64
	edgesVisited  atomic.Int64
	candidates    atomic.Int64
	pruned        atomic.Int64
	pairDistCalcs atomic.Int64
	diskReads     atomic.Int64
}

// PoolCounters is what a registered buffer pool reports when the
// registry pulls it at snapshot time.
type PoolCounters struct {
	LogicalReads int64 // page requests
	DiskReads    int64 // buffer misses
	DiskWrites   int64 // page write-backs
	ReadRetries  int64 // transient read faults absorbed by the retry loop
	CorruptPages int64 // checksum failures detected on miss
}

// PoolFunc reports a buffer pool's cumulative counters; the registry
// pulls it at snapshot time.
type PoolFunc func() PoolCounters

// Registry aggregates query samples by kind and tracks registered buffer
// pools and named counters. Safe for concurrent use.
type Registry struct {
	queries map[QueryKind]*queryMetrics

	mu    sync.Mutex
	pools map[string]PoolFunc

	// counters holds the named counters; the sync.Map makes Counter
	// lock-free on the hot path after a name's first registration.
	counters sync.Map // string -> *atomic.Int64
}

// NewRegistry creates a registry with every query kind pre-registered.
func NewRegistry() *Registry {
	r := &Registry{
		queries: make(map[QueryKind]*queryMetrics, len(Kinds())),
		pools:   make(map[string]PoolFunc),
	}
	for _, k := range Kinds() {
		r.queries[k] = &queryMetrics{}
	}
	return r
}

// Counter returns the named cumulative counter, creating it on first use.
// Callers should cache the returned pointer for hot paths; Add/Load on it
// are plain atomics. Counter values appear in snapshots and in the
// Prometheus rendering (the name is used verbatim as the metric name, so
// use prometheus-style snake_case names such as "server_cache_hits").
func (r *Registry) Counter(name string) *atomic.Int64 {
	if c, ok := r.counters.Load(name); ok {
		return c.(*atomic.Int64)
	}
	c, _ := r.counters.LoadOrStore(name, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// RegisterPool attaches a named buffer pool; its hit rate appears in
// snapshots. Re-registering a name replaces the previous function.
func (r *Registry) RegisterPool(name string, fn PoolFunc) {
	r.mu.Lock()
	r.pools[name] = fn
	r.mu.Unlock()
}

// Record adds one query's sample to its kind's aggregates.
func (r *Registry) Record(kind QueryKind, s Sample) {
	qm := r.queries[kind]
	if qm == nil {
		// Unknown kind: fold into the generic search bucket rather than drop.
		qm = r.queries[KindSearch]
	}
	qm.count.Add(1)
	if s.Err {
		qm.errors.Add(1)
	}
	if s.Canceled {
		qm.canceled.Add(1)
	}
	qm.latency.Observe(s.Elapsed)
	qm.nodesPopped.Add(s.NodesPopped)
	qm.edgesVisited.Add(s.EdgesVisited)
	qm.candidates.Add(s.Candidates)
	qm.pruned.Add(s.Pruned)
	qm.pairDistCalcs.Add(s.PairDistCalcs)
	qm.diskReads.Add(s.DiskReads)
}

// Reset zeroes every query aggregate and named counter (pool counters are
// owned by the pools themselves and are not touched).
func (r *Registry) Reset() {
	r.counters.Range(func(_, c any) bool {
		c.(*atomic.Int64).Store(0)
		return true
	})
	for _, qm := range r.queries {
		qm.count.Store(0)
		qm.errors.Store(0)
		qm.canceled.Store(0)
		qm.latency.Reset()
		qm.nodesPopped.Store(0)
		qm.edgesVisited.Store(0)
		qm.candidates.Store(0)
		qm.pruned.Store(0)
		qm.pairDistCalcs.Store(0)
		qm.diskReads.Store(0)
	}
}

// QuerySnapshot is the aggregated view of one query kind.
type QuerySnapshot struct {
	Count    int64
	Errors   int64
	Canceled int64

	P50  time.Duration
	P95  time.Duration
	P99  time.Duration
	Mean time.Duration
	Max  time.Duration

	NodesPopped   int64
	EdgesVisited  int64
	Candidates    int64
	Pruned        int64
	PairDistCalcs int64
	DiskReads     int64

	Latency HistogramSnapshot
}

// PoolSnapshot is the counter view of one buffer pool.
type PoolSnapshot struct {
	LogicalReads int64
	DiskReads    int64
	DiskWrites   int64
	// ReadRetries counts transient read faults the pool retried away;
	// CorruptPages counts checksum failures it detected. Both stay zero
	// in a healthy run.
	ReadRetries  int64
	CorruptPages int64
	// HitRate is the fraction of page requests served from the buffer
	// (0 when the pool has seen no requests).
	HitRate float64
}

// Snapshot is a point-in-time view of the whole registry.
type Snapshot struct {
	Queries map[QueryKind]QuerySnapshot
	Pools   map[string]PoolSnapshot
	// Counters are the named counters registered with Registry.Counter.
	Counters map[string]int64 `json:",omitempty"`
}

// TotalQueries sums the per-kind query counts.
func (s Snapshot) TotalQueries() int64 {
	var n int64
	for _, q := range s.Queries {
		n += q.Count
	}
	return n
}

// PoolNames lists the registered pools in sorted order.
func (s Snapshot) PoolNames() []string {
	names := make([]string, 0, len(s.Pools))
	for n := range s.Pools {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CounterNames lists the named counters in sorted order.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures the registry.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{
		Queries:  make(map[QueryKind]QuerySnapshot, len(r.queries)),
		Pools:    make(map[string]PoolSnapshot),
		Counters: make(map[string]int64),
	}
	r.counters.Range(func(name, c any) bool {
		out.Counters[name.(string)] = c.(*atomic.Int64).Load()
		return true
	})
	for kind, qm := range r.queries {
		lat := qm.latency.Snapshot()
		out.Queries[kind] = QuerySnapshot{
			Count:         qm.count.Load(),
			Errors:        qm.errors.Load(),
			Canceled:      qm.canceled.Load(),
			P50:           lat.Quantile(0.50),
			P95:           lat.Quantile(0.95),
			P99:           lat.Quantile(0.99),
			Mean:          lat.Mean(),
			Max:           lat.Max,
			NodesPopped:   qm.nodesPopped.Load(),
			EdgesVisited:  qm.edgesVisited.Load(),
			Candidates:    qm.candidates.Load(),
			Pruned:        qm.pruned.Load(),
			PairDistCalcs: qm.pairDistCalcs.Load(),
			DiskReads:     qm.diskReads.Load(),
			Latency:       lat,
		}
	}
	r.mu.Lock()
	pools := make(map[string]PoolFunc, len(r.pools))
	for name, fn := range r.pools {
		pools[name] = fn
	}
	r.mu.Unlock()
	for name, fn := range pools {
		c := fn()
		ps := PoolSnapshot{
			LogicalReads: c.LogicalReads,
			DiskReads:    c.DiskReads,
			DiskWrites:   c.DiskWrites,
			ReadRetries:  c.ReadRetries,
			CorruptPages: c.CorruptPages,
		}
		if c.LogicalReads > 0 {
			ps.HitRate = float64(c.LogicalReads-c.DiskReads) / float64(c.LogicalReads)
		}
		out.Pools[name] = ps
	}
	return out
}
