package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text-format rendering of a Snapshot (exposition format
// version 0.0.4), written with the standard library only so the server's
// /metricsz endpoint needs no client dependency. Latency histograms keep
// the registry's power-of-two nanosecond buckets, converted to seconds
// and accumulated into the cumulative le-buckets Prometheus expects.

// WritePrometheus renders s in the Prometheus text exposition format.
// Query metrics are labeled by kind, pool metrics by pool, and named
// counters appear under their registered names. Rendering is entirely
// from the snapshot, so one snapshot produces one consistent scrape.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := &errWriter{w: w}

	bw.printf("# HELP dsks_queries_total Queries recorded, by kind.\n")
	bw.printf("# TYPE dsks_queries_total counter\n")
	for _, k := range Kinds() {
		bw.printf("dsks_queries_total{kind=%q} %d\n", k, s.Queries[k].Count)
	}
	bw.printf("# HELP dsks_query_errors_total Queries that returned an error, by kind.\n")
	bw.printf("# TYPE dsks_query_errors_total counter\n")
	for _, k := range Kinds() {
		bw.printf("dsks_query_errors_total{kind=%q} %d\n", k, s.Queries[k].Errors)
	}
	bw.printf("# HELP dsks_query_canceled_total Queries aborted by cancellation or deadline, by kind.\n")
	bw.printf("# TYPE dsks_query_canceled_total counter\n")
	for _, k := range Kinds() {
		bw.printf("dsks_query_canceled_total{kind=%q} %d\n", k, s.Queries[k].Canceled)
	}
	bw.printf("# HELP dsks_query_disk_reads_total Buffer-pool misses charged to queries, by kind.\n")
	bw.printf("# TYPE dsks_query_disk_reads_total counter\n")
	for _, k := range Kinds() {
		bw.printf("dsks_query_disk_reads_total{kind=%q} %d\n", k, s.Queries[k].DiskReads)
	}

	bw.printf("# HELP dsks_query_latency_seconds Query latency, by kind.\n")
	bw.printf("# TYPE dsks_query_latency_seconds histogram\n")
	for _, k := range Kinds() {
		q := s.Queries[k]
		var cum int64
		for i, n := range q.Latency.Buckets {
			cum += n
			if n == 0 && i != len(q.Latency.Buckets)-1 {
				continue // empty buckets add nothing to the cumulative view
			}
			le := float64(bucketUpper(i)) / 1e9
			bw.printf("dsks_query_latency_seconds_bucket{kind=%q,le=%q} %d\n",
				k, formatFloat(le), cum)
		}
		bw.printf("dsks_query_latency_seconds_bucket{kind=%q,le=\"+Inf\"} %d\n", k, q.Latency.Count)
		bw.printf("dsks_query_latency_seconds_sum{kind=%q} %s\n", k, formatFloat(q.Latency.Sum.Seconds()))
		bw.printf("dsks_query_latency_seconds_count{kind=%q} %d\n", k, q.Latency.Count)
	}

	bw.printf("# HELP dsks_pool_logical_reads_total Page requests seen by a buffer pool.\n")
	bw.printf("# TYPE dsks_pool_logical_reads_total counter\n")
	for _, name := range s.PoolNames() {
		bw.printf("dsks_pool_logical_reads_total{pool=%q} %d\n", name, s.Pools[name].LogicalReads)
	}
	bw.printf("# HELP dsks_pool_disk_reads_total Page requests a buffer pool served from disk.\n")
	bw.printf("# TYPE dsks_pool_disk_reads_total counter\n")
	for _, name := range s.PoolNames() {
		bw.printf("dsks_pool_disk_reads_total{pool=%q} %d\n", name, s.Pools[name].DiskReads)
	}
	bw.printf("# HELP dsks_pool_disk_writes_total Dirty pages a buffer pool wrote back.\n")
	bw.printf("# TYPE dsks_pool_disk_writes_total counter\n")
	for _, name := range s.PoolNames() {
		bw.printf("dsks_pool_disk_writes_total{pool=%q} %d\n", name, s.Pools[name].DiskWrites)
	}
	bw.printf("# HELP dsks_pool_read_retries_total Transient read faults absorbed by the retry loop.\n")
	bw.printf("# TYPE dsks_pool_read_retries_total counter\n")
	for _, name := range s.PoolNames() {
		bw.printf("dsks_pool_read_retries_total{pool=%q} %d\n", name, s.Pools[name].ReadRetries)
	}
	bw.printf("# HELP dsks_pool_corrupt_pages_total Page checksum failures detected on buffer miss.\n")
	bw.printf("# TYPE dsks_pool_corrupt_pages_total counter\n")
	for _, name := range s.PoolNames() {
		bw.printf("dsks_pool_corrupt_pages_total{pool=%q} %d\n", name, s.Pools[name].CorruptPages)
	}
	bw.printf("# HELP dsks_pool_hit_rate Fraction of page requests served from the buffer.\n")
	bw.printf("# TYPE dsks_pool_hit_rate gauge\n")
	for _, name := range s.PoolNames() {
		bw.printf("dsks_pool_hit_rate{pool=%q} %s\n", name, formatFloat(s.Pools[name].HitRate))
	}

	for _, name := range s.CounterNames() {
		bw.printf("# TYPE %s counter\n", name)
		bw.printf("%s %d\n", name, s.Counters[name])
	}
	return bw.err
}

// formatFloat renders a float the way Prometheus parsers expect: plain
// decimal, no exponent for the magnitudes the registry produces.
func formatFloat(f float64) string {
	out := fmt.Sprintf("%g", f)
	if strings.ContainsAny(out, "eE") {
		out = fmt.Sprintf("%f", f)
	}
	return out
}

// errWriter sticks at the first write error so the renderer can print
// unconditionally and report one error at the end.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
