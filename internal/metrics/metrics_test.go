package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},
		{2, 1},
		{3, 1},
		{4, 2},
		{1023, 9},
		{1024, 10},
		{time.Second, 29}, // 1e9 ns, 2^29 ≈ 5.4e8, 2^30 ≈ 1.1e9
		{1 << 40 * time.Nanosecond, numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	durations := []time.Duration{
		10 * time.Microsecond, 20 * time.Microsecond, 30 * time.Microsecond,
		40 * time.Microsecond, 50 * time.Microsecond,
	}
	var sum time.Duration
	for _, d := range durations {
		h.Observe(d)
		sum += d
	}
	s := h.Snapshot()
	if s.Count != int64(len(durations)) {
		t.Fatalf("count = %d, want %d", s.Count, len(durations))
	}
	if s.Sum != sum {
		t.Errorf("sum = %v, want %v", s.Sum, sum)
	}
	if s.Max != 50*time.Microsecond {
		t.Errorf("max = %v, want 50µs", s.Max)
	}
	if mean := s.Mean(); mean != sum/5 {
		t.Errorf("mean = %v, want %v", mean, sum/5)
	}
	// The quantile estimate must stay within the true value's power-of-two
	// bucket: no more than 2x off, and never above the observed max.
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		v := s.Quantile(q)
		if v <= 0 || v > s.Max {
			t.Errorf("quantile(%v) = %v outside (0, %v]", q, v, s.Max)
		}
	}

	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Errorf("reset left %+v", s)
	}
}

func TestHistogramQuantileSingleValue(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := s.Quantile(q)
		// All mass in one power-of-two bucket: the estimate must land
		// inside it — within 2x below the true value, never above Max.
		if v < time.Millisecond/2 || v > time.Millisecond {
			t.Errorf("quantile(%v) = %v, want within [0.5ms, 1ms]", q, v)
		}
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	if v := h.Snapshot().Quantile(0.5); v != 0 {
		t.Errorf("empty quantile = %v, want 0", v)
	}
}

func TestRegistryRecordAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Record(KindSearch, Sample{
		Elapsed: time.Millisecond, NodesPopped: 10, EdgesVisited: 20,
		Candidates: 3, DiskReads: 7,
	})
	r.Record(KindSearch, Sample{
		Elapsed: 2 * time.Millisecond, Err: true, Canceled: true,
		NodesPopped: 5, DiskReads: 1,
	})
	r.Record(KindDiversified, Sample{Elapsed: time.Millisecond, Pruned: 4, PairDistCalcs: 9})

	snap := r.Snapshot()
	qs := snap.Queries[KindSearch]
	if qs.Count != 2 || qs.Errors != 1 || qs.Canceled != 1 {
		t.Fatalf("search counts = %+v", qs)
	}
	if qs.NodesPopped != 15 || qs.EdgesVisited != 20 || qs.Candidates != 3 || qs.DiskReads != 8 {
		t.Errorf("search work counters = %+v", qs)
	}
	if qs.Max != 2*time.Millisecond {
		t.Errorf("search max = %v", qs.Max)
	}
	dv := snap.Queries[KindDiversified]
	if dv.Count != 1 || dv.Pruned != 4 || dv.PairDistCalcs != 9 {
		t.Errorf("diversified counters = %+v", dv)
	}
	if got := snap.TotalQueries(); got != 3 {
		t.Errorf("TotalQueries = %d, want 3", got)
	}

	// Unknown kinds fold into the search bucket rather than being dropped.
	r.Record(QueryKind("martian"), Sample{Elapsed: time.Millisecond})
	if got := r.Snapshot().Queries[KindSearch].Count; got != 3 {
		t.Errorf("unknown-kind fold: search count = %d, want 3", got)
	}

	r.Reset()
	if got := r.Snapshot().TotalQueries(); got != 0 {
		t.Errorf("after reset TotalQueries = %d", got)
	}
}

func TestRegistryPools(t *testing.T) {
	r := NewRegistry()
	r.RegisterPool("network", func() PoolCounters {
		return PoolCounters{LogicalReads: 100, DiskReads: 25, DiskWrites: 4, ReadRetries: 2, CorruptPages: 1}
	})
	r.RegisterPool("cold", func() PoolCounters { return PoolCounters{} })
	snap := r.Snapshot()
	p := snap.Pools["network"]
	if p.LogicalReads != 100 || p.DiskReads != 25 || p.HitRate != 0.75 {
		t.Errorf("network pool = %+v", p)
	}
	if p.DiskWrites != 4 || p.ReadRetries != 2 || p.CorruptPages != 1 {
		t.Errorf("network pool robustness counters = %+v", p)
	}
	if c := snap.Pools["cold"]; c.HitRate != 0 {
		t.Errorf("cold pool hit rate = %v, want 0", c.HitRate)
	}
	if names := snap.PoolNames(); len(names) != 2 || names[0] != "cold" || names[1] != "network" {
		t.Errorf("PoolNames = %v", names)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines; run
// with -race this checks the recording path is genuinely lock-free safe.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := Kinds()[w%len(Kinds())]
			for i := 0; i < perWorker; i++ {
				r.Record(kind, Sample{
					Elapsed:     time.Duration(i+1) * time.Microsecond,
					NodesPopped: 1, DiskReads: 2,
				})
			}
		}(w)
	}
	// Snapshots race with recording by design; they must simply not crash
	// or trip the race detector.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)

	snap := r.Snapshot()
	if got := snap.TotalQueries(); got != workers*perWorker {
		t.Fatalf("TotalQueries = %d, want %d", got, workers*perWorker)
	}
	var nodes, disk int64
	for _, q := range snap.Queries {
		nodes += q.NodesPopped
		disk += q.DiskReads
		if q.Latency.Count != q.Count {
			t.Errorf("latency count %d != query count %d", q.Latency.Count, q.Count)
		}
	}
	if nodes != workers*perWorker || disk != 2*workers*perWorker {
		t.Errorf("summed counters nodes=%d disk=%d", nodes, disk)
	}
}
