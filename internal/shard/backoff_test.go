package shard

import (
	"testing"
	"time"
)

func TestBackoffZeroBaseNeverWaits(t *testing.T) {
	b := Backoff{Seed: 7}
	for i := 0; i < 10; i++ {
		if d := b.Delay(i); d != 0 {
			t.Fatalf("Delay(%d) with zero base = %v, want 0", i, d)
		}
	}
}

func TestBackoffBoundsAndCap(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Cap: 50 * time.Millisecond, Seed: 42}
	for attempt := 0; attempt < 64; attempt++ {
		d := b.Delay(attempt)
		// exp = Base<<attempt, saturating at Cap.
		exp := b.Base
		for i := 0; i < attempt && exp < b.Cap; i++ {
			exp <<= 1
		}
		if exp > b.Cap {
			exp = b.Cap
		}
		if d < exp/2 || d >= exp {
			t.Fatalf("Delay(%d) = %v, want in [%v, %v)", attempt, d, exp/2, exp)
		}
	}
}

func TestBackoffCapDefaultsToBase(t *testing.T) {
	b := Backoff{Base: 8 * time.Millisecond, Seed: 3}
	for attempt := 0; attempt < 32; attempt++ {
		d := b.Delay(attempt)
		if d < b.Base/2 || d >= b.Base {
			t.Fatalf("Delay(%d) without a cap = %v, want in [%v, %v)", attempt, d, b.Base/2, b.Base)
		}
	}
}

func TestBackoffOverflowSaturatesAtCap(t *testing.T) {
	b := Backoff{Base: time.Hour, Cap: 2 * time.Hour, Seed: 1}
	for _, attempt := range []int{0, 1, 40, 62, 63, 1000} {
		if d := b.Delay(attempt); d >= b.Cap || d < 0 {
			t.Fatalf("Delay(%d) = %v, want in [0, %v)", attempt, d, b.Cap)
		}
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	a := Backoff{Base: time.Millisecond, Cap: 100 * time.Millisecond, Seed: 11}
	b := Backoff{Base: time.Millisecond, Cap: 100 * time.Millisecond, Seed: 11}
	c := Backoff{Base: time.Millisecond, Cap: 100 * time.Millisecond, Seed: 12}
	differs := false
	for i := 0; i < 20; i++ {
		if a.Delay(i) != b.Delay(i) {
			t.Fatalf("Delay(%d) not reproducible for equal seeds", i)
		}
		if a.Delay(i) != c.Delay(i) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("two different seeds produced identical 20-delay schedules")
	}
}
