package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dsks"
	"dsks/internal/metrics"
)

// KindMerge labels the router's merge-phase latency samples in the
// set's metrics registry.
const KindMerge = metrics.KindMerge

// ShardError is one failed fan-out leg in a result envelope.
type ShardError struct {
	Shard int    `json:"shard"`
	Err   string `json:"error"`
}

// Meta describes how the last query on a MultiView was executed: the
// pinned per-shard LSN vector, which shards were actually queried, how
// many legs routing pruned, and — under the partial-result policy —
// which legs failed.
type Meta struct {
	LSNs    []uint64     `json:"lsns"`
	Queried []int        `json:"queried"`
	Pruned  int          `json:"pruned"`
	Partial bool         `json:"partial,omitempty"`
	Errors  []ShardError `json:"shardErrors,omitempty"`
}

// MultiView is a pinned read view over every shard: one dsks.View per
// shard, all pinned before the first result is read, so one request sees
// one consistent per-shard LSN vector. Like dsks.View it serves exactly
// one request at a time — methods must not be called concurrently on the
// same MultiView.
// srcPrimary marks a leg pinned on its shard's primary; non-negative
// values are the index of the replica pinned instead (primary was
// unpinnable at View time).
const srcPrimary int8 = -1

type MultiView struct {
	set   *Set
	views []*dsks.View
	lsns  []uint64
	// srcs records, per shard, which database the pinned view belongs
	// to (srcPrimary or a replica index); nil on sets built before
	// replication existed only in tests that construct MultiView by
	// hand.
	srcs   []int8
	meta   Meta
	closed atomic.Bool
}

// LSNs is the pinned per-shard commit LSN vector.
func (mv *MultiView) LSNs() []uint64 { return mv.lsns }

// Meta reports how the most recent query on this view was executed.
func (mv *MultiView) Meta() Meta { return mv.meta }

// LiveObjects sums the pinned views' live object counts.
func (mv *MultiView) LiveObjects() int {
	total := 0
	for _, v := range mv.views {
		total += v.LiveObjects()
	}
	return total
}

// Close closes every per-shard view. Idempotent.
func (mv *MultiView) Close() {
	if mv.closed.Swap(true) {
		return
	}
	for _, v := range mv.views {
		if v != nil {
			v.Close()
		}
	}
}

// leg is one fan-out leg's outcome.
type leg struct {
	shard int
	res   dsks.Result
	err   error
}

// clientClass reports an error the query itself caused (or its context):
// identical on every shard, never a reason to mark a shard down.
func clientClass(err error) bool {
	return errors.Is(err, dsks.ErrCanceled) ||
		errors.Is(err, dsks.ErrDeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, dsks.ErrUnknownEdge) ||
		errors.Is(err, dsks.ErrTermOutOfRange) ||
		errors.Is(err, dsks.ErrUnsupportedIndex) ||
		errors.Is(err, dsks.ErrNoPath) ||
		errors.Is(err, dsks.ErrViewClosed)
}

// legError classifies and wraps one leg's failure.
func legError(shard int, err error) error {
	if clientClass(err) {
		return err
	}
	return fmt.Errorf("shard: shard %d: %w: %w", shard, ErrShardDown, err)
}

// fanout scatters run over the routed shards with bounded concurrency.
// Cancellation propagates: under first-error-wins (the default), the
// first shard-down failure cancels every sibling leg in flight. A panic
// inside a leg is recovered into an ErrShardDown-class error for that
// leg — it never tears down the request, and the sibling views stay
// owned by the MultiView (closed by Close on every path).
func (mv *MultiView) fanout(ctx context.Context, targets []int,
	run func(ctx context.Context, v *dsks.View) (dsks.Result, error)) []leg {

	s := mv.set
	s.legsTotal.Add(int64(len(targets)))
	s.pruneTotal.Add(int64(len(mv.views) - len(targets)))

	legs := make([]leg, len(targets))
	if len(targets) == 0 {
		return legs
	}

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	limit := s.fanout
	if limit <= 0 || limit > len(targets) {
		limit = len(targets)
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for k, si := range targets {
		legs[k].shard = si
		wg.Add(1)
		go func(k, si int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					legs[k].err = fmt.Errorf("shard: shard %d: %w: panic: %v", si, ErrShardDown, r)
					if !s.partial {
						cancel()
					}
				}
			}()
			select {
			case sem <- struct{}{}:
			case <-fctx.Done():
				legs[k].err = fmt.Errorf("shard: leg for shard %d aborted: %w: %w", si, dsks.ErrCanceled, fctx.Err())
				return
			}
			defer func() { <-sem }()
			s.shards[si].reqs.Add(1)
			res, err := mv.runLeg(fctx, si, run)
			legs[k].res, legs[k].err = res, err
			if err != nil {
				s.shards[si].errs.Add(1)
				legs[k].err = legError(si, err)
				if !s.partial && !clientClass(err) {
					cancel()
				}
			}
		}(k, si)
	}
	wg.Wait()
	return legs
}

// legFunc runs one query against one pinned view.
type legFunc func(ctx context.Context, v *dsks.View) (dsks.Result, error)

// Per-leg retry backoff: small enough to fit several attempts inside a
// request timeout, jittered so concurrent legs don't retry in lockstep.
const (
	legRetryBase = 2 * time.Millisecond
	legRetryCap  = 50 * time.Millisecond
)

// runLeg executes one fan-out leg under the failover protocol:
//
//   - a leg already pinned on a replica (the primary was unpinnable at
//     View time), or a shard with no replicas, just runs its view;
//   - a primary marked down serves from the freshest replica within the
//     staleness bound, except for one recovery probe per cooldown
//     window, which tries the primary (and heals it on success);
//   - a healthy primary runs with capped-backoff retries on transient
//     errors; if it outlives the hedging delay, a replica leg races it
//     and the first answer wins; if it fails for good, the leg fails
//     over to a replica before giving up.
//
// Health accounting mirrors the server breaker: only shard-class errors
// count against the primary — client-class errors (bad query, canceled
// context) are the request's fault and stay neutral.
func (mv *MultiView) runLeg(ctx context.Context, si int, run legFunc) (dsks.Result, error) {
	s := mv.set
	st := &s.shards[si]
	if (mv.srcs != nil && mv.srcs[si] != srcPrimary) || len(st.replicas) == 0 {
		return run(ctx, mv.views[si])
	}
	probe, ok := st.health.allowPrimary()
	if !ok {
		s.failTotal.Add(1)
		return mv.replicaLeg(ctx, si, run)
	}
	retries := s.legRetries
	if probe {
		// A probe decides health as fast as possible: no retries.
		retries = 0
	}
	return mv.racePrimary(ctx, si, run, retries)
}

// legOutcome is one side's result in the primary/replica race.
type legOutcome struct {
	res     dsks.Result
	err     error
	primary bool
}

// racePrimary runs the primary leg (with retries) and, when hedging
// fires or the primary fails, a replica leg, returning whichever
// answers first. The losing side is canceled through the shared
// context; its outcome drains into the buffered channel.
func (mv *MultiView) racePrimary(ctx context.Context, si int, run legFunc, retries int) (dsks.Result, error) {
	s := mv.set
	st := &s.shards[si]
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan legOutcome, 2)

	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- legOutcome{err: fmt.Errorf("shard: shard %d: %w: panic: %v", si, ErrShardDown, r), primary: true}
			}
		}()
		bo := Backoff{Base: legRetryBase, Cap: legRetryCap, Seed: s.seed ^ splitmix64(uint64(si))}
		for attempt := 0; ; attempt++ {
			res, err := run(pctx, mv.views[si])
			if err == nil || clientClass(err) || attempt >= retries {
				ch <- legOutcome{res: res, err: err, primary: true}
				return
			}
			s.retryTotal.Add(1)
			t := time.NewTimer(bo.Delay(attempt))
			select {
			case <-pctx.Done():
				t.Stop()
				ch <- legOutcome{err: err, primary: true}
				return
			case <-t.C:
			}
		}
	}()

	var hedgeC <-chan time.Time
	if s.hedgeAfter > 0 {
		ht := time.NewTimer(s.hedgeAfter)
		defer ht.Stop()
		hedgeC = ht.C
	}
	launched := false
	launch := func() {
		launched = true
		go func() {
			defer func() {
				if r := recover(); r != nil {
					ch <- legOutcome{err: fmt.Errorf("shard: shard %d replica leg: %w: panic: %v", si, ErrShardDown, r)}
				}
			}()
			res, err := mv.replicaLeg(pctx, si, run)
			ch <- legOutcome{res: res, err: err}
		}()
	}

	var pErr, rErr error
	pDone, rDone := false, false
	for {
		select {
		case out := <-ch:
			if out.primary {
				pDone = true
				if out.err == nil {
					st.health.recordSuccess()
					return out.res, nil
				}
				if clientClass(out.err) {
					return out.res, out.err
				}
				st.health.recordFailure()
				pErr = out.err
				if !launched {
					s.failTotal.Add(1)
					launch()
				}
			} else {
				rDone = true
				if out.err == nil {
					return out.res, nil
				}
				rErr = out.err
			}
			if pDone && (rDone || !launched) {
				if rErr != nil {
					return dsks.Result{}, fmt.Errorf("%w; failover: %w", pErr, rErr)
				}
				return dsks.Result{}, pErr
			}
		case <-hedgeC:
			hedgeC = nil
			if !launched {
				s.hedgeTotal.Add(1)
				launch()
			}
		}
	}
}

// replicaLeg serves one leg from the shard's freshest live replica
// within the staleness bound of the LSN this request pinned. The
// replica view is pinned here and closed on every path — it lives
// exactly as long as the leg.
func (mv *MultiView) replicaLeg(ctx context.Context, si int, run legFunc) (dsks.Result, error) {
	s := mv.set
	rep, err := s.freshestReplica(si, mv.lsns[si])
	if err != nil {
		return dsks.Result{}, err
	}
	rv, err := rep.View(ctx)
	if err != nil {
		return dsks.Result{}, fmt.Errorf("shard: pinning replica %d of shard %d: %w", rep.idx, si, err)
	}
	defer rv.Close()
	return run(ctx, rv)
}

// gather applies the failure policy to a fan-out's legs. It returns the
// successful legs plus the request error: nil when everything succeeded,
// the primary failure under first-error-wins (or when every leg failed),
// and an ErrPartialResult-wrapped primary when the partial-result policy
// salvaged a strict subset. Cancellation legs never mask a real failure.
func (mv *MultiView) gather(targets []int, legs []leg) ([]leg, error) {
	var primary, canceled error
	var ok []leg
	var fails []ShardError
	for _, l := range legs {
		switch {
		case l.err == nil:
			ok = append(ok, l)
		case errors.Is(l.err, dsks.ErrCanceled) || errors.Is(l.err, dsks.ErrDeadlineExceeded):
			if canceled == nil {
				canceled = l.err
			}
			fails = append(fails, ShardError{Shard: l.shard, Err: l.err.Error()})
		default:
			if primary == nil {
				primary = l.err
			}
			fails = append(fails, ShardError{Shard: l.shard, Err: l.err.Error()})
		}
	}
	if primary == nil {
		primary = canceled
	}
	mv.meta = Meta{LSNs: mv.lsns, Queried: targets, Pruned: len(mv.views) - len(targets)}
	if primary == nil {
		return ok, nil
	}
	// A client-class error (bad query, canceled context) fails the
	// request whole under either policy: every leg saw the same query.
	if !mv.set.partial || len(ok) == 0 || clientClass(primary) {
		return nil, primary
	}
	mv.set.partTotal.Add(1)
	mv.meta.Partial = true
	mv.meta.Errors = fails
	return ok, fmt.Errorf("%w: %d of %d legs failed: %w", ErrPartialResult, len(fails), len(targets), primary)
}

// scatter = route + fanout + gather, the common head of every query.
func (mv *MultiView) scatter(ctx context.Context, pos dsks.Position, radius float64,
	terms []dsks.TermID, allTerms bool,
	run func(ctx context.Context, v *dsks.View) (dsks.Result, error)) ([]leg, error) {

	if mv.closed.Load() {
		return nil, dsks.ErrViewClosed
	}
	if err := mv.set.guard(pos, terms); err != nil {
		return nil, err
	}
	targets := mv.set.routed(pos, radius, terms, allTerms)
	legs := mv.fanout(ctx, targets, run)
	return mv.gather(targets, legs)
}

// finish stamps the merged result with the request wall time and records
// the merge-phase latency in the router registry.
func (mv *MultiView) finish(res *dsks.Result, start, mergeStart time.Time, err error) {
	res.Elapsed = time.Since(start)
	mv.set.reg.Record(KindMerge, metrics.Sample{
		Elapsed:    time.Since(mergeStart),
		Err:        err != nil && !errors.Is(err, ErrPartialResult),
		Candidates: int64(len(res.Candidates) + len(res.Ranked)),
		DiskReads:  res.DiskReads,
	})
}
