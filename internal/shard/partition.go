// Package shard splits the road network's object load across N
// independent dsks databases and exposes a scatter-gather query layer
// over them.
//
// The split reuses CCAM's recursive two-way bisection one level up: road
// nodes are sorted by the Z-order code of their location and bisected
// recursively into N contiguous groups, and every edge is owned by the
// group of its reference node (the end-node with the smaller ID). Object
// ownership follows edge ownership, so the shards are edge-disjoint: an
// object lives in exactly one shard. The road network itself is small
// relative to the object set and is replicated into every shard, which
// keeps per-shard network distances exact — a shard's candidates carry
// the same distances the unsharded database would compute, and the merged
// union is therefore bit-identical to a single-node answer.
//
// The partitioner also emits a compact boundary summary: the cut vertices
// (nodes incident to edges of two or more owners) with their coordinates,
// the MBR of each shard's owned edges, and the minimum cost-per-length
// ratio of the network. The router uses the summary to prune fan-out
// legs: a shard whose owned-edge MBR lies provably outside the query's
// δmax ball cannot contribute a candidate.
package shard

import (
	"fmt"
	"sort"

	"dsks/internal/geo"
	"dsks/internal/graph"
)

// CutVertex is a road node incident to edges owned by two or more shards.
// The set of cut vertices is the boundary graph: every cross-shard
// shortest path passes through at least one of them.
type CutVertex struct {
	Node graph.NodeID
	Loc  geo.Point
	// Shards lists the owners of the incident edges, ascending.
	Shards []int
}

// Region summarizes one shard's spatial footprint.
type Region struct {
	// Edges counts the shard's owned edges.
	Edges int
	// MBR bounds the shard's owned edges; every object the shard can
	// ever hold lies inside it (insertions are clamped to edge
	// segments, so the footprint never grows).
	MBR geo.Rect
}

// Partition is the N-way edge-disjoint split of a road network.
type Partition struct {
	// Shards is the number of groups N.
	Shards int
	// NodeGroup maps each node to its Z-order bisection group.
	NodeGroup []int32
	// Owner maps each edge to the shard owning it (the group of the
	// edge's reference node).
	Owner []int32
	// Cuts are the boundary vertices, ascending by node ID.
	Cuts []CutVertex
	// Regions holds one spatial summary per shard.
	Regions []Region
	// MinCostRatio is min over edges of Weight/Length. Along any path
	// the cost is at least MinCostRatio times the geometric length, and
	// the geometric length is at least the Euclidean distance between
	// the endpoints, so
	//
	//	networkDist(a, b) >= MinCostRatio * euclid(a, b)
	//
	// — the sound lower bound behind the router's δmax-ball pruning.
	MinCostRatio float64
}

// Split partitions the road network into n edge-disjoint shards by
// recursive two-way bisection of the Z-order node ordering — the same
// rule ccam.Build uses to cluster nodes into pages, lifted one level up.
func Split(g *graph.Graph, n int) (*Partition, error) {
	if g == nil {
		return nil, fmt.Errorf("shard: %w: nil graph", ErrBadShardCount)
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: %w: %d", ErrBadShardCount, n)
	}
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		return nil, fmt.Errorf("shard: %w: empty graph", ErrBadShardCount)
	}
	if n > g.NumNodes() {
		return nil, fmt.Errorf("shard: %w: %d shards for %d nodes", ErrBadShardCount, n, g.NumNodes())
	}

	order := make([]graph.NodeID, g.NumNodes())
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		zi := geo.ZCode(g.Node(order[i]).Loc)
		zj := geo.ZCode(g.Node(order[j]).Loc)
		if zi != zj {
			return zi < zj
		}
		return order[i] < order[j]
	})

	p := &Partition{
		Shards:    n,
		NodeGroup: make([]int32, g.NumNodes()),
		Owner:     make([]int32, g.NumEdges()),
		Regions:   make([]Region, n),
	}

	// Recursive bisection: split the Z-ordered prefix proportionally so
	// odd shard counts still come out balanced (sizes differ by <= 1).
	var bisect func(lo, hi, base, parts int)
	bisect = func(lo, hi, base, parts int) {
		if parts == 1 {
			for i := lo; i < hi; i++ {
				p.NodeGroup[order[i]] = int32(base)
			}
			return
		}
		left := parts / 2
		mid := lo + (hi-lo)*left/parts
		bisect(lo, mid, base, left)
		bisect(mid, hi, base+left, parts-left)
	}
	bisect(0, len(order), 0, n)

	for i := range p.Regions {
		p.Regions[i].MBR = geo.EmptyRect()
	}
	p.MinCostRatio = 1
	first := true
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(graph.EdgeID(e))
		owner := p.NodeGroup[edge.N1]
		p.Owner[e] = owner
		r := &p.Regions[owner]
		r.Edges++
		mbr := g.EdgeMBR(edge.ID)
		r.MBR.Expand(mbr)
		if edge.Length > 0 {
			ratio := edge.Weight / edge.Length
			if first || ratio < p.MinCostRatio {
				p.MinCostRatio = ratio
				first = false
			}
		}
	}

	p.Cuts = cutVertices(g, p.Owner)
	return p, nil
}

// cutVertices lists the nodes whose incident edges span two or more
// owners, each with the sorted owner set.
func cutVertices(g *graph.Graph, owner []int32) []CutVertex {
	var cuts []CutVertex
	for nd := 0; nd < g.NumNodes(); nd++ {
		id := graph.NodeID(nd)
		adj := g.Adjacent(id)
		if len(adj) == 0 {
			continue
		}
		seen := make(map[int32]bool, 2)
		for _, e := range adj {
			seen[owner[e]] = true
		}
		if len(seen) < 2 {
			continue
		}
		shards := make([]int, 0, len(seen))
		for s := range seen {
			shards = append(shards, int(s))
		}
		sort.Ints(shards)
		cuts = append(cuts, CutVertex{Node: id, Loc: g.Node(id).Loc, Shards: shards})
	}
	return cuts
}

// LowerBound is the provable minimum network distance from pt to any
// point of shard s's region: MinCostRatio times the Euclidean distance
// from pt to the region MBR. The second return is false for an empty
// region (a shard that owns no edges can hold no objects at all).
func (p *Partition) LowerBound(s int, pt geo.Point) (float64, bool) {
	r := p.Regions[s].MBR
	if r.IsEmpty() {
		return 0, false
	}
	return p.MinCostRatio * r.MinDist(pt), true
}
