package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dsks"
)

// setManifestName is the shard-set manifest file inside a snapshot dir.
const setManifestName = "shard-set.json"

// setManifest persists the router's state next to the per-shard
// snapshots: the shard count, the global↔local ID maps and the term
// bitmaps. The per-shard LSN vector is recorded for diagnostics; a
// reopened shard may legitimately sit past it after replaying its WAL
// tail, in which case OpenSetPath reconciles the extra objects.
type setManifest struct {
	Version   int             `json:"version"`
	Shards    int             `json:"shards"`
	VocabSize int             `json:"vocabSize"`
	Homes     [][2]int64      `json:"homes"` // global -> (shard, local); shard -1 = burned
	TermBits  [][]uint64      `json:"termBits"`
	LSNs      []uint64        `json:"lsns"`
	NextLocal []dsks.ObjectID `json:"nextLocal"`
}

// SaveTo snapshots the whole set: one dsks snapshot per shard under
// <dir>/shard-<i> plus the router manifest. Each shard snapshot is
// crash-safe on its own (staged + atomically renamed); the manifest is
// written last via the same rename trick, so a crash leaves either the
// old set or the new one.
func (s *Set) SaveTo(dir string) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: creating snapshot dir: %w", err)
	}
	for i := range s.shards {
		sub := filepath.Join(dir, fmt.Sprintf("shard-%d", i))
		if err := s.shards[i].db.SaveTo(sub); err != nil {
			return fmt.Errorf("shard: snapshotting shard %d: %w", i, err)
		}
	}

	s.mu.RLock()
	m := setManifest{
		Version:   1,
		Shards:    len(s.shards),
		VocabSize: s.vocab,
		Homes:     make([][2]int64, len(s.homes)),
		TermBits:  make([][]uint64, len(s.termBits)),
		LSNs:      s.LSNs(),
		NextLocal: make([]dsks.ObjectID, len(s.shards)),
	}
	for g, h := range s.homes {
		m.Homes[g] = [2]int64{int64(h.shard), int64(h.local)}
	}
	for i, bits := range s.termBits {
		m.TermBits[i] = append([]uint64(nil), bits...)
	}
	for i := range s.shards {
		m.NextLocal[i] = s.shards[i].nextLocal
	}
	s.mu.RUnlock()

	blob, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("shard: encoding manifest: %w", err)
	}
	tmp := filepath.Join(dir, setManifestName+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("shard: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, setManifestName)); err != nil {
		return fmt.Errorf("shard: installing manifest: %w", err)
	}
	return nil
}

// OpenSetPath reopens a sharded snapshot written by SaveTo. Every shard
// database is reopened with its own pool, WAL dir and snapshot dir (the
// template options' WALDir/DiskDir are parent directories, as in Open);
// a shard whose WAL replays past its snapshot gets its extra objects
// re-registered with fresh global IDs.
func OpenSetPath(dir string, opts Options) (*Set, error) {
	blob, err := os.ReadFile(filepath.Join(dir, setManifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: reading set manifest: %w: %w", ErrBadManifest, err)
	}
	var m setManifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("shard: decoding set manifest: %w: %w", ErrBadManifest, err)
	}
	if m.Version != 1 || m.Shards < 1 || len(m.TermBits) != m.Shards || len(m.NextLocal) != m.Shards {
		return nil, fmt.Errorf("shard: set manifest version %d with %d shards: %w", m.Version, m.Shards, ErrBadManifest)
	}

	dbs := make([]*dsks.DB, m.Shards)
	closeAll := func() {
		for _, db := range dbs {
			if db != nil {
				_ = db.Close()
			}
		}
	}
	var g *dsks.Graph
	for i := range dbs {
		// Path options are derived exactly as shardOptions does, but the
		// set is not built yet; inline the same rule.
		oi := opts.DB
		sub := fmt.Sprintf("shard-%d", i)
		if oi.WALDir != "" {
			oi.WALDir = filepath.Join(oi.WALDir, sub)
			_ = os.MkdirAll(oi.WALDir, 0o755)
		}
		if oi.DiskDir != "" {
			oi.DiskDir = filepath.Join(oi.DiskDir, sub)
			_ = os.MkdirAll(oi.DiskDir, 0o755)
		}
		db, err := dsks.OpenPath(filepath.Join(dir, sub), oi)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("shard: reopening shard %d: %w", i, err)
		}
		dbs[i] = db
		if g == nil {
			g = db.Graph()
		}
	}

	part, err := Split(g, m.Shards)
	if err != nil {
		closeAll()
		return nil, err
	}
	s := newSet(g, m.VocabSize, part, opts)
	for i := range s.shards {
		s.shards[i].db = dbs[i]
		s.shards[i].nextLocal = m.NextLocal[i]
	}
	s.homes = make([]home, len(m.Homes))
	for g, h := range m.Homes {
		s.homes[g] = home{shard: int32(h[0]), local: dsks.ObjectID(h[1])}
		if h[0] >= 0 {
			if int(h[0]) >= m.Shards {
				s.Close()
				return nil, fmt.Errorf("shard: manifest maps object %d to shard %d of %d: %w", g, h[0], m.Shards, ErrBadManifest)
			}
			sh := &s.shards[h[0]]
			for int(h[1]) >= len(sh.globals) {
				sh.globals = append(sh.globals, -1)
			}
			sh.globals[h[1]] = dsks.ObjectID(g)
		}
	}
	for i, bits := range m.TermBits {
		if len(bits) == len(s.termBits[i]) {
			copy(s.termBits[i], bits)
		}
	}
	for i := range s.shards {
		s.reconcile(i)
	}
	s.initSearchNet()
	if err := s.checkReplication(); err != nil {
		s.Close()
		return nil, err
	}
	// Replicas re-seed from the same per-shard snapshots (no WAL of
	// their own, so they reopen at the snapshot's recorded LSN) and tail
	// the primary's log from there — replaying through the tailer the
	// same records the primary replayed at open.
	for i := range s.shards {
		if err := s.startReplicas(i, nil, filepath.Join(dir, fmt.Sprintf("shard-%d", i))); err != nil {
			s.Close()
			return nil, err
		}
	}
	s.launchReplicas()
	return s, nil
}
