package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dsks"
)

// Replication sentinels, matchable with errors.Is through every wrap.
var (
	// ErrReplicaLagging reports a failover that found replicas alive but
	// none fresh enough: the freshest AppliedLSN sits more than the
	// configured staleness bound behind the LSN the request pinned.
	ErrReplicaLagging = errors.New("shard: replica lagging past the staleness bound")
	// ErrShardUnavailable reports a shard with no serving path left:
	// the primary is down (or unpinnable) and no live replica can cover
	// for it. It is strictly worse than ErrShardDown, which a healthy
	// replica can still absorb.
	ErrShardUnavailable = errors.New("shard: shard unavailable on every path")
)

// Replication and failover counter/gauge names in the set's registry.
const (
	// CounterLegRetries counts fan-out leg attempts beyond the first.
	CounterLegRetries = "leg_retries_total"
	// CounterHedgedReads counts replica legs launched because the
	// primary outlived the hedging delay.
	CounterHedgedReads = "hedged_reads_total"
	// CounterFailovers counts legs served by (or sent to) a replica
	// because the primary failed or was marked down.
	CounterFailovers = "failovers_total"
	// GaugeReplicaApplied is the minimum AppliedLSN over every replica
	// in the set — the LSN the slowest follower has reached.
	GaugeReplicaApplied = "shard_replica_applied_lsn"
	// GaugeReplicaLag is the maximum (DurableLSN − AppliedLSN) over
	// every replica — the worst staleness a failover read could see.
	GaugeReplicaLag = "shard_replica_lag"
)

// Shard health states reported on /healthz and /varz.
const (
	// HealthPrimary: the primary is serving (the normal state).
	HealthPrimary = "primary"
	// HealthReplica: the primary is marked down; replicas carry reads.
	HealthReplica = "replica"
	// HealthDown: the primary is down and no live replica remains.
	HealthDown = "down"
)

// Replica is one WAL-shipped read replica of a shard: its own dsks.DB,
// converging on the primary by tailing the primary's log and applying
// each durable record through the same replay path a restart uses. A
// replica never writes a log of its own — the primary's is the single
// source of truth — so its AppliedLSN (== its DB's LSN) measured
// against the primary's DurableLSN is its exact staleness.
//
// The tail loop is a single goroutine per replica. It polls with the
// shared deterministic backoff when it has consumed everything durable,
// and stops cleanly in two ways: Close, or a terminal tail/apply error
// (corrupt shipping, divergent replay). After a terminal error the
// replica's database still serves reads at its last applied version —
// it reports Err and a growing Lag instead of corrupting — but the
// failover path stops selecting it.
type Replica struct {
	shard, idx int
	db         *dsks.DB
	tail       *dsks.WALTailer
	// target reports the LSN the replica is chasing (the primary's
	// durable horizon).
	target func() uint64
	poll   Backoff
	// applied mirrors db.LSN() for latch-free observation; the gauges
	// and per-replica varz read it.
	applied atomic.Uint64
	// notify recomputes the set-level replication gauges.
	notify func()

	mu   sync.Mutex
	serr error // sticky terminal error

	started atomic.Bool
	stop    chan struct{}
	done    chan struct{}
}

// newReplica wires a replica over an already-opened follower database
// and a tailer positioned at its base LSN. Callers start the tail loop
// with start().
func newReplica(shard, idx int, db *dsks.DB, tail *dsks.WALTailer, target func() uint64, poll Backoff, notify func()) *Replica {
	r := &Replica{
		shard:  shard,
		idx:    idx,
		db:     db,
		tail:   tail,
		target: target,
		poll:   poll,
		notify: notify,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	r.applied.Store(db.LSN())
	return r
}

func (r *Replica) start() {
	if !r.started.Swap(true) {
		go r.run()
	}
}

// run is the tail-and-apply loop. No latch is ever held across the
// blocking calls: Next reads segment files, ApplyShipped takes the
// follower's own write latch internally, and the poll sleep holds
// nothing at all.
func (r *Replica) run() {
	defer close(r.done)
	idle := 0
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		rec, ok, err := r.tail.Next()
		if err != nil {
			r.fail(fmt.Errorf("shard: replica %d of shard %d: tailing: %w", r.idx, r.shard, err))
			return
		}
		if !ok {
			// Caught up (or the tail is torn and can only grow): report
			// the current lag and poll again after a jittered delay.
			r.notify()
			idle++
			t := time.NewTimer(r.poll.Delay(idle - 1))
			select {
			case <-r.stop:
				t.Stop()
				return
			case <-t.C:
			}
			continue
		}
		idle = 0
		if err := r.db.ApplyShipped(rec); err != nil {
			r.fail(fmt.Errorf("shard: replica %d of shard %d: applying LSN %d: %w", r.idx, r.shard, rec.LSN, err))
			return
		}
		r.applied.Store(rec.LSN)
		r.notify()
	}
}

// fail records the terminal error and publishes the final gauge state.
func (r *Replica) fail(err error) {
	r.mu.Lock()
	r.serr = err
	r.mu.Unlock()
	r.notify()
}

// AppliedLSN is the last primary commit the replica has applied.
func (r *Replica) AppliedLSN() uint64 { return r.applied.Load() }

// Lag is how many durable primary records the replica has yet to
// apply.
func (r *Replica) Lag() uint64 {
	t, a := r.target(), r.applied.Load()
	if t <= a {
		return 0
	}
	return t - a
}

// Err returns the replica's sticky terminal error, nil while healthy.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.serr
}

// View pins a read view on the replica's database.
func (r *Replica) View(ctx context.Context) (*dsks.View, error) { return r.db.View(ctx) }

// Close stops the tail loop and closes the replica's database.
func (r *Replica) Close() error {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	if r.started.Load() {
		<-r.done
	}
	r.tail.Close()
	return r.db.Close()
}

// shardHealth is the per-shard availability state machine, the shard
// layer's mirror of the server breaker: consecutive shard-class leg
// failures trip the primary into down, a cooldown gates recovery, and
// a single probe leg at a time decides whether it heals. All methods
// are latch-only (no I/O under mu).
type shardHealth struct {
	mu          sync.Mutex
	consecutive int
	down        bool
	since       time.Time // when the primary went down / last probe failed
	probing     bool

	downAfter int
	cooldown  time.Duration
	now       func() time.Time // stubbed in tests
}

func newShardHealth(downAfter int, cooldown time.Duration) *shardHealth {
	if downAfter <= 0 {
		downAfter = defaultDownAfter
	}
	if cooldown <= 0 {
		cooldown = defaultDownCooldown
	}
	return &shardHealth{downAfter: downAfter, cooldown: cooldown, now: time.Now}
}

const (
	defaultDownAfter    = 3
	defaultDownCooldown = time.Second
)

// allowPrimary reports whether the next leg may try the primary. While
// the primary is down, only one probe per cooldown window is admitted
// (probe=true); everything else goes straight to a replica.
func (h *shardHealth) allowPrimary() (probe, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.down {
		return false, true
	}
	if h.probing || h.now().Sub(h.since) < h.cooldown {
		return false, false
	}
	h.probing = true
	return true, true
}

// recordSuccess heals the primary on any successful leg.
func (h *shardHealth) recordSuccess() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecutive = 0
	h.down = false
	h.probing = false
}

// recordFailure counts one shard-class leg failure; it reports whether
// this failure tripped the primary into down. A failed probe restarts
// the cooldown clock.
func (h *shardHealth) recordFailure() (tripped bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecutive++
	if h.probing {
		h.probing = false
		h.since = h.now()
	}
	if !h.down && h.consecutive >= h.downAfter {
		h.down = true
		h.since = h.now()
		return true
	}
	return false
}

// isDown reports whether the primary is currently marked down.
func (h *shardHealth) isDown() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down
}

// ReplicaVarz is one replica's observability snapshot (see ShardVarz).
type ReplicaVarz struct {
	AppliedLSN uint64 `json:"appliedLSN"`
	Lag        uint64 `json:"lag"`
	Err        string `json:"error,omitempty"`
}

// ReplicaCount is the configured replicas-per-shard R.
func (s *Set) ReplicaCount() int { return s.nreplicas }

// ShardReplicas snapshots shard i's replicas for /varz.
func (s *Set) ShardReplicas(i int) []ReplicaVarz {
	if i < 0 || i >= len(s.shards) {
		return nil
	}
	reps := s.shards[i].replicas
	out := make([]ReplicaVarz, len(reps))
	for j, r := range reps {
		out[j] = ReplicaVarz{AppliedLSN: r.AppliedLSN(), Lag: r.Lag()}
		if err := r.Err(); err != nil {
			out[j].Err = err.Error()
		}
	}
	return out
}

// ShardHealth classifies shard i for /healthz and /varz: "primary"
// while the primary serves, "replica" while it is down but at least one
// live replica covers reads, "down" when no path remains.
func (s *Set) ShardHealth(i int) string {
	if i < 0 || i >= len(s.shards) {
		return HealthDown
	}
	st := &s.shards[i]
	if st.health == nil || !st.health.isDown() {
		return HealthPrimary
	}
	for _, r := range st.replicas {
		if r.Err() == nil {
			return HealthReplica
		}
	}
	return HealthDown
}

// Health is the per-shard health vector.
func (s *Set) Health() []string {
	out := make([]string, len(s.shards))
	for i := range out {
		out[i] = s.ShardHealth(i)
	}
	return out
}

// freshestReplica selects shard i's best failover target: the live
// replica with the highest AppliedLSN, provided it sits within the
// staleness bound of the LSN the request pinned (want). maxStale 0
// means unbounded.
func (s *Set) freshestReplica(i int, want uint64) (*Replica, error) {
	var best *Replica
	for _, r := range s.shards[i].replicas {
		if r.Err() != nil {
			continue
		}
		if best == nil || r.AppliedLSN() > best.AppliedLSN() {
			best = r
		}
	}
	if best == nil {
		return nil, fmt.Errorf("shard: shard %d: %w: no live replica", i, ErrShardUnavailable)
	}
	if applied := best.AppliedLSN(); s.maxStale > 0 && applied+s.maxStale < want {
		return nil, fmt.Errorf("shard: shard %d: %w: freshest replica at LSN %d is %d behind pinned LSN %d (bound %d): %w",
			i, ErrReplicaLagging, applied, want-applied, want, s.maxStale, ErrShardUnavailable)
	}
	return best, nil
}

// refreshReplicaGauges recomputes the set-level replication gauges from
// every replica's atomics; replica loops call it on each apply and poll.
func (s *Set) refreshReplicaGauges() {
	if s.nreplicas == 0 {
		return
	}
	minApplied, maxLag := ^uint64(0), uint64(0)
	for i := range s.shards {
		for _, r := range s.shards[i].replicas {
			if a := r.AppliedLSN(); a < minApplied {
				minApplied = a
			}
			if l := r.Lag(); l > maxLag {
				maxLag = l
			}
		}
	}
	if minApplied == ^uint64(0) {
		minApplied = 0
	}
	s.repApplied.Store(int64(minApplied))
	s.repLag.Store(int64(maxLag))
}

// cloneCollection rebuilds an object collection ID-for-ID: the replica
// seeding path needs the primary's exact pre-replay base so shipped
// records reassign identical IDs. Tombstoned IDs are re-allocated and
// re-tombstoned to keep the numbering aligned.
func cloneCollection(src *dsks.Collection) *dsks.Collection {
	dst := dsks.NewCollection()
	for id := 0; id < src.Len(); id++ {
		oid := dsks.ObjectID(id)
		o := src.Get(oid)
		dst.Add(o.Pos, append([]dsks.TermID(nil), o.Terms...))
		if src.Removed(oid) {
			_ = dst.Remove(oid)
		}
	}
	return dst
}

// startReplicas opens shard i's replicas over the given base states.
// Exactly one of seeds (fresh collections cloned before the primary's
// WAL replay, base LSN 0) or snapDir (a shard snapshot directory whose
// manifest carries the base LSN) is used. The tail loops are NOT started
// here: they call refreshReplicaGauges, which walks every shard's
// replica slice, so launchReplicas runs them only once the whole set is
// wired.
func (s *Set) startReplicas(i int, seeds []*dsks.Collection, snapDir string) error {
	st := &s.shards[i]
	primary := st.db
	st.replicas = make([]*Replica, 0, s.nreplicas)
	for j := 0; j < s.nreplicas; j++ {
		opts := s.replicaOptions(i, j)
		var (
			rdb *dsks.DB
			err error
		)
		if snapDir != "" {
			rdb, err = dsks.OpenPath(snapDir, opts)
		} else {
			rdb, err = dsks.Open(s.g, seeds[j], s.vocab, opts)
		}
		if err != nil {
			return fmt.Errorf("shard: opening replica %d of shard %d: %w", j, i, err)
		}
		tail, err := primary.TailWAL(rdb.LSN())
		if err != nil {
			_ = rdb.Close()
			return fmt.Errorf("shard: tailing shard %d for replica %d: %w", i, j, err)
		}
		poll := Backoff{Base: replicaPollBase, Cap: replicaPollCap,
			Seed: s.seed ^ splitmix64(uint64(i)<<16|uint64(j))}
		rep := newReplica(i, j, rdb, tail, primary.DurableLSN, poll, s.refreshReplicaGauges)
		st.replicas = append(st.replicas, rep)
	}
	return nil
}

// launchReplicas starts every replica's tail loop. Separate from
// startReplicas so no loop observes a half-built set.
func (s *Set) launchReplicas() {
	for i := range s.shards {
		for _, r := range s.shards[i].replicas {
			r.start()
		}
	}
}

const (
	replicaPollBase = time.Millisecond
	replicaPollCap  = 16 * time.Millisecond
)
