package shard

import (
	"testing"

	"dsks"
	"dsks/internal/graph"
)

func testGraph(t *testing.T) *dsks.Graph {
	t.Helper()
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Graph
}

func TestSplitEdgeDisjointAndBalanced(t *testing.T) {
	g := testGraph(t)
	for _, n := range []int{1, 2, 3, 4, 8} {
		p, err := Split(g, n)
		if err != nil {
			t.Fatalf("Split(%d): %v", n, err)
		}
		if p.Shards != n || len(p.Owner) != g.NumEdges() || len(p.NodeGroup) != g.NumNodes() {
			t.Fatalf("Split(%d): wrong shapes", n)
		}
		// Every edge has exactly one owner, matching its reference node's
		// group, and the per-region edge counts add up to the edge count.
		total := 0
		for i, r := range p.Regions {
			if r.Edges > 0 && r.MBR.IsEmpty() {
				t.Fatalf("Split(%d): region %d has %d edges but an empty MBR", n, i, r.Edges)
			}
			total += r.Edges
		}
		if total != g.NumEdges() {
			t.Fatalf("Split(%d): regions cover %d of %d edges", n, total, g.NumEdges())
		}
		counts := make([]int, n)
		for e := 0; e < g.NumEdges(); e++ {
			owner := p.Owner[e]
			if owner < 0 || int(owner) >= n {
				t.Fatalf("Split(%d): edge %d owned by %d", n, e, owner)
			}
			if owner != p.NodeGroup[g.Edge(graph.EdgeID(e)).N1] {
				t.Fatalf("Split(%d): edge %d not owned by its reference node's group", n, e)
			}
			counts[owner]++
		}
		// Node groups are balanced within one node (recursive proportional
		// bisection).
		nodeCounts := make([]int, n)
		for _, grp := range p.NodeGroup {
			nodeCounts[grp]++
		}
		lo, hi := g.NumNodes(), 0
		for _, c := range nodeCounts {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi-lo > 1 {
			t.Errorf("Split(%d): node group sizes range [%d, %d], want spread <= 1", n, lo, hi)
		}
	}
}

func TestSplitCutVertices(t *testing.T) {
	g := testGraph(t)
	p, err := Split(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cuts) == 0 {
		t.Fatal("4-way split of a connected network has no cut vertices")
	}
	inCuts := make(map[graph.NodeID]bool, len(p.Cuts))
	for _, c := range p.Cuts {
		if len(c.Shards) < 2 {
			t.Fatalf("cut vertex %d touches %d shards", c.Node, len(c.Shards))
		}
		if c.Loc != g.Node(c.Node).Loc {
			t.Fatalf("cut vertex %d location mismatch", c.Node)
		}
		inCuts[c.Node] = true
	}
	// Exhaustive check against the definition.
	for nd := 0; nd < g.NumNodes(); nd++ {
		id := graph.NodeID(nd)
		owners := map[int32]bool{}
		for _, e := range g.Adjacent(id) {
			owners[p.Owner[e]] = true
		}
		if (len(owners) >= 2) != inCuts[id] {
			t.Fatalf("node %d: cut-vertex classification wrong (owners %d, listed %v)", nd, len(owners), inCuts[id])
		}
	}
}

func TestSplitLowerBoundSound(t *testing.T) {
	g := testGraph(t)
	p, err := Split(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.MinCostRatio <= 0 {
		t.Fatalf("MinCostRatio = %v", p.MinCostRatio)
	}
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(graph.EdgeID(e))
		if edge.Length > 0 && edge.Weight/edge.Length < p.MinCostRatio-1e-12 {
			t.Fatalf("edge %d ratio %v below MinCostRatio %v", e, edge.Weight/edge.Length, p.MinCostRatio)
		}
	}
	// Every edge midpoint must have lower bound zero to its own shard
	// (the point is inside the region MBR).
	for e := 0; e < g.NumEdges(); e += 97 {
		id := graph.EdgeID(e)
		pt := g.EdgeCenter(id)
		lb, ok := p.LowerBound(int(p.Owner[e]), pt)
		if !ok || lb != 0 {
			t.Fatalf("edge %d center: lower bound to own shard = %v, %v", e, lb, ok)
		}
	}
}

func TestSplitRejectsBadInput(t *testing.T) {
	g := testGraph(t)
	for _, n := range []int{0, -1, g.NumNodes() + 1} {
		if _, err := Split(g, n); err == nil {
			t.Errorf("Split(%d) accepted", n)
		}
	}
	if _, err := Split(nil, 2); err == nil {
		t.Error("Split(nil) accepted")
	}
}
