package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"dsks"
	"dsks/internal/core"
)

// Search scatters the boolean spatial keyword query to the routed shards
// and merges the candidate lists. Shards are edge-disjoint and every
// shard computes distances on the full (replicated) network, so the
// merged list — sorted by (distance, global ID) — contains exactly the
// candidates an unsharded database would return.
func (mv *MultiView) Search(ctx context.Context, q dsks.SKQuery) (dsks.Result, error) {
	start := time.Now()
	if err := q.Validate(); err != nil {
		return dsks.Result{}, err
	}
	legs, err := mv.scatter(ctx, q.Pos, q.DeltaMax, q.Terms, true,
		func(ctx context.Context, v *dsks.View) (dsks.Result, error) {
			return v.Search(ctx, q)
		})
	if err != nil && !errors.Is(err, ErrPartialResult) {
		return dsks.Result{}, err
	}
	mergeStart := time.Now()
	res := mv.mergeCandidates(legs, 0)
	mv.finish(&res, start, mergeStart, err)
	return res, err
}

// SearchKNN merges the per-shard k-nearest lists and keeps the global k
// nearest. Every shard returns its own k best, and the true k nearest
// are each nearest within their home shard, so the union is a superset
// of the answer.
func (mv *MultiView) SearchKNN(ctx context.Context, q dsks.KNNQuery) (dsks.Result, error) {
	start := time.Now()
	if err := q.Validate(); err != nil {
		return dsks.Result{}, err
	}
	legs, err := mv.scatter(ctx, q.Pos, q.MaxDist, q.Terms, true,
		func(ctx context.Context, v *dsks.View) (dsks.Result, error) {
			return v.SearchKNN(ctx, q)
		})
	if err != nil && !errors.Is(err, ErrPartialResult) {
		return dsks.Result{}, err
	}
	mergeStart := time.Now()
	res := mv.mergeCandidates(legs, q.K)
	mv.finish(&res, start, mergeStart, err)
	return res, err
}

// SearchRanked merges the per-shard top-k score lists: best score first,
// distance then global ID breaking ties, truncated to k. As with kNN,
// each true top-k object is in its home shard's top-k, so the union
// covers the answer.
func (mv *MultiView) SearchRanked(ctx context.Context, q dsks.RankedQuery) (dsks.Result, error) {
	start := time.Now()
	if err := q.Validate(); err != nil {
		return dsks.Result{}, err
	}
	legs, err := mv.scatter(ctx, q.Pos, q.DeltaMax, q.Terms, false,
		func(ctx context.Context, v *dsks.View) (dsks.Result, error) {
			return v.SearchRanked(ctx, q)
		})
	if err != nil && !errors.Is(err, ErrPartialResult) {
		return dsks.Result{}, err
	}
	mergeStart := time.Now()
	res := mv.foldLegs(legs)
	for _, l := range legs {
		for _, r := range l.res.Ranked {
			r.Ref.ID = mv.set.globalOf(l.shard, r.Ref.ID)
			res.Ranked = append(res.Ranked, r)
		}
	}
	sort.Slice(res.Ranked, func(i, j int) bool {
		a, b := res.Ranked[i], res.Ranked[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		return a.Ref.ID < b.Ref.ID
	})
	if len(res.Ranked) > q.K {
		res.Ranked = res.Ranked[:q.K]
	}
	mv.finish(&res, start, mergeStart, err)
	return res, err
}

// SearchDiversified runs the paper's diversified query across shards:
// the boolean candidate sets are gathered from the routed shards, and
// the final greedy of Algorithm 1 runs router-side on the union, with
// the pairwise diversification distances computed on the replicated
// network (max-sum diversification's greedy guarantee holds on any
// candidate superset of the true top results, so merging before the
// greedy preserves it).
func (mv *MultiView) SearchDiversified(ctx context.Context, q dsks.DivQuery) (dsks.Result, error) {
	start := time.Now()
	if err := q.Validate(); err != nil {
		return dsks.Result{}, err
	}
	legs, err := mv.scatter(ctx, q.Pos, q.DeltaMax, q.Terms, true,
		func(ctx context.Context, v *dsks.View) (dsks.Result, error) {
			return v.Search(ctx, q.SKQuery)
		})
	if err != nil && !errors.Is(err, ErrPartialResult) {
		return dsks.Result{}, err
	}
	mergeStart := time.Now()
	res := mv.mergeCandidates(legs, 0)
	cands := res.Candidates
	params := core.DivParams{K: q.K, Lambda: q.Lambda, DeltaMax: q.DeltaMax}
	dist := core.NewDistEngine(ctx, mv.set.searchNet, 2*q.DeltaMax, &res.Stats)

	n := len(cands)
	matrix := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d, derr := dist.Dist(cands[i].Ref.Pos(), cands[j].Ref.Pos())
			if derr != nil {
				return dsks.Result{}, mapCtxErr(derr)
			}
			t := params.ThetaFromDists(cands[i].Dist, cands[j].Dist, d)
			matrix[i*n+j] = t
			matrix[j*n+i] = t
		}
	}
	theta := func(i, j int) float64 { return matrix[i*n+j] }
	chosen := core.GreedyDiversify(n, q.K, theta)
	picked := make([]dsks.Candidate, len(chosen))
	for i, idx := range chosen {
		picked[i] = cands[idx]
	}
	res.Candidates = picked
	res.F = core.SetObjective(len(chosen), func(i, j int) float64 {
		return theta(chosen[i], chosen[j])
	})
	mv.finish(&res, start, mergeStart, err)
	return res, err
}

// SearchCollective routes the collective query and keeps the best
// single-shard group: full coverage beats partial, then lower cost, then
// the lower shard index. Unlike the other merges this is a bounded
// approximation — the unsharded greedy may mix objects across shard
// boundaries — which docs/SHARDING.md calls out.
func (mv *MultiView) SearchCollective(ctx context.Context, q dsks.CollectiveQuery) (dsks.Result, error) {
	start := time.Now()
	if err := q.Validate(); err != nil {
		return dsks.Result{}, err
	}
	legs, err := mv.scatter(ctx, q.Pos, q.DeltaMax, q.Terms, false,
		func(ctx context.Context, v *dsks.View) (dsks.Result, error) {
			return v.SearchCollective(ctx, q)
		})
	if err != nil && !errors.Is(err, ErrPartialResult) {
		return dsks.Result{}, err
	}
	mergeStart := time.Now()
	res := mv.foldLegs(legs)
	best := -1
	for i, l := range legs {
		c := l.res.Collective
		if c == nil {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := legs[best].res.Collective
		if c.Covered != b.Covered {
			if c.Covered {
				best = i
			}
			continue
		}
		if !c.Covered && len(c.Uncovered) != len(b.Uncovered) {
			if len(c.Uncovered) < len(b.Uncovered) {
				best = i
			}
			continue
		}
		if c.Cost < b.Cost {
			best = i
		}
	}
	if best >= 0 {
		src := legs[best].res.Collective
		group := *src
		group.Objects = append([]dsks.Candidate(nil), src.Objects...)
		for i := range group.Objects {
			group.Objects[i].Ref.ID = mv.set.globalOf(legs[best].shard, group.Objects[i].Ref.ID)
		}
		res.Collective = &group
	} else {
		res.Collective = &dsks.CollectiveResult{
			Covered:   false,
			Uncovered: append([]dsks.TermID(nil), q.Terms...),
		}
	}
	mv.finish(&res, start, mergeStart, err)
	return res, err
}

// NetworkDistance answers on shard 0's pinned view: the network is
// replicated, so every shard computes the same exact distance.
func (mv *MultiView) NetworkDistance(ctx context.Context, a, b dsks.Position) (float64, error) {
	if mv.closed.Load() {
		return 0, dsks.ErrViewClosed
	}
	return mv.views[0].NetworkDistance(ctx, a, b)
}

// foldLegs aggregates the shared result fields (stats, disk reads) of
// the successful legs into a fresh Result.
func (mv *MultiView) foldLegs(legs []leg) dsks.Result {
	var res dsks.Result
	for _, l := range legs {
		res.DiskReads += l.res.DiskReads
		res.Stats.Add(l.res.Stats)
	}
	return res
}

// mergeCandidates concatenates the legs' candidate lists, rewrites the
// shard-local object IDs to global ones, and sorts by (distance, global
// ID) — a deterministic total order matching the unsharded engine's
// non-decreasing-distance contract. k > 0 truncates to the k nearest.
func (mv *MultiView) mergeCandidates(legs []leg, k int) dsks.Result {
	res := mv.foldLegs(legs)
	for _, l := range legs {
		for _, c := range l.res.Candidates {
			c.Ref.ID = mv.set.globalOf(l.shard, c.Ref.ID)
			res.Candidates = append(res.Candidates, c)
		}
	}
	sort.Slice(res.Candidates, func(i, j int) bool {
		a, b := res.Candidates[i], res.Candidates[j]
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		return a.Ref.ID < b.Ref.ID
	})
	if k > 0 && len(res.Candidates) > k {
		res.Candidates = res.Candidates[:k]
	}
	return res
}

// mapCtxErr classifies a context failure from the router-side distance
// engine with the dsks sentinels, matching the engine's own convention.
func mapCtxErr(err error) error {
	switch {
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("shard: merge diversification: %w: %w", dsks.ErrCanceled, err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("shard: merge diversification: %w: %w", dsks.ErrDeadlineExceeded, err)
	}
	return err
}
