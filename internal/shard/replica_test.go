package shard

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dsks"
	"dsks/internal/wal"
)

// replicatedSet opens an n-way set with r WAL-shipped replicas per shard.
func replicatedSet(t *testing.T, n, r int, opts Options) (*Set, *dsks.Dataset) {
	t.Helper()
	opts.DB.Index = dsks.IndexSIF
	opts.DB.WALDir = t.TempDir()
	opts.Replicas = r
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Open(ds.Graph, ds.Objects, ds.VocabSize, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = set.Close() })
	return set, ds
}

// waitReplicasConverged polls until every replica's AppliedLSN reaches
// its primary's commit LSN (callers quiesce writes first).
func waitReplicasConverged(t *testing.T, set *Set) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		behind := false
		for i := range set.shards {
			lsn := set.shards[i].db.LSN()
			for _, rep := range set.shards[i].replicas {
				if err := rep.Err(); err != nil {
					t.Fatalf("replica %d of shard %d died: %v", rep.idx, i, err)
				}
				if rep.AppliedLSN() < lsn {
					behind = true
				}
			}
		}
		if !behind {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas did not converge: primaries %v, replicas %v",
				set.LSNs(), set.Health())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// insertStorm drives the workload's inserts through the router from
// several goroutines.
func insertStorm(t *testing.T, set *Set, ds *dsks.Dataset, n int) {
	t.Helper()
	ws, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: n, Keywords: 2, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ws); i += 3 {
				if _, _, err := set.Insert(ws[i].Pos, ws[i].Terms); err != nil {
					t.Errorf("insert %d: %v", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestReplicasConvergeAndAnswerIdentically(t *testing.T) {
	set, ds := replicatedSet(t, 3, 2, Options{Seed: 9})
	ctx := context.Background()
	q := wideQuery(t, ds)

	insertStorm(t, set, ds, 90)
	waitReplicasConverged(t, set)

	// At equal LSNs, every replica must answer bit-identically to its
	// primary — they applied the same records through the same replay
	// path.
	for i := range set.shards {
		pv, err := set.shards[i].db.View(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want, err := pv.Search(ctx, q)
		pv.Close()
		if err != nil {
			t.Fatalf("shard %d primary: %v", i, err)
		}
		for _, rep := range set.shards[i].replicas {
			if got, lsn := rep.AppliedLSN(), set.shards[i].db.LSN(); got != lsn {
				t.Fatalf("replica %d of shard %d at LSN %d, primary at %d", rep.idx, i, got, lsn)
			}
			rv, err := rep.View(ctx)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rv.Search(ctx, q)
			rv.Close()
			if err != nil {
				t.Fatalf("shard %d replica %d: %v", i, rep.idx, err)
			}
			requireSameCandidates(t, "replica answer", want.Candidates, got.Candidates)
		}
		if varz := set.ShardReplicas(i); len(varz) != 2 || varz[0].Lag != 0 {
			t.Fatalf("shard %d replica varz = %+v, want 2 converged rows", i, varz)
		}
	}
	if h := set.Health(); len(h) != 3 || h[0] != HealthPrimary {
		t.Fatalf("healthy set reports %v", h)
	}
}

func TestReplicaFailoverServesFullResults(t *testing.T) {
	set, ds := replicatedSet(t, 3, 1, Options{
		Seed: 4, DownAfter: 2, DownCooldown: 50 * time.Millisecond,
	})
	ctx := context.Background()
	q := wideQuery(t, ds)
	insertStorm(t, set, ds, 30)
	waitReplicasConverged(t, set)

	mv, err := set.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mv.Search(ctx, q)
	mv.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Kill shard 0's primary storage: every leg on it fails, and the
	// replica must absorb the reads with zero degradation — full answers,
	// not partials or errors.
	if err := set.ResetIO(); err != nil {
		t.Fatal(err)
	}
	if err := set.SetShardFaultSpec(0, "read:every=1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mv, err := set.View(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mv.Search(ctx, q)
		meta := mv.Meta()
		mv.Close()
		if err != nil {
			t.Fatalf("query %d under a dead primary: %v", i, err)
		}
		if meta.Partial {
			t.Fatalf("query %d degraded to a partial result", i)
		}
		requireSameCandidates(t, "failover answer", want.Candidates, got.Candidates)
	}
	if got := set.Metrics().Counter(CounterFailovers).Load(); got == 0 {
		t.Fatal("failovers_total stayed zero under a dead primary")
	}
	if h := set.ShardHealth(0); h != HealthReplica {
		t.Fatalf("shard 0 health = %q after repeated primary failures, want %q", h, HealthReplica)
	}

	// Heal the primary; after the cooldown a probe leg reclaims it.
	set.ClearFaults()
	if err := set.ResetIO(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for set.ShardHealth(0) != HealthPrimary {
		if time.Now().After(deadline) {
			t.Fatalf("shard 0 stuck in %q after healing", set.ShardHealth(0))
		}
		time.Sleep(20 * time.Millisecond)
		mv, err := set.View(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mv.Search(ctx, q); err != nil {
			mv.Close()
			t.Fatalf("query during heal: %v", err)
		}
		mv.Close()
	}
}

func TestReplicaHedgedReads(t *testing.T) {
	set, ds := replicatedSet(t, 2, 1, Options{Seed: 8, HedgeAfter: time.Nanosecond})
	ctx := context.Background()
	q := wideQuery(t, ds)
	insertStorm(t, set, ds, 20)
	waitReplicasConverged(t, set)

	// With a hedging delay of a nanosecond, the timer beats nearly every
	// primary leg: replica legs race and the first answer wins. Every
	// query must still succeed with a full answer.
	for i := 0; i < 50; i++ {
		mv, err := set.View(ctx)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mv.Search(ctx, q)
		mv.Close()
		if err != nil {
			t.Fatalf("hedged query %d: %v", i, err)
		}
		if len(res.Candidates) == 0 {
			t.Fatalf("hedged query %d returned no candidates", i)
		}
	}
	if got := set.Metrics().Counter(CounterHedgedReads).Load(); got == 0 {
		t.Fatal("hedged_reads_total stayed zero with a nanosecond hedge delay")
	}
}

func TestFreshestReplicaStalenessBound(t *testing.T) {
	healthy := &Replica{target: func() uint64 { return 9 }}
	healthy.applied.Store(5)
	dead := &Replica{serr: errors.New("poisoned"), target: func() uint64 { return 9 }}
	dead.applied.Store(9) // fresher, but terminal — must never be picked
	s := &Set{maxStale: 2, shards: make([]shardState, 1)}
	s.shards[0].replicas = []*Replica{healthy, dead}

	if rep, err := s.freshestReplica(0, 7); err != nil || rep != healthy {
		t.Fatalf("within the bound: (%v, %v), want the healthy replica", rep, err)
	}
	_, err := s.freshestReplica(0, 10)
	if !errors.Is(err, ErrReplicaLagging) || !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("past the bound err = %v, want ErrReplicaLagging and ErrShardUnavailable", err)
	}

	// maxStale 0 means unbounded.
	s.maxStale = 0
	if rep, err := s.freshestReplica(0, 1<<40); err != nil || rep != healthy {
		t.Fatalf("unbounded: (%v, %v), want the healthy replica", rep, err)
	}

	// No live replica at all: unavailable, but not "lagging".
	s.shards[0].replicas = []*Replica{dead}
	_, err = s.freshestReplica(0, 1)
	if !errors.Is(err, ErrShardUnavailable) || errors.Is(err, ErrReplicaLagging) {
		t.Fatalf("no live replica err = %v, want bare ErrShardUnavailable", err)
	}
}

func TestShardHealthStateMachine(t *testing.T) {
	cur := time.Unix(1000, 0)
	h := newShardHealth(2, time.Minute)
	h.now = func() time.Time { return cur }

	if probe, ok := h.allowPrimary(); probe || !ok {
		t.Fatalf("healthy allowPrimary = (%v, %v), want (false, true)", probe, ok)
	}
	if h.recordFailure() {
		t.Fatal("first failure tripped the breaker")
	}
	if !h.recordFailure() {
		t.Fatal("second failure did not trip with downAfter=2")
	}
	if !h.isDown() {
		t.Fatal("not down after tripping")
	}
	if _, ok := h.allowPrimary(); ok {
		t.Fatal("primary admitted during cooldown")
	}

	// Cooldown over: exactly one probe is admitted.
	cur = cur.Add(time.Minute)
	if probe, ok := h.allowPrimary(); !probe || !ok {
		t.Fatalf("post-cooldown allowPrimary = (%v, %v), want a probe", probe, ok)
	}
	if _, ok := h.allowPrimary(); ok {
		t.Fatal("second concurrent probe admitted")
	}

	// The probe fails: the cooldown clock restarts.
	h.recordFailure()
	if _, ok := h.allowPrimary(); ok {
		t.Fatal("primary admitted right after a failed probe")
	}
	cur = cur.Add(time.Minute)
	if probe, ok := h.allowPrimary(); !probe || !ok {
		t.Fatal("no probe after the restarted cooldown")
	}
	h.recordSuccess()
	if h.isDown() {
		t.Fatal("still down after a successful probe")
	}
	if probe, ok := h.allowPrimary(); probe || !ok {
		t.Fatalf("healed allowPrimary = (%v, %v), want (false, true)", probe, ok)
	}
}

// TestReplicaPoisonedTailStopsCleanly: a corrupt record in the shipping
// stream kills the tail loop with a sticky error; the replica keeps
// serving reads at its last applied version and reports its lag, and the
// failover path (freshestReplica) refuses it.
func TestReplicaPoisonedTailStopsCleanly(t *testing.T) {
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	// The replica's base must be cloned before the primary opens: the
	// primary keeps (and mutates) the collection it is given.
	base := cloneCollection(ds.Objects)
	primary, err := dsks.Open(ds.Graph, ds.Objects, ds.VocabSize,
		dsks.Options{Index: dsks.IndexSIF, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	ws, err := dsks.GenerateWorkload(base, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: 5, Keywords: 2, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if _, err := primary.Insert(w.Pos, w.Terms); err != nil {
			t.Fatal(err)
		}
	}

	// Poison the shipping stream: flip a byte inside the first record.
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s: %v", walDir, err)
	}
	blob, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[12] ^= 0x40
	if err := os.WriteFile(segs[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	rdb, err := dsks.Open(ds.Graph, base, ds.VocabSize, dsks.Options{Index: dsks.IndexSIF})
	if err != nil {
		t.Fatal(err)
	}
	tail, err := primary.TailWAL(rdb.LSN())
	if err != nil {
		t.Fatal(err)
	}
	rep := newReplica(0, 0, rdb, tail, primary.DurableLSN,
		Backoff{Base: time.Millisecond, Cap: 4 * time.Millisecond, Seed: 1}, func() {})
	rep.start()
	defer rep.Close()

	deadline := time.Now().Add(5 * time.Second)
	for rep.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("replica never surfaced the corrupt tail")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(rep.Err(), wal.ErrCorrupt) {
		t.Fatalf("replica error = %v, want wal.ErrCorrupt", rep.Err())
	}
	if got := rep.AppliedLSN(); got != 0 {
		t.Fatalf("poisoned replica applied LSN %d, want 0", got)
	}
	if lag := rep.Lag(); lag != uint64(len(ws)) {
		t.Fatalf("poisoned replica lag = %d, want %d", lag, len(ws))
	}

	// Still serving at its last good version.
	v, err := rep.View(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Search(context.Background(), wideQuery(t, ds)); err != nil {
		t.Fatalf("poisoned replica stopped serving: %v", err)
	}
	v.Close()
}

func TestOpenRejectsReplicasWithoutWAL(t *testing.T) {
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Open(ds.Graph, ds.Objects, ds.VocabSize, 2,
		Options{DB: dsks.Options{Index: dsks.IndexSIF}, Replicas: 1})
	if !errors.Is(err, dsks.ErrBadOptions) {
		t.Fatalf("Open with replicas but no WAL = %v, want ErrBadOptions", err)
	}
}

func TestSetSaveReopenWithReplicas(t *testing.T) {
	set, ds := replicatedSet(t, 2, 1, Options{Seed: 3})
	ctx := context.Background()
	q := wideQuery(t, ds)
	insertStorm(t, set, ds, 20)

	dir := t.TempDir()
	if err := set.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenSetPath(dir, Options{
		DB:       dsks.Options{Index: dsks.IndexSIF, WALDir: t.TempDir()},
		Replicas: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = reopened.Close() }()
	insertStorm(t, reopened, ds, 15)
	waitReplicasConverged(t, reopened)

	for i := range reopened.shards {
		pv, err := reopened.shards[i].db.View(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want, err := pv.Search(ctx, q)
		pv.Close()
		if err != nil {
			t.Fatal(err)
		}
		rv, err := reopened.shards[i].replicas[0].View(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rv.Search(ctx, q)
		rv.Close()
		if err != nil {
			t.Fatal(err)
		}
		requireSameCandidates(t, "reopened replica", want.Candidates, got.Candidates)
	}
}
