package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dsks"
	"dsks/internal/ccam"
	"dsks/internal/core"
	"dsks/internal/harness"
	"dsks/internal/metrics"
)

// Sentinel errors of the shard layer.
var (
	// ErrShardDown reports a fan-out leg that failed for a reason local
	// to one shard — a storage fault, a poisoned WAL, a panic. Errors
	// wrap both ErrShardDown and the underlying cause.
	ErrShardDown = errors.New("shard: shard unavailable")
	// ErrPartialResult reports a scatter-gather answer assembled from a
	// strict subset of the routed shards (partial-result policy only).
	// The merged result accompanying it is coherent but may be missing
	// candidates owned by the failed shards.
	ErrPartialResult = errors.New("shard: partial result")
	// ErrBadShardCount reports an unusable shard count or graph.
	ErrBadShardCount = errors.New("shard: bad shard count")
	// ErrBadManifest reports a shard-set manifest that is malformed or
	// inconsistent with the shard databases next to it.
	ErrBadManifest = errors.New("shard: invalid shard-set manifest")
	// ErrClosed reports an operation on a closed shard set.
	ErrClosed = errors.New("shard: set closed")
)

// Router counter names in the set's metrics registry.
const (
	CounterFanoutLegs = "router_fanout_legs_total"
	CounterPrunedLegs = "router_pruned_legs_total"
	CounterPartial    = "router_partial_total"
	CounterInserts    = "router_inserts_total"
	CounterRemoves    = "router_removes_total"
)

// Options configures a shard set.
type Options struct {
	// DB is the template for every shard database. WALDir and DiskDir,
	// when set, are treated as parent directories: shard i uses
	// <dir>/shard-<i>.
	DB dsks.Options
	// Partial selects the partial-result fan-out policy: a query whose
	// legs partly fail returns the merged survivors together with an
	// error wrapping ErrPartialResult, instead of failing outright
	// (first-error-wins, the default).
	Partial bool
	// FanoutLimit bounds the number of concurrently running legs per
	// request; 0 means "all routed shards at once".
	FanoutLimit int
	// Replicas is the number of WAL-shipped read replicas per shard
	// (R). Replicas require DB.WALDir — the log is the shipping medium.
	Replicas int
	// MaxStaleness bounds how far (in log records) behind the pinned
	// primary LSN a failover replica may serve a read; 0 means
	// unbounded.
	MaxStaleness uint64
	// HedgeAfter races a replica against a primary leg that has not
	// answered within this delay, taking whichever finishes first; 0
	// disables hedging.
	HedgeAfter time.Duration
	// LegRetries is how many times a fan-out leg retries a transient
	// shard error on the primary (capped exponential backoff with
	// deterministic jitter) before failing over; negative disables
	// retries.
	LegRetries int
	// DownAfter is how many consecutive shard-class failures mark a
	// primary down (default 3); DownCooldown gates recovery probes
	// (default 1s).
	DownAfter    int
	DownCooldown time.Duration
	// Seed keys every deterministic jitter schedule in the set.
	Seed uint64
}

// home locates a global object inside the set. shard < 0 marks a burned
// ID (an insert that failed after reservation).
type home struct {
	shard int32
	local dsks.ObjectID
}

// shardState is one shard's database plus its slice of the ID maps.
type shardState struct {
	db *dsks.DB
	// insMu serializes inserts into this shard so the local ID the
	// collection will assign is known before the insert is published —
	// the global↔local mapping is recorded while insMu is still held,
	// and the durability wait happens after it is released (the same
	// append-under-latch, fsync-outside protocol the WAL itself uses).
	insMu sync.Mutex
	// nextLocal is the local ID the shard's collection assigns next;
	// guarded by insMu.
	nextLocal dsks.ObjectID
	// globals maps local object IDs to global ones; guarded by Set.mu.
	globals []dsks.ObjectID
	// reqs / errs count fan-out legs sent to / failed on this shard.
	reqs *atomic.Int64
	errs *atomic.Int64
	// replicas are the shard's WAL-shipped read replicas (possibly
	// empty); health is the primary's availability state machine. Both
	// are fixed at open time.
	replicas []*Replica
	health   *shardHealth
}

// Set is an N-way sharded database: one dsks.DB per partition group, all
// sharing the (replicated, immutable) road network, plus the routing
// state — the partition summary, the global↔local object ID maps and the
// per-shard term-presence bitmaps.
type Set struct {
	g     *dsks.Graph
	vocab int
	part  *Partition
	// net serves cross-shard network distances for the router's final
	// diversification greedy; it reads the in-memory graph directly, so
	// it costs no page I/O.
	net ccam.Network
	// searchNet is net plus the landmark-oracle attachment for the
	// router-side merge engine (set by initSearchNet once the shards are
	// open): every shard shares the full network and the same oracle
	// configuration, so shard 0's oracle serves the router too.
	searchNet ccam.Network
	shards    []shardState
	partial   bool
	fanout    int
	template  dsks.Options

	// Replication / failover configuration (see Options).
	nreplicas  int
	maxStale   uint64
	hedgeAfter time.Duration
	legRetries int
	seed       uint64

	reg        *metrics.Registry
	legsTotal  *atomic.Int64
	pruneTotal *atomic.Int64
	partTotal  *atomic.Int64
	retryTotal *atomic.Int64
	hedgeTotal *atomic.Int64
	failTotal  *atomic.Int64
	repApplied *atomic.Int64
	repLag     *atomic.Int64

	// seq is the router's mutation clock: every acknowledged mutation
	// gets the next value, giving clients one monotone LSN-like token
	// over the whole set even though the per-shard LSNs advance
	// independently.
	seq atomic.Uint64

	// mu guards homes, every shard's globals slice and termBits. All
	// critical sections are pure memory operations.
	mu       sync.RWMutex
	homes    []home
	termBits [][]uint64

	closed atomic.Bool
}

// Open partitions the road network n ways and opens one database per
// shard over the objects it owns. Tombstoned objects of the input
// collection are skipped; the global IDs of the survivors are their
// positions in collection order, so a fresh (tombstone-free) collection
// yields the same IDs an unsharded dsks.Open would assign.
func Open(g *dsks.Graph, objects *dsks.Collection, vocabSize, n int, opts Options) (*Set, error) {
	part, err := Split(g, n)
	if err != nil {
		return nil, err
	}
	s := newSet(g, vocabSize, part, opts)
	if err := s.checkReplication(); err != nil {
		return nil, err
	}

	cols := make([]*dsks.Collection, n)
	for i := range cols {
		cols[i] = dsks.NewCollection()
	}
	for id := 0; id < objects.Len(); id++ {
		oid := dsks.ObjectID(id)
		if objects.Removed(oid) {
			continue
		}
		o := objects.Get(oid)
		owner := int(part.Owner[o.Pos.Edge])
		local := cols[owner].Add(o.Pos, append([]dsks.TermID(nil), o.Terms...))
		s.record(owner, local, o.Terms)
	}

	for i := range s.shards {
		// Replica bases must be cloned BEFORE the primary opens: opening
		// replays the shard's WAL tail into cols[i], and the replicas
		// re-apply exactly those records through the tailer instead.
		var seeds []*dsks.Collection
		for j := 0; j < s.nreplicas; j++ {
			seeds = append(seeds, cloneCollection(cols[i]))
		}
		db, err := dsks.Open(g, cols[i], vocabSize, s.shardOptions(i))
		if err != nil {
			s.closeOpened(i)
			return nil, fmt.Errorf("shard: opening shard %d: %w", i, err)
		}
		s.shards[i].db = db
		s.shards[i].nextLocal = dsks.ObjectID(cols[i].Len())
		s.reconcile(i)
		if err := s.startReplicas(i, seeds, ""); err != nil {
			s.closeOpened(i + 1)
			return nil, err
		}
	}
	s.initSearchNet()
	s.launchReplicas()
	return s, nil
}

// initSearchNet builds the network the router-side merge engine runs
// over: the in-memory graph plus shard 0's landmark oracle (the shards
// all open the full network with the same oracle configuration, so their
// oracles are identical) and the router registry's oracle counters. With
// oracles disabled this still attaches the counters, so a sharded /varz
// reports the router's dist_settled_total either way.
func (s *Set) initSearchNet() {
	var o core.LandmarkOracle
	if len(s.shards) > 0 && s.shards[0].db != nil {
		if do := s.shards[0].db.DistanceOracle(); do != nil {
			o = do
		}
	}
	s.searchNet = core.WithOracle(s.net, o, core.OracleCounters{
		LBPrunes:  s.reg.Counter(harness.CounterOracleLBPrunes),
		UBHits:    s.reg.Counter(harness.CounterOracleUBHits),
		PopsSaved: s.reg.Counter(harness.CounterOraclePopsSaved),
		Settled:   s.reg.Counter(harness.CounterDistSettled),
	})
}

// checkReplication validates the replication options: the WAL is the
// shipping medium, so replicas without a log directory cannot exist.
func (s *Set) checkReplication() error {
	if s.nreplicas > 0 && s.template.WALDir == "" {
		return fmt.Errorf("shard: %d replicas per shard need DB.WALDir (the WAL is the shipping medium): %w",
			s.nreplicas, dsks.ErrBadOptions)
	}
	return nil
}

// reconcile registers objects shard i's database holds beyond the
// router's bookkeeping — the tail a WAL replay applied during open.
// Replayed objects get fresh global IDs in deterministic (shard, local)
// order; the pre-crash global numbering of unsnapshotted mutations is
// not recoverable from per-shard logs (the interleaving lived only in
// the router), so a restart renumbers them.
func (s *Set) reconcile(i int) {
	sh := &s.shards[i]
	for int(sh.nextLocal) < sh.db.ObjectCount() {
		local := sh.nextLocal
		_, terms, _, ok := sh.db.Object(local)
		if !ok {
			break
		}
		s.record(i, local, terms)
		sh.nextLocal++
	}
}

// newSet builds the routing state common to Open and OpenSetPath.
func newSet(g *dsks.Graph, vocabSize int, part *Partition, opts Options) *Set {
	reg := metrics.NewRegistry()
	s := &Set{
		g:          g,
		vocab:      vocabSize,
		part:       part,
		net:        &ccam.InMemory{G: g},
		shards:     make([]shardState, part.Shards),
		partial:    opts.Partial,
		fanout:     opts.FanoutLimit,
		template:   opts.DB,
		nreplicas:  opts.Replicas,
		maxStale:   opts.MaxStaleness,
		hedgeAfter: opts.HedgeAfter,
		legRetries: opts.LegRetries,
		seed:       opts.Seed,
		reg:        reg,
		legsTotal:  reg.Counter(CounterFanoutLegs),
		pruneTotal: reg.Counter(CounterPrunedLegs),
		partTotal:  reg.Counter(CounterPartial),
		retryTotal: reg.Counter(CounterLegRetries),
		hedgeTotal: reg.Counter(CounterHedgedReads),
		failTotal:  reg.Counter(CounterFailovers),
		repApplied: reg.Counter(GaugeReplicaApplied),
		repLag:     reg.Counter(GaugeReplicaLag),
		termBits:   make([][]uint64, part.Shards),
	}
	if s.nreplicas < 0 {
		s.nreplicas = 0
	}
	words := (vocabSize + 63) / 64
	for i := range s.shards {
		s.termBits[i] = make([]uint64, words)
		s.shards[i].reqs = reg.Counter(fmt.Sprintf("shard%d_requests_total", i))
		s.shards[i].errs = reg.Counter(fmt.Sprintf("shard%d_errors_total", i))
		if s.nreplicas > 0 {
			s.shards[i].health = newShardHealth(opts.DownAfter, opts.DownCooldown)
		}
	}
	return s
}

// shardOptions derives shard i's database options from the template:
// per-shard subdirectories for every path-valued option.
func (s *Set) shardOptions(i int) dsks.Options {
	o := s.template
	sub := fmt.Sprintf("shard-%d", i)
	if o.WALDir != "" {
		o.WALDir = filepath.Join(o.WALDir, sub)
		_ = os.MkdirAll(o.WALDir, 0o755)
	}
	if o.DiskDir != "" {
		o.DiskDir = filepath.Join(o.DiskDir, sub)
		_ = os.MkdirAll(o.DiskDir, 0o755)
	}
	return o
}

// replicaOptions derives replica j-of-shard-i's database options: no
// WAL of its own (the primary's log is the single source of truth) and
// a private disk directory so two pools never share page files.
func (s *Set) replicaOptions(i, j int) dsks.Options {
	o := s.template
	o.WALDir = ""
	if o.DiskDir != "" {
		o.DiskDir = filepath.Join(o.DiskDir, fmt.Sprintf("shard-%d-replica-%d", i, j))
		_ = os.MkdirAll(o.DiskDir, 0o755)
	}
	return o
}

// record notes a (shard, local) → global assignment and folds the terms
// into the shard's presence bitmap. Callers must not hold s.mu.
func (s *Set) record(owner int, local dsks.ObjectID, terms []dsks.TermID) dsks.ObjectID {
	s.mu.Lock()
	defer s.mu.Unlock()
	global := dsks.ObjectID(len(s.homes))
	s.homes = append(s.homes, home{shard: int32(owner), local: local})
	sh := &s.shards[owner]
	for int(local) >= len(sh.globals) {
		sh.globals = append(sh.globals, -1)
	}
	sh.globals[local] = global
	bits := s.termBits[owner]
	for _, t := range terms {
		if t >= 0 && int(t) < s.vocab {
			bits[t/64] |= 1 << (uint(t) % 64)
		}
	}
	return global
}

// closeOpened closes the first n shards' databases and replicas (error
// cleanup).
func (s *Set) closeOpened(n int) {
	for i := 0; i < n; i++ {
		for _, r := range s.shards[i].replicas {
			_ = r.Close()
		}
		if s.shards[i].db != nil {
			_ = s.shards[i].db.Close()
		}
	}
}

// Shards is the shard count N.
func (s *Set) Shards() int { return len(s.shards) }

// Partition exposes the split and its boundary summary.
func (s *Set) Partition() *Partition { return s.part }

// Graph is the replicated road network.
func (s *Set) Graph() *dsks.Graph { return s.g }

// VocabSize is the shared vocabulary size.
func (s *Set) VocabSize() int { return s.vocab }

// DB exposes shard i's database (tests and tooling).
func (s *Set) DB(i int) *dsks.DB { return s.shards[i].db }

// Metrics is the router's own registry: fan-out/prune/partial counters,
// per-shard request and error counters, and merge-phase latency under
// kind "merge". Per-shard engine metrics live on each shard's DB.
func (s *Set) Metrics() *metrics.Registry { return s.reg }

// Snapshot captures the router registry.
func (s *Set) Snapshot() metrics.Snapshot {
	snap := s.reg.Snapshot()
	// The distance-oracle counter family lives in each shard's own
	// registry (and, for the router's merge engine, in s.reg); fold the
	// shard contributions in so a sharded /varz reports oracle
	// effectiveness for the whole set, like a single node does.
	for i := range s.shards {
		db := s.shards[i].db
		if db == nil {
			continue
		}
		sub := db.Snapshot()
		for _, name := range []string{
			harness.CounterOracleLBPrunes,
			harness.CounterOracleUBHits,
			harness.CounterOraclePopsSaved,
			harness.CounterDistSettled,
		} {
			if v := sub.Counters[name]; v != 0 {
				snap.Counters[name] += v
			}
		}
	}
	return snap
}

// Seq is the router's mutation clock (see Insert).
func (s *Set) Seq() uint64 { return s.seq.Load() }

// LSNs is the current per-shard commit LSN vector.
func (s *Set) LSNs() []uint64 {
	out := make([]uint64, len(s.shards))
	for i := range s.shards {
		out[i] = s.shards[i].db.LSN()
	}
	return out
}

// DurableLSNs is the per-shard durable LSN vector.
func (s *Set) DurableLSNs() []uint64 {
	out := make([]uint64, len(s.shards))
	for i := range s.shards {
		out[i] = s.shards[i].db.DurableLSN()
	}
	return out
}

// LiveObjects sums the live object counts over the shards.
func (s *Set) LiveObjects() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].db.LiveObjects()
	}
	return total
}

// Close closes every shard database. The first error wins but every
// shard is attempted.
func (s *Set) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	var first error
	for i := range s.shards {
		// Replicas first: their tail loops read the primary's log files,
		// and stopping them before the log closes keeps the shutdown
		// order deterministic.
		for j, r := range s.shards[i].replicas {
			if err := r.Close(); err != nil && first == nil {
				first = fmt.Errorf("shard: closing replica %d of shard %d: %w", j, i, err)
			}
		}
		if s.shards[i].db == nil {
			continue
		}
		if err := s.shards[i].db.Close(); err != nil && first == nil {
			first = fmt.Errorf("shard: closing shard %d: %w", i, err)
		}
	}
	return first
}

// SetFaultSpec arms the same fault specification on every shard.
func (s *Set) SetFaultSpec(spec string) error {
	for i := range s.shards {
		if err := s.shards[i].db.SetFaultSpec(spec); err != nil {
			return fmt.Errorf("shard: arming faults on shard %d: %w", i, err)
		}
	}
	return nil
}

// SetShardFaultSpec arms a fault specification on one shard only —
// the lever the shard smoke test uses to take a single shard down.
func (s *Set) SetShardFaultSpec(i int, spec string) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("shard: %w: no shard %d", ErrBadShardCount, i)
	}
	return s.shards[i].db.SetFaultSpec(spec)
}

// ClearFaults disarms fault injection on every shard.
func (s *Set) ClearFaults() {
	for i := range s.shards {
		s.shards[i].db.ClearFaults()
	}
}

// ResetIO cools every shard's buffer pools and I/O counters.
func (s *Set) ResetIO() error {
	var first error
	for i := range s.shards {
		if err := s.shards[i].db.ResetIO(); err != nil && first == nil {
			first = fmt.Errorf("shard: resetting shard %d: %w", i, err)
		}
	}
	return first
}

// checkMutation mirrors the per-shard databases' validation so a bad
// mutation is rejected before a global ID is reserved: without this, a
// failed insert would burn an ID and the set's ID sequence would drift
// from an unsharded database fed the same history.
func (s *Set) checkMutation(pos dsks.Position, terms []dsks.TermID) error {
	if pos.Edge < 0 || int(pos.Edge) >= s.g.NumEdges() {
		return fmt.Errorf("shard: insert on edge %d: %w", pos.Edge, dsks.ErrUnknownEdge)
	}
	for _, t := range terms {
		if t < 0 || int(t) >= s.vocab {
			return fmt.Errorf("shard: term %d with vocabulary of %d: %w", t, s.vocab, dsks.ErrTermOutOfRange)
		}
	}
	return nil
}

// Insert routes the object to the shard owning its edge and returns the
// global object ID plus the router's mutation sequence number (monotone
// over the whole set; per-shard LSNs advance independently and are
// reported per query in the result envelope).
//
// Protocol: the shard's insert latch serializes inserts into that shard;
// the insert is applied and published and the global↔local mapping
// recorded while the latch is held (pure memory plus a buffered WAL
// append — no fsync), then the latch is released and the durability wait
// runs outside it.
func (s *Set) Insert(pos dsks.Position, terms []dsks.TermID) (dsks.ObjectID, uint64, error) {
	if s.closed.Load() {
		return 0, 0, ErrClosed
	}
	if err := s.checkMutation(pos, terms); err != nil {
		return 0, 0, err
	}
	owner := int(s.part.Owner[pos.Edge])
	sh := &s.shards[owner]

	sh.insMu.Lock()
	local, lsn, err := sh.db.InsertAsync(pos, terms)
	if err != nil {
		sh.insMu.Unlock()
		return 0, 0, fmt.Errorf("shard: insert into shard %d: %w: %w", owner, ErrShardDown, err)
	}
	if local != sh.nextLocal {
		// Defensive: something other than this Set mutated the shard.
		sh.insMu.Unlock()
		return 0, 0, fmt.Errorf("shard: shard %d assigned local ID %d where the router expected %d: %w",
			owner, local, sh.nextLocal, ErrShardDown)
	}
	sh.nextLocal++
	global := s.record(owner, local, terms)
	sh.insMu.Unlock()

	seq := s.seq.Add(1)
	if werr := sh.db.WaitDurable(lsn); werr != nil {
		return global, seq, fmt.Errorf("shard: insert of object %d applied on shard %d but not durable: %w: %w",
			global, owner, ErrShardDown, werr)
	}
	return global, seq, nil
}

// Remove tombstones the object in its home shard.
func (s *Set) Remove(id dsks.ObjectID) (uint64, error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	s.mu.RLock()
	var h home
	ok := id >= 0 && int(id) < len(s.homes)
	if ok {
		h = s.homes[int(id)]
		ok = h.shard >= 0
	}
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("shard: remove object %d: %w", id, dsks.ErrUnknownObject)
	}
	if err := s.shards[h.shard].db.Remove(h.local); err != nil {
		if errors.Is(err, dsks.ErrUnknownObject) {
			return 0, err
		}
		return 0, fmt.Errorf("shard: remove on shard %d: %w: %w", h.shard, ErrShardDown, err)
	}
	return s.seq.Add(1), nil
}

// globalOf translates a shard-local object ID to its global ID. The fast
// path is one read-locked map lookup. A miss can only mean the lookup
// raced the sliver between an insert's publish and its mapping record;
// both happen under the shard's insert latch, so acquiring and releasing
// that latch once guarantees the mapping is visible on the retry.
func (s *Set) globalOf(shardIdx int, local dsks.ObjectID) dsks.ObjectID {
	if g, ok := s.lookupGlobal(shardIdx, local); ok {
		return g
	}
	sh := &s.shards[shardIdx]
	sh.insMu.Lock()
	//lint:ignore SA2001 the critical section is intentionally empty: the
	// latch acquisition orders this reader after the racing insert's
	// mapping record (see the function comment).
	sh.insMu.Unlock()
	if g, ok := s.lookupGlobal(shardIdx, local); ok {
		return g
	}
	return -1
}

func (s *Set) lookupGlobal(shardIdx int, local dsks.ObjectID) (dsks.ObjectID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sh := &s.shards[shardIdx]
	if local < 0 || int(local) >= len(sh.globals) {
		return -1, false
	}
	g := sh.globals[local]
	return g, g >= 0
}

// routed lists the shards a query with the given position, radius and
// terms must visit. Distance pruning uses the partition's sound lower
// bound networkDist >= MinCostRatio·euclid against each region MBR; term
// pruning uses the per-shard presence bitmaps — with allTerms set (the
// boolean/diversified/kNN AND semantics) a shard missing any query term
// is skipped, otherwise (ranked/collective OR semantics) only a shard
// missing every term is. Bits are set on insert and never cleared on
// remove, so the bitmap is conservative: it can cost a wasted leg, never
// a missed candidate.
func (s *Set) routed(pos dsks.Position, radius float64, terms []dsks.TermID, allTerms bool) []int {
	pt := s.g.PointAt(pos.Edge, pos.Offset)
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, 0, len(s.shards))
	for i := range s.shards {
		lb, nonEmpty := s.part.LowerBound(i, pt)
		if !nonEmpty {
			continue
		}
		if radius > 0 && lb > radius {
			continue
		}
		if len(terms) > 0 && !s.termsPresentLocked(i, terms, allTerms) {
			continue
		}
		out = append(out, i)
	}
	return out
}

// termsPresentLocked reports whether shard i can contain a match for the
// query terms; callers hold s.mu.
func (s *Set) termsPresentLocked(i int, terms []dsks.TermID, allTerms bool) bool {
	bits := s.termBits[i]
	any := false
	for _, t := range terms {
		if t < 0 || int(t) >= s.vocab {
			// Out-of-range terms are the shards' problem to reject;
			// don't let the bitmap mask the error.
			return true
		}
		present := bits[t/64]&(1<<(uint(t)%64)) != 0
		if allTerms && !present {
			return false
		}
		any = any || present
	}
	if allTerms {
		return true
	}
	return any
}

// guard mirrors dsks.View's query validation: the edge must exist and
// every term must be inside the vocabulary, classified with the same
// sentinels.
func (s *Set) guard(pos dsks.Position, terms []dsks.TermID) error {
	if pos.Edge < 0 || int(pos.Edge) >= s.g.NumEdges() {
		return fmt.Errorf("shard: query on edge %d: %w", pos.Edge, dsks.ErrUnknownEdge)
	}
	for _, t := range terms {
		if t < 0 || int(t) >= s.vocab {
			return fmt.Errorf("shard: query term %d with vocabulary of %d: %w", t, s.vocab, dsks.ErrTermOutOfRange)
		}
	}
	return nil
}

// View pins one read view per shard — all pinned before any result is
// read, so a request sees one consistent per-shard LSN vector (reported
// in the result envelope). With replicas configured, a shard whose
// primary cannot be pinned falls back to its freshest live replica
// within the staleness bound; the request then runs that shard's legs
// on the replica view. Close closes every per-shard view.
func (s *Set) View(ctx context.Context) (*MultiView, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	mv := &MultiView{
		set:   s,
		views: make([]*dsks.View, len(s.shards)),
		lsns:  make([]uint64, len(s.shards)),
		srcs:  make([]int8, len(s.shards)),
	}
	for i := range s.shards {
		mv.srcs[i] = srcPrimary
		v, err := s.shards[i].db.View(ctx)
		if err != nil {
			// The pin itself failed (closed shard, done context): try a
			// replica pinned against the primary's last published LSN.
			rep, rerr := s.replicaFallback(i, s.shards[i].db.LSN())
			if rerr != nil {
				mv.Close()
				return nil, fmt.Errorf("shard: pinning view on shard %d: %w: %w: %w", i, ErrShardDown, err, rerr)
			}
			rv, rerr := rep.View(ctx)
			if rerr != nil {
				mv.Close()
				return nil, fmt.Errorf("shard: pinning replica view on shard %d: %w: %w", i, ErrShardDown, rerr)
			}
			s.failTotal.Add(1)
			mv.views[i] = rv
			mv.lsns[i] = rv.LSN()
			mv.srcs[i] = int8(rep.idx)
			continue
		}
		mv.views[i] = v
		mv.lsns[i] = v.LSN()
	}
	return mv, nil
}

// replicaFallback is freshestReplica behind the "are there replicas at
// all" guard (pin-time fallback must not invent ErrShardUnavailable on
// an unreplicated set).
func (s *Set) replicaFallback(i int, want uint64) (*Replica, error) {
	if len(s.shards[i].replicas) == 0 {
		return nil, fmt.Errorf("shard: shard %d: %w: no replicas configured", i, ErrShardUnavailable)
	}
	return s.freshestReplica(i, want)
}
