package shard

import "time"

// Backoff computes capped exponential retry delays with deterministic,
// seed-derived jitter. Both consumers of waiting in this package use
// it: a fan-out leg retrying a transient shard error, and a replica's
// tail loop polling its primary's log for new durable records.
//
// The jitter is a pure function of (Seed, attempt) — no global
// randomness, no clock reads — so a configured seed reproduces the
// exact retry schedule run after run. The spread follows the
// "equal jitter" rule: attempt n waits somewhere in [exp/2, exp) where
// exp = Base<<n capped at Cap, enough to de-synchronize concurrent legs
// without ever waiting past the cap or less than half the target.
type Backoff struct {
	// Base is the uncapped delay of attempt 0; zero or negative
	// disables waiting entirely (every delay is 0).
	Base time.Duration
	// Cap bounds every delay; zero or negative means Base (no growth).
	Cap time.Duration
	// Seed keys the jitter. Derive it from configuration (and a stable
	// per-consumer salt), never from the clock.
	Seed uint64
}

// Delay returns how long to wait before retry attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	lim := b.Cap
	if lim <= 0 {
		lim = b.Base
	}
	exp := b.Base
	for i := 0; i < attempt && exp < lim; i++ {
		exp <<= 1
		if exp <= 0 { // overflowed time.Duration
			exp = lim
			break
		}
	}
	if exp > lim {
		exp = lim
	}
	half := exp / 2
	if half <= 0 {
		return exp
	}
	h := splitmix64(b.Seed ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15)
	return half + time.Duration(h%uint64(half))
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed integer
// hash whose output is a pure function of its input.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
