package shard

import (
	"context"
	"math"
	"sort"
	"testing"

	"dsks"
)

// equivFixture builds the same dataset twice: once behind an unsharded
// database and once behind an n-way shard set.
func equivFixture(t *testing.T, n int, opts dsks.Options) (*dsks.DB, *Set, *dsks.Dataset) {
	t.Helper()
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	single, err := dsks.OpenDataset(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = single.Close() })

	// The set needs its own collection: OpenDataset retains and mutates
	// the dataset's, so regenerate for an identical, independent copy.
	ds2, err := dsks.GeneratePreset(dsks.PresetSYN, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Open(ds2.Graph, ds2.Objects, ds2.VocabSize, n, Options{DB: opts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = set.Close() })
	return single, set, ds
}

// sortCandidates normalizes a candidate list to the router's merge
// order; the unsharded engine emits non-decreasing distance with
// expansion-order tie breaks, so ties must be normalized before a
// position-wise comparison.
func sortCandidates(cs []dsks.Candidate) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Dist != cs[j].Dist {
			return cs[i].Dist < cs[j].Dist
		}
		return cs[i].Ref.ID < cs[j].Ref.ID
	})
}

// requireSameCandidates asserts the two lists agree: identical distance
// sequences, and identical IDs everywhere except positions whose sort
// key ties (a truncated tie group may legitimately resolve differently).
func requireSameCandidates(t *testing.T, tag string, want, got []dsks.Candidate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d candidates, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if math.Abs(want[i].Dist-got[i].Dist) > 1e-9 {
			t.Fatalf("%s: candidate %d dist %v, want %v", tag, i, got[i].Dist, want[i].Dist)
		}
		if want[i].Ref.ID == got[i].Ref.ID {
			continue
		}
		// An ID mismatch is only legal inside a distance tie.
		tied := (i > 0 && want[i-1].Dist == want[i].Dist) ||
			(i+1 < len(want) && want[i+1].Dist == want[i].Dist)
		if !tied {
			t.Fatalf("%s: candidate %d is object %d, want %d (dist %v)",
				tag, i, got[i].Ref.ID, want[i].Ref.ID, want[i].Dist)
		}
	}
}

func workloadQueries(t *testing.T, ds *dsks.Dataset, n int, seed int64) []dsks.WorkloadQuery {
	t.Helper()
	ws, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: n, Keywords: 2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

// TestShardSingleNodeEquivalence is the shard/single-node property test:
// the same query mix against a 4-shard set and an unsharded database
// over the same dataset must produce identical boolean, kNN and ranked
// results, and diversification objective values within the greedy's
// tie-break tolerance.
func TestShardSingleNodeEquivalence(t *testing.T) {
	single, set, ds := equivFixture(t, 4, dsks.Options{Index: dsks.IndexSIF})
	ctx := context.Background()
	ws := workloadQueries(t, ds, 25, 11)

	check := func(phase string) {
		t.Helper()
		mv, err := set.View(ctx)
		if err != nil {
			t.Fatal(err)
		}
		defer mv.Close()
		sv, err := single.View(ctx)
		if err != nil {
			t.Fatal(err)
		}
		defer sv.Close()

		for qi, w := range ws {
			skq := dsks.SKQuery{Pos: w.Pos, Terms: w.Terms, DeltaMax: w.DeltaMax}

			// Boolean range search: identical candidate sets.
			sres, err := sv.Search(ctx, skq)
			if err != nil {
				t.Fatal(err)
			}
			mres, err := mv.Search(ctx, skq)
			if err != nil {
				t.Fatal(err)
			}
			sortCandidates(sres.Candidates)
			requireSameCandidates(t, phase+": search "+itoa(qi), sres.Candidates, mres.Candidates)

			// kNN: identical distance profile, ties tolerated at the cut.
			knn := dsks.KNNQuery{Pos: w.Pos, Terms: w.Terms, K: 5}
			skres, err := sv.SearchKNN(ctx, knn)
			if err != nil {
				t.Fatal(err)
			}
			mkres, err := mv.SearchKNN(ctx, knn)
			if err != nil {
				t.Fatal(err)
			}
			sortCandidates(skres.Candidates)
			requireSameCandidates(t, phase+": knn "+itoa(qi), skres.Candidates, mkres.Candidates)

			// Ranked: identical (score, dist) sequences, tie-tolerant IDs.
			rq := dsks.RankedQuery{Pos: w.Pos, Terms: w.Terms, K: 5, Alpha: 0.5, DeltaMax: w.DeltaMax}
			srres, err := sv.SearchRanked(ctx, rq)
			if err != nil {
				t.Fatal(err)
			}
			mrres, err := mv.SearchRanked(ctx, rq)
			if err != nil {
				t.Fatal(err)
			}
			sortRanked(srres.Ranked)
			sortRanked(mrres.Ranked)
			requireSameRanked(t, phase+": ranked "+itoa(qi), srres.Ranked, mrres.Ranked)

			// Diversified: objective values within greedy tie tolerance.
			dq := dsks.DivQuery{SKQuery: skq, K: 4, Lambda: 0.5}
			sdres, err := sv.SearchDiversified(ctx, dq)
			if err != nil {
				t.Fatal(err)
			}
			mdres, err := mv.SearchDiversified(ctx, dq)
			if err != nil {
				t.Fatal(err)
			}
			if len(sdres.Candidates) != len(mdres.Candidates) {
				t.Fatalf("%s: diversified %d chose %d objects, want %d",
					phase, qi, len(mdres.Candidates), len(sdres.Candidates))
			}
			tol := 1e-6 * math.Max(1, math.Abs(sdres.F))
			if math.Abs(sdres.F-mdres.F) > tol {
				t.Fatalf("%s: diversified %d objective %v, want %v", phase, qi, mdres.F, sdres.F)
			}
		}
	}

	check("initial")

	// Mutate both sides identically: the sharded set must assign the
	// same object IDs an unsharded database does, so results stay
	// ID-comparable after inserts and removes.
	ws2 := workloadQueries(t, ds, 10, 99)
	firstFresh := dsks.ObjectID(ds.Objects.Len())
	for i, w := range ws2 {
		terms := w.Terms
		sid, err := single.Insert(w.Pos, terms)
		if err != nil {
			t.Fatal(err)
		}
		mid, _, err := set.Insert(w.Pos, terms)
		if err != nil {
			t.Fatal(err)
		}
		if sid != mid {
			t.Fatalf("insert %d: set assigned ID %d, single node %d", i, mid, sid)
		}
	}
	// Remove a few originals and one fresh insert.
	victims := []dsks.ObjectID{3, 17, firstFresh}
	for _, id := range victims {
		if err := single.Remove(id); err != nil {
			t.Fatal(err)
		}
		if _, err := set.Remove(id); err != nil {
			t.Fatal(err)
		}
	}

	check("after mutations")

	// Double-remove classifies identically.
	if err := single.Remove(victims[0]); err == nil {
		t.Fatal("single-node double remove accepted")
	}
	if _, err := set.Remove(victims[0]); err == nil {
		t.Fatal("sharded double remove accepted")
	}
}

// sortRanked applies the router's merge order so tie groups line up on
// both sides before the position-wise comparison.
func sortRanked(rs []dsks.RankedResult) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].Ref.ID < rs[j].Ref.ID
	})
}

func requireSameRanked(t *testing.T, tag string, want, got []dsks.RankedResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if math.Abs(want[i].Score-got[i].Score) > 1e-9 || math.Abs(want[i].Dist-got[i].Dist) > 1e-9 {
			t.Fatalf("%s: rank %d (score %v, dist %v), want (%v, %v)",
				tag, i, got[i].Score, got[i].Dist, want[i].Score, want[i].Dist)
		}
		if want[i].Ref.ID == got[i].Ref.ID {
			continue
		}
		tied := (i > 0 && want[i-1].Score == want[i].Score) ||
			(i+1 < len(want) && want[i+1].Score == want[i].Score)
		if !tied {
			t.Fatalf("%s: rank %d is object %d, want %d", tag, i, got[i].Ref.ID, want[i].Ref.ID)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
