package shard

import (
	"context"
	"errors"
	"sync"
	"testing"

	"dsks"
)

func testSet(t *testing.T, n int, opts Options) (*Set, *dsks.Dataset) {
	t.Helper()
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Open(ds.Graph, ds.Objects, ds.VocabSize, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = set.Close() })
	return set, ds
}

// wideQuery builds a query whose δmax ball spans every shard so the
// fan-out has legs to fail.
func wideQuery(t *testing.T, ds *dsks.Dataset) dsks.SKQuery {
	t.Helper()
	ws, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: 1, Keywords: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dsks.SKQuery{Pos: ws[0].Pos, Terms: ws[0].Terms, DeltaMax: 20000}
}

func TestFanoutFirstErrorWins(t *testing.T) {
	set, ds := testSet(t, 4, Options{DB: dsks.Options{Index: dsks.IndexSIF}})
	q := wideQuery(t, ds)
	ctx := context.Background()

	mv, err := set.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer mv.Close()
	if _, err := mv.Search(ctx, q); err != nil {
		t.Fatalf("healthy fan-out: %v", err)
	}
	if m := mv.Meta(); len(m.Queried) != 4 || m.Partial {
		t.Fatalf("healthy meta = %+v, want 4 full legs", m)
	}

	// Take one shard down: permanent read faults on shard 2 only.
	if err := set.ResetIO(); err != nil {
		t.Fatal(err)
	}
	if err := set.SetShardFaultSpec(2, "read:every=1"); err != nil {
		t.Fatal(err)
	}
	defer set.ClearFaults()
	mv2, err := set.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer mv2.Close()
	_, err = mv2.Search(ctx, q)
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("degraded fan-out err = %v, want ErrShardDown", err)
	}
	if errors.Is(err, ErrPartialResult) {
		t.Fatal("first-error-wins policy produced a partial result")
	}

	// Recovery: clearing the faults restores full answers.
	set.ClearFaults()
	if err := set.ResetIO(); err != nil {
		t.Fatal(err)
	}
	mv3, err := set.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer mv3.Close()
	if _, err := mv3.Search(ctx, q); err != nil {
		t.Fatalf("recovered fan-out: %v", err)
	}
}

func TestFanoutPartialResultPolicy(t *testing.T) {
	set, ds := testSet(t, 4, Options{DB: dsks.Options{Index: dsks.IndexSIF}, Partial: true})
	q := wideQuery(t, ds)
	ctx := context.Background()

	// Baseline: full answer, remember the candidate count.
	mv, err := set.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	full, err := mv.Search(ctx, q)
	mv.Close()
	if err != nil {
		t.Fatal(err)
	}

	if err := set.ResetIO(); err != nil {
		t.Fatal(err)
	}
	if err := set.SetShardFaultSpec(1, "read:every=1"); err != nil {
		t.Fatal(err)
	}
	defer set.ClearFaults()

	mv2, err := set.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer mv2.Close()
	res, err := mv2.Search(ctx, q)
	if !errors.Is(err, ErrPartialResult) {
		t.Fatalf("partial policy err = %v, want ErrPartialResult", err)
	}
	if !errors.Is(err, ErrShardDown) {
		t.Fatal("partial error should still classify the failed leg as shard-down")
	}
	m := mv2.Meta()
	if !m.Partial || len(m.Errors) != 1 || m.Errors[0].Shard != 1 {
		t.Fatalf("partial meta = %+v, want shard 1 failed", m)
	}
	if len(res.Candidates) >= len(full.Candidates) {
		t.Fatalf("partial result has %d candidates, full had %d — nothing was actually missing",
			len(res.Candidates), len(full.Candidates))
	}
	// The survivors must be a subset of the full answer (coherent, never
	// half-merged garbage).
	fullIDs := map[dsks.ObjectID]bool{}
	for _, c := range full.Candidates {
		fullIDs[c.Ref.ID] = true
	}
	for _, c := range res.Candidates {
		if !fullIDs[c.Ref.ID] {
			t.Fatalf("partial result contains object %d the full answer lacks", c.Ref.ID)
		}
	}
	if set.Metrics().Counter(CounterPartial).Load() == 0 {
		t.Error("partial counter stayed zero")
	}
}

// TestFanoutClientErrorsFailWhole: a bad query is the client's fault on
// every leg — both policies reject it outright, with the same sentinel
// the unsharded engine uses.
func TestFanoutClientErrorsFailWhole(t *testing.T) {
	for _, partial := range []bool{false, true} {
		set, ds := testSet(t, 2, Options{DB: dsks.Options{Index: dsks.IndexSIF}, Partial: partial})
		ctx := context.Background()
		mv, err := set.View(ctx)
		if err != nil {
			t.Fatal(err)
		}
		q := wideQuery(t, ds)
		q.Pos.Edge = dsks.EdgeID(ds.Graph.NumEdges() + 5)
		if _, err := mv.Search(ctx, q); !errors.Is(err, dsks.ErrUnknownEdge) {
			t.Fatalf("partial=%v: unknown edge err = %v", partial, err)
		}
		q2 := wideQuery(t, ds)
		q2.Terms = []dsks.TermID{dsks.TermID(ds.VocabSize + 3)}
		if _, err := mv.Search(ctx, q2); !errors.Is(err, dsks.ErrTermOutOfRange) {
			t.Fatalf("partial=%v: bad term err = %v", partial, err)
		}
		if _, err := mv.Search(ctx, dsks.SKQuery{Pos: wideQuery(t, ds).Pos, DeltaMax: 100}); err == nil ||
			errors.Is(err, ErrPartialResult) {
			t.Fatalf("partial=%v: empty terms err = %v", partial, err)
		}
		canceled, cancel := context.WithCancel(ctx)
		cancel()
		if _, err := mv.Search(canceled, wideQuery(t, ds)); !errors.Is(err, dsks.ErrCanceled) {
			t.Fatalf("partial=%v: canceled ctx err = %v", partial, err)
		}
		mv.Close()
		if _, err := mv.Search(ctx, wideQuery(t, ds)); !errors.Is(err, dsks.ErrViewClosed) {
			t.Fatalf("partial=%v: closed view err = %v", partial, err)
		}
		_ = set.Close()
	}
}

// TestFanoutPanicIsolation: a panicking leg maps to ErrShardDown and the
// MultiView (and all sibling views) still closes cleanly.
func TestFanoutPanicIsolation(t *testing.T) {
	set, _ := testSet(t, 4, Options{DB: dsks.Options{Index: dsks.IndexSIF}})
	ctx := context.Background()
	mv, err := set.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer mv.Close()
	legs := mv.fanout(ctx, []int{0, 1, 2, 3}, func(ctx context.Context, v *dsks.View) (dsks.Result, error) {
		if v == mv.views[2] {
			panic("leg exploded")
		}
		return dsks.Result{}, nil
	})
	_, err = mv.gather([]int{0, 1, 2, 3}, legs)
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("panicked leg err = %v, want ErrShardDown", err)
	}
	// The views remain owned and closable; queries still work after the
	// panic (nothing was torn down behind the view's back).
	if _, err := mv.views[0].Search(ctx, dsks.SKQuery{Pos: dsks.Position{Edge: 0}, Terms: []dsks.TermID{0}, DeltaMax: 10}); err != nil {
		t.Fatalf("sibling view broken after panic: %v", err)
	}
}

// TestShardConcurrentMutationsAndQueries drives inserts and scatter
// queries concurrently: no candidate may ever surface with an unmapped
// (negative) global ID — the insert protocol publishes the mapping
// before the object becomes visible.
func TestShardConcurrentMutationsAndQueries(t *testing.T) {
	set, ds := testSet(t, 4, Options{DB: dsks.Options{Index: dsks.IndexSIF}})
	ctx := context.Background()
	q := wideQuery(t, ds)

	ws, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: 120, Keywords: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ws); i += 3 {
				if _, _, err := set.Insert(ws[i].Pos, ws[i].Terms); err != nil {
					t.Errorf("insert %d: %v", i, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				mv, err := set.View(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				res, err := mv.Search(ctx, q)
				mv.Close()
				if err != nil {
					t.Error(err)
					return
				}
				for _, c := range res.Candidates {
					if c.Ref.ID < 0 {
						t.Errorf("candidate surfaced with unmapped ID %d", c.Ref.ID)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	if got := set.Seq(); got != uint64(len(ws)) {
		t.Fatalf("mutation clock = %d after %d inserts", got, len(ws))
	}
}

func TestSetSaveAndReopen(t *testing.T) {
	set, ds := testSet(t, 3, Options{DB: dsks.Options{Index: dsks.IndexSIF}})
	ctx := context.Background()
	q := wideQuery(t, ds)

	mv, err := set.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mv.Search(ctx, q)
	mv.Close()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := set.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenSetPath(dir, Options{DB: dsks.Options{Index: dsks.IndexSIF}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = reopened.Close() }()
	if reopened.Shards() != 3 || reopened.LiveObjects() != set.LiveObjects() {
		t.Fatalf("reopened set: %d shards, %d objects (want %d, %d)",
			reopened.Shards(), reopened.LiveObjects(), 3, set.LiveObjects())
	}
	mv2, err := reopened.View(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer mv2.Close()
	got, err := mv2.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	requireSameCandidates(t, "reopened", want.Candidates, got.Candidates)
}
