// Package index defines the interface between the spatial keyword search
// algorithm (which drives the network expansion) and the spatio-textual
// object indexes (which load the objects lying on an edge that satisfy the
// keyword constraint). The four index structures the paper evaluates — IR,
// IF, SIF and SIF-P — all implement Loader.
package index

import (
	"context"

	"dsks/internal/graph"
	"dsks/internal/obj"
)

// ObjectRef is a reference to an indexed object as materialized from a
// posting list: its ID plus its position on the road network.
type ObjectRef struct {
	ID     obj.ID
	Edge   graph.EdgeID
	Offset float64 // geometric distance from the edge's reference node
}

// Pos returns the object's network position.
func (r ObjectRef) Pos() graph.Position { return graph.Position{Edge: r.Edge, Offset: r.Offset} }

// Loader loads the objects lying on an edge that contain all query terms
// (the paper's Algorithm 2). terms must be sorted and duplicate-free.
// Implementations report their page reads through their buffer pool's
// IOStats, and honor ctx: a done context aborts the load (wrapping
// ctx.Err()) before further I/O is charged.
type Loader interface {
	LoadObjects(ctx context.Context, e graph.EdgeID, terms []obj.TermID) ([]ObjectRef, error)
}

// UnionLoader additionally loads with OR semantics: the objects on an edge
// containing at least one of the query terms, together with how many they
// contain. The ranked spatial keyword query (top-k by combined spatial and
// textual score) is built on it.
type UnionLoader interface {
	Loader
	// LoadObjectsAny returns, for each object on e containing at least one
	// term, the number of distinct query terms it contains.
	LoadObjectsAny(ctx context.Context, e graph.EdgeID, terms []obj.TermID) ([]ObjectMatch, error)
}

// ObjectMatch is a union-load result: the object plus its term overlap.
type ObjectMatch struct {
	Ref     ObjectRef
	Matched int // distinct query terms the object contains (>= 1)
}

// Sizer is implemented by indexes that can report their on-disk footprint.
type Sizer interface {
	SizeBytes() int64
}
