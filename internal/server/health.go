package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// Degraded-mode serving: a circuit breaker driven by consecutive
// storage-class failures (injected faults, detected corruption, any
// unclassified internal error). The state machine is
//
//	healthy ──(DegradeAfter consecutive storage errors)──► degraded
//	degraded ──(BreakAfter consecutive storage errors)──► open
//	open ──(cooldown elapses)──► half-open: ONE probe query runs
//	probe succeeds ──► healthy        probe fails ──► open again
//
// While the breaker is open, query endpoints shed with 503 + Retry-After
// instead of hammering a failing storage layer; cache hits still serve
// (they touch no storage). Client-class errors (bad request, not found,
// canceled, deadline) are neutral: they neither trip nor heal the
// breaker. Any success closes it.

// healthState is the server's degradation level.
type healthState int32

const (
	stateHealthy healthState = iota
	stateDegraded
	stateOpen
)

// String renders the state for /healthz and /varz.
func (st healthState) String() string {
	switch st {
	case stateHealthy:
		return "healthy"
	case stateDegraded:
		return "degraded"
	case stateOpen:
		return "open"
	default:
		return "unknown"
	}
}

// breaker is the health state machine. All methods are safe for
// concurrent use; the mutex guards transitions only — the hot path
// (healthy, no errors) is one lock/unlock around two integer reads.
type breaker struct {
	mu           sync.Mutex
	state        healthState
	consecutive  int  // consecutive storage-class errors
	probing      bool // a half-open probe is in flight
	openedAt     time.Time
	degradeAfter int
	breakAfter   int
	cooldown     time.Duration

	// now is stubbed in tests to drive the cooldown clock.
	now func() time.Time

	// Counters surfaced through /varz and /metricsz.
	opened    *atomic.Int64 // times the circuit opened
	shed      *atomic.Int64 // requests shed with 503
	stateVarz *atomic.Int64 // current state as an integer gauge
}

func newBreaker(degradeAfter, breakAfter int, cooldown time.Duration,
	opened, shed, stateVarz *atomic.Int64) *breaker {
	return &breaker{
		degradeAfter: degradeAfter,
		breakAfter:   breakAfter,
		cooldown:     cooldown,
		now:          time.Now,
		opened:       opened,
		shed:         shed,
		stateVarz:    stateVarz,
	}
}

// currentState reports the state for observability endpoints.
func (b *breaker) currentState() healthState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// setStateLocked transitions the state and mirrors it into the gauge.
func (b *breaker) setStateLocked(st healthState) {
	b.state = st
	b.stateVarz.Store(int64(st))
}

// allow decides whether a query may run. The second return is true when
// the request was admitted; the first is true when it was admitted as the
// half-open probe, whose outcome alone drives the open breaker's next
// transition. A false admit means the caller must shed with 503.
func (b *breaker) allow() (probe, admitted bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != stateOpen {
		return false, true
	}
	if !b.probing && b.now().Sub(b.openedAt) >= b.cooldown {
		b.probing = true
		return true, true
	}
	b.shed.Add(1)
	return false, false
}

// recordSuccess notes a query that completed without error: the breaker
// closes fully (a half-open probe succeeding proves storage recovered).
func (b *breaker) recordSuccess(probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	if probe {
		b.probing = false
	}
	if b.state != stateHealthy && (b.state != stateOpen || probe) {
		// An open breaker only closes through its probe; degraded heals
		// on any success.
		b.setStateLocked(stateHealthy)
	}
}

// recordStorageError notes a storage-class failure and advances the state
// machine; a failed probe re-opens the breaker for a fresh cooldown.
func (b *breaker) recordStorageError(probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if probe {
		b.probing = false
		b.openedAt = b.now()
		return // stays open
	}
	switch {
	case b.consecutive >= b.breakAfter:
		if b.state != stateOpen {
			b.opened.Add(1)
			b.openedAt = b.now()
		}
		b.setStateLocked(stateOpen)
	case b.consecutive >= b.degradeAfter:
		if b.state == stateHealthy {
			b.setStateLocked(stateDegraded)
		}
	}
}

// recordNeutral notes an outcome that says nothing about storage (client
// errors, cancellations). A neutral probe releases the probe slot without
// closing or re-arming the breaker, so the next request probes again.
func (b *breaker) recordNeutral(probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}
