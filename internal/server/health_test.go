package server

import (
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// testBreaker returns a breaker with a controllable clock.
func testBreaker(degrade, brk int, cooldown time.Duration) (*breaker, *time.Time) {
	b := newBreaker(degrade, brk, cooldown,
		new(atomic.Int64), new(atomic.Int64), new(atomic.Int64))
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }
	return b, &clock
}

func TestBreakerStateMachine(t *testing.T) {
	b, clock := testBreaker(2, 4, time.Second)

	if st := b.currentState(); st != stateHealthy {
		t.Fatalf("initial state %v", st)
	}
	// One error: still healthy. Two: degraded. Four: open.
	b.recordStorageError(false)
	if st := b.currentState(); st != stateHealthy {
		t.Fatalf("after 1 error state %v, want healthy", st)
	}
	b.recordStorageError(false)
	if st := b.currentState(); st != stateDegraded {
		t.Fatalf("after 2 errors state %v, want degraded", st)
	}
	// A success heals degraded back to healthy and resets the streak.
	b.recordSuccess(false)
	if st := b.currentState(); st != stateHealthy {
		t.Fatalf("after success state %v, want healthy", st)
	}
	for i := 0; i < 4; i++ {
		b.recordStorageError(false)
	}
	if st := b.currentState(); st != stateOpen {
		t.Fatalf("after 4 errors state %v, want open", st)
	}
	if b.opened.Load() != 1 {
		t.Errorf("opened counter = %d, want 1", b.opened.Load())
	}

	// While open and inside the cooldown, everything is shed.
	if _, admitted := b.allow(); admitted {
		t.Fatal("open breaker admitted a request inside cooldown")
	}
	if b.shed.Load() == 0 {
		t.Error("shed counter not incremented")
	}

	// After the cooldown exactly one probe goes through; concurrent
	// requests keep being shed while it is in flight.
	*clock = clock.Add(time.Second)
	probe, admitted := b.allow()
	if !admitted || !probe {
		t.Fatalf("post-cooldown allow = (probe %v, admitted %v), want probe", probe, admitted)
	}
	if _, admitted := b.allow(); admitted {
		t.Fatal("second request admitted while probe in flight")
	}

	// Failed probe: breaker re-opens for a fresh cooldown.
	b.recordStorageError(true)
	if st := b.currentState(); st != stateOpen {
		t.Fatalf("after failed probe state %v, want open", st)
	}
	if _, admitted := b.allow(); admitted {
		t.Fatal("request admitted right after failed probe")
	}

	// Next probe succeeds: fully closed.
	*clock = clock.Add(time.Second)
	probe, admitted = b.allow()
	if !admitted || !probe {
		t.Fatal("second probe not admitted")
	}
	b.recordSuccess(true)
	if st := b.currentState(); st != stateHealthy {
		t.Fatalf("after successful probe state %v, want healthy", st)
	}
	if _, admitted := b.allow(); !admitted {
		t.Fatal("healthy breaker shed a request")
	}
}

func TestBreakerNeutralProbeReleasesSlot(t *testing.T) {
	b, clock := testBreaker(1, 1, time.Second)
	b.recordStorageError(false)
	if st := b.currentState(); st != stateOpen {
		t.Fatalf("state %v, want open", st)
	}
	*clock = clock.Add(time.Second)
	probe, admitted := b.allow()
	if !admitted || !probe {
		t.Fatal("probe not admitted")
	}
	// The probe came back neutral (e.g. the client sent a bad request):
	// the breaker stays open but the probe slot frees immediately.
	b.recordNeutral(probe)
	if st := b.currentState(); st != stateOpen {
		t.Fatalf("after neutral probe state %v, want open", st)
	}
	if probe2, admitted := b.allow(); !admitted || !probe2 {
		t.Fatal("probe slot not released after neutral outcome")
	}
}

// TestDegradedModeEndToEnd drives the whole loop over HTTP: inject
// permanent read faults through /v1/chaos, watch queries 500 and the
// breaker open (503 + Retry-After, /healthz 503), heal the fault, and
// watch the half-open probe restore 200s.
func TestDegradedModeEndToEnd(t *testing.T) {
	db, ws := testDB(t)
	srv := New(db, Config{
		DegradeAfter:    2,
		BreakAfter:      3,
		BreakerCooldown: 10 * time.Millisecond,
		EnableChaos:     true,
		CacheSize:       -1, // no result cache: every request must hit storage
	})
	h := srv.Handler()

	// Baseline: queries work, health is green.
	if rec := get(t, h, searchURL(ws[0]), nil); rec.Code != http.StatusOK {
		t.Fatalf("baseline query status %d: %s", rec.Code, rec.Body.String())
	}
	// Cool the buffer pools so every query actually reads "disk".
	if err := db.ResetIO(); err != nil {
		t.Fatal(err)
	}

	if rec := post(t, h, "/v1/chaos", map[string]string{"spec": "read:every=1"}); rec.Code != http.StatusOK {
		t.Fatalf("installing chaos spec: %d %s", rec.Code, rec.Body.String())
	}

	// Storage errors accumulate; within BreakAfter queries the breaker
	// opens and the server sheds with 503 + Retry-After.
	var saw500, saw503 bool
	var retryAfter string
	for i := 0; i < 10; i++ {
		rec := get(t, h, searchURL(ws[i%len(ws)]), nil)
		switch rec.Code {
		case http.StatusInternalServerError:
			saw500 = true
		case http.StatusServiceUnavailable:
			saw503 = true
			retryAfter = rec.Header().Get("Retry-After")
		case http.StatusOK:
			t.Fatalf("query %d returned 200 under a permanent read-fault campaign", i)
		default:
			t.Fatalf("query %d status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	if !saw500 || !saw503 {
		t.Fatalf("saw500=%v saw503=%v, want both", saw500, saw503)
	}
	if retryAfter == "" {
		t.Error("503 response missing Retry-After")
	}
	var health struct {
		Status string `json:"status"`
	}
	rec := get(t, h, "/healthz", &health)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while open: %d %s", rec.Code, rec.Body.String())
	}

	// Heal the medium and wait out the cooldown: the next query is the
	// probe; it succeeds and service recovers.
	if rec := post(t, h, "/v1/chaos", map[string]string{"spec": ""}); rec.Code != http.StatusOK {
		t.Fatalf("clearing chaos spec: %d %s", rec.Code, rec.Body.String())
	}
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		if rec := get(t, h, searchURL(ws[0]), nil); rec.Code == http.StatusOK {
			recovered = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("server did not recover after faults cleared")
	}
	if rec := get(t, h, "/healthz", &health); rec.Code != http.StatusOK || health.Status != "healthy" {
		t.Fatalf("healthz after recovery: %d %q", rec.Code, health.Status)
	}

	// The whole episode is visible in the counters.
	snap := db.Snapshot()
	if snap.Counters["server_breaker_opened_total"] == 0 {
		t.Error("breaker_opened counter stayed zero")
	}
	if snap.Counters["server_breaker_shed_total"] == 0 {
		t.Error("breaker_shed counter stayed zero")
	}
}

func TestChaosEndpointDisabledByDefault(t *testing.T) {
	db, _ := testDB(t)
	h := New(db, Config{}).Handler()
	rec := post(t, h, "/v1/chaos", map[string]string{"spec": "read:every=1"})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("chaos endpoint without EnableChaos: %d, want 404", rec.Code)
	}
}

func TestChaosEndpointRejectsBadSpec(t *testing.T) {
	db, _ := testDB(t)
	h := New(db, Config{EnableChaos: true}).Handler()
	rec := post(t, h, "/v1/chaos", map[string]string{"spec": "read:zap=1"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad spec: %d, want 400", rec.Code)
	}
}
