package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"dsks"
	"dsks/internal/shard"
)

// decode unmarshals a recorded response body regardless of its status
// (get only decodes 200s; partial results come back as 206).
func decode(t *testing.T, rec *httptest.ResponseRecorder, out any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, rec.Body.String())
	}
}

// routerFixture boots a NewRouter server over a 4-shard set and returns
// the handler plus a wide search URL whose δmax ball spans every shard.
func routerFixture(t *testing.T, partial bool, cfg Config) (http.Handler, string, *shard.Set) {
	t.Helper()
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	set, err := shard.Open(ds.Graph, ds.Objects, ds.VocabSize, 4, shard.Options{
		DB:      dsks.Options{Index: dsks.IndexSIF},
		Partial: partial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = set.Close() })
	ws, err := dsks.GenerateWorkload(ds.Objects, ds.VocabSize, dsks.WorkloadConfig{
		NumQueries: 1, Keywords: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("/v1/search?edge=%d&offset=%g&terms=%d&deltaMax=20000",
		ws[0].Pos.Edge, ws[0].Pos.Offset, ws[0].Terms[0])
	return NewRouter(set, cfg).Handler(), url, set
}

func TestRouterServesShardedQueries(t *testing.T) {
	h, url, set := routerFixture(t, false, Config{})
	var res struct {
		Candidates []struct {
			ID int64 `json:"id"`
		} `json:"candidates"`
		LSNs    []uint64 `json:"lsns"`
		Queried []int    `json:"queriedShards"`
		Partial bool     `json:"partial"`
	}
	rec := get(t, h, url, &res)
	if rec.Code != http.StatusOK {
		t.Fatalf("sharded search: status %d: %s", rec.Code, rec.Body)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("sharded search returned no candidates")
	}
	if len(res.LSNs) != set.Shards() {
		t.Fatalf("envelope lsns %v, want %d entries", res.LSNs, set.Shards())
	}
	if len(res.Queried) == 0 || res.Partial {
		t.Fatalf("envelope meta: queried %v partial %v", res.Queried, res.Partial)
	}

	// The second identical request is a cache hit at the same LSN vector.
	rec = get(t, h, url, &res)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Dsks-Cache") != "hit" {
		t.Fatalf("repeat: status %d cache %q", rec.Code, rec.Header().Get("X-Dsks-Cache"))
	}

	// A mutation bumps the router clock and invalidates the cache.
	var ack struct {
		ID  *int64 `json:"id"`
		LSN uint64 `json:"lsn"`
	}
	pos, terms := insertableObject(t, set)
	rec = post(t, h, "/v1/insert", map[string]any{"edge": pos.Edge, "offset": pos.Offset, "terms": terms})
	if rec.Code != http.StatusOK {
		t.Fatalf("insert: status %d: %s", rec.Code, rec.Body)
	}
	decode(t, rec, &ack)
	if ack.ID == nil || ack.LSN == 0 {
		t.Fatalf("insert ack = %+v", ack)
	}
	rec = get(t, h, url, &res)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Dsks-Cache") != "miss" {
		t.Fatalf("post-insert: status %d cache %q", rec.Code, rec.Header().Get("X-Dsks-Cache"))
	}

	// Remove acks a later clock value.
	var rack struct {
		LSN uint64 `json:"lsn"`
	}
	rec = post(t, h, "/v1/remove", map[string]any{"id": *ack.ID})
	if rec.Code != http.StatusOK {
		t.Fatalf("remove: status %d: %s", rec.Code, rec.Body)
	}
	decode(t, rec, &rack)
	if rack.LSN <= ack.LSN {
		t.Fatalf("remove lsn %d not after insert lsn %d", rack.LSN, ack.LSN)
	}
}

// insertableObject picks a position and terms that every shard database
// accepts (a real edge with in-vocabulary terms).
func insertableObject(t *testing.T, set *shard.Set) (dsks.Position, []dsks.TermID) {
	t.Helper()
	return dsks.Position{Edge: 0, Offset: 0.5}, []dsks.TermID{0}
}

func TestRouterShardVarz(t *testing.T) {
	h, url, set := routerFixture(t, false, Config{})
	if rec := get(t, h, url, nil); rec.Code != http.StatusOK {
		t.Fatalf("warmup: status %d", rec.Code)
	}
	var varz struct {
		Shards []struct {
			LSN         uint64 `json:"lsn"`
			LiveObjects int    `json:"liveObjects"`
			Requests    int64  `json:"requests"`
		} `json:"shards"`
		Metrics struct {
			Counters map[string]int64 `json:"Counters"`
		} `json:"metrics"`
	}
	if rec := get(t, h, "/varz", &varz); rec.Code != http.StatusOK {
		t.Fatalf("varz: status %d", rec.Code)
	}
	if len(varz.Shards) != set.Shards() {
		t.Fatalf("varz shards = %d rows, want %d", len(varz.Shards), set.Shards())
	}
	live, reqs := 0, int64(0)
	for _, sh := range varz.Shards {
		live += sh.LiveObjects
		reqs += sh.Requests
	}
	if live != set.LiveObjects() {
		t.Fatalf("varz live objects sum %d, want %d", live, set.LiveObjects())
	}
	if reqs == 0 {
		t.Fatal("no per-shard requests counted after a fan-out")
	}
	if varz.Metrics.Counters[shard.CounterFanoutLegs] == 0 {
		t.Fatal("router fan-out counter missing from varz")
	}
}

// TestRouterPartialResult206: with the partial policy, one downed shard
// turns the answer into a coherent 206 — partial flag, the failed leg's
// detail, never cached — and recovery restores cacheable 200s.
func TestRouterPartialResult206(t *testing.T) {
	h, url, set := routerFixture(t, true, Config{EnableChaos: true, CacheSize: -1})

	if rec := get(t, h, url, nil); rec.Code != http.StatusOK {
		t.Fatalf("healthy: status %d", rec.Code)
	}

	// Down shard 1 only, through the HTTP chaos endpoint.
	rec := post(t, h, "/v1/chaos", map[string]any{"spec": "read:every=1", "shard": 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("shard chaos: status %d: %s", rec.Code, rec.Body)
	}

	var res struct {
		Candidates  []struct{} `json:"candidates"`
		Partial     bool       `json:"partial"`
		ShardErrors []struct {
			Shard int    `json:"shard"`
			Err   string `json:"error"`
		} `json:"shardErrors"`
	}
	rec = get(t, h, url, nil)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("degraded: status %d, want 206: %s", rec.Code, rec.Body)
	}
	decode(t, rec, &res)
	if !res.Partial || len(res.ShardErrors) != 1 || res.ShardErrors[0].Shard != 1 {
		t.Fatalf("degraded envelope: partial %v errors %+v", res.Partial, res.ShardErrors)
	}
	// The 206 body was not cached: the same request misses again.
	rec = get(t, h, url, nil)
	if rec.Code != http.StatusPartialContent || rec.Header().Get("X-Dsks-Cache") != "miss" {
		t.Fatalf("repeat degraded: status %d cache %q", rec.Code, rec.Header().Get("X-Dsks-Cache"))
	}

	// Heal and verify full 200s come back.
	if rec := post(t, h, "/v1/chaos", map[string]any{"spec": ""}); rec.Code != http.StatusOK {
		t.Fatalf("clear chaos: status %d", rec.Code)
	}
	if err := set.ResetIO(); err != nil {
		t.Fatal(err)
	}
	rec = get(t, h, url, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("recovered: status %d", rec.Code)
	}
	res.Partial, res.ShardErrors = false, nil
	decode(t, rec, &res)
	if res.Partial {
		t.Fatal("recovered answer still flagged partial")
	}
}

// TestRouterFirstErrorWins500: the default policy maps a downed shard to
// one coherent 500, driving the breaker like any storage failure.
func TestRouterFirstErrorWins500(t *testing.T) {
	h, url, set := routerFixture(t, false, Config{EnableChaos: true, CacheSize: -1})
	if rec := get(t, h, url, nil); rec.Code != http.StatusOK {
		t.Fatalf("healthy: status %d", rec.Code)
	}
	rec := post(t, h, "/v1/chaos", map[string]any{"spec": "read:every=1", "shard": 2})
	if rec.Code != http.StatusOK {
		t.Fatalf("shard chaos: status %d: %s", rec.Code, rec.Body)
	}
	rec = get(t, h, url, nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("degraded: status %d, want 500: %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/v1/chaos", map[string]any{"spec": ""}); rec.Code != http.StatusOK {
		t.Fatalf("clear chaos: status %d", rec.Code)
	}
	if err := set.ResetIO(); err != nil {
		t.Fatal(err)
	}
	if rec := get(t, h, url, nil); rec.Code != http.StatusOK {
		t.Fatalf("recovered: status %d", rec.Code)
	}
}

// TestRouterShardChaosRejectedUnsharded: the shard field is a client
// error on a single-database server.
func TestRouterShardChaosRejectedUnsharded(t *testing.T) {
	ds, err := dsks.GeneratePreset(dsks.PresetSYN, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	db, err := dsks.OpenDataset(ds, dsks.Options{Index: dsks.IndexSIF})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	h := New(db, Config{EnableChaos: true}).Handler()
	rec := post(t, h, "/v1/chaos", map[string]any{"spec": "read:every=1", "shard": 0})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unsharded shard chaos: status %d, want 400", rec.Code)
	}
}
