// Package server is the production query-serving layer: an HTTP/JSON
// API exposing every query family plus mutations over a Backend — one
// *dsks.DB (New) or an N-way shard.Set behind the scatter-gather router
// (NewRouter) — with admission control (a bounded concurrency limiter
// that sheds load with 429 + Retry-After), per-request deadlines plumbed
// into the engine so rejected and expired queries stop doing disk reads,
// an invalidation-correct LRU result cache keyed by the read view's
// version token (a commit LSN, or the per-shard LSN vector — every query
// runs inside a pinned view, so cached entries are exactly consistent
// with their token), panic isolation per request, and live observability
// (/healthz, /varz JSON, /metricsz Prometheus text) rendered from the
// backend's own metrics registry. Everything is standard library only,
// like the rest of the repository.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"dsks"
	"dsks/internal/metrics"
)

// Config sizes the server. Zero values take the documented defaults, so
// Config{} is a usable development configuration.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// MaxInflight bounds the queries executing concurrently (default 16).
	MaxInflight int
	// QueueDepth bounds the requests waiting for an execution slot;
	// beyond it requests are shed with 429 (default 64).
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the client sends
	// none (default 2s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-requested deadline (default 30s).
	MaxTimeout time.Duration
	// CacheSize is the result cache capacity in entries; 0 keeps the
	// default (4096), negative disables caching.
	CacheSize int
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// DegradeAfter is the count of consecutive storage-class errors that
	// moves health from healthy to degraded (default 3).
	DegradeAfter int
	// BreakAfter is the count of consecutive storage-class errors that
	// opens the circuit: queries are shed with 503 + Retry-After until a
	// half-open probe succeeds (default 5).
	BreakAfter int
	// BreakerCooldown is how long the breaker stays open before it lets
	// one probe query through (default 1s).
	BreakerCooldown time.Duration
	// EnableChaos exposes POST /v1/chaos, which installs a fault-injection
	// campaign on the database's storage layer (body {"spec": "..."},
	// empty spec clears). Off by default: never enable in production.
	EnableChaos bool
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 16
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.CacheSize < 0 {
		c.CacheSize = 0
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 3
	}
	if c.BreakAfter <= 0 {
		c.BreakAfter = 5
	}
	if c.BreakAfter < c.DegradeAfter {
		c.BreakAfter = c.DegradeAfter
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	return c
}

// Server serves spatial keyword queries over HTTP. Create with New (one
// database) or NewRouter (a shard set), wire the Handler into an
// http.Server (or use Start/Shutdown), and share one Server per backend —
// the admission limiter and cache are per-Server.
type Server struct {
	backend Backend
	cfg     Config
	lim     *limiter
	cache   *resultCache
	health  *breaker
	mux     *http.ServeMux

	started time.Time
	http    *http.Server
	ln      net.Listener

	// Serving counters, folded into the DB's metrics registry so /varz
	// and /metricsz render them alongside the engine's own aggregates.
	requests    *atomic.Int64
	rejected    *atomic.Int64
	deadlines   *atomic.Int64
	panics      *atomic.Int64
	cacheHits   *atomic.Int64
	cacheMisses *atomic.Int64
}

// New builds a server over an open database.
func New(db *dsks.DB, cfg Config) *Server {
	return newServer(dbBackend{db}, cfg)
}

// newServer wires the serving machinery over any backend. The serving
// counters fold into the backend's own metrics registry — the engine's
// for a single database, the router's for a shard set — so /varz and
// /metricsz render them alongside that backend's aggregates.
func newServer(backend Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := backend.Metrics()
	s := &Server{
		backend:     backend,
		cfg:         cfg,
		lim:         newLimiter(cfg.MaxInflight, cfg.QueueDepth),
		started:     time.Now(),
		requests:    reg.Counter("server_requests_total"),
		rejected:    reg.Counter("server_admission_rejected_total"),
		deadlines:   reg.Counter("server_deadline_exceeded_total"),
		panics:      reg.Counter("server_panics_total"),
		cacheHits:   reg.Counter("server_cache_hits_total"),
		cacheMisses: reg.Counter("server_cache_misses_total"),
	}
	s.cache = newResultCache(cfg.CacheSize, s.cacheHits, s.cacheMisses,
		reg.Counter("server_cache_stale_evictions_total"))
	s.health = newBreaker(cfg.DegradeAfter, cfg.BreakAfter, cfg.BreakerCooldown,
		reg.Counter("server_breaker_opened_total"),
		reg.Counter("server_breaker_shed_total"),
		reg.Counter("server_health_state"))
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// routes wires the endpoints.
func (s *Server) routes() {
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/varz", s.handleVarz)
	s.mux.HandleFunc("/metricsz", s.handleMetricsz)
	s.mux.HandleFunc("/v1/search", s.queryEndpoint("search", s.runSearch))
	s.mux.HandleFunc("/v1/diversified", s.queryEndpoint("diversified", s.runDiversified))
	s.mux.HandleFunc("/v1/knn", s.queryEndpoint("knn", s.runKNN))
	s.mux.HandleFunc("/v1/ranked", s.queryEndpoint("ranked", s.runRanked))
	s.mux.HandleFunc("/v1/collective", s.queryEndpoint("collective", s.runCollective))
	s.mux.HandleFunc("/v1/distance", s.queryEndpoint("distance", s.runDistance))
	s.mux.HandleFunc("/v1/insert", s.handleInsert)
	s.mux.HandleFunc("/v1/remove", s.handleRemove)
	if s.cfg.EnableChaos {
		s.mux.HandleFunc("/v1/chaos", s.handleChaos)
	}
}

// Handler returns the server's HTTP handler: the route mux wrapped in the
// panic-isolation middleware, so one bad request cannot take down the
// process.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				// The handler may have written nothing yet; try to fail the
				// request cleanly and keep the process alive.
				writeError(w, http.StatusInternalServerError,
					fmt.Sprintf("internal error: %v", v))
				debug.PrintStack()
			}
		}()
		s.requests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// Start listens on cfg.Addr and serves in a background goroutine. It
// returns once the listener is bound (so callers know the port is live);
// serve errors after that surface through the returned channel, which
// closes on clean shutdown.
func (s *Server) Start() (<-chan error, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		defer close(errc)
		if err := s.http.Serve(ln); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	return errc, nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown drains the server: the listener closes immediately, in-flight
// requests run to completion, and once ctx ends remaining connections are
// cut. A nil http server (never started) is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.http == nil {
		return nil
	}
	return s.http.Shutdown(ctx)
}

// handleHealthz reports liveness and the degradation state: 200 while the
// server is healthy or degraded (it is still serving), 503 while the
// circuit is open (queries are being shed).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.health.currentState()
	status := http.StatusOK
	if st == stateOpen {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.BreakerCooldown.Seconds()+0.5)))
	}
	body := map[string]any{
		"status":  st.String(),
		"uptime":  time.Since(s.started).String(),
		"lsn":     s.backend.LSN(),
		"version": s.backend.Version(),
	}
	if sb, ok := s.backend.(sharded); ok {
		// Per-shard failover state ("primary"|"replica"|"down"): a shard
		// can lose its primary and keep serving from replicas without
		// the server-wide breaker noticing — surface it here.
		body["shards"] = sb.ShardHealth()
	}
	writeJSON(w, status, body)
}

// chaosRequest is the /v1/chaos body. Shard, when present on a sharded
// backend, targets the spec at that single shard — the lever the shard
// smoke test uses to take one shard down while its siblings keep serving.
type chaosRequest struct {
	Spec  string `json:"spec"`
	Shard *int   `json:"shard,omitempty"`
}

// handleChaos serves POST /v1/chaos (only wired when Config.EnableChaos):
// a non-empty spec installs a deterministic fault-injection campaign on
// the backend's storage layer, an empty spec clears it everywhere. The
// breaker is left to discover the faults on its own — that is the point.
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req chaosRequest
	if err := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request body: %v", err))
		return
	}
	if req.Spec == "" {
		s.backend.ClearFaults()
		writeJSON(w, http.StatusOK, map[string]any{"chaos": "cleared"})
		return
	}
	if req.Shard != nil {
		sb, ok := s.backend.(sharded)
		if !ok {
			writeError(w, http.StatusBadRequest, "shard-targeted chaos needs a sharded backend")
			return
		}
		if err := sb.SetShardFaultSpec(*req.Shard, req.Spec); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	} else if err := s.backend.SetFaultSpec(req.Spec); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Cool the buffer pools so the campaign bites immediately: faults
	// live on the page stores, and a fully warm pool would never reach
	// them. Chaos runs give up the paper's I/O accounting anyway.
	if err := s.backend.ResetIO(); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("cooling buffer pools: %v", err))
		return
	}
	if req.Shard != nil {
		writeJSON(w, http.StatusOK, map[string]any{"chaos": req.Spec, "shard": *req.Shard})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"chaos": req.Spec})
}

// varzPayload is the /varz document: the serving state plus the full
// metrics snapshot. Shards is present only behind NewRouter: one row per
// shard with its commit/durable LSNs, live objects and fan-out counters.
type varzPayload struct {
	Uptime      string               `json:"uptime"`
	DBVersion   uint64               `json:"dbVersion"`
	DBLSN       uint64               `json:"dbLSN"`
	LiveObjects int                  `json:"liveObjects"`
	DurableLSN  uint64               `json:"durableLSN"`
	Health      string               `json:"health"`
	Inflight    int                  `json:"inflight"`
	Queued      int64                `json:"queued"`
	CacheLen    int                  `json:"cacheLen"`
	CacheCap    int                  `json:"cacheCap"`
	MaxInflight int                  `json:"maxInflight"`
	QueueDepth  int                  `json:"queueDepth"`
	Shards      []ShardVarz          `json:"shards,omitempty"`
	Metrics     dsks.MetricsSnapshot `json:"metrics"`
}

// handleVarz serves the JSON metrics snapshot.
func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	payload := varzPayload{
		Uptime:      time.Since(s.started).String(),
		DBVersion:   s.backend.Version(),
		DBLSN:       s.backend.LSN(),
		LiveObjects: s.backend.LiveObjects(),
		DurableLSN:  s.backend.DurableLSN(),
		Health:      s.health.currentState().String(),
		Inflight:    s.lim.inflight(),
		Queued:      s.lim.waiting(),
		CacheLen:    s.cache.len(),
		CacheCap:    s.cfg.CacheSize,
		MaxInflight: s.cfg.MaxInflight,
		QueueDepth:  s.cfg.QueueDepth,
		Metrics:     s.backend.Snapshot(),
	}
	if sb, ok := s.backend.(sharded); ok {
		payload.Shards = sb.ShardVarz()
	}
	writeJSON(w, http.StatusOK, payload)
}

// handleMetricsz serves the Prometheus text rendering of the registry.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := metrics.WritePrometheus(w, s.backend.Snapshot()); err != nil {
		// The connection is gone mid-write; nothing sensible to send.
		return
	}
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
