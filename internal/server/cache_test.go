package server

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func newTestCache(capacity int) (*resultCache, *atomic.Int64, *atomic.Int64, *atomic.Int64) {
	hits, misses, stale := new(atomic.Int64), new(atomic.Int64), new(atomic.Int64)
	return newResultCache(capacity, hits, misses, stale), hits, misses, stale
}

func TestCacheLRUEviction(t *testing.T) {
	c, hits, misses, _ := newTestCache(2)
	c.put("a", "0", []byte("A"))
	c.put("b", "0", []byte("B"))
	if _, ok := c.get("a", "0"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", "0", []byte("C")) // evicts b
	if _, ok := c.get("b", "0"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.get("c", "0"); !ok {
		t.Fatal("c missing")
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
	if hits.Load() != 2 || misses.Load() != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", hits.Load(), misses.Load())
	}
}

func TestCacheVersionInvalidation(t *testing.T) {
	c, hits, misses, stale := newTestCache(8)
	c.put("q", "3", []byte("old"))
	if _, ok := c.get("q", "4"); ok {
		t.Fatal("stale entry served across a version bump")
	}
	if stale.Load() != 1 || misses.Load() != 1 {
		t.Fatalf("stale=%d misses=%d, want 1/1", stale.Load(), misses.Load())
	}
	// The stale entry was evicted: even the old version misses now.
	if _, ok := c.get("q", "3"); ok {
		t.Fatal("stale entry not evicted")
	}
	c.put("q", "4", []byte("new"))
	if body, ok := c.get("q", "4"); !ok || string(body) != "new" {
		t.Fatalf("refilled entry: %q %v", body, ok)
	}
	if hits.Load() != 1 {
		t.Fatalf("hits=%d, want 1", hits.Load())
	}
}

func TestCacheDisabled(t *testing.T) {
	c, _, misses, _ := newTestCache(0)
	c.put("q", "0", []byte("x"))
	if _, ok := c.get("q", "0"); ok {
		t.Fatal("capacity-0 cache stored an entry")
	}
	if misses.Load() != 1 {
		t.Fatalf("misses=%d, want 1", misses.Load())
	}
}

func TestLimiterQueueBounds(t *testing.T) {
	l := newLimiter(1, 1)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// One waiter fits in the queue...
	waited := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		waited <- l.acquire(ctx)
	}()
	for l.waiting() == 0 {
		time.Sleep(time.Millisecond)
	}

	// ...the next is shed immediately.
	if err := l.acquire(context.Background()); err != errQueueFull {
		t.Fatalf("acquire = %v, want errQueueFull", err)
	}

	l.release() // hands the slot to the waiter
	if err := <-waited; err != nil {
		t.Fatalf("queued acquire = %v", err)
	}
	l.release()
	if err := l.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after drain = %v", err)
	}
	l.release()
}

func TestLimiterDeadlineWhileQueued(t *testing.T) {
	l := newLimiter(1, 4)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer l.release()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := l.acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("acquire = %v, want context.DeadlineExceeded", err)
	}
	if l.waiting() != 0 {
		t.Fatalf("waiting = %d after timeout, want 0", l.waiting())
	}
}
